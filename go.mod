module discovery

go 1.22
