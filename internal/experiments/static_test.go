package experiments

import (
	"testing"

	"discovery/internal/mpil"
)

func TestStaticScaleValidation(t *testing.T) {
	bad := []StaticScale{
		{},
		{Sizes: []int{4}, GraphsPerSize: 1, RequestsPerGraph: 1, RandomDegree: 2},
		{Sizes: []int{100}, GraphsPerSize: 0, RequestsPerGraph: 1, RandomDegree: 2},
		{Sizes: []int{100}, GraphsPerSize: 1, RequestsPerGraph: 0, RandomDegree: 2},
		{Sizes: []int{100}, GraphsPerSize: 1, RequestsPerGraph: 1, RandomDegree: 0},
		{Sizes: []int{100}, GraphsPerSize: 1, RequestsPerGraph: 1, RandomDegree: 100},
	}
	for i, s := range bad {
		if err := s.validate(); err == nil {
			t.Errorf("scale %d accepted: %+v", i, s)
		}
	}
	if err := QuickStaticScale().validate(); err != nil {
		t.Errorf("quick scale invalid: %v", err)
	}
	if err := PaperStaticScale().validate(); err != nil {
		t.Errorf("paper scale invalid: %v", err)
	}
}

func TestRunFig9Shapes(t *testing.T) {
	scale := QuickStaticScale()
	bound := float64(insertConfig().MaxFlows * insertConfig().PerFlowReplicas)
	for _, kind := range []TopoKind{TopoPowerLaw, TopoRandom} {
		rows, err := RunFig9(scale, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(rows) != len(scale.Sizes) {
			t.Fatalf("%v: %d rows, want %d", kind, len(rows), len(scale.Sizes))
		}
		for _, r := range rows {
			if r.Replicas < 1 {
				t.Errorf("%v N=%d: %.1f replicas, want >= 1", kind, r.N, r.Replicas)
			}
			if r.Replicas > bound {
				t.Errorf("%v N=%d: %.1f replicas exceed max_flows*r bound %.0f", kind, r.N, r.Replicas, bound)
			}
			if r.Traffic <= 0 {
				t.Errorf("%v N=%d: no insertion traffic", kind, r.N)
			}
			if r.Duplicates < 0 {
				t.Errorf("%v N=%d: negative duplicates", kind, r.N)
			}
		}
	}
}

func TestRunLookupTableShapes(t *testing.T) {
	scale := QuickStaticScale()
	for _, kind := range []TopoKind{TopoPowerLaw, TopoRandom} {
		rows, err := RunLookupTable(scale, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(rows) != len(scale.Sizes)*len(LookupMaxFlows) {
			t.Fatalf("%v: %d rows", kind, len(rows))
		}
		for _, row := range rows {
			// Paper shape: success non-decreasing in per-flow replicas
			// (allowing small sampling noise), and high at r=5.
			for r := 1; r < 5; r++ {
				if row.SuccessPct[r] < row.SuccessPct[r-1]-8 {
					t.Errorf("%v N=%d mf=%d: success drops from r=%d (%.1f) to r=%d (%.1f)",
						kind, row.N, row.MaxFlows, r, row.SuccessPct[r-1], r+1, row.SuccessPct[r])
				}
			}
			if row.SuccessPct[4] < 80 {
				t.Errorf("%v N=%d mf=%d: r=5 success %.1f%%, want >= 80%%",
					kind, row.N, row.MaxFlows, row.SuccessPct[4])
			}
		}
	}
}

func TestRandomBeatsPowerLawAtLowReplicas(t *testing.T) {
	// Paper Tables 1 vs 2: random overlays dominate power-law at r=1.
	scale := QuickStaticScale()
	pl, err := RunLookupTable(scale, TopoPowerLaw)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := RunLookupTable(scale, TopoRandom)
	if err != nil {
		t.Fatal(err)
	}
	if rd[0].SuccessPct[0] <= pl[0].SuccessPct[0] {
		t.Errorf("random r=1 success %.1f%% not above power-law %.1f%%",
			rd[0].SuccessPct[0], pl[0].SuccessPct[0])
	}
}

func TestRunTable3Shapes(t *testing.T) {
	scale := QuickStaticScale()
	for _, kind := range []TopoKind{TopoPowerLaw, TopoRandom} {
		rows, err := RunTable3(scale, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for _, row := range rows {
			if row.Flows < 1 {
				t.Errorf("%v N=%d: %.2f flows, want >= 1", kind, row.N, row.Flows)
			}
			if row.Flows > 10 {
				t.Errorf("%v N=%d: %.2f flows exceed max_flows 10", kind, row.N, row.Flows)
			}
		}
	}
}

func TestRunFig10Shapes(t *testing.T) {
	scale := QuickStaticScale()
	for _, kind := range []TopoKind{TopoPowerLaw, TopoRandom} {
		rows, err := RunFig10(scale, kind)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		for _, row := range rows {
			// Paper: latency small (roughly 2-3 hops) and steady in N.
			if row.Hops < 0.5 || row.Hops > 8 {
				t.Errorf("%v N=%d: %.2f hops outside plausible range", kind, row.N, row.Hops)
			}
			if row.Traffic <= 0 {
				t.Errorf("%v N=%d: no lookup traffic", kind, row.N)
			}
		}
	}
}

func TestRunFig7MatchesAnalysisShape(t *testing.T) {
	rows, err := RunFig7([]int{4000, 8000, 16000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("%d rows, want 10 (d = 10..100)", len(rows))
	}
	// Monotone decreasing in d; scaling linear in N.
	for i, row := range rows {
		if len(row.Maxima) != 3 {
			t.Fatalf("row %d has %d series", i, len(row.Maxima))
		}
		if i > 0 && row.Maxima[0] >= rows[i-1].Maxima[0] {
			t.Errorf("maxima not decreasing in d at row %d", i)
		}
		ratio := row.Maxima[2] / row.Maxima[0]
		if ratio < 3.99 || ratio > 4.01 {
			t.Errorf("d=%d: 16000/4000 ratio %.3f, want 4", row.Neighbors, ratio)
		}
	}
	// Paper's headline value: ~1200 maxima at d=10 for 16000 nodes.
	if v := rows[0].Maxima[2]; v < 1100 || v > 1300 {
		t.Errorf("d=10 N=16000: %.0f maxima, want about 1200", v)
	}
}

func TestRunFig8MatchesAnalysisShape(t *testing.T) {
	rows, err := RunFig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	prev := 0.0
	for _, r := range rows {
		if r.Replicas < 1.5 || r.Replicas > 1.7 {
			t.Errorf("N=%d: %.3f replicas outside the paper's 1.55-1.63 band (with tolerance)", r.N, r.Replicas)
		}
		if r.Replicas < prev {
			t.Errorf("replicas not non-decreasing at N=%d", r.N)
		}
		prev = r.Replicas
	}
}

func TestInsertConfigIsPaper(t *testing.T) {
	cfg := insertConfig()
	if cfg.MaxFlows != 30 || cfg.PerFlowReplicas != 5 || !cfg.DuplicateSuppression {
		t.Errorf("insertion config %+v does not match the paper's Section 6.1", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Error(err)
	}
	var _ = mpil.Config{} // keep import meaningful under refactors
}
