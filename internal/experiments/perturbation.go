package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"discovery/internal/eventsim"
	"discovery/internal/idspace"
	"discovery/internal/metrics"
	"discovery/internal/mpil"
	"discovery/internal/pastry"
	"discovery/internal/perturb"
	"discovery/internal/topology"
	"discovery/internal/workload"
)

// FlapSetting is one idle:offline configuration from Figures 1 and 11.
type FlapSetting struct {
	Label   string
	Idle    time.Duration
	Offline time.Duration
}

// PaperFlapSettings are the four settings of Figure 1.
func PaperFlapSettings() []FlapSetting {
	return []FlapSetting{
		{Label: "1:1", Idle: time.Second, Offline: time.Second},
		{Label: "45:15", Idle: 45 * time.Second, Offline: 15 * time.Second},
		{Label: "30:30", Idle: 30 * time.Second, Offline: 30 * time.Second},
		{Label: "300:300", Idle: 300 * time.Second, Offline: 300 * time.Second},
	}
}

// Fig11FlapSettings are the three settings of Figure 11.
func Fig11FlapSettings() []FlapSetting {
	all := PaperFlapSettings()
	return []FlapSetting{all[0], all[2], all[3]} // 1:1, 30:30, 300:300
}

// PaperFlapProbs is the x-axis of Figures 1, 11, and 12.
func PaperFlapProbs() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}

// Variant selects the protocol under test in Figures 11 and 12.
type Variant int

// The four curves of Figure 11.
const (
	VariantPastry Variant = iota + 1
	VariantPastryRR
	VariantMPILDS
	VariantMPILNoDS
)

// String implements fmt.Stringer with the paper's curve labels.
func (v Variant) String() string {
	switch v {
	case VariantPastry:
		return "MSPastry"
	case VariantPastryRR:
		return "MSPastry with RR"
	case VariantMPILDS:
		return "MPIL with DS"
	case VariantMPILNoDS:
		return "MPIL without DS"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// PerturbScale sizes the perturbation experiments.
type PerturbScale struct {
	// Nodes is the overlay size (paper: 1000).
	Nodes int
	// Requests is the number of insert/lookup pairs (paper: 1000; the
	// virtual run length is Requests flapping cycles, so long cycles at
	// full paper scale simulate days of virtual time).
	Requests int
	// Seed makes the run reproducible.
	Seed int64
}

// PaperPerturbScale is the paper's Section 3/6.2 size. Full 300:300 runs
// at this scale simulate ~600000 virtual seconds of maintenance traffic;
// budget accordingly.
func PaperPerturbScale() PerturbScale {
	return PerturbScale{Nodes: 1000, Requests: 1000, Seed: 1}
}

// MediumPerturbScale trades run length for wall-clock: the same overlay
// size with fewer lookups.
func MediumPerturbScale() PerturbScale {
	return PerturbScale{Nodes: 1000, Requests: 150, Seed: 1}
}

// QuickPerturbScale is CI-sized.
func QuickPerturbScale() PerturbScale {
	return PerturbScale{Nodes: 150, Requests: 40, Seed: 1}
}

func (s PerturbScale) validate() error {
	if s.Nodes < 16 {
		return fmt.Errorf("experiments: perturbation scale needs >= 16 nodes, got %d", s.Nodes)
	}
	if s.Requests < 1 {
		return fmt.Errorf("experiments: requests %d must be positive", s.Requests)
	}
	return nil
}

// PerturbResult is one point of Figures 1, 11, or 12.
type PerturbResult struct {
	Setting FlapSetting
	Prob    float64
	Variant Variant
	// SuccessPct is the lookup success rate (Figures 1 and 11).
	SuccessPct float64
	// LookupTraffic counts application messages (data + replies) during
	// the lookup stage (Figure 12 left).
	LookupTraffic uint64
	// TotalTraffic additionally counts maintenance traffic during the
	// lookup stage (Figure 12 right). MPIL has no maintenance, so for
	// it TotalTraffic == LookupTraffic.
	TotalTraffic uint64
}

// RunPerturb executes one perturbation experiment point: build a
// 1000-node-style Pastry overlay over a transit-stub underlay, insert all
// keys from one origin on the static overlay, switch on flapping, and
// issue one lookup per flapping cycle from the same origin (the paper's
// Section 3 methodology).
func RunPerturb(scale PerturbScale, setting FlapSetting, prob float64, variant Variant) (PerturbResult, error) {
	if err := scale.validate(); err != nil {
		return PerturbResult{}, err
	}
	res := PerturbResult{Setting: setting, Prob: prob, Variant: variant}

	sim := eventsim.New(scale.Seed)
	rng := rand.New(rand.NewSource(scale.Seed))
	under, err := topology.NewUnderlay(scale.Nodes, topology.DefaultTransitStub(scale.Nodes), rng)
	if err != nil {
		return res, err
	}

	params := pastry.DefaultParams()
	params.ReplicationOnRoute = variant == VariantPastryRR
	nw, err := pastry.New(scale.Nodes, params, sim, rng, under.Latency, nil)
	if err != nil {
		return res, err
	}

	const origin = 0
	pairs := workload.SingleOrigin(scale.Requests, origin, rng)

	fl, err := perturb.New(scale.Nodes, setting.Idle, setting.Offline, prob, rng)
	if err != nil {
		return res, err
	}

	switch variant {
	case VariantPastry, VariantPastryRR:
		return runPastryPerturb(res, sim, nw, pairs, fl)
	case VariantMPILDS, VariantMPILNoDS:
		return runMPILPerturb(res, sim, nw, pairs, fl, rng, under.Latency, variant == VariantMPILDS)
	default:
		return res, fmt.Errorf("experiments: unknown variant %v", variant)
	}
}

func runPastryPerturb(res PerturbResult, sim *eventsim.Sim, nw *pastry.Network, pairs []workload.InsertLookupPair, fl *perturb.Flapping) (PerturbResult, error) {
	// Stage 1: static insertions.
	inserted := 0
	for _, p := range pairs {
		nw.Insert(p.InsertOrigin, p.Key, nil, func(ok bool, _ int) {
			if ok {
				inserted++
			}
		})
	}
	sim.Run()
	if inserted != len(pairs) {
		return res, fmt.Errorf("experiments: only %d/%d static insertions succeeded", inserted, len(pairs))
	}

	// Stage 2: flapping lookups with full maintenance.
	nw.SetAvailability(fl)
	nw.StartMaintenance()
	base := nw.Counters()

	var success metrics.Rate
	start := lookupStageStart(sim, fl)
	var last time.Duration
	for i, p := range pairs {
		p := p
		at := start + time.Duration(i)*fl.Cycle()
		last = at
		sim.At(at, func() {
			nw.Lookup(p.LookupOrigin, p.Key, func(ok bool, _ int) {
				success.Record(ok)
			})
		})
	}
	sim.RunUntil(last + 2*pastry.DefaultParams().LookupTimeout)
	nw.StopMaintenance()
	sim.Run() // drain in-flight non-periodic events

	delta := diffCounters(nw.Counters(), base)
	res.SuccessPct = success.Percent()
	res.LookupTraffic = delta.LookupTraffic()
	res.TotalTraffic = delta.Total()
	return res, nil
}

func runMPILPerturb(res PerturbResult, sim *eventsim.Sim, nw *pastry.Network, pairs []workload.InsertLookupPair, fl *perturb.Flapping, rng *rand.Rand, lat func(int, int) time.Duration, ds bool) (PerturbResult, error) {
	// MPIL adopts Pastry's structured overlay but none of its
	// maintenance (paper Section 6.2): freeze the converged neighbor
	// lists and run MPIL over them.
	snap := nw.Snapshot()
	cfg := mpil.Config{
		Space:                idspace.MustSpace(4),
		MaxFlows:             10,
		PerFlowReplicas:      5,
		DuplicateSuppression: ds,
	}
	eng, err := mpil.NewEngine(snap, cfg, rng)
	if err != nil {
		return res, err
	}

	// Stage 1: static insertions (snapshot still always-on).
	for _, p := range pairs {
		st := eng.Insert(p.InsertOrigin, p.Key, nil, 0)
		if st.Replicas == 0 {
			return res, fmt.Errorf("experiments: static MPIL insertion stored nothing")
		}
	}
	eng.ResetDuplicateState()

	// Stage 2: flapping lookups, no maintenance of any kind. MPIL
	// inherits the host transport's per-hop retransmission (message-
	// layer machinery, not overlay maintenance) and the same end-to-end
	// application retry discipline the Pastry runs get, so the two
	// protocols differ only in routing.
	snap.SetAvailability(fl)
	clocked := mpil.NewClocked(eng, sim, lat)
	pparams := pastry.DefaultParams()
	clocked.SetTransport(mpil.Transport{
		Attempts: pparams.ProbeRetries + 1,
		Spacing:  pparams.ProbeTimeout,
	})

	var success metrics.Rate
	var traffic uint64
	start := lookupStageStart(sim, fl)
	var last time.Duration
	for i, p := range pairs {
		p := p
		at := start + time.Duration(i)*fl.Cycle()
		last = at
		deadline := at + pparams.LookupTimeout
		found := false
		resolved := false
		sim.At(deadline, func() {
			if !resolved {
				resolved = true
				success.Record(found)
			}
		})
		var attempt func()
		attempt = func() {
			if resolved || found || sim.Now() >= deadline {
				return
			}
			if snap.Online(p.LookupOrigin, sim.Now()) {
				clocked.LookupAsync(p.LookupOrigin, p.Key, func(st mpil.LookupStats) {
					traffic += uint64(st.Messages + st.Replies)
					if st.Found && !resolved {
						resolved = true
						found = true
						success.Record(true)
					}
				})
			}
			sim.After(pparams.RetryInterval, attempt)
		}
		sim.At(at, attempt)
	}
	sim.RunUntil(last + pparams.LookupTimeout + time.Minute)
	sim.Run()

	res.SuccessPct = success.Percent()
	res.LookupTraffic = traffic
	res.TotalTraffic = traffic // MPIL has no maintenance traffic
	return res, nil
}

// lookupStageStart places the first lookup after both the insertion
// stage's virtual time and the point at which every node has entered its
// flapping period (the paper performs lookups only after the latter).
func lookupStageStart(sim *eventsim.Sim, fl *perturb.Flapping) time.Duration {
	start := fl.StartTime()
	if now := sim.Now(); now > start {
		start = now
	}
	return start + fl.Cycle()
}

func diffCounters(after, before pastry.Counters) pastry.Counters {
	return pastry.Counters{
		Data:       after.Data - before.Data,
		Reply:      after.Reply - before.Reply,
		Probe:      after.Probe - before.Probe,
		ProbeReply: after.ProbeReply - before.ProbeReply,
		Maint:      after.Maint - before.Maint,
	}
}

// RunFig1 reproduces Figure 1: MSPastry success rate across all four flap
// settings and the full probability sweep.
func RunFig1(scale PerturbScale, settings []FlapSetting, probs []float64) (map[string][]PerturbResult, error) {
	out := make(map[string][]PerturbResult, len(settings))
	for _, set := range settings {
		for _, p := range probs {
			r, err := RunPerturb(scale, set, p, VariantPastry)
			if err != nil {
				return nil, fmt.Errorf("fig1 %s p=%.1f: %w", set.Label, p, err)
			}
			out[set.Label] = append(out[set.Label], r)
		}
	}
	return out, nil
}

// RunFig11 reproduces Figure 11: all four variants across the given
// settings and probabilities.
func RunFig11(scale PerturbScale, settings []FlapSetting, probs []float64) (map[string][]PerturbResult, error) {
	variants := []Variant{VariantPastry, VariantPastryRR, VariantMPILDS, VariantMPILNoDS}
	out := make(map[string][]PerturbResult)
	for _, set := range settings {
		for _, v := range variants {
			for _, p := range probs {
				r, err := RunPerturb(scale, set, p, v)
				if err != nil {
					return nil, fmt.Errorf("fig11 %s %v p=%.1f: %w", set.Label, v, p, err)
				}
				key := set.Label + "/" + v.String()
				out[key] = append(out[key], r)
			}
		}
	}
	return out, nil
}

// RunFig12 reproduces Figure 12: lookup and total traffic at 30:30 across
// the probability sweep for MSPastry and MPIL with/without DS.
func RunFig12(scale PerturbScale, probs []float64) (map[string][]PerturbResult, error) {
	setting := FlapSetting{Label: "30:30", Idle: 30 * time.Second, Offline: 30 * time.Second}
	variants := []Variant{VariantPastry, VariantMPILDS, VariantMPILNoDS}
	out := make(map[string][]PerturbResult)
	for _, v := range variants {
		for _, p := range probs {
			r, err := RunPerturb(scale, setting, p, v)
			if err != nil {
				return nil, fmt.Errorf("fig12 %v p=%.1f: %w", v, p, err)
			}
			out[v.String()] = append(out[v.String()], r)
		}
	}
	return out, nil
}
