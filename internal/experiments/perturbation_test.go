package experiments

import (
	"testing"
	"time"
)

func quickSetting(label string, idle, offline time.Duration) FlapSetting {
	return FlapSetting{Label: label, Idle: idle, Offline: offline}
}

func TestPerturbScaleValidation(t *testing.T) {
	if err := (PerturbScale{Nodes: 8, Requests: 10}).validate(); err == nil {
		t.Error("tiny node count accepted")
	}
	if err := (PerturbScale{Nodes: 100, Requests: 0}).validate(); err == nil {
		t.Error("zero requests accepted")
	}
	if err := QuickPerturbScale().validate(); err != nil {
		t.Error(err)
	}
}

func TestRunPerturbStaticBaseline(t *testing.T) {
	// With flapping probability 0 every variant must be near-perfect.
	scale := QuickPerturbScale()
	setting := quickSetting("30:30", 30*time.Second, 30*time.Second)
	for _, v := range []Variant{VariantPastry, VariantPastryRR, VariantMPILDS, VariantMPILNoDS} {
		r, err := RunPerturb(scale, setting, 0, v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if r.SuccessPct < 95 {
			t.Errorf("%v: static success %.1f%%, want >= 95%%", v, r.SuccessPct)
		}
	}
}

func TestRunPerturbMPILBeatsPastryUnderHeavyFlapping(t *testing.T) {
	// The paper's central result (Figure 11): MPIL sustains a higher
	// success rate than MSPastry under heavy perturbation.
	scale := QuickPerturbScale()
	setting := quickSetting("30:30", 30*time.Second, 30*time.Second)
	const prob = 0.9
	pastryRes, err := RunPerturb(scale, setting, prob, VariantPastry)
	if err != nil {
		t.Fatal(err)
	}
	mpilRes, err := RunPerturb(scale, setting, prob, VariantMPILNoDS)
	if err != nil {
		t.Fatal(err)
	}
	if mpilRes.SuccessPct <= pastryRes.SuccessPct {
		t.Errorf("MPIL %.1f%% not above MSPastry %.1f%% at prob %.1f",
			mpilRes.SuccessPct, pastryRes.SuccessPct, prob)
	}
}

func TestRunPerturbTrafficAccounting(t *testing.T) {
	// Figure 12's two panels: MSPastry's total traffic (maintenance
	// included) dwarfs MPIL's, while MPIL spends more on lookups alone.
	scale := QuickPerturbScale()
	setting := quickSetting("30:30", 30*time.Second, 30*time.Second)
	const prob = 0.5
	pastryRes, err := RunPerturb(scale, setting, prob, VariantPastry)
	if err != nil {
		t.Fatal(err)
	}
	mpilRes, err := RunPerturb(scale, setting, prob, VariantMPILNoDS)
	if err != nil {
		t.Fatal(err)
	}
	if pastryRes.TotalTraffic < 10*mpilRes.TotalTraffic {
		t.Errorf("MSPastry total traffic %d not dominating MPIL's %d",
			pastryRes.TotalTraffic, mpilRes.TotalTraffic)
	}
	if mpilRes.LookupTraffic == 0 || pastryRes.LookupTraffic == 0 {
		t.Error("missing lookup traffic accounting")
	}
	if mpilRes.TotalTraffic != mpilRes.LookupTraffic {
		t.Error("MPIL reported maintenance traffic despite having none")
	}
}

func TestRunPerturbPerturbationHurtsPastry(t *testing.T) {
	// Figure 1's basic monotonicity: more flapping, less success, with a
	// drastic drop at long cycles.
	scale := QuickPerturbScale()
	setting := quickSetting("300:300", 300*time.Second, 300*time.Second)
	low, err := RunPerturb(scale, setting, 0.1, VariantPastry)
	if err != nil {
		t.Fatal(err)
	}
	high, err := RunPerturb(scale, setting, 1.0, VariantPastry)
	if err != nil {
		t.Fatal(err)
	}
	if high.SuccessPct >= low.SuccessPct {
		t.Errorf("success did not degrade: %.1f%% at 0.1 vs %.1f%% at 1.0",
			low.SuccessPct, high.SuccessPct)
	}
	if high.SuccessPct > 70 {
		t.Errorf("300:300 at prob 1.0 gives %.1f%%, want a drastic drop", high.SuccessPct)
	}
}

func TestRunPerturbShortCyclesMilder(t *testing.T) {
	// Figure 1: 45:15 is the mildest setting.
	scale := QuickPerturbScale()
	mild, err := RunPerturb(scale, quickSetting("45:15", 45*time.Second, 15*time.Second), 0.8, VariantPastry)
	if err != nil {
		t.Fatal(err)
	}
	harsh, err := RunPerturb(scale, quickSetting("300:300", 300*time.Second, 300*time.Second), 0.8, VariantPastry)
	if err != nil {
		t.Fatal(err)
	}
	if mild.SuccessPct <= harsh.SuccessPct {
		t.Errorf("45:15 (%.1f%%) not milder than 300:300 (%.1f%%)", mild.SuccessPct, harsh.SuccessPct)
	}
}

func TestRunFig1Structure(t *testing.T) {
	scale := QuickPerturbScale()
	settings := []FlapSetting{
		quickSetting("1:1", time.Second, time.Second),
		quickSetting("30:30", 30*time.Second, 30*time.Second),
	}
	probs := []float64{0.2, 0.8}
	out, err := RunFig1(scale, settings, probs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("%d series, want 2", len(out))
	}
	for label, series := range out {
		if len(series) != len(probs) {
			t.Errorf("series %q has %d points, want %d", label, len(series), len(probs))
		}
		for _, r := range series {
			if r.Variant != VariantPastry {
				t.Errorf("series %q contains variant %v", label, r.Variant)
			}
		}
	}
}

func TestVariantStrings(t *testing.T) {
	tests := map[Variant]string{
		VariantPastry:   "MSPastry",
		VariantPastryRR: "MSPastry with RR",
		VariantMPILDS:   "MPIL with DS",
		VariantMPILNoDS: "MPIL without DS",
	}
	for v, want := range tests {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(v), v.String(), want)
		}
	}
}
