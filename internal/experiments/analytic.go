package experiments

import (
	"discovery/internal/analysis"
	"discovery/internal/idspace"
)

// analysisSpace is the digit base of the paper's Section 5 analysis
// figures. The plotted magnitudes of Figures 7 and 8 (about 1200 local
// maxima at d=10 for 16000 nodes; expected replicas rising 1.55 to 1.63)
// match base-4 digits, consistent with the base-4 examples in Section 4.2.
var analysisSpace = idspace.MustSpace(2)

// Fig7Row is one point of Figure 7: the expected number of local maxima
// in a random regular topology.
type Fig7Row struct {
	Neighbors int
	// Maxima[i] corresponds to Ns[i] from the request.
	Maxima []float64
}

// RunFig7 reproduces Figure 7 over the given node counts (paper: 4000,
// 8000, 16000) and neighbor counts 10..100 in steps of 10.
func RunFig7(ns []int) ([]Fig7Row, error) {
	var out []Fig7Row
	for d := 10; d <= 100; d += 10 {
		row := Fig7Row{Neighbors: d}
		for _, n := range ns {
			v, err := analysis.ExpectedLocalMaxima(analysisSpace, n, d)
			if err != nil {
				return nil, err
			}
			row.Maxima = append(row.Maxima, v)
		}
		out = append(out, row)
	}
	return out, nil
}

// Fig8Row is one point of Figure 8: the expected number of replicas on
// the complete topology K_n.
type Fig8Row struct {
	N        int
	Replicas float64
}

// RunFig8 reproduces Figure 8 over n = 2000..16000 in steps of 2000.
func RunFig8() ([]Fig8Row, error) {
	var out []Fig8Row
	for n := 2000; n <= 16000; n += 2000 {
		v, err := analysis.ExpectedReplicasComplete(analysisSpace, n)
		if err != nil {
			return nil, err
		}
		out = append(out, Fig8Row{N: n, Replicas: v})
	}
	return out, nil
}
