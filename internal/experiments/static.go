// Package experiments contains one driver per table and figure of the
// paper's evaluation, each regenerating the corresponding rows/series:
//
//	Figure 1    MSPastry success under perturbation        (RunFig1)
//	Figure 7    expected local maxima, random regular      (RunFig7)
//	Figure 8    expected replicas, complete topologies     (RunFig8)
//	Figure 9    MPIL insertion behavior vs N               (RunFig9)
//	Figure 10   MPIL lookup latency and traffic vs N       (RunFig10)
//	Tables 1-2  MPIL lookup success grids                  (RunLookupTable)
//	Table 3     actual flows of lookups                    (RunTable3)
//	Figure 11   success under perturbation, all variants   (RunFig11)
//	Figure 12   lookup and total traffic under flapping    (RunFig12)
//
// Every run is deterministic from its Scale's seed. Scales come in Paper
// (the paper's parameters) and Quick (CI-sized) presets; anything in
// between can be configured directly.
package experiments

import (
	"fmt"
	"math/rand"

	"discovery/internal/idspace"
	"discovery/internal/metrics"
	"discovery/internal/mpil"
	"discovery/internal/overlay"
	"discovery/internal/topology"
	"discovery/internal/workload"
)

// TopoKind selects the overlay family of the static experiments.
type TopoKind int

// The two families of Section 6.1.
const (
	TopoPowerLaw TopoKind = iota + 1
	TopoRandom
)

// String implements fmt.Stringer.
func (k TopoKind) String() string {
	switch k {
	case TopoPowerLaw:
		return "power-law"
	case TopoRandom:
		return "random"
	default:
		return fmt.Sprintf("TopoKind(%d)", int(k))
	}
}

// StaticScale sizes the static-overlay experiments.
type StaticScale struct {
	// Sizes are the node counts swept (paper: 4000, 8000, 16000).
	Sizes []int
	// GraphsPerSize is how many independent graphs are averaged
	// (paper: 10).
	GraphsPerSize int
	// RequestsPerGraph is the number of insert/lookup pairs per graph
	// (paper: 100).
	RequestsPerGraph int
	// RandomDegree is the fixed degree of the random overlays
	// (paper: 100).
	RandomDegree int
	// Seed makes the whole experiment reproducible.
	Seed int64
}

// PaperStaticScale returns the paper's Section 6.1 parameters. A full run
// takes minutes; use QuickStaticScale for tests.
func PaperStaticScale() StaticScale {
	return StaticScale{
		Sizes:            []int{4000, 8000, 16000},
		GraphsPerSize:    10,
		RequestsPerGraph: 100,
		RandomDegree:     100,
		Seed:             1,
	}
}

// QuickStaticScale returns a CI-sized configuration preserving the
// experiment's structure.
func QuickStaticScale() StaticScale {
	return StaticScale{
		Sizes:            []int{300, 600},
		GraphsPerSize:    2,
		RequestsPerGraph: 40,
		RandomDegree:     20,
		Seed:             1,
	}
}

// validate rejects unusable scales.
func (s StaticScale) validate() error {
	if len(s.Sizes) == 0 {
		return fmt.Errorf("experiments: no sizes configured")
	}
	for _, n := range s.Sizes {
		if n < 8 {
			return fmt.Errorf("experiments: size %d too small", n)
		}
		if s.RandomDegree >= n {
			return fmt.Errorf("experiments: random degree %d >= size %d", s.RandomDegree, n)
		}
	}
	if s.GraphsPerSize < 1 || s.RequestsPerGraph < 1 {
		return fmt.Errorf("experiments: graphs (%d) and requests (%d) must be positive", s.GraphsPerSize, s.RequestsPerGraph)
	}
	if s.RandomDegree < 1 {
		return fmt.Errorf("experiments: random degree %d must be positive", s.RandomDegree)
	}
	return nil
}

// insertConfig is the paper's fixed insertion configuration for the
// static experiments: max_flows 30, 5 per-flow replicas, duplicate
// suppression on ("a node silently discards a message if the node
// receives the same message more than once").
func insertConfig() mpil.Config {
	return mpil.Config{
		Space:                idspace.MustSpace(4),
		MaxFlows:             30,
		PerFlowReplicas:      5,
		DuplicateSuppression: true,
	}
}

// buildOverlay constructs one overlay of the requested family.
func buildOverlay(kind TopoKind, n, randomDegree int, rng *rand.Rand) (*overlay.Network, error) {
	var g *topology.Graph
	var err error
	switch kind {
	case TopoPowerLaw:
		// Inet substitute: configuration-model power law with exponent
		// 2.2 and minimum degree 2 (the paper's "0% of degree 1
		// nodes").
		g, err = topology.PowerLaw(n, 2.2, 2, rng)
	case TopoRandom:
		g, err = topology.RandomRegular(n, randomDegree, rng)
	default:
		return nil, fmt.Errorf("experiments: unknown topology kind %v", kind)
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: building %v overlay: %w", kind, err)
	}
	return overlay.New(g, rng, nil), nil
}

// Fig9Row is one point of Figure 9's three panels.
type Fig9Row struct {
	N          int
	Replicas   float64 // average replicas per insertion (left panel)
	Traffic    float64 // average messages per insertion (center panel)
	Duplicates float64 // total duplicate messages, averaged over graphs (right panel)
}

// RunFig9 reproduces Figure 9: MPIL insertion behavior over overlays of
// increasing size, with max_flows 30 and 5 per-flow replicas.
func RunFig9(scale StaticScale, kind TopoKind) ([]Fig9Row, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	out := make([]Fig9Row, 0, len(scale.Sizes))
	for si, n := range scale.Sizes {
		var replicas, traffic, dupTotals metrics.Sample
		for gi := 0; gi < scale.GraphsPerSize; gi++ {
			rng := rand.New(rand.NewSource(scale.Seed + int64(1000*si+gi)))
			nw, err := buildOverlay(kind, n, scale.RandomDegree, rng)
			if err != nil {
				return nil, err
			}
			eng, err := mpil.NewEngine(nw, insertConfig(), rng)
			if err != nil {
				return nil, err
			}
			pairs, err := workload.RandomOrigins(scale.RequestsPerGraph, n, rng)
			if err != nil {
				return nil, err
			}
			graphDups := 0
			for _, p := range pairs {
				st := eng.Insert(p.InsertOrigin, p.Key, nil, 0)
				replicas.AddInt(st.Replicas)
				traffic.AddInt(st.Messages)
				graphDups += st.Duplicates
			}
			dupTotals.AddInt(graphDups)
		}
		out = append(out, Fig9Row{
			N:          n,
			Replicas:   replicas.Mean(),
			Traffic:    traffic.Mean(),
			Duplicates: dupTotals.Mean(),
		})
	}
	return out, nil
}

// LookupGridRow is one row of Table 1 or Table 2: success percentages for
// per-flow replicas 1..5 at a given (N, max_flows).
type LookupGridRow struct {
	N        int
	MaxFlows int
	// SuccessPct[r-1] is the success percentage with r per-flow
	// replicas.
	SuccessPct [5]float64
}

// LookupMaxFlows is the paper's lookup max_flows sweep for Tables 1-2.
var LookupMaxFlows = []int{5, 10, 15}

// RunLookupTable reproduces Table 1 (power-law) or Table 2 (random):
// lookup success rates over a (max_flows, per-flow replicas) grid, with
// insertions fixed at max_flows 30 and 5 per-flow replicas.
func RunLookupTable(scale StaticScale, kind TopoKind) ([]LookupGridRow, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	var out []LookupGridRow
	for si, n := range scale.Sizes {
		rates := make(map[[2]int]*metrics.Rate) // (maxFlows, r) -> rate
		for _, mf := range LookupMaxFlows {
			for r := 1; r <= 5; r++ {
				rates[[2]int{mf, r}] = &metrics.Rate{}
			}
		}
		for gi := 0; gi < scale.GraphsPerSize; gi++ {
			rng := rand.New(rand.NewSource(scale.Seed + int64(1000*si+gi)))
			nw, err := buildOverlay(kind, n, scale.RandomDegree, rng)
			if err != nil {
				return nil, err
			}
			eng, err := mpil.NewEngine(nw, insertConfig(), rng)
			if err != nil {
				return nil, err
			}
			pairs, err := workload.RandomOrigins(scale.RequestsPerGraph, n, rng)
			if err != nil {
				return nil, err
			}
			for _, p := range pairs {
				eng.Insert(p.InsertOrigin, p.Key, nil, 0)
			}
			for _, mf := range LookupMaxFlows {
				for r := 1; r <= 5; r++ {
					cfg := mpil.Config{
						Space:                idspace.MustSpace(4),
						MaxFlows:             mf,
						PerFlowReplicas:      r,
						DuplicateSuppression: true,
					}
					rate := rates[[2]int{mf, r}]
					for _, p := range pairs {
						st, err := eng.LookupWith(cfg, p.LookupOrigin, p.Key, 0)
						if err != nil {
							return nil, err
						}
						rate.Record(st.Found)
					}
				}
			}
		}
		for _, mf := range LookupMaxFlows {
			row := LookupGridRow{N: n, MaxFlows: mf}
			for r := 1; r <= 5; r++ {
				row.SuccessPct[r-1] = rates[[2]int{mf, r}].Percent()
			}
			out = append(out, row)
		}
	}
	return out, nil
}

// Table3Row is one row of Table 3: the actual number of flows created by
// lookups with max_flows 10 and 3 per-flow replicas.
type Table3Row struct {
	Kind  TopoKind
	N     int
	Flows float64
}

// RunTable3 reproduces Table 3 for one topology family.
func RunTable3(scale StaticScale, kind TopoKind) ([]Table3Row, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	lookupCfg := mpil.Config{
		Space:                idspace.MustSpace(4),
		MaxFlows:             10,
		PerFlowReplicas:      3,
		DuplicateSuppression: true,
	}
	var out []Table3Row
	for si, n := range scale.Sizes {
		var flows metrics.Sample
		for gi := 0; gi < scale.GraphsPerSize; gi++ {
			rng := rand.New(rand.NewSource(scale.Seed + int64(1000*si+gi)))
			nw, err := buildOverlay(kind, n, scale.RandomDegree, rng)
			if err != nil {
				return nil, err
			}
			eng, err := mpil.NewEngine(nw, insertConfig(), rng)
			if err != nil {
				return nil, err
			}
			pairs, err := workload.RandomOrigins(scale.RequestsPerGraph, n, rng)
			if err != nil {
				return nil, err
			}
			for _, p := range pairs {
				eng.Insert(p.InsertOrigin, p.Key, nil, 0)
			}
			for _, p := range pairs {
				st, err := eng.LookupWith(lookupCfg, p.LookupOrigin, p.Key, 0)
				if err != nil {
					return nil, err
				}
				flows.AddInt(st.Flows)
			}
		}
		out = append(out, Table3Row{Kind: kind, N: n, Flows: flows.Mean()})
	}
	return out, nil
}

// Fig10Row is one point of Figure 10: lookup latency in hops (left panel)
// and lookup traffic in messages (right panel), with max_flows 10 and 5
// per-flow replicas.
type Fig10Row struct {
	N       int
	Hops    float64 // first successful reply, successful lookups only
	Traffic float64 // total messages per lookup
}

// RunFig10 reproduces Figure 10 for one topology family.
func RunFig10(scale StaticScale, kind TopoKind) ([]Fig10Row, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	lookupCfg := mpil.Config{
		Space:                idspace.MustSpace(4),
		MaxFlows:             10,
		PerFlowReplicas:      5,
		DuplicateSuppression: true,
	}
	var out []Fig10Row
	for si, n := range scale.Sizes {
		var hops, traffic metrics.Sample
		for gi := 0; gi < scale.GraphsPerSize; gi++ {
			rng := rand.New(rand.NewSource(scale.Seed + int64(1000*si+gi)))
			nw, err := buildOverlay(kind, n, scale.RandomDegree, rng)
			if err != nil {
				return nil, err
			}
			eng, err := mpil.NewEngine(nw, insertConfig(), rng)
			if err != nil {
				return nil, err
			}
			pairs, err := workload.RandomOrigins(scale.RequestsPerGraph, n, rng)
			if err != nil {
				return nil, err
			}
			for _, p := range pairs {
				eng.Insert(p.InsertOrigin, p.Key, nil, 0)
			}
			for _, p := range pairs {
				st, err := eng.LookupWith(lookupCfg, p.LookupOrigin, p.Key, 0)
				if err != nil {
					return nil, err
				}
				if st.Found {
					hops.AddInt(st.FirstReplyHops)
				}
				traffic.AddInt(st.Messages)
			}
		}
		out = append(out, Fig10Row{N: n, Hops: hops.Mean(), Traffic: traffic.Mean()})
	}
	return out, nil
}
