package experiments

import (
	"math/rand"
	"testing"
	"time"

	"discovery/internal/eventsim"
	"discovery/internal/metrics"
	"discovery/internal/pastry"
	"discovery/internal/perturb"
	"discovery/internal/topology"
	"discovery/internal/workload"
)

// These tests pin the exact numbers the seed implementation produces for
// fixed seeds. The simulator core (eventsim's scheduler, idspace's digit
// arithmetic) has been rewritten for speed under a hard "same seeds, same
// numbers" equivalence bar; any change to pop order, RNG draw order, or
// metric values shows up here as a hard failure, not a statistical drift.

func TestSeedEquivalencePerturb(t *testing.T) {
	if testing.Short() {
		t.Skip("perturbation equivalence run is not short")
	}
	scale := PerturbScale{Nodes: 60, Requests: 12, Seed: 7}

	rp, err := RunPerturb(scale,
		FlapSetting{Label: "45:15", Idle: 45 * time.Second, Offline: 15 * time.Second},
		0.8, VariantPastry)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rp.SuccessPct, 100.0; got != want {
		t.Errorf("pastry 45:15 p=0.8 SuccessPct = %v, want %v", got, want)
	}
	if got, want := rp.LookupTraffic, uint64(31); got != want {
		t.Errorf("pastry 45:15 p=0.8 LookupTraffic = %v, want %v", got, want)
	}
	if got, want := rp.TotalTraffic, uint64(5870); got != want {
		t.Errorf("pastry 45:15 p=0.8 TotalTraffic = %v, want %v", got, want)
	}

	rm, err := RunPerturb(scale,
		FlapSetting{Label: "30:30", Idle: 30 * time.Second, Offline: 30 * time.Second},
		0.9, VariantMPILNoDS)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := rm.SuccessPct, 100*(float64(11)/float64(12)); got != want {
		t.Errorf("mpil 30:30 p=0.9 SuccessPct = %v, want %v", got, want)
	}
	if got, want := rm.LookupTraffic, uint64(176); got != want {
		t.Errorf("mpil 30:30 p=0.9 LookupTraffic = %v, want %v", got, want)
	}
}

func TestSeedEquivalenceStatic(t *testing.T) {
	scale := StaticScale{
		Sizes:            []int{120},
		GraphsPerSize:    1,
		RequestsPerGraph: 15,
		RandomDegree:     10,
		Seed:             3,
	}
	rows, err := RunLookupTable(scale, TopoRandom)
	if err != nil {
		t.Fatal(err)
	}
	want := [][5]float64{
		{100 * 13.0 / 15, 100, 100, 100, 100},
		{100 * 13.0 / 15, 100, 100, 100, 100},
		{100 * 13.0 / 15, 100, 100, 100, 100},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for i, row := range rows {
		if row.SuccessPct != want[i] {
			t.Errorf("row %d (maxflows %d) SuccessPct = %v, want %v", i, row.MaxFlows, row.SuccessPct, want[i])
		}
	}
}

// TestSeedEquivalenceExecuted drives the full Pastry perturbation pipeline
// directly so it can also pin the scheduler's executed-event count, the
// strictest possible witness that the rebuilt event queue pops events in
// exactly the seed order.
func TestSeedEquivalenceExecuted(t *testing.T) {
	const seed = 11
	sim := eventsim.New(seed)
	rng := rand.New(rand.NewSource(seed))
	const nodes = 48
	under, err := topology.NewUnderlay(nodes, topology.DefaultTransitStub(nodes), rng)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := pastry.New(nodes, pastry.DefaultParams(), sim, rng, under.Latency, nil)
	if err != nil {
		t.Fatal(err)
	}
	pairs := workload.SingleOrigin(10, 0, rng)
	fl, err := perturb.New(nodes, 30*time.Second, 30*time.Second, 0.7, rng)
	if err != nil {
		t.Fatal(err)
	}

	inserted := 0
	for _, p := range pairs {
		nw.Insert(p.InsertOrigin, p.Key, nil, func(ok bool, _ int) {
			if ok {
				inserted++
			}
		})
	}
	sim.Run()
	if inserted != len(pairs) {
		t.Fatalf("only %d/%d static insertions succeeded", inserted, len(pairs))
	}

	nw.SetAvailability(fl)
	nw.StartMaintenance()
	var success metrics.Rate
	start := fl.StartTime() + fl.Cycle()
	if now := sim.Now(); now > start {
		start = now + fl.Cycle()
	}
	var last time.Duration
	for i, p := range pairs {
		p := p
		at := start + time.Duration(i)*fl.Cycle()
		last = at
		sim.At(at, func() {
			nw.Lookup(p.LookupOrigin, p.Key, func(ok bool, _ int) {
				success.Record(ok)
			})
		})
	}
	sim.RunUntil(last + 2*pastry.DefaultParams().LookupTimeout)
	nw.StopMaintenance()
	sim.Run()

	if got, want := success.Percent(), 100.0; got != want {
		t.Errorf("success%% = %v, want %v", got, want)
	}
	if got, want := sim.Executed(), uint64(8068); got != want {
		t.Errorf("Executed() = %d, want %d", got, want)
	}
	if got, want := nw.Counters().Total(), uint64(3936); got != want {
		t.Errorf("total traffic = %d, want %d", got, want)
	}
}
