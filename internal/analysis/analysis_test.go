package analysis

import (
	"math"
	"math/rand"
	"testing"

	"discovery/internal/idspace"
	"discovery/internal/overlay"
	"discovery/internal/topology"
)

func TestPMFSumsToOne(t *testing.T) {
	for _, b := range []int{1, 2, 4, 8} {
		s := idspace.MustSpace(b)
		pmf := CommonDigitsPMF(s)
		sum := 0.0
		for _, v := range pmf {
			if v < 0 {
				t.Fatalf("b=%d: negative pmf value %v", b, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("b=%d: pmf sums to %v, want 1", b, sum)
		}
	}
}

func TestPMFMeanMatchesTheory(t *testing.T) {
	// Mean of Binomial(M, 1/base) is M/base.
	for _, b := range []int{2, 4} {
		s := idspace.MustSpace(b)
		pmf := CommonDigitsPMF(s)
		mean := 0.0
		for k, v := range pmf {
			mean += float64(k) * v
		}
		want := float64(s.Digits()) / float64(s.Base())
		if math.Abs(mean-want) > 1e-6 {
			t.Errorf("b=%d: pmf mean %v, want %v", b, mean, want)
		}
	}
}

func TestLocalMaximaProbMonotoneInDegree(t *testing.T) {
	// More neighbors means a harder local-maximum test, so C must be
	// non-increasing in d.
	s := idspace.MustSpace(4)
	prev := math.Inf(1)
	for _, d := range []int{1, 2, 5, 10, 20, 50, 100, 500} {
		c, err := LocalMaximaProb(s, d)
		if err != nil {
			t.Fatal(err)
		}
		if c <= 0 || c >= 1 {
			t.Errorf("d=%d: C = %v outside (0,1)", d, c)
		}
		if c > prev {
			t.Errorf("C not monotone: C(%d) = %v > previous %v", d, c, prev)
		}
		prev = c
	}
}

func TestLocalMaximaProbEdgeCases(t *testing.T) {
	s := idspace.MustSpace(4)
	if c, err := LocalMaximaProb(s, 0); err != nil || c != 1 {
		t.Errorf("C(d=0) = %v, %v; want 1, nil", c, err)
	}
	if _, err := LocalMaximaProb(s, -1); err == nil {
		t.Error("negative degree accepted")
	}
}

func TestExpectedLocalMaximaScalesWithN(t *testing.T) {
	// Figure 7's family property: at fixed d, E[maxima] is linear in N.
	s := idspace.MustSpace(4)
	e4, err := ExpectedLocalMaxima(s, 4000, 50)
	if err != nil {
		t.Fatal(err)
	}
	e8, err := ExpectedLocalMaxima(s, 8000, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e8-2*e4) > 1e-6 {
		t.Errorf("E[8000] = %v, want exactly 2x E[4000] = %v", e8, 2*e4)
	}
}

func TestExpectedHopsInverse(t *testing.T) {
	s := idspace.MustSpace(4)
	c, err := LocalMaximaProb(s, 30)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ExpectedHops(s, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h*c-1) > 1e-9 {
		t.Errorf("hops * C = %v, want 1", h*c)
	}
}

func TestLocalMaximaProbDist(t *testing.T) {
	s := idspace.MustSpace(4)
	// A point mass must agree with the fixed-degree form.
	cd, err := LocalMaximaProb(s, 25)
	if err != nil {
		t.Fatal(err)
	}
	cdist, err := LocalMaximaProbDist(s, map[int]float64{25: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cd-cdist) > 1e-12 {
		t.Errorf("point-mass dist %v != fixed-degree %v", cdist, cd)
	}
	// A mixture must lie between its components.
	c10, _ := LocalMaximaProb(s, 10)
	c100, _ := LocalMaximaProb(s, 100)
	mix, err := LocalMaximaProbDist(s, map[int]float64{10: 0.5, 100: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if mix < c100 || mix > c10 {
		t.Errorf("mixture %v outside [%v, %v]", mix, c100, c10)
	}
}

func TestLocalMaximaProbDistErrors(t *testing.T) {
	s := idspace.MustSpace(4)
	cases := []map[int]float64{
		{10: 0.5},           // does not sum to 1
		{-3: 1},             // negative degree
		{10: -0.5, 20: 1.5}, // negative probability
	}
	for i, dist := range cases {
		if _, err := LocalMaximaProbDist(s, dist); err == nil {
			t.Errorf("case %d accepted: %v", i, dist)
		}
	}
}

func TestExpectedReplicasCompleteMatchesFigure8(t *testing.T) {
	// The paper's Figure 8 plots roughly 1.55 at N=2000 rising to 1.63
	// at N=16000; base-4 digits (b=2) reproduce that curve.
	s := idspace.MustSpace(2)
	prev := 0.0
	for _, n := range []int{2000, 4000, 8000, 16000} {
		r, err := ExpectedReplicasComplete(s, n)
		if err != nil {
			t.Fatal(err)
		}
		if r < 1.45 || r > 1.7 {
			t.Errorf("N=%d: E[replicas] = %v, want in (1.45, 1.7) per Figure 8", n, r)
		}
		if r < prev {
			t.Errorf("E[replicas] decreased: %v after %v", r, prev)
		}
		prev = r
	}
	// Spot values from the probe of the paper's axis range.
	r16k, err := ExpectedReplicasComplete(s, 16000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r16k-1.625) > 0.01 {
		t.Errorf("E[replicas](16000) = %v, want about 1.625", r16k)
	}
}

func TestExpectedLocalMaximaMatchesFigure7(t *testing.T) {
	// Figure 7 at d=10 plots about 300/600/1200 maxima for
	// 4000/8000/16000 nodes; base-4 digits give 299/598/1196.
	s := idspace.MustSpace(2)
	tests := []struct {
		n    int
		want float64
	}{
		{4000, 299}, {8000, 598}, {16000, 1196},
	}
	for _, tt := range tests {
		got, err := ExpectedLocalMaxima(s, tt.n, 10)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-tt.want) > 3 {
			t.Errorf("E[maxima](N=%d, d=10) = %.1f, want about %.0f", tt.n, got, tt.want)
		}
	}
}

func TestTiesProbAtLeastStrict(t *testing.T) {
	// The tie-aware local-maximum event contains the strict event.
	for _, b := range []int{1, 2, 4} {
		s := idspace.MustSpace(b)
		for _, d := range []int{1, 10, 100} {
			strict, err := LocalMaximaProb(s, d)
			if err != nil {
				t.Fatal(err)
			}
			ties, err := LocalMaximaProbTies(s, d)
			if err != nil {
				t.Fatal(err)
			}
			if ties < strict {
				t.Errorf("b=%d d=%d: ties %v < strict %v", b, d, ties, strict)
			}
		}
	}
}

func TestExpectedReplicasCompleteEdgeCases(t *testing.T) {
	s := idspace.MustSpace(4)
	if r, err := ExpectedReplicasComplete(s, 1); err != nil || r != 1 {
		t.Errorf("K_1 replicas = %v, %v; want 1", r, err)
	}
	if _, err := ExpectedReplicasComplete(s, 0); err == nil {
		t.Error("n=0 accepted")
	}
}

// TestMonteCarloLocalMaxima cross-validates the closed form against a
// direct simulation: build random regular overlays, draw random message
// IDs, count nodes whose metric value no neighbor exceeds.
func TestMonteCarloLocalMaxima(t *testing.T) {
	s := idspace.MustSpace(4)
	rng := rand.New(rand.NewSource(77))
	const n, d = 600, 20
	g, err := topology.RandomRegular(n, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := overlay.New(g, rng, nil)

	const trials = 60
	strictMaxima, tieMaxima := 0, 0
	for trial := 0; trial < trials; trial++ {
		key := idspace.Random(rng)
		for u := 0; u < n; u++ {
			self := s.CommonDigits(key, nw.ID(u))
			strict, withTies := true, true
			for _, v := range nw.Neighbors(u) {
				c := s.CommonDigits(key, nw.ID(v))
				if c >= self {
					strict = false
				}
				if c > self {
					withTies = false
				}
			}
			if strict && self >= 1 {
				strictMaxima++
			}
			if withTies && self >= 1 {
				tieMaxima++
			}
		}
	}
	wantStrict, err := ExpectedLocalMaxima(s, n, d)
	if err != nil {
		t.Fatal(err)
	}
	wantTies, err := ExpectedLocalMaximaTies(s, n, d)
	if err != nil {
		t.Fatal(err)
	}
	// The analysis assumes independent neighbor draws; a real graph has
	// slight dependence, so allow 15% relative error.
	check := func(name string, measuredCount int, want float64) {
		measured := float64(measuredCount) / float64(trials)
		if measured < want*0.85 || measured > want*1.15 {
			t.Errorf("%s Monte Carlo local maxima %.1f, closed form %.1f: beyond 15%%", name, measured, want)
		}
	}
	check("strict", strictMaxima, wantStrict)
	check("ties", tieMaxima, wantTies)
}

// TestMonteCarloCompleteReplicas does the same for the tie-counting
// complete-topology formula.
func TestMonteCarloCompleteReplicas(t *testing.T) {
	s := idspace.MustSpace(4)
	rng := rand.New(rand.NewSource(78))
	const n = 800
	ids := make([]idspace.ID, n)
	for i := range ids {
		ids[i] = idspace.Random(rng)
	}
	const trials = 400
	total := 0
	for trial := 0; trial < trials; trial++ {
		key := idspace.Random(rng)
		best := -1
		count := 0
		for _, id := range ids {
			c := s.CommonDigits(key, id)
			switch {
			case c > best:
				best, count = c, 1
			case c == best:
				count++
			}
		}
		total += count
	}
	measured := float64(total) / float64(trials)
	want, err := ExpectedReplicasComplete(s, n)
	if err != nil {
		t.Fatal(err)
	}
	if measured < want*0.9 || measured > want*1.1 {
		t.Errorf("Monte Carlo replicas %.3f, closed form %.3f: beyond 10%%", measured, want)
	}
}

func BenchmarkLocalMaximaProb(b *testing.B) {
	s := idspace.MustSpace(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LocalMaximaProb(s, 100); err != nil {
			b.Fatal(err)
		}
	}
}
