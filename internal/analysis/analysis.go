// Package analysis implements the closed-form results of the paper's
// Section 5: the probability that a node is a local maximum for a random
// message ID, the expected number of local maxima (an upper bound on the
// number of replicas), the expected random-walk hop count to a local
// maximum, and the expected replica count on complete topologies.
//
// Notation follows the paper: IDs are M-digit strings over a base-2^b
// alphabet, a node is "k-common" with a message when exactly k digit
// positions match, and
//
//	A(k) = C(M,k) (1/2^b)^k ((2^b-1)/2^b)^(M-k)      (pmf of k-commonness)
//	B(k) = sum_{j<k}  A(j)                           (all-below CDF)
//	D(k) = sum_{j<=k} A(j)                           (at-or-below CDF)
//	C    = sum_{k>=1} A(k) B(k)^d                    (local-maximum prob.)
//
// Everything is evaluated in log space where exponents get large (the
// complete-topology case raises D to the N-1 power with N up to 16000).
package analysis

import (
	"fmt"
	"math"

	"discovery/internal/idspace"
)

// CommonDigitsPMF returns A(k) for k = 0..M: the probability that a
// uniformly random node ID shares exactly k digit positions with a given
// message ID.
func CommonDigitsPMF(s idspace.Space) []float64 {
	m := s.Digits()
	p := 1 / float64(s.Base())
	out := make([]float64, m+1)
	for k := 0; k <= m; k++ {
		out[k] = math.Exp(logBinomPMF(m, k, p))
	}
	return out
}

// LocalMaximaProb returns C, the probability that a node with d neighbors
// is a local maximum for a random message ID (paper Section 5.1, inner
// sum). Neighbor IDs are treated as independent uniform draws, the
// approximation the paper's analysis makes.
func LocalMaximaProb(s idspace.Space, d int) (float64, error) {
	if d < 0 {
		return 0, fmt.Errorf("analysis: negative degree %d", d)
	}
	if d == 0 {
		return 1, nil // no neighbors: vacuously a local maximum
	}
	m := s.Digits()
	p := 1 / float64(s.Base())
	c := 0.0
	cdf := 0.0 // B(k) accumulates A(0..k-1)
	for k := 0; k <= m; k++ {
		a := math.Exp(logBinomPMF(m, k, p))
		if k >= 1 && cdf > 0 {
			// A(k) * B(k)^d, in log space for large d.
			c += a * math.Exp(float64(d)*math.Log(cdf))
		}
		cdf += a
	}
	return c, nil
}

// ExpectedLocalMaxima returns N*C for a random regular topology of n nodes
// with degree d — the series plotted in the paper's Figure 7.
func ExpectedLocalMaxima(s idspace.Space, n, d int) (float64, error) {
	c, err := LocalMaximaProb(s, d)
	if err != nil {
		return 0, err
	}
	return float64(n) * c, nil
}

// ExpectedHops returns 1/C, the expected number of random-walk hops to
// reach a local maximum under the paper's uniform-distribution assumption
// (Section 5.1).
func ExpectedHops(s idspace.Space, d int) (float64, error) {
	c, err := LocalMaximaProb(s, d)
	if err != nil {
		return 0, err
	}
	if c == 0 {
		return math.Inf(1), nil
	}
	return 1 / c, nil
}

// LocalMaximaProbTies is the tie-aware variant of LocalMaximaProb: it uses
// D(k)^d (at-or-below) instead of B(k)^d (strictly-below), so it counts
// nodes that no neighbor strictly exceeds — the condition MPIL's insertion
// actually stores under (Section 4.4). The paper's Figure 7 plots the
// strict form; the gap between the two is exactly the tie mass that gives
// MPIL its free redundancy, so both are exposed and benchmarked.
func LocalMaximaProbTies(s idspace.Space, d int) (float64, error) {
	if d < 0 {
		return 0, fmt.Errorf("analysis: negative degree %d", d)
	}
	if d == 0 {
		return 1, nil
	}
	m := s.Digits()
	p := 1 / float64(s.Base())
	c := 0.0
	cdf := 0.0
	for k := 0; k <= m; k++ {
		a := math.Exp(logBinomPMF(m, k, p))
		cdf += a // D(k) includes k
		if k >= 1 {
			c += a * math.Exp(float64(d)*math.Log(cdf))
		}
	}
	return c, nil
}

// ExpectedLocalMaximaTies returns N * LocalMaximaProbTies.
func ExpectedLocalMaximaTies(s idspace.Space, n, d int) (float64, error) {
	c, err := LocalMaximaProbTies(s, d)
	if err != nil {
		return 0, err
	}
	return float64(n) * c, nil
}

// LocalMaximaProbDist generalizes LocalMaximaProb to an arbitrary degree
// distribution (paper Section 5.1's outer sum over P(#neighbors = d)).
// dist maps degree to probability; probabilities must be non-negative and
// sum to 1 within a small tolerance.
func LocalMaximaProbDist(s idspace.Space, dist map[int]float64) (float64, error) {
	total := 0.0
	for d, p := range dist {
		if d < 0 {
			return 0, fmt.Errorf("analysis: negative degree %d in distribution", d)
		}
		if p < 0 {
			return 0, fmt.Errorf("analysis: negative probability %v for degree %d", p, d)
		}
		total += p
	}
	if math.Abs(total-1) > 1e-9 {
		return 0, fmt.Errorf("analysis: degree distribution sums to %v, want 1", total)
	}
	c := 0.0
	for d, p := range dist {
		cd, err := LocalMaximaProb(s, d)
		if err != nil {
			return 0, err
		}
		c += p * cd
	}
	return c, nil
}

// ExpectedReplicasComplete returns the expected number of replicas on the
// complete topology K_n (paper Section 5.2, Figure 8):
//
//	N * sum_k A(k) * D(k)^(N-1)
//
// where D includes ties because an insertion stores at every node whose
// metric value no neighbor strictly exceeds.
func ExpectedReplicasComplete(s idspace.Space, n int) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("analysis: node count %d must be positive", n)
	}
	if n == 1 {
		return 1, nil
	}
	m := s.Digits()
	p := 1 / float64(s.Base())
	sum := 0.0
	cdf := 0.0
	for k := 0; k <= m; k++ {
		a := math.Exp(logBinomPMF(m, k, p))
		cdf += a // D(k): at-or-below, includes k
		if cdf > 0 {
			sum += a * math.Exp(float64(n-1)*math.Log(cdf))
		}
	}
	return float64(n) * sum, nil
}

// logBinomPMF returns log of the Binomial(m, p) pmf at k.
func logBinomPMF(m, k int, p float64) float64 {
	if k < 0 || k > m {
		return math.Inf(-1)
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x + 1))
		return v
	}
	return lg(m) - lg(k) - lg(m-k) + float64(k)*math.Log(p) + float64(m-k)*math.Log1p(-p)
}
