// Package server is discoveryd's network layer: a TCP server speaking the
// internal/wire binary protocol in front of a discovery.Pool.
//
// # Architecture
//
// Each accepted connection gets a reader goroutine and a writer goroutine.
// The reader decodes frames and dispatches keyed requests to a bounded
// per-shard queue; one worker goroutine per shard pops requests and
// executes them on the shard that owns the key (the same key-hash mapping
// discovery.Pool uses), so a single-threaded MPIL engine never sees two
// requests at once. Responses carry the request's correlator back and are
// handed to the connection's writer, which means a client may pipeline
// requests freely — responses for different shards can complete out of
// order, and the reqID is what ties them together.
//
// # Batching
//
// Batches, not single requests, are the unit of work on both halves of
// the hot path. A shard worker blocks for one task, then greedily drains
// whatever else is already queued (up to MaxBatch) and executes the run
// as one Pool.ExecBatch: one shard-lock acquisition, and on durable
// pools one multi-record write-ahead append whose single fsync covers
// every mutation in the batch — acks are only sent after that shared
// sync returns, so the write-ahead contract is per-response intact. A
// connection writer likewise blocks for one encoded response, drains the
// rest of its queue (up to CoalesceFrames/CoalesceBytes), and hands the
// run to the kernel as one writev(2) via net.Buffers, so a pipelining
// client costs about one syscall per batch instead of one per response.
// Under light load every batch has size one and behavior is identical to
// the unbatched path; batches emerge exactly when queues are non-empty,
// which is when the amortization pays.
//
// # Backpressure
//
// Shard queues are bounded. When a queue is full the reader blocks before
// reading the next frame, which stops draining the connection's socket
// and lets TCP flow control push back on the client — the server never
// buffers an unbounded number of requests. Stats requests carry no key
// and are answered inline by the reader.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	discovery "discovery"
	"discovery/internal/batchio"
	"discovery/internal/idspace"
	"discovery/internal/metrics"
	"discovery/internal/ratelog"
	"discovery/internal/trace"
	"discovery/internal/wire"
)

// Config parameterizes a Server.
type Config struct {
	// Pool executes requests. Required.
	Pool *discovery.Pool
	// QueueDepth bounds each shard's request queue (default 128).
	QueueDepth int
	// MaxBatch bounds how many queued requests one shard worker drains
	// and executes as a single Pool.ExecBatch (default 64; capped at
	// QueueDepth+1 since a drain can never observe more). Mutations in a
	// batch share one write-ahead append and one fsync on durable pools.
	MaxBatch int
	// CoalesceFrames and CoalesceBytes bound one vectored response
	// write: a connection writer drains at most CoalesceFrames queued
	// responses (default batchio.DefaultMaxFrames) or roughly
	// CoalesceBytes bytes (default batchio.DefaultMaxBytes) into a
	// single writev(2).
	CoalesceFrames int
	CoalesceBytes  int
	// WriteTimeout bounds any single response write (default 30s). A
	// client that stops reading responses trips it and is disconnected,
	// which is what keeps one stalled connection from wedging a shard
	// worker — and with it 1/shards of the keyspace — indefinitely.
	WriteTimeout time.Duration
	// Store, when set, is closed by Close after the shard queues drain,
	// so every executed mutation has been logged before the store's
	// final snapshot and log shutdown run. Wire a *discovery.DurablePool
	// here; leave nil for in-memory pools.
	Store io.Closer
	// Owns reports whether this process's pool owns key. nil means the
	// pool owns the whole keyspace (the single-process deployment).
	// Keyed requests for keys outside the region are handed to Forward
	// instead of a shard queue.
	Owns func(key idspace.ID) bool
	// Forward relays one keyed request this process does not own —
	// typically to the owning cluster node (internal/p2p). respond must
	// be called exactly once, from any goroutine; the server stamps the
	// request's reqID onto the response and delivers it. value is owned
	// by the callee. trc is the request's sampled trace ID (0 =
	// untraced) for the forwarder to propagate across the peer hop.
	// Required when Owns is set.
	Forward func(typ wire.Type, key idspace.ID, origin uint32, value []byte, trc uint64, respond func(*wire.Msg))
	// Replicate, when set, fans one locally-accepted mutation out to the
	// key's co-replicas and returns once a quorum of them (coordinator
	// excluded) has committed — p2p.Node.Replicate has the right shape.
	// The fan-out runs concurrently with local shard execution; the ack
	// is withheld until both land, and a fan-out error turns the reply
	// into TError even when the local commit succeeded (the replicas
	// reconcile via anti-entropy). Leave nil with replication 1: every
	// mutation would pay a no-op goroutine for a quorum of one.
	Replicate func(typ wire.Type, key idspace.ID, origin uint32, value []byte, trc uint64) error
	// Replication is the cluster's replication factor as reported to
	// cluster-smart clients in TMembersOK; 0 is reported as 1.
	Replication uint32
	// ClusterHash and Members enable cluster-smart clients. ClusterHash
	// is the membership fingerprint (p2p.Cluster.Hash); Members returns
	// the client-serving address table by cluster slot ("" = unknown;
	// p2p.Node.Members has the right shape). Set both or neither: with
	// them, TMembers is answered with the table, and TRoute frames from
	// clients execute locally after a fingerprint check — a mismatch is
	// refused with TWrongView (refresh and retry), a matched-fingerprint
	// misroute with TError (a bug, not staleness). Routed requests are
	// never forwarded: route-direct means one hop, enforced server-side.
	ClusterHash uint64
	Members     func() []string
	// ReadBuffer sizes each connection's buffered reader, letting a
	// pipelining client's burst decode several frames per read(2).
	// 0 selects the 32 KiB default; negative disables buffering (frames
	// are then read with at most one syscall of readahead — for tests
	// that need byte-accurate backpressure).
	ReadBuffer int
	// Metrics, when non-nil, receives the serving layer's
	// instrumentation: server.requests{op=...}, server.routed /
	// forwarded / wrongview / shed counters, per-op service-time and
	// queue-wait histograms, response coalescing stats, and live
	// per-shard queue depth gauges. nil leaves the hot path unmetered
	// (not even timestamped).
	Metrics *metrics.Registry
	// Tracer, when non-nil, records per-request spans for sampled
	// requests (internal/trace): dispatch, queue wait, WAL commit share,
	// shard execution share, forward hop, response flush. Direct client
	// requests are sampled by the tracer's own rate; TRoute requests are
	// traced iff their wire trailer carries a trace ID, so a trace joins
	// across every node the request touches. nil disables tracing
	// entirely — the hot path is not even timestamped.
	Tracer *trace.Tracer
	// SlowThreshold, when positive, logs one rate-limited span breakdown
	// (queue/exec/WAL shares, batch size, trace ID) for every keyed
	// request whose enqueue→response time exceeds it.
	SlowThreshold time.Duration
	// Logf, when set, receives connection-level error lines.
	Logf func(format string, args ...any)
}

// Server serves the wire protocol over TCP. Create with New, start with
// Serve or Start, stop with Close.
type Server struct {
	pool         *discovery.Pool
	store        io.Closer
	logf         func(format string, args ...any)
	owns         func(key idspace.ID) bool
	forward      func(typ wire.Type, key idspace.ID, origin uint32, value []byte, trc uint64, respond func(*wire.Msg))
	replicate    func(typ wire.Type, key idspace.ID, origin uint32, value []byte, trc uint64) error
	replication  uint32
	tracer       *trace.Tracer
	slowNanos    int64
	slowLogf     func(format string, args ...any)
	queues       []chan task
	writeTimeout time.Duration
	maxBatch     int
	coFrames     int
	coBytes      int
	readBuffer   int
	clusterHash  uint64
	members      func() []string

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	done     chan struct{}
	readerWg sync.WaitGroup // connection readers
	workerWg sync.WaitGroup // shard workers
	connWg   sync.WaitGroup // writers and per-connection drainers

	bufs sync.Pool // *[]byte response frame buffers

	// Instrumentation (all nil without Config.Metrics; metered guards
	// the timestamping so the unmetered hot path stays untouched).
	metered    bool
	reqInsert  *metrics.Counter
	reqLookup  *metrics.Counter
	reqDelete  *metrics.Counter
	reqStats   *metrics.Counter
	routed     *metrics.Counter // TRoute frames executed locally
	forwarded  *metrics.Counter // keyed requests relayed to their owner
	wrongview  *metrics.Counter // TRoute refusals for a stale fingerprint
	shed       *metrics.Counter // connections severed by a stalled writer
	queueWait  *metrics.Histogram // enqueue → batch execution start
	svcInsert  *metrics.Histogram // per-op share of batch service time
	svcLookup  *metrics.Histogram
	svcDelete  *metrics.Histogram
	batchTasks *metrics.Histogram // tasks per executed shard batch
	wstats     batchio.Stats      // response writev coalescing
}

// task is one keyed request bound for a shard worker.
type task struct {
	c      *conn
	typ    wire.Type
	reqID  uint64
	key    idspace.ID
	origin uint32
	value  []byte     // insert payload, owned by the task
	enq    time.Time  // enqueue instant; zero when untimestamped
	trace  uint64     // sampled trace ID; 0 = untraced
	repl   chan error // in-flight replica fan-out result; nil = none
}

// outFrame is one encoded response bound for a connection writer: the
// pooled frame buffer plus the trace context the flush span needs.
type outFrame struct {
	bp    *[]byte
	trace uint64 // trace ID of the originating request; 0 = untraced
	enq   int64  // unix-nano enqueue instant; set only when traced
}

// conn pairs a network connection with its outbound response queue.
type conn struct {
	nc       net.Conn
	out      chan outFrame // encoded response frames (pooled)
	dead     chan struct{} // closed when the writer gives up
	deadOnce sync.Once
	inflight sync.WaitGroup // keyed requests not yet answered
}

// kill marks the connection's writer as gone so shard workers stop
// offering it responses.
func (c *conn) kill() { c.deadOnce.Do(func() { close(c.dead) }) }

// New builds a Server and starts its shard workers. The server is ready
// for Serve immediately.
func New(cfg Config) (*Server, error) {
	if cfg.Pool == nil {
		return nil, errors.New("server: Config.Pool is required")
	}
	if cfg.Owns != nil && cfg.Forward == nil {
		return nil, errors.New("server: Config.Forward is required when Owns is set")
	}
	if (cfg.ClusterHash == 0) != (cfg.Members == nil) {
		return nil, errors.New("server: Config.ClusterHash and Members must be set together")
	}
	depth := cfg.QueueDepth
	if depth <= 0 {
		depth = 128
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	wt := cfg.WriteTimeout
	if wt <= 0 {
		wt = 30 * time.Second
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 64
	}
	if maxBatch > depth+1 {
		maxBatch = depth + 1 // one blocking receive + a full queue drain
	}
	s := &Server{
		pool:         cfg.Pool,
		store:        cfg.Store,
		logf:         logf,
		owns:         cfg.Owns,
		forward:      cfg.Forward,
		replicate:    cfg.Replicate,
		replication:  cfg.Replication,
		tracer:       cfg.Tracer,
		slowNanos:    int64(cfg.SlowThreshold),
		queues:       make([]chan task, cfg.Pool.NumShards()),
		writeTimeout: wt,
		maxBatch:     maxBatch,
		coFrames:     cfg.CoalesceFrames,
		coBytes:      cfg.CoalesceBytes,
		readBuffer:   cfg.ReadBuffer,
		clusterHash:  cfg.ClusterHash,
		members:      cfg.Members,
		conns:        make(map[net.Conn]struct{}),
		done:         make(chan struct{}),
	}
	if s.replication == 0 {
		s.replication = 1
	}
	s.bufs.New = func() any {
		b := make([]byte, 0, 512)
		return &b
	}
	if s.slowNanos > 0 {
		// A saturated run makes every request "slow"; the limiter keeps
		// the breakdowns to a bounded trickle and counts what it drops.
		s.slowLogf = ratelog.New(4, 2).Wrap(logf)
	}
	if reg := cfg.Metrics; reg != nil {
		s.metered = true
		s.reqInsert = reg.Counter("server.requests{op=insert}")
		s.reqLookup = reg.Counter("server.requests{op=lookup}")
		s.reqDelete = reg.Counter("server.requests{op=delete}")
		s.reqStats = reg.Counter("server.requests{op=stats}")
		s.routed = reg.Counter("server.routed")
		s.forwarded = reg.Counter("server.forwarded")
		s.wrongview = reg.Counter("server.wrongview")
		s.shed = reg.Counter("server.shed")
		s.queueWait = reg.Histogram("server.queue_wait_seconds", 1e-9)
		s.svcInsert = reg.Histogram("server.service_seconds{op=insert}", 1e-9)
		s.svcLookup = reg.Histogram("server.service_seconds{op=lookup}", 1e-9)
		s.svcDelete = reg.Histogram("server.service_seconds{op=delete}", 1e-9)
		s.batchTasks = reg.Histogram("server.batch_tasks", 1)
		s.wstats = batchio.Stats{
			Writes:         reg.Counter("server.writes"),
			Frames:         reg.Counter("server.frames"),
			Bytes:          reg.Counter("server.write_bytes"),
			FramesPerWrite: reg.Histogram("server.frames_per_write", 1),
		}
		reg.GaugeFunc("server.connections", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.conns))
		})
	}
	for i := range s.queues {
		s.queues[i] = make(chan task, depth)
		if cfg.Metrics != nil {
			q := s.queues[i]
			cfg.Metrics.GaugeFunc(fmt.Sprintf("server.queue_depth{shard=%d}", i), func() float64 {
				return float64(len(q))
			})
		}
		s.workerWg.Add(1)
		go s.shardWorker(i)
	}
	return s, nil
}

// Start listens on addr and serves in a background goroutine, returning
// the bound address (useful with ":0").
func (s *Server) Start(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go s.Serve(lis) //nolint:errcheck // surfaced via Close
	return lis.Addr(), nil
}

// Serve accepts connections on lis until Close. It returns nil after a
// clean shutdown and the accept error otherwise.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		lis.Close()
		return errors.New("server: already closed")
	}
	s.lis = lis
	s.mu.Unlock()

	for {
		nc, err := lis.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return err
			}
		}
		c := &conn{
			nc:   nc,
			out:  make(chan outFrame, 64),
			dead: make(chan struct{}),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return nil
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()

		s.connWg.Add(1)
		go s.writeLoop(c)
		s.readerWg.Add(1)
		go s.readLoop(c)
	}
}

// Close shuts the server down: stop accepting, sever connections, drain
// the shard queues, and wait for every goroutine. Safe to call once.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	lis := s.lis
	close(s.done)
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	// Readers stop (their sockets are closed), so no new tasks enter the
	// queues; then workers drain what remains; then writers finish.
	s.readerWg.Wait()
	for _, q := range s.queues {
		close(q)
	}
	s.workerWg.Wait()
	// Every mutation the workers executed has been logged by now; seal
	// the store (final snapshots + log close) before reporting done.
	var serr error
	if s.store != nil {
		serr = s.store.Close()
	}
	s.connWg.Wait()
	return serr
}

// readLoop decodes frames off one connection and dispatches them.
func (s *Server) readLoop(c *conn) {
	defer s.readerWg.Done()
	defer func() {
		// The reader is the only task producer for this connection. Once
		// it exits, wait out in-flight tasks, then let the writer drain
		// and close the socket.
		s.connWg.Add(1)
		go func() {
			defer s.connWg.Done()
			c.inflight.Wait()
			close(c.out)
		}()
	}()

	// Buffered reads: a pipelining client's burst decodes several frames
	// per read(2). ReadBuffer < 0 keeps the raw socket for tests that
	// need byte-accurate backpressure.
	var r io.Reader = c.nc
	if s.readBuffer >= 0 {
		size := s.readBuffer
		if size == 0 {
			size = defaultReadBuffer
		}
		r = bufio.NewReaderSize(c.nc, size)
	}
	var scratch []byte
	var m wire.Msg
	var rstart time.Time
	for {
		body, err := wire.ReadFrame(r, &scratch)
		if err != nil {
			return // EOF, peer reset, or framing error: drop the connection
		}
		if s.tracer != nil {
			// Dispatch spans start when the frame is fully read; taken
			// before sampling decides, so a sampled request's first span
			// covers its own decode + validation.
			rstart = time.Now()
		}
		if err := m.Decode(body); err != nil {
			// Framing is intact, the body is not. Tell the client and
			// keep serving the connection.
			s.replyError(c, m.ReqID, "bad request: "+err.Error())
			continue
		}
		switch m.Type {
		case wire.TStats:
			s.reqStats.Inc()
			s.replyStats(c, m.ReqID)
		case wire.TMembers:
			s.replyMembers(c, m.ReqID)
		case wire.TInsert, wire.TLookup, wire.TDelete:
			if !s.dispatchKeyed(c, m.Type, &m, false, rstart) {
				return
			}
		case wire.TRoute:
			// A cluster-smart client computed the owner itself and sent the
			// request here directly. The fingerprint decides staleness:
			// a mismatched view gets TWrongView (refresh and retry), a
			// matched-view misroute gets TError (the client's owner math is
			// broken, not stale). Either way the request NEVER forwards —
			// route-direct means exactly one hop.
			switch {
			case s.clusterHash == 0:
				s.replyError(c, m.ReqID, "not a cluster node: direct routing unavailable")
			case m.Cluster != s.clusterHash:
				s.wrongview.Inc()
				var tr uint64
				if m.Traced && s.tracer != nil {
					// A zero-duration span marks which node bounced the
					// stale view, so the retry's trace shows the detour.
					tr = m.Trace
					s.tracer.Record(tr, trace.KindWrongView, rstart, 0, s.clusterHash)
				}
				s.send(c, &wire.Msg{Type: wire.TWrongView, ReqID: m.ReqID, Cluster: s.clusterHash}, tr)
			case m.RouteKind != wire.TInsert && m.RouteKind != wire.TLookup && m.RouteKind != wire.TDelete:
				s.replyError(c, m.ReqID, "unexpected route kind "+m.RouteKind.String())
			case s.owns != nil && !s.owns(m.Key):
				s.replyError(c, m.ReqID, fmt.Sprintf("not the owner of %v", m.Key))
			default:
				s.routed.Inc()
				if !s.dispatchKeyed(c, m.RouteKind, &m, true, rstart) {
					return
				}
			}
		default:
			s.replyError(c, m.ReqID, "unexpected message type "+m.Type.String())
		}
	}
}

// defaultReadBuffer sizes connection read buffering when Config leaves
// ReadBuffer zero.
const defaultReadBuffer = 32 << 10

// dispatchKeyed validates one keyed request and hands it to its shard
// queue or the forwarder. typ is the operation (TInsert/TLookup/TDelete)
// — for routed requests it comes from the TRoute envelope's RouteKind.
// Routed requests skip the forward branch: their owner check already
// ran in the caller, so route-direct traffic executes locally or not at
// all. rstart is when the frame finished reading (zero without a
// tracer); direct requests are sampled here, routed ones inherit the
// trailer's trace ID. It reports false when the server shut down
// mid-enqueue.
func (s *Server) dispatchKeyed(c *conn, typ wire.Type, m *wire.Msg, routed bool, rstart time.Time) bool {
	if typ == wire.TInsert && len(m.Value) > wire.MaxValue {
		// The limit is the forwardable maximum, enforced uniformly so an
		// insert never succeeds on the owning node but fails through any
		// other.
		s.replyError(c, m.ReqID, fmt.Sprintf("value %d bytes exceeds the %d-byte limit", len(m.Value), wire.MaxValue))
		return true
	}
	origin := m.Origin
	if origin == wire.OriginAuto {
		origin = uint32(s.pool.AutoOrigin(m.Key))
	} else if n := s.pool.Overlay().N(); origin >= uint32(n) {
		s.replyError(c, m.ReqID, fmt.Sprintf("origin %d out of range (overlay has %d nodes)", origin, n))
		return true
	}
	switch typ {
	case wire.TInsert:
		s.reqInsert.Inc()
	case wire.TLookup:
		s.reqLookup.Inc()
	case wire.TDelete:
		s.reqDelete.Inc()
	}
	var tr uint64
	if s.tracer != nil {
		if routed {
			// Trace decisions propagate: a routed request is traced iff
			// the sender sampled it, so its spans join the sender's.
			if m.Traced {
				tr = m.Trace
			}
		} else {
			tr = s.tracer.Sample()
		}
	}
	if s.owns != nil && !routed && !s.owns(m.Key) {
		// Another cluster node owns this key: relay the request and
		// deliver the owner's reply under this reqID. The forwarder may
		// block (its in-flight cap), which reads as backpressure exactly
		// like a full shard queue.
		var value []byte
		if typ == wire.TInsert {
			value = append([]byte(nil), m.Value...)
		}
		s.forwarded.Inc()
		c.inflight.Add(1)
		reqID := m.ReqID
		var once sync.Once
		s.forward(typ, m.Key, origin, value, tr, func(resp *wire.Msg) {
			once.Do(func() {
				if tr != 0 {
					// The forward span covers read-done → owner's reply in
					// hand; the owner's own spans nest inside it.
					s.tracer.Record(tr, trace.KindForward, rstart, time.Since(rstart), uint64(typ))
				}
				resp.ReqID = reqID
				s.send(c, resp, tr)
				c.inflight.Done()
			})
		})
		return true
	}
	t := task{c: c, typ: typ, reqID: m.ReqID, key: m.Key, origin: origin, trace: tr}
	if s.metered || tr != 0 || s.slowNanos > 0 {
		t.enq = time.Now()
	}
	if tr != 0 {
		s.tracer.Record(tr, trace.KindDispatch, rstart, t.enq.Sub(rstart), uint64(typ))
	}
	if typ == wire.TInsert {
		t.value = append([]byte(nil), m.Value...)
	}
	if s.replicate != nil && (typ == wire.TInsert || typ == wire.TDelete) {
		// Start the replica fan-out before the task even queues so the
		// peer round trips overlap the local shard execution; execBatch
		// withholds the ack until both the local commit and the quorum
		// land. The value is shared with the task — both sides only read
		// it.
		t.repl = make(chan error, 1)
		repl, key, value := t.repl, m.Key, t.value
		go func() { repl <- s.replicate(typ, key, origin, value, tr) }()
	}
	c.inflight.Add(1)
	select {
	case s.queues[s.pool.ShardOf(m.Key)] <- t: // may block: backpressure
	case <-s.done:
		c.inflight.Done()
		return false
	}
	return true
}

// replyMembers answers a TMembers request with the membership
// fingerprint and the client-serving address table, or an error when
// this server is not part of a cluster.
func (s *Server) replyMembers(c *conn, reqID uint64) {
	if s.members == nil {
		s.replyError(c, reqID, "not a cluster node: no member table")
		return
	}
	m := wire.Msg{Type: wire.TMembersOK, ReqID: reqID, Cluster: s.clusterHash, Replication: s.replication, Members: s.members()}
	s.send(c, &m, 0)
}

// shardWorker executes tasks for shard i in arrival order, a batch at a
// time: one blocking receive, then a greedy non-blocking drain of
// whatever else is queued, executed as a single Pool.ExecBatch. Batch
// order is arrival order, so per-shard FIFO semantics (and with them
// determinism and read-your-writes across a pipelined connection) are
// exactly those of the one-at-a-time loop.
func (s *Server) shardWorker(i int) {
	defer s.workerWg.Done()
	q := s.queues[i]
	tasks := make([]task, 0, s.maxBatch)
	ops := make([]discovery.BatchOp, 0, s.maxBatch)
	for {
		ok, closed := collectBatch(q, &tasks, s.maxBatch)
		if !ok {
			return
		}
		s.execBatch(tasks, &ops)
		if closed {
			return
		}
	}
}

// collectBatch blocks for one task on q, then greedily drains more
// without blocking, up to max tasks total, appending into *tasks (which
// is truncated first and reused — the loop allocates nothing once the
// slice is warm). It reports whether a batch was collected (ok is false
// when q is closed and empty — note a closed channel still yields its
// buffered tasks first) and whether the drain observed the close.
func collectBatch(q <-chan task, tasks *[]task, max int) (ok, closed bool) {
	t, open := <-q
	if !open {
		return false, true
	}
	*tasks = append((*tasks)[:0], t)
	for len(*tasks) < max {
		select {
		case t, open := <-q:
			if !open {
				return true, true
			}
			*tasks = append(*tasks, t)
		default:
			return true, false
		}
	}
	return true, false
}

// execBatch runs one drained task batch through the pool and answers
// every task. Responses are sent only after ExecBatch returns, i.e.
// after the batch's shared write-ahead sync on durable pools: an acked
// mutation is durable, batched or not.
func (s *Server) execBatch(tasks []task, ops *[]discovery.BatchOp) {
	// One timestamp pair meters the whole batch: queue wait is measured
	// from each task's enqueue to the batch's execution start, and the
	// batch's service span is attributed evenly across its tasks — two
	// time.Now() calls per batch, not per request.
	traced := false
	for k := range tasks {
		if tasks[k].trace != 0 {
			traced = true
			break
		}
	}
	var started time.Time
	if s.metered || traced || s.slowNanos > 0 {
		started = time.Now()
	}
	if s.metered {
		s.batchTasks.Observe(int64(len(tasks)))
		for k := range tasks {
			s.queueWait.Observe(int64(started.Sub(tasks[k].enq)))
		}
	}
	*ops = (*ops)[:0]
	for k := range tasks {
		t := &tasks[k]
		op := discovery.BatchOp{Origin: int(t.origin), Key: t.key, Value: t.value}
		switch t.typ {
		case wire.TInsert:
			op.Kind = discovery.BatchInsert
		case wire.TLookup:
			op.Kind = discovery.BatchLookup
		case wire.TDelete:
			op.Kind = discovery.BatchDelete
		}
		*ops = append(*ops, op)
	}
	walNanos := s.pool.ExecBatchTimed(*ops)
	var share int64
	if s.metered || traced || s.slowNanos > 0 {
		share = int64(time.Since(started)) / int64(len(tasks))
	}
	if s.metered {
		for k := range tasks {
			switch tasks[k].typ {
			case wire.TInsert:
				s.svcInsert.Observe(share)
			case wire.TLookup:
				s.svcLookup.Observe(share)
			case wire.TDelete:
				s.svcDelete.Observe(share)
			}
		}
	}
	if traced {
		// Batch time is attributed evenly: each traced task gets the WAL
		// append+fsync share and the remaining execution share as two
		// adjacent spans, so a trace shows where the batch spent its time
		// even though the work was amortized.
		walShare := walNanos / int64(len(tasks))
		execShare := share - walShare
		if execShare < 0 {
			execShare = 0
		}
		startNanos := started.UnixNano()
		for k := range tasks {
			t := &tasks[k]
			if t.trace == 0 {
				continue
			}
			s.tracer.RecordNanos(t.trace, trace.KindQueueWait, t.enq.UnixNano(), startNanos-t.enq.UnixNano(), uint64(len(tasks)))
			if walShare > 0 {
				s.tracer.RecordNanos(t.trace, trace.KindWALCommit, startNanos, walShare, uint64(len(tasks)))
			}
			s.tracer.RecordNanos(t.trace, trace.KindShardExec, startNanos+walShare, execShare, uint64(len(tasks)))
		}
	}
	var nowNanos int64
	if s.slowNanos > 0 {
		nowNanos = time.Now().UnixNano()
	}
	for k := range tasks {
		t := &tasks[k]
		op := &(*ops)[k]
		var m wire.Msg
		m.ReqID = t.reqID
		switch {
		case op.Err != nil:
			// Durability (or ownership) failed: the operation did not
			// execute and must not be acked. The client sees the error;
			// the daemon keeps serving (reads still work).
			s.logf("server: %v: %v", t.typ, op.Err)
			m.Type = wire.TError
			m.Value = []byte("storage: " + op.Err.Error())
		case t.typ == wire.TInsert:
			m.Type = wire.TInsertOK
			m.Insert = wire.InsertReplyFrom(op.Insert)
		case t.typ == wire.TLookup:
			m.Type = wire.TLookupOK
			m.Lookup = wire.LookupReplyFrom(op.Lookup)
		case t.typ == wire.TDelete:
			m.Type = wire.TDeleteOK
			m.Deleted = uint32(op.Removed)
		}
		if s.slowNanos > 0 {
			if total := nowNanos - t.enq.UnixNano(); total > s.slowNanos {
				s.slowLogf("server: slow %v: total=%s queue=%s exec=%s wal=%s batch=%d trace=%016x",
					t.typ, time.Duration(total), started.Sub(t.enq),
					time.Duration(share), time.Duration(walNanos/int64(len(tasks))),
					len(tasks), t.trace)
			}
		}
		if t.repl != nil && op.Err == nil {
			// The local commit landed but the ack must also wait for the
			// replica quorum. The wait parks a goroutine, not the shard
			// worker, so a slow peer cannot stall the shard's other
			// traffic; task and reply are copied because the batch slices
			// are reused for the next batch.
			s.connWg.Add(1)
			go func(t task, m wire.Msg) {
				defer s.connWg.Done()
				if rerr := <-t.repl; rerr != nil {
					// Local commit without quorum must not be acked: the
					// client would treat it as replicated. The replicas
					// reconcile via anti-entropy.
					s.logf("server: %v: %v", t.typ, rerr)
					m = wire.Msg{Type: wire.TError, ReqID: t.reqID, Value: []byte("replication: " + rerr.Error())}
				}
				s.send(t.c, &m, t.trace)
				t.c.inflight.Done()
			}(*t, m)
			continue
		}
		s.send(t.c, &m, t.trace)
		t.c.inflight.Done()
	}
}

// replyStats answers a stats request inline with a pool snapshot.
func (s *Server) replyStats(c *conn, reqID uint64) {
	st := s.pool.Stats()
	m := wire.Msg{Type: wire.TStatsOK, ReqID: reqID}
	m.Stats = wire.StatsReply{
		Shards:        uint32(st.Shards),
		Inserts:       st.Inserts,
		Lookups:       st.Lookups,
		Deletes:       st.Deletes,
		Found:         st.LookupsFound,
		ShardRequests: make([]uint64, len(st.PerShard)),
	}
	for i, ss := range st.PerShard {
		m.Stats.ShardRequests[i] = ss.Requests
	}
	s.send(c, &m, 0)
}

// replyError sends a TError frame carrying text.
func (s *Server) replyError(c *conn, reqID uint64, text string) {
	m := wire.Msg{Type: wire.TError, ReqID: reqID, Value: []byte(text)}
	s.send(c, &m, 0)
}

// send encodes m into a pooled buffer and offers it to the connection's
// writer, dropping it if the writer is gone. tr is the originating
// request's trace ID (0 = untraced); a traced frame is timestamped so
// the writer can record its enqueue→flush span.
func (s *Server) send(c *conn, m *wire.Msg, tr uint64) {
	bp := s.bufs.Get().(*[]byte)
	frame, err := m.Append((*bp)[:0])
	if err != nil {
		// Response construction bugs must not kill the worker; log and
		// substitute an error frame.
		s.logf("server: encode %v response: %v", m.Type, err)
		frame, _ = (&wire.Msg{Type: wire.TError, ReqID: m.ReqID, Value: []byte("internal encode error")}).Append((*bp)[:0])
	}
	*bp = frame
	f := outFrame{bp: bp, trace: tr}
	if tr != 0 {
		f.enq = time.Now().UnixNano()
	}
	select {
	case c.out <- f:
	case <-c.dead:
		s.bufs.Put(bp)
	}
}

// writeLoop writes encoded frames to the socket until the out channel
// closes, then closes the socket. Frames are coalesced: the loop blocks
// for one response, drains whatever else the workers have queued (up to
// the coalesce budgets), and issues the run as one vectored write — a
// pipelining client costs about one writev(2) per batch. Each batch
// carries a write deadline: a peer that stops reading is treated as
// gone, its socket is closed at once (which also unblocks this
// connection's reader), and the loop keeps draining so producers never
// block on a dead connection.
func (s *Server) writeLoop(c *conn) {
	defer s.connWg.Done()
	defer s.forgetConn(c.nc)
	defer c.nc.Close()
	defer c.kill()
	var onFlushed func([]outFrame)
	if s.tracer != nil {
		onFlushed = func(batch []outFrame) {
			// One clock read per flushed batch, taken lazily so batches
			// with no traced frames cost nothing extra.
			var now int64
			for _, f := range batch {
				if f.trace == 0 {
					continue
				}
				if now == 0 {
					now = time.Now().UnixNano()
				}
				s.tracer.RecordNanos(f.trace, trace.KindRespFlush, f.enq, now-f.enq, uint64(len(batch)))
			}
		}
	}
	batchio.WriteLoopFunc(c.nc, c.out, s.coFrames, s.coBytes, s.writeTimeout,
		func(f outFrame) []byte { return *f.bp },
		func(f outFrame) { s.bufs.Put(f.bp) },
		func(err error) {
			s.shed.Inc()
			s.logf("server: write to %v: %v", c.nc.RemoteAddr(), err)
			c.kill()
			c.nc.Close()
		}, onFlushed, &s.wstats)
}

// forgetConn drops a finished connection from the shutdown set.
func (s *Server) forgetConn(nc net.Conn) {
	s.mu.Lock()
	delete(s.conns, nc)
	s.mu.Unlock()
}
