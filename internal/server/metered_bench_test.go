package server

import (
	"testing"

	discovery "discovery"
	"discovery/internal/metrics"
)

// newMeteredTestServer is newTestServer with full instrumentation
// attached: one registry shared by the pool and the server, exactly how
// the daemons wire it when -metrics-listen is set. The benchmarks built
// on it measure what observability costs on the hot path — the delta
// against the unmetered variants is the price of the two time.Now calls
// per request plus the per-op counter/histogram updates.
func newMeteredTestServer(t testing.TB, shards, queueDepth int) (string, *metrics.Registry) {
	t.Helper()
	ov, err := discovery.CompleteOverlay(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	pool, err := discovery.NewPool(ov, shards,
		discovery.WithMetrics(reg), discovery.WithSeed(1), discovery.WithMaxHops(8))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Pool: pool, QueueDepth: queueDepth, Logf: t.Logf, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String(), reg
}

// newMeteredDurableTestServer is the durable counterpart: registry
// shared across pool, WAL, and server.
func newMeteredDurableTestServer(t testing.TB, dir string, shards, queueDepth int, fsync discovery.FsyncPolicy) (string, *metrics.Registry) {
	t.Helper()
	ov, err := discovery.CompleteOverlay(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	dp, _, err := discovery.OpenDurablePool(ov, shards, discovery.DurableConfig{
		Dir:   dir,
		Fsync: fsync,
	}, discovery.WithMetrics(reg), discovery.WithSeed(1), discovery.WithMaxHops(8))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Pool: dp.Pool, QueueDepth: queueDepth, Store: dp, Logf: t.Logf, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr.String(), reg
}

// BenchmarkDaemonThroughputMetered is BenchmarkDaemonThroughput with a
// live registry attached (queue-wait and service-time histograms,
// per-op counters, coalescing stats all recording).
func BenchmarkDaemonThroughputMetered(b *testing.B) {
	addr, reg := newMeteredTestServer(b, 4, 64)
	benchThroughput(b, addr, 0)
	if n := reg.Histogram("server.service_seconds{op=lookup}", 1e-9).Count(); n == 0 {
		b.Fatal("metered benchmark recorded no service-time samples")
	}
}

// BenchmarkDaemonMixedDurableMetered is BenchmarkDaemonMixedDurable
// with the registry attached: server timings plus WAL append/fsync
// histograms, the fully-instrumented durable write path.
func BenchmarkDaemonMixedDurableMetered(b *testing.B) {
	addr, reg := newMeteredDurableTestServer(b, b.TempDir(), 4, 64, discovery.FsyncBatch)
	benchThroughput(b, addr, 0.10)
	if n := reg.Counter("wal.fsyncs").Value(); n == 0 {
		b.Fatal("metered durable benchmark recorded no fsyncs")
	}
}
