package server

import (
	"bufio"
	"fmt"
	"net"

	"discovery/internal/idspace"
	"discovery/internal/wire"
)

// Client is a discoveryd client over one TCP connection. It offers
// synchronous per-call helpers (Insert, Lookup, Delete, Stats) and a
// lower-level Send/Flush/Recv API for request pipelining. A Client is not
// safe for concurrent use; open one per goroutine.
type Client struct {
	nc      net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	enc     []byte // encode scratch
	scratch []byte // frame-read scratch
	msg     wire.Msg
	nextID  uint64
}

// OriginAuto, passed as the origin of Insert/Lookup/Delete, lets the
// server pick the entry node deterministically from the key.
const OriginAuto = -1

// Dial connects to a discoveryd server.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(nc), nil
}

// NewClient wraps an established connection.
func NewClient(nc net.Conn) *Client {
	return &Client{
		nc: nc,
		br: bufio.NewReaderSize(nc, 32<<10),
		bw: bufio.NewWriterSize(nc, 32<<10),
	}
}

// Close closes the connection.
func (c *Client) Close() error { return c.nc.Close() }

// wireOrigin translates the public origin convention (-1 = server picks)
// into the wire sentinel.
func wireOrigin(origin int) uint32 {
	if origin < 0 {
		return wire.OriginAuto
	}
	return uint32(origin)
}

// Send buffers one request frame, assigning and returning its reqID.
// Callers pipelining requests must eventually Flush and then Recv one
// response per send (responses may arrive out of order; match by reqID).
func (c *Client) Send(m *wire.Msg) (uint64, error) {
	c.nextID++
	m.ReqID = c.nextID
	frame, err := m.Append(c.enc[:0])
	if err != nil {
		return 0, err
	}
	c.enc = frame
	if _, err := c.bw.Write(frame); err != nil {
		return 0, err
	}
	return m.ReqID, nil
}

// Flush pushes buffered request frames to the socket.
func (c *Client) Flush() error { return c.bw.Flush() }

// Recv reads one response frame into m. The returned message's buffers
// are reused by the next Recv on this client.
func (c *Client) Recv(m *wire.Msg) error {
	body, err := wire.ReadFrame(c.br, &c.scratch)
	if err != nil {
		return err
	}
	return m.Decode(body)
}

// roundTrip sends one request, flushes, and reads its response into
// c.msg, enforcing reqID and type agreement.
func (c *Client) roundTrip(req *wire.Msg, want wire.Type) error {
	id, err := c.Send(req)
	if err != nil {
		return err
	}
	if err := c.Flush(); err != nil {
		return err
	}
	if err := c.Recv(&c.msg); err != nil {
		return err
	}
	if c.msg.ReqID != id {
		return fmt.Errorf("client: response for request %d, want %d (pipelined sends must use Recv)", c.msg.ReqID, id)
	}
	if c.msg.Type == wire.TError {
		return fmt.Errorf("client: server error: %s", c.msg.ErrorText())
	}
	if c.msg.Type != want {
		return fmt.Errorf("client: response type %v, want %v", c.msg.Type, want)
	}
	return nil
}

// Insert publishes key with the given payload. origin may be OriginAuto.
func (c *Client) Insert(origin int, key idspace.ID, value []byte) (wire.InsertReply, error) {
	req := wire.Msg{Type: wire.TInsert, Key: key, Origin: wireOrigin(origin), Value: value}
	if err := c.roundTrip(&req, wire.TInsertOK); err != nil {
		return wire.InsertReply{}, err
	}
	return c.msg.Insert, nil
}

// Lookup queries key. origin may be OriginAuto.
func (c *Client) Lookup(origin int, key idspace.ID) (wire.LookupReply, error) {
	req := wire.Msg{Type: wire.TLookup, Key: key, Origin: wireOrigin(origin)}
	if err := c.roundTrip(&req, wire.TLookupOK); err != nil {
		return wire.LookupReply{}, err
	}
	return c.msg.Lookup, nil
}

// Delete removes origin's replicas of key, returning how many were
// removed.
func (c *Client) Delete(origin int, key idspace.ID) (int, error) {
	req := wire.Msg{Type: wire.TDelete, Key: key, Origin: wireOrigin(origin)}
	if err := c.roundTrip(&req, wire.TDeleteOK); err != nil {
		return 0, err
	}
	return int(c.msg.Deleted), nil
}

// Stats fetches the daemon's counter snapshot. The per-shard slice is
// copied, so the result outlives the next call.
func (c *Client) Stats() (wire.StatsReply, error) {
	req := wire.Msg{Type: wire.TStats}
	if err := c.roundTrip(&req, wire.TStatsOK); err != nil {
		return wire.StatsReply{}, err
	}
	st := c.msg.Stats
	st.ShardRequests = append([]uint64(nil), st.ShardRequests...)
	return st, nil
}
