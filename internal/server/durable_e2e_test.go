package server

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	discovery "discovery"
	"discovery/internal/wire"
)

// newDurableTestServer is newTestServer backed by a durable pool on dir.
func newDurableTestServer(t testing.TB, dir string, shards, queueDepth int, fsync discovery.FsyncPolicy) (*Server, string, *discovery.DurablePool) {
	t.Helper()
	ov, err := discovery.CompleteOverlay(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	dp, _, err := discovery.OpenDurablePool(ov, shards, discovery.DurableConfig{
		Dir:   dir,
		Fsync: fsync,
	}, discovery.WithSeed(1), discovery.WithMaxHops(8))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Pool: dp.Pool, QueueDepth: queueDepth, Store: dp, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String(), dp
}

// TestE2EDurableDrainAndRestart drives a durable daemon with concurrent
// clients, closes it gracefully (the server seals the store after the
// shard queues drain), restarts on the same directory, and verifies
// every key is still findable over the wire. Run under -race in CI.
func TestE2EDurableDrainAndRestart(t *testing.T) {
	const clients, keysPer = 4, 16
	dir := t.TempDir()
	srv, addr, _ := newDurableTestServer(t, dir, 4, 16, discovery.FsyncBatch)

	key := func(c, i int) string { return fmt.Sprintf("dur-%d-%d", c, i) }
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < keysPer; i++ {
				if _, err := c.Insert(OriginAuto, discovery.NewID(key(cl, i)), []byte(key(cl, i))); err != nil {
					t.Errorf("client %d insert %d: %v", cl, i, err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatalf("graceful close: %v", err)
	}

	// Second daemon, same directory: a clean shutdown snapshotted every
	// shard, so recovery restores state without replaying the log.
	_, addr2, dp2 := newDurableTestServer(t, dir, 4, 16, discovery.FsyncBatch)
	c, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for cl := 0; cl < clients; cl++ {
		for i := 0; i < keysPer; i++ {
			res, err := c.Lookup((cl*37+i)%256, discovery.NewID(key(cl, i)))
			if err != nil {
				t.Fatal(err)
			}
			if !res.Found {
				t.Errorf("key %s lost across restart", key(cl, i))
			}
		}
	}
	// Mutations keep working after recovery.
	if _, err := c.Insert(OriginAuto, discovery.NewID("post-restart"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if res, err := c.Lookup(OriginAuto, discovery.NewID("post-restart")); err != nil || !res.Found {
		t.Fatalf("post-restart insert not findable: %v %v", res, err)
	}
	_ = dp2
}

// benchThroughput is the shared pipelined driver behind the daemon
// throughput benchmarks: conns connections, each keeping a window of
// benchWindow requests in flight (send a burst, flush once, read the
// burst's responses). This is the heavy-traffic shape the serving layer
// batches for: bursts arrive together, so shard workers execute them as
// batches (sharing write-ahead fsyncs) and connection writers flush the
// responses as coalesced writev batches. BenchmarkDaemonThroughputSerial
// keeps the one-request-at-a-time shape for comparison.
const benchWindow = 32

func benchThroughput(b *testing.B, addr string, insertRatio float64) {
	benchThroughputConns(b, addr, insertRatio, 4)
}

// benchThroughputConns is benchThroughput with a configurable connection
// count (the shard-scaling sweep grows connections with shards so the
// offered load keeps every worker busy). Returns the measured req/s.
func benchThroughputConns(b *testing.B, addr string, insertRatio float64, conns int) float64 {
	const keys = 64
	seedClient, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if _, err := seedClient.Insert(OriginAuto, discovery.NewID(fmt.Sprintf("bench-%d", i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	seedClient.Close()

	clients := make([]*Client, conns)
	for i := range clients {
		if clients[i], err = Dial(addr); err != nil {
			b.Fatal(err)
		}
		defer clients[i].Close()
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	for ci, c := range clients {
		wg.Add(1)
		go func(ci int, c *Client) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(ci)))
			quota := b.N / conns
			if ci < b.N%conns {
				quota++
			}
			var m wire.Msg
			for done := 0; done < quota; {
				burst := benchWindow
				if left := quota - done; left < burst {
					burst = left
				}
				inserts, lookups := 0, 0
				for i := 0; i < burst; i++ {
					key := discovery.NewID(fmt.Sprintf("bench-%d", (done+i)%keys))
					req := wire.Msg{Type: wire.TLookup, Key: key, Origin: wire.OriginAuto}
					if insertRatio > 0 && rng.Float64() < insertRatio {
						req.Type = wire.TInsert
						req.Value = []byte("v")
						inserts++
					} else {
						lookups++
					}
					if _, err := c.Send(&req); err != nil {
						b.Error(err)
						return
					}
				}
				if err := c.Flush(); err != nil {
					b.Error(err)
					return
				}
				for i := 0; i < burst; i++ {
					if err := c.Recv(&m); err != nil {
						b.Error(err)
						return
					}
					switch m.Type {
					case wire.TInsertOK:
						inserts--
					case wire.TLookupOK:
						if !m.Lookup.Found {
							b.Error("bench lookup missed")
							return
						}
						lookups--
					default:
						b.Errorf("unexpected response %v: %s", m.Type, m.ErrorText())
						return
					}
				}
				if inserts != 0 || lookups != 0 {
					b.Errorf("burst response mix off by %d inserts / %d lookups", inserts, lookups)
					return
				}
				done += burst
			}
		}(ci, c)
	}
	wg.Wait()
	rps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(rps, "req/s")
	return rps
}

// BenchmarkDaemonThroughputDurable is BenchmarkDaemonThroughput against
// a durable pool with batch fsync: the lookup path adds no durability
// work, so this pins that persistence is free for reads.
func BenchmarkDaemonThroughputDurable(b *testing.B) {
	_, addr, _ := newDurableTestServer(b, b.TempDir(), 4, 64, discovery.FsyncBatch)
	benchThroughput(b, addr, 0)
}

// BenchmarkDaemonMixed is the in-memory baseline for the write path:
// 10% inserts, 90% lookups, 4 pipelined connections.
func BenchmarkDaemonMixed(b *testing.B) {
	_, addr, _ := newTestServer(b, 4, 64)
	benchThroughput(b, addr, 0.10)
}

// BenchmarkDaemonMixedDurable is BenchmarkDaemonMixed with every insert
// written ahead and group-commit fsynced before its ack.
func BenchmarkDaemonMixedDurable(b *testing.B) {
	_, addr, _ := newDurableTestServer(b, b.TempDir(), 4, 64, discovery.FsyncBatch)
	benchThroughput(b, addr, 0.10)
}
