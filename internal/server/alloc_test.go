package server

import (
	"net"
	"testing"

	discovery "discovery"
	"discovery/internal/batchio"
	"discovery/internal/wire"
)

// These gates pin the PR-1 allocation discipline on the two batched hot
// paths this layer owns: the response path (encode into a pooled buffer,
// enqueue, coalesce into writev slots, recycle) and the shard workers'
// batch dequeue loop. The engine's own per-request allocations are out
// of scope here — these tests prove the serving layer adds none.

// TestResponsePathZeroAllocs drives send → Collect → Put, the exact
// producer/consumer cycle between a shard worker and a connection
// writer, and requires zero allocations once pool and slices are warm.
func TestResponsePathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool does not cache under the race detector")
	}
	ov, err := discovery.CompleteOverlay(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := discovery.NewPool(ov, 1, discovery.WithMaxHops(4))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pool: pool, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const burst = 8
	c := &conn{out: make(chan outFrame, burst), dead: make(chan struct{})}
	m := wire.Msg{Type: wire.TLookupOK, ReqID: 42, Lookup: wire.LookupReply{Found: true, FirstReplyHops: 2, Replies: 1}}
	var slots []outFrame
	var bufs net.Buffers

	cycle := func() {
		for i := 0; i < burst; i++ {
			s.send(c, &m, 0)
		}
		slots = slots[:0]
		bufs = bufs[:0]
		if !batchio.CollectFunc(c.out, &slots, &bufs, burst, 1<<20, func(f outFrame) []byte { return *f.bp }) || len(slots) != burst {
			t.Fatal("collect failed")
		}
		for _, f := range slots {
			s.bufs.Put(f.bp)
		}
	}
	cycle() // warm the buffer pool and the coalesce slices

	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("response path allocates %.1f per %d-frame batch, want 0", allocs, burst)
	}
}

// TestBatchDequeueZeroAllocs pins the shard workers' drain loop: pulling
// a full batch of queued tasks into the reused task slice allocates
// nothing.
func TestBatchDequeueZeroAllocs(t *testing.T) {
	const batch = 32
	q := make(chan task, batch)
	var tasks []task
	seed := task{typ: wire.TLookup, reqID: 7, origin: 3}

	fill := func() {
		for i := 0; i < batch; i++ {
			q <- seed
		}
	}
	fill()
	if ok, _ := collectBatch(q, &tasks, batch); !ok || len(tasks) != batch {
		t.Fatalf("warm drain collected %d tasks", len(tasks))
	}

	allocs := testing.AllocsPerRun(200, func() {
		fill()
		ok, closed := collectBatch(q, &tasks, batch)
		if !ok || closed || len(tasks) != batch {
			t.Fatal("drain failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("batch dequeue allocates %.1f per %d-task batch, want 0", allocs, batch)
	}
}
