package server

import (
	"encoding/binary"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	discovery "discovery"
	"discovery/internal/wire"
)

// TestErrorReplyForShortFrameUsesZeroReqID pins the fix for a pipelining
// hazard: a frame too short to carry a header must produce a TError with
// reqID 0, not the reqID left over from the previous frame's decode.
func TestErrorReplyForShortFrameUsesZeroReqID(t *testing.T) {
	_, addr, _ := newTestServer(t, 2, 16)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := NewClient(nc)

	// Poison the server's reused decode state with a nonzero reqID.
	if _, err := c.Lookup(OriginAuto, discovery.NewID("poison")); err != nil {
		t.Fatal(err)
	}

	// A 1-byte body cannot carry the 9-byte type+reqID header.
	if _, err := nc.Write([]byte{0, 0, 0, 1, byte(wire.TLookup)}); err != nil {
		t.Fatal(err)
	}
	var m wire.Msg
	if err := c.Recv(&m); err != nil {
		t.Fatal(err)
	}
	if m.Type != wire.TError {
		t.Fatalf("got %v, want TError", m.Type)
	}
	if m.ReqID != 0 {
		t.Fatalf("error reply reqID = %d, want 0 (stale correlator leaked)", m.ReqID)
	}
	// The connection survives and correlates normally afterwards.
	if _, err := c.Lookup(OriginAuto, discovery.NewID("after")); err != nil {
		t.Fatalf("connection unusable after short frame: %v", err)
	}
}

// TestWriteLoopShedsStalledReader drives writeLoop directly over a
// net.Pipe (whose writes block until the peer reads, and which honors
// write deadlines): a peer that never reads must trip the write timeout,
// get its socket closed, and stop blocking producers.
func TestWriteLoopShedsStalledReader(t *testing.T) {
	ov, err := discovery.CompleteOverlay(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := discovery.NewPool(ov, 1, discovery.WithMaxHops(4))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Pool: pool, WriteTimeout: 100 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	srvSide, cliSide := net.Pipe()
	defer cliSide.Close()
	c := &conn{nc: srvSide, out: make(chan outFrame, 4), dead: make(chan struct{})}
	s.connWg.Add(1)
	go s.writeLoop(c)

	frame := func() outFrame {
		b, err := (&wire.Msg{Type: wire.TDeleteOK, ReqID: 1}).Append(nil)
		if err != nil {
			t.Fatal(err)
		}
		return outFrame{bp: &b}
	}

	// The peer never reads: the first write must give up within the
	// deadline and mark the connection dead.
	c.out <- frame()
	select {
	case <-c.dead:
	case <-time.After(5 * time.Second):
		t.Fatal("write timeout never tripped; stalled reader would wedge its shard")
	}

	// Producers no longer block: a send drains via the dead path even
	// with the writer past its socket.
	for i := 0; i < 10; i++ {
		s.send(c, &wire.Msg{Type: wire.TDeleteOK, ReqID: uint64(i)}, 0)
	}
	close(c.out)

	// The server closed its side, so the peer sees EOF rather than a
	// silent hang.
	cliSide.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, err := io.ReadAll(cliSide); err != nil && err != io.EOF && err != io.ErrClosedPipe {
		t.Logf("peer read ended with %v (acceptable: connection severed)", err)
	}
}

// TestServerForgetsClosedConns pins the connection-set cleanup: entries
// must not accumulate after clients disconnect.
func TestServerForgetsClosedConns(t *testing.T) {
	srv, addr, _ := newTestServer(t, 2, 16)
	for i := 0; i < 20; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Stats(); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	// Closing is asynchronous (reader EOF -> drain -> writer close);
	// poll briefly for the set to empty.
	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.mu.Lock()
		n := len(srv.conns)
		srv.mu.Unlock()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d connections still tracked after all clients closed", n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestInsertValueLimitIsForwardable pins the uniform payload cap: the
// serving layer rejects values above wire.MaxValue — the largest value
// the TRoute peer wrapper can carry — so an insert never succeeds on
// its key's owning node but fails when entered through any other
// cluster node.
func TestInsertValueLimitIsForwardable(t *testing.T) {
	_, addr, _ := newTestServer(t, 2, 16)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Insert(OriginAuto, discovery.NewID("max-ok"), make([]byte, wire.MaxValue)); err != nil {
		t.Fatalf("insert at MaxValue refused: %v", err)
	}
	_, err = c.Insert(OriginAuto, discovery.NewID("max-over"), make([]byte, wire.MaxValue+1))
	if err == nil {
		t.Fatal("insert above MaxValue accepted; it could not be forwarded in a cluster")
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("limit error does not name the cause: %v", err)
	}
	// The connection survives the refusal.
	if _, err := c.Lookup(OriginAuto, discovery.NewID("max-ok")); err != nil {
		t.Fatalf("connection unusable after refused insert: %v", err)
	}
}

// TestFrameLengthPrefixEncoding double-checks the on-wire length field
// the raw-frame test above relies on.
func TestFrameLengthPrefixEncoding(t *testing.T) {
	b, err := (&wire.Msg{Type: wire.TStats, ReqID: 3}).Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := binary.BigEndian.Uint32(b[:4]); int(got) != len(b)-4 {
		t.Fatalf("length prefix %d, frame body %d", got, len(b)-4)
	}
}
