package server

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	discovery "discovery"
	"discovery/internal/wire"
)

// newTestServer starts a daemon over a complete overlay, where lookup
// success is structural (every argmax node receives a flow when ties fit
// the quota), so "every inserted key is findable" holds for any request
// interleaving. MaxHops is capped because past the argmax tier a complete
// overlay has no further local maxima to stop a flow.
func newTestServer(t testing.TB, shards, queueDepth int) (*Server, string, *discovery.Pool) {
	t.Helper()
	ov, err := discovery.CompleteOverlay(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := discovery.NewPool(ov, shards, discovery.WithSeed(1), discovery.WithMaxHops(8))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Pool: pool, QueueDepth: queueDepth, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String(), pool
}

// TestE2EConcurrentClients drives one server with many connections at
// once: every client inserts its own keys, then all clients look up all
// keys. Every inserted key must be findable, and the daemon's stats must
// account for every request. Run under -race in CI.
func TestE2EConcurrentClients(t *testing.T) {
	const clients, keysPer = 8, 24
	_, addr, pool := newTestServer(t, 4, 16)

	key := func(c, i int) string { return fmt.Sprintf("client-%d-key-%d", c, i) }

	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < keysPer; i++ {
				res, err := c.Insert(OriginAuto, discovery.NewID(key(cl, i)), []byte(key(cl, i)))
				if err != nil {
					t.Errorf("client %d insert %d: %v", cl, i, err)
					return
				}
				if res.Replicas == 0 {
					t.Errorf("client %d insert %d stored nothing", cl, i)
				}
			}
		}(cl)
	}
	wg.Wait()

	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			c, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			// Each client looks up every other client's keys too.
			for other := 0; other < clients; other++ {
				for i := 0; i < keysPer; i++ {
					res, err := c.Lookup((cl*97+i)%256, discovery.NewID(key(other, i)))
					if err != nil {
						t.Errorf("client %d lookup: %v", cl, err)
						return
					}
					if !res.Found {
						t.Errorf("client %d: key %s not found", cl, key(other, i))
					}
				}
			}
		}(cl)
	}
	wg.Wait()

	// The pool's ledger must account for every request that was served.
	st := pool.Stats()
	if st.Inserts != clients*keysPer {
		t.Errorf("pool inserts = %d, want %d", st.Inserts, clients*keysPer)
	}
	if st.Lookups != clients*clients*keysPer {
		t.Errorf("pool lookups = %d, want %d", st.Lookups, clients*clients*keysPer)
	}
	if st.LookupsFound != st.Lookups {
		t.Errorf("found %d of %d lookups", st.LookupsFound, st.Lookups)
	}

	// And the same numbers must be visible over the wire.
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ws, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if ws.Inserts != st.Inserts || ws.Lookups != st.Lookups || ws.Found != st.LookupsFound {
		t.Errorf("wire stats %+v disagree with pool stats %+v", ws, st)
	}
	if int(ws.Shards) != 4 || len(ws.ShardRequests) != 4 {
		t.Errorf("wire stats shards = %d/%d, want 4", ws.Shards, len(ws.ShardRequests))
	}
	var sum uint64
	for _, r := range ws.ShardRequests {
		sum += r
	}
	if sum != st.Requests {
		t.Errorf("wire per-shard sum %d != pool requests %d", sum, st.Requests)
	}
}

// TestE2EPipelining sends a burst of requests before reading any
// response, then matches responses to requests by reqID.
func TestE2EPipelining(t *testing.T) {
	const batch = 32
	_, addr, _ := newTestServer(t, 4, 16)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	kind := make(map[uint64]wire.Type, 2*batch)
	for i := 0; i < batch; i++ {
		id, err := c.Send(&wire.Msg{Type: wire.TInsert, Key: discovery.NewID(fmt.Sprintf("pipe-%d", i)), Origin: wire.OriginAuto, Value: []byte("v")})
		if err != nil {
			t.Fatal(err)
		}
		kind[id] = wire.TInsertOK
	}
	for i := 0; i < batch; i++ {
		id, err := c.Send(&wire.Msg{Type: wire.TLookup, Key: discovery.NewID(fmt.Sprintf("pipe-%d", i)), Origin: wire.OriginAuto})
		if err != nil {
			t.Fatal(err)
		}
		kind[id] = wire.TLookupOK
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var m wire.Msg
	for i := 0; i < 2*batch; i++ {
		if err := c.Recv(&m); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		want, ok := kind[m.ReqID]
		if !ok {
			t.Fatalf("response for unknown or duplicate reqID %d", m.ReqID)
		}
		delete(kind, m.ReqID)
		if m.Type != want {
			t.Fatalf("reqID %d: type %v, want %v", m.ReqID, m.Type, want)
		}
		if m.Type == wire.TLookupOK && !m.Lookup.Found {
			// Inserts for a key precede its lookup on this connection and
			// land on the same shard queue, so FIFO order guarantees the
			// insert executed first.
			t.Errorf("reqID %d: pipelined lookup missed", m.ReqID)
		}
	}
	if len(kind) != 0 {
		t.Fatalf("%d requests never answered", len(kind))
	}
}

// TestE2EBackpressure floods a depth-1 queue far beyond its capacity;
// every request must still complete exactly once.
func TestE2EBackpressure(t *testing.T) {
	const burst = 200
	_, addr, _ := newTestServer(t, 2, 1)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	pending := make(map[uint64]bool, burst)
	for i := 0; i < burst; i++ {
		id, err := c.Send(&wire.Msg{Type: wire.TInsert, Key: discovery.NewID(fmt.Sprintf("bp-%d", i)), Origin: wire.OriginAuto, Value: []byte("v")})
		if err != nil {
			t.Fatal(err)
		}
		pending[id] = true
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var m wire.Msg
	for i := 0; i < burst; i++ {
		if err := c.Recv(&m); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if !pending[m.ReqID] {
			t.Fatalf("unexpected reqID %d", m.ReqID)
		}
		delete(pending, m.ReqID)
		if m.Type != wire.TInsertOK {
			t.Fatalf("reqID %d: %v", m.ReqID, m.Type)
		}
	}
}

// TestE2EDeterminism runs the same sequential workload against two fresh
// servers with the same seed and shard count; every reply must match
// field for field.
func TestE2EDeterminism(t *testing.T) {
	run := func() (out []wire.Msg) {
		_, addr, _ := newTestServer(t, 3, 16)
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := 0; i < 40; i++ {
			res, err := c.Insert(i%256, discovery.NewID(fmt.Sprintf("det-%d", i)), []byte("v"))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, wire.Msg{Type: wire.TInsertOK, Insert: res})
		}
		for i := 0; i < 40; i++ {
			res, err := c.Lookup((i*31)%256, discovery.NewID(fmt.Sprintf("det-%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, wire.Msg{Type: wire.TLookupOK, Lookup: res})
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Insert != b[i].Insert || a[i].Lookup != b[i].Lookup {
			t.Fatalf("reply %d differs across identically-seeded servers:\n %+v\n %+v", i, a[i], b[i])
		}
	}
}

// TestE2EDeleteAndErrors covers the delete path and the server's error
// responses.
func TestE2EDeleteAndErrors(t *testing.T) {
	_, addr, _ := newTestServer(t, 2, 16)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	key := discovery.NewID("to-delete")
	if _, err := c.Insert(7, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Foreign origin deletes nothing; owner delete removes the replicas.
	if n, err := c.Delete(8, key); err != nil || n != 0 {
		t.Fatalf("foreign delete: n=%d err=%v", n, err)
	}
	n, err := c.Delete(7, key)
	if err != nil || n == 0 {
		t.Fatalf("owner delete: n=%d err=%v", n, err)
	}
	res, err := c.Lookup(3, key)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("key still findable after delete")
	}

	// Origin beyond the overlay is rejected per request, connection kept.
	_, err = c.Lookup(100000, key)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("oversized origin: err = %v", err)
	}
	// A response type sent as a request is rejected, connection kept.
	if _, err := c.Send(&wire.Msg{Type: wire.TInsertOK}); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var m wire.Msg
	if err := c.Recv(&m); err != nil {
		t.Fatal(err)
	}
	if m.Type != wire.TError || !strings.Contains(m.ErrorText(), "unexpected message type") {
		t.Fatalf("got %v %q", m.Type, m.ErrorText())
	}
	// The connection survived both rejections.
	if _, err := c.Stats(); err != nil {
		t.Fatalf("connection dead after error responses: %v", err)
	}
}

// BenchmarkDaemonThroughput measures pipelined request throughput over
// loopback TCP: 4 connections, each keeping a window of requests in
// flight (see benchThroughput). This is the workload the batching layers
// exist for.
func BenchmarkDaemonThroughput(b *testing.B) {
	_, addr, _ := newTestServer(b, 4, 64)
	benchThroughput(b, addr, 0)
}

// BenchmarkDaemonThroughputSerial is the pre-batching measurement shape:
// several connections, each sending one lookup at a time (closed loop,
// window of one). Batching cannot help here — every batch has size one —
// so this pins that the batched paths cost nothing under light load.
func BenchmarkDaemonThroughputSerial(b *testing.B) {
	const conns, keys = 4, 64
	_, addr, _ := newTestServer(b, 4, 64)

	seedClient, err := Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if _, err := seedClient.Insert(OriginAuto, discovery.NewID(fmt.Sprintf("bench-%d", i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	seedClient.Close()

	clients := make([]*Client, conns)
	for i := range clients {
		if clients[i], err = Dial(addr); err != nil {
			b.Fatal(err)
		}
		defer clients[i].Close()
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	for ci, c := range clients {
		wg.Add(1)
		go func(ci int, c *Client) {
			defer wg.Done()
			for i := ci; i < b.N; i += conns {
				res, err := c.Lookup(OriginAuto, discovery.NewID(fmt.Sprintf("bench-%d", i%keys)))
				if err != nil {
					b.Error(err)
					return
				}
				if !res.Found {
					b.Errorf("bench key %d missed", i%keys)
					return
				}
			}
		}(ci, c)
	}
	wg.Wait()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}
