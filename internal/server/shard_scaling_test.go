package server

import (
	"fmt"
	"runtime"
	"testing"
)

// BenchmarkDaemonShardScaling sweeps the engine shard count 1→8 under
// the pipelined mixed workload (10% inserts), growing the offered load
// with the shard count, and reports both absolute req/s and req/s
// normalized per core actually available (req/s/core). On a multi-core
// box the absolute number should climb until shards exceed cores and
// the normalized number should stay roughly flat — that flatness is the
// claim that the shard-per-core design has no cross-shard serialization
// on the request path. On a single-core runner the sweep instead pins
// that extra shards cost nothing: req/s stays flat as shards grow.
func BenchmarkDaemonShardScaling(b *testing.B) {
	cores := runtime.GOMAXPROCS(0)
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			_, addr, _ := newTestServer(b, shards, 64)
			conns := 2 * shards
			if conns < 4 {
				conns = 4
			}
			rps := benchThroughputConns(b, addr, 0.10, conns)
			used := shards
			if used > cores {
				used = cores
			}
			b.ReportMetric(rps/float64(used), "req/s/core")
		})
	}
}
