package server

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	discovery "discovery"
	"discovery/internal/wire"
)

// These tests cover the two overload paths end to end, through a served
// connection rather than a hand-built writeLoop: the write-deadline
// client shed (a client that stops reading responses is disconnected and
// stops affecting everyone else) and queue-full backpressure (a client
// that outruns a shard stops being read, which a real TCP stack turns
// into flow control). Both use net.Pipe connections — unbuffered and
// deadline-aware — so "the client stopped reading" is observable
// immediately instead of being absorbed by kernel socket buffers.

// pipeListener is a net.Listener fed by hand: dial() injects the server
// end of a fresh net.Pipe into Accept.
type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn, 8), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// dial hands the server a new connection and returns the client end.
func (l *pipeListener) dial(t *testing.T) net.Conn {
	t.Helper()
	client, srv := net.Pipe()
	select {
	case l.conns <- srv:
	case <-time.After(time.Second):
		t.Fatal("server never accepted the pipe connection")
	}
	return client
}

type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// newPipeServer builds a server over a pipe listener with a short write
// deadline.
func newPipeServer(t *testing.T, shards, queueDepth int, writeTimeout time.Duration) (*Server, *pipeListener) {
	t.Helper()
	ov, err := discovery.CompleteOverlay(32, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := discovery.NewPool(ov, shards, discovery.WithSeed(1), discovery.WithMaxHops(4))
	if err != nil {
		t.Fatal(err)
	}
	// ReadBuffer off: these tests count queued frames byte-for-byte, and
	// a 32 KiB readahead would absorb the pipelined burst they expect to
	// block on.
	srv, err := New(Config{Pool: pool, QueueDepth: queueDepth, WriteTimeout: writeTimeout, ReadBuffer: -1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	lis := newPipeListener()
	go srv.Serve(lis) //nolint:errcheck // surfaced via Close
	t.Cleanup(func() { srv.Close() })
	return srv, lis
}

// writeFrame writes one request frame with a deadline, reporting whether
// the whole frame was consumed in time.
func writeFrame(t *testing.T, nc net.Conn, m *wire.Msg, timeout time.Duration) error {
	t.Helper()
	frame, err := m.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	nc.SetWriteDeadline(time.Now().Add(timeout)) //nolint:errcheck
	_, err = nc.Write(frame)
	return err
}

// TestServedConnectionShedsStalledClient drives the full path: a client
// sends a request through Serve's reader, the shard worker answers, and
// the client never reads the response. The write deadline must shed
// exactly that client — its socket closes — while a healthy client on
// the same server keeps getting answers throughout.
func TestServedConnectionShedsStalledClient(t *testing.T) {
	_, lis := newPipeServer(t, 2, 16, 150*time.Millisecond)

	healthy := NewClient(lis.dial(t))
	defer healthy.Close()
	if _, err := healthy.Lookup(OriginAuto, discovery.NewID("warm")); err != nil {
		t.Fatal(err)
	}

	stalled := lis.dial(t)
	defer stalled.Close()
	req := &wire.Msg{Type: wire.TLookup, ReqID: 7, Key: discovery.NewID("stall"), Origin: wire.OriginAuto}
	if err := writeFrame(t, stalled, req, 2*time.Second); err != nil {
		t.Fatalf("request write: %v", err)
	}

	// Never read the response. The server's write blocks on the pipe,
	// trips the deadline, and closes the connection: the stalled client
	// must observe EOF/closed rather than a silent wedge.
	stalled.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	buf := make([]byte, 1)
	deadline := time.Now().Add(5 * time.Second)
	for {
		// Sleep without reading first: reading would un-stall the pipe.
		time.Sleep(50 * time.Millisecond)
		if _, err := stalled.Read(buf); err != nil {
			if err == io.EOF || err == io.ErrClosedPipe {
				break // shed: server severed the connection
			}
			t.Fatalf("stalled client read: %v", err)
		}
		// A byte arrived — the response write won the race with our
		// sleep. Stop consuming and wait for the deadline to trip on the
		// rest (the frame is larger than one byte).
		if time.Now().After(deadline) {
			t.Fatal("server kept writing to a client that reads one byte per 50ms; deadline never shed it")
		}
	}

	// The healthy connection was never affected.
	for i := 0; i < 5; i++ {
		if _, err := healthy.Lookup(OriginAuto, discovery.NewID("after-shed")); err != nil {
			t.Fatalf("healthy client broken after shed: %v", err)
		}
	}
}

// TestQueueFullBackpressure pins the reader-side contract: when the
// owning shard's queue is full (here because the single shard's worker
// is stuck writing to a client that never reads), the server stops
// reading from the connection instead of buffering unboundedly — so the
// client's next write blocks. After the write deadline sheds the
// stalled connection, the server recovers and serves new clients.
func TestQueueFullBackpressure(t *testing.T) {
	_, lis := newPipeServer(t, 1, 1, 400*time.Millisecond)

	stalled := lis.dial(t)
	defer stalled.Close()

	// Pipeline requests without ever reading. Bound: 1 executing + the
	// response channel (64) + the shard queue (1) + one frame in the
	// reader. Well before 200 sends, a write must block — that blocking
	// IS the backpressure (on TCP it becomes a zero window).
	key := discovery.NewID("pressure")
	sent, blocked := 0, false
	for i := 0; i < 200; i++ {
		req := &wire.Msg{Type: wire.TLookup, ReqID: uint64(i + 1), Key: key, Origin: wire.OriginAuto}
		if err := writeFrame(t, stalled, req, 100*time.Millisecond); err != nil {
			blocked = true
			break
		}
		sent++
	}
	if !blocked {
		t.Fatalf("wrote %d pipelined requests with no reader and never blocked; queue is unbounded", sent)
	}
	if sent < 2 {
		t.Fatalf("blocked after only %d sends; queue admitted nothing", sent)
	}
	t.Logf("backpressure engaged after %d pipelined requests", sent)

	// The write deadline eventually sheds the stalled connection and the
	// single shard worker drains; a fresh client must then be served.
	fresh := NewClient(lis.dial(t))
	defer fresh.Close()
	fresh.nc.SetDeadline(time.Now().Add(10 * time.Second)) //nolint:errcheck
	if _, err := fresh.Lookup(OriginAuto, discovery.NewID("recovered")); err != nil {
		t.Fatalf("server did not recover after shedding the stalled client: %v", err)
	}
}
