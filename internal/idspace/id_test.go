package idspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromUint64(t *testing.T) {
	tests := []struct {
		name string
		v    uint64
		hex  string
	}{
		{"zero", 0, "0000000000000000000000000000000000000000"},
		{"one", 1, "0000000000000000000000000000000000000001"},
		{"max", ^uint64(0), "000000000000000000000000ffffffffffffffff"},
		{"mixed", 0xdeadbeefcafe, "0000000000000000000000000000deadbeefcafe"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := FromUint64(tt.v).Hex(); got != tt.hex {
				t.Errorf("FromUint64(%#x).Hex() = %q, want %q", tt.v, got, tt.hex)
			}
		})
	}
}

func TestParseHexRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		id := Random(rng)
		got, err := ParseHex(id.Hex())
		if err != nil {
			t.Fatalf("ParseHex(%q): %v", id.Hex(), err)
		}
		if got != id {
			t.Fatalf("round trip mismatch: %v != %v", got, id)
		}
	}
}

func TestParseHexErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"short", "abcd"},
		{"long", "0000000000000000000000000000000000000000ff"},
		{"nonhex", "zz00000000000000000000000000000000000000"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseHex(tt.in); err == nil {
				t.Errorf("ParseHex(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestFromStringDeterministic(t *testing.T) {
	a := FromString("object-17")
	b := FromString("object-17")
	c := FromString("object-18")
	if a != b {
		t.Errorf("FromString not deterministic: %v != %v", a, b)
	}
	if a == c {
		t.Errorf("FromString collision between distinct names")
	}
}

func TestCmp(t *testing.T) {
	tests := []struct {
		name string
		a, b ID
		want int
	}{
		{"equal", FromUint64(5), FromUint64(5), 0},
		{"less", FromUint64(4), FromUint64(5), -1},
		{"greater", FromUint64(6), FromUint64(5), 1},
		{"high byte dominates", MustParseHex("0100000000000000000000000000000000000000"), FromUint64(^uint64(0)), 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Cmp(tt.b); got != tt.want {
				t.Errorf("Cmp = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestSubAddInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		a, b := Random(rng), Random(rng)
		if got := a.Sub(b).add(b); got != a {
			t.Fatalf("(a-b)+b != a for a=%v b=%v", a, b)
		}
	}
}

func TestSubWraps(t *testing.T) {
	// 0 - 1 must wrap to the all-ones ID.
	got := Zero.Sub(FromUint64(1))
	want := MustParseHex("ffffffffffffffffffffffffffffffffffffffff")
	if got != want {
		t.Errorf("0-1 = %v, want all-ones", got.Hex())
	}
}

func TestRingDistSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a, b := Random(rng), Random(rng)
		if a.RingDist(b) != b.RingDist(a) {
			t.Fatalf("RingDist not symmetric for %v, %v", a, b)
		}
	}
}

func TestRingDistExamples(t *testing.T) {
	tests := []struct {
		name string
		a, b ID
		want ID
	}{
		{"same", FromUint64(9), FromUint64(9), Zero},
		{"adjacent", FromUint64(10), FromUint64(9), FromUint64(1)},
		{"wraparound", Zero, MustParseHex("ffffffffffffffffffffffffffffffffffffffff"), FromUint64(1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.RingDist(tt.b); got != tt.want {
				t.Errorf("RingDist = %v, want %v", got.Hex(), tt.want.Hex())
			}
		})
	}
}

func TestCloserRing(t *testing.T) {
	target := FromUint64(100)
	tests := []struct {
		name    string
		id, riv ID
		want    bool
	}{
		{"strictly closer", FromUint64(101), FromUint64(105), true},
		{"strictly farther", FromUint64(110), FromUint64(99), false},
		{"tie broken by smaller id", FromUint64(99), FromUint64(101), true},
		{"tie broken against larger id", FromUint64(101), FromUint64(99), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.id.CloserRing(target, tt.riv); got != tt.want {
				t.Errorf("CloserRing = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBetween(t *testing.T) {
	tests := []struct {
		name          string
		id, low, high ID
		want          bool
	}{
		{"inside simple arc", FromUint64(5), FromUint64(1), FromUint64(10), true},
		{"at high end inclusive", FromUint64(10), FromUint64(1), FromUint64(10), true},
		{"at low end exclusive", FromUint64(1), FromUint64(1), FromUint64(10), false},
		{"outside simple arc", FromUint64(11), FromUint64(1), FromUint64(10), false},
		{"wrapping arc includes zero", Zero, FromUint64(100), FromUint64(10), true},
		{"wrapping arc includes high side", MustParseHex("ffffffffffffffffffffffffffffffffffffffff"), FromUint64(100), FromUint64(10), true},
		{"wrapping arc excludes middle", FromUint64(50), FromUint64(100), FromUint64(10), false},
		{"full ring", FromUint64(42), FromUint64(7), FromUint64(7), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.id.Between(tt.low, tt.high); got != tt.want {
				t.Errorf("Between = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestBit(t *testing.T) {
	id := MustParseHex("8000000000000000000000000000000000000001")
	if got := id.Bit(0); got != 1 {
		t.Errorf("Bit(0) = %d, want 1", got)
	}
	if got := id.Bit(1); got != 0 {
		t.Errorf("Bit(1) = %d, want 0", got)
	}
	if got := id.Bit(159); got != 1 {
		t.Errorf("Bit(159) = %d, want 1", got)
	}
}

func TestXORProperties(t *testing.T) {
	f := func(a, b ID) bool {
		x := a.XOR(b)
		return x.XOR(b) == a && x == b.XOR(a) && a.XOR(a).IsZero()
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Error(err)
	}
}

func TestRingDistTriangleProperty(t *testing.T) {
	// Ring distance satisfies the triangle inequality unless the sum
	// overflows half the ring; we check the standard metric axioms that
	// always hold: identity and symmetry.
	f := func(a, b ID) bool {
		if a == b {
			return a.RingDist(b).IsZero()
		}
		return !a.RingDist(b).IsZero() && a.RingDist(b) == b.RingDist(a)
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Error(err)
	}
}

// Generate makes ID usable with testing/quick.
func (ID) Generate(rng *rand.Rand, _ int) reflectValue {
	return valueOf(Random(rng))
}
