package idspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSpace(t *testing.T) {
	for _, b := range []int{1, 2, 4, 8} {
		s, err := NewSpace(b)
		if err != nil {
			t.Fatalf("NewSpace(%d): %v", b, err)
		}
		if s.B() != b {
			t.Errorf("B() = %d, want %d", s.B(), b)
		}
		if s.Base() != 1<<b {
			t.Errorf("Base() = %d, want %d", s.Base(), 1<<b)
		}
		if s.Digits()*b != Bits {
			t.Errorf("Digits()*b = %d, want %d", s.Digits()*b, Bits)
		}
	}
	for _, b := range []int{0, 3, 5, 16, -1} {
		if _, err := NewSpace(b); err == nil {
			t.Errorf("NewSpace(%d) succeeded, want error", b)
		}
	}
}

func TestDigitExtraction(t *testing.T) {
	// ID beginning with bytes 0xAB 0xCD: base-16 digits A,B,C,D;
	// base-4 digits 2,2,2,3,3,0,3,1; base-2 bits 1,0,1,0,1,0,1,1,...
	id := MustParseHex("abcd000000000000000000000000000000000000")
	tests := []struct {
		b    int
		i    int
		want int
	}{
		{4, 0, 0xa}, {4, 1, 0xb}, {4, 2, 0xc}, {4, 3, 0xd}, {4, 4, 0},
		{8, 0, 0xab}, {8, 1, 0xcd},
		{2, 0, 2}, {2, 1, 2}, {2, 2, 2}, {2, 3, 3}, {2, 4, 3}, {2, 5, 0}, {2, 6, 3}, {2, 7, 1},
		{1, 0, 1}, {1, 1, 0}, {1, 2, 1}, {1, 3, 0}, {1, 4, 1}, {1, 5, 0}, {1, 6, 1}, {1, 7, 1},
	}
	for _, tt := range tests {
		s := MustSpace(tt.b)
		if got := s.Digit(id, tt.i); got != tt.want {
			t.Errorf("b=%d Digit(%d) = %#x, want %#x", tt.b, tt.i, got, tt.want)
		}
	}
}

func TestSetDigitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, b := range []int{1, 2, 4, 8} {
		s := MustSpace(b)
		for trial := 0; trial < 50; trial++ {
			id := Random(rng)
			i := rng.Intn(s.Digits())
			v := rng.Intn(s.Base())
			got := s.SetDigit(id, i, v)
			if s.Digit(got, i) != v {
				t.Fatalf("b=%d SetDigit(%d,%d) did not stick", b, i, v)
			}
			// Every other digit is untouched.
			for j := 0; j < s.Digits(); j++ {
				if j == i {
					continue
				}
				if s.Digit(got, j) != s.Digit(id, j) {
					t.Fatalf("b=%d SetDigit(%d) disturbed digit %d", b, i, j)
				}
			}
		}
	}
}

func TestCommonDigitsPaperExample(t *testing.T) {
	// Paper Figure 3, transplanted to the top 4 bits of the ID space:
	// 1001 vs 1011 share 3 bits; 1001 vs 0010 share 1 bit.
	s := MustSpace(1)
	pad := func(top byte) ID {
		var id ID
		id[0] = top << 4
		return id
	}
	a := pad(0b1001)
	b := pad(0b1011)
	c := pad(0b0010)
	// Only the top 4 bits differ; the remaining 156 bits always match, so
	// subtract them out to recover the 4-bit example.
	base := Bits - 4
	if got := s.CommonDigits(a, b) - base; got != 3 {
		t.Errorf("CommonDigits(1001,1011) = %d, want 3", got)
	}
	if got := s.CommonDigits(a, c) - base; got != 1 {
		t.Errorf("CommonDigits(1001,0010) = %d, want 1", got)
	}
}

func TestCommonDigitsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, b := range []int{1, 2, 4, 8} {
		s := MustSpace(b)
		for trial := 0; trial < 100; trial++ {
			x, y := Random(rng), Random(rng)
			naive := 0
			for i := 0; i < s.Digits(); i++ {
				if s.Digit(x, i) == s.Digit(y, i) {
					naive++
				}
			}
			if got := s.CommonDigits(x, y); got != naive {
				t.Fatalf("b=%d CommonDigits = %d, naive = %d", b, got, naive)
			}
		}
	}
}

func TestCommonDigitsIdentity(t *testing.T) {
	for _, b := range []int{1, 2, 4, 8} {
		s := MustSpace(b)
		f := func(a ID) bool { return s.CommonDigits(a, a) == s.Digits() }
		if err := quick.Check(f, quickConfig()); err != nil {
			t.Errorf("b=%d: %v", b, err)
		}
	}
}

func TestCommonDigitsSymmetry(t *testing.T) {
	s := MustSpace(4)
	f := func(a, b ID) bool { return s.CommonDigits(a, b) == s.CommonDigits(b, a) }
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Error(err)
	}
}

func TestSharedPrefix(t *testing.T) {
	s := MustSpace(4)
	tests := []struct {
		name string
		a, b string
		want int
	}{
		{"identical", "abcd000000000000000000000000000000000000", "abcd000000000000000000000000000000000000", 40},
		{"no common prefix", "a000000000000000000000000000000000000000", "b000000000000000000000000000000000000000", 0},
		{"two digit prefix", "ab10000000000000000000000000000000000000", "ab20000000000000000000000000000000000000", 2},
		{"long prefix", "abcdef0000000000000000000000000000000000", "abcdef1000000000000000000000000000000000", 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a, b := MustParseHex(tt.a), MustParseHex(tt.b)
			if got := s.SharedPrefix(a, b); got != tt.want {
				t.Errorf("SharedPrefix = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestSharedPrefixNeverExceedsCommonDigits(t *testing.T) {
	// A shared prefix of length k implies at least k common digits, so
	// SharedPrefix <= CommonDigits always. This is the formal core of the
	// paper's "distinguishability" argument in Section 4.2.
	for _, b := range []int{1, 2, 4} {
		s := MustSpace(b)
		f := func(x, y ID) bool { return s.SharedPrefix(x, y) <= s.CommonDigits(x, y) }
		if err := quick.Check(f, quickConfig()); err != nil {
			t.Errorf("b=%d: %v", b, err)
		}
	}
}

func TestZeroLaneCounters(t *testing.T) {
	tests := []struct {
		in                    uint64
		bytes, nibbles, pairs int
	}{
		{0, 8, 16, 32},
		{^uint64(0), 0, 0, 0},
		{1, 7, 15, 31},
		{0x8000000000000000, 7, 15, 31},
		{0x0100000000000000, 7, 15, 31},
		{0x00ff00ff00ff00ff, 4, 8, 16},
		{0x1111111111111111, 0, 0, 16},
		{0x4141414141414141, 0, 0, 16},
	}
	for _, tt := range tests {
		if got := zeroBytes(tt.in); got != tt.bytes {
			t.Errorf("zeroBytes(%#x) = %d, want %d", tt.in, got, tt.bytes)
		}
		if got := zeroNibbles(tt.in); got != tt.nibbles {
			t.Errorf("zeroNibbles(%#x) = %d, want %d", tt.in, got, tt.nibbles)
		}
		if got := zeroPairs(tt.in); got != tt.pairs {
			t.Errorf("zeroPairs(%#x) = %d, want %d", tt.in, got, tt.pairs)
		}
	}
}

func BenchmarkCommonDigitsB4(b *testing.B) {
	s := MustSpace(4)
	rng := rand.New(rand.NewSource(1))
	x, y := Random(rng), Random(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.CommonDigits(x, y)
	}
}

func BenchmarkSharedPrefixB4(b *testing.B) {
	s := MustSpace(4)
	rng := rand.New(rand.NewSource(1))
	x, y := Random(rng), Random(rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.SharedPrefix(x, y)
	}
}
