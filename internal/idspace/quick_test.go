package idspace

import (
	"math/rand"
	"reflect"
	"testing/quick"
)

// reflectValue and valueOf keep the testing/quick plumbing out of the way
// of the test bodies.
type reflectValue = reflect.Value

func valueOf(v interface{}) reflect.Value { return reflect.ValueOf(v) }

func quickConfig() *quick.Config {
	return &quick.Config{
		MaxCount: 300,
		Rand:     rand.New(rand.NewSource(42)),
	}
}
