// Package idspace implements the 160-bit identifier space shared by MPIL
// and Pastry, together with the digit arithmetic both routing algorithms
// are built on.
//
// Identifiers are fixed-width 160-bit strings (the width used by the paper
// and by Pastry/Chord). An ID can be viewed as a string of M = 160/b digits
// in base 2^b. MPIL's routing metric counts the number of digit positions
// at which two IDs agree (Section 4.1 of the paper); Pastry's prefix
// routing uses the length of the longest shared digit prefix. Both views
// are provided here, along with XOR and circular numeric comparisons used
// by the Pastry leaf set.
package idspace

import (
	"crypto/sha1"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/bits"
	"math/rand"
)

// Bits is the width of every identifier in bits.
const Bits = 160

// Bytes is the width of every identifier in bytes.
const Bytes = Bits / 8

// ID is a 160-bit identifier. The zero value is the all-zeros ID, which is
// a valid identifier. Byte 0 holds the most significant bits.
type ID [Bytes]byte

// Zero is the all-zeros identifier.
var Zero ID

// FromBytes builds an ID from the first Bytes bytes of p. If p is shorter
// than Bytes, the remaining low-order bytes are zero.
func FromBytes(p []byte) ID {
	var id ID
	copy(id[:], p)
	return id
}

// FromString hashes an arbitrary string (an object name, a node address)
// into the ID space using SHA-1, the hash historically used by Pastry
// deployments; SHA-1 output is exactly 160 bits wide.
func FromString(s string) ID {
	return ID(sha1.Sum([]byte(s)))
}

// FromUint64 places v in the low-order 64 bits of an otherwise-zero ID.
// It is intended for tests and examples where readable IDs matter.
func FromUint64(v uint64) ID {
	var id ID
	for i := 0; i < 8; i++ {
		id[Bytes-1-i] = byte(v >> (8 * i))
	}
	return id
}

// Random draws an ID uniformly at random from the full 160-bit space using
// the supplied deterministic source.
func Random(rng *rand.Rand) ID {
	var id ID
	for i := 0; i < Bytes; i += 4 {
		v := rng.Uint32()
		id[i] = byte(v >> 24)
		id[i+1] = byte(v >> 16)
		id[i+2] = byte(v >> 8)
		id[i+3] = byte(v)
	}
	return id
}

// ParseHex parses a 40-character hexadecimal string into an ID.
func ParseHex(s string) (ID, error) {
	var id ID
	if len(s) != 2*Bytes {
		return id, fmt.Errorf("idspace: hex ID must be %d characters, got %d", 2*Bytes, len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return id, fmt.Errorf("idspace: parse hex ID: %w", err)
	}
	copy(id[:], b)
	return id, nil
}

// MustParseHex is ParseHex that panics on malformed input. It is intended
// for tests and package-level example tables.
func MustParseHex(s string) ID {
	id, err := ParseHex(s)
	if err != nil {
		panic(err)
	}
	return id
}

// Hex renders the ID as a 40-character lowercase hexadecimal string.
func (id ID) Hex() string { return hex.EncodeToString(id[:]) }

// String implements fmt.Stringer with a short 8-character prefix, which is
// what log lines and traces want.
func (id ID) String() string { return hex.EncodeToString(id[:4]) }

// IsZero reports whether the ID is the all-zeros identifier.
func (id ID) IsZero() bool { return id == Zero }

// words returns the ID as big-endian machine words: two 64-bit words and
// a trailing 32-bit word, with w0 holding the most significant bits. All
// hot arithmetic below runs word-parallel over this view instead of
// looping per byte or per digit.
func (id ID) words() (w0, w1 uint64, w2 uint32) {
	return binary.BigEndian.Uint64(id[0:8]),
		binary.BigEndian.Uint64(id[8:16]),
		binary.BigEndian.Uint32(id[16:20])
}

// fromWords is the inverse of words.
func fromWords(w0, w1 uint64, w2 uint32) ID {
	var id ID
	binary.BigEndian.PutUint64(id[0:8], w0)
	binary.BigEndian.PutUint64(id[8:16], w1)
	binary.BigEndian.PutUint32(id[16:20], w2)
	return id
}

// Cmp compares two IDs as 160-bit unsigned integers, returning -1, 0 or +1.
func (id ID) Cmp(other ID) int {
	a0, a1, a2 := id.words()
	b0, b1, b2 := other.words()
	switch {
	case a0 != b0:
		if a0 < b0 {
			return -1
		}
		return 1
	case a1 != b1:
		if a1 < b1 {
			return -1
		}
		return 1
	case a2 != b2:
		if a2 < b2 {
			return -1
		}
		return 1
	}
	return 0
}

// Less reports whether id < other as 160-bit unsigned integers.
func (id ID) Less(other ID) bool { return id.Cmp(other) < 0 }

// XOR returns the bitwise exclusive-or of two IDs, the raw material of the
// Kademlia-style distance and of MPIL's common-digit count.
func (id ID) XOR(other ID) ID {
	a0, a1, a2 := id.words()
	b0, b1, b2 := other.words()
	return fromWords(a0^b0, a1^b1, a2^b2)
}

// Bit returns bit i of the ID, where bit 0 is the most significant.
func (id ID) Bit(i int) int {
	if i < 0 || i >= Bits {
		panic(fmt.Sprintf("idspace: bit index %d out of range", i))
	}
	return int(id[i/8]>>(7-uint(i%8))) & 1
}

// add returns id+other mod 2^160.
func (id ID) add(other ID) ID {
	a0, a1, a2 := id.words()
	b0, b1, b2 := other.words()
	s2 := uint64(a2) + uint64(b2)
	s1, c1 := bits.Add64(a1, b1, s2>>32)
	s0, _ := bits.Add64(a0, b0, c1)
	return fromWords(s0, s1, uint32(s2))
}

// Sub returns id-other mod 2^160, i.e. the clockwise ring distance from
// other to id.
func (id ID) Sub(other ID) ID {
	a0, a1, a2 := id.words()
	b0, b1, b2 := other.words()
	d2, borrow := bits.Sub64(uint64(a2), uint64(b2), 0)
	d1, borrow := bits.Sub64(a1, b1, borrow)
	d0, _ := bits.Sub64(a0, b0, borrow)
	return fromWords(d0, d1, uint32(d2))
}

// RingDist returns the distance between two IDs on the circular 160-bit
// ring: min(a-b, b-a) mod 2^160. Pastry's leaf set and final delivery rule
// use this circular closeness.
func (id ID) RingDist(other ID) ID {
	cw := id.Sub(other)
	ccw := other.Sub(id)
	if cw.Cmp(ccw) <= 0 {
		return cw
	}
	return ccw
}

// CloserRing reports whether id is strictly closer to target than rival is,
// under circular numeric distance. Ties are broken toward the numerically
// smaller ID so the relation is a total order for distinct IDs.
func (id ID) CloserRing(target, rival ID) bool {
	a := id.RingDist(target)
	b := rival.RingDist(target)
	if c := a.Cmp(b); c != 0 {
		return c < 0
	}
	return id.Cmp(rival) < 0
}

// CloserXOR reports whether id is strictly closer to target than rival is,
// under the XOR metric.
func (id ID) CloserXOR(target, rival ID) bool {
	a := id.XOR(target)
	b := rival.XOR(target)
	return a.Cmp(b) < 0
}

// Between reports whether id lies on the clockwise arc (low, high], the
// ring-interval test used when deciding leaf-set coverage. When low ==
// high the arc is the full ring and every ID qualifies.
func (id ID) Between(low, high ID) bool {
	if low == high {
		return true
	}
	if low.Less(high) {
		return low.Less(id) && !high.Less(id)
	}
	// The arc wraps through zero.
	return low.Less(id) || !high.Less(id)
}
