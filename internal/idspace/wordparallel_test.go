package idspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Reference implementations: the seed's per-byte / per-digit loops, kept
// here as the spec the word-parallel rewrites must match bit for bit.

func naiveCmp(a, b ID) int {
	for i := 0; i < Bytes; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}

func naiveXOR(a, b ID) ID {
	var out ID
	for i := 0; i < Bytes; i++ {
		out[i] = a[i] ^ b[i]
	}
	return out
}

func naiveSub(a, b ID) ID {
	var out ID
	var borrow int16
	for i := Bytes - 1; i >= 0; i-- {
		d := int16(a[i]) - int16(b[i]) - borrow
		if d < 0 {
			d += 256
			borrow = 1
		} else {
			borrow = 0
		}
		out[i] = byte(d)
	}
	return out
}

func naiveAdd(a, b ID) ID {
	var out ID
	var carry uint16
	for i := Bytes - 1; i >= 0; i-- {
		s := uint16(a[i]) + uint16(b[i]) + carry
		out[i] = byte(s)
		carry = s >> 8
	}
	return out
}

func naiveCommonDigits(s Space, a, b ID) int {
	n := 0
	for i := 0; i < s.Digits(); i++ {
		if s.Digit(a, i) == s.Digit(b, i) {
			n++
		}
	}
	return n
}

func naiveSharedPrefix(s Space, a, b ID) int {
	m := s.Digits()
	for i := 0; i < m; i++ {
		if s.Digit(a, i) != s.Digit(b, i) {
			return i
		}
	}
	return m
}

// correlatedPairs yields ID pairs biased toward the structure the random
// generator almost never produces — long shared prefixes, single-digit
// differences, equal IDs, all-zeros/all-ones words — which is exactly
// where leading-zero and SWAR lane arithmetic can go wrong.
func correlatedPairs(rng *rand.Rand, n int) [][2]ID {
	pairs := make([][2]ID, 0, n)
	for len(pairs) < n {
		a := Random(rng)
		b := a
		switch rng.Intn(6) {
		case 0: // equal
		case 1: // flip one bit
			i := rng.Intn(Bits)
			b[i/8] ^= 1 << uint(7-i%8)
		case 2: // change one byte
			b[rng.Intn(Bytes)] = byte(rng.Intn(256))
		case 3: // diverge from a random byte onward
			from := rng.Intn(Bytes)
			for i := from; i < Bytes; i++ {
				b[i] = byte(rng.Intn(256))
			}
		case 4: // extreme words
			a = Zero
			for i := range b {
				b[i] = 0xff
			}
			for i := rng.Intn(Bytes + 1); i < Bytes; i++ {
				b[i] = 0
			}
		case 5: // difference only in the trailing 32-bit word
			b[16+rng.Intn(4)] ^= byte(1 + rng.Intn(255))
		}
		pairs = append(pairs, [2]ID{a, b})
	}
	return pairs
}

func TestWordParallelDigitOpsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pairs := correlatedPairs(rng, 2000)
	for _, b := range []int{1, 2, 4, 8} {
		s := MustSpace(b)
		for _, p := range pairs {
			x, y := p[0], p[1]
			if got, want := s.CommonDigits(x, y), naiveCommonDigits(s, x, y); got != want {
				t.Fatalf("b=%d CommonDigits(%v, %v) = %d, want %d", b, x.Hex(), y.Hex(), got, want)
			}
			if got, want := s.SharedPrefix(x, y), naiveSharedPrefix(s, x, y); got != want {
				t.Fatalf("b=%d SharedPrefix(%v, %v) = %d, want %d", b, x.Hex(), y.Hex(), got, want)
			}
		}
	}
}

func TestWordParallelArithmeticAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, p := range correlatedPairs(rng, 2000) {
		x, y := p[0], p[1]
		if got, want := x.Cmp(y), naiveCmp(x, y); got != want {
			t.Fatalf("Cmp(%v, %v) = %d, want %d", x.Hex(), y.Hex(), got, want)
		}
		if got, want := x.XOR(y), naiveXOR(x, y); got != want {
			t.Fatalf("XOR(%v, %v) = %v, want %v", x.Hex(), y.Hex(), got.Hex(), want.Hex())
		}
		if got, want := x.Sub(y), naiveSub(x, y); got != want {
			t.Fatalf("Sub(%v, %v) = %v, want %v", x.Hex(), y.Hex(), got.Hex(), want.Hex())
		}
		if got, want := x.add(y), naiveAdd(x, y); got != want {
			t.Fatalf("add(%v, %v) = %v, want %v", x.Hex(), y.Hex(), got.Hex(), want.Hex())
		}
	}
}

func TestWordParallelQuickProperties(t *testing.T) {
	for _, b := range []int{1, 2, 4, 8} {
		s := MustSpace(b)
		cd := func(x, y ID) bool { return s.CommonDigits(x, y) == naiveCommonDigits(s, x, y) }
		sp := func(x, y ID) bool { return s.SharedPrefix(x, y) == naiveSharedPrefix(s, x, y) }
		if err := quick.Check(cd, quickConfig()); err != nil {
			t.Errorf("b=%d CommonDigits: %v", b, err)
		}
		if err := quick.Check(sp, quickConfig()); err != nil {
			t.Errorf("b=%d SharedPrefix: %v", b, err)
		}
	}
	cmp := func(x, y ID) bool { return x.Cmp(y) == naiveCmp(x, y) }
	sub := func(x, y ID) bool { return x.Sub(y) == naiveSub(x, y) }
	if err := quick.Check(cmp, quickConfig()); err != nil {
		t.Errorf("Cmp: %v", err)
	}
	if err := quick.Check(sub, quickConfig()); err != nil {
		t.Errorf("Sub: %v", err)
	}
}

func TestWordsRoundTrip(t *testing.T) {
	f := func(x ID) bool {
		w0, w1, w2 := x.words()
		return fromWords(w0, w1, w2) == x
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Error(err)
	}
}

// --- digit-op microbenches across the digit-width sweep ---

func benchIDs() (ID, ID) {
	rng := rand.New(rand.NewSource(7))
	return Random(rng), Random(rng)
}

func BenchmarkCommonDigits(b *testing.B) {
	x, y := benchIDs()
	for _, bits := range []int{1, 2, 4, 8} {
		s := MustSpace(bits)
		b.Run(s.digitsLabel(), func(b *testing.B) {
			b.ReportAllocs()
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += s.CommonDigits(x, y)
			}
			benchSink = sink
		})
	}
}

func BenchmarkSharedPrefix(b *testing.B) {
	// A long shared prefix exercises the full scan depth.
	x, _ := benchIDs()
	y := x
	y[18] ^= 0x01
	for _, bits := range []int{1, 2, 4, 8} {
		s := MustSpace(bits)
		b.Run(s.digitsLabel(), func(b *testing.B) {
			b.ReportAllocs()
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += s.SharedPrefix(x, y)
			}
			benchSink = sink
		})
	}
}

func BenchmarkCmp(b *testing.B) {
	x, _ := benchIDs()
	y := x
	y[19] ^= 0x01 // equal until the last byte: worst case
	b.ReportAllocs()
	sink := 0
	for i := 0; i < b.N; i++ {
		sink += x.Cmp(y)
	}
	benchSink = sink
}

func BenchmarkSub(b *testing.B) {
	x, y := benchIDs()
	b.ReportAllocs()
	var sink ID
	for i := 0; i < b.N; i++ {
		sink = x.Sub(y)
	}
	benchSinkID = sink
}

var (
	benchSink   int
	benchSinkID ID
)

func (s Space) digitsLabel() string {
	switch s.b {
	case 1:
		return "b1"
	case 2:
		return "b2"
	case 4:
		return "b4"
	default:
		return "b8"
	}
}
