package idspace

import "fmt"

// Space describes a positional view of the 160-bit ID space: IDs read as
// strings of Digits() digits, each B bits wide (base 2^B). The paper's
// analysis (Section 5) is parameterized the same way, with m = M*b.
//
// The zero value is not valid; construct with NewSpace.
type Space struct {
	b int // bits per digit
}

// NewSpace returns the base-2^b view of the ID space. b must be one of
// 1, 2, 4 or 8 so that digits pack evenly into bytes.
func NewSpace(b int) (Space, error) {
	switch b {
	case 1, 2, 4, 8:
		return Space{b: b}, nil
	default:
		return Space{}, fmt.Errorf("idspace: unsupported digit width %d bits (want 1, 2, 4 or 8)", b)
	}
}

// MustSpace is NewSpace that panics on invalid b. Intended for
// package-level defaults and tests.
func MustSpace(b int) Space {
	s, err := NewSpace(b)
	if err != nil {
		panic(err)
	}
	return s
}

// B returns the digit width in bits.
func (s Space) B() int { return s.b }

// Base returns the radix 2^b of the digit alphabet.
func (s Space) Base() int { return 1 << uint(s.b) }

// Digits returns M, the number of digits in an ID under this view.
func (s Space) Digits() int { return Bits / s.b }

// Digit extracts digit i of the ID, where digit 0 is the most significant.
func (s Space) Digit(id ID, i int) int {
	if i < 0 || i >= s.Digits() {
		panic(fmt.Sprintf("idspace: digit index %d out of range for %d-digit space", i, s.Digits()))
	}
	bitOff := i * s.b
	byteIdx := bitOff / 8
	shift := 8 - s.b - (bitOff % 8)
	return int(id[byteIdx]>>uint(shift)) & (s.Base() - 1)
}

// SetDigit returns a copy of id with digit i replaced by v. It is used by
// tests and by ID constructors that need precise digit patterns.
func (s Space) SetDigit(id ID, i, v int) ID {
	if v < 0 || v >= s.Base() {
		panic(fmt.Sprintf("idspace: digit value %d out of range for base %d", v, s.Base()))
	}
	bitOff := i * s.b
	byteIdx := bitOff / 8
	shift := uint(8 - s.b - (bitOff % 8))
	mask := byte((s.Base() - 1) << shift)
	id[byteIdx] = (id[byteIdx] &^ mask) | byte(v)<<shift
	return id
}

// CommonDigits is the MPIL routing metric (paper Section 4.1): the number
// of digit positions at which a and b hold the same value — equivalently
// the number of zero digits in a XOR b. Higher is closer.
func (s Space) CommonDigits(a, b ID) int {
	x := a.XOR(b)
	switch s.b {
	case 8:
		n := 0
		for i := 0; i < Bytes; i++ {
			if x[i] == 0 {
				n++
			}
		}
		return n
	case 4:
		n := 0
		for i := 0; i < Bytes; i++ {
			if x[i]&0xf0 == 0 {
				n++
			}
			if x[i]&0x0f == 0 {
				n++
			}
		}
		return n
	case 2:
		n := 0
		for i := 0; i < Bytes; i++ {
			v := x[i]
			if v&0xc0 == 0 {
				n++
			}
			if v&0x30 == 0 {
				n++
			}
			if v&0x0c == 0 {
				n++
			}
			if v&0x03 == 0 {
				n++
			}
		}
		return n
	default: // b == 1: common bits = 160 - popcount
		n := Bits
		for i := 0; i < Bytes; i++ {
			n -= popcount(x[i])
		}
		return n
	}
}

// SharedPrefix is Pastry's routing metric: the length (in digits) of the
// longest common prefix of a and b. It ranges over [0, Digits()].
func (s Space) SharedPrefix(a, b ID) int {
	m := s.Digits()
	for i := 0; i < m; i++ {
		if s.Digit(a, i) != s.Digit(b, i) {
			return i
		}
	}
	return m
}

func popcount(b byte) int {
	n := 0
	for b != 0 {
		b &= b - 1
		n++
	}
	return n
}
