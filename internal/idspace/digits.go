package idspace

import (
	"fmt"
	"math/bits"
)

// Space describes a positional view of the 160-bit ID space: IDs read as
// strings of Digits() digits, each B bits wide (base 2^B). The paper's
// analysis (Section 5) is parameterized the same way, with m = M*b.
//
// The zero value is not valid; construct with NewSpace.
type Space struct {
	b int // bits per digit
}

// NewSpace returns the base-2^b view of the ID space. b must be one of
// 1, 2, 4 or 8 so that digits pack evenly into bytes.
func NewSpace(b int) (Space, error) {
	switch b {
	case 1, 2, 4, 8:
		return Space{b: b}, nil
	default:
		return Space{}, fmt.Errorf("idspace: unsupported digit width %d bits (want 1, 2, 4 or 8)", b)
	}
}

// MustSpace is NewSpace that panics on invalid b. Intended for
// package-level defaults and tests.
func MustSpace(b int) Space {
	s, err := NewSpace(b)
	if err != nil {
		panic(err)
	}
	return s
}

// B returns the digit width in bits.
func (s Space) B() int { return s.b }

// Base returns the radix 2^b of the digit alphabet.
func (s Space) Base() int { return 1 << uint(s.b) }

// Digits returns M, the number of digits in an ID under this view.
func (s Space) Digits() int { return Bits / s.b }

// Digit extracts digit i of the ID, where digit 0 is the most significant.
func (s Space) Digit(id ID, i int) int {
	if i < 0 || i >= s.Digits() {
		panic(fmt.Sprintf("idspace: digit index %d out of range for %d-digit space", i, s.Digits()))
	}
	bitOff := i * s.b
	byteIdx := bitOff / 8
	shift := 8 - s.b - (bitOff % 8)
	return int(id[byteIdx]>>uint(shift)) & (s.Base() - 1)
}

// SetDigit returns a copy of id with digit i replaced by v. It is used by
// tests and by ID constructors that need precise digit patterns.
func (s Space) SetDigit(id ID, i, v int) ID {
	if v < 0 || v >= s.Base() {
		panic(fmt.Sprintf("idspace: digit value %d out of range for base %d", v, s.Base()))
	}
	bitOff := i * s.b
	byteIdx := bitOff / 8
	shift := uint(8 - s.b - (bitOff % 8))
	mask := byte((s.Base() - 1) << shift)
	id[byteIdx] = (id[byteIdx] &^ mask) | byte(v)<<shift
	return id
}

// CommonDigits is the MPIL routing metric (paper Section 4.1): the number
// of digit positions at which a and b hold the same value — equivalently
// the number of zero digits in a XOR b. Higher is closer.
//
// The count runs word-parallel (SWAR) over the 160-bit XOR viewed as two
// 64-bit words plus one 32-bit word: each b-bit lane folds its bits into
// a single flag bit and a popcount finishes the job. The trailing 32-bit
// word is zero-extended to 64 bits, so its phantom high half contributes
// exactly 32/b spurious zero digits, subtracted as a constant.
func (s Space) CommonDigits(a, b ID) int {
	a0, a1, a2 := a.words()
	b0, b1, b2 := b.words()
	x0, x1, x2 := a0^b0, a1^b1, uint64(a2^b2)
	switch s.b {
	case 8:
		return zeroBytes(x0) + zeroBytes(x1) + zeroBytes(x2) - 32/8
	case 4:
		return zeroNibbles(x0) + zeroNibbles(x1) + zeroNibbles(x2) - 32/4
	case 2:
		return zeroPairs(x0) + zeroPairs(x1) + zeroPairs(x2) - 32/2
	default: // b == 1: common bits = 160 - popcount
		return Bits - bits.OnesCount64(x0) - bits.OnesCount64(x1) - bits.OnesCount64(x2)
	}
}

// zeroBytes counts zero bytes in x. For each byte, (b&0x7f)+0x7f sets bit
// 7 iff the low seven bits are nonzero; OR-ing x back in folds bit 7
// itself, so the complement's high bits flag exactly the zero bytes. The
// per-byte adds cannot carry across lanes (0x7f+0x7f < 0x100).
func zeroBytes(x uint64) int {
	const lo7 = 0x7f7f7f7f7f7f7f7f
	t := (x & lo7) + lo7
	return bits.OnesCount64(^(t | x) & 0x8080808080808080)
}

// zeroNibbles counts zero 4-bit lanes in x by OR-folding each lane onto
// its lowest bit.
func zeroNibbles(x uint64) int {
	y := x | x>>2
	y |= y >> 1
	return 16 - bits.OnesCount64(y&0x1111111111111111)
}

// zeroPairs counts zero 2-bit lanes in x.
func zeroPairs(x uint64) int {
	y := x | x>>1
	return 32 - bits.OnesCount64(y&0x5555555555555555)
}

// SharedPrefix is Pastry's routing metric: the length (in digits) of the
// longest common prefix of a and b. It ranges over [0, Digits()]. The
// prefix length in digits is the number of leading zero bits of a XOR b,
// truncated to a whole number of digits.
func (s Space) SharedPrefix(a, b ID) int {
	a0, a1, a2 := a.words()
	b0, b1, b2 := b.words()
	var lz int
	switch {
	case a0 != b0:
		lz = bits.LeadingZeros64(a0 ^ b0)
	case a1 != b1:
		lz = 64 + bits.LeadingZeros64(a1^b1)
	case a2 != b2:
		lz = 128 + bits.LeadingZeros32(a2^b2)
	default:
		return s.Digits()
	}
	return lz / s.b
}
