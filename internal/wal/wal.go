// Package wal is an append-only, segmented, checksummed write-ahead log:
// the durability layer beneath discoveryd's in-memory shard engines.
//
// The log stores opaque payloads. Every record is assigned a dense,
// monotonically increasing sequence number; the caller decides what a
// payload means (discovery encodes shard-tagged Insert/Delete operations).
// Like internal/wire, the codec is strict, canonical, never panics on
// arbitrary bytes, and the steady-state append path performs zero heap
// allocations: records are framed into a reused scratch buffer and handed
// to the OS with a single write.
//
// # On-disk layout
//
// A log is a directory of segment files named wal-<firstSeq>.seg, where
// <firstSeq> is the 20-digit decimal sequence number of the segment's
// first record. Each segment is:
//
//	| magic "MPILWAL1" | u64 firstSeq |          (16-byte header)
//	| u32 payloadLen | u32 crc32c | u64 seq | payload |   (records)
//
// All integers are big-endian. The CRC (Castagnoli polynomial) covers the
// seq field and the payload, so a record that survives validation is both
// intact and in its claimed position; sequence numbers must be dense
// within and across segments.
//
// # Recovery
//
// Open scans every segment and stops at the first invalid byte: a short
// header, a CRC mismatch, a sequence discontinuity, or a truncated tail.
// Everything before that point is kept, the torn tail is truncated away,
// and any later segments (which cannot be reconciled once the chain is
// broken) are deleted. Recovery therefore always succeeds on arbitrary
// input and always yields a valid prefix of what was appended — the
// property FuzzWALDecode pins.
//
// # Durability policies
//
// SyncAlways fsyncs inline on every append. SyncBatch is group commit:
// the append is written immediately, then the caller waits until some
// fsync covers its record; one "leader" fsyncs on behalf of every append
// that landed before it, so concurrent writers (discoveryd's shard
// workers) amortize syncs while keeping the acked ⇒ durable guarantee.
// SyncOff never fsyncs: records still reach the kernel before the append
// returns (surviving a process crash) but can be lost to a power failure.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"discovery/internal/metrics"
)

const (
	segMagic  = "MPILWAL1"
	segHdrLen = 8 + 8     // magic | u64 firstSeq
	recHdrLen = 4 + 4 + 8 // u32 payloadLen | u32 crc32c | u64 seq

	// MaxPayload bounds a single record's payload. It comfortably fits
	// any wire frame plus the operation header and bounds the allocation
	// a corrupt length field can force on recovery.
	MaxPayload = 1 << 21

	// DefaultSegmentBytes is the rotation threshold when Options leaves
	// SegmentBytes zero.
	DefaultSegmentBytes = 64 << 20

	// maxRetainedScratch caps the framing scratch kept between appends.
	// A batch of near-MaxPayload records can legitimately need tens of
	// megabytes once, but retaining that forever would pin the worst
	// batch ever seen; anything above the cap is dropped for the next
	// append to reallocate right-sized. The cap stays above MaxPayload
	// plus framing so the single-record path never thrashes.
	maxRetainedScratch = 4 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Policy selects when appends are fsynced.
type Policy uint8

// Durability policies.
const (
	// SyncBatch group-commits: an append returns only once an fsync
	// covers its record, but concurrent appenders share fsyncs.
	SyncBatch Policy = iota
	// SyncAlways issues a dedicated fsync for every append.
	SyncAlways
	// SyncOff never fsyncs; data reaches the kernel but a power failure
	// may lose the tail. Process crashes (SIGKILL) lose nothing.
	SyncOff
)

// ParsePolicy parses the policy names used by command-line flags.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "batch":
		return SyncBatch, nil
	case "always":
		return SyncAlways, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, batch or off)", s)
}

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case SyncBatch:
		return "batch"
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Log errors.
var (
	ErrClosed    = errors.New("wal: log closed")
	ErrTooLarge  = errors.New("wal: payload exceeds MaxPayload")
	ErrTruncated = errors.New("wal: requested records already truncated away")
)

// Options parameterizes Open.
type Options struct {
	// SegmentBytes is the rotation threshold: once the active segment
	// reaches it, the next append goes to a fresh segment. Zero selects
	// DefaultSegmentBytes.
	SegmentBytes int64
	// Sync is the durability policy applied by Append.
	Sync Policy
	// Metrics, when non-nil, receives the log's instrumentation:
	// wal.appends / wal.records / wal.fsyncs counters, and
	// wal.append_seconds / wal.fsync_seconds / wal.batch_records
	// histograms. A nil registry leaves the append path unmetered (the
	// nil metrics are no-ops), at no allocation either way.
	Metrics *metrics.Registry
	// SyncErr, when non-nil, is consulted before every fsync the append
	// path issues (Append, AppendBatch, Sync): a non-nil return is
	// treated exactly like a failed fsync(2) — the in-flight mutation is
	// not acked and the log poisons itself, refusing all further
	// appends. This is a fault-injection hook for chaos testing the
	// poison-on-sync-error contract end to end; production leaves it
	// nil. It does not fire on segment-seal or Close syncs, which are
	// not ack barriers.
	SyncErr func() error
}

// segment is one on-disk segment file.
type segment struct {
	path     string
	firstSeq uint64
}

// Log is an open write-ahead log. Append, Sync, Replay and TruncateBefore
// are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu       sync.Mutex
	f        *os.File  // active segment
	size     int64     // bytes written to the active segment
	segs     []segment // ascending firstSeq; last is active
	firstSeq uint64    // oldest retained sequence number
	nextSeq  uint64    // sequence number the next append receives
	buf      []byte    // append framing scratch
	werr     error     // sticky write error; poisons the log
	closed   bool

	gc groupCommit

	// Instrumentation (nil-safe no-ops without Options.Metrics).
	appends      *metrics.Counter
	records      *metrics.Counter
	fsyncs       *metrics.Counter
	appendNanos  *metrics.Histogram // full append incl. durability wait
	fsyncNanos   *metrics.Histogram // each fsync issued on the append path
	batchRecords *metrics.Histogram // records per append call
}

// groupCommit is the leader/follower fsync state shared by SyncBatch
// appenders.
type groupCommit struct {
	mu        sync.Mutex
	cond      *sync.Cond
	syncedSeq uint64 // every record with seq <= syncedSeq is durable
	syncing   bool   // a leader's fsync is in flight
	err       error  // sticky fsync error
}

// Open opens (or creates) the log in dir, recovering to the last valid
// record: torn tails are truncated in place and unreconcilable later
// segments are deleted, so Open fails only on I/O errors, never on
// corrupt content.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	l.gc.cond = sync.NewCond(&l.gc.mu)
	l.appends = opts.Metrics.Counter("wal.appends")
	l.records = opts.Metrics.Counter("wal.records")
	l.fsyncs = opts.Metrics.Counter("wal.fsyncs")
	l.appendNanos = opts.Metrics.Histogram("wal.append_seconds", 1e-9)
	l.fsyncNanos = opts.Metrics.Histogram("wal.fsync_seconds", 1e-9)
	l.batchRecords = opts.Metrics.Histogram("wal.batch_records", 1)

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	// Walk the chain in order, stopping at the first invalid point.
	nextSeq := uint64(1)
	var valid []segment
	for k, sg := range segs {
		if k > 0 && sg.firstSeq != nextSeq {
			// Gap or overlap with the previous segment: unreconcilable.
			if err := removeSegments(dir, segs[k:]); err != nil {
				return nil, err
			}
			break
		}
		res, err := scanSegment(sg.path)
		if err != nil {
			return nil, err
		}
		if !res.hdrOK || res.firstSeq != sg.firstSeq {
			// A segment whose header never hit the disk holds only
			// records that were never acked; drop it and the rest.
			if err := removeSegments(dir, segs[k:]); err != nil {
				return nil, err
			}
			break
		}
		if res.validSize < res.fileSize {
			// Torn or corrupt tail: truncate to the last valid record
			// and drop everything after this segment.
			if err := os.Truncate(sg.path, res.validSize); err != nil {
				return nil, err
			}
			if err := removeSegments(dir, segs[k+1:]); err != nil {
				return nil, err
			}
			valid = append(valid, sg)
			nextSeq = sg.firstSeq + uint64(res.records)
			break
		}
		valid = append(valid, sg)
		nextSeq = sg.firstSeq + uint64(res.records)
	}
	l.segs = append([]segment(nil), valid...)
	l.nextSeq = nextSeq

	if len(l.segs) == 0 {
		if err := l.createSegmentLocked(l.nextSeq); err != nil {
			return nil, err
		}
	} else {
		active := l.segs[len(l.segs)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY, 0)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(0, io.SeekEnd); err != nil {
			f.Close()
			return nil, err
		}
		l.f = f
		l.size = st.Size()
	}
	l.firstSeq = l.segs[0].firstSeq
	// Everything recovered from disk is as durable as it will get.
	l.gc.syncedSeq = l.nextSeq - 1
	return l, nil
}

// Bounds returns the retained sequence range: first is the oldest
// sequence number still on disk and next is the number the next append
// will receive. The log holds records [first, next); it is empty when
// first == next.
func (l *Log) Bounds() (first, next uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstSeq, l.nextSeq
}

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Append writes one record and returns its sequence number. Under
// SyncAlways and SyncBatch the record is durable when Append returns;
// under SyncOff it has reached the kernel but not necessarily the disk.
// A failed write poisons the log: every later Append returns the same
// error, and recovery on reopen truncates the torn tail.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, ErrTooLarge
	}
	var start time.Time
	if l.appendNanos != nil {
		start = time.Now()
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.werr != nil {
		err := l.werr
		l.mu.Unlock()
		return 0, err
	}
	seq := l.nextSeq
	l.buf = appendRecord(l.buf[:0], seq, payload)
	f, err := l.commitBufLocked(1) // unlocks l.mu
	if err != nil {
		return 0, err
	}
	if err := l.syncAppended(f, seq); err != nil {
		return 0, err
	}
	if l.appendNanos != nil {
		l.appendNanos.Observe(int64(time.Since(start)))
		l.appends.Inc()
		l.records.Inc()
		l.batchRecords.Observe(1)
	}
	return seq, nil
}

// AppendBatch writes one record per payload with consecutive sequence
// numbers, framed into a single buffer and handed to the OS with ONE
// write(2); the k-th payload receives sequence first+k. Durability
// matches Append — under SyncAlways and SyncBatch every record in the
// batch is durable when AppendBatch returns — but the whole batch shares
// one fsync, and concurrent batches from other appenders share it too
// via the same group commit. An empty batch is a no-op returning (0, nil).
//
// A write failure poisons the log exactly like Append: no record in the
// batch was acknowledged, and whatever prefix reached the disk is
// truncated or replayed by recovery exactly as a crash between append
// and ack would be.
func (l *Log) AppendBatch(payloads [][]byte) (first uint64, err error) {
	for _, p := range payloads {
		if len(p) > MaxPayload {
			return 0, ErrTooLarge
		}
	}
	if len(payloads) == 0 {
		return 0, nil
	}
	var start time.Time
	if l.appendNanos != nil {
		start = time.Now()
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.werr != nil {
		err := l.werr
		l.mu.Unlock()
		return 0, err
	}
	if cap(l.buf) > maxRetainedScratch {
		l.buf = nil // an earlier giant batch grew it; start fresh
	}
	first = l.nextSeq
	l.buf = l.buf[:0]
	for k, p := range payloads {
		l.buf = appendRecord(l.buf, first+uint64(k), p)
	}
	f, err := l.commitBufLocked(len(payloads)) // unlocks l.mu
	if err != nil {
		return 0, err
	}
	last := first + uint64(len(payloads)) - 1
	if err := l.syncAppended(f, last); err != nil {
		return 0, err
	}
	if l.appendNanos != nil {
		l.appendNanos.Observe(int64(time.Since(start)))
		l.appends.Inc()
		l.records.Add(uint64(len(payloads)))
		l.batchRecords.Observe(int64(len(payloads)))
	}
	return first, nil
}

// commitBufLocked writes the framed records in l.buf (n of them) to the
// active segment, advances the sequence space, and rotates if the
// segment is full. The caller holds l.mu; commitBufLocked RELEASES it and
// returns the file whose fsync covers the new records.
func (l *Log) commitBufLocked(n int) (*os.File, error) {
	if _, err := l.f.Write(l.buf); err != nil {
		// The file offset may now sit mid-record; anything appended after
		// it would be unreachable to recovery. Poison the log instead.
		l.werr = err
		l.mu.Unlock()
		return nil, err
	}
	l.nextSeq += uint64(n)
	l.size += int64(len(l.buf))
	if l.size >= l.opts.SegmentBytes {
		if err := l.rotateLocked(); err != nil {
			l.werr = err
			l.mu.Unlock()
			return nil, err
		}
	}
	f := l.f
	l.mu.Unlock()
	return f, nil
}

// timedSync fsyncs f, metering duration and count when the log is
// instrumented. Every fsync issued on the append path goes through it,
// so Options.SyncErr injected here hits exactly the ack barrier.
func (l *Log) timedSync(f *os.File) error {
	if l.opts.SyncErr != nil {
		if err := l.opts.SyncErr(); err != nil {
			return err
		}
	}
	if l.fsyncNanos == nil {
		return f.Sync()
	}
	t := time.Now()
	err := f.Sync()
	l.fsyncNanos.Observe(int64(time.Since(t)))
	l.fsyncs.Inc()
	return err
}

// syncAppended applies the durability policy to records up to seq, which
// were just written to f (or fsynced already by a rotation).
func (l *Log) syncAppended(f *os.File, seq uint64) error {
	switch l.opts.Sync {
	case SyncOff:
		return nil
	case SyncAlways:
		// A dedicated fsync per append. If rotation just happened, the
		// record was fsynced as part of sealing the old segment and
		// syncing the fresh file is a cheap no-op.
		if err := l.timedSync(f); err != nil {
			l.poison(err)
			return err
		}
		l.gc.advance(seq)
		return nil
	default: // SyncBatch
		return l.syncTo(seq)
	}
}

// poison records a failed fsync as the log's sticky error so no further
// records are accepted: the kernel may have dropped the unsynced tail
// (fsync error semantics), so anything appended past this point could be
// unreachable to recovery. Callers whose mutation hit the failure treat
// the outcome as unknown — the record may or may not survive a crash,
// exactly like a crash between append and ack.
func (l *Log) poison(err error) {
	l.mu.Lock()
	if l.werr == nil {
		l.werr = err
	}
	l.mu.Unlock()
	l.gc.fail(err)
}

// syncTo blocks until an fsync covers seq, electing the first waiter as
// the leader that fsyncs on behalf of everyone queued behind it.
func (l *Log) syncTo(seq uint64) error {
	g := &l.gc
	g.mu.Lock()
	for g.err == nil && g.syncedSeq < seq {
		if g.syncing {
			g.cond.Wait()
			continue
		}
		g.syncing = true
		g.mu.Unlock()

		// Snapshot the active file and the highest written seq together:
		// records beyond the active file were fsynced at rotation, so one
		// fsync of the active file makes everything <= target durable.
		l.mu.Lock()
		f := l.f
		target := l.nextSeq - 1
		l.mu.Unlock()
		err := l.timedSync(f)

		if err != nil {
			// Poison before re-taking g.mu so every waiter (and every
			// future append) sees the failure.
			l.poison(err)
			g.mu.Lock()
			g.syncing = false
			g.cond.Broadcast()
			break
		}
		g.mu.Lock()
		g.syncing = false
		if target > g.syncedSeq {
			g.syncedSeq = target
		}
		g.cond.Broadcast()
	}
	err := g.err
	g.mu.Unlock()
	return err
}

// advance raises the durable watermark after an out-of-band fsync.
func (g *groupCommit) advance(seq uint64) {
	g.mu.Lock()
	if seq > g.syncedSeq {
		g.syncedSeq = seq
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// fail records a sticky fsync error and wakes every waiter.
func (g *groupCommit) fail(err error) {
	g.mu.Lock()
	if g.err == nil {
		g.err = err
	}
	g.cond.Broadcast()
	g.mu.Unlock()
}

// Sync forces an fsync of the active segment regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	f := l.f
	target := l.nextSeq - 1
	l.mu.Unlock()
	if err := l.timedSync(f); err != nil {
		l.poison(err)
		return err
	}
	l.gc.advance(target)
	return nil
}

// Replay streams every retained record with seq >= from to fn in order.
// It returns ErrTruncated when from predates the oldest retained record
// (the caller is missing state that only a snapshot can supply). The
// payload passed to fn aliases an internal buffer valid only during the
// call. Replay snapshots the segment list up front, so it tolerates (but
// does not observe) appends issued while it runs.
func (l *Log) Replay(from uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if from < l.firstSeq {
		l.mu.Unlock()
		return ErrTruncated
	}
	segs := append([]segment(nil), l.segs...)
	next := l.nextSeq
	l.mu.Unlock()

	var buf []byte
	for k, sg := range segs {
		// Skip segments that end before from.
		if k+1 < len(segs) && segs[k+1].firstSeq <= from {
			continue
		}
		if err := replaySegment(sg, from, next, fn, &buf); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment feeds one segment's records in [from, next) to fn.
func replaySegment(sg segment, from, next uint64, fn func(uint64, []byte) error, buf *[]byte) error {
	f, err := os.Open(sg.path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 256<<10)
	var hdr [segHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("wal: %s: short header", sg.path)
	}
	want := sg.firstSeq
	var rh [recHdrLen]byte
	for want < next {
		if _, err := io.ReadFull(r, rh[:]); err != nil {
			if err == io.EOF {
				return nil // segment exhausted
			}
			return fmt.Errorf("wal: %s: record %d: %w", sg.path, want, err)
		}
		n := binary.BigEndian.Uint32(rh[0:4])
		crc := binary.BigEndian.Uint32(rh[4:8])
		seq := binary.BigEndian.Uint64(rh[8:16])
		if n > MaxPayload || seq != want {
			return fmt.Errorf("wal: %s: record %d: malformed header", sg.path, want)
		}
		if cap(*buf) < int(n) {
			*buf = make([]byte, n)
		}
		payload := (*buf)[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("wal: %s: record %d: %w", sg.path, want, err)
		}
		if crc32.Update(crc32.Update(0, castagnoli, rh[8:16]), castagnoli, payload) != crc {
			return fmt.Errorf("wal: %s: record %d: checksum mismatch", sg.path, want)
		}
		if seq >= from {
			if err := fn(seq, payload); err != nil {
				return err
			}
		}
		want++
	}
	return nil
}

// TruncateBefore drops records with seq < seq, at segment granularity:
// only segments that lie entirely below seq are deleted, except that when
// seq covers the whole log the active segment is first rotated so it too
// can be dropped. Call it after a snapshot lands to bound recovery work.
func (l *Log) TruncateBefore(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if seq > l.nextSeq {
		seq = l.nextSeq
	}
	if seq == l.nextSeq && l.size > segHdrLen {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	changed := false
	for len(l.segs) >= 2 && l.segs[1].firstSeq <= seq {
		if err := os.Remove(l.segs[0].path); err != nil {
			return err
		}
		l.segs = l.segs[1:]
		changed = true
	}
	l.firstSeq = l.segs[0].firstSeq
	if changed {
		return SyncDir(l.dir)
	}
	return nil
}

// rotateLocked seals the active segment (fsync) and starts a fresh one.
// The caller holds l.mu. Sealing never rotates an empty segment.
func (l *Log) rotateLocked() error {
	if l.size <= segHdrLen {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	old := l.f
	if err := l.createSegmentLocked(l.nextSeq); err != nil {
		// l.f still points at the old segment; rotation retries next time.
		return err
	}
	old.Close()
	// Sealing fsynced everything before nextSeq; let group-commit
	// followers waiting on those records go.
	l.gc.advance(l.nextSeq - 1)
	return nil
}

// createSegmentLocked creates and activates a new segment whose first
// record will be firstSeq. The caller holds l.mu (or is Open).
func (l *Log) createSegmentLocked(firstSeq uint64) error {
	path := segPath(l.dir, firstSeq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	var hdr [segHdrLen]byte
	copy(hdr[:8], segMagic)
	binary.BigEndian.PutUint64(hdr[8:], firstSeq)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	// The header must be durable before the file name is: a visible but
	// header-less segment would be dropped by recovery, rewinding the
	// sequence space below seqs that snapshots already pinned.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := SyncDir(l.dir); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	l.f = f
	l.size = segHdrLen
	l.segs = append(l.segs, segment{path: path, firstSeq: firstSeq})
	return nil
}

// Close fsyncs and closes the active segment. Appends issued after Close
// fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	f := l.f
	target := l.nextSeq - 1
	l.mu.Unlock()

	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		l.gc.fail(serr)
		return serr
	}
	l.gc.advance(target)
	return cerr
}

// appendRecord frames one record onto dst. The CRC is computed over the
// framed seq+payload bytes and patched in afterwards, which keeps the
// hot append path free of heap allocations (a stack scratch array passed
// to hash/crc32 would escape).
func appendRecord(dst []byte, seq uint64, payload []byte) []byte {
	base := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, 0, 0, 0, 0) // crc placeholder
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[base+8:], castagnoli)
	binary.BigEndian.PutUint32(dst[base+4:], crc)
	return dst
}

// scanResult is what validating one segment file yields.
type scanResult struct {
	hdrOK     bool
	firstSeq  uint64
	records   int
	validSize int64
	fileSize  int64
}

// scanSegment validates a segment's header and records, reporting the
// prefix that survives. It never fails on corrupt content, only on I/O
// errors.
func scanSegment(path string) (scanResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return scanResult{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return scanResult{}, err
	}
	res := scanResult{fileSize: st.Size()}

	r := bufio.NewReaderSize(f, 256<<10)
	var hdr [segHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return res, nil // shorter than a header: nothing valid
	}
	if string(hdr[:8]) != segMagic {
		return res, nil
	}
	res.hdrOK = true
	res.firstSeq = binary.BigEndian.Uint64(hdr[8:])
	res.validSize = segHdrLen

	want := res.firstSeq
	var rh [recHdrLen]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(r, rh[:]); err != nil {
			return res, nil // clean or torn end
		}
		n := binary.BigEndian.Uint32(rh[0:4])
		crc := binary.BigEndian.Uint32(rh[4:8])
		seq := binary.BigEndian.Uint64(rh[8:16])
		if n > MaxPayload || seq != want {
			return res, nil
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(r, payload); err != nil {
			return res, nil
		}
		if crc32.Update(crc32.Update(0, castagnoli, rh[8:16]), castagnoli, payload) != crc {
			return res, nil
		}
		res.records++
		res.validSize += recHdrLen + int64(n)
		want++
	}
}

// segPath names the segment whose first record is firstSeq.
func segPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%020d.seg", firstSeq))
}

// listSegments finds the directory's segment files sorted by firstSeq.
// Files that merely look like segments but have unparsable names are
// ignored (the directory also holds snapshots and a manifest).
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
		seq, err := strconv.ParseUint(num, 10, 64)
		if err != nil || len(num) != 20 {
			continue
		}
		segs = append(segs, segment{path: filepath.Join(dir, name), firstSeq: seq})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// removeSegments deletes the given segment files.
func removeSegments(dir string, segs []segment) error {
	for _, sg := range segs {
		if err := os.Remove(sg.path); err != nil {
			return err
		}
	}
	if len(segs) > 0 {
		return SyncDir(dir)
	}
	return nil
}

// SyncDir fsyncs a directory so renames, creations and deletions inside
// it are durable. It is shared with internal/snapshot, which manages
// snapshot files in the same data directory and must match its
// durability semantics.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}
