package wal

import (
	"bytes"
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures the raw framed-append path (no fsync):
// encode into the reused scratch buffer plus one write(2). The headline
// claim is the allocation count: 0 allocs/op in steady state.
func BenchmarkWALAppend(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Sync: SyncOff})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{0xCD}, 64)
	b.SetBytes(int64(len(payload) + recHdrLen))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendSyncAlways pays a dedicated fsync per append — the
// per-record durability floor of the underlying disk.
func BenchmarkWALAppendSyncAlways(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Sync: SyncAlways})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{0xCD}, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendGroupCommit drives many goroutines through the batch
// policy: every append still returns durable, but concurrent writers
// share fsyncs, so per-op cost divides by the batch size.
func BenchmarkWALAppendGroupCommit(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Sync: SyncBatch})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{0xCD}, 64)
	b.ReportAllocs()
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Append(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRecovery measures Open over a populated log: segment-chain
// validation plus a full replay of every record.
func BenchmarkRecovery(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		b.Fatal(err)
	}
	const records = 10000
	for i := 0; i < records; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("op-%d-some-payload-bytes", i))); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := Open(dir, Options{Sync: SyncOff})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		if err := l.Replay(1, func(uint64, []byte) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d records, want %d", n, records)
		}
		l.Close()
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkWALAppendBatch measures the multi-record append: 64 records
// framed into one buffer, one write(2), one fsync for the whole batch.
// Per-record durable cost divides by the batch size — the shard workers'
// shared-commit path.
func BenchmarkWALAppendBatch(b *testing.B) {
	l, err := Open(b.TempDir(), Options{Sync: SyncBatch})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	const batch = 64
	payloads := make([][]byte, batch)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{0xCD}, 64)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.AppendBatch(payloads); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*batch/b.Elapsed().Seconds(), "records/s")
}
