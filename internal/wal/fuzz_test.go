package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// validSegmentBytes builds an intact segment holding n small records.
func validSegmentBytes(n int) []byte {
	var buf bytes.Buffer
	var hdr [segHdrLen]byte
	copy(hdr[:8], segMagic)
	hdr[15] = 1 // firstSeq = 1
	buf.Write(hdr[:])
	for i := 0; i < n; i++ {
		buf.Write(appendRecord(nil, uint64(i+1), payloadFor(i)))
	}
	return buf.Bytes()
}

// FuzzWALDecode feeds arbitrary bytes to recovery as a segment file.
// Whatever the input, Open must succeed (recovery never fails on
// content), every surviving record must replay with a matching
// checksum, and the log must keep accepting appends that survive a
// reopen.
func FuzzWALDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	full := validSegmentBytes(8)
	f.Add(full)
	f.Add(full[:len(full)-5])           // torn tail
	f.Add(append(full, 0x00))           // trailing garbage
	f.Add(append(full, full[16:]...))   // duplicated records (seq mismatch)
	mangled := append([]byte(nil), full...)
	mangled[len(mangled)/2] ^= 0x40
	f.Add(mangled) // mid-segment corruption

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-00000000000000000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, Options{Sync: SyncOff})
		if err != nil {
			t.Fatalf("Open on arbitrary bytes: %v", err)
		}
		first, next := l.Bounds()
		if next < first {
			t.Fatalf("bounds inverted: [%d,%d)", first, next)
		}
		count := uint64(0)
		if err := l.Replay(first, func(seq uint64, payload []byte) error {
			if seq != first+count {
				t.Fatalf("replay seq %d, want %d", seq, first+count)
			}
			count++
			return nil
		}); err != nil {
			t.Fatalf("replay of recovered log: %v", err)
		}
		if count != next-first {
			t.Fatalf("replayed %d records, bounds say %d", count, next-first)
		}
		// The recovered log must be appendable, and the append durable.
		seq, err := l.Append([]byte("probe"))
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if seq != next {
			t.Fatalf("append seq %d, want %d", seq, next)
		}
		if err := l.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		l2, err := Open(dir, Options{Sync: SyncOff})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		if _, next2 := l2.Bounds(); next2 != seq+1 {
			t.Fatalf("reopen lost the probe record: next=%d, want %d", next2, seq+1)
		}
	})
}
