package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// collect replays the whole log into a seq->payload copy map.
func collect(t testing.TB, l *Log) map[uint64][]byte {
	t.Helper()
	first, _ := l.Bounds()
	got := map[uint64][]byte{}
	err := l.Replay(first, func(seq uint64, payload []byte) error {
		got[seq] = append([]byte(nil), payload...)
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func payloadFor(i int) []byte {
	return []byte(fmt.Sprintf("record-%d-%s", i, string(bytes.Repeat([]byte{byte('a' + i%26)}, i%40))))
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		seq, err := l.Append(payloadFor(i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	first, next := l.Bounds()
	if first != 1 || next != n+1 {
		t.Fatalf("bounds = [%d,%d), want [1,%d)", first, next, n+1)
	}
	got := collect(t, l)
	if len(got) != n {
		t.Fatalf("replayed %d records, want %d", len(got), n)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(got[uint64(i+1)], payloadFor(i)) {
			t.Fatalf("record %d payload mismatch", i+1)
		}
	}
	// Replay from the middle sees only the suffix.
	count := 0
	if err := l.Replay(51, func(seq uint64, _ []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 50 {
		t.Fatalf("replay from 51 yielded %d records, want 50", count)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("x")); err != ErrClosed {
		t.Fatalf("append after close: %v", err)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{Sync: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	first, next := l.Bounds()
	if first != 1 || next != 11 {
		t.Fatalf("bounds after reopen = [%d,%d)", first, next)
	}
	seq, err := l.Append([]byte("more"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 11 {
		t.Fatalf("append after reopen got seq %d, want 11", seq)
	}
	if got := collect(t, l); len(got) != 11 || string(got[11]) != "more" {
		t.Fatalf("replay after reopen: %d records, rec11=%q", len(got), got[11])
	}
}

func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	for i := 0; i < n; i++ {
		if _, err := l.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	if got := collect(t, l); len(got) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(got), n)
	}

	// Truncate below the middle: whole segments below the cutoff go away.
	if err := l.TruncateBefore(n / 2); err != nil {
		t.Fatal(err)
	}
	first, next := l.Bounds()
	if first <= 1 || first > n/2 || next != n+1 {
		t.Fatalf("bounds after truncate = [%d,%d)", first, next)
	}
	if err := l.Replay(1, func(uint64, []byte) error { return nil }); err != ErrTruncated {
		t.Fatalf("replay before first: %v, want ErrTruncated", err)
	}
	count := 0
	if err := l.Replay(first, func(uint64, []byte) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != int(next-first) {
		t.Fatalf("replayed %d, want %d", count, next-first)
	}

	// Truncating the entire log rotates the active segment away.
	if err := l.TruncateBefore(next); err != nil {
		t.Fatal(err)
	}
	first2, next2 := l.Bounds()
	if first2 != next2 || next2 != next {
		t.Fatalf("bounds after full truncate = [%d,%d), want empty at %d", first2, next2, next)
	}
	seq, err := l.Append([]byte("after-truncate"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != next {
		t.Fatalf("append after full truncate got %d, want %d", seq, next)
	}
	l.Close()

	// Reopen sees only the post-truncation state.
	l, err = Open(dir, Options{Sync: SyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := collect(t, l)
	if len(got) != 1 || string(got[seq]) != "after-truncate" {
		t.Fatalf("after reopen: %d records", len(got))
	}
}

// lastSegment returns the path of the newest segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d)", err, len(segs))
	}
	return segs[len(segs)-1].path
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Chop a few bytes off the tail: the last record is torn.
	path := lastSegment(t, dir)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	first, next := l.Bounds()
	if first != 1 || next != 20 {
		t.Fatalf("bounds after torn tail = [%d,%d), want [1,20)", first, next)
	}
	if got := collect(t, l); len(got) != 19 {
		t.Fatalf("recovered %d records, want 19", len(got))
	}
	// The truncated slot is reused by the next append.
	if seq, err := l.Append([]byte("replacement")); err != nil || seq != 20 {
		t.Fatalf("append after torn recovery: seq=%d err=%v", seq, err)
	}
}

func TestCorruptTailDropped(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	// Flip a byte inside the last record's payload.
	path := lastSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, next := l.Bounds(); next != 10 {
		t.Fatalf("next after corrupt tail = %d, want 10", next)
	}
	if got := collect(t, l); len(got) != 9 {
		t.Fatalf("recovered %d records, want 9", len(got))
	}
}

func TestMidLogCorruptionDropsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := l.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(segs))
	}

	// Corrupt the middle of the FIRST segment: recovery must keep only
	// the records before the damage and delete every later segment.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l, err = Open(dir, Options{Sync: SyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	first, next := l.Bounds()
	if first != 1 {
		t.Fatalf("first = %d", first)
	}
	if next >= 64 {
		t.Fatalf("next = %d, corruption should have cost records", next)
	}
	got := collect(t, l)
	if len(got) != int(next-1) {
		t.Fatalf("recovered %d records for bounds [1,%d)", len(got), next)
	}
	for seq, p := range got {
		if !bytes.Equal(p, payloadFor(int(seq-1))) {
			t.Fatalf("surviving record %d corrupted", seq)
		}
	}
	left, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 {
		t.Fatalf("later segments not deleted: %d remain", len(left))
	}
}

func TestConcurrentGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 50
	var wg sync.WaitGroup
	seqs := make([][]uint64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				seqs[w] = append(seqs[w], seq)
			}
		}(w)
	}
	wg.Wait()

	// Sequence numbers are unique and dense across writers.
	seen := map[uint64]bool{}
	for _, ss := range seqs {
		for _, s := range ss {
			if seen[s] {
				t.Fatalf("seq %d assigned twice", s)
			}
			seen[s] = true
		}
	}
	if len(seen) != writers*per {
		t.Fatalf("%d seqs for %d appends", len(seen), writers*per)
	}
	l.Close()

	l, err = Open(dir, Options{Sync: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := collect(t, l); len(got) != writers*per {
		t.Fatalf("recovered %d records, want %d", len(got), writers*per)
	}
}

func TestAppendTooLarge(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(make([]byte, MaxPayload+1)); err != ErrTooLarge {
		t.Fatalf("oversize append: %v", err)
	}
	// Empty payloads are legal.
	if seq, err := l.Append(nil); err != nil || seq != 1 {
		t.Fatalf("empty append: seq=%d err=%v", seq, err)
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	// Snapshots and manifests share the directory; garbage names too.
	for _, name := range []string{"MANIFEST", "snap-0001-00000000000000000005.snap", "wal-12.seg", "wal-x.seg", "wal-00000000000000000001.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("junk"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if seq, err := l.Append([]byte("v")); err != nil || seq != 1 {
		t.Fatalf("append: seq=%d err=%v", seq, err)
	}
	for _, name := range []string{"MANIFEST", "snap-0001-00000000000000000005.snap"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("foreign file %s touched: %v", name, err)
		}
	}
}

func TestAppendZeroAllocs(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte{0xAB}, 64)
	// Warm the scratch buffer.
	if _, err := l.Append(payload); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Append allocates %.1f per op, want 0", allocs)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"always", SyncAlways}, {"batch", SyncBatch}, {"off", SyncOff}} {
		p, err := ParsePolicy(tc.in)
		if err != nil || p != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, p, err)
		}
		if p.String() != tc.in {
			t.Fatalf("Policy(%q).String() = %q", tc.in, p.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

func TestSyncAlwaysDurable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append(payloadFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: reopening must still see every appended record, because
	// SyncAlways pushed each one to disk before Append returned.
	l2, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := collect(t, l2); len(got) != 5 {
		t.Fatalf("recovered %d records without Close, want 5", len(got))
	}
	l.Close()
}

func TestAppendBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	// Mixed single appends and batches: sequence numbers stay dense and
	// consecutive within each batch.
	if seq, err := l.Append(payloadFor(0)); err != nil || seq != 1 {
		t.Fatalf("append: seq=%d err=%v", seq, err)
	}
	batch := [][]byte{payloadFor(1), payloadFor(2), payloadFor(3)}
	first, err := l.AppendBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if first != 2 {
		t.Fatalf("batch first = %d, want 2", first)
	}
	if first, err := l.AppendBatch(nil); err != nil || first != 0 {
		t.Fatalf("empty batch: first=%d err=%v", first, err)
	}
	if seq, err := l.Append(payloadFor(4)); err != nil || seq != 5 {
		t.Fatalf("append after batch: seq=%d err=%v", seq, err)
	}
	l.Close()

	// Reopen without a clean shutdown marker: every batched record was
	// made durable by the shared fsync before AppendBatch returned.
	l, err = Open(dir, Options{Sync: SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	got := collect(t, l)
	if len(got) != 5 {
		t.Fatalf("recovered %d records, want 5", len(got))
	}
	for i := 0; i < 5; i++ {
		if !bytes.Equal(got[uint64(i+1)], payloadFor(i)) {
			t.Fatalf("record %d payload mismatch", i+1)
		}
	}
}

func TestAppendBatchRotates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var batch [][]byte
	for i := 0; i < 64; i++ {
		batch = append(batch, payloadFor(i))
	}
	// Several batches, each larger than a segment: rotation must keep up
	// and replay must still see every record in order.
	for round := 0; round < 3; round++ {
		if _, err := l.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("batches never rotated: %d segments", len(segs))
	}
	got := collect(t, l)
	if len(got) != 3*64 {
		t.Fatalf("recovered %d records, want %d", len(got), 3*64)
	}
	for seq, p := range got {
		if !bytes.Equal(p, payloadFor(int((seq-1)%64))) {
			t.Fatalf("record %d payload mismatch", seq)
		}
	}
}

func TestAppendBatchTornMidBatch(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AppendBatch([][]byte{payloadFor(0), payloadFor(1), payloadFor(2), payloadFor(3)}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Tear the segment in the middle of the batch: recovery must keep the
	// batch's valid prefix and reuse the torn sequence numbers, exactly
	// like a crash between a batched write and its ack.
	path := lastSegment(t, dir)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-int64(len(payloadFor(3)))-3); err != nil {
		t.Fatal(err)
	}
	l, err = Open(dir, Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	first, next := l.Bounds()
	if first != 1 || next != 4 {
		t.Fatalf("bounds after torn batch = [%d,%d), want [1,4)", first, next)
	}
	got := collect(t, l)
	if len(got) != 3 {
		t.Fatalf("recovered %d records, want 3", len(got))
	}
	if seq, err := l.Append([]byte("reuse")); err != nil || seq != 4 {
		t.Fatalf("append after torn batch: seq=%d err=%v", seq, err)
	}
}

func TestAppendBatchTooLarge(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// An oversize payload anywhere in the batch rejects the whole batch
	// before any sequence number is assigned.
	_, err = l.AppendBatch([][]byte{[]byte("ok"), make([]byte, MaxPayload+1)})
	if err != ErrTooLarge {
		t.Fatalf("oversize batch: %v", err)
	}
	if seq, err := l.Append([]byte("v")); err != nil || seq != 1 {
		t.Fatalf("append after rejected batch: seq=%d err=%v", seq, err)
	}
}

func TestAppendBatchZeroAllocs(t *testing.T) {
	l, err := Open(t.TempDir(), Options{Sync: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payloads := [][]byte{
		bytes.Repeat([]byte{0xAB}, 64),
		bytes.Repeat([]byte{0xCD}, 48),
		bytes.Repeat([]byte{0xEF}, 80),
	}
	// Warm the scratch buffer.
	if _, err := l.AppendBatch(payloads); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := l.AppendBatch(payloads); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendBatch allocates %.1f per op, want 0", allocs)
	}
}

// TestSyncErrHookPoisonsLog proves the injectable fsync-failure hook
// behaves exactly like a real fsync(2) failure: the failing append is
// not acked, the log poisons itself with a sticky error, and clearing
// the hook does not revive it — only a reopen (fresh recovery) does.
func TestSyncErrHookPoisonsLog(t *testing.T) {
	dir := t.TempDir()
	boom := fmt.Errorf("injected fsync failure")
	var fail atomic.Bool
	hook := func() error {
		if fail.Load() {
			return boom
		}
		return nil
	}
	l, err := Open(dir, Options{Sync: SyncAlways, SyncErr: hook})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("durable")); err != nil {
		t.Fatalf("healthy append: %v", err)
	}
	fail.Store(true)
	if _, err := l.Append([]byte("lost")); err != boom {
		t.Fatalf("failing append: err = %v, want injected error", err)
	}
	// Sticky: further appends fail without reaching the hook...
	if _, err := l.Append([]byte("refused")); err == nil {
		t.Fatal("append after poison succeeded")
	}
	// ...and healing the hook does not un-poison the log.
	fail.Store(false)
	if _, err := l.Append([]byte("still-refused")); err == nil {
		t.Fatal("append after hook heal succeeded; poison must be sticky")
	}
	l.Close()

	// Reopen recovers: the acked record must be there. The failed-sync
	// record may or may not survive (unknown outcome, same as a crash
	// between append and ack) — assert nothing about it beyond the log
	// accepting appends again.
	l, err = Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	got := collect(t, l)
	if !bytes.Equal(got[1], []byte("durable")) {
		t.Fatalf("acked record missing after reopen: %q", got[1])
	}
	if _, err := l.Append([]byte("recovered")); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

// TestSyncErrHookGroupCommit drives the hook through the SyncBatch
// group-commit path: the elected leader's fsync fails and every waiter
// sharing that commit gets the error, none are acked.
func TestSyncErrHookGroupCommit(t *testing.T) {
	dir := t.TempDir()
	var fail atomic.Bool
	l, err := Open(dir, Options{Sync: SyncBatch, SyncErr: func() error {
		if fail.Load() {
			return fmt.Errorf("injected group-commit failure")
		}
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append([]byte("ok")); err != nil {
		t.Fatalf("healthy group commit: %v", err)
	}
	fail.Store(true)
	const writers = 4
	errs := make([]error, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = l.Append(payloadFor(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("writer %d was acked through a failed group commit", i)
		}
	}
}
