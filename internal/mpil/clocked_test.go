package mpil

import (
	"math/rand"
	"testing"
	"time"

	"discovery/internal/eventsim"
	"discovery/internal/idspace"
	"discovery/internal/overlay"
	"discovery/internal/perturb"
	"discovery/internal/topology"
)

func newClockedFixture(t *testing.T, seed int64, avail overlay.Availability) (*Clocked, *eventsim.Sim, *overlay.Network) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := topology.RandomRegular(200, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := overlay.New(g, rng, avail)
	e, err := NewEngine(nw, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New(seed)
	return NewClocked(e, sim, ConstantLatency(5*time.Millisecond)), sim, nw
}

func TestClockedInsertLookupAlwaysOn(t *testing.T) {
	c, sim, nw := newClockedFixture(t, 21, nil)
	rng := rand.New(rand.NewSource(22))
	key := idspace.Random(rng)

	var ins InsertStats
	c.InsertAsync(3, key, []byte("v"), func(st InsertStats) { ins = st })
	sim.Run()
	if ins.Replicas == 0 {
		t.Fatal("clocked insert stored nothing")
	}
	if ins.Replicas != len(c.Engine().HoldersOf(key)) {
		t.Errorf("stats replicas %d != store count %d", ins.Replicas, len(c.Engine().HoldersOf(key)))
	}

	var lk LookupStats
	done := false
	c.LookupAsync(nw.N()-1, key, func(st LookupStats) { lk = st; done = true })
	sim.Run()
	if !done {
		t.Fatal("lookup completion callback never fired")
	}
	if !lk.Found {
		t.Error("clocked lookup failed on an always-on overlay")
	}
	if lk.FirstReplyHops < 0 {
		t.Error("found lookup reported negative hops")
	}
}

func TestClockedTakesVirtualTime(t *testing.T) {
	c, sim, _ := newClockedFixture(t, 23, nil)
	key := idspace.FromString("timed-object")
	var doneAt time.Duration
	c.InsertAsync(0, key, nil, func(InsertStats) { doneAt = sim.Now() })
	sim.Run()
	if doneAt < 5*time.Millisecond {
		t.Errorf("multi-hop insert completed at %v, want at least one hop latency", doneAt)
	}
}

func TestClockedLookupUnderTotalOutage(t *testing.T) {
	// Insert while online, then every node except the origin goes dark:
	// lookups must fail but still terminate and report drops.
	dark := false
	av := availFunc(func(node int, _ time.Duration) bool { return !dark || node == 0 })
	c, sim, _ := newClockedFixture(t, 25, av)
	key := idspace.FromString("dark-object")
	c.InsertAsync(0, key, nil, nil)
	sim.Run()
	dark = true
	c.Engine().ResetDuplicateState()

	var lk LookupStats
	c.LookupAsync(0, key, func(st LookupStats) { lk = st })
	sim.Run()
	if lk.Found {
		t.Error("lookup succeeded with all other nodes offline")
	}
	if lk.Dropped == 0 {
		t.Error("no drops recorded despite total outage")
	}
}

func TestClockedMatchesStaticOutcome(t *testing.T) {
	// The clocked runner with constant latency delivers in BFS order, so
	// key outcomes (replica set) must match the synchronous runner given
	// identical RNG state.
	rng1 := rand.New(rand.NewSource(30))
	g, err := topology.RandomRegular(150, 10, rng1)
	if err != nil {
		t.Fatal(err)
	}
	key := idspace.FromString("equivalence")

	mk := func(seed int64) (*Engine, *overlay.Network) {
		rng := rand.New(rand.NewSource(seed))
		nw := overlay.New(g, rng, nil)
		e, err := NewEngine(nw, DefaultConfig(), rng)
		if err != nil {
			t.Fatal(err)
		}
		return e, nw
	}

	eStatic, _ := mk(31)
	stStatic := eStatic.Insert(5, key, nil, 0)

	eClocked, _ := mk(31)
	sim := eventsim.New(1)
	c := NewClocked(eClocked, sim, ConstantLatency(time.Millisecond))
	var stClocked InsertStats
	c.InsertAsync(5, key, nil, func(st InsertStats) { stClocked = st })
	sim.Run()

	if stStatic.Replicas != stClocked.Replicas {
		t.Errorf("replica counts differ: static %d, clocked %d", stStatic.Replicas, stClocked.Replicas)
	}
	hs, hc := eStatic.HoldersOf(key), eClocked.HoldersOf(key)
	if len(hs) != len(hc) {
		t.Fatalf("holder sets differ: %v vs %v", hs, hc)
	}
	for i := range hs {
		if hs[i] != hc[i] {
			t.Fatalf("holder sets differ: %v vs %v", hs, hc)
		}
	}
}

// runFlappingLookups reproduces the paper's Section 6.2 methodology at
// unit-test scale: inserts and lookups issued by one origin node, inserts
// on the static overlay, lookups under a flapping schedule (prob may be 0
// for the static baseline). It returns the success fraction.
func runFlappingLookups(t *testing.T, prob float64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(40))
	const n = 300
	g, err := topology.RandomRegular(n, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := perturb.New(n, 30*time.Second, 30*time.Second, prob, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := overlay.New(g, rng, nil) // static for insertion phase
	e, err := NewEngine(nw, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	const origin = 0
	keys := make([]idspace.ID, 40)
	for i := range keys {
		keys[i] = idspace.Random(rng)
		e.Insert(origin, keys[i], nil, 0)
	}
	// Swap in the flapping availability for the lookup phase.
	nwFlap, err := overlay.NewWithIDs(g, idsOfNetwork(nw), fl)
	if err != nil {
		t.Fatal(err)
	}
	e.ov = nwFlap
	e.ResetDuplicateState()

	sim := eventsim.New(41)
	c := NewClocked(e, sim, ConstantLatency(10*time.Millisecond))
	sim.RunUntil(fl.StartTime())
	found := 0
	for i, key := range keys {
		key := key
		// One lookup per flapping cycle, as in the paper, issued when
		// the origin itself is online.
		at := fl.StartTime() + time.Duration(i)*fl.Cycle()
		var attempt func()
		attempt = func() {
			if !nwFlap.Online(origin, sim.Now()) {
				// Origin perturbed right now; retry once it returns.
				sim.After(time.Second, attempt)
				return
			}
			c.LookupAsync(origin, key, func(st LookupStats) {
				if st.Found {
					found++
				}
			})
		}
		sim.At(at, attempt)
	}
	sim.Run()
	return float64(found) / float64(len(keys))
}

func TestClockedLookupUnderFlapping(t *testing.T) {
	static := runFlappingLookups(t, 0)
	if static < 0.95 {
		t.Fatalf("static baseline success %.2f, want >= 0.95", static)
	}
	flapped := runFlappingLookups(t, 0.5)
	if flapped < 0.55 {
		t.Errorf("success %.2f under 0.5 flapping, want >= 0.55 (paper: MPIL degrades gracefully)", flapped)
	}
}

func TestHeartbeats(t *testing.T) {
	c, sim, _ := newClockedFixture(t, 50, nil)
	key := idspace.FromString("heartbeat-object")
	c.InsertAsync(2, key, nil, nil)
	sim.Run()
	holders := c.Engine().HoldersOf(key)
	if len(holders) == 0 {
		t.Fatal("no replicas to heartbeat")
	}

	beats := map[int]int{}
	timers := c.StartHeartbeats(key, 10*time.Second, func(holder int, delivered bool) {
		if !delivered {
			t.Errorf("heartbeat from %d dropped on an always-on overlay", holder)
		}
		beats[holder]++
	})
	sim.RunFor(35 * time.Second)
	for _, h := range holders {
		if beats[h] != 3 {
			t.Errorf("holder %d sent %d heartbeats in 35s at 10s period, want 3", h, beats[h])
		}
	}
	for _, tm := range timers {
		tm.Cancel()
	}
	before := len(beats)
	_ = before
	count := beats[holders[0]]
	sim.RunFor(30 * time.Second)
	if beats[holders[0]] != count {
		t.Error("heartbeats continued after cancellation")
	}
}

func TestHeartbeatStopsAfterDelete(t *testing.T) {
	c, sim, _ := newClockedFixture(t, 51, nil)
	key := idspace.FromString("deleted-object")
	c.InsertAsync(4, key, nil, nil)
	sim.Run()
	var fired int
	c.StartHeartbeats(key, 5*time.Second, func(int, bool) { fired++ })
	sim.RunFor(6 * time.Second)
	if fired == 0 {
		t.Fatal("no heartbeat before deletion")
	}
	c.Engine().Delete(4, key, sim.Now())
	base := fired
	sim.RunFor(20 * time.Second)
	if fired != base {
		t.Errorf("heartbeats fired %d times after deletion, want 0", fired-base)
	}
}

func TestDeletionReconciliationViaHeartbeats(t *testing.T) {
	// A holder is offline when the owner deletes; its stale replica must
	// be reconciled once its heartbeats resume (Section 4.4 end-to-end).
	var darkHolder = -1
	av := availFunc(func(node int, at time.Duration) bool {
		if node != darkHolder {
			return true
		}
		// Offline between t=30s and t=90s.
		return at < 30*time.Second || at > 90*time.Second
	})
	rng := rand.New(rand.NewSource(60))
	g, err := topology.RandomRegular(200, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := overlay.New(g, rng, av)
	e, err := NewEngine(nw, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	sim := eventsim.New(60)
	c := NewClocked(e, sim, ConstantLatency(5*time.Millisecond))

	key := idspace.FromString("reconciled-object")
	const owner = 2
	c.InsertAsync(owner, key, nil, nil)
	sim.Run()
	holders := c.Engine().HoldersOf(key)
	if len(holders) < 2 {
		t.Skip("need at least two replicas for this scenario")
	}
	darkHolder = holders[0]
	if darkHolder == owner {
		darkHolder = holders[1]
	}
	c.StartHeartbeats(key, 10*time.Second, nil)

	// Owner deletes at t=60s, while darkHolder is offline.
	sim.RunUntil(60 * time.Second)
	removed := e.Delete(owner, key, sim.Now())
	c.MarkDeleted(owner, key)
	if removed == 0 {
		t.Fatal("online replicas not deleted")
	}
	if _, stale := e.Stored(darkHolder, key); !stale {
		t.Fatal("scenario broken: dark holder lost its replica while offline")
	}

	// After the holder returns (t>90s) and heartbeats resume, the stale
	// replica must disappear.
	sim.RunUntil(3 * time.Minute)
	if _, stillThere := e.Stored(darkHolder, key); stillThere {
		t.Error("stale replica never reconciled after the holder returned")
	}
}

func TestTransportRetransmissionRecoversBriefOutage(t *testing.T) {
	// A next hop offline for 4s: fire-and-forget loses the message, a
	// 3-attempt transport with 3s spacing recovers it.
	outageEnd := 4 * time.Second
	var target = -1
	av := availFunc(func(node int, at time.Duration) bool {
		return node != target || at >= outageEnd
	})
	build := func(tr Transport) (LookupStats, *Engine) {
		rng := rand.New(rand.NewSource(61))
		g, err := topology.RandomRegular(150, 10, rng)
		if err != nil {
			t.Fatal(err)
		}
		nw := overlay.New(g, rng, av)
		e, err := NewEngine(nw, DefaultConfig(), rng)
		if err != nil {
			t.Fatal(err)
		}
		sim := eventsim.New(61)
		c := NewClocked(e, sim, ConstantLatency(time.Millisecond))
		key := idspace.FromString("transport-object")
		target = -1
		c.InsertAsync(0, key, nil, nil)
		sim.Run()
		e.ResetDuplicateState()
		// Knock out the origin's best next hop for the first 4s.
		m := e.newMessage(KindLookup, 0, key, nil)
		r := e.step(0, m)
		if len(r.forwards) == 0 {
			t.Skip("origin is itself the destination; reseed")
		}
		target = r.forwards[0].to
		e.ResetDuplicateState()

		c.SetTransport(tr)
		var st LookupStats
		c.LookupAsync(0, key, func(s LookupStats) { st = s })
		sim.Run()
		return st, e
	}
	single, _ := build(FireAndForget())
	retry, _ := build(Transport{Attempts: 3, Spacing: 3 * time.Second})
	if single.Dropped == 0 {
		t.Error("fire-and-forget lost nothing despite the outage")
	}
	if !retry.Found {
		t.Error("retransmitting transport failed to recover the lookup")
	}
}

func idsOfNetwork(nw *overlay.Network) []idspace.ID {
	ids := make([]idspace.ID, nw.N())
	for i := range ids {
		ids[i] = nw.ID(i)
	}
	return ids
}
