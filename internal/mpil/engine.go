package mpil

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"discovery/internal/idspace"
)

// Engine executes MPIL over an overlay. It owns every node's object store
// and duplicate-tracking state, which is the standard monolithic-simulator
// arrangement: the algorithm logic stays a pure per-node step function,
// and runners (synchronous or event-driven) decide when each step happens.
//
// Engine is not safe for concurrent use; clone one per goroutine.
type Engine struct {
	cfg Config
	ov  Overlay
	rng *rand.Rand

	stores  []map[idspace.ID]Replica
	seen    []map[uint64]bool // per node: message UIDs received
	nextUID uint64

	// cands and fwds are step()'s scratch buffers, reused across calls
	// so the routing hot loop allocates nothing in steady state.
	cands []int
	fwds  []forward

	// iterKeys is ForEachReplicaFrom's per-node sort scratch.
	iterKeys []idspace.ID

	// Score memo. score(key, ID(i)) is a pure function of the key and
	// the node's immutable overlay ID, but the routing loop re-scores
	// the same nodes at every hop of every flow — on dense overlays the
	// single hottest computation in the daemon. The memo holds one value
	// per node, validated by an era stamp: a step whose key differs from
	// the previous one bumps scoreEra, invalidating everything at once
	// without clearing. Routing outcomes are bit-identical with and
	// without the memo (pinned by the seed-equivalence tests).
	scoreVals []uint64
	scoreGen  []uint64
	scoreEra  uint64
	scoreKey  idspace.ID
}

// NewEngine validates cfg and builds an engine over ov. The rng drives tie
// sampling when a node must pick a subset of equally-good next hops.
func NewEngine(ov Overlay, cfg Config, rng *rand.Rand) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ov.N() == 0 {
		return nil, fmt.Errorf("mpil: overlay has no nodes")
	}
	if cfg.MaxHops == 0 {
		cfg.MaxHops = ov.N()
	}
	n := ov.N()
	e := &Engine{
		cfg:       cfg,
		ov:        ov,
		rng:       rng,
		stores:    make([]map[idspace.ID]Replica, n),
		seen:      make([]map[uint64]bool, n),
		scoreVals: make([]uint64, n),
		scoreGen:  make([]uint64, n),
		scoreEra:  1, // gen 0 means "never computed"
	}
	for i := range e.stores {
		e.stores[i] = make(map[idspace.ID]Replica)
		e.seen[i] = make(map[uint64]bool)
	}
	return e, nil
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Overlay returns the overlay the engine routes over.
func (e *Engine) Overlay() Overlay { return e.ov }

// HoldersOf returns the nodes currently storing key, sorted ascending.
func (e *Engine) HoldersOf(key idspace.ID) []int {
	var out []int
	for i, st := range e.stores {
		if _, ok := st[key]; ok {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// Stored returns the replica of key at node i, if present.
func (e *Engine) Stored(i int, key idspace.ID) (Replica, bool) {
	r, ok := e.stores[i][key]
	return r, ok
}

// ForEachReplica visits every stored replica, in ascending node order
// with unspecified key order within a node. Snapshot export uses it; the
// callback must not mutate engine state.
func (e *Engine) ForEachReplica(fn func(node int, r Replica)) {
	for i, st := range e.stores {
		for _, r := range st {
			fn(i, r)
		}
	}
}

// ForEachReplicaFrom visits stored replicas in ascending (node, key)
// order, starting at the first replica with node > fromNode, or
// node == fromNode and key >= fromKey. fn returning false stops the walk
// at that replica; ForEachReplicaFrom reports whether it instead reached
// the end of the store. Unlike ForEachReplica the visit order is total
// and stable, which is what lets a caller resume a stopped walk at the
// rejected replica: per visited node the keys are collected into a
// reused scratch slice and sorted, and nodes past a stop are never
// touched. The callback must not mutate engine state.
func (e *Engine) ForEachReplicaFrom(fromNode int, fromKey idspace.ID, fn func(node int, r Replica) bool) bool {
	if fromNode < 0 {
		fromNode = 0
	}
	for i := fromNode; i < len(e.stores); i++ {
		st := e.stores[i]
		if len(st) == 0 {
			continue
		}
		e.iterKeys = e.iterKeys[:0]
		for k := range st {
			if i == fromNode && k.Cmp(fromKey) < 0 {
				continue
			}
			e.iterKeys = append(e.iterKeys, k)
		}
		sort.Slice(e.iterKeys, func(a, b int) bool { return e.iterKeys[a].Cmp(e.iterKeys[b]) < 0 })
		for _, k := range e.iterKeys {
			if !fn(i, st[k]) {
				return false
			}
		}
	}
	return true
}

// PutReplica places a replica directly into node i's store, bypassing
// routing. Snapshot restore uses it to rebuild a shard's state; normal
// insertion never does.
func (e *Engine) PutReplica(i int, r Replica) error {
	if i < 0 || i >= len(e.stores) {
		return fmt.Errorf("mpil: PutReplica node %d out of range (%d nodes)", i, len(e.stores))
	}
	e.stores[i][r.Key] = r
	return nil
}

// ReplicaCount returns the total number of stored replicas.
func (e *Engine) ReplicaCount() int {
	n := 0
	for _, st := range e.stores {
		n += len(st)
	}
	return n
}

// RemoveReplica deletes key's replica at node i, reporting whether one was
// present. The deletion protocol of Section 4.4 calls this when a replica
// holder receives an explicit delete from the object's owner.
func (e *Engine) RemoveReplica(i int, key idspace.ID) bool {
	if _, ok := e.stores[i][key]; !ok {
		return false
	}
	delete(e.stores[i], key)
	return true
}

// ResetDuplicateState clears every node's seen-UID table. The perturbation
// experiments call it between phases so that duplicate suppression state
// does not leak from insertions into lookups. Tables are cleared in place,
// keeping their buckets warm for the next phase.
func (e *Engine) ResetDuplicateState() {
	for i := range e.seen {
		clear(e.seen[i])
	}
}

// forward is one outgoing copy produced by a step.
type forward struct {
	to  int
	msg *Message
}

// stepResult is everything a single node's processing of one message
// produced. Runners translate it into deliveries.
type stepResult struct {
	// discarded is true when duplicate suppression dropped the message
	// before processing.
	discarded bool
	// duplicate is true when the node had seen the UID before
	// (counted whether or not DS then discards it).
	duplicate bool
	// stored is true when an insertion placed a replica here.
	stored bool
	// hit is true when a lookup found the key here.
	hit bool
	// forwards lists the outgoing copies. It aliases an engine-owned
	// scratch buffer and is valid only until the next step call; runners
	// must consume (or copy) it before stepping again.
	forwards []forward
	// branches is max(m-1, 0): the number of additional flows created.
	branches int
}

// step runs the MPIL routing algorithm (paper Figure 5) at node n for
// message m. It mutates only engine-owned per-node state (stores, seen
// tables) and the message's ReplicasLeft before cloning children.
func (e *Engine) step(n int, m *Message) stepResult {
	var res stepResult

	if e.seen[n][m.UID] {
		res.duplicate = true
		if e.cfg.DuplicateSuppression {
			res.discarded = true
			return res
		}
	}
	e.seen[n][m.UID] = true

	key := m.Key
	if e.scoreKey != key {
		e.scoreEra++
		e.scoreKey = key
	}

	// Candidate list: argmax of the routing metric over neighbors not on
	// the route (and never back to self — a simple graph has no
	// self-edges, but an arbitrary Overlay might include one).
	// In parallel, find the best metric over ALL neighbors: the local
	// maximum test of Figure 5 compares against the full neighbor list.
	hasBestCand := false
	var bestCand uint64
	cands := e.cands[:0]
	hasBestAll := false
	var bestAll uint64
	for _, nb := range e.ov.Neighbors(n) {
		if nb == n {
			continue
		}
		c := e.scoreMemo(key, nb)
		if !hasBestAll || c > bestAll {
			hasBestAll = true
			bestAll = c
		}
		if m.onRoute(nb) {
			continue
		}
		switch {
		case !hasBestCand || c > bestCand:
			hasBestCand = true
			bestCand = c
			cands = cands[:0]
			cands = append(cands, nb)
		case c == bestCand:
			cands = append(cands, nb)
		}
	}
	e.cands = cands[:0] // retain any growth for the next step

	selfVal := e.scoreMemo(key, n)
	isDest := !hasBestAll || selfVal >= bestAll // no neighbor strictly better: local maximum

	switch m.Kind {
	case KindInsert:
		if isDest {
			if _, exists := e.stores[n][key]; !exists {
				e.stores[n][key] = Replica{Key: key, Value: m.Value, Origin: m.Origin}
				res.stored = true
			}
			m.ReplicasLeft--
			if m.ReplicasLeft <= 0 {
				return res
			}
		}
	case KindLookup:
		// Every recipient checks its store (Section 4.4); a hit stops
		// this flow and replies directly to the origin.
		if _, ok := e.stores[n][key]; ok {
			res.hit = true
			return res
		}
		if isDest {
			m.ReplicasLeft--
			if m.ReplicasLeft <= 0 {
				return res
			}
		}
	default:
		panic(fmt.Sprintf("mpil: unknown message kind %v", m.Kind))
	}

	if len(cands) == 0 || len(m.Route) >= e.cfg.MaxHops {
		return res
	}

	// Paths-limiting algorithm (Section 4.3). given_flows is 0 for the
	// originator's initial send and 1 for every relay.
	given := 1
	if len(m.Route) == 0 {
		given = 0
	}
	budget := m.MaxFlows + given
	if budget <= 0 {
		return res
	}
	mCount := len(cands)
	if mCount > budget {
		mCount = budget
	}

	chosen := cands
	if mCount < len(cands) {
		// Sample mCount candidates uniformly (the paper leaves the
		// choice among equals unspecified).
		e.rng.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
		chosen = cands[:mCount]
	}

	// Distribute the remaining quota: total = max_flows - (m - given),
	// base share total/m, residue spread one-by-one round-robin (or
	// discarded under the QuotaSplitEqual ablation).
	total := m.MaxFlows - (mCount - given)
	base := total / mCount
	residue := total % mCount
	if e.cfg.QuotaSplit == QuotaSplitEqual {
		residue = 0
	}
	fwds := e.fwds[:0]
	for i, to := range chosen {
		share := base
		if i < residue {
			share++
		}
		fwds = append(fwds, forward{to: to, msg: m.child(n, share)})
	}
	e.fwds = fwds
	res.forwards = fwds
	res.branches = mCount - 1
	return res
}

// score evaluates the configured routing metric as an integer where
// higher means closer to the key.
// scoreMemo returns score(key, ID(i)) through the per-era memo. The
// caller (step) has already synchronized scoreEra with key.
func (e *Engine) scoreMemo(key idspace.ID, i int) uint64 {
	if e.scoreGen[i] == e.scoreEra {
		return e.scoreVals[i]
	}
	c := e.score(key, e.ov.ID(i))
	e.scoreGen[i] = e.scoreEra
	e.scoreVals[i] = c
	return c
}

func (e *Engine) score(key, id idspace.ID) uint64 {
	switch e.cfg.Metric {
	case MetricCommonDigits:
		return uint64(e.cfg.Space.CommonDigits(key, id))
	case MetricSharedPrefix:
		return uint64(e.cfg.Space.SharedPrefix(key, id))
	case MetricXOR:
		// Inverted top 64 bits of the XOR distance: higher = closer.
		// Ties require the top 64 bits of two distances to coincide,
		// which for random IDs essentially never happens — the point
		// of this ablation arm.
		x := key.XOR(id)
		return ^binary.BigEndian.Uint64(x[:8])
	default:
		panic(fmt.Sprintf("mpil: unknown metric %v", e.cfg.Metric))
	}
}

// newMessage mints a request message with a fresh UID.
func (e *Engine) newMessage(kind Kind, origin int, key idspace.ID, value []byte) *Message {
	e.nextUID++
	return &Message{
		UID:          e.nextUID,
		Kind:         kind,
		Key:          key,
		Value:        value,
		Origin:       origin,
		MaxFlows:     e.cfg.MaxFlows,
		ReplicasLeft: e.cfg.PerFlowReplicas,
	}
}

// delivery is a queue entry for the synchronous runner.
type delivery struct {
	to  int
	msg *Message
}

// Insert performs a static (instantaneous) insertion of key from origin,
// as in the paper's Section 6.1 experiments. Availability is evaluated at
// virtual time at; offline nodes silently lose messages.
func (e *Engine) Insert(origin int, key idspace.ID, value []byte, at time.Duration) InsertStats {
	var st InsertStats
	st.Flows = 1
	msg := e.newMessage(KindInsert, origin, key, value)
	queue := []delivery{{to: origin, msg: msg}}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		if !e.ov.Online(d.to, at) {
			st.Dropped++
			continue
		}
		r := e.step(d.to, d.msg)
		if r.duplicate {
			st.Duplicates++
		}
		if r.discarded {
			continue
		}
		if r.stored {
			st.Replicas++
		}
		st.Flows += r.branches
		st.Messages += len(r.forwards)
		for _, f := range r.forwards {
			queue = append(queue, delivery{to: f.to, msg: f.msg})
		}
	}
	return st
}

// Lookup performs a static lookup of key from origin. Messages propagate
// in BFS order, so FirstReplyHops is the minimum forward-path length over
// all replica holders reached.
func (e *Engine) Lookup(origin int, key idspace.ID, at time.Duration) LookupStats {
	st := LookupStats{FirstReplyHops: -1, Flows: 1}
	msg := e.newMessage(KindLookup, origin, key, nil)
	queue := []delivery{{to: origin, msg: msg}}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		if !e.ov.Online(d.to, at) {
			st.Dropped++
			continue
		}
		r := e.step(d.to, d.msg)
		if r.duplicate {
			st.Duplicates++
		}
		if r.discarded {
			continue
		}
		if r.hit {
			st.Replies++
			if !st.Found {
				st.Found = true
				st.FirstReplyHops = len(d.msg.Route)
			}
			continue
		}
		st.Flows += r.branches
		st.Messages += len(r.forwards)
		for _, f := range r.forwards {
			queue = append(queue, delivery{to: f.to, msg: f.msg})
		}
	}
	return st
}

// LookupWith runs a single lookup under an override configuration while
// keeping the engine's stores. The paper's Tables 1 and 2 are exactly this
// shape: one heavy insertion pass (max_flows 30, 5 per-flow replicas)
// followed by lookup sweeps over a (max_flows, per-flow replicas) grid.
func (e *Engine) LookupWith(cfg Config, origin int, key idspace.ID, at time.Duration) (LookupStats, error) {
	if err := cfg.Validate(); err != nil {
		return LookupStats{}, err
	}
	if cfg.MaxHops == 0 {
		cfg.MaxHops = e.ov.N()
	}
	old := e.cfg
	e.cfg = cfg
	defer func() { e.cfg = old }()
	return e.Lookup(origin, key, at), nil
}

// Delete implements the explicit deletion of Section 4.4: the owner sends
// a delete directly to every current replica holder (which in a deployed
// system it learns from replica heartbeats; the engine, owning all stores,
// plays the heartbeat ledger here). It returns the number of replicas
// removed. Offline holders keep their replica — exactly the stale-replica
// behavior heartbeats exist to reconcile later.
func (e *Engine) Delete(origin int, key idspace.ID, at time.Duration) int {
	removed := 0
	for _, holder := range e.HoldersOf(key) {
		r := e.stores[holder][key]
		if r.Origin != origin {
			continue
		}
		if !e.ov.Online(holder, at) {
			continue
		}
		if e.RemoveReplica(holder, key) {
			removed++
		}
	}
	return removed
}
