package mpil

import (
	"time"

	"discovery/internal/eventsim"
	"discovery/internal/idspace"
)

// LatencyFunc returns the one-way message delay between two nodes. The
// perturbation experiments plug in the transit-stub underlay; tests often
// use a constant.
type LatencyFunc func(from, to int) time.Duration

// ConstantLatency returns a LatencyFunc with a fixed delay for every pair.
func ConstantLatency(d time.Duration) LatencyFunc {
	return func(int, int) time.Duration { return d }
}

// Transport models the hop-level delivery discipline. MPIL itself is
// transport-agnostic; when it runs inside MSPastry (paper Section 6.2) it
// inherits MSPastry's per-hop acknowledgment and retransmission, which is
// message-layer machinery, not overlay maintenance. Attempts is the total
// number of tries per hop (1 = fire-and-forget UDP); Spacing is the gap
// between tries (MSPastry's probe timeout).
type Transport struct {
	Attempts int
	Spacing  time.Duration
}

// FireAndForget is the single-attempt transport.
func FireAndForget() Transport { return Transport{Attempts: 1} }

// Clocked drives an Engine over a discrete-event simulator so that message
// delivery takes real (virtual) time and meets time-varying availability —
// the regime of the paper's Section 6.2 perturbation experiments. The
// overlay's Online method is consulted at each delivery instant; a message
// whose recipient is offline on every transport attempt is lost.
type Clocked struct {
	e          *Engine
	sim        *eventsim.Sim
	lat        LatencyFunc
	tr         Transport
	tombstones map[tombstoneKey]bool
}

// NewClocked wraps an engine for event-driven execution with a
// fire-and-forget transport.
func NewClocked(e *Engine, sim *eventsim.Sim, lat LatencyFunc) *Clocked {
	if lat == nil {
		lat = ConstantLatency(0)
	}
	return &Clocked{e: e, sim: sim, lat: lat, tr: FireAndForget()}
}

// Engine returns the wrapped engine (for store inspection).
func (c *Clocked) Engine() *Engine { return c.e }

// SetTransport replaces the hop-level delivery discipline.
func (c *Clocked) SetTransport(tr Transport) {
	if tr.Attempts < 1 {
		tr.Attempts = 1
	}
	c.tr = tr
}

// transmit delivers one hop with the configured transport. Every attempt
// costs one message (counted via onSend). Exactly one of deliver/onLost
// runs, after which finish is invoked by the caller's bookkeeping inside
// those callbacks.
func (c *Clocked) transmit(from, to int, onSend func(), deliver, onLost func()) {
	var try func(k int)
	try = func(k int) {
		onSend()
		c.sim.After(c.lat(from, to), func() {
			if c.e.ov.Online(to, c.sim.Now()) {
				deliver()
				return
			}
			if k+1 < c.tr.Attempts {
				c.sim.After(c.tr.Spacing, func() { try(k + 1) })
				return
			}
			onLost()
		})
	}
	try(0)
}

// InsertAsync starts an insertion at the current virtual time. done (may
// be nil) fires once no copies remain in flight.
func (c *Clocked) InsertAsync(origin int, key idspace.ID, value []byte, done func(InsertStats)) {
	st := &InsertStats{Flows: 1}
	msg := c.e.newMessage(KindInsert, origin, key, value)
	inFlight := 1
	finish := func() {
		inFlight--
		if inFlight == 0 && done != nil {
			done(*st)
		}
	}
	var process func(at int, m *Message)
	process = func(at int, m *Message) {
		defer finish()
		r := c.e.step(at, m)
		if r.duplicate {
			st.Duplicates++
		}
		if r.discarded {
			return
		}
		if r.stored {
			st.Replicas++
		}
		st.Flows += r.branches
		for _, f := range r.forwards {
			f := f
			inFlight++
			c.transmit(at, f.to, func() { st.Messages++ },
				func() { process(f.to, f.msg) },
				func() { st.Dropped++; finish() })
		}
	}
	// The originator processes its own message if it is online.
	c.sim.After(0, func() {
		if !c.e.ov.Online(origin, c.sim.Now()) {
			st.Dropped++
			finish()
			return
		}
		process(origin, msg)
	})
}

// LookupAsync starts a lookup at the current virtual time. Replies travel
// directly back to the origin over the same transport and only count if
// the origin is online when they arrive. done fires once nothing remains
// in flight.
func (c *Clocked) LookupAsync(origin int, key idspace.ID, done func(LookupStats)) {
	st := &LookupStats{FirstReplyHops: -1, Flows: 1}
	msg := c.e.newMessage(KindLookup, origin, key, nil)
	inFlight := 1
	finish := func() {
		inFlight--
		if inFlight == 0 && done != nil {
			done(*st)
		}
	}
	var process func(at int, m *Message)
	process = func(at int, m *Message) {
		defer finish()
		r := c.e.step(at, m)
		if r.duplicate {
			st.Duplicates++
		}
		if r.discarded {
			return
		}
		if r.hit {
			hops := len(m.Route)
			inFlight++
			c.transmit(at, origin, func() { st.Messages++ },
				func() {
					defer finish()
					st.Replies++
					if !st.Found || hops < st.FirstReplyHops {
						st.Found = true
						st.FirstReplyHops = hops
					}
				},
				func() { st.Dropped++; finish() })
			return
		}
		st.Flows += r.branches
		for _, f := range r.forwards {
			f := f
			inFlight++
			c.transmit(at, f.to, func() { st.Messages++ },
				func() { process(f.to, f.msg) },
				func() { st.Dropped++; finish() })
		}
	}
	c.sim.After(0, func() {
		if !c.e.ov.Online(origin, c.sim.Now()) {
			st.Dropped++
			finish()
			return
		}
		process(origin, msg)
	})
}

// tombstones records owner-side deletions so that stale replicas at
// holders that were offline during Delete are reconciled when their
// heartbeats resume (Section 4.4's deletion protocol run to completion).
type tombstoneKey struct {
	owner int
	key   idspace.ID
}

// MarkDeleted registers an owner's intent that key be gone. Subsequent
// heartbeats from any holder of (owner, key) are answered with an
// explicit delete, removing the stale replica. Combine with
// Engine.Delete, which removes the replicas reachable right now.
func (c *Clocked) MarkDeleted(owner int, key idspace.ID) {
	if c.tombstones == nil {
		c.tombstones = make(map[tombstoneKey]bool)
	}
	c.tombstones[tombstoneKey{owner, key}] = true
}

// StartHeartbeats implements the liveness half of Section 4.4's deletion
// protocol: every holder of key sends a periodic heartbeat directly to the
// object's owner. If the owner has marked the object deleted (see
// MarkDeleted), it answers with an explicit delete and the holder drops
// its replica — this is how replicas stranded on perturbed nodes get
// reconciled. onBeat (may be nil) receives (holder, delivered) per
// attempt, where delivered is false when either endpoint was offline. The
// returned timers stop the loops.
func (c *Clocked) StartHeartbeats(key idspace.ID, period time.Duration, onBeat func(holder int, delivered bool)) []eventsim.Timer {
	var timers []eventsim.Timer
	for _, holder := range c.e.HoldersOf(key) {
		holder := holder
		rep, _ := c.e.Stored(holder, key)
		owner := rep.Origin
		t := c.sim.Every(period, period, func() {
			if _, still := c.e.Stored(holder, key); !still {
				return // replica deleted; heartbeat loop is vestigial
			}
			now := c.sim.Now()
			delivered := c.e.ov.Online(holder, now) && c.e.ov.Online(owner, now+c.lat(holder, owner))
			if onBeat != nil {
				onBeat(holder, delivered)
			}
			if delivered && c.tombstones[tombstoneKey{owner, key}] {
				// Owner answers the heartbeat with an explicit delete;
				// it lands one RTT later if the holder is still up.
				c.sim.After(2*c.lat(holder, owner), func() {
					if c.e.ov.Online(holder, c.sim.Now()) {
						c.e.RemoveReplica(holder, key)
					}
				})
			}
		})
		timers = append(timers, t)
	}
	return timers
}
