package mpil

import (
	"math/rand"
	"testing"
	"testing/quick"

	"discovery/internal/idspace"
	"discovery/internal/overlay"
	"discovery/internal/topology"
)

// TestPropertyHoldersAreLocalMaxima verifies the storage invariant from
// Section 4.4 on randomized overlays: every replica holder's metric value
// is at least that of each of its neighbors (tie-aware local maximum).
func TestPropertyHoldersAreLocalMaxima(t *testing.T) {
	space := idspace.MustSpace(4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.RandomRegular(120, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		nw := overlay.New(g, rng, nil)
		cfg := Config{Space: space, MaxFlows: 8, PerFlowReplicas: 3, DuplicateSuppression: true}
		e, err := NewEngine(nw, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		key := idspace.Random(rng)
		e.Insert(rng.Intn(nw.N()), key, nil, 0)
		for _, h := range e.HoldersOf(key) {
			self := space.CommonDigits(key, nw.ID(h))
			for _, v := range nw.Neighbors(h) {
				if space.CommonDigits(key, nw.ID(v)) > self {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyQuotaConservation: the sum of child quotas plus flows spent
// never exceeds the parent's quota, for arbitrary quota and candidate
// counts — the arithmetic of Section 4.3, step 5.
func TestPropertyQuotaConservation(t *testing.T) {
	f := func(maxFlows uint8, nCands uint8, origin bool) bool {
		mf := int(maxFlows%64) + 1
		cands := int(nCands%32) + 1
		given := 1
		if origin {
			given = 0
		}
		budget := mf + given
		m := cands
		if m > budget {
			m = budget
		}
		total := mf - (m - given)
		if total < 0 {
			return false // budget rule must prevent this
		}
		base, residue := total/m, total%m
		sum := 0
		for i := 0; i < m; i++ {
			share := base
			if i < residue {
				share++
			}
			if share < 0 {
				return false
			}
			sum += share
		}
		// Quota conservation: children's quota + quota consumed by this
		// branch equals the parent's quota (+given).
		return sum == total && total+(m-given) == mf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTermination: inserts and lookups terminate on arbitrary
// connected graphs (including pathological rings and stars) and respect
// the replica bound.
func TestPropertyTermination(t *testing.T) {
	shapes := []func(n int, rng *rand.Rand) (*topology.Graph, error){
		func(n int, rng *rand.Rand) (*topology.Graph, error) { return topology.Ring(n), nil },
		func(n int, rng *rand.Rand) (*topology.Graph, error) { return topology.Star(n), nil },
		func(n int, rng *rand.Rand) (*topology.Graph, error) { return topology.Grid(n/8+1, 8), nil },
		func(n int, rng *rand.Rand) (*topology.Graph, error) { return topology.PowerLaw(n, 2.2, 2, rng) },
		func(n int, rng *rand.Rand) (*topology.Graph, error) { return topology.ErdosRenyi(n, 0.05, rng) },
	}
	for si, shape := range shapes {
		rng := rand.New(rand.NewSource(int64(si + 100)))
		g, err := shape(150, rng)
		if err != nil {
			t.Fatal(err)
		}
		g.Connect(rng)
		nw := overlay.New(g, rng, nil)
		for _, ds := range []bool{true, false} {
			cfg := Config{Space: idspace.MustSpace(2), MaxFlows: 20, PerFlowReplicas: 4, DuplicateSuppression: ds}
			e, err := NewEngine(nw, cfg, rng)
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 10; trial++ {
				key := idspace.Random(rng)
				st := e.Insert(rng.Intn(nw.N()), key, nil, 0)
				if st.Replicas > cfg.MaxFlows*cfg.PerFlowReplicas {
					t.Fatalf("shape %d ds=%v: replica bound violated: %d", si, ds, st.Replicas)
				}
				ls := e.Lookup(rng.Intn(nw.N()), key, 0)
				if ls.Flows > cfg.MaxFlows {
					t.Fatalf("shape %d ds=%v: flow bound violated: %d", si, ds, ls.Flows)
				}
			}
		}
	}
}

// TestPropertyLookupNeverFabricates: lookups for never-inserted keys fail
// across arbitrary overlays and configurations.
func TestPropertyLookupNeverFabricates(t *testing.T) {
	f := func(seed int64, mf8, r8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.RandomRegular(60, 6, rng)
		if err != nil {
			t.Fatal(err)
		}
		nw := overlay.New(g, rng, nil)
		cfg := Config{
			Space:           idspace.MustSpace(4),
			MaxFlows:        int(mf8%20) + 1,
			PerFlowReplicas: int(r8%5) + 1,
		}
		e, err := NewEngine(nw, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		return !e.Lookup(rng.Intn(nw.N()), idspace.Random(rng), 0).Found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDeterministicEngine: identical seeds yield identical replica
// placements and stats.
func TestPropertyDeterministicEngine(t *testing.T) {
	run := func(seed int64) ([]int, InsertStats) {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.PowerLaw(200, 2.2, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		nw := overlay.New(g, rng, nil)
		e, err := NewEngine(nw, DefaultConfig(), rng)
		if err != nil {
			t.Fatal(err)
		}
		key := idspace.FromString("determinism")
		st := e.Insert(3, key, nil, 0)
		return e.HoldersOf(key), st
	}
	h1, s1 := run(77)
	h2, s2 := run(77)
	if s1 != s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	if len(h1) != len(h2) {
		t.Fatal("holder sets differ")
	}
	for i := range h1 {
		if h1[i] != h2[i] {
			t.Fatal("holder sets differ")
		}
	}
}

// TestMetricDistinguishability reproduces Section 4.2's argument about
// metric quality over arbitrary overlays. The failure modes differ:
//
//   - Shared-prefix cannot tell most neighbors apart (nearly everything
//     ties at prefix length 0), so the redundancy machinery degenerates
//     into a flood — still bounded by the max_flows quota, but markedly
//     more expensive, with replicas parked at meaningless "maxima".
//   - XOR closeness distinguishes every pair of neighbors (no ties), so
//     requests cannot branch and success drops to single-path levels.
//
// The common-digits metric is the one that is simultaneously cheap and
// robust.
func TestMetricDistinguishability(t *testing.T) {
	run := func(metric Metric) (successFrac, msgsPerLookup float64) {
		rng := rand.New(rand.NewSource(55))
		g, err := topology.PowerLaw(800, 2.2, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		nw := overlay.New(g, rng, nil)
		cfg := Config{
			Space:                idspace.MustSpace(4),
			MaxFlows:             10,
			PerFlowReplicas:      3,
			DuplicateSuppression: true,
			Metric:               metric,
		}
		e, err := NewEngine(nw, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		found, msgs := 0, 0
		const trials = 80
		for i := 0; i < trials; i++ {
			key := idspace.Random(rng)
			e.Insert(rng.Intn(nw.N()), key, nil, 0)
			st := e.Lookup(rng.Intn(nw.N()), key, 0)
			msgs += st.Messages
			if st.Found {
				found++
			}
		}
		return float64(found) / trials, float64(msgs) / trials
	}
	commonOK, commonMsgs := run(MetricCommonDigits)
	prefixOK, prefixMsgs := run(MetricSharedPrefix)
	xorOK, xorMsgs := run(MetricXOR)

	// Prefix floods: it may match success but must cost clearly more
	// traffic (the max_flows quota caps how bad it can get).
	if prefixMsgs < 1.3*commonMsgs {
		t.Errorf("prefix traffic %.1f not dominating common-digits %.1f (flooding degeneration expected)",
			prefixMsgs, commonMsgs)
	}
	// XOR cannot branch: clearly lower success.
	if xorOK >= commonOK {
		t.Errorf("XOR success %.2f not below common-digits %.2f (no-tie single-path expected)", xorOK, commonOK)
	}
	if xorMsgs > commonMsgs {
		t.Errorf("XOR traffic %.1f above common-digits %.1f despite single paths", xorMsgs, commonMsgs)
	}
	_ = prefixOK
}

// TestMetricStrings covers the Stringer.
func TestMetricStrings(t *testing.T) {
	for m, want := range map[Metric]string{
		MetricCommonDigits: "common-digits",
		MetricSharedPrefix: "shared-prefix",
		MetricXOR:          "xor",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q", int(m), m.String())
		}
	}
	if Metric(42).String() == "" {
		t.Error("unknown metric empty string")
	}
}

// TestKindString covers the Stringer.
func TestKindString(t *testing.T) {
	if KindInsert.String() != "insert" || KindLookup.String() != "lookup" {
		t.Error("kind strings wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind has empty string")
	}
}

// TestLookupWithRejectsInvalidConfig covers the error path.
func TestLookupWithRejectsInvalidConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nw := overlay.New(topology.Ring(8), rng, nil)
	e, err := NewEngine(nw, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.LookupWith(Config{}, 0, idspace.FromUint64(1), 0); err == nil {
		t.Error("invalid override config accepted")
	}
}

// TestQuotaSplitEqualWastesQuota: the ablation rule must never create
// more flows than the paper's rule on the same overlay and seed.
func TestQuotaSplitEqualWastesQuota(t *testing.T) {
	flowsWith := func(split QuotaSplit) float64 {
		rng := rand.New(rand.NewSource(42))
		g, err := topology.PowerLaw(500, 2.2, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		nw := overlay.New(g, rng, nil)
		cfg := Config{
			Space:                idspace.MustSpace(4),
			MaxFlows:             12,
			PerFlowReplicas:      3,
			DuplicateSuppression: true,
			QuotaSplit:           split,
		}
		e, err := NewEngine(nw, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for i := 0; i < 40; i++ {
			st := e.Insert(rng.Intn(nw.N()), idspace.Random(rng), nil, 0)
			total += st.Flows
		}
		return float64(total) / 40
	}
	rr := flowsWith(QuotaSplitRoundRobin)
	eq := flowsWith(QuotaSplitEqual)
	if eq > rr {
		t.Errorf("equal split created more flows (%.2f) than round-robin (%.2f)", eq, rr)
	}
}
