package mpil

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"discovery/internal/idspace"
	"discovery/internal/overlay"
	"discovery/internal/topology"
)

// nibbleID embeds a 4-bit value in the top nibble of an otherwise-zero ID.
// All lower 156 bits agree across such IDs, so every pairwise metric is
// the paper's 4-bit example value plus a constant — order and ties are
// exactly those of the paper's figures.
func nibbleID(v byte) idspace.ID {
	var id idspace.ID
	id[0] = v << 4
	return id
}

// figure6 builds the overlay of the paper's comprehensive example
// (Figure 6): node labels are 4-bit IDs, the object ID is 1011.
// The walk asserted by the paper: 0001 -> 1001 (stores) -> 1110 ->
// {0011, 1111} (both store), with max_flows=2 and num_replicas=2.
func figure6(t *testing.T) (*overlay.Network, map[string]int) {
	t.Helper()
	labels := []byte{
		0b0001, 0b1001, 0b0000, 0b1110, 0b1111,
		0b0101, 0b0010, 0b0100, 0b0011,
	}
	names := map[string]int{}
	ids := make([]idspace.ID, len(labels))
	for i, l := range labels {
		ids[i] = nibbleID(l)
	}
	idx := func(l byte) int {
		for i, v := range labels {
			if v == l {
				return i
			}
		}
		t.Fatalf("label %04b not found", l)
		return -1
	}
	g := topology.NewGraph(len(labels))
	edges := [][2]byte{
		{0b0001, 0b1001}, {0b0001, 0b0000}, {0b1001, 0b1110},
		{0b1110, 0b0011}, {0b1110, 0b1111}, {0b0000, 0b0101},
		{0b0101, 0b1111}, {0b0010, 0b0011}, {0b0010, 0b0100},
		{0b0100, 0b0000},
	}
	for _, e := range edges {
		g.AddEdge(idx(e[0]), idx(e[1]))
	}
	nw, err := overlay.NewWithIDs(g, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		names[string([]byte{'0' + (l>>3)&1, '0' + (l>>2)&1, '0' + (l>>1)&1, '0' + l&1})] = idx(l)
	}
	return nw, names
}

func fig6Config() Config {
	return Config{
		Space:                idspace.MustSpace(1),
		MaxFlows:             2,
		PerFlowReplicas:      2,
		DuplicateSuppression: true,
	}
}

func TestPaperFigure6Insertion(t *testing.T) {
	nw, names := figure6(t)
	e, err := NewEngine(nw, fig6Config(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	key := nibbleID(0b1011)
	st := e.Insert(names["0001"], key, []byte("loc"), 0)

	if st.Replicas != 3 {
		t.Errorf("Replicas = %d, want 3 (paper: 1001, 0011, 1111)", st.Replicas)
	}
	holders := e.HoldersOf(key)
	want := map[int]bool{names["1001"]: true, names["0011"]: true, names["1111"]: true}
	if len(holders) != 3 {
		t.Fatalf("holders = %v, want exactly the paper's three", holders)
	}
	for _, h := range holders {
		if !want[h] {
			t.Errorf("unexpected holder index %d", h)
		}
	}
	if st.Flows != 2 {
		t.Errorf("Flows = %d, want 2 (one additional flow created by 1110)", st.Flows)
	}
	// Path: 0001->1001, 1001->1110, 1110->0011, 1110->1111 = 4 sends.
	if st.Messages != 4 {
		t.Errorf("Messages = %d, want 4", st.Messages)
	}
	if st.Duplicates != 0 || st.Dropped != 0 {
		t.Errorf("Duplicates=%d Dropped=%d, want 0,0", st.Duplicates, st.Dropped)
	}
}

func TestPaperFigure6Lookup(t *testing.T) {
	nw, names := figure6(t)
	e, err := NewEngine(nw, fig6Config(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	key := nibbleID(0b1011)
	e.Insert(names["0001"], key, []byte("loc"), 0)
	e.ResetDuplicateState()

	st := e.Lookup(names["0001"], key, 0)
	if !st.Found {
		t.Fatal("lookup failed on the paper's example")
	}
	if st.FirstReplyHops != 1 {
		t.Errorf("FirstReplyHops = %d, want 1 (1001 holds a replica)", st.FirstReplyHops)
	}
	if st.Replies != 1 {
		t.Errorf("Replies = %d, want 1 (the flow stops at the first hit)", st.Replies)
	}
}

func TestQuotaArithmeticPaperExample(t *testing.T) {
	// Verify the max_flows bookkeeping of Section 4.3 on the Figure 6
	// walk by intercepting the child messages.
	nw, names := figure6(t)
	e, err := NewEngine(nw, fig6Config(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	key := nibbleID(0b1011)

	// Origin 0001, given_flows=0, one candidate: (2-1+0)/1 = 1.
	m := e.newMessage(KindInsert, names["0001"], key, nil)
	r := e.step(names["0001"], m)
	if len(r.forwards) != 1 || r.forwards[0].to != names["1001"] {
		t.Fatalf("origin forwarded to %v, want just 1001", r.forwards)
	}
	if got := r.forwards[0].msg.MaxFlows; got != 1 {
		t.Errorf("max_flows after origin = %d, want 1", got)
	}

	// Relay 1001, given_flows=1, one candidate: (1-1+1)/1 = 1.
	m1 := r.forwards[0].msg
	r1 := e.step(names["1001"], m1)
	if !r1.stored {
		t.Error("1001 did not store despite being a local maximum")
	}
	if len(r1.forwards) != 1 || r1.forwards[0].to != names["1110"] {
		t.Fatalf("1001 forwarded to %v, want just 1110", r1.forwards)
	}
	if got := r1.forwards[0].msg.MaxFlows; got != 1 {
		t.Errorf("max_flows after 1001 = %d, want 1", got)
	}
	if got := r1.forwards[0].msg.ReplicasLeft; got != 1 {
		t.Errorf("num_replicas after 1001 = %d, want 1", got)
	}

	// Branch point 1110, given_flows=1, two candidates: m = min(2, 1+1)
	// = 2, children get (1-2+1)/2 = 0.
	m2 := r1.forwards[0].msg
	r2 := e.step(names["1110"], m2)
	if len(r2.forwards) != 2 {
		t.Fatalf("1110 forwarded to %d nodes, want 2", len(r2.forwards))
	}
	for _, f := range r2.forwards {
		if f.msg.MaxFlows != 0 {
			t.Errorf("child max_flows = %d, want 0", f.msg.MaxFlows)
		}
	}
	if r2.branches != 1 {
		t.Errorf("branches = %d, want 1", r2.branches)
	}
}

func TestResidueDistributionRoundRobin(t *testing.T) {
	// A star center with 3 equally-good spokes and max_flows 10:
	// m = 3, total = 10 - (3-0) = 7 -> shares 3, 2, 2.
	ids := []idspace.ID{
		nibbleID(0b0000),                                     // center (origin)
		nibbleID(0b1111), nibbleID(0b1110), nibbleID(0b1101), // spokes, all 1 common digit with key below? recomputed next line
	}
	// Key 0111: spokes 1111 (3 common), 1110 (2), 1101 (2) — not tied.
	// Use key 1000 instead: 1111 -> 1 common, 1110 -> 2... Simplest is
	// spokes with identical metric by symmetry: key 0110, spokes 1111
	// (2), 1110 (3), 1101 (1). Still unequal. Choose spokes that are
	// bit-flips in distinct positions of the key 1111: 0111, 1011, 1101
	// all share 3 digits with 1111.
	ids = []idspace.ID{
		nibbleID(0b0000),
		nibbleID(0b0111), nibbleID(0b1011), nibbleID(0b1101),
	}
	g := topology.Star(4)
	nw, err := overlay.NewWithIDs(g, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Space: idspace.MustSpace(1), MaxFlows: 10, PerFlowReplicas: 1, DuplicateSuppression: true}
	e, err := NewEngine(nw, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	key := nibbleID(0b1111)
	m := e.newMessage(KindInsert, 0, key, nil)
	r := e.step(0, m)
	if len(r.forwards) != 3 {
		t.Fatalf("forwards = %d, want 3", len(r.forwards))
	}
	shares := map[int]int{}
	sum := 0
	for _, f := range r.forwards {
		shares[f.msg.MaxFlows]++
		sum += f.msg.MaxFlows
	}
	if sum != 7 {
		t.Errorf("quota sum = %d, want 7 = 10 - (3-0)", sum)
	}
	if shares[3] != 1 || shares[2] != 2 {
		t.Errorf("shares = %v, want one 3 and two 2s", shares)
	}
}

func TestFlowBudgetLimitsBranching(t *testing.T) {
	// Star with 5 tied spokes but max_flows 2: the origin may only use
	// m = min(5, 2) = 2 next hops.
	ids := []idspace.ID{nibbleID(0b0000)}
	for _, v := range []byte{0b0111, 0b1011, 0b1101, 0b1110, 0b1111} {
		ids = append(ids, nibbleID(v))
	}
	// Against key 0011: 0111->3, 1011->3, 1101->1, 1110->1, 1111->2.
	// Ties at 3: nodes 1 and 2.
	nw, err := overlay.NewWithIDs(topology.Star(6), ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Space: idspace.MustSpace(1), MaxFlows: 1, PerFlowReplicas: 1, DuplicateSuppression: true}
	e, err := NewEngine(nw, cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	m := e.newMessage(KindInsert, 0, nibbleID(0b0011), nil)
	r := e.step(0, m)
	if len(r.forwards) != 1 {
		t.Fatalf("forwards = %d, want 1 (max_flows exhausted)", len(r.forwards))
	}
	to := r.forwards[0].to
	if to != 1 && to != 2 {
		t.Errorf("forwarded to node %d, want one of the tied-best {1,2}", to)
	}
}

func TestInvariantBounds(t *testing.T) {
	// Paper Section 4.4: replicas <= max_flows * num_replicas, and the
	// total flow count never exceeds max_flows. Checked across many
	// random overlays, configurations, and keys.
	seeds := []int64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.PowerLaw(300, 2.2, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		nw := overlay.New(g, rng, nil)
		for _, mf := range []int{1, 3, 10, 30} {
			for _, r := range []int{1, 2, 5} {
				cfg := Config{Space: idspace.MustSpace(4), MaxFlows: mf, PerFlowReplicas: r, DuplicateSuppression: true}
				e, err := NewEngine(nw, cfg, rng)
				if err != nil {
					t.Fatal(err)
				}
				for trial := 0; trial < 10; trial++ {
					key := idspace.Random(rng)
					origin := rng.Intn(nw.N())
					st := e.Insert(origin, key, nil, 0)
					if st.Replicas > mf*r {
						t.Errorf("seed %d mf=%d r=%d: replicas %d > bound %d", seed, mf, r, st.Replicas, mf*r)
					}
					if st.Flows > mf && st.Flows != 1 {
						t.Errorf("seed %d mf=%d r=%d: flows %d > max_flows %d", seed, mf, r, st.Flows, mf)
					}
					if st.Replicas < 1 {
						t.Errorf("seed %d: insertion stored no replica", seed)
					}
				}
			}
		}
	}
}

func TestInsertThenLookupSucceeds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := topology.RandomRegular(400, 20, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := overlay.New(g, rng, nil)
	// The paper's methodology (Section 6.1): insertions run with heavy
	// redundancy (max_flows 30, 5 per-flow replicas); lookups vary.
	insCfg := Config{Space: idspace.MustSpace(4), MaxFlows: 30, PerFlowReplicas: 5, DuplicateSuppression: true}
	ins, err := NewEngine(nw, insCfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	lkCfg := Config{Space: idspace.MustSpace(4), MaxFlows: 10, PerFlowReplicas: 3, DuplicateSuppression: true}
	found := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		key := idspace.Random(rng)
		ins.Insert(rng.Intn(nw.N()), key, nil, 0)
		st, err := ins.LookupWith(lkCfg, rng.Intn(nw.N()), key, 0)
		if err != nil {
			t.Fatal(err)
		}
		if st.Found {
			found++
			if st.FirstReplyHops < 0 {
				t.Error("found lookup with negative hop count")
			}
		}
	}
	if found < trials*90/100 {
		t.Errorf("lookup success %d/%d, want >= 90%% on a random regular overlay", found, trials)
	}
}

func TestLookupMissingKeyFails(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	g, err := topology.RandomRegular(100, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := overlay.New(g, rng, nil)
	e, err := NewEngine(nw, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Lookup(0, idspace.FromString("never inserted"), 0)
	if st.Found {
		t.Error("lookup found a key that was never inserted")
	}
	if st.FirstReplyHops != -1 {
		t.Errorf("FirstReplyHops = %d for a miss, want -1", st.FirstReplyHops)
	}
}

func TestCompleteGraphSingleLocalMaximum(t *testing.T) {
	// On a complete graph the only local maximum is the globally best
	// node, so every lookup should find it in one hop (or zero if the
	// origin is it).
	rng := rand.New(rand.NewSource(11))
	g := topology.Complete(50)
	nw := overlay.New(g, rng, nil)
	cfg := Config{Space: idspace.MustSpace(4), MaxFlows: 5, PerFlowReplicas: 1, DuplicateSuppression: true}
	e, err := NewEngine(nw, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	key := idspace.Random(rng)
	// Identify the global best.
	space := cfg.Space
	best, bestVal := -1, -1
	for i := 0; i < nw.N(); i++ {
		if c := space.CommonDigits(key, nw.ID(i)); c > bestVal {
			best, bestVal = i, c
		}
	}
	e.Insert(0, key, nil, 0)
	holders := e.HoldersOf(key)
	// On a complete graph every local maximum is tied for the global
	// best metric value (this tying is why the paper's Figure 8 expects
	// about 1.6 replicas rather than exactly 1).
	sawBest := false
	for _, h := range holders {
		if got := space.CommonDigits(key, nw.ID(h)); got != bestVal {
			t.Errorf("holder %d has metric %d, want global best %d", h, got, bestVal)
		}
		if h == best {
			sawBest = true
		}
	}
	if !sawBest {
		t.Errorf("holders = %v do not include the global best %d", holders, best)
	}
	e.ResetDuplicateState()
	ls := e.Lookup(1, key, 0)
	if !ls.Found || ls.FirstReplyHops > 1 {
		t.Errorf("lookup on complete graph: found=%v hops=%d, want found in <= 1 hop", ls.Found, ls.FirstReplyHops)
	}
}

func TestDuplicateSuppressionReducesTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g, err := topology.RandomRegular(200, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	run := func(ds bool) (int, int) {
		rng := rand.New(rand.NewSource(13))
		nw := overlay.New(g, rng, nil)
		cfg := Config{Space: idspace.MustSpace(4), MaxFlows: 20, PerFlowReplicas: 5, DuplicateSuppression: ds}
		e, err := NewEngine(nw, cfg, rng)
		if err != nil {
			t.Fatal(err)
		}
		msgs, dups := 0, 0
		for i := 0; i < 10; i++ {
			st := e.Insert(rng.Intn(nw.N()), idspace.Random(rng), nil, 0)
			msgs += st.Messages
			dups += st.Duplicates
		}
		return msgs, dups
	}
	msgsDS, _ := run(true)
	msgsNoDS, _ := run(false)
	if msgsDS > msgsNoDS {
		t.Errorf("DS traffic %d exceeds no-DS traffic %d", msgsDS, msgsNoDS)
	}
}

func TestOfflineNodesDropMessages(t *testing.T) {
	nw, names := figure6(t)
	// Same graph, but 1001 is offline: the single path from 0001 dies.
	offline := names["1001"]
	av := availFunc(func(node int, _ time.Duration) bool { return node != offline })
	nw2, err := overlay.NewWithIDs(nw.Graph(), idsOf(nw), av)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(nw2, fig6Config(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	st := e.Insert(names["0001"], nibbleID(0b1011), nil, 0)
	if st.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", st.Dropped)
	}
	if st.Replicas != 0 {
		t.Errorf("Replicas = %d, want 0 (the only route was severed)", st.Replicas)
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g, err := topology.RandomRegular(150, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := overlay.New(g, rng, nil)
	e, err := NewEngine(nw, DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	key := idspace.Random(rng)
	origin := 7
	st := e.Insert(origin, key, []byte("v"), 0)
	if st.Replicas == 0 {
		t.Fatal("insertion stored nothing")
	}
	// A different origin must not be able to delete.
	if got := e.Delete(origin+1, key, 0); got != 0 {
		t.Errorf("foreign Delete removed %d replicas, want 0", got)
	}
	if got := e.Delete(origin, key, 0); got != st.Replicas {
		t.Errorf("Delete removed %d, want %d", got, st.Replicas)
	}
	e.ResetDuplicateState()
	if ls := e.Lookup(3, key, 0); ls.Found {
		t.Error("lookup found key after deletion")
	}
}

func TestEngineConfigValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nw := overlay.New(topology.Ring(4), rng, nil)
	bad := []Config{
		{},
		{Space: idspace.MustSpace(4), MaxFlows: 0, PerFlowReplicas: 1},
		{Space: idspace.MustSpace(4), MaxFlows: 1, PerFlowReplicas: 0},
		{Space: idspace.MustSpace(4), MaxFlows: 1, PerFlowReplicas: 1, MaxHops: -1},
	}
	for i, cfg := range bad {
		if _, err := NewEngine(nw, cfg, rng); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewEngine(overlay.New(topology.NewGraph(0), rng, nil), DefaultConfig(), rng); err == nil {
		t.Error("empty overlay accepted")
	}
}

func TestMaxHopsBoundsPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := topology.Ring(100) // long paths are forced on a ring
	nw := overlay.New(g, rng, nil)
	cfg := Config{Space: idspace.MustSpace(4), MaxFlows: 2, PerFlowReplicas: 5, DuplicateSuppression: true, MaxHops: 3}
	e, err := NewEngine(nw, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Insert(0, idspace.Random(rng), nil, 0)
	// With MaxHops 3 a flow can visit at most 4 nodes, and the ring has
	// branching factor 2 at the origin only.
	if st.Messages > 8 {
		t.Errorf("Messages = %d, want bounded by MaxHops", st.Messages)
	}
}

// availFunc adapts a function to overlay.Availability.
type availFunc func(int, time.Duration) bool

func (f availFunc) Online(node int, at time.Duration) bool { return f(node, at) }

func idsOf(nw *overlay.Network) []idspace.ID {
	ids := make([]idspace.ID, nw.N())
	for i := range ids {
		ids[i] = nw.ID(i)
	}
	return ids
}

// TestForEachReplicaFromOrderAndResume pins the resumable-iteration
// contract: a total, stable (node, key) ascending order, a correct
// early-stop report, and lossless resumption from the rejected replica —
// the primitive beneath paginated peer repair.
func TestForEachReplicaFromOrderAndResume(t *testing.T) {
	nw, _ := figure6(t)
	e, err := NewEngine(nw, fig6Config(), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	type pos struct {
		node int
		key  idspace.ID
	}
	var want []pos
	for node := 0; node < nw.N(); node += 3 {
		for k := 0; k < 5; k++ {
			key := idspace.FromString(fmt.Sprintf("iter-%d-%d", node, k))
			if err := e.PutReplica(node, Replica{Key: key, Value: []byte("v")}); err != nil {
				t.Fatal(err)
			}
			want = append(want, pos{node, key})
		}
	}
	sort.Slice(want, func(a, b int) bool {
		if want[a].node != want[b].node {
			return want[a].node < want[b].node
		}
		return want[a].key.Cmp(want[b].key) < 0
	})

	// A full walk delivers exactly the sorted placements.
	var got []pos
	if done := e.ForEachReplicaFrom(0, idspace.ID{}, func(node int, r Replica) bool {
		got = append(got, pos{node, r.Key})
		return true
	}); !done {
		t.Fatal("uninterrupted walk reported an early stop")
	}
	if len(got) != len(want) {
		t.Fatalf("walk visited %d replicas, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk position %d = %v, want %v", i, got[i], want[i])
		}
	}

	// Pagination: accept `page` replicas per walk, resume at the rejected
	// one; the concatenation must reproduce the full walk exactly once.
	for _, page := range []int{1, 3, 7} {
		var paged []pos
		fromNode, fromKey := 0, idspace.ID{}
		for rounds := 0; ; rounds++ {
			if rounds > len(want)+1 {
				t.Fatalf("page size %d: pagination never terminated", page)
			}
			n := 0
			done := e.ForEachReplicaFrom(fromNode, fromKey, func(node int, r Replica) bool {
				if n == page {
					fromNode, fromKey = node, r.Key
					return false
				}
				n++
				paged = append(paged, pos{node, r.Key})
				return true
			})
			if done {
				break
			}
		}
		if len(paged) != len(want) {
			t.Fatalf("page size %d: visited %d replicas, want %d", page, len(paged), len(want))
		}
		for i := range want {
			if paged[i] != want[i] {
				t.Fatalf("page size %d: position %d = %v, want %v", page, i, paged[i], want[i])
			}
		}
	}
}
