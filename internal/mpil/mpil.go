// Package mpil implements MPIL (Multi-Path Insertion/Lookup), the paper's
// primary contribution: a resource location and discovery algorithm that
// is overlay-independent (it routes over arbitrary neighbor lists using
// only a deterministic ID-space metric) and perturbation-resistant (it
// exploits limited redundancy — multiple flows and multiple replicas per
// flow — instead of overlay maintenance).
//
// The routing metric (Section 4.1) is the number of base-2^b digits two
// IDs share in the same positions. A message is forwarded to every
// neighbor tied for the highest metric value, subject to a max_flows quota
// carried in the message and split among next hops (Section 4.3, Figure
// 5). Objects are stored at local maxima — nodes whose own metric value is
// at least that of every neighbor — and each flow stores up to
// num_replicas replicas (Section 4.4).
package mpil

import (
	"fmt"
	"time"

	"discovery/internal/idspace"
)

// Overlay is the neighbor-list view MPIL routes over. Any graph works:
// MPIL never asks for structure beyond "who are node i's neighbors".
// Neighbor lists may be asymmetric (as they are when MPIL runs over a
// structured overlay's routing state, Section 6.2).
type Overlay interface {
	// N returns the number of nodes, indexed 0..N-1.
	N() int
	// ID returns node i's 160-bit identifier.
	ID(i int) idspace.ID
	// Neighbors returns node i's neighbor list. The engine treats the
	// returned slice as read-only.
	Neighbors(i int) []int
	// Online reports whether node i is responsive at virtual time at.
	Online(i int, at time.Duration) bool
}

// ValidateOverlay checks the structural contract Engine assumes of an
// Overlay: at least one node, unique IDs, in-range neighbor indices, and
// no self-loops. The engine trusts its overlay on the hot path, so
// adapters built from external state — a cluster member list
// (internal/p2p), another protocol's routing tables — should validate
// once at construction.
func ValidateOverlay(ov Overlay) error {
	n := ov.N()
	if n == 0 {
		return fmt.Errorf("mpil: overlay has no nodes")
	}
	seen := make(map[idspace.ID]int, n)
	for i := 0; i < n; i++ {
		id := ov.ID(i)
		if j, dup := seen[id]; dup {
			return fmt.Errorf("mpil: nodes %d and %d share ID %v", j, i, id)
		}
		seen[id] = i
		for _, nb := range ov.Neighbors(i) {
			if nb < 0 || nb >= n {
				return fmt.Errorf("mpil: node %d lists out-of-range neighbor %d (%d nodes)", i, nb, n)
			}
			if nb == i {
				return fmt.Errorf("mpil: node %d lists itself as neighbor", i)
			}
		}
	}
	return nil
}

// Config carries the MPIL parameters from the paper.
type Config struct {
	// Space selects the digit base 2^b of the routing metric. The paper
	// uses a 160-bit space; its examples use base-4 (b=2).
	Space idspace.Space
	// MaxFlows is the flow quota placed in each message by its
	// originator ("max_flows", Section 4.3). The total number of flows a
	// message spawns is bounded by this value.
	MaxFlows int
	// PerFlowReplicas is "num_replicas" (Section 4.4): for insertions,
	// how many replicas each flow stores; for lookups, how many local
	// maxima a flow may pass before giving up.
	PerFlowReplicas int
	// DuplicateSuppression ("DS", Section 6.2): when true a node
	// silently discards any message UID it has already received. The
	// paper finds DS saves traffic on static overlays but hurts success
	// under perturbation.
	DuplicateSuppression bool
	// MaxHops bounds any single flow's path length as a safety valve.
	// Zero means the engine's default (the node count).
	MaxHops int
	// QuotaSplit selects how a branching node divides the remaining
	// max_flows quota among next hops. The zero value is the paper's
	// round-robin residue rule.
	QuotaSplit QuotaSplit
	// Metric selects the routing metric. The zero value is the paper's
	// common-digits metric; the alternatives exist to reproduce Section
	// 4.2's distinguishability argument (prefix routing cannot tell
	// arbitrary neighbors apart; XOR closeness never ties, so it cannot
	// branch).
	Metric Metric
}

// Metric enumerates routing metrics for the Section 4.2 ablation.
type Metric int

// Routing metrics.
const (
	// MetricCommonDigits is MPIL's metric: the number of digit
	// positions shared with the key. Ties are common, which is where
	// redundant flows come from.
	MetricCommonDigits Metric = iota
	// MetricSharedPrefix is Pastry-style prefix length. Over arbitrary
	// overlays most neighbors share no prefix with the key at all, so
	// routing stalls early (Section 4.2's argument).
	MetricSharedPrefix
	// MetricXOR is Kademlia-style XOR closeness (top 64 bits). It
	// distinguishes every pair of neighbors, so it essentially never
	// ties and degenerates to single-path routing.
	MetricXOR
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricCommonDigits:
		return "common-digits"
	case MetricSharedPrefix:
		return "shared-prefix"
	case MetricXOR:
		return "xor"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// QuotaSplit enumerates quota-division rules, ablated in the benchmark
// suite.
type QuotaSplit int

// Quota-division rules.
const (
	// QuotaSplitRoundRobin is the paper's rule (Section 4.3): each of
	// the m next hops gets total/m, and the residue is handed out one
	// unit at a time round-robin.
	QuotaSplitRoundRobin QuotaSplit = iota
	// QuotaSplitEqual is the naive ablation: each next hop gets total/m
	// and the residue is discarded, wasting up to m-1 units of quota at
	// every branch.
	QuotaSplitEqual
)

// Validate reports the first configuration error, if any.
func (c Config) Validate() error {
	if c.Space.B() == 0 {
		return fmt.Errorf("mpil: config Space is unset; use idspace.NewSpace")
	}
	if c.MaxFlows < 1 {
		return fmt.Errorf("mpil: MaxFlows = %d, must be at least 1", c.MaxFlows)
	}
	if c.PerFlowReplicas < 1 {
		return fmt.Errorf("mpil: PerFlowReplicas = %d, must be at least 1", c.PerFlowReplicas)
	}
	if c.MaxHops < 0 {
		return fmt.Errorf("mpil: MaxHops = %d, must be non-negative", c.MaxHops)
	}
	return nil
}

// DefaultConfig returns the configuration the paper uses for its MSPastry
// comparison: base-16 digits, 10 maximum flows, 5 per-flow replicas, no
// duplicate suppression.
func DefaultConfig() Config {
	return Config{
		Space:           idspace.MustSpace(4),
		MaxFlows:        10,
		PerFlowReplicas: 5,
	}
}

// Kind distinguishes the message types of Section 4.4.
type Kind int

// Message kinds. Deletion is not routed (Section 4.4 sends explicit
// deletes directly to replica holders), so only insert and lookup appear
// here.
const (
	KindInsert Kind = iota + 1
	KindLookup
)

// String implements fmt.Stringer for log lines.
func (k Kind) String() string {
	switch k {
	case KindInsert:
		return "insert"
	case KindLookup:
		return "lookup"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Message is an MPIL protocol message. Each forwarded copy owns its Route
// slice; UID ties copies of one request together for duplicate handling.
type Message struct {
	UID  uint64
	Kind Kind
	Key  idspace.ID
	// Value is the object pointer carried by insertions (nil for
	// lookups).
	Value []byte
	// Origin is the node index of the request originator; replies go
	// directly back to it.
	Origin int
	// MaxFlows is the remaining flow quota (consumed and divided at each
	// branch, Section 4.3).
	MaxFlows int
	// ReplicasLeft is the remaining per-flow replica budget
	// (num_replicas for fresh messages).
	ReplicasLeft int
	// Route lists the nodes this copy has visited, excluding the node
	// currently processing it.
	Route []int
}

// onRoute reports whether node n already appears in the message's route.
func (m *Message) onRoute(n int) bool {
	for _, v := range m.Route {
		if v == n {
			return true
		}
	}
	return false
}

// child clones the message for forwarding from node n with an updated flow
// quota, appending n to the route. The route slice is copied because
// sibling forwards must not share backing arrays.
func (m *Message) child(n, maxFlows int) *Message {
	route := make([]int, len(m.Route)+1)
	copy(route, m.Route)
	route[len(m.Route)] = n
	c := *m
	c.MaxFlows = maxFlows
	c.Route = route
	return &c
}

// Replica is one stored copy of an object pointer.
type Replica struct {
	Key   idspace.ID
	Value []byte
	// Origin is the node that inserted the object, the target of replica
	// heartbeats (Section 4.4).
	Origin int
}

// InsertStats reports what one insertion did.
type InsertStats struct {
	// Replicas is the number of stores performed (bounded above by
	// MaxFlows * PerFlowReplicas, Section 4.4).
	Replicas int
	// Messages is the insertion traffic: one count per message sent to a
	// single neighbor.
	Messages int
	// Duplicates is how many times some node received this insertion's
	// UID more than once.
	Duplicates int
	// Flows is the actual number of flows created (1 + one per
	// additional branch).
	Flows int
	// Dropped counts copies lost to offline nodes (always 0 in static
	// runs).
	Dropped int
}

// LookupStats reports what one lookup did.
type LookupStats struct {
	// Found is true if at least one replica holder was reached.
	Found bool
	// FirstReplyHops is the forward-path hop count of the earliest
	// successful reply (the paper's Figure 10 latency metric); -1 when
	// not found.
	FirstReplyHops int
	// Replies is the total number of successful replies generated.
	Replies int
	// Messages is the lookup forwarding traffic.
	Messages int
	// Duplicates is how many times some node received this lookup's UID
	// more than once.
	Duplicates int
	// Flows is the actual number of flows created.
	Flows int
	// Dropped counts copies lost to offline nodes (always 0 in static
	// runs).
	Dropped int
}
