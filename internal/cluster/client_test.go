package cluster_test

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	discovery "discovery"
	"discovery/internal/cluster"
	"discovery/internal/p2p"
	"discovery/internal/server"
	"discovery/internal/trace"
)

// reserveAddrs grabs n distinct loopback addresses by binding and
// releasing ephemeral ports.
func reserveAddrs(tb testing.TB, n int) []string {
	tb.Helper()
	addrs := make([]string, n)
	liss := make([]net.Listener, n)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			tb.Fatal(err)
		}
		liss[i] = lis
		addrs[i] = lis.Addr().String()
	}
	for _, lis := range liss {
		lis.Close()
	}
	return addrs
}

// clusterNode is one in-process cluster member with its serving layer.
type clusterNode struct {
	cluster    *p2p.Cluster
	pool       *discovery.Pool
	node       *p2p.Node
	srv        *server.Server
	clientAddr string
	stopOnce   sync.Once
}

func (cn *clusterNode) stop() {
	cn.stopOnce.Do(func() {
		cn.srv.Close()
		cn.node.Close()
	})
}

// startNode brings up one member: peer runtime on selfAddr, client
// listener on clientAddr (may be ":0"). advertise=false withholds the
// client address from probe gossip, leaving this member's table slot
// empty cluster-wide — the relay-fallback scenario. An optional tracer
// is wired into both the serving layer and the peer runtime.
func startNode(tb testing.TB, selfAddr string, peerAddrs []string, clientAddr string, advertise bool, tracer ...*trace.Tracer) *clusterNode {
	tb.Helper()
	var tr *trace.Tracer
	if len(tracer) > 0 {
		tr = tracer[0]
	}
	cl, err := p2p.NewCluster(selfAddr, peerAddrs, 1)
	if err != nil {
		tb.Fatal(err)
	}
	ov, err := p2p.NewRemoteOverlay(cl)
	if err != nil {
		tb.Fatal(err)
	}
	pool, err := discovery.NewPool(ov, 2, discovery.WithSeed(1), discovery.WithRegion(cl.Self(), cl.N()))
	if err != nil {
		tb.Fatal(err)
	}
	node, err := p2p.NewNode(p2p.Config{
		Cluster: cl, Overlay: ov, Pool: pool,
		DialTimeout: 200 * time.Millisecond, CallTimeout: 2 * time.Second, Logf: tb.Logf,
		Tracer: tr,
	})
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := node.Start(selfAddr); err != nil {
		tb.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Pool: pool, Owns: node.Owns, Forward: node.Forward,
		ClusterHash: cl.Hash(), Members: node.Members, Logf: tb.Logf,
		Tracer: tr,
	})
	if err != nil {
		tb.Fatal(err)
	}
	addr, err := srv.Start(clientAddr)
	if err != nil {
		tb.Fatal(err)
	}
	if advertise {
		node.SetClientAddr(addr.String())
	}
	cn := &clusterNode{cluster: cl, pool: pool, node: node, srv: srv, clientAddr: addr.String()}
	tb.Cleanup(cn.stop)
	return cn
}

// startCluster brings up n members, joins them, and waits until every
// advertising member's client address has gossiped to every node.
// Result is indexed by cluster slot.
func startCluster(tb testing.TB, n int) []*clusterNode {
	tb.Helper()
	peerAddrs := reserveAddrs(tb, n)
	bySlot := make([]*clusterNode, n)
	for _, addr := range peerAddrs {
		cn := startNode(tb, addr, peerAddrs, "127.0.0.1:0", true)
		bySlot[cn.cluster.Self()] = cn
	}
	for _, cn := range bySlot {
		if err := cn.node.Join(5 * time.Second); err != nil {
			tb.Fatal(err)
		}
	}
	// Join's probes taught every pair both addresses; verify the tables
	// are complete so routing is deterministic from the first request.
	for i, cn := range bySlot {
		members := cn.node.Members()
		for slot, want := range bySlot {
			if members[slot] != want.clientAddr {
				tb.Fatalf("node %d Members()[%d] = %q, want %q", i, slot, members[slot], want.clientAddr)
			}
		}
	}
	return bySlot
}

// keysOwnedBy returns count distinct key names owned by slot among n.
func keysOwnedBy(slot, n, count int, salt string) []string {
	var keys []string
	for i := 0; len(keys) < count; i++ {
		name := fmt.Sprintf("%s-%d", salt, i)
		if discovery.OwnerOf(discovery.NewID(name), n) == slot {
			keys = append(keys, name)
		}
	}
	return keys
}

// TestClientRoutesDirectToOwners pins the happy path: every request
// goes straight to its owner (zero relays, zero refreshes), data lands
// on the owning node, and the whole keyspace is served.
func TestClientRoutesDirectToOwners(t *testing.T) {
	nodes := startCluster(t, 3)
	cl, err := cluster.Dial(cluster.Config{Seeds: []string{nodes[0].clientAddr}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	hash, addrs := cl.Members()
	if hash != nodes[0].cluster.Hash() || len(addrs) != 3 {
		t.Fatalf("client view %016x/%d members, want %016x/3", hash, len(addrs), nodes[0].cluster.Hash())
	}

	const keys = 60
	ownedBy := make([]int, 3)
	for i := 0; i < keys; i++ {
		name := fmt.Sprintf("direct-%d", i)
		key := discovery.NewID(name)
		ownedBy[discovery.OwnerOf(key, 3)]++
		if _, err := cl.Insert(cluster.OriginAuto, key, []byte(name)); err != nil {
			t.Fatalf("insert %s: %v", name, err)
		}
	}
	for i := 0; i < keys; i++ {
		name := fmt.Sprintf("direct-%d", i)
		res, err := cl.Lookup(cluster.OriginAuto, discovery.NewID(name))
		if err != nil || !res.Found {
			t.Fatalf("lookup %s: found=%v err=%v", name, res.Found, err)
		}
	}
	for i := 0; i < keys; i += 5 {
		name := fmt.Sprintf("direct-%d", i)
		removed, err := cl.Delete(cluster.OriginAuto, discovery.NewID(name))
		if err != nil || removed == 0 {
			t.Fatalf("delete %s: removed=%d err=%v", name, removed, err)
		}
	}

	// Every region must have been exercised, and every request must have
	// executed on its owner: each node's pool saw exactly the inserts for
	// keys it owns — never a foreign write.
	for slot, cn := range nodes {
		if ownedBy[slot] == 0 {
			t.Fatalf("no test keys owned by slot %d; broaden the key set", slot)
		}
		if st := cn.pool.Stats(); st.Inserts != uint64(ownedBy[slot]) {
			t.Fatalf("slot %d executed %d inserts, owns %d keys", slot, st.Inserts, ownedBy[slot])
		}
	}
	st := cl.Stats()
	if st.Relayed != 0 || st.Refreshes != 0 {
		t.Fatalf("complete table still relayed %d / refreshed %d", st.Relayed, st.Refreshes)
	}
	if want := uint64(keys + keys + (keys+4)/5); st.Routed != want {
		t.Fatalf("routed %d requests, want %d", st.Routed, want)
	}
}

// TestClientRelayFallback pins the unknown-address path: a member that
// never advertises a client address is reached through the anchor node,
// which forwards — correct results, counted as relays.
func TestClientRelayFallback(t *testing.T) {
	peerAddrs := reserveAddrs(t, 2)
	bySlot := make([]*clusterNode, 2)
	for i, addr := range peerAddrs {
		cn := startNode(t, addr, peerAddrs, "127.0.0.1:0", i != 1) // second-started node never advertises
		bySlot[cn.cluster.Self()] = cn
	}
	var silent *clusterNode
	for _, cn := range bySlot {
		if err := cn.node.Join(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for _, cn := range bySlot {
		members := cn.node.Members()
		for slot, other := range bySlot {
			if members[slot] == "" {
				silent = other
			}
		}
	}
	if silent == nil {
		t.Fatal("every slot advertised; the withheld address leaked")
	}
	anchor := bySlot[1-silent.cluster.Self()]

	cl, err := cluster.Dial(cluster.Config{Seeds: []string{anchor.clientAddr}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	silentKeys := keysOwnedBy(silent.cluster.Self(), 2, 5, "relay")
	for _, name := range silentKeys {
		if _, err := cl.Insert(cluster.OriginAuto, discovery.NewID(name), []byte(name)); err != nil {
			t.Fatalf("insert %s: %v", name, err)
		}
		res, err := cl.Lookup(cluster.OriginAuto, discovery.NewID(name))
		if err != nil || !res.Found {
			t.Fatalf("lookup %s through relay: found=%v err=%v", name, res.Found, err)
		}
	}
	st := cl.Stats()
	if st.Relayed != uint64(2*len(silentKeys)) {
		t.Fatalf("relayed %d, want %d (every op for the silent member)", st.Relayed, 2*len(silentKeys))
	}
	// The data still landed on its owner — the relay forwards, the
	// anchor never executes a foreign write.
	if got := silent.pool.Stats().Inserts; got != uint64(len(silentKeys)) {
		t.Fatalf("silent owner executed %d inserts, want %d", got, len(silentKeys))
	}
	if got := anchor.pool.Stats().Inserts; got != 0 {
		t.Fatalf("anchor executed %d foreign inserts", got)
	}
}

// TestStaleClientRefreshesAndNeverWritesWrongRegion is the safety test
// for view changes: a client whose member table predates a cluster
// reconfiguration (a) gets refused with TWrongView, refreshes, retries,
// and succeeds, and (b) never executes a write on a node that does not
// own the key under the NEW view — the fingerprint check runs before
// the request does.
func TestStaleClientRefreshesAndNeverWritesWrongRegion(t *testing.T) {
	peerAddrs := reserveAddrs(t, 3)
	clientAddrs := reserveAddrs(t, 3)

	// Cluster v1: two members on fixed client addresses.
	v1 := make([]*clusterNode, 2)
	for i, addr := range peerAddrs[:2] {
		cn := startNode(t, addr, peerAddrs[:2], clientAddrs[i], true)
		v1[cn.cluster.Self()] = cn
	}
	for _, cn := range v1 {
		if err := cn.node.Join(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	oldHash := v1[0].cluster.Hash()

	cl, err := cluster.Dial(cluster.Config{Seeds: []string{v1[0].clientAddr}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Insert(cluster.OriginAuto, discovery.NewID("warm"), []byte("w")); err != nil {
		t.Fatal(err)
	}
	_, oldAddrs := cl.Members()

	// Reconfigure: stop v1, start a three-member cluster reusing the
	// same peer and client addresses (plus one new member). The client's
	// held view is now stale: addresses still reach live nodes, but the
	// fingerprint changed and so did the region split.
	for _, cn := range v1 {
		cn.stop()
	}
	v2 := make([]*clusterNode, 3)
	clientAddrOf := map[string]int{} // v2 client addr -> v2 slot
	for i, addr := range peerAddrs {
		cn := startNode(t, addr, peerAddrs, clientAddrs[i], true)
		v2[cn.cluster.Self()] = cn
		clientAddrOf[cn.clientAddr] = cn.cluster.Self()
	}
	for _, cn := range v2 {
		if err := cn.node.Join(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	newHash := v2[0].cluster.Hash()
	if newHash == oldHash {
		t.Fatal("reconfiguration did not change the fingerprint")
	}

	// Pick a key whose stale route lands on a v2 node that does NOT own
	// it under the new split: the interesting wrong-region case.
	var name string
	var newOwner int
	for i := 0; ; i++ {
		name = fmt.Sprintf("stale-%d", i)
		key := discovery.NewID(name)
		staleAddr := oldAddrs[discovery.OwnerOf(key, len(oldAddrs))]
		newOwner = discovery.OwnerOf(key, 3)
		if hit, ok := clientAddrOf[staleAddr]; ok && hit != newOwner {
			break
		}
		if i > 10000 {
			t.Fatal("no key maps stale-owner to a non-owner")
		}
	}

	// The stale write must succeed (refresh + retry), land exactly on
	// the new owner, and execute nowhere else.
	if _, err := cl.Insert(cluster.OriginAuto, discovery.NewID(name), []byte(name)); err != nil {
		t.Fatalf("stale insert: %v", err)
	}
	st := cl.Stats()
	if st.Refreshes == 0 {
		t.Fatal("stale view served without a refresh; TWrongView never fired")
	}
	if hash, _ := cl.Members(); hash != newHash {
		t.Fatalf("client view %016x after refresh, want %016x", hash, newHash)
	}
	for slot, cn := range v2 {
		got := cn.pool.Stats().Inserts
		want := uint64(0)
		if slot == newOwner {
			want = 1
		}
		if got != want {
			t.Fatalf("v2 slot %d executed %d inserts, want %d — a stale write ran on the wrong region", slot, got, want)
		}
	}
	res, err := cl.Lookup(cluster.OriginAuto, discovery.NewID(name))
	if err != nil || !res.Found {
		t.Fatalf("lookup after refreshed write: found=%v err=%v", res.Found, err)
	}

	// A mismatch error at the protocol level must not leak to callers as
	// a hard failure more than the retry budget allows: a second write
	// through the now-fresh view is clean.
	before := cl.Stats().Refreshes
	if _, err := cl.Insert(cluster.OriginAuto, discovery.NewID(name+"-again"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if cl.Stats().Refreshes != before {
		t.Fatal("fresh view refreshed again")
	}
}

// TestDialRefusesNonClusterServer pins the bootstrap error: a plain
// single-process server has no member table, and Dial must say so
// rather than hang or rout blindly.
func TestDialRefusesNonClusterServer(t *testing.T) {
	ov, err := discovery.CompleteOverlay(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := discovery.NewPool(ov, 2, discovery.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Pool: pool, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	_, err = cluster.Dial(cluster.Config{Seeds: []string{addr.String()}, Logf: t.Logf})
	if err == nil || !strings.Contains(err.Error(), "member table") {
		t.Fatalf("dialing a non-cluster server: %v", err)
	}
}

// benchCluster seeds a 3-node cluster with count keys and returns the
// nodes plus the key names.
// benchCallers fans RunParallel out to several goroutines per core:
// the client exists for many concurrent requesters, and a single
// closed-loop caller (the GOMAXPROCS=1 default) measures goroutine
// hand-off latency instead of the multiplexed regime.
const benchCallers = 8

func benchCluster(b *testing.B, count int) ([]*clusterNode, []string) {
	b.Helper()
	nodes := startCluster(b, 3)
	cl, err := cluster.Dial(cluster.Config{Seeds: []string{nodes[0].clientAddr}})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	names := make([]string, count)
	for i := range names {
		names[i] = fmt.Sprintf("bench-%d", i)
		if _, err := cl.Insert(cluster.OriginAuto, discovery.NewID(names[i]), []byte("benchmark-value")); err != nil {
			b.Fatal(err)
		}
	}
	return nodes, names
}

// BenchmarkClusterClientRouted measures the cluster-smart path: one
// locally computed owner, one hop, requests from all goroutines
// multiplexed and coalesced onto per-node connections.
func BenchmarkClusterClientRouted(b *testing.B) {
	nodes, names := benchCluster(b, 300)
	cl, err := cluster.Dial(cluster.Config{Seeds: []string{nodes[0].clientAddr}})
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	b.SetParallelism(benchCallers)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			name := names[i%len(names)]
			i++
			res, err := cl.Lookup(cluster.OriginAuto, discovery.NewID(name))
			if err != nil || !res.Found {
				b.Errorf("lookup %s: found=%v err=%v", name, res.Found, err)
				return
			}
		}
	})
}

// BenchmarkClusterRelayThroughOneNode measures the cluster-unaware
// baseline: every request enters through one node, which relays ~2/3 of
// them to their owners over the peer transport.
func BenchmarkClusterRelayThroughOneNode(b *testing.B) {
	nodes, names := benchCluster(b, 300)
	b.SetParallelism(benchCallers)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c, err := server.Dial(nodes[0].clientAddr)
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		i := 0
		for pb.Next() {
			name := names[i%len(names)]
			i++
			res, err := c.Lookup(server.OriginAuto, discovery.NewID(name))
			if err != nil || !res.Found {
				b.Errorf("lookup %s: found=%v err=%v", name, res.Found, err)
				return
			}
		}
	})
}

// BenchmarkClusterOwnerDirect measures the oracle baseline: each
// goroutine holds a plain connection to every node and asks the owner
// directly with un-enveloped requests — the routing ideal the
// cluster-smart client is judged against.
func BenchmarkClusterOwnerDirect(b *testing.B) {
	nodes, names := benchCluster(b, 300)
	b.SetParallelism(benchCallers)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		conns := make([]*server.Client, len(nodes))
		for i, cn := range nodes {
			c, err := server.Dial(cn.clientAddr)
			if err != nil {
				b.Error(err)
				return
			}
			conns[i] = c
			defer c.Close()
		}
		i := 0
		for pb.Next() {
			name := names[i%len(names)]
			i++
			key := discovery.NewID(name)
			res, err := conns[discovery.OwnerOf(key, len(nodes))].Lookup(server.OriginAuto, key)
			if err != nil || !res.Found {
				b.Errorf("lookup %s: found=%v err=%v", name, res.Found, err)
				return
			}
		}
	})
}

// TestStaleRetryKeepsTraceID drives the client's own TWrongView
// refresh-and-retry loop with a caller-stamped trace ID and checks the
// ID survives the detour: the stale node records the zero-duration
// wrong_view bounce and the new owner records the execution, both under
// the one ID the caller chose.
func TestStaleRetryKeepsTraceID(t *testing.T) {
	peerAddrs := reserveAddrs(t, 3)
	clientAddrs := reserveAddrs(t, 3)

	// Cluster v1: two members on fixed client addresses.
	v1 := make([]*clusterNode, 2)
	for i, addr := range peerAddrs[:2] {
		cn := startNode(t, addr, peerAddrs[:2], clientAddrs[i], true)
		v1[cn.cluster.Self()] = cn
	}
	for _, cn := range v1 {
		if err := cn.node.Join(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	cl, err := cluster.Dial(cluster.Config{Seeds: []string{v1[0].clientAddr}, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Insert(cluster.OriginAuto, discovery.NewID("warm"), []byte("w")); err != nil {
		t.Fatal(err)
	}
	_, oldAddrs := cl.Members()

	// Reconfigure to v2 with tracers on every member; the client's view
	// is now stale.
	for _, cn := range v1 {
		cn.stop()
	}
	v2 := make([]*clusterNode, 3)
	tracers := make([]*trace.Tracer, 3)
	clientAddrOf := map[string]int{}
	for i, addr := range peerAddrs {
		tr := trace.New(trace.Config{SampleEvery: 1})
		cn := startNode(t, addr, peerAddrs, clientAddrs[i], true, tr)
		v2[cn.cluster.Self()] = cn
		tracers[cn.cluster.Self()] = tr
		clientAddrOf[cn.clientAddr] = cn.cluster.Self()
	}
	for _, cn := range v2 {
		if err := cn.node.Join(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	// Key whose stale route lands on a v2 node that does not own it
	// under the new split, so the retry really changes destination.
	var name string
	var staleSlot, newOwner int
	for i := 0; ; i++ {
		name = fmt.Sprintf("stale-trace-%d", i)
		key := discovery.NewID(name)
		staleAddr := oldAddrs[discovery.OwnerOf(key, len(oldAddrs))]
		newOwner = discovery.OwnerOf(key, 3)
		if hit, ok := clientAddrOf[staleAddr]; ok && hit != newOwner {
			staleSlot = hit
			break
		}
		if i > 10000 {
			t.Fatal("no key maps stale-owner to a non-owner")
		}
	}

	const fixedID uint64 = 0xFEEDBEEF12345678
	if _, err := cl.InsertTraced(cluster.OriginAuto, discovery.NewID(name), []byte(name), fixedID); err != nil {
		t.Fatalf("traced stale insert: %v", err)
	}
	if cl.Stats().Refreshes == 0 {
		t.Fatal("stale view served without a refresh; TWrongView never fired")
	}

	kindsWithID := func(slot int) map[trace.Kind]int {
		got := map[trace.Kind]int{}
		for _, sp := range tracers[slot].Snapshot() {
			if sp.Trace == fixedID {
				got[sp.Kind]++
			}
		}
		return got
	}
	if got := kindsWithID(staleSlot); got[trace.KindWrongView] == 0 {
		t.Fatalf("stale node %d has no wrong_view span for %016x (has %v)", staleSlot, fixedID, got)
	}
	got := kindsWithID(newOwner)
	for _, kind := range []trace.Kind{trace.KindDispatch, trace.KindQueueWait, trace.KindShardExec, trace.KindRespFlush} {
		if got[kind] == 0 {
			t.Fatalf("new owner %d missing %v span for %016x after the retry (has %v)", newOwner, kind, fixedID, got)
		}
	}
}
