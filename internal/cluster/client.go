// Package cluster is the cluster-smart client: it learns the member
// list and region split from any node, computes each key's owner
// locally, and sends every request directly to the owning node — one
// network hop, no server-side relay on the hot path.
//
// # Protocol
//
// On dial the client asks a seed for the membership table (TMembers →
// TMembersOK): the ordered client-serving addresses of every member
// plus the membership fingerprint. Ownership is a pure function of the
// ordered member list (discovery.OwnerOf), so client and cluster agree
// on every key's owner as long as their views match — and the
// fingerprint is how a mismatch is caught. Every routed request carries
// the client's fingerprint in a TRoute envelope; a node whose view
// disagrees refuses with TWrongView instead of executing, the client
// re-fetches the table and retries once against the newly computed
// owner. A stale client can therefore never execute a write on the
// wrong region: the fingerprint check runs before the request does.
//
// Members whose client address is not (yet) known — the table learns
// addresses from probe gossip, so a freshly started cluster may have
// gaps — are reached through the relay fallback: the plain un-enveloped
// request goes to the anchor node, which forwards it over the peer
// transport exactly like any cluster-unaware client's request.
//
// # Failover
//
// The member table also carries the cluster's replication factor, so
// the client knows every replica of a key, not just its owner. A
// connection-level failure against one replica — dial refused, the
// connection dropped, the call timed out — fails over to the key's next
// replica in rank order; any replica coordinates reads and quorum
// writes. A served response, including TError, is authoritative and is
// never retried elsewhere. A timed-out write may have been applied
// before the failover re-executes it (at-least-once, as with any
// retry); MPIL replica placement makes the re-execution benign.
//
// # Connections
//
// The client keeps one pipelined connection per node, multiplexing
// concurrent requests by reqID, mirroring the peer transport: each
// connection has a writer goroutine that drains an out-queue into
// vectored writes and a reader goroutine that delivers responses by
// correlator. The Client is safe for concurrent use; goroutines
// pipeline onto the shared per-node connections.
package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	discovery "discovery"
	"discovery/internal/batchio"
	"discovery/internal/idspace"
	"discovery/internal/metrics"
	"discovery/internal/wire"
)

// Config parameterizes a Client.
type Config struct {
	// Seeds are client-serving addresses of cluster nodes, any of which
	// can bootstrap the member table. Required (at least one).
	Seeds []string
	// DialTimeout bounds one node dial (default 500ms).
	DialTimeout time.Duration
	// CallTimeout bounds one request round trip (default 5s).
	CallTimeout time.Duration
	// Logf, when set, receives connection-level error lines.
	Logf func(format string, args ...any)
	// Metrics, when set, receives the client's cluster.* counters
	// (routed/relayed/refreshes). Nil keeps them in a private registry;
	// Stats reads the same counters either way.
	Metrics *metrics.Registry
}

// OriginAuto, passed as the origin of Insert/Lookup/Delete, lets the
// serving node pick the entry node deterministically from the key.
const OriginAuto = -1

// view is one fetched membership table: the fingerprint, the
// client-serving address per cluster slot ("" = not yet advertised),
// and the cluster's replication factor.
type view struct {
	hash  uint64
	addrs []string
	repl  int
}

// Stats counts how the client's requests traveled.
type Stats struct {
	// Routed requests went directly to the key's first tried replica
	// (one hop).
	Routed uint64
	// Relayed requests fell back to the anchor node because no replica's
	// client address was known; the anchor forwarded them (two hops).
	Relayed uint64
	// Refreshes counts member-table re-fetches forced by TWrongView.
	Refreshes uint64
	// Failovers counts per-replica retries after a connection-level
	// failure (dead node, dropped connection, call timeout).
	Failovers uint64
}

// Client routes requests directly to owning nodes. Safe for concurrent
// use. Create with Dial, stop with Close.
type Client struct {
	dialTimeout time.Duration
	callTimeout time.Duration
	logf        func(format string, args ...any)
	seeds       []string

	mu     sync.Mutex
	view   *view
	anchor string // last address that served the member table
	conns  map[string]*nodeConn
	closed bool

	// Registry-backed counters: Stats and a /metrics scrape of the same
	// registry read the same atomics, so they can never disagree.
	routed    *metrics.Counter
	relayed   *metrics.Counter
	refreshes *metrics.Counter
	failovers *metrics.Counter

	bufs sync.Pool // *[]byte outbound frame buffers
}

// Dial bootstraps a Client: it fetches the member table from the first
// reachable seed and is then ready to route.
func Dial(cfg Config) (*Client, error) {
	if len(cfg.Seeds) == 0 {
		return nil, errors.New("cluster: Config.Seeds is required")
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 500 * time.Millisecond
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &Client{
		dialTimeout: cfg.DialTimeout,
		callTimeout: cfg.CallTimeout,
		logf:        cfg.Logf,
		seeds:       append([]string(nil), cfg.Seeds...),
		conns:       make(map[string]*nodeConn),
		routed:      reg.Counter("cluster.routed"),
		relayed:     reg.Counter("cluster.relayed"),
		refreshes:   reg.Counter("cluster.refreshes"),
		failovers:   reg.Counter("cluster.failovers"),
	}
	c.bufs.New = func() any {
		b := make([]byte, 0, 512)
		return &b
	}
	if err := c.Refresh(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// Stats returns how requests traveled so far. The counts are read from
// the client's metrics registry, so they match a concurrent /metrics
// scrape exactly; reads are atomic and safe under live traffic.
func (c *Client) Stats() Stats {
	return Stats{Routed: c.routed.Value(), Relayed: c.relayed.Value(), Refreshes: c.refreshes.Value(), Failovers: c.failovers.Value()}
}

// Members returns the current member table (a copy) and its fingerprint.
func (c *Client) Members() (hash uint64, addrs []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.view == nil {
		return 0, nil
	}
	return c.view.hash, append([]string(nil), c.view.addrs...)
}

// Refresh re-fetches the member table from the anchor, the seeds, and
// every known member address, keeping the first success.
func (c *Client) Refresh() error {
	c.mu.Lock()
	candidates := make([]string, 0, 8)
	seen := map[string]bool{}
	add := func(a string) {
		if a != "" && !seen[a] {
			seen[a] = true
			candidates = append(candidates, a)
		}
	}
	add(c.anchor)
	for _, a := range c.seeds {
		add(a)
	}
	if c.view != nil {
		for _, a := range c.view.addrs {
			add(a)
		}
	}
	c.mu.Unlock()

	var errs []error
	for _, addr := range candidates {
		resp, err := c.call(addr, &wire.Msg{Type: wire.TMembers})
		if err != nil {
			errs = append(errs, err)
			continue
		}
		if resp.Type != wire.TMembersOK {
			errs = append(errs, fmt.Errorf("cluster: %s: %s", addr, resp.ErrorText()))
			continue
		}
		repl := int(resp.Replication)
		if repl < 1 {
			// Pre-replication servers omit the field; a zero factor means
			// an unreplicated cluster either way.
			repl = 1
		}
		v := &view{hash: resp.Cluster, addrs: append([]string(nil), resp.Members...), repl: repl}
		if len(v.addrs) == 0 {
			errs = append(errs, fmt.Errorf("cluster: %s advertised an empty member table", addr))
			continue
		}
		c.mu.Lock()
		c.view = v
		c.anchor = addr
		c.mu.Unlock()
		return nil
	}
	return fmt.Errorf("cluster: no seed served a member table: %v", errors.Join(errs...))
}

// wireOrigin translates the public origin convention (-1 = server
// picks) into the wire sentinel.
func wireOrigin(origin int) uint32 {
	if origin < 0 {
		return wire.OriginAuto
	}
	return uint32(origin)
}

// Insert publishes key with the given payload on the owning node.
// origin may be OriginAuto.
func (c *Client) Insert(origin int, key idspace.ID, value []byte) (wire.InsertReply, error) {
	return c.InsertTraced(origin, key, value, 0)
}

// InsertTraced is Insert with an explicit trace ID (0 = untraced): the
// ID rides the TRoute trailer, so the serving node records spans under
// it and /debug/traces joins them with the caller's measurements.
func (c *Client) InsertTraced(origin int, key idspace.ID, value []byte, trc uint64) (wire.InsertReply, error) {
	resp, err := c.do(wire.TInsert, key, wireOrigin(origin), value, wire.TInsertOK, trc)
	if err != nil {
		return wire.InsertReply{}, err
	}
	return resp.Insert, nil
}

// Lookup queries key on the owning node. origin may be OriginAuto.
func (c *Client) Lookup(origin int, key idspace.ID) (wire.LookupReply, error) {
	return c.LookupTraced(origin, key, 0)
}

// LookupTraced is Lookup with an explicit trace ID (0 = untraced).
func (c *Client) LookupTraced(origin int, key idspace.ID, trc uint64) (wire.LookupReply, error) {
	resp, err := c.do(wire.TLookup, key, wireOrigin(origin), nil, wire.TLookupOK, trc)
	if err != nil {
		return wire.LookupReply{}, err
	}
	return resp.Lookup, nil
}

// Delete removes origin's replicas of key on the owning node, returning
// how many were removed.
func (c *Client) Delete(origin int, key idspace.ID) (int, error) {
	return c.DeleteTraced(origin, key, 0)
}

// DeleteTraced is Delete with an explicit trace ID (0 = untraced).
func (c *Client) DeleteTraced(origin int, key idspace.ID, trc uint64) (int, error) {
	resp, err := c.do(wire.TDelete, key, wireOrigin(origin), nil, wire.TDeleteOK, trc)
	if err != nil {
		return 0, err
	}
	return int(resp.Deleted), nil
}

// do routes one request: replicas computed locally from the current
// view and tried in failover rank order (or plain relay through the
// anchor when no replica's address is known), one refresh-and-retry on
// TWrongView. trc, when nonzero, is stamped on the TRoute trailer —
// including failover and post-refresh retries, so one trace ID covers
// the whole detour.
func (c *Client) do(typ wire.Type, key idspace.ID, origin uint32, value []byte, want wire.Type, trc uint64) (*wire.Msg, error) {
	for attempt := 0; ; attempt++ {
		c.mu.Lock()
		v := c.view
		anchor := c.anchor
		c.mu.Unlock()
		if v == nil {
			return nil, errors.New("cluster: no member table (closed?)")
		}

		// Walk the key's replicas in rank order, skipping members whose
		// client address is unknown. A connection-level failure moves to
		// the next replica — any replica coordinates — while a served
		// response, including TError, is authoritative and ends the walk.
		var resp *wire.Msg
		var addr string
		var lastErr error
		tried := 0
		for _, r := range discovery.ReplicasOf(key, len(v.addrs), v.repl) {
			raddr := v.addrs[r]
			if raddr == "" {
				continue
			}
			req := &wire.Msg{Type: wire.TRoute, RouteKind: typ, Cluster: v.hash, Key: key, Origin: origin, Value: value}
			if trc != 0 {
				req.Traced = true
				req.Trace = trc
			}
			if tried == 0 {
				c.routed.Inc()
			} else {
				c.failovers.Inc()
				c.logf("cluster: %v failing over to %s: %v", typ, raddr, lastErr)
			}
			tried++
			m, err := c.call(raddr, req)
			if err != nil {
				lastErr = err
				continue
			}
			resp = m
			addr = raddr
			break
		}
		switch {
		case resp != nil:
		case tried > 0:
			return nil, fmt.Errorf("cluster: all %d reachable replicas failed, last: %w", tried, lastErr)
		default:
			// No replica address known yet: relay the plain request
			// through the anchor, which forwards it over the peer
			// transport (with the server side's own replica failover).
			// Correct, just two hops instead of one.
			req := &wire.Msg{Type: typ, Key: key, Origin: origin, Value: value}
			c.relayed.Inc()
			m, err := c.call(anchor, req)
			if err != nil {
				return nil, err
			}
			resp = m
			addr = anchor
		}
		switch resp.Type {
		case want:
			return resp, nil
		case wire.TWrongView:
			// The node refused under a different membership fingerprint:
			// this view is stale (or the node's is — a refresh resolves
			// either way). Re-fetch and re-route once; a second refusal
			// means the cluster is reconfiguring faster than we can learn.
			if attempt >= 1 {
				return nil, fmt.Errorf("cluster: %s still refuses after refresh (its view %016x)", addr, resp.Cluster)
			}
			c.refreshes.Inc()
			if rerr := c.Refresh(); rerr != nil {
				return nil, fmt.Errorf("cluster: view rejected by %s and refresh failed: %w", addr, rerr)
			}
			continue
		case wire.TError:
			return nil, fmt.Errorf("cluster: %s: %s", addr, resp.ErrorText())
		default:
			return nil, fmt.Errorf("cluster: %s: response type %v, want %v", addr, resp.Type, want)
		}
	}
}

// Close severs every node connection and fails in-flight calls.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	conns := make([]*nodeConn, 0, len(c.conns))
	for _, nc := range c.conns {
		conns = append(conns, nc)
	}
	c.mu.Unlock()
	for _, nc := range conns {
		c.teardown(nc)
	}
}

// nodeConn is one pipelined connection to one node: requests multiplex
// by reqID, a writer goroutine drains the out-queue into vectored
// writes, a reader goroutine delivers responses to waiting calls.
type nodeConn struct {
	addr string
	nc   net.Conn
	out  chan *[]byte
	dead chan struct{}
	once sync.Once

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *wire.Msg
}

func (nc *nodeConn) kill() { nc.once.Do(func() { close(nc.dead) }) }

// conn returns the live connection to addr, dialing under the lock if
// needed (concurrent callers to one cold node serialize on the dial;
// everyone else proceeds).
func (c *Client) conn(addr string) (*nodeConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("cluster: client closed")
	}
	if nc := c.conns[addr]; nc != nil {
		c.mu.Unlock()
		return nc, nil
	}
	c.mu.Unlock()

	raw, err := net.DialTimeout("tcp", addr, c.dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
	}
	nc := &nodeConn{
		addr:    addr,
		nc:      raw,
		out:     make(chan *[]byte, 64),
		dead:    make(chan struct{}),
		pending: make(map[uint64]chan *wire.Msg),
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		raw.Close()
		return nil, errors.New("cluster: client closed")
	}
	if existing := c.conns[addr]; existing != nil {
		// A concurrent dial won; use its connection.
		c.mu.Unlock()
		raw.Close()
		return existing, nil
	}
	c.conns[addr] = nc
	c.mu.Unlock()
	go c.readLoop(nc)
	go c.writeLoop(nc)
	return nc, nil
}

// call sends m to the node at addr and waits for its response.
func (c *Client) call(addr string, m *wire.Msg) (*wire.Msg, error) {
	nc, err := c.conn(addr)
	if err != nil {
		return nil, err
	}
	ch := make(chan *wire.Msg, 1)
	nc.mu.Lock()
	nc.nextID++
	id := nc.nextID
	nc.pending[id] = ch
	nc.mu.Unlock()
	m.ReqID = id
	bp := c.bufs.Get().(*[]byte)
	frame, err := m.Append((*bp)[:0])
	if err != nil {
		nc.mu.Lock()
		delete(nc.pending, id)
		nc.mu.Unlock()
		c.bufs.Put(bp)
		return nil, err
	}
	*bp = frame
	select {
	case nc.out <- bp:
	case <-nc.dead:
		nc.mu.Lock()
		delete(nc.pending, id)
		nc.mu.Unlock()
		c.bufs.Put(bp)
		return nil, fmt.Errorf("cluster: %s: connection lost before send", addr)
	}
	timer := time.NewTimer(c.callTimeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		if resp == nil {
			return nil, fmt.Errorf("cluster: %s: connection lost awaiting reply", addr)
		}
		return resp, nil
	case <-timer.C:
		nc.mu.Lock()
		delete(nc.pending, id)
		nc.mu.Unlock()
		return nil, fmt.Errorf("cluster: %s: no reply within %s", addr, c.callTimeout)
	}
}

// writeLoop drains the out-queue into vectored writes until the
// connection dies, mirroring the peer transport's writer.
func (c *Client) writeLoop(nc *nodeConn) {
	slots := make([]*[]byte, 0, batchio.DefaultMaxFrames)
	backing := make(net.Buffers, 0, batchio.DefaultMaxFrames)
	broken := false
	for {
		slots = slots[:0]
		bufs := backing[:0]
		var first *[]byte
		select {
		case first = <-nc.out:
		case <-nc.dead:
			select {
			case first = <-nc.out:
			default:
				return
			}
		}
		slots = append(slots, first)
		bufs = append(bufs, *first)
		total := len(*first)
	drain:
		for len(slots) < batchio.DefaultMaxFrames && total < batchio.DefaultMaxBytes {
			select {
			case bp := <-nc.out:
				slots = append(slots, bp)
				bufs = append(bufs, *bp)
				total += len(*bp)
			default:
				break drain
			}
		}
		backing = bufs
		if !broken {
			nc.nc.SetWriteDeadline(time.Now().Add(c.callTimeout)) //nolint:errcheck // surfaced by WriteTo
			if _, err := bufs.WriteTo(nc.nc); err != nil {
				broken = true
				c.logf("cluster: write to %s: %v", nc.addr, err)
				c.teardown(nc)
			}
		}
		for _, bp := range slots {
			c.bufs.Put(bp)
		}
	}
}

// readLoop delivers responses to waiting calls by reqID. Each response
// gets a fresh Msg: it crosses goroutines to its caller.
func (c *Client) readLoop(nc *nodeConn) {
	br := bufio.NewReaderSize(nc.nc, 32<<10)
	var scratch []byte
	for {
		body, err := wire.ReadFrame(br, &scratch)
		if err != nil {
			break
		}
		m := new(wire.Msg)
		if err := m.Decode(body); err != nil {
			c.logf("cluster: %s: bad response frame: %v", nc.addr, err)
			break
		}
		nc.mu.Lock()
		ch := nc.pending[m.ReqID]
		delete(nc.pending, m.ReqID)
		nc.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
	c.teardown(nc)
}

// teardown severs one node connection and fails its pending calls. The
// next request to that node redials.
func (c *Client) teardown(nc *nodeConn) {
	nc.kill()
	nc.nc.Close()
	c.mu.Lock()
	if c.conns[nc.addr] == nc {
		delete(c.conns, nc.addr)
	}
	c.mu.Unlock()
	nc.mu.Lock()
	for id, ch := range nc.pending {
		delete(nc.pending, id)
		ch <- nil // buffered; never blocks
	}
	nc.mu.Unlock()
}
