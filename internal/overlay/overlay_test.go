package overlay

import (
	"math/rand"
	"testing"
	"time"

	"discovery/internal/idspace"
	"discovery/internal/topology"
)

func TestNewAssignsUniqueIDs(t *testing.T) {
	g := topology.Ring(100)
	nw := New(g, rand.New(rand.NewSource(1)), nil)
	seen := make(map[idspace.ID]bool)
	for i := 0; i < nw.N(); i++ {
		id := nw.ID(i)
		if seen[id] {
			t.Fatalf("duplicate ID at node %d", i)
		}
		seen[id] = true
		if nw.Lookup(id) != i {
			t.Fatalf("Lookup(ID(%d)) = %d", i, nw.Lookup(id))
		}
	}
}

func TestLookupMissing(t *testing.T) {
	nw := New(topology.Ring(4), rand.New(rand.NewSource(1)), nil)
	if got := nw.Lookup(idspace.FromUint64(1234567)); got != -1 {
		t.Errorf("Lookup of foreign ID = %d, want -1", got)
	}
}

func TestNeighborsMatchGraph(t *testing.T) {
	g := topology.Grid(3, 3)
	nw := New(g, rand.New(rand.NewSource(2)), nil)
	for i := 0; i < g.N(); i++ {
		if nw.Degree(i) != g.Degree(i) {
			t.Errorf("node %d degree mismatch", i)
		}
		got := nw.Neighbors(i)
		want := g.Neighbors(i)
		if len(got) != len(want) {
			t.Fatalf("node %d neighbor list mismatch", i)
		}
	}
}

func TestDefaultAvailabilityAlwaysOn(t *testing.T) {
	nw := New(topology.Ring(5), rand.New(rand.NewSource(1)), nil)
	for i := 0; i < 5; i++ {
		if !nw.Online(i, 0) || !nw.Online(i, time.Hour) {
			t.Errorf("node %d offline under AlwaysOn", i)
		}
	}
}

type oddOffline struct{}

func (oddOffline) Online(node int, _ time.Duration) bool { return node%2 == 0 }

func TestCustomAvailability(t *testing.T) {
	nw := New(topology.Ring(6), rand.New(rand.NewSource(1)), oddOffline{})
	for i := 0; i < 6; i++ {
		if nw.Online(i, 0) != (i%2 == 0) {
			t.Errorf("node %d availability wrong", i)
		}
	}
}

func TestNewWithIDs(t *testing.T) {
	g := topology.Ring(3)
	ids := []idspace.ID{idspace.FromUint64(1), idspace.FromUint64(2), idspace.FromUint64(3)}
	nw, err := NewWithIDs(g, ids, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range ids {
		if nw.ID(i) != want {
			t.Errorf("ID(%d) = %v, want %v", i, nw.ID(i), want)
		}
	}
	// The network must own its copy.
	ids[0] = idspace.FromUint64(99)
	if nw.ID(0) == idspace.FromUint64(99) {
		t.Error("NewWithIDs aliases caller slice")
	}
}

func TestNewWithIDsErrors(t *testing.T) {
	g := topology.Ring(3)
	if _, err := NewWithIDs(g, []idspace.ID{idspace.FromUint64(1)}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	dup := []idspace.ID{idspace.FromUint64(1), idspace.FromUint64(1), idspace.FromUint64(2)}
	if _, err := NewWithIDs(g, dup, nil); err == nil {
		t.Error("duplicate IDs accepted")
	}
}

func TestDeterministicIDAssignment(t *testing.T) {
	build := func() *Network {
		return New(topology.Ring(50), rand.New(rand.NewSource(5)), nil)
	}
	a, b := build(), build()
	for i := 0; i < 50; i++ {
		if a.ID(i) != b.ID(i) {
			t.Fatalf("same seed produced different ID at node %d", i)
		}
	}
}
