// Package overlay binds a topology graph to the ID space: it assigns every
// graph node a 160-bit identifier and tracks per-node availability. It is
// the substrate MPIL routes over — deliberately structure-free, because
// MPIL's whole point is that the graph underneath may be arbitrary.
package overlay

import (
	"fmt"
	"math/rand"
	"time"

	"discovery/internal/idspace"
	"discovery/internal/topology"
)

// Availability answers "is node i online at virtual time t". The static
// experiments use AlwaysOn; the perturbation experiments plug in a
// flapping schedule from internal/perturb.
type Availability interface {
	Online(node int, at time.Duration) bool
}

// AlwaysOn is the Availability under which every node is permanently
// online, the regime of the paper's static-overlay experiments.
type AlwaysOn struct{}

// Online implements Availability; it is always true.
func (AlwaysOn) Online(int, time.Duration) bool { return true }

var _ Availability = AlwaysOn{}

// Network is an overlay: a graph, an ID per node, and an availability
// model. It is a passive data structure — routing engines (MPIL, Pastry)
// drive it.
type Network struct {
	graph *topology.Graph
	ids   []idspace.ID
	index map[idspace.ID]int
	avail Availability
}

// New assigns nodes of g unique random IDs drawn from rng and wires in the
// availability model. A nil avail defaults to AlwaysOn.
func New(g *topology.Graph, rng *rand.Rand, avail Availability) *Network {
	if avail == nil {
		avail = AlwaysOn{}
	}
	n := g.N()
	ids := make([]idspace.ID, n)
	index := make(map[idspace.ID]int, n)
	for i := 0; i < n; i++ {
		for {
			id := idspace.Random(rng)
			if _, dup := index[id]; !dup {
				ids[i] = id
				index[id] = i
				break
			}
		}
	}
	return &Network{graph: g, ids: ids, index: index, avail: avail}
}

// NewWithIDs builds a network with caller-chosen IDs, used by tests that
// need precise digit patterns. IDs must be unique and match g's node
// count.
func NewWithIDs(g *topology.Graph, ids []idspace.ID, avail Availability) (*Network, error) {
	if len(ids) != g.N() {
		return nil, fmt.Errorf("overlay: %d IDs for %d nodes", len(ids), g.N())
	}
	if avail == nil {
		avail = AlwaysOn{}
	}
	index := make(map[idspace.ID]int, len(ids))
	for i, id := range ids {
		if j, dup := index[id]; dup {
			return nil, fmt.Errorf("overlay: duplicate ID %v at nodes %d and %d", id, j, i)
		}
		index[id] = i
	}
	own := make([]idspace.ID, len(ids))
	copy(own, ids)
	return &Network{graph: g, ids: own, index: index, avail: avail}, nil
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.graph.N() }

// ID returns node i's identifier.
func (nw *Network) ID(i int) idspace.ID { return nw.ids[i] }

// Lookup returns the node index owning id, or -1 if no node has it.
func (nw *Network) Lookup(id idspace.ID) int {
	if i, ok := nw.index[id]; ok {
		return i
	}
	return -1
}

// Neighbors returns node i's adjacency list. The slice is shared with the
// underlying graph and must not be mutated.
func (nw *Network) Neighbors(i int) []int { return nw.graph.Neighbors(i) }

// Degree returns node i's degree.
func (nw *Network) Degree(i int) int { return nw.graph.Degree(i) }

// Graph exposes the underlying topology (read-only by convention).
func (nw *Network) Graph() *topology.Graph { return nw.graph }

// Online reports node i's availability at virtual time t.
func (nw *Network) Online(i int, at time.Duration) bool { return nw.avail.Online(i, at) }
