// Package trace is a sampled, allocation-free per-request span recorder.
//
// A trace is a 64-bit ID stamped on one client request; every layer the
// request crosses — server dispatch, shard queue, WAL group commit, peer
// hop, response writev — records a fixed-size span against that ID. The
// ID travels across processes in the wire trailer (internal/wire), so a
// relayed or route-directed request leaves joinable spans on every node
// it touches. /debug/traces renders recent traces as JSON with spans
// nested by time containment.
//
// The recorder is built for the serving hot path:
//
//   - Sampling is one atomic increment; unsampled requests cost a single
//     branch everywhere else (Record with trace 0 is a no-op, and all
//     methods are nil-receiver safe so untraced builds pass a nil
//     *Tracer straight through).
//   - Record writes a fixed-size slot in a ring buffer — no allocation,
//     no locks, no growth. Rings are selected by trace-ID hash so
//     concurrent requests spread across rings instead of contending on
//     one cursor.
//   - Slots are seqlock-versioned atomics: writers never block, and
//     Snapshot retries or skips slots that are mid-write, so a scrape
//     can never tear a span or stall the data path.
//
// The buffer is deliberately lossy: old spans are overwritten and a
// trace whose spans straddle a wrap may render incomplete. That is the
// right trade for always-on diagnostics of a saturated server.
package trace

import (
	"sync/atomic"
	"time"
)

// Kind labels what a span measured.
type Kind uint8

// Span kinds, in rough request order.
const (
	// KindDispatch is the server's read→enqueue step: frame decoded,
	// request validated and routed to a shard queue.
	KindDispatch Kind = iota + 1
	// KindQueueWait is the time a task sat in its shard queue before a
	// worker picked it up.
	KindQueueWait
	// KindShardExec is the task's share of shard batch execution,
	// excluding the WAL hook.
	KindShardExec
	// KindWALCommit is the task's share of the batch's WAL append +
	// group-commit fsync.
	KindWALCommit
	// KindPeerCall is one node-to-node Transport.Call round trip.
	KindPeerCall
	// KindRespFlush is a response's enqueue→writev-flush time on the
	// server's outbound path.
	KindRespFlush
	// KindForward is a relay's whole forward step: foreign key detected
	// to owner's reply relayed back.
	KindForward
	// KindRouteExec is the owner-side execution of a routed (TRoute)
	// request arriving over the peer transport.
	KindRouteExec
	// KindRepairExec is the responder-side build of one TRepair page.
	KindRepairExec
	// KindTransferExec is the receiver-side import of one TTransfer.
	KindTransferExec
	// KindWrongView is a refusal of a stale-membership TRoute; zero
	// duration, it marks which node bounced the request.
	KindWrongView
	// KindReplicateExec is the co-replica-side apply of one TReplicate
	// (quorum-write fan-out) mutation.
	KindReplicateExec
)

// String returns the JSON/log name of the kind.
func (k Kind) String() string {
	switch k {
	case KindDispatch:
		return "dispatch"
	case KindQueueWait:
		return "queue_wait"
	case KindShardExec:
		return "shard_exec"
	case KindWALCommit:
		return "wal_commit"
	case KindPeerCall:
		return "peer_call"
	case KindRespFlush:
		return "resp_flush"
	case KindForward:
		return "forward"
	case KindRouteExec:
		return "route_exec"
	case KindRepairExec:
		return "repair_exec"
	case KindTransferExec:
		return "transfer_exec"
	case KindWrongView:
		return "wrong_view"
	case KindReplicateExec:
		return "replicate_exec"
	default:
		return "unknown"
	}
}

// Span is one recorded interval of a trace, as returned by Snapshot.
type Span struct {
	Trace uint64
	Kind  Kind
	// Node is the recording process's cluster index (Config.Node).
	Node uint32
	// Start is wall-clock unix nanoseconds; Dur the span length.
	Start int64
	Dur   int64
	// Extra is kind-specific context: batch size for exec/flush spans,
	// peer index for calls, wrapped type for forwards.
	Extra uint64
}

// slot is one seqlock-versioned span record. Every word is atomic so a
// concurrent Snapshot is race-free by construction; seq is bumped to odd
// before the payload stores and back to even after, letting readers
// detect and discard torn slots.
type slot struct {
	seq   atomic.Uint64
	trace atomic.Uint64
	start atomic.Int64
	dur   atomic.Int64
	// meta packs kind (high 32 bits) and node (low 32 bits).
	meta  atomic.Uint64
	extra atomic.Uint64
}

// ring is an independent span buffer with its own write cursor.
type ring struct {
	next  atomic.Uint64
	slots []slot
}

// Config sizes a Tracer.
type Config struct {
	// Node is the cluster index stamped on every span this process
	// records, so joined traces show which node each span ran on.
	Node uint32
	// SampleEvery samples one in N locally-originated requests; 0
	// disables local sampling (propagated trace IDs are still
	// recorded).
	SampleEvery int
	// Rings is the number of independent span rings (default 4).
	Rings int
	// SlotsPerRing is each ring's capacity, rounded up to a power of
	// two (default 1024).
	SlotsPerRing int
	// Seed perturbs the trace-ID stream; 0 derives one from the clock
	// so concurrent processes don't collide.
	Seed uint64
}

// Tracer records sampled request spans. All methods are safe on a nil
// receiver, so callers thread a possibly-nil *Tracer without guards.
type Tracer struct {
	node    uint32
	every   uint64
	seed    uint64
	count   atomic.Uint64
	rings   []ring
	mask    uint64 // per-ring slot index mask
	ringCnt uint64
}

// New builds a Tracer from cfg.
func New(cfg Config) *Tracer {
	if cfg.Rings <= 0 {
		cfg.Rings = 4
	}
	if cfg.SlotsPerRing <= 0 {
		cfg.SlotsPerRing = 1024
	}
	n := 1
	for n < cfg.SlotsPerRing {
		n <<= 1
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano()) | 1
	}
	t := &Tracer{
		node:    cfg.Node,
		every:   uint64(cfg.SampleEvery),
		seed:    seed,
		rings:   make([]ring, cfg.Rings),
		mask:    uint64(n - 1),
		ringCnt: uint64(cfg.Rings),
	}
	for i := range t.rings {
		t.rings[i].slots = make([]slot, n)
	}
	return t
}

// splitmix64 is the finalizer of Vigna's SplitMix64: a cheap bijection
// that turns a counter into a well-spread 64-bit ID.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Sample decides whether a new locally-originated request is traced,
// returning its fresh trace ID or 0. One atomic add per call; zero
// allocations either way.
func (t *Tracer) Sample() uint64 {
	if t == nil || t.every == 0 {
		return 0
	}
	n := t.count.Add(1)
	if n%t.every != 0 {
		return 0
	}
	id := splitmix64(t.seed + n)
	if id == 0 {
		id = 1
	}
	return id
}

// Record stores one span. It is a no-op for trace 0 (unsampled) and on a
// nil Tracer, and never allocates.
func (t *Tracer) Record(trace uint64, kind Kind, start time.Time, dur time.Duration, extra uint64) {
	if t == nil || trace == 0 {
		return
	}
	t.RecordNanos(trace, kind, start.UnixNano(), int64(dur), extra)
}

// RecordNanos is Record for callers that already hold unix-nano
// timestamps (e.g. the writev flush path, which stamps enqueue time once
// per frame).
func (t *Tracer) RecordNanos(trace uint64, kind Kind, startUnixNanos, durNanos int64, extra uint64) {
	if t == nil || trace == 0 {
		return
	}
	r := &t.rings[(splitmix64(trace))%t.ringCnt]
	s := &r.slots[(r.next.Add(1)-1)&t.mask]
	s.seq.Add(1) // odd: write in progress
	s.trace.Store(trace)
	s.start.Store(startUnixNanos)
	s.dur.Store(durNanos)
	s.meta.Store(uint64(kind)<<32 | uint64(t.node))
	s.extra.Store(extra)
	s.seq.Add(1) // even: consistent
}

// Snapshot copies every consistent recorded span out of the rings. Spans
// mid-write are skipped; order is unspecified.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	var out []Span
	for ri := range t.rings {
		r := &t.rings[ri]
		for si := range r.slots {
			s := &r.slots[si]
			for attempt := 0; attempt < 2; attempt++ {
				v0 := s.seq.Load()
				if v0%2 != 0 {
					continue // writer active, retry once
				}
				sp := Span{
					Trace: s.trace.Load(),
					Start: s.start.Load(),
					Dur:   s.dur.Load(),
					Extra: s.extra.Load(),
				}
				meta := s.meta.Load()
				sp.Kind = Kind(meta >> 32)
				sp.Node = uint32(meta)
				if s.seq.Load() != v0 {
					continue // torn by a concurrent writer, retry once
				}
				if sp.Trace != 0 {
					out = append(out, sp)
				}
				break
			}
		}
	}
	return out
}
