package trace

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
)

// JSONSpan is one span of a rendered trace; children are spans whose
// interval the parent's contains.
type JSONSpan struct {
	Kind  string      `json:"kind"`
	Node  uint32      `json:"node"`
	Start int64       `json:"start_unix_ns"`
	Dur   int64       `json:"dur_ns"`
	Extra uint64      `json:"extra,omitempty"`
	Spans []*JSONSpan `json:"spans,omitempty"`
}

// JSONTrace is one rendered trace: every recorded span sharing an ID,
// nested by time containment.
type JSONTrace struct {
	ID string `json:"id"`
	// Start is the earliest span start; Dur spans to the latest end.
	Start int64       `json:"start_unix_ns"`
	Dur   int64       `json:"dur_ns"`
	Spans []*JSONSpan `json:"spans"`
}

// Traces groups the current snapshot into rendered traces, most recent
// first, at most limit of them (0 = all).
func (t *Tracer) Traces(limit int) []JSONTrace {
	byID := make(map[uint64][]Span)
	for _, sp := range t.Snapshot() {
		byID[sp.Trace] = append(byID[sp.Trace], sp)
	}
	out := make([]JSONTrace, 0, len(byID))
	for id, spans := range byID {
		out = append(out, buildTrace(id, spans))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Start > out[j].Start })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// buildTrace nests one trace's spans by time containment: a span becomes
// a child of the nearest earlier span whose interval covers it.
func buildTrace(id uint64, spans []Span) JSONTrace {
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Dur > spans[j].Dur
	})
	tr := JSONTrace{ID: fmt.Sprintf("%016x", id), Start: spans[0].Start}
	end := spans[0].Start
	var stack []*JSONSpan
	for _, sp := range spans {
		js := &JSONSpan{
			Kind:  sp.Kind.String(),
			Node:  sp.Node,
			Start: sp.Start,
			Dur:   sp.Dur,
			Extra: sp.Extra,
		}
		if e := sp.Start + sp.Dur; e > end {
			end = e
		}
		for len(stack) > 0 {
			p := stack[len(stack)-1]
			if p.Start <= js.Start && p.Start+p.Dur >= js.Start+js.Dur {
				break
			}
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			tr.Spans = append(tr.Spans, js)
		} else {
			p := stack[len(stack)-1]
			p.Spans = append(p.Spans, js)
		}
		stack = append(stack, js)
	}
	tr.Dur = end - tr.Start
	return tr
}

// Handler serves the recent sampled traces as JSON — mount it at
// /debug/traces next to /metrics. ?n= caps the trace count (default
// 64).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		limit := 64
		if s := req.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil && v >= 0 {
				limit = v
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Traces []JSONTrace `json:"traces"`
		}{t.Traces(limit)})
	})
}
