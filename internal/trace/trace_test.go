package trace

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestSampleEveryN(t *testing.T) {
	tr := New(Config{SampleEvery: 4, Seed: 7})
	seen := map[uint64]bool{}
	sampled := 0
	for i := 0; i < 400; i++ {
		id := tr.Sample()
		if id == 0 {
			continue
		}
		sampled++
		if seen[id] {
			t.Fatalf("duplicate trace ID %#x", id)
		}
		seen[id] = true
	}
	if sampled != 100 {
		t.Fatalf("1-in-4 sampling over 400 calls picked %d, want 100", sampled)
	}
}

func TestSampleDisabled(t *testing.T) {
	tr := New(Config{SampleEvery: 0})
	for i := 0; i < 100; i++ {
		if id := tr.Sample(); id != 0 {
			t.Fatalf("disabled sampler returned %#x", id)
		}
	}
	var nilTracer *Tracer
	if id := nilTracer.Sample(); id != 0 {
		t.Fatalf("nil tracer sampled %#x", id)
	}
	// Nil and zero-trace records must be harmless no-ops.
	nilTracer.Record(1, KindShardExec, time.Now(), time.Millisecond, 0)
	tr.Record(0, KindShardExec, time.Now(), time.Millisecond, 0)
	if got := tr.Snapshot(); len(got) != 0 {
		t.Fatalf("unsampled records left %d spans", len(got))
	}
}

func TestRecordSnapshot(t *testing.T) {
	tr := New(Config{Node: 2, SampleEvery: 1, Seed: 1})
	id := tr.Sample()
	base := time.Now()
	tr.Record(id, KindQueueWait, base, 10*time.Microsecond, 0)
	tr.Record(id, KindShardExec, base.Add(10*time.Microsecond), 5*time.Microsecond, 8)
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("snapshot has %d spans, want 2", len(spans))
	}
	for _, sp := range spans {
		if sp.Trace != id {
			t.Fatalf("span trace %#x, want %#x", sp.Trace, id)
		}
		if sp.Node != 2 {
			t.Fatalf("span node %d, want 2", sp.Node)
		}
	}
}

func TestRingWrapKeepsBound(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Rings: 1, SlotsPerRing: 8, Seed: 3})
	now := time.Now()
	for i := 0; i < 100; i++ {
		tr.Record(uint64(i+1), KindShardExec, now, time.Microsecond, 0)
	}
	spans := tr.Snapshot()
	if len(spans) != 8 {
		t.Fatalf("1x8 ring holds %d spans after 100 records, want 8", len(spans))
	}
	for _, sp := range spans {
		if sp.Trace <= 100-8 {
			t.Fatalf("ring kept stale trace %d", sp.Trace)
		}
	}
}

func TestTracesNestingByContainment(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Seed: 9})
	const id = 0x42
	// A 100µs forward containing a 60µs route_exec containing a 20µs
	// wal_commit, plus a disjoint resp_flush sibling of route_exec.
	tr.RecordNanos(id, KindForward, 1000, 100_000, 0)
	tr.RecordNanos(id, KindRouteExec, 2000, 60_000, 0)
	tr.RecordNanos(id, KindWALCommit, 3000, 20_000, 0)
	tr.RecordNanos(id, KindRespFlush, 90_000, 10_000, 0)
	got := tr.Traces(0)
	if len(got) != 1 {
		t.Fatalf("got %d traces, want 1", len(got))
	}
	root := got[0]
	if root.ID != "0000000000000042" {
		t.Fatalf("trace id %q", root.ID)
	}
	if len(root.Spans) != 1 || root.Spans[0].Kind != "forward" {
		t.Fatalf("root spans: %+v", root.Spans)
	}
	fwd := root.Spans[0]
	if len(fwd.Spans) != 2 || fwd.Spans[0].Kind != "route_exec" || fwd.Spans[1].Kind != "resp_flush" {
		t.Fatalf("forward children: %+v", fwd.Spans)
	}
	if len(fwd.Spans[0].Spans) != 1 || fwd.Spans[0].Spans[0].Kind != "wal_commit" {
		t.Fatalf("route_exec children: %+v", fwd.Spans[0].Spans)
	}
	if root.Start != 1000 || root.Dur != 100_000 {
		t.Fatalf("trace window [%d +%d], want [1000 +100000]", root.Start, root.Dur)
	}
}

func TestHandlerJSON(t *testing.T) {
	tr := New(Config{Node: 1, SampleEvery: 1, Seed: 5})
	id := tr.Sample()
	tr.RecordNanos(id, KindQueueWait, 100, 50, 0)
	tr.RecordNanos(id, KindShardExec, 150, 30, 4)

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=10", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var body struct {
		Traces []JSONTrace `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(body.Traces) != 1 || len(body.Traces[0].Spans) == 0 {
		t.Fatalf("traces: %+v", body.Traces)
	}
}

// TestRecordPathZeroAllocs is the CI alloc gate for the tentpole's
// "zero-cost" claim: the unsampled path (nil tracer, disabled sampler,
// trace-0 record) and the sampled record path both allocate nothing.
func TestRecordPathZeroAllocs(t *testing.T) {
	var nilTracer *Tracer
	off := New(Config{SampleEvery: 0})
	on := New(Config{SampleEvery: 1, Seed: 11})
	start := time.Now()

	if a := testing.AllocsPerRun(200, func() {
		if nilTracer.Sample() != 0 {
			t.Fatal("nil sampled")
		}
		nilTracer.Record(1, KindShardExec, start, time.Microsecond, 0)
	}); a != 0 {
		t.Fatalf("nil-tracer path allocates %.1f/op", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		if off.Sample() != 0 {
			t.Fatal("disabled sampled")
		}
		off.Record(0, KindShardExec, start, time.Microsecond, 0)
	}); a != 0 {
		t.Fatalf("unsampled path allocates %.1f/op", a)
	}
	if a := testing.AllocsPerRun(200, func() {
		id := on.Sample()
		on.Record(id, KindShardExec, start, time.Microsecond, 7)
	}); a != 0 {
		t.Fatalf("sampled record path allocates %.1f/op", a)
	}
}

// TestConcurrentRecordSnapshot drives writers against snapshotters so
// the race detector can prove the seqlock protocol sound.
func TestConcurrentRecordSnapshot(t *testing.T) {
	tr := New(Config{SampleEvery: 1, Rings: 2, SlotsPerRing: 64, Seed: 13})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := time.Now()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tr.Record(uint64(w*1_000_000+i+1), Kind(1+i%11), base, time.Duration(i), uint64(i))
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		for _, sp := range tr.Snapshot() {
			if sp.Trace == 0 || sp.Kind == 0 {
				t.Errorf("torn span: %+v", sp)
			}
		}
	}
	close(stop)
	wg.Wait()
}
