// Package batchio coalesces queued response frames into vectored
// writes: the shared mechanics behind discoveryd's connection writers
// (internal/server) and the peer listener's response writers
// (internal/p2p).
//
// A producer encodes each frame into a pooled buffer and sends the
// pointer down a channel. The consumer blocks for the first frame, then
// greedily drains whatever else is already queued — bounded by a frame
// count and a byte budget — and hands the whole run to the kernel as one
// writev(2) via net.Buffers. A pipelining peer's responses therefore
// cost about one syscall per batch instead of one per response, and the
// caps keep a single flush from monopolizing the socket (or pinning an
// unbounded amount of pooled memory) when the queue is deep.
//
// Collect appends into caller-owned slices, so a writer loop that
// truncates and reuses them runs allocation-free in steady state — the
// same buffer discipline as internal/wire and internal/wal.
package batchio

import (
	"net"
	"time"

	"discovery/internal/metrics"
)

// Default coalescing budgets: at most DefaultMaxFrames frames and
// roughly DefaultMaxBytes bytes per vectored write. 64 frames comfortably
// covers a deep pipelining burst, and 256 KiB stays well under typical
// socket buffer sizes so one batch rarely blocks mid-write. Both are
// overridable per connection (server.Config.CoalesceFrames/Bytes).
const (
	DefaultMaxFrames = 64
	DefaultMaxBytes  = 256 << 10
)

// Stats meters a WriteLoop's coalescing: vectored writes issued, frames
// and bytes flushed, and the frames-per-write distribution (the
// coalescing ratio). The metric fields are nil-safe, so a zero Stats —
// or a nil *Stats — meters nothing; observation happens only after a
// successful write.
type Stats struct {
	Writes         *metrics.Counter
	Frames         *metrics.Counter
	Bytes          *metrics.Counter
	FramesPerWrite *metrics.Histogram
}

// observe records one successful vectored write of frames totalling n
// bytes.
func (st *Stats) observe(frames int, n int) {
	if st == nil {
		return
	}
	st.Writes.Inc()
	st.Frames.Add(uint64(frames))
	st.Bytes.Add(uint64(n))
	st.FramesPerWrite.Observe(int64(frames))
}

// Collect gathers one coalesced write batch from ch: it blocks until a
// first frame arrives, then drains already-queued frames without
// blocking, stopping at maxFrames frames or once maxBytes bytes have
// been gathered (the first frame always counts, so a single oversized
// frame still forms a batch of one). Frame pointers are appended to
// *slots — for returning buffers to their pool after the write — and
// the byte slices to *bufs, the writev argument. Zero or negative caps
// select the defaults.
//
// It reports false when ch is closed and nothing was collected. A close
// that lands mid-drain still returns the partial batch; the next call
// then reports false.
// WriteLoop is the coalescing writer both transports run: it drains ch
// batch by batch (Collect) until ch closes, flushing each batch as one
// vectored write with a fresh write deadline, and hands every frame
// pointer to put for recycling. The first failed or timed-out write
// calls onBroken exactly once — the hook severs the connection — and
// the loop keeps draining (and recycling) without writing, so producers
// never block on a dead peer. WriteLoop returns when ch is closed and
// drained; closing ch is the caller's job, after the last producer is
// done. st, when non-nil, meters each successful flush (see Stats).
func WriteLoop(nc net.Conn, ch <-chan *[]byte, maxFrames, maxBytes int, timeout time.Duration, put func(*[]byte), onBroken func(error), st *Stats) {
	WriteLoopFunc(nc, ch, maxFrames, maxBytes, timeout, deref, put, onBroken, nil, st)
}

// deref is the frame accessor for the plain pooled-buffer instantiation.
func deref(bp *[]byte) []byte { return *bp }

// WriteLoopFunc is WriteLoop generalized over the queued frame type:
// producers may send any record F that carries its encoded bytes
// (extracted by buf) plus per-frame metadata — e.g. a trace ID and
// enqueue timestamp. onFlushed, when non-nil, observes each batch right
// after its successful vectored write and before the frames are
// recycled, which is where enqueue→flush spans are measured. It is not
// called for batches discarded on a broken connection.
func WriteLoopFunc[F any](nc net.Conn, ch <-chan F, maxFrames, maxBytes int, timeout time.Duration, buf func(F) []byte, put func(F), onBroken func(error), onFlushed func([]F), st *Stats) {
	broken := false
	var slots []F
	var backing net.Buffers
	for {
		slots = slots[:0]
		bufs := backing[:0]
		if !CollectFunc(ch, &slots, &bufs, maxFrames, maxBytes, buf) {
			return
		}
		// WriteTo consumes the bufs header as it flushes; keep the grown
		// backing array so the next batch reuses its capacity.
		backing = bufs
		if !broken {
			total := 0
			if st != nil {
				for _, b := range bufs {
					total += len(b)
				}
			}
			nc.SetWriteDeadline(time.Now().Add(timeout)) //nolint:errcheck // surfaced by WriteTo
			if _, err := bufs.WriteTo(nc); err != nil {
				broken = true
				onBroken(err)
			} else {
				st.observe(len(slots), total)
				if onFlushed != nil {
					onFlushed(slots)
				}
			}
		}
		for _, f := range slots {
			put(f)
		}
	}
}

func Collect(ch <-chan *[]byte, slots *[]*[]byte, bufs *net.Buffers, maxFrames, maxBytes int) bool {
	return CollectFunc(ch, slots, bufs, maxFrames, maxBytes, deref)
}

// CollectFunc is Collect generalized over the queued frame type; buf
// extracts each frame's encoded bytes for the writev argument.
func CollectFunc[F any](ch <-chan F, slots *[]F, bufs *net.Buffers, maxFrames, maxBytes int, buf func(F) []byte) bool {
	if maxFrames <= 0 {
		maxFrames = DefaultMaxFrames
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	f, ok := <-ch
	if !ok {
		return false
	}
	b := buf(f)
	*slots = append(*slots, f)
	*bufs = append(*bufs, b)
	total := len(b)
	for len(*slots) < maxFrames && total < maxBytes {
		select {
		case f, ok := <-ch:
			if !ok {
				return true
			}
			b := buf(f)
			*slots = append(*slots, f)
			*bufs = append(*bufs, b)
			total += len(b)
		default:
			return true
		}
	}
	return true
}
