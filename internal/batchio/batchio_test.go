package batchio

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"discovery/internal/metrics"
)

func frame(n int, fill byte) *[]byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = fill
	}
	return &b
}

func TestCollectDrainsQueuedFrames(t *testing.T) {
	ch := make(chan *[]byte, 16)
	for i := 0; i < 5; i++ {
		ch <- frame(10, byte(i))
	}
	var slots []*[]byte
	var bufs net.Buffers
	if !Collect(ch, &slots, &bufs, 64, 1<<20) {
		t.Fatal("Collect reported a closed channel")
	}
	if len(slots) != 5 || len(bufs) != 5 {
		t.Fatalf("collected %d slots / %d bufs, want 5", len(slots), len(bufs))
	}
	for i, b := range bufs {
		if len(b) != 10 || b[0] != byte(i) {
			t.Fatalf("buf %d out of order or corrupt: len=%d fill=%d", i, len(b), b[0])
		}
	}
}

func TestCollectFrameCap(t *testing.T) {
	ch := make(chan *[]byte, 16)
	for i := 0; i < 10; i++ {
		ch <- frame(10, 0)
	}
	var slots []*[]byte
	var bufs net.Buffers
	if !Collect(ch, &slots, &bufs, 4, 1<<20) {
		t.Fatal("Collect reported a closed channel")
	}
	if len(slots) != 4 {
		t.Fatalf("frame cap 4 collected %d frames", len(slots))
	}
	// The rest stays queued for the next batch.
	slots, bufs = slots[:0], bufs[:0]
	if !Collect(ch, &slots, &bufs, 64, 1<<20) || len(slots) != 6 {
		t.Fatalf("second batch collected %d frames, want 6", len(slots))
	}
}

func TestCollectByteBudget(t *testing.T) {
	ch := make(chan *[]byte, 16)
	for i := 0; i < 6; i++ {
		ch <- frame(100, 0)
	}
	var slots []*[]byte
	var bufs net.Buffers
	// 250 bytes: the first frame (100) is under budget, the second makes
	// 200 (still under), the third reaches 300 >= 250 after collection —
	// the budget is a stop condition checked before each extra receive.
	if !Collect(ch, &slots, &bufs, 64, 250) {
		t.Fatal("Collect reported a closed channel")
	}
	if len(slots) != 3 {
		t.Fatalf("byte budget collected %d frames, want 3", len(slots))
	}
}

func TestCollectOversizeFirstFrame(t *testing.T) {
	ch := make(chan *[]byte, 4)
	ch <- frame(5000, 0)
	ch <- frame(10, 0)
	var slots []*[]byte
	var bufs net.Buffers
	// A first frame above the byte budget still forms a batch of one.
	if !Collect(ch, &slots, &bufs, 64, 100) {
		t.Fatal("Collect reported a closed channel")
	}
	if len(slots) != 1 || len(bufs[0]) != 5000 {
		t.Fatalf("oversize first frame batch: %d frames", len(slots))
	}
}

func TestCollectClosedChannel(t *testing.T) {
	ch := make(chan *[]byte, 4)
	ch <- frame(10, 0)
	ch <- frame(10, 0)
	close(ch)
	var slots []*[]byte
	var bufs net.Buffers
	// The queued frames drain as one final batch...
	if !Collect(ch, &slots, &bufs, 64, 1<<20) || len(slots) != 2 {
		t.Fatalf("final batch: %d frames", len(slots))
	}
	// ...then the closed channel reports done, without blocking.
	done := make(chan bool, 1)
	go func() {
		var s []*[]byte
		var b net.Buffers
		done <- Collect(ch, &s, &b, 64, 1<<20)
	}()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Collect returned a batch from a closed empty channel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Collect blocked on a closed channel")
	}
}

func TestCollectBlocksForFirstFrame(t *testing.T) {
	ch := make(chan *[]byte, 4)
	got := make(chan int, 1)
	go func() {
		var s []*[]byte
		var b net.Buffers
		Collect(ch, &s, &b, 64, 1<<20)
		got <- len(s)
	}()
	select {
	case <-got:
		t.Fatal("Collect returned before any frame arrived")
	case <-time.After(50 * time.Millisecond):
	}
	ch <- frame(10, 0)
	select {
	case n := <-got:
		if n != 1 {
			t.Fatalf("late frame batch has %d frames", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Collect never woke for the first frame")
	}
}

// TestCollectZeroAllocs pins the writer loop's allocation discipline:
// with warm caller-owned slices, collecting a full batch allocates
// nothing.
func TestCollectZeroAllocs(t *testing.T) {
	ch := make(chan *[]byte, 64)
	frames := make([]*[]byte, 32)
	for i := range frames {
		frames[i] = frame(64, byte(i))
	}
	var slots []*[]byte
	var bufs net.Buffers
	// Warm the slices to full batch capacity.
	for _, f := range frames {
		ch <- f
	}
	Collect(ch, &slots, &bufs, 64, 1<<20)
	backing := bufs[:0]
	allocs := testing.AllocsPerRun(100, func() {
		for _, f := range frames {
			ch <- f
		}
		slots = slots[:0]
		bufs = backing
		if !Collect(ch, &slots, &bufs, 64, 1<<20) || len(slots) != 32 {
			t.Fatal("collect failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("Collect allocates %.1f per batch, want 0", allocs)
	}
}

// TestWriteLoopFlushesAndRecycles drives the shared writer loop over a
// pipe: frames arrive in order on the read side, every frame pointer
// comes back through put, and closing the channel ends the loop.
func TestWriteLoopFlushesAndRecycles(t *testing.T) {
	client, srv := net.Pipe()
	defer client.Close()
	ch := make(chan *[]byte, 8)
	recycled := make(chan *[]byte, 8)
	reg := metrics.NewRegistry()
	st := &Stats{
		Writes:         reg.Counter("writes"),
		Frames:         reg.Counter("frames"),
		Bytes:          reg.Counter("bytes"),
		FramesPerWrite: reg.Histogram("frames_per_write", 1),
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		WriteLoop(srv, ch, 0, 0, time.Second,
			func(bp *[]byte) { recycled <- bp },
			func(error) { srv.Close() }, st)
	}()
	var want []byte
	for i := 0; i < 5; i++ {
		f := frame(10, byte(i))
		want = append(want, *f...)
		ch <- f
	}
	close(ch)
	got := make([]byte, len(want))
	client.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	if _, err := io.ReadFull(client, got); err != nil {
		t.Fatalf("read flushed frames: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("frames corrupted or reordered through WriteLoop")
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WriteLoop never returned after channel close")
	}
	if len(recycled) != 5 {
		t.Fatalf("recycled %d of 5 frames", len(recycled))
	}
	if st.Frames.Value() != 5 {
		t.Fatalf("Stats.Frames = %d, want 5", st.Frames.Value())
	}
	if w := st.Writes.Value(); w == 0 || w > 5 {
		t.Fatalf("Stats.Writes = %d, want 1..5", w)
	}
	if st.Bytes.Value() != uint64(len(want)) {
		t.Fatalf("Stats.Bytes = %d, want %d", st.Bytes.Value(), len(want))
	}
	if st.FramesPerWrite.Count() != st.Writes.Value() {
		t.Fatalf("FramesPerWrite.Count = %d, want %d", st.FramesPerWrite.Count(), st.Writes.Value())
	}
}

// TestWriteLoopSurvivesBrokenPeer pins the drain-after-error contract:
// once the peer breaks, onBroken fires exactly once and later frames
// are still recycled without blocking.
func TestWriteLoopSurvivesBrokenPeer(t *testing.T) {
	client, srv := net.Pipe()
	ch := make(chan *[]byte, 16)
	recycled := 0
	rec := make(chan struct{}, 16)
	broke := make(chan error, 16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		WriteLoop(srv, ch, 0, 0, 50*time.Millisecond,
			func(*[]byte) { rec <- struct{}{} },
			func(err error) { broke <- err; srv.Close() }, nil)
	}()
	// The peer never reads: the first write trips the deadline.
	ch <- frame(10, 1)
	select {
	case <-broke:
	case <-time.After(5 * time.Second):
		t.Fatal("write deadline never tripped")
	}
	client.Close()
	// Producers keep sending; the loop must drain and recycle them all.
	for i := 0; i < 10; i++ {
		ch <- frame(10, byte(i))
	}
	close(ch)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WriteLoop wedged draining after the break")
	}
	close(rec)
	for range rec {
		recycled++
	}
	if recycled != 11 {
		t.Fatalf("recycled %d of 11 frames", recycled)
	}
	if len(broke) != 0 {
		t.Fatalf("onBroken fired %d extra times", len(broke)+1)
	}
}
