package perturb

import (
	"math/rand"
	"testing"
	"time"
)

func mustNew(t *testing.T, n int, idle, offline time.Duration, prob float64, seed int64) *Flapping {
	t.Helper()
	f, err := New(n, idle, offline, prob, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name          string
		n             int
		idle, offline time.Duration
		prob          float64
	}{
		{"negative n", -1, time.Second, time.Second, 0.5},
		{"zero idle", 10, 0, time.Second, 0.5},
		{"zero offline", 10, time.Second, 0, 0.5},
		{"prob above 1", 10, time.Second, time.Second, 1.5},
		{"negative prob", 10, time.Second, time.Second, -0.1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.n, tt.idle, tt.offline, tt.prob, rng); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestProbZeroAlwaysOnline(t *testing.T) {
	f := mustNew(t, 50, 30*time.Second, 30*time.Second, 0, 7)
	for node := 0; node < 50; node += 7 {
		for s := 0; s < 600; s += 13 {
			if !f.Online(node, time.Duration(s)*time.Second) {
				t.Fatalf("node %d offline at %ds with prob 0", node, s)
			}
		}
	}
}

func TestProbOneFlapsEveryCycle(t *testing.T) {
	f := mustNew(t, 20, 10*time.Second, 10*time.Second, 1, 7)
	// With prob 1, every node must be offline during every offline
	// portion after its phase.
	for node := 0; node < 20; node++ {
		start := f.StartTime() // every node has begun flapping
		// Sample a full cycle at fine granularity; expect both states.
		sawOnline, sawOffline := false, false
		for s := time.Duration(0); s < f.Cycle(); s += 100 * time.Millisecond {
			if f.Online(node, start+s) {
				sawOnline = true
			} else {
				sawOffline = true
			}
		}
		if !sawOnline || !sawOffline {
			t.Fatalf("node %d: sawOnline=%v sawOffline=%v in one cycle at prob 1", node, sawOnline, sawOffline)
		}
	}
}

func TestBeforePhaseIsOnline(t *testing.T) {
	f := mustNew(t, 100, time.Second, time.Second, 1, 3)
	for node := 0; node < 100; node++ {
		if !f.Online(node, 0) && f.phase[node] > 0 {
			t.Fatalf("node %d offline before its first cycle", node)
		}
	}
}

func TestIdlePortionAlwaysOnline(t *testing.T) {
	f := mustNew(t, 30, 45*time.Second, 15*time.Second, 1, 11)
	for node := 0; node < 30; node++ {
		base := f.phase[node]
		for cyc := 0; cyc < 5; cyc++ {
			cycStart := base + time.Duration(cyc)*f.Cycle()
			for _, dt := range []time.Duration{0, time.Second, 44 * time.Second} {
				if !f.Online(node, cycStart+dt) {
					t.Fatalf("node %d offline during idle portion (cycle %d, +%v)", node, cyc, dt)
				}
			}
		}
	}
}

func TestDeterministicAcrossQueries(t *testing.T) {
	f := mustNew(t, 10, time.Second, time.Second, 0.5, 5)
	at := 17*time.Second + 300*time.Millisecond
	for node := 0; node < 10; node++ {
		first := f.Online(node, at)
		for i := 0; i < 5; i++ {
			if f.Online(node, at) != first {
				t.Fatalf("node %d availability flip-flops across identical queries", node)
			}
		}
	}
}

func TestSameSeedSameSchedule(t *testing.T) {
	a := mustNew(t, 40, 30*time.Second, 30*time.Second, 0.7, 99)
	b := mustNew(t, 40, 30*time.Second, 30*time.Second, 0.7, 99)
	for node := 0; node < 40; node++ {
		for s := 0; s < 300; s += 7 {
			at := time.Duration(s) * time.Second
			if a.Online(node, at) != b.Online(node, at) {
				t.Fatalf("schedules diverge at node %d, t=%v", node, at)
			}
		}
	}
}

func TestOfflineFractionMonteCarlo(t *testing.T) {
	// Long-run offline fraction should converge to prob*offline/cycle.
	for _, prob := range []float64{0.3, 0.8} {
		f := mustNew(t, 200, 30*time.Second, 30*time.Second, prob, 42)
		samples, offline := 0, 0
		start := f.StartTime()
		for node := 0; node < 200; node++ {
			for c := 0; c < 50; c++ {
				at := start + time.Duration(c)*f.Cycle() + time.Duration(node%60)*time.Second
				samples++
				if !f.Online(node, at) {
					offline++
				}
			}
		}
		got := float64(offline) / float64(samples)
		want := f.OfflineFraction()
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("prob %v: measured offline fraction %.3f, want about %.3f", prob, got, want)
		}
	}
}

func TestCycleIndependence(t *testing.T) {
	// With prob 0.5 a node's offline decisions must vary across cycles;
	// a constant decision would mean cycles aren't independent.
	f := mustNew(t, 5, time.Second, time.Second, 0.5, 13)
	for node := 0; node < 5; node++ {
		varies := false
		// Probe the middle of each offline portion.
		first := f.Online(node, f.phase[node]+1500*time.Millisecond)
		for c := int64(1); c < 40; c++ {
			at := f.phase[node] + time.Duration(c)*f.Cycle() + 1500*time.Millisecond
			if f.Online(node, at) != first {
				varies = true
				break
			}
		}
		if !varies {
			t.Errorf("node %d: 40 consecutive cycles made the same decision at prob 0.5", node)
		}
	}
}

func TestStartTime(t *testing.T) {
	f := mustNew(t, 100, 10*time.Second, 5*time.Second, 0.5, 21)
	st := f.StartTime()
	if st < 0 || st >= f.Cycle() {
		t.Errorf("StartTime %v outside [0, cycle)", st)
	}
	for _, p := range f.phase {
		if p > st {
			t.Errorf("phase %v exceeds StartTime %v", p, st)
		}
	}
}

func TestOnlineAllocationFree(t *testing.T) {
	f := mustNew(t, 10, time.Second, time.Second, 0.5, 1)
	allocs := testing.AllocsPerRun(1000, func() {
		f.Online(3, 93*time.Second)
	})
	if allocs != 0 {
		t.Errorf("Online allocates %.1f per call, want 0", allocs)
	}
}

func BenchmarkOnline(b *testing.B) {
	f, err := New(1000, 30*time.Second, 30*time.Second, 0.5, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Online(i%1000, time.Duration(i)*time.Millisecond)
	}
}
