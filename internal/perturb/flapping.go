// Package perturb implements the paper's perturbation model (Section 3):
// periodic flapping. Time is divided into cycles of (idle + offline)
// seconds, phase-shifted randomly per node. Every node is online
// throughout the idle portion of its cycle; at the start of each offline
// portion it goes offline with the flapping probability, independently per
// cycle, and returns at the start of the next idle portion.
//
// The schedule is a pure function of (seed, node, time): availability
// queries allocate nothing and need no event-queue bookkeeping, so a
// million-query Pastry run stays cheap and exactly reproducible.
package perturb

import (
	"fmt"
	"math/rand"
	"time"
)

// Flapping is a deterministic flapping schedule over n nodes. The zero
// value is not usable; construct with New.
type Flapping struct {
	idle    time.Duration
	offline time.Duration
	prob    float64
	phase   []time.Duration
	seed    uint64
}

// New builds a flapping schedule. idle and offline are the paper's
// idle:offline periods (e.g. 30s:30s); prob is the flapping probability on
// the x-axis of Figures 1 and 11. Each node's first cycle start is drawn
// uniformly from [0, idle+offline) using rng.
func New(n int, idle, offline time.Duration, prob float64, rng *rand.Rand) (*Flapping, error) {
	if n < 0 {
		return nil, fmt.Errorf("perturb: negative node count %d", n)
	}
	if idle <= 0 || offline <= 0 {
		return nil, fmt.Errorf("perturb: idle (%v) and offline (%v) periods must be positive", idle, offline)
	}
	if prob < 0 || prob > 1 {
		return nil, fmt.Errorf("perturb: flapping probability %v out of [0,1]", prob)
	}
	cycle := idle + offline
	phase := make([]time.Duration, n)
	for i := range phase {
		phase[i] = time.Duration(rng.Int63n(int64(cycle)))
	}
	return &Flapping{
		idle:    idle,
		offline: offline,
		prob:    prob,
		phase:   phase,
		seed:    rng.Uint64(),
	}, nil
}

// Cycle returns the flapping period (idle + offline).
func (f *Flapping) Cycle() time.Duration { return f.idle + f.offline }

// Online reports whether node i is online at virtual time t. Times before
// a node's first cycle start are online (the paper starts lookups only
// after every node has entered its flapping period; see StartTime).
func (f *Flapping) Online(i int, t time.Duration) bool {
	rel := t - f.phase[i]
	if rel < 0 {
		return true
	}
	cycle := f.Cycle()
	k := rel / cycle
	within := rel - k*cycle
	if within < f.idle {
		return true
	}
	// In the offline portion of cycle k: offline with probability prob,
	// decided independently per (node, cycle).
	return f.cycleDraw(i, int64(k)) >= f.prob
}

// StartTime returns the earliest time by which every node has entered its
// flapping period, i.e. max phase. The paper injects lookups only after
// this point.
func (f *Flapping) StartTime() time.Duration {
	var max time.Duration
	for _, p := range f.phase {
		if p > max {
			max = p
		}
	}
	return max
}

// OfflineFraction returns the long-run expected fraction of time a node
// spends offline: prob * offline / (idle + offline). Tests and analysis
// use it as the ground truth for Monte Carlo checks.
func (f *Flapping) OfflineFraction() float64 {
	return f.prob * float64(f.offline) / float64(f.Cycle())
}

// cycleDraw returns a uniform [0,1) value that is a pure function of
// (seed, node, cycle), via a splitmix64-style mix.
func (f *Flapping) cycleDraw(node int, cycle int64) float64 {
	x := f.seed
	x ^= uint64(node)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
	x ^= uint64(cycle) * 0x94d049bb133111eb
	x = mix64(x)
	// 53 high bits -> [0,1).
	return float64(x>>11) / float64(1<<53)
}

func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
