// Package chaos is the fault-matrix harness behind
// cmd/discoverynode's chaos tests: it boots a real N-process cluster
// with every peer and client link interposed by an internal/faultnet
// proxy, expresses fault scenarios as data (Scenario/Fault), drives
// live traffic through the cluster-smart client while the faults are
// active, and asserts the same four invariants across every cell of
// the matrix:
//
//  1. Acked-insert durability — every insert the client saw acked is
//     found on every replica after heal.
//  2. No false not-found — a lookup of a settled (fully converged) key
//     may fail with an explicit error while faults are live, but must
//     never succeed with "not found".
//  3. Explicit below-quorum errors — where a fault severs a region's
//     quorum, writes there return errors; they are never silently
//     dropped (checked jointly with invariant 1: anything acked must
//     survive).
//  4. Convergence after heal — once faults lift, periodic anti-entropy
//     brings every replica of every acked key back in sync, with no
//     process restarts beyond those the scenario itself performs.
//
// Adding a scenario is adding a literal to Matrix: the harness knows
// how to apply every Fault kind, and cmd/discoverynode's chaos test
// runs each entry as its own subtest.
package chaos

import "time"

// Kind enumerates the fault classes the harness can apply. Most target
// one node (Fault.Node) and fault every directed link touching it.
type Kind int

const (
	// Isolate hard-partitions every peer link touching Node, both
	// directions: new connections are reset on accept, live ones are
	// severed. The node's client link stays up, so clients still reach
	// an island that cannot assemble a write quorum.
	Isolate Kind = iota
	// CutClient partitions only Node's client link, forcing the
	// cluster-smart client to fail over to other replicas.
	CutClient
	// AsymmetricOut blackholes the request direction of Node's outbound
	// peer links: its calls vanish mid-flight (timeouts), while inbound
	// traffic — including other coordinators' replication fan-out to it
	// — still flows. The classic one-way partition.
	AsymmetricOut
	// Latency adds Fault.Latency ± Fault.Jitter per forwarded chunk on
	// every peer link touching Node, both directions.
	Latency
	// Bandwidth caps every peer link touching Node to Fault.Bps via a
	// token bucket.
	Bandwidth
	// Reorder swaps adjacent flush-boundary chunks with Fault.Prob on
	// every peer link touching Node. Because the peer protocol is a
	// length-prefixed TCP stream, a swap usually corrupts framing and
	// tears the connection down — exercising decode-error handling,
	// redial, and coordinator failover rather than silent reordering.
	Reorder
	// ResetStorm RSTs every live peer connection in the cluster every
	// Fault.Every, without refusing redials: mid-stream resets with
	// instant reconnect.
	ResetStorm
	// Flap drives Node on/off with an internal/perturb flapping
	// schedule (Fault.Idle / Fault.Offline cycles): offline = Isolate +
	// CutClient, online = heal. The fault window extends until at least
	// Fault.MinFlaps transitions have happened.
	Flap
	// RollingRestart SIGTERMs and restarts every node in turn, one at a
	// time, while traffic runs.
	RollingRestart
	// FsyncFail arms permanent injected fsync failures on Node's WAL
	// append path (SIGUSR1 to a -chaos-fsync-fail node): the log
	// poisons itself, mutations on that node error while reads keep
	// serving. Heal restarts the node (fresh recovery, hook disarmed).
	FsyncFail
)

// Fault is one fault to apply for the scenario's fault window. Which
// fields matter depends on Kind; zero values select nothing.
type Fault struct {
	Kind     Kind
	Node     int           // target node (region index) for node-scoped kinds
	Latency  time.Duration // Latency kind: fixed delay per chunk
	Jitter   time.Duration // Latency kind: uniform extra [0,Jitter)
	Bps      int64         // Bandwidth kind: bytes/second cap
	Prob     float64       // Reorder kind: per-chunk swap probability
	Every    time.Duration // ResetStorm kind: reset period
	Idle     time.Duration // Flap kind: online portion of a cycle
	Offline  time.Duration // Flap kind: offline portion of a cycle
	MinFlaps int           // Flap kind: minimum transitions before heal
}

// Scenario is one cell of the chaos matrix, expressed as data.
type Scenario struct {
	// Name labels the subtest (t.Run) and the key namespace.
	Name string
	// About is one line of intent, logged when the scenario starts.
	About string
	// Short marks the scenario as part of the `go test -short` subset
	// (the PR-gating set); the full matrix runs on push.
	Short bool
	// Window is the minimum fault-phase duration (default 2s). The
	// phase also extends until the traffic driver has attempted a
	// minimum number of inserts, so slow faults still get coverage.
	Window time.Duration
	// Faults all apply together for the window.
	Faults []Fault
	// ExpectWriteErrors asserts that the fault phase produced at least
	// one explicit write error — set on scenarios that sever a quorum,
	// where invariant 3 is observable from the client.
	ExpectWriteErrors bool
	// ExpectFailovers asserts the cluster-smart client's Failovers
	// counter rose during the fault phase.
	ExpectFailovers bool
}

// Matrix is the scenario set cmd/discoverynode's chaos test runs. The
// Short entries are the PR-gating subset; everything runs on push.
// Fault classes covered: hard partition (island), asymmetric partition,
// latency/jitter, frame reordering, bandwidth cap, connection resets,
// flapping membership, rolling restarts, and fsync failure.
var Matrix = []Scenario{
	{
		Name:  "partition-island",
		About: "node 1 loses every peer link both ways; its client link stays up, so its writes must fail the quorum explicitly while other regions keep serving",
		Short: true,
		Faults: []Fault{
			{Kind: Isolate, Node: 1},
		},
		ExpectWriteErrors: true,
	},
	{
		Name:   "partition-asymmetric",
		About:  "node 2's outbound requests are blackholed while inbound still flows: its coordinated writes time out below quorum, everyone else stays at full quorum",
		Window: 4 * time.Second,
		Faults: []Fault{
			{Kind: AsymmetricOut, Node: 2},
		},
		ExpectWriteErrors: true,
	},
	{
		Name:  "flapping-peer",
		About: "node 1 flaps on a perturb schedule (peer + client links); the smart client must fail over and no acked insert may be lost",
		Short: true,
		Faults: []Fault{
			{Kind: Flap, Node: 1, Idle: 600 * time.Millisecond, Offline: 600 * time.Millisecond, MinFlaps: 4},
		},
		ExpectFailovers: true,
	},
	{
		Name:  "slow-link",
		About: "every peer link touching node 0 gets 25ms±15ms per chunk; quorum writes and anti-entropy must ride it out",
		Short: true,
		Faults: []Fault{
			{Kind: Latency, Node: 0, Latency: 25 * time.Millisecond, Jitter: 15 * time.Millisecond},
		},
	},
	{
		Name:  "reorder-frames",
		About: "adjacent flush-boundary chunks swap on node 2's peer links, corrupting the length-prefixed stream: decode errors, teardowns and redials must not lose acked writes",
		Faults: []Fault{
			{Kind: Reorder, Node: 2, Prob: 0.35},
		},
	},
	{
		Name:  "bandwidth-crunch",
		About: "node 1's peer links are squeezed to 64 KiB/s; replication fan-out and repair pages crawl but must stay correct",
		Faults: []Fault{
			{Kind: Bandwidth, Node: 1, Bps: 64 << 10},
		},
	},
	{
		Name:  "reset-storm",
		About: "every live peer connection is RST every 300ms; calls die mid-flight and redial instantly",
		Faults: []Fault{
			{Kind: ResetStorm, Every: 300 * time.Millisecond},
		},
	},
	{
		Name:  "rolling-restart",
		About: "every node is SIGTERMed and restarted in turn under live traffic",
		Faults: []Fault{
			{Kind: RollingRestart},
		},
	},
	{
		Name:  "fsync-failure",
		About: "node 1's WAL starts failing every fsync mid-run: its mutations must error (never ack), reads keep serving, and a restart recovers every previously-acked key",
		Short: true,
		Faults: []Fault{
			{Kind: FsyncFail, Node: 1},
		},
		ExpectWriteErrors: true,
	},
}

// ShortMatrix returns just the Short subset.
func ShortMatrix() []Scenario {
	var out []Scenario
	for _, sc := range Matrix {
		if sc.Short {
			out = append(out, sc)
		}
	}
	return out
}
