package chaos

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os/exec"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	discovery "discovery"
	"discovery/internal/cluster"
	"discovery/internal/faultnet"
	"discovery/internal/perturb"
	"discovery/internal/server"
)

// Harness topology: every directed peer link i→j gets its own faultnet
// proxy (node i dials j through it via -peer-via), and every node's
// client traffic is interposed by one more proxy that the node
// advertises via -advertise-client. Cluster identity (bootstrap list,
// fingerprints, member-table slots) stays entirely on the real
// addresses; only the bytes take the detour. That gives the scenario
// runner independent control of all n(n-1) directed peer links plus
// the n client links, while the cluster under test is a stock
// discoverynode deployment.
const (
	nodes        = 3
	replication  = 3
	nodeCallTO   = "1s" // node-to-node call timeout (keeps fault-phase stalls short)
	clientCallTO = 2 * time.Second
	minInserts   = 12 // fault-phase insert attempts before heal may start
)

var servingRe = regexp.MustCompile(`serving clients on (127\.0\.0\.1:\d+) \(region`)

// proc is one running discoverynode process.
type proc struct {
	cmd      *exec.Cmd
	scanDone chan struct{}
	serving  chan struct{}
}

// Harness owns the cluster processes, the proxy mesh, and the clients.
type Harness struct {
	t   *testing.T
	bin string

	peerAddrs   []string // sorted; index == region
	clientAddrs []string // fixed client listen addresses, index-aligned
	dirs        []string

	peerProxies   [][]*faultnet.Proxy // [dialer][target]; nil on the diagonal
	clientProxies []*faultnet.Proxy

	nodeFlags [][]string // per-node extra flags, stable across restarts
	procs     []*proc

	cc *cluster.Client
}

// reserveAddrs grabs n loopback addresses by binding ephemeral ports,
// HOLDING the listeners until the returned release func runs. Holding
// matters: the harness binds 15 proxy listeners on :0 right after
// reserving, and a released port is fair game for the kernel's next
// ephemeral allocation — a proxy squatting on a node's reserved port
// makes that node exit at bind and the cell die opaquely. The node
// processes themselves bind fine after release (Go listeners set
// SO_REUSEADDR, and nothing else *listens* on those ports by then).
func reserveAddrs(t *testing.T, n int) ([]string, func()) {
	t.Helper()
	addrs := make([]string, n)
	liss := make([]net.Listener, n)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		liss[i] = lis
		addrs[i] = lis.Addr().String()
	}
	var once sync.Once
	release := func() {
		once.Do(func() {
			for _, lis := range liss {
				lis.Close()
			}
		})
	}
	t.Cleanup(release)
	return addrs, release
}

// newHarness reserves addresses, builds the proxy mesh and assigns
// per-node flags, but starts nothing yet.
func newHarness(t *testing.T, bin string, sc Scenario) *Harness {
	t.Helper()
	h := &Harness{t: t, bin: bin}

	// Sorting the reserved peer addresses makes node index == region
	// rank, so scenarios can say "node 1" and mean region 1. The
	// reservations stay bound until the whole proxy mesh has claimed
	// its own ports (see reserveAddrs).
	var releasePeer, releaseClient func()
	h.peerAddrs, releasePeer = reserveAddrs(t, nodes)
	sort.Strings(h.peerAddrs)
	h.clientAddrs, releaseClient = reserveAddrs(t, nodes)
	h.dirs = make([]string, nodes)
	for i := range h.dirs {
		h.dirs[i] = t.TempDir()
	}

	h.peerProxies = make([][]*faultnet.Proxy, nodes)
	for i := range h.peerProxies {
		h.peerProxies[i] = make([]*faultnet.Proxy, nodes)
		for j := range h.peerProxies[i] {
			if i == j {
				continue
			}
			p, err := faultnet.Listen("127.0.0.1:0", h.peerAddrs[j], t.Logf)
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { p.Close() })
			h.peerProxies[i][j] = p
		}
	}
	h.clientProxies = make([]*faultnet.Proxy, nodes)
	for i := range h.clientProxies {
		p, err := faultnet.Listen("127.0.0.1:0", h.clientAddrs[i], t.Logf)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		h.clientProxies[i] = p
	}
	releasePeer()
	releaseClient()

	h.nodeFlags = make([][]string, nodes)
	for _, f := range sc.Faults {
		if f.Kind == FsyncFail {
			h.nodeFlags[f.Node] = append(h.nodeFlags[f.Node], "-chaos-fsync-fail")
		}
	}
	h.procs = make([]*proc, nodes)
	return h
}

// startNode launches (or relaunches) node i and waits until it serves.
func (h *Harness) startNode(i int) {
	h.t.Helper()
	var via []string
	for j := range h.peerAddrs {
		if j != i {
			via = append(via, h.peerAddrs[j]+"="+h.peerProxies[i][j].Addr())
		}
	}
	args := []string{
		"-listen", h.clientAddrs[i],
		"-peer-listen", h.peerAddrs[i],
		"-advertise-client", h.clientProxies[i].Addr(),
		"-bootstrap", strings.Join(h.peerAddrs, ","),
		"-peer-via", strings.Join(via, ","),
		"-replication", fmt.Sprint(replication),
		"-data-dir", h.dirs[i], "-fsync", "batch", "-snapshot-every", "64",
		"-shards", "2",
		"-join-timeout", "15s",
		"-dial-timeout", "250ms",
		"-call-timeout", nodeCallTO,
		"-redial-backoff", "100ms",
		"-probe-interval", "500ms",
		"-anti-entropy-every", "750ms",
	}
	args = append(args, h.nodeFlags[i]...)
	cmd := exec.Command(h.bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		h.t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		h.t.Fatal(err)
	}
	p := &proc{cmd: cmd, scanDone: make(chan struct{}), serving: make(chan struct{})}
	go func() {
		defer close(p.scanDone)
		served := false
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			h.t.Logf("node%d: %s", i, line)
			if !served && servingRe.MatchString(line) {
				served = true
				close(p.serving)
			}
		}
	}()
	h.t.Cleanup(func() {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
		<-p.scanDone
	})
	select {
	case <-p.serving:
	case <-p.scanDone:
		// stderr EOF before the serving line: the process died at
		// startup (e.g. bind failure). Fail now with whatever it said
		// rather than eating the full timeout.
		h.t.Fatalf("node%d exited before serving (see its log lines above)", i)
	case <-time.After(30 * time.Second):
		h.t.Fatalf("node%d never served", i)
	}
	h.procs[i] = p
}

// stopNode SIGTERMs node i and waits for a clean exit (escalating to
// SIGKILL after a deadline).
func (h *Harness) stopNode(i int) {
	h.t.Helper()
	p := h.procs[i]
	if p == nil {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		h.t.Errorf("node%d did not drain in 15s; killing", i)
		p.cmd.Process.Kill() //nolint:errcheck
		<-done
	}
	<-p.scanDone
	h.procs[i] = nil
}

// start boots every node and dials the cluster-smart client through
// the client proxies.
func (h *Harness) start() {
	h.t.Helper()
	for i := range h.procs {
		h.startNode(i)
	}
	seeds := make([]string, nodes)
	for i, p := range h.clientProxies {
		seeds[i] = p.Addr()
	}
	cc, err := cluster.Dial(cluster.Config{
		Seeds:       seeds,
		DialTimeout: 500 * time.Millisecond,
		CallTimeout: clientCallTO,
		Logf:        h.t.Logf,
	})
	if err != nil {
		h.t.Fatalf("cluster dial: %v", err)
	}
	h.t.Cleanup(cc.Close)
	h.cc = cc
	// Wait until every member slot advertises its client proxy, so
	// routing is direct (and through our interposition) from the start.
	for slot, p := range h.clientProxies {
		h.waitMemberSlot(slot, p.Addr())
	}
}

func (h *Harness) waitMemberSlot(slot int, addr string) {
	h.t.Helper()
	for deadline := time.Now().Add(20 * time.Second); ; {
		_, members := h.cc.Members()
		if slot < len(members) && members[slot] == addr {
			return
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("member slot %d never advertised %s: %v", slot, addr, members)
		}
		time.Sleep(200 * time.Millisecond)
		h.cc.Refresh() //nolint:errcheck // retried until the deadline
	}
}

// settle inserts n keys through the smart client and waits until every
// node holds every one of them locally (R == N, so a direct lookup is
// a local read). These keys anchor the no-false-not-found invariant:
// once converged, no fault may make a lookup of them report "absent".
func (h *Harness) settle(sc Scenario, n int) []string {
	h.t.Helper()
	keys := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("settle-%s-%d", sc.Name, i)
		var err error
		for attempt := 0; attempt < 5; attempt++ {
			if _, err = h.cc.Insert(cluster.OriginAuto, discovery.NewID(name), []byte(name)); err == nil {
				break
			}
			time.Sleep(200 * time.Millisecond)
		}
		if err != nil {
			h.t.Fatalf("settle insert %s: %v", name, err)
		}
		keys = append(keys, name)
	}
	h.converge(keys, 30*time.Second, "settle")
	return keys
}

// converge polls every node directly (bypassing the proxies) until all
// keys are found on all of them — invariant 4 and, jointly, invariant 1.
func (h *Harness) converge(keys []string, within time.Duration, phase string) {
	h.t.Helper()
	deadline := time.Now().Add(within)
	for i := 0; i < nodes; i++ {
		var c *server.Client
		defer func() {
			if c != nil {
				c.Close()
			}
		}()
		missing := len(keys)
		var lastErr error
		for {
			if c == nil {
				c, lastErr = server.Dial(h.clientAddrs[i])
			}
			if c != nil {
				missing, lastErr = countMissing(c, keys)
				if missing == 0 && lastErr == nil {
					break
				}
				if lastErr != nil {
					// The connection may be stale (node restarted);
					// dial fresh next round.
					c.Close()
					c = nil
				}
			}
			if time.Now().After(deadline) {
				h.t.Fatalf("%s: node%d never converged: %d/%d keys missing, last error: %v",
					phase, i, missing, len(keys), lastErr)
			}
			time.Sleep(250 * time.Millisecond)
		}
	}
}

func countMissing(c *server.Client, keys []string) (int, error) {
	missing := 0
	for _, k := range keys {
		res, err := c.Lookup(server.OriginAuto, discovery.NewID(k))
		if err != nil {
			return missing + 1, err
		}
		if !res.Found {
			missing++
		}
	}
	return missing, nil
}

// traffic is the fault-phase driver state.
type traffic struct {
	mu       sync.Mutex
	acked    []string
	writeErr int

	attempts     atomic.Int64
	falseAbsent  atomic.Int64
	sampleErrors []string

	wait func() // joins the workers; valid after drive returns
}

// drive runs w concurrent workers inserting fresh keys and looking up
// settled ones through the faulted links until stop closes. Write
// errors are recorded (invariant 3's observable half); a lookup that
// *succeeds* while claiming a settled key is absent trips invariant 2
// immediately.
func (h *Harness) drive(sc Scenario, settled []string, stop <-chan struct{}) *traffic {
	tr := &traffic{}
	var wg sync.WaitGroup
	const workers = 3
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := fmt.Sprintf("chaos-%s-w%d-%d", sc.Name, w, i)
				tr.attempts.Add(1)
				if _, err := h.cc.Insert(cluster.OriginAuto, discovery.NewID(name), []byte(name)); err == nil {
					tr.mu.Lock()
					tr.acked = append(tr.acked, name)
					tr.mu.Unlock()
				} else {
					tr.mu.Lock()
					tr.writeErr++
					if len(tr.sampleErrors) < 4 {
						tr.sampleErrors = append(tr.sampleErrors, err.Error())
					}
					tr.mu.Unlock()
				}
				k := settled[rng.Intn(len(settled))]
				res, err := h.cc.Lookup(cluster.OriginAuto, discovery.NewID(k))
				if err == nil && !res.Found {
					tr.falseAbsent.Add(1)
					h.t.Errorf("false not-found: settled key %s reported absent with no error", k)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}(w)
	}
	tr.wait = func() { wg.Wait() }
	return tr
}

// Run executes one scenario end to end. It is the single entry point
// cmd/discoverynode's chaos test calls per matrix cell.
func Run(t *testing.T, bin string, sc Scenario) {
	t.Logf("scenario %s: %s", sc.Name, sc.About)
	h := newHarness(t, bin, sc)
	h.start()

	settled := h.settle(sc, 36)
	failoversBefore := h.cc.Stats().Failovers

	// Fault phase: apply every fault, drive traffic, keep the window
	// open until the minimum insert count (and any flap quota) is met.
	window := sc.Window
	if window <= 0 {
		window = 2 * time.Second
	}
	bgStop := make(chan struct{})
	var bg sync.WaitGroup
	var flaps atomic.Int64
	rolling := false
	for _, f := range sc.Faults {
		switch f.Kind {
		case RollingRestart:
			rolling = true
		default:
			h.applyFault(f, bgStop, &bg, &flaps)
		}
	}

	trafficStop := make(chan struct{})
	tr := h.drive(sc, settled, trafficStop)

	if rolling {
		for i := 0; i < nodes; i++ {
			h.t.Logf("rolling restart: node%d", i)
			h.stopNode(i)
			time.Sleep(300 * time.Millisecond) // a short true-outage window
			h.startNode(i)
		}
	}
	end := time.Now().Add(window)
	hardCap := time.Now().Add(45 * time.Second)
	for {
		now := time.Now()
		if now.After(hardCap) {
			break
		}
		if now.After(end) && tr.attempts.Load() >= minInserts && flapQuotaMet(sc, &flaps) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	close(trafficStop)
	tr.wait()
	close(bgStop)
	bg.Wait()

	// Heal: every proxy back to a faithful wire; fsync-poisoned nodes
	// restart (recovery clears the poisoned log; the hook re-arms only
	// on another SIGUSR1, which never comes).
	for i := range h.peerProxies {
		for j, p := range h.peerProxies[i] {
			if j != i {
				p.Heal()
			}
		}
	}
	for _, p := range h.clientProxies {
		p.Heal()
	}
	for _, f := range sc.Faults {
		if f.Kind == FsyncFail {
			h.t.Logf("heal: restarting fsync-poisoned node%d", f.Node)
			h.stopNode(f.Node)
			h.startNode(f.Node)
		}
	}

	acked := append(append([]string(nil), settled...), tr.acked...)
	t.Logf("fault phase: %d insert attempts, %d acked, %d write errors (samples: %v), failovers %d -> %d",
		tr.attempts.Load(), len(tr.acked), tr.writeErr, tr.sampleErrors,
		failoversBefore, h.cc.Stats().Failovers)

	// Invariants 1 + 4: every acked insert on every replica after heal.
	h.converge(acked, 60*time.Second, "heal")
	// Invariant 2 was asserted live by the driver.
	if tr.falseAbsent.Load() > 0 {
		t.Fatalf("%d false not-found responses during faults", tr.falseAbsent.Load())
	}
	// Invariant 3, where the scenario makes it observable.
	if sc.ExpectWriteErrors && tr.writeErr == 0 {
		t.Fatalf("expected explicit write errors during %s, saw none in %d attempts",
			sc.Name, tr.attempts.Load())
	}
	if sc.ExpectFailovers {
		if after := h.cc.Stats().Failovers; after <= failoversBefore {
			t.Fatalf("expected client failovers during %s, counter stayed at %d", sc.Name, after)
		}
	}
	if n := flapQuota(sc); n > 0 && flaps.Load() < int64(n) {
		t.Fatalf("flap driver made %d transitions, want >= %d", flaps.Load(), n)
	}

	// Orderly shutdown so every process exits clean under -race.
	for i := 0; i < nodes; i++ {
		h.stopNode(i)
	}
}

func flapQuota(sc Scenario) int {
	for _, f := range sc.Faults {
		if f.Kind == Flap {
			return f.MinFlaps
		}
	}
	return 0
}

func flapQuotaMet(sc Scenario, flaps *atomic.Int64) bool {
	n := flapQuota(sc)
	return n == 0 || flaps.Load() >= int64(n)
}

// applyFault turns one Fault into proxy/process operations. Background
// kinds (ResetStorm, Flap) run goroutines until bgStop closes.
func (h *Harness) applyFault(f Fault, bgStop <-chan struct{}, bg *sync.WaitGroup, flaps *atomic.Int64) {
	h.t.Helper()
	switch f.Kind {
	case Isolate:
		h.setPeerPartition(f.Node, true)
	case CutClient:
		h.clientProxies[f.Node].Partition()
	case AsymmetricOut:
		for j := range h.peerAddrs {
			if j != f.Node {
				h.peerProxies[f.Node][j].SetFaults(faultnet.Forward, faultnet.Faults{Blackhole: true})
			}
		}
	case Latency:
		h.setLinkFaults(f.Node, faultnet.Faults{Latency: f.Latency, Jitter: f.Jitter})
	case Bandwidth:
		h.setLinkFaults(f.Node, faultnet.Faults{BandwidthBps: f.Bps})
	case Reorder:
		h.setLinkFaults(f.Node, faultnet.Faults{ReorderProb: f.Prob})
	case ResetStorm:
		bg.Add(1)
		go func() {
			defer bg.Done()
			tick := time.NewTicker(f.Every)
			defer tick.Stop()
			for {
				select {
				case <-bgStop:
					return
				case <-tick.C:
				}
				for i := range h.peerProxies {
					for j, p := range h.peerProxies[i] {
						if j != i {
							p.Reset()
						}
					}
				}
			}
		}()
	case Flap:
		sched, err := perturb.New(nodes, f.Idle, f.Offline, 1.0, rand.New(rand.NewSource(42)))
		if err != nil {
			h.t.Fatal(err)
		}
		bg.Add(1)
		go func() {
			defer bg.Done()
			start := time.Now()
			online := true
			tick := time.NewTicker(25 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-bgStop:
					if !online {
						// Leave the node reachable for the heal phase.
						h.setPeerPartition(f.Node, false)
						h.clientProxies[f.Node].Heal()
					}
					return
				case <-tick.C:
				}
				on := sched.Online(f.Node, time.Since(start))
				if on == online {
					continue
				}
				online = on
				flaps.Add(1)
				h.t.Logf("flap: node%d -> online=%v", f.Node, on)
				if on {
					h.setPeerPartition(f.Node, false)
					h.clientProxies[f.Node].Heal()
				} else {
					h.setPeerPartition(f.Node, true)
					h.clientProxies[f.Node].Partition()
				}
			}
		}()
	case FsyncFail:
		if p := h.procs[f.Node]; p != nil {
			h.t.Logf("chaos: arming fsync failure on node%d (SIGUSR1)", f.Node)
			p.cmd.Process.Signal(syscall.SIGUSR1) //nolint:errcheck
		}
	}
}

// setPeerPartition partitions (or heals) every directed peer link
// touching node, both directions.
func (h *Harness) setPeerPartition(node int, cut bool) {
	for j := range h.peerAddrs {
		if j == node {
			continue
		}
		for _, p := range []*faultnet.Proxy{h.peerProxies[node][j], h.peerProxies[j][node]} {
			if cut {
				p.Partition()
			} else {
				p.Heal()
			}
		}
	}
}

// setLinkFaults applies f to both directions of every peer link
// touching node.
func (h *Harness) setLinkFaults(node int, f faultnet.Faults) {
	for j := range h.peerAddrs {
		if j == node {
			continue
		}
		for _, p := range []*faultnet.Proxy{h.peerProxies[node][j], h.peerProxies[j][node]} {
			p.SetFaults(faultnet.Forward, f)
			p.SetFaults(faultnet.Backward, f)
		}
	}
}
