package p2p_test

import (
	"sync"
	"testing"

	discovery "discovery"
	"discovery/internal/wire"
)

// BenchmarkPeerCallPipelined measures the peer-call shape the outbound
// coalescer exists for: bursts of concurrent routed lookups arriving at
// one peer together over the transport's single multiplexed connection
// (each burst is barrier-released, the arrival pattern a node under
// pipelined client load presents to its peers). Alongside req/s it
// reports frames/write — how many peer frames each write(2) carried on
// average; above 1.0 means queued frames shared vectored writes instead
// of paying a syscall each.
func BenchmarkPeerCallPipelined(b *testing.B) {
	const burst = 64
	peerAddrs := reserveAddrs(b, 2)
	n0 := startTestNode(b, peerAddrs[0], peerAddrs, true)
	n1 := startTestNode(b, peerAddrs[1], peerAddrs, true)

	tr := n0.node.Transport()
	target := n1.cluster.Self()
	keys := keysOwnedBy(target, 2, burst, "peer-bench")
	ids := make([]discovery.ID, len(keys))
	for i, name := range keys {
		ids[i] = discovery.NewID(name)
	}
	// Warm the connection so dialing is off the clock.
	if _, err := tr.Call(target, &wire.Msg{Type: wire.TRoute, RouteKind: wire.TLookup,
		Cluster: n0.cluster.Hash(), Key: ids[0], Origin: wire.OriginAuto}); err != nil {
		b.Fatal(err)
	}
	writes0, frames0 := tr.WriteStats()

	b.ResetTimer()
	for done := 0; done < b.N; {
		n := burst
		if left := b.N - done; left < n {
			n = left
		}
		release := make(chan struct{})
		var wg sync.WaitGroup
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				m := &wire.Msg{Type: wire.TRoute, RouteKind: wire.TLookup, Cluster: n0.cluster.Hash(),
					Key: ids[g%len(ids)], Origin: wire.OriginAuto}
				<-release
				if _, err := tr.Call(target, m); err != nil {
					b.Error(err)
				}
			}(g)
		}
		close(release)
		wg.Wait()
		if b.Failed() {
			b.FailNow()
		}
		done += n
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
	writes, frames := tr.WriteStats()
	if dw := writes - writes0; dw > 0 {
		b.ReportMetric(float64(frames-frames0)/float64(dw), "frames/write")
	}
}
