package p2p

import (
	"sync/atomic"
	"time"

	"discovery/internal/idspace"
	"discovery/internal/mpil"
)

// RemoteOverlay adapts cluster membership to mpil.Overlay: engine node i
// IS cluster member i, identified by the SHA-1 of its peer address, and
// every member neighbors every other (the member list is fully known, so
// the overlay is complete). Each process builds the identical overlay
// from the identical member list, which is what lets a node execute
// routed requests for its region with the same engine any other member
// would have used — and what pins a durable data directory to its
// cluster via the overlay fingerprint in the pool MANIFEST.
//
// Online always reports true, deliberately: the engine's simulated hops
// all execute inside the owning process, so a remote peer being
// unreachable must not drop messages inside another node's engine (that
// would make recovery replay depend on the network weather at replay
// time, breaking the durability contract). Remote availability is a
// transport concern, tracked by the separate Alive flags that the
// transport layer maintains and the runtime reports.
type RemoteOverlay struct {
	cluster   *Cluster
	ids       []idspace.ID
	neighbors [][]int
	alive     []atomic.Bool
}

var _ mpil.Overlay = (*RemoteOverlay)(nil)

// NewRemoteOverlay builds the cluster overlay and validates the engine's
// structural contract (distinct address hashes, in particular).
func NewRemoteOverlay(c *Cluster) (*RemoteOverlay, error) {
	n := c.N()
	ov := &RemoteOverlay{
		cluster:   c,
		ids:       make([]idspace.ID, n),
		neighbors: make([][]int, n),
		alive:     make([]atomic.Bool, n),
	}
	for i := 0; i < n; i++ {
		ov.ids[i] = idspace.FromString(c.Addr(i))
		nbs := make([]int, 0, n-1)
		for j := 0; j < n; j++ {
			if j != i {
				nbs = append(nbs, j)
			}
		}
		ov.neighbors[i] = nbs
		ov.alive[i].Store(true)
	}
	if err := mpil.ValidateOverlay(ov); err != nil {
		return nil, err
	}
	return ov, nil
}

// Cluster returns the membership this overlay was built from.
func (o *RemoteOverlay) Cluster() *Cluster { return o.cluster }

// N returns the member count.
func (o *RemoteOverlay) N() int { return len(o.ids) }

// ID returns member i's identifier (SHA-1 of its peer address).
func (o *RemoteOverlay) ID(i int) idspace.ID { return o.ids[i] }

// Neighbors returns every other member. Callers must not mutate it.
func (o *RemoteOverlay) Neighbors(i int) []int { return o.neighbors[i] }

// Online always reports true — see the type comment for why engine
// routing must not observe transport health.
func (o *RemoteOverlay) Online(int, time.Duration) bool { return true }

// Alive reports the transport-level health of member i, as last set by
// the transport layer. It is advisory (a dead peer is rediscovered by
// the next failed call), not consulted by engine routing.
func (o *RemoteOverlay) Alive(i int) bool { return o.alive[i].Load() }

// SetAlive records member i's transport health.
func (o *RemoteOverlay) SetAlive(i int, up bool) { o.alive[i].Store(up) }

// AliveCount returns how many members are currently marked healthy.
func (o *RemoteOverlay) AliveCount() int {
	n := 0
	for i := range o.alive {
		if o.alive[i].Load() {
			n++
		}
	}
	return n
}
