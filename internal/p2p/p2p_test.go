package p2p_test

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	discovery "discovery"
	"discovery/internal/p2p"
	"discovery/internal/server"
	"discovery/internal/wire"
)

// reserveAddrs grabs n distinct loopback addresses by binding and
// releasing ephemeral ports. The tiny window between release and reuse
// is the standard cost of needing the address before the process that
// binds it.
func reserveAddrs(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	liss := make([]net.Listener, n)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		liss[i] = lis
		addrs[i] = lis.Addr().String()
	}
	for _, lis := range liss {
		lis.Close()
	}
	return addrs
}

// testNode is one in-process cluster member: runtime, serving layer, and
// a client address.
type testNode struct {
	cluster    *p2p.Cluster
	pool       *discovery.Pool
	node       *p2p.Node
	srv        *server.Server
	clientAddr string
}

// startTestNode brings up the member advertised as selfAddr. When
// regioned is false the pool accepts any key (the pre-cluster state a
// handoff cleans up).
func startTestNode(t testing.TB, selfAddr string, peerAddrs []string, regioned bool) *testNode {
	t.Helper()
	cluster, err := p2p.NewCluster(selfAddr, peerAddrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := p2p.NewRemoteOverlay(cluster)
	if err != nil {
		t.Fatal(err)
	}
	opts := []discovery.Option{discovery.WithSeed(1)}
	if regioned {
		opts = append(opts, discovery.WithRegion(cluster.Self(), cluster.N()))
	}
	pool, err := discovery.NewPool(ov, 2, opts...)
	if err != nil {
		t.Fatal(err)
	}
	node, err := p2p.NewNode(p2p.Config{
		Cluster:     cluster,
		Overlay:     ov,
		Pool:        pool,
		DialTimeout: 200 * time.Millisecond,
		CallTimeout: 2 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.Start(selfAddr); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Config{Pool: pool, Owns: node.Owns, Forward: node.Forward, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	node.SetClientAddr(addr.String())
	tn := &testNode{cluster: cluster, pool: pool, node: node, srv: srv, clientAddr: addr.String()}
	t.Cleanup(func() {
		tn.srv.Close()
		tn.node.Close()
	})
	return tn
}

// keysOwnedBy returns count distinct keys owned by region among n.
func keysOwnedBy(region, n, count int, salt string) []string {
	var keys []string
	for i := 0; len(keys) < count; i++ {
		name := fmt.Sprintf("%s-%d", salt, i)
		if discovery.OwnerOf(discovery.NewID(name), n) == region {
			keys = append(keys, name)
		}
	}
	return keys
}

func TestClusterMembershipDeterministic(t *testing.T) {
	addrs := []string{"10.0.0.2:7801", "10.0.0.1:7801", "10.0.0.3:7801"}
	a, err := p2p.NewCluster("10.0.0.1:7801", addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A different bootstrap ordering, and self omitted from the list.
	b, err := p2p.NewCluster("10.0.0.3:7801", []string{"10.0.0.2:7801", "10.0.0.1:7801"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("same membership, different hashes: %x vs %x", a.Hash(), b.Hash())
	}
	if a.N() != 3 || b.N() != 3 {
		t.Fatalf("member counts %d, %d; want 3", a.N(), b.N())
	}
	if a.Self() != 0 || b.Self() != 2 {
		t.Fatalf("self ranks %d, %d; want 0, 2 (sorted order)", a.Self(), b.Self())
	}
	for i := 0; i < 3; i++ {
		if a.Addr(i) != b.Addr(i) {
			t.Fatalf("member %d differs: %s vs %s", i, a.Addr(i), b.Addr(i))
		}
	}
	// Every key has the same owner from both views.
	for i := 0; i < 100; i++ {
		key := discovery.NewID(fmt.Sprintf("k-%d", i))
		if a.OwnerOf(key) != b.OwnerOf(key) {
			t.Fatalf("key %d owner disagreement", i)
		}
	}
	c, err := p2p.NewCluster("10.0.0.1:7801", []string{"10.0.0.9:7801"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Hash() == a.Hash() {
		t.Fatal("different memberships share a fingerprint")
	}
}

func TestRemoteOverlayIsCompleteAndAlwaysOnline(t *testing.T) {
	cluster, err := p2p.NewCluster("h1:1", []string{"h2:1", "h3:1"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := p2p.NewRemoteOverlay(cluster)
	if err != nil {
		t.Fatal(err)
	}
	if ov.N() != 3 {
		t.Fatalf("N = %d, want 3", ov.N())
	}
	for i := 0; i < 3; i++ {
		if len(ov.Neighbors(i)) != 2 {
			t.Fatalf("node %d has %d neighbors, want 2", i, len(ov.Neighbors(i)))
		}
	}
	// Transport health must never leak into engine routing: a dead peer
	// changes forwarding behavior, not simulated-in-process routing (and
	// with it durable-replay determinism).
	ov.SetAlive(1, false)
	if !ov.Online(1, 0) {
		t.Fatal("Online observed transport health")
	}
	if ov.Alive(1) || ov.AliveCount() != 2 {
		t.Fatal("Alive flags not tracked")
	}
}

func TestForwardedRequestsServeWholeKeyspace(t *testing.T) {
	peerAddrs := reserveAddrs(t, 2)
	n0 := startTestNode(t, peerAddrs[0], peerAddrs, true)
	n1 := startTestNode(t, peerAddrs[1], peerAddrs, true)

	c0, err := server.Dial(n0.clientAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	c1, err := server.Dial(n1.clientAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()

	// Drive every insert through node 0: keys owned by node 1 must be
	// forwarded, stored on node 1, and visible from both entry points.
	const keys = 40
	for i := 0; i < keys; i++ {
		name := fmt.Sprintf("span-%d", i)
		if _, err := c0.Insert(server.OriginAuto, discovery.NewID(name), []byte(name)); err != nil {
			t.Fatalf("insert %s: %v", name, err)
		}
	}
	for i := 0; i < keys; i++ {
		name := fmt.Sprintf("span-%d", i)
		for who, c := range []*server.Client{c0, c1} {
			res, err := c.Lookup(server.OriginAuto, discovery.NewID(name))
			if err != nil {
				t.Fatalf("lookup %s via node %d: %v", name, who, err)
			}
			if !res.Found {
				t.Fatalf("key %s not found via node %d", name, who)
			}
		}
	}
	// Data landed on its owner, not on the entry node.
	own0, own1 := 0, 0
	for i := 0; i < keys; i++ {
		name := fmt.Sprintf("span-%d", i)
		if n0.cluster.Owns(discovery.NewID(name)) {
			own0++
		} else {
			own1++
		}
	}
	if own1 == 0 {
		t.Fatal("test never exercised forwarding (no keys owned by node 1)")
	}
	if n1.pool.ReplicaCount() == 0 {
		t.Fatal("node 1 owns keys but stores nothing; forwarding executed locally")
	}
	// Deletes forward too. The origin that inserted is derived from the
	// key (OriginAuto), so a delete with OriginAuto removes it.
	for i := 0; i < keys; i += 4 {
		name := fmt.Sprintf("span-%d", i)
		removed, err := c1.Delete(server.OriginAuto, discovery.NewID(name))
		if err != nil {
			t.Fatalf("delete %s: %v", name, err)
		}
		if removed == 0 {
			t.Fatalf("delete %s removed nothing", name)
		}
		res, err := c0.Lookup(server.OriginAuto, discovery.NewID(name))
		if err != nil {
			t.Fatal(err)
		}
		if res.Found {
			t.Fatalf("key %s still findable after delete", name)
		}
	}
}

func TestDeadRegionFailsFastAndSurvivorsServe(t *testing.T) {
	peerAddrs := reserveAddrs(t, 2)
	n0 := startTestNode(t, peerAddrs[0], peerAddrs, true)
	// peerAddrs[1] is never started: that region is down from birth.

	c0, err := server.Dial(n0.clientAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()

	deadRegion := 1 - n0.cluster.Self()
	owned := keysOwnedBy(n0.cluster.Self(), 2, 5, "alive")
	dead := keysOwnedBy(deadRegion, 2, 5, "dead")

	for _, name := range owned {
		if _, err := c0.Insert(server.OriginAuto, discovery.NewID(name), []byte(name)); err != nil {
			t.Fatalf("owned insert %s refused: %v", name, err)
		}
	}
	start := time.Now()
	for _, name := range dead {
		_, err := c0.Insert(server.OriginAuto, discovery.NewID(name), []byte(name))
		if err == nil {
			t.Fatalf("insert for dead region %d was acked", deadRegion)
		}
		if !strings.Contains(err.Error(), "unreachable") {
			t.Fatalf("dead-region error does not name the cause: %v", err)
		}
	}
	// Fail fast: a refused dial, not a timeout, per request.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dead-region errors took %s; want fast refusal", elapsed)
	}
	for _, name := range owned {
		res, err := c0.Lookup(server.OriginAuto, discovery.NewID(name))
		if err != nil || !res.Found {
			t.Fatalf("owned key %s lost while a peer is down (err %v)", name, err)
		}
	}
}

func TestProbeRefusesMembershipMismatch(t *testing.T) {
	peerAddrs := reserveAddrs(t, 2)
	startTestNode(t, peerAddrs[0], peerAddrs, true)

	// A node configured with an extra phantom member disagrees about
	// ownership; the probe handshake must catch it.
	wrong, err := p2p.NewCluster(peerAddrs[1], append(append([]string(nil), peerAddrs...), "10.9.9.9:1"), 1)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := p2p.NewRemoteOverlay(wrong)
	if err != nil {
		t.Fatal(err)
	}
	tr := p2p.NewTransport(wrong, ov, p2p.TransportConfig{DialTimeout: 200 * time.Millisecond, CallTimeout: 2 * time.Second, Logf: t.Logf})
	defer tr.Close()
	var target int
	for i := 0; i < wrong.N(); i++ {
		if wrong.Addr(i) == peerAddrs[0] {
			target = i
		}
	}
	if _, err := tr.Probe(target); err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("probe accepted a mismatched membership: %v", err)
	}
	// Not just probes: every peer request carries the fingerprint, so a
	// routed write from the conflicting view is refused even when the
	// two views happen to agree on the key's owner.
	route := &wire.Msg{Type: wire.TRoute, RouteKind: wire.TInsert, Cluster: wrong.Hash(),
		Key: discovery.NewID("split-brain"), Origin: wire.OriginAuto, Value: []byte("v")}
	resp, err := tr.Call(target, route)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.TError || !strings.Contains(resp.ErrorText(), "mismatch") {
		t.Fatalf("routed write from a mismatched view was not refused: %v %q", resp.Type, resp.ErrorText())
	}
}

func TestJoinHandshake(t *testing.T) {
	peerAddrs := reserveAddrs(t, 3)
	nodes := make([]*testNode, 3)
	for i := range nodes {
		nodes[i] = startTestNode(t, peerAddrs[i], peerAddrs, true)
	}
	for i, tn := range nodes {
		if err := tn.node.Join(5 * time.Second); err != nil {
			t.Fatalf("node %d join: %v", i, err)
		}
	}
}

func TestHandoffRefusesUnverifiedPeer(t *testing.T) {
	// Handoff deletes local data once the owner acks it, so it must
	// never run against a peer whose membership view disagrees. Build a
	// node whose member list includes a phantom third member: its probe
	// of the real peer fails the fingerprint check, and its handoff must
	// keep every replica local.
	peerAddrs := reserveAddrs(t, 2)
	startTestNode(t, peerAddrs[0], peerAddrs, true)

	phantom := append(append([]string(nil), peerAddrs...), "10.9.9.9:1")
	cluster, err := p2p.NewCluster(peerAddrs[1], phantom, 1)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := p2p.NewRemoteOverlay(cluster)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := discovery.NewPool(ov, 1, discovery.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	node, err := p2p.NewNode(p2p.Config{
		Cluster: cluster, Overlay: ov, Pool: pool,
		DialTimeout: 200 * time.Millisecond, CallTimeout: 2 * time.Second, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)

	// Seed replicas that, under the phantom view, belong to the REAL
	// peer's region (not the unreachable phantom member's), so handoff
	// targets the live node and its fingerprint check.
	realIdx := -1
	for i := 0; i < cluster.N(); i++ {
		if cluster.Addr(i) == peerAddrs[0] {
			realIdx = i
		}
	}
	seeded := 0
	for i := 0; seeded < 4; i++ {
		name := fmt.Sprintf("phantom-%d", i)
		key := discovery.NewID(name)
		if cluster.OwnerOf(key) != realIdx {
			continue
		}
		if err := pool.ImportReplica(0, 0, key, []byte(name)); err != nil {
			t.Fatal(err)
		}
		seeded++
	}
	moved, err := node.Handoff()
	if moved != 0 {
		t.Fatalf("handoff moved %d replicas to an unverified peer", moved)
	}
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("handoff error does not name the fingerprint mismatch: %v", err)
	}
	if pool.ReplicaCount() != seeded {
		t.Fatalf("replicas dropped despite refused handoff: %d of %d remain", pool.ReplicaCount(), seeded)
	}
}

func TestHandoffAndPullRepair(t *testing.T) {
	peerAddrs := reserveAddrs(t, 2)
	// Node 0's pool is unrestricted: it simulates a node whose store
	// predates the cluster split and therefore holds foreign keys.
	n0 := startTestNode(t, peerAddrs[0], peerAddrs, false)
	n1 := startTestNode(t, peerAddrs[1], peerAddrs, true)

	r0, r1 := n0.cluster.Self(), n1.cluster.Self()
	mine := keysOwnedBy(r0, 2, 6, "mine")
	theirs := keysOwnedBy(r1, 2, 6, "theirs")
	for i, name := range append(append([]string(nil), mine...), theirs...) {
		if err := n0.pool.ImportReplica(i%2, 0, discovery.NewID(name), []byte(name)); err != nil {
			t.Fatal(err)
		}
	}

	moved, err := n0.node.Handoff()
	if err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if moved != len(theirs) {
		t.Fatalf("handoff moved %d replicas, want %d", moved, len(theirs))
	}
	// Foreign replicas now live on their owner, placed at the same
	// engine nodes, and are gone locally.
	for i, name := range theirs {
		key := discovery.NewID(name)
		if v, ok := n1.pool.Value(i%2, key); !ok || string(v) != name {
			t.Fatalf("handed-off key %s missing on owner (ok=%v)", name, ok)
		}
		if _, ok := n0.pool.Value(i%2, key); ok {
			t.Fatalf("handed-off key %s still held locally", name)
		}
	}
	if n0.pool.ReplicaCount() != len(mine) {
		t.Fatalf("node 0 holds %d replicas after handoff, want %d", n0.pool.ReplicaCount(), len(mine))
	}

	// Pull repair is the inverse direction: node 1 lost nothing here, so
	// seed one of its keys on node 0 again and pull it back.
	extra := keysOwnedBy(r1, 2, 8, "theirs")[len(theirs):]
	for _, name := range extra {
		if err := n0.pool.ImportReplica(0, 0, discovery.NewID(name), []byte(name)); err != nil {
			t.Fatal(err)
		}
	}
	var from int
	for i := 0; i < 2; i++ {
		if i != r1 {
			from = i
		}
	}
	applied, err := n1.node.PullRepair(from, n1.cluster.Self())
	if err != nil {
		t.Fatalf("pull repair: %v", err)
	}
	if applied != len(extra) {
		t.Fatalf("pull repair applied %d, want %d", applied, len(extra))
	}
	for _, name := range extra {
		if v, ok := n1.pool.Value(0, discovery.NewID(name)); !ok || string(v) != name {
			t.Fatalf("pulled key %s missing on owner", name)
		}
	}
}

// TestPullRepairPaginatesLargeState pins the repair pagination contract
// end to end: well over 512 KiB of repairable replicas stream across in
// budgeted TRepairOK pages, each page's cursor resumes the next, and the
// pull converges with EVERY replica transferred — no silent prefix-only
// repair (the pre-pagination blind spot).
func TestPullRepairPaginatesLargeState(t *testing.T) {
	peerAddrs := reserveAddrs(t, 2)
	n0 := startTestNode(t, peerAddrs[0], peerAddrs, false)
	n1 := startTestNode(t, peerAddrs[1], peerAddrs, true)

	r0, r1 := n0.cluster.Self(), n1.cluster.Self()
	// ~300 replicas x 4 KiB ≈ 1.2 MiB of region-r1 state on node 0:
	// more than double the ~512 KiB page budget, so convergence requires
	// at least three pages.
	const count, valueSize = 300, 4096
	names := keysOwnedBy(r1, 2, count, "paged")
	values := map[string][]byte{}
	for i, name := range names {
		v := bytes.Repeat([]byte{byte(i)}, valueSize)
		copy(v, name) // make every value distinct and self-identifying
		values[name] = v
		if err := n0.pool.ImportReplica(i%2, uint32(i%2), discovery.NewID(name), v); err != nil {
			t.Fatal(err)
		}
	}

	// First, drive the paging protocol by hand through node 1's
	// transport and pin its invariants: budgeted pages, advancing
	// cursors, More on every page but the last, exactly-once delivery.
	var cursor wire.RepairCursor
	seen := map[string]bool{}
	pages := 0
	for {
		resp, err := n1.node.Transport().Call(r0, &wire.Msg{
			Type: wire.TRepair, Cluster: n1.cluster.Hash(), Region: uint32(r1), Cursor: cursor,
		})
		if err != nil {
			t.Fatalf("repair page %d: %v", pages, err)
		}
		if resp.Type != wire.TRepairOK {
			t.Fatalf("repair page %d: %v %s", pages, resp.Type, resp.ErrorText())
		}
		pages++
		size := 0
		for j := range resp.Entries {
			e := &resp.Entries[j]
			size += wire.EntryOverhead + len(e.Value)
			k := fmt.Sprintf("%d/%v", e.Node, e.Key)
			if seen[k] {
				t.Fatalf("replica %s delivered twice across pages", k)
			}
			seen[k] = true
		}
		if size > wire.MaxFrame/2+wire.EntryOverhead+valueSize {
			t.Fatalf("page %d carries %d bytes, far above the budget", pages, size)
		}
		if !resp.More {
			break
		}
		if resp.Cursor == cursor {
			t.Fatalf("page %d cursor did not advance", pages)
		}
		cursor = resp.Cursor
		if pages > count {
			t.Fatal("pagination never converged")
		}
	}
	if pages < 3 {
		t.Fatalf("1.2 MiB of state fit %d pages; budget not exercised", pages)
	}
	if len(seen) != count {
		t.Fatalf("pages delivered %d distinct replicas, want %d", len(seen), count)
	}

	// Then the real puller: every replica lands on node 1 with its exact
	// value and placement.
	applied, err := n1.node.PullRepair(r0, n1.cluster.Self())
	if err != nil {
		t.Fatalf("pull repair: %v", err)
	}
	if applied != count {
		t.Fatalf("pull repair applied %d replicas, want %d", applied, count)
	}
	for i, name := range names {
		v, ok := n1.pool.Value(i%2, discovery.NewID(name))
		if !ok || !bytes.Equal(v, values[name]) {
			t.Fatalf("replica %s missing or corrupt after paginated repair (ok=%v)", name, ok)
		}
	}
}

// TestProbeTeachesClientAddrs pins the membership-table plumbing behind
// TMembersOK: probe exchanges piggyback client-serving addresses in both
// directions, so after every node joins, every node's Members() table
// names every member's client address by cluster slot.
func TestProbeTeachesClientAddrs(t *testing.T) {
	peerAddrs := reserveAddrs(t, 3)
	nodes := make([]*testNode, 3)
	for i := range nodes {
		nodes[i] = startTestNode(t, peerAddrs[i], peerAddrs, true)
	}
	want := make([]string, 3)
	for _, tn := range nodes {
		want[tn.cluster.Self()] = tn.clientAddr
	}
	for _, tn := range nodes {
		if err := tn.node.Join(5 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	// Join guarantees each node probed every peer (learning the peers'
	// addresses from the replies); the peers learned this node's address
	// from the same exchanges.
	for i, tn := range nodes {
		got := tn.node.Members()
		for slot, addr := range want {
			if got[slot] != addr {
				t.Fatalf("node %d Members()[%d] = %q, want %q (full table %v)", i, slot, got[slot], addr, got)
			}
		}
	}
}

// TestOutboundCoalescingSharesWrites proves the tentpole syscall claim on
// a live connection: a burst of concurrent calls to one peer leaves the
// transport with more frames written than write(2) invocations — the
// out-queue drain coalesced queued frames into shared vectored writes.
// Each round releases every caller through one barrier so their frames
// genuinely land in the queue together (steady one-at-a-time pipelining
// on a fast loopback drains at depth 1 and proves nothing); coalescing
// is still scheduling-dependent, so rounds accumulate until the
// cumulative ratio clears the bar.
func TestOutboundCoalescingSharesWrites(t *testing.T) {
	peerAddrs := reserveAddrs(t, 2)
	n0 := startTestNode(t, peerAddrs[0], peerAddrs, true)
	n1 := startTestNode(t, peerAddrs[1], peerAddrs, true)

	tr := n0.node.Transport()
	target := n1.cluster.Self()
	keys := keysOwnedBy(target, 2, 64, "coalesce")

	deadline := time.Now().Add(30 * time.Second)
	for round := 0; ; round++ {
		release := make(chan struct{})
		var wg sync.WaitGroup
		for g := range keys {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				m := &wire.Msg{Type: wire.TRoute, RouteKind: wire.TLookup, Cluster: n0.cluster.Hash(),
					Key: discovery.NewID(name), Origin: wire.OriginAuto}
				<-release
				if _, err := tr.Call(target, m); err != nil {
					t.Errorf("call: %v", err)
				}
			}(keys[g])
		}
		close(release)
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		writes, frames := tr.WriteStats()
		if writes == 0 {
			t.Fatal("no writes counted")
		}
		ratio := float64(frames) / float64(writes)
		if ratio >= 1.2 {
			t.Logf("coalescing after %d rounds: %d frames over %d writes (%.2f frames/write)", round+1, frames, writes, ratio)
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("after %d rounds still %.2f frames/write (%d frames, %d writes); outbound writes are not coalescing", round+1, ratio, frames, writes)
		}
	}
}

// TestProberFlipsAliveEagerly pins timer-driven health: a peer's death
// and recovery are observed by the background prober alone — the test
// never issues a call on the probing side.
func TestProberFlipsAliveEagerly(t *testing.T) {
	peerAddrs := reserveAddrs(t, 2)
	peer := startTestNode(t, peerAddrs[1], peerAddrs, true)

	cluster, err := p2p.NewCluster(peerAddrs[0], peerAddrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := p2p.NewRemoteOverlay(cluster)
	if err != nil {
		t.Fatal(err)
	}
	peerIdx := peer.cluster.Self()
	tr := p2p.NewTransport(cluster, ov, p2p.TransportConfig{DialTimeout: 200 * time.Millisecond, CallTimeout: 2 * time.Second, Logf: t.Logf})
	defer tr.Close()
	tr.StartProber(50 * time.Millisecond)

	waitAlive := func(want bool, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for ov.Alive(peerIdx) != want {
			if time.Now().After(deadline) {
				t.Fatalf("prober never observed %s (Alive=%v)", what, ov.Alive(peerIdx))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitAlive(true, "the live peer")

	// Kill the peer: the prober must flip Alive false with no help.
	peer.srv.Close()
	peer.node.Close()
	waitAlive(false, "the peer's death")

	// Revive it on the same address: the prober must notice that too.
	startTestNode(t, peerAddrs[1], peerAddrs, true)
	waitAlive(true, "the peer's recovery")
}
