//go:build !race

package p2p

const raceEnabled = false
