package p2p

import (
	"bufio"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"discovery/internal/wire"
)

func newInternalTransport(t *testing.T) *Transport {
	t.Helper()
	cluster, err := NewCluster("h1:1", []string{"h2:1"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := NewRemoteOverlay(cluster)
	if err != nil {
		t.Fatal(err)
	}
	return NewTransport(cluster, ov, TransportConfig{Logf: t.Logf})
}

// TestCollectOutZeroAllocs pins the outbound drain path's allocation
// discipline: the exact producer/consumer cycle between Call (encode
// into a pooled buffer, enqueue) and the connection writer (collect
// into reused writev slots, recycle) allocates nothing once the pool
// and slices are warm. This is the out-queue twin of the serving
// layer's response-path gate.
func TestCollectOutZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool does not cache under the race detector")
	}
	tr := newInternalTransport(t)
	defer tr.Close()

	const burst = 8
	cs := &connState{out: make(chan *[]byte, burst), dead: make(chan struct{})}
	frame := []byte("\x00\x00\x00\x0d\x01\x00\x00\x00\x00\x00\x00\x00\x07body")
	var slots []*[]byte
	var bufs net.Buffers

	cycle := func() {
		for i := 0; i < burst; i++ {
			bp := tr.bufs.Get().(*[]byte)
			*bp = append((*bp)[:0], frame...)
			cs.out <- bp
		}
		slots = slots[:0]
		bufs = bufs[:0]
		if !collectOut(cs, &slots, &bufs) || len(slots) != burst {
			t.Fatal("collect failed")
		}
		for _, bp := range slots {
			tr.bufs.Put(bp)
		}
	}
	cycle() // warm the buffer pool and the coalesce slices

	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("out-queue drain allocates %.1f per %d-frame batch, want 0", allocs, burst)
	}
}

// TestWriteLoopCoalescesQueuedFrames proves frames-per-write > 1
// deterministically: frames queued before the writer starts must flush
// in ONE vectored write, counted by WriteStats. This pins the syscall
// shape itself; the e2e test proves the ratio emerges under live
// pipelining too.
func TestWriteLoopCoalescesQueuedFrames(t *testing.T) {
	tr := newInternalTransport(t)
	defer tr.Close()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		nc, err := lis.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		buf := make([]byte, 64<<10)
		for {
			if _, err := nc.Read(buf); err != nil {
				return
			}
		}
	}()
	nc, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	pc := &peerConn{t: tr, idx: 1, addr: lis.Addr().String(), pending: make(map[uint64]chan *wire.Msg)}
	cs := &connState{nc: nc, out: make(chan *[]byte, 64), dead: make(chan struct{})}

	const queued = 32
	for i := 0; i < queued; i++ {
		b := []byte("frame-bytes")
		cs.out <- &b
	}
	done := make(chan struct{})
	go func() { defer close(done); pc.writeLoop(cs) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		writes, frames := tr.WriteStats()
		if frames == queued {
			if writes != 1 {
				t.Fatalf("%d pre-queued frames took %d writes, want 1 vectored write", queued, writes)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writer flushed %d of %d frames", frames, queued)
		}
		time.Sleep(time.Millisecond)
	}
	pc.teardown(cs)
	<-done
}

// TestCallTimeoutLateReply audits the timed-out call path end to end: a
// reply that lands AFTER the caller's timeout deleted its pending entry
// must be dropped cleanly — no stray delivery, no pending-map leak, no
// connection teardown — and the connection (plus the outbound frame
// pool) must keep serving subsequent calls without a redial.
func TestCallTimeoutLateReply(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	cluster, err := NewCluster("h1:1", []string{lis.Addr().String()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ov, err := NewRemoteOverlay(cluster)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTransport(cluster, ov, TransportConfig{CallTimeout: 150 * time.Millisecond, Logf: t.Logf})
	defer tr.Close()
	// Count trips through the pool's allocator: if the request-frame
	// buffers round-trip (Get -> write -> Put), steady sequential calls
	// reuse one buffer and the allocator runs a bounded number of times.
	var fresh atomic.Int64
	tr.bufs.New = func() any {
		fresh.Add(1)
		b := make([]byte, 0, 512)
		return &b
	}
	var peer int
	for i := 0; i < cluster.N(); i++ {
		if cluster.Addr(i) == lis.Addr().String() {
			peer = i
		}
	}

	// Stub peer: the FIRST request's reply is withheld until released
	// (well past the call timeout); every later request is answered
	// immediately.
	release := make(chan struct{})
	lateSent := make(chan struct{})
	go func() {
		nc, err := lis.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		br := bufio.NewReader(nc)
		var scratch []byte
		first := true
		for {
			body, err := wire.ReadFrame(br, &scratch)
			if err != nil {
				return
			}
			var m wire.Msg
			if err := m.Decode(body); err != nil {
				return
			}
			reply := wire.Msg{Type: wire.TPeerProbeOK, ReqID: m.ReqID, Cluster: m.Cluster}
			frame, err := reply.Append(nil)
			if err != nil {
				return
			}
			if first {
				first = false
				go func() {
					<-release
					nc.Write(frame) //nolint:errcheck // test stub
					close(lateSent)
				}()
				continue
			}
			if _, err := nc.Write(frame); err != nil {
				return
			}
		}
	}()

	probe := func() *wire.Msg {
		return &wire.Msg{Type: wire.TPeerProbe, Cluster: cluster.Hash(), Origin: uint32(cluster.Self())}
	}
	if _, err := tr.Call(peer, probe()); err == nil || !strings.Contains(err.Error(), "no reply within") {
		t.Fatalf("withheld reply did not time out: %v", err)
	}
	pc := tr.peers[peer]
	pc.mu.Lock()
	leaked := len(pc.pending)
	pc.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("%d pending entries leaked after the timeout", leaked)
	}

	// Deliver the late reply, then prove the connection survived it: the
	// reader must discard the orphan (no pending entry matches) without
	// tearing the connection down or mis-delivering it to the next call.
	close(release)
	<-lateSent
	for i := 0; i < 20; i++ {
		resp, err := tr.Call(peer, probe())
		if err != nil {
			t.Fatalf("call %d after the late reply: %v", i, err)
		}
		if resp.Type != wire.TPeerProbeOK {
			t.Fatalf("call %d got %v, want TPeerProbeOK", i, resp.Type)
		}
	}
	if got := tr.dials.Value(); got != 1 {
		t.Fatalf("%d dials; the late reply should not cost a reconnect", got)
	}
	// Pool round-trip: 21 sequential calls needed far fewer fresh
	// buffers (the race detector disables sync.Pool caching, so the
	// bound only holds in a normal build).
	if !raceEnabled {
		if got := fresh.Load(); got > 3 {
			t.Fatalf("allocator built %d frame buffers over 21 sequential calls; pooled buffers are not round-tripping", got)
		}
	}
}

// TestCollectOutDeath pins the writer's shutdown contract: a dead
// connection with an empty queue ends the drain (false), but a frame
// that raced in just before death is still collected and recycled —
// never stranded.
func TestCollectOutDeath(t *testing.T) {
	cs := &connState{out: make(chan *[]byte, 4), dead: make(chan struct{})}
	var slots []*[]byte
	var bufs net.Buffers

	// Frame queued, then death: the frame must still come out.
	b := []byte("frame")
	cs.out <- &b
	cs.kill()
	if !collectOut(cs, &slots, &bufs) || len(slots) != 1 {
		t.Fatalf("racing frame lost at death: collected %d", len(slots))
	}

	// Dead and empty: the drain ends.
	slots, bufs = slots[:0], bufs[:0]
	done := make(chan bool, 1)
	go func() { done <- collectOut(cs, &slots, &bufs) }()
	select {
	case got := <-done:
		if got {
			t.Fatal("collectOut reported a batch from a dead, empty queue")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("collectOut blocked on a dead connection")
	}
}
