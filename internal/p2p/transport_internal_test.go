package p2p

import (
	"net"
	"testing"
	"time"

	"discovery/internal/wire"
)

func newInternalTransport(t *testing.T) *Transport {
	t.Helper()
	cluster, err := NewCluster("h1:1", []string{"h2:1"})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := NewRemoteOverlay(cluster)
	if err != nil {
		t.Fatal(err)
	}
	return NewTransport(cluster, ov, 0, 0, t.Logf, nil)
}

// TestCollectOutZeroAllocs pins the outbound drain path's allocation
// discipline: the exact producer/consumer cycle between Call (encode
// into a pooled buffer, enqueue) and the connection writer (collect
// into reused writev slots, recycle) allocates nothing once the pool
// and slices are warm. This is the out-queue twin of the serving
// layer's response-path gate.
func TestCollectOutZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool does not cache under the race detector")
	}
	tr := newInternalTransport(t)
	defer tr.Close()

	const burst = 8
	cs := &connState{out: make(chan *[]byte, burst), dead: make(chan struct{})}
	frame := []byte("\x00\x00\x00\x0d\x01\x00\x00\x00\x00\x00\x00\x00\x07body")
	var slots []*[]byte
	var bufs net.Buffers

	cycle := func() {
		for i := 0; i < burst; i++ {
			bp := tr.bufs.Get().(*[]byte)
			*bp = append((*bp)[:0], frame...)
			cs.out <- bp
		}
		slots = slots[:0]
		bufs = bufs[:0]
		if !collectOut(cs, &slots, &bufs) || len(slots) != burst {
			t.Fatal("collect failed")
		}
		for _, bp := range slots {
			tr.bufs.Put(bp)
		}
	}
	cycle() // warm the buffer pool and the coalesce slices

	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("out-queue drain allocates %.1f per %d-frame batch, want 0", allocs, burst)
	}
}

// TestWriteLoopCoalescesQueuedFrames proves frames-per-write > 1
// deterministically: frames queued before the writer starts must flush
// in ONE vectored write, counted by WriteStats. This pins the syscall
// shape itself; the e2e test proves the ratio emerges under live
// pipelining too.
func TestWriteLoopCoalescesQueuedFrames(t *testing.T) {
	tr := newInternalTransport(t)
	defer tr.Close()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		nc, err := lis.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		buf := make([]byte, 64<<10)
		for {
			if _, err := nc.Read(buf); err != nil {
				return
			}
		}
	}()
	nc, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}

	pc := &peerConn{t: tr, idx: 1, addr: lis.Addr().String(), pending: make(map[uint64]chan *wire.Msg)}
	cs := &connState{nc: nc, out: make(chan *[]byte, 64), dead: make(chan struct{})}

	const queued = 32
	for i := 0; i < queued; i++ {
		b := []byte("frame-bytes")
		cs.out <- &b
	}
	done := make(chan struct{})
	go func() { defer close(done); pc.writeLoop(cs) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		writes, frames := tr.WriteStats()
		if frames == queued {
			if writes != 1 {
				t.Fatalf("%d pre-queued frames took %d writes, want 1 vectored write", queued, writes)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("writer flushed %d of %d frames", frames, queued)
		}
		time.Sleep(time.Millisecond)
	}
	pc.teardown(cs)
	<-done
}

// TestCollectOutDeath pins the writer's shutdown contract: a dead
// connection with an empty queue ends the drain (false), but a frame
// that raced in just before death is still collected and recycled —
// never stranded.
func TestCollectOutDeath(t *testing.T) {
	cs := &connState{out: make(chan *[]byte, 4), dead: make(chan struct{})}
	var slots []*[]byte
	var bufs net.Buffers

	// Frame queued, then death: the frame must still come out.
	b := []byte("frame")
	cs.out <- &b
	cs.kill()
	if !collectOut(cs, &slots, &bufs) || len(slots) != 1 {
		t.Fatalf("racing frame lost at death: collected %d", len(slots))
	}

	// Dead and empty: the drain ends.
	slots, bufs = slots[:0], bufs[:0]
	done := make(chan bool, 1)
	go func() { done <- collectOut(cs, &slots, &bufs) }()
	select {
	case got := <-done:
		if got {
			t.Fatal("collectOut reported a batch from a dead, empty queue")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("collectOut blocked on a dead connection")
	}
}
