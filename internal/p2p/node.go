package p2p

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	discovery "discovery"
	"discovery/internal/batchio"
	"discovery/internal/idspace"
	"discovery/internal/metrics"
	"discovery/internal/ratelog"
	"discovery/internal/trace"
	"discovery/internal/wire"
)

// Config parameterizes a Node.
type Config struct {
	// Cluster is the static membership. Required.
	Cluster *Cluster
	// Overlay is the cluster overlay the pool routes over. Required.
	Overlay *RemoteOverlay
	// Pool executes owned requests. Required; it should be built over
	// Overlay with WithRegion(Cluster.Self(), Cluster.N()).
	Pool *discovery.Pool
	// DialTimeout bounds one peer dial (default 500ms). Loopback and
	// datacenter peers answer or refuse fast; a short timeout keeps a
	// dead region from stalling client connections.
	DialTimeout time.Duration
	// CallTimeout bounds one peer round trip (default 5s).
	CallTimeout time.Duration
	// RedialBackoff is the fail-fast window armed after a slow (timed
	// out) peer dial failure (default DefaultRedialBackoff). Chaos
	// harnesses shorten it so partitioned peers are retried quickly
	// after heal; operators on flaky WANs may lengthen it.
	RedialBackoff time.Duration
	// DialVia rewrites peer dial targets (cluster address -> address to
	// actually connect to) without touching protocol identity. Used to
	// interpose fault-injection proxies or NAT hops on peer links.
	DialVia map[string]string
	// MaxForwards caps concurrently in-flight forwarded client requests
	// (default 256). At the cap the client reader blocks, which turns
	// into TCP backpressure exactly like a full shard queue.
	MaxForwards int
	// ProbeInterval, when positive, probes every peer on that interval
	// so transport health (RemoteOverlay.Alive) flips eagerly instead of
	// on the next call that happens to hit a dead peer. Zero disables
	// the timer; health is then updated lazily as before.
	ProbeInterval time.Duration
	// Logf, when set, receives connection-level error lines.
	Logf func(format string, args ...any)
	// Metrics, when set, receives the node's p2p.* instrumentation
	// (outbound call latency and coalescing, inbound peer-writer
	// coalescing). Nil keeps the counters in a private registry, so
	// Transport.WriteStats works either way.
	Metrics *metrics.Registry
	// Tracer, when set, records per-request spans (internal/trace): the
	// outbound peer hop of every traced Transport.Call, and the
	// responder-side execution of traced TRoute/TRepair/TTransfer
	// requests — trace context rides the wire trailer, so spans from both
	// processes join under one trace ID. Anti-entropy requests
	// (PullRepair, Handoff) are sampled by the tracer's own rate.
	Tracer *trace.Tracer
}

// Node is the per-process cluster runtime: the inbound peer listener, the
// outbound transport, and the glue that multiplexes peer and client
// traffic onto one engine pool. Wire Owns and Forward into
// server.Config; peer traffic flows through Start's listener.
type Node struct {
	cfg    Config
	tr     *Transport
	tracer *trace.Tracer

	// repairLogf rate-limits the per-page repair diagnostics (oversize
	// skips, budget pagination): a deep repair emits one line per page,
	// which a big store turns into a log flood.
	repairLogf func(format string, args ...any)

	fwdSem chan struct{}
	// quit is closed by StopServing so background maintenance (Join
	// retries, anti-entropy batches) stops issuing work promptly: the
	// store must quiesce before shutdown seals it.
	quit chan struct{}

	mu     sync.Mutex
	lis    net.Listener
	conns  map[net.Conn]struct{}
	closed bool

	// addrMu guards clientAddrs: slot i is member i's client-serving
	// address, learned from probe exchanges (both directions piggyback
	// it) — empty until that member advertises one. Members() republishes
	// the table to cluster-smart clients via TMembersOK.
	addrMu      sync.Mutex
	clientAddrs []string

	wg sync.WaitGroup

	// pwstats meters the inbound peer-connection writers (response
	// coalescing), shared across connections; nil when Config.Metrics is
	// nil, which leaves connWriter unmetered.
	pwstats *batchio.Stats

	bufs sync.Pool // *[]byte pooled peer-reply frame buffers
}

// errNodeClosed aborts maintenance passes interrupted by shutdown.
var errNodeClosed = errors.New("p2p: node closed")

// NewNode builds the runtime. Call Start to serve peer traffic.
func NewNode(cfg Config) (*Node, error) {
	if cfg.Cluster == nil || cfg.Overlay == nil || cfg.Pool == nil {
		return nil, errors.New("p2p: Config.Cluster, Overlay and Pool are required")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.MaxForwards <= 0 {
		cfg.MaxForwards = 256
	}
	n := &Node{
		cfg: cfg,
		tr: NewTransport(cfg.Cluster, cfg.Overlay, TransportConfig{
			DialTimeout:   cfg.DialTimeout,
			CallTimeout:   cfg.CallTimeout,
			RedialBackoff: cfg.RedialBackoff,
			DialVia:       cfg.DialVia,
			Logf:          cfg.Logf,
			Metrics:       cfg.Metrics,
		}),
		tracer:      cfg.Tracer,
		repairLogf:  ratelog.New(4, 2).Wrap(cfg.Logf),
		fwdSem:      make(chan struct{}, cfg.MaxForwards),
		quit:        make(chan struct{}),
		conns:       make(map[net.Conn]struct{}),
		clientAddrs: make([]string, cfg.Cluster.N()),
	}
	n.tr.tracer = cfg.Tracer
	if reg := cfg.Metrics; reg != nil {
		n.pwstats = &batchio.Stats{
			Writes:         reg.Counter("p2p.peer_writes"),
			Frames:         reg.Counter("p2p.peer_frames"),
			Bytes:          reg.Counter("p2p.peer_write_bytes"),
			FramesPerWrite: reg.Histogram("p2p.peer_frames_per_write", 1),
		}
	}
	n.bufs.New = func() any {
		b := make([]byte, 0, 512)
		return &b
	}
	n.tr.OnPeerClientAddr(n.learnClientAddr)
	n.tr.StartProber(cfg.ProbeInterval)
	return n, nil
}

// Transport returns the outbound peer transport.
func (n *Node) Transport() *Transport { return n.tr }

// SetClientAddr records this node's client-serving address and starts
// advertising it to peers on every probe (both directions piggyback it).
// Call it once the client listener is bound.
func (n *Node) SetClientAddr(addr string) {
	n.addrMu.Lock()
	n.clientAddrs[n.cfg.Cluster.Self()] = addr
	n.addrMu.Unlock()
	n.tr.SetClientAddr(addr)
}

// learnClientAddr records member i's advertised client-serving address.
func (n *Node) learnClientAddr(i int, addr string) {
	if i < 0 || i >= n.cfg.Cluster.N() || i == n.cfg.Cluster.Self() || addr == "" {
		return
	}
	n.addrMu.Lock()
	n.clientAddrs[i] = addr
	n.addrMu.Unlock()
}

// Members returns the client-serving address table, indexed by cluster
// position: slot i is member i's advertised client address, or "" while
// unknown. It has the shape server.Config.Members expects; TMembersOK
// carries it to cluster-smart clients together with the membership
// fingerprint, so clients compute owners over the same ordered list the
// cluster does.
func (n *Node) Members() []string {
	n.addrMu.Lock()
	defer n.addrMu.Unlock()
	return append([]string(nil), n.clientAddrs...)
}

// Owns reports whether this node's region replicates key. It has the
// signature server.Config.Owns expects.
func (n *Node) Owns(key idspace.ID) bool { return n.cfg.Cluster.Owns(key) }

// Forward relays one client request to a replica of key and delivers the
// replica's reply (or an error) to respond, exactly once. Replicas are
// tried in rank order (owner first): a connection failure or call
// timeout fails over to the key's next replica, so a dead owner costs a
// retry, not an outage. Only when every replica is unreachable does the
// client hear an error. It has the signature server.Config.Forward
// expects. trc, when nonzero, is the request's sampled trace ID and
// rides the TRoute wire trailer so the executing node's spans join the
// relay's. The semaphore acquisition blocks the calling connection
// reader at MaxForwards in-flight forwards — deliberate backpressure.
//
// Failover makes forwarded writes at-least-once in one more way: a
// timed-out call to one replica may have committed before the retry
// executes on the next, which MPIL placement tolerates (re-inserting a
// key overwrites the same per-node replica slots).
func (n *Node) Forward(typ wire.Type, key idspace.ID, origin uint32, value []byte, trc uint64, respond func(*wire.Msg)) {
	replicas := n.cfg.Cluster.ReplicasOf(key)
	n.fwdSem <- struct{}{}
	go func() {
		defer func() { <-n.fwdSem }()
		req := &wire.Msg{Type: wire.TRoute, RouteKind: typ, Cluster: n.cfg.Cluster.Hash(), Key: key, Origin: origin, Value: value}
		if trc != 0 {
			req.Traced = true
			req.Trace = trc
		}
		var lastErr error
		for _, r := range replicas {
			if r == n.cfg.Cluster.Self() {
				continue // Forward is only called for keys this node does not replicate
			}
			resp, err := n.tr.Call(r, req)
			if err != nil {
				lastErr = fmt.Errorf("%s: %w", n.cfg.Cluster.Addr(r), err)
				continue // fail over to the key's next replica
			}
			switch resp.Type {
			case wire.TInsertOK, wire.TLookupOK, wire.TDeleteOK, wire.TError:
				respond(resp)
			default:
				respond(&wire.Msg{Type: wire.TError, Value: []byte("unexpected peer response " + resp.Type.String())})
			}
			return
		}
		respond(&wire.Msg{Type: wire.TError, Value: []byte(fmt.Sprintf(
			"region %d unreachable: all %d replicas down: %v", replicas[0], len(replicas), lastErr))})
	}()
}

// Replicate fans one committed mutation to the key's co-replicas as
// TReplicate frames and waits until enough of them ack that the
// mutation is quorum-committed: the caller has (or is about to) commit
// locally, so Quorum()-1 remote acks complete the quorum. With R=1 (or
// a quorum of 1) it returns nil immediately. It has the signature
// server.Config.Replicate expects. trc, when nonzero, joins the
// replicas' apply spans to the coordinator's trace.
//
// The fan-out is parallel and returns as soon as the quorum is in;
// slower replicas finish in the background (their acks are simply
// dropped — the buffered channel never blocks them) and any replica
// that missed the write converges through anti-entropy.
func (n *Node) Replicate(typ wire.Type, key idspace.ID, origin uint32, value []byte, trc uint64) error {
	c := n.cfg.Cluster
	need := c.Quorum() - 1 // the caller's local commit is the first vote
	if need <= 0 {
		return nil
	}
	replicas := c.ReplicasOf(key)
	peers := make([]int, 0, len(replicas))
	for _, r := range replicas {
		if r != c.Self() {
			peers = append(peers, r)
		}
	}
	if len(peers) < need {
		return fmt.Errorf("p2p: quorum impossible for %v: %d co-replicas, need %d acks", key, len(peers), need)
	}
	results := make(chan error, len(peers))
	for _, p := range peers {
		go func(p int) {
			req := &wire.Msg{Type: wire.TReplicate, RouteKind: typ, Cluster: c.Hash(), Key: key, Origin: origin, Value: value}
			if trc != 0 {
				req.Traced = true
				req.Trace = trc
			}
			resp, err := n.tr.Call(p, req)
			switch {
			case err != nil:
				results <- fmt.Errorf("%s: %w", c.Addr(p), err)
			case resp.Type == wire.TReplicateOK:
				results <- nil
			case resp.Type == wire.TError:
				results <- fmt.Errorf("%s: %s", c.Addr(p), resp.ErrorText())
			default:
				results <- fmt.Errorf("%s: unexpected replicate response %v", c.Addr(p), resp.Type)
			}
		}(p)
	}
	acked := 0
	var failures []error
	for range peers {
		err := <-results
		if err == nil {
			if acked++; acked >= need {
				return nil
			}
			continue
		}
		failures = append(failures, err)
		if len(peers)-len(failures) < need {
			break // even if every outstanding call acks, the quorum is lost
		}
	}
	return fmt.Errorf("p2p: quorum not reached for %v: %d of %d replicas committed (need %d): %v",
		key, acked+1, len(replicas), need+1, failures)
}

// Start listens for peer connections on addr and serves them in the
// background, returning the bound address.
func (n *Node) Start(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		lis.Close()
		return nil, errors.New("p2p: node closed")
	}
	n.lis = lis
	n.mu.Unlock()
	n.wg.Add(1)
	go n.acceptLoop(lis)
	return lis.Addr(), nil
}

// acceptLoop hands each inbound peer connection to a handler goroutine.
func (n *Node) acceptLoop(lis net.Listener) {
	defer n.wg.Done()
	for {
		nc, err := lis.Accept()
		if err != nil {
			return
		}
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			nc.Close()
			return
		}
		n.conns[nc] = struct{}{}
		n.mu.Unlock()
		n.wg.Add(1)
		go n.handleConn(nc)
	}
}

// StopServing closes the peer listener and inbound connections and waits
// for their handlers, without touching the outbound transport. Shutdown
// wants this split: inbound peer mutations must stop before the store is
// sealed, but outbound forwarding must keep working while the client
// side drains.
func (n *Node) StopServing() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		n.wg.Wait()
		return
	}
	n.closed = true
	close(n.quit)
	lis := n.lis
	for nc := range n.conns {
		nc.Close()
	}
	n.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	n.wg.Wait()
}

// Close stops inbound serving and severs outbound peer connections.
func (n *Node) Close() {
	n.StopServing()
	n.tr.Close()
}

// inboundWorkers caps concurrently-executing requests per inbound peer
// connection. The sending side multiplexes up to MaxForwards calls onto
// one connection, so inbound execution must be concurrent too — a
// serial handler would let queued calls at the tail blow their
// CallTimeout against a perfectly healthy owner.
const inboundWorkers = 32

// handleConn serves one inbound peer connection: frames are read and
// decoded in order, then executed concurrently (bounded by
// inboundWorkers); responses flow through a per-connection writer that
// coalesces queued frames into vectored writes (internal/batchio) — a
// peer multiplexing many calls costs about one writev(2) per batch.
// Responses may complete out of request order, which reqID correlation
// on the sending side tolerates by design.
func (n *Node) handleConn(nc net.Conn) {
	defer n.wg.Done()
	var reqWg sync.WaitGroup
	out := make(chan *[]byte, inboundWorkers)
	writerDone := make(chan struct{})
	go n.connWriter(nc, out, writerDone)
	defer func() {
		// Close the socket first: in-flight handlers blocked on the out
		// queue of a wedged writer fail fast instead of holding the
		// drain for the write deadline. Handlers are the only producers,
		// so out closes only after the last of them finishes.
		nc.Close()
		reqWg.Wait()
		close(out)
		<-writerDone
		n.mu.Lock()
		delete(n.conns, nc)
		n.mu.Unlock()
	}()
	sem := make(chan struct{}, inboundWorkers)
	// TReplicate executes under its own worker budget: a route handler
	// occupying a regular worker may be blocked waiting for THIS node's
	// replication acks, so if replicate applies had to queue behind route
	// handlers, two nodes coordinating writes at each other could starve
	// one another's fan-outs into a distributed deadlock. A separate
	// semaphore guarantees replicate applies always make progress.
	replSem := make(chan struct{}, inboundWorkers)
	// Sized buffered reader: a pipelined burst from a peer decodes
	// several frames per read(2), the symmetric twin of the coalesced
	// writer on the other side.
	br := bufio.NewReaderSize(nc, peerReadBuffer)
	var scratch []byte
	for {
		body, err := wire.ReadFrame(br, &scratch)
		if err != nil {
			return // EOF, peer reset, or framing error
		}
		// Decode before the next ReadFrame reuses scratch; the Msg owns
		// copies of every variable-length field.
		m := new(wire.Msg)
		derr := m.Decode(body)
		lane := sem
		if derr == nil && m.Type == wire.TReplicate {
			lane = replSem
		}
		lane <- struct{}{} // backpressure: stop reading at the cap
		reqWg.Add(1)
		go func() {
			defer func() { <-lane; reqWg.Done() }()
			var reply wire.Msg
			if derr != nil {
				reply = wire.Msg{Type: wire.TError, ReqID: m.ReqID, Value: []byte("bad peer frame: " + derr.Error())}
			} else {
				n.handlePeer(m, &reply)
				reply.ReqID = m.ReqID
			}
			bp := n.bufs.Get().(*[]byte)
			frame, err := reply.Append((*bp)[:0])
			if err != nil {
				n.cfg.Logf("p2p: encode %v reply: %v", reply.Type, err)
				frame, _ = (&wire.Msg{Type: wire.TError, ReqID: m.ReqID, Value: []byte("internal encode error")}).Append((*bp)[:0])
			}
			*bp = frame
			out <- bp // the writer always drains, even after a write error
		}()
	}
}

// connWriter flushes one inbound connection's response queue with
// coalesced vectored writes until the queue closes (batchio.WriteLoop),
// recycling frame buffers. After a failed or timed-out write it severs
// the socket (which also unblocks the connection's reader) and keeps
// draining so response producers never block on a dead peer.
func (n *Node) connWriter(nc net.Conn, out <-chan *[]byte, done chan<- struct{}) {
	defer close(done)
	batchio.WriteLoop(nc, out, 0, 0, 30*time.Second,
		func(bp *[]byte) { n.bufs.Put(bp) },
		func(err error) {
			n.cfg.Logf("p2p: write to %v: %v", nc.RemoteAddr(), err)
			nc.Close()
		}, n.pwstats)
}

// handlePeer executes one decoded peer request into reply (reqID is
// filled by the caller).
func (n *Node) handlePeer(m, reply *wire.Msg) {
	*reply = wire.Msg{}
	switch m.Type {
	case wire.TPeerProbe:
		if m.Cluster != n.cfg.Cluster.Hash() {
			reply.Type = wire.TError
			reply.Value = []byte(fmt.Sprintf("cluster membership mismatch (yours %016x, mine %016x)", m.Cluster, n.cfg.Cluster.Hash()))
			return
		}
		// Probes carry client-serving addresses both ways: learn the
		// sender's, advertise ours. Every probe exchange teaches both ends,
		// so the Members table fills in without a separate gossip round.
		if len(m.ClientAddr) > 0 {
			n.learnClientAddr(int(m.Origin), string(m.ClientAddr))
		}
		n.addrMu.Lock()
		self := n.clientAddrs[n.cfg.Cluster.Self()]
		n.addrMu.Unlock()
		reply.Type = wire.TPeerProbeOK
		reply.Cluster = n.cfg.Cluster.Hash()
		reply.Origin = uint32(n.cfg.Cluster.Self())
		reply.Held = uint64(n.cfg.Pool.ReplicaCount())
		reply.ClientAddr = append(reply.ClientAddr[:0], self...)
	case wire.TRoute:
		n.handleRoute(m, reply)
	case wire.TRepair:
		n.handleRepair(m, reply)
	case wire.TTransfer:
		n.handleTransfer(m, reply)
	case wire.TReplicate:
		n.handleReplicate(m, reply)
	default:
		reply.Type = wire.TError
		reply.Value = []byte("unexpected peer message " + m.Type.String())
	}
}

// checkCluster verifies a peer request's membership fingerprint,
// filling reply with the refusal when it disagrees. Ownership is a pure
// function of the member list, so executing a request from a
// conflicting view would silently mis-place or mis-report data even
// when the sender's owner computation happens to coincide.
func (n *Node) checkCluster(m, reply *wire.Msg) bool {
	if m.Cluster == n.cfg.Cluster.Hash() {
		return true
	}
	reply.Type = wire.TError
	reply.Value = []byte(fmt.Sprintf("cluster membership mismatch (yours %016x, mine %016x)", m.Cluster, n.cfg.Cluster.Hash()))
	return false
}

// handleRoute executes one forwarded client request on the local pool.
// The replica check is what terminates routing: with full membership
// there is exactly one hop, so a mis-routed request means the sender
// disagrees about key placement and must hear an error, not a second
// forward. This node acts as the mutation's coordinator: inserts and
// deletes fan out to the key's co-replicas and the reply is withheld
// until a quorum of replicas (this one included) has committed — the
// sender may be failing over from the dead primary, so ANY live replica
// can coordinate.
func (n *Node) handleRoute(m, reply *wire.Msg) {
	if !n.checkCluster(m, reply) {
		return
	}
	if !n.cfg.Cluster.Owns(m.Key) {
		reply.Type = wire.TError
		reply.Value = []byte(fmt.Sprintf("not a replica of %v (its region is %d, mine is %d)",
			m.Key, n.cfg.Cluster.OwnerOf(m.Key), n.cfg.Cluster.Self()))
		return
	}
	pool := n.cfg.Pool
	origin := m.Origin
	if origin == wire.OriginAuto {
		origin = uint32(pool.AutoOrigin(m.Key))
	} else if origin >= uint32(pool.Overlay().N()) {
		reply.Type = wire.TError
		reply.Value = []byte(fmt.Sprintf("origin %d out of range (%d cluster members)", origin, pool.Overlay().N()))
		return
	}
	var start time.Time
	traced := m.Traced && n.tracer != nil
	if traced {
		start = time.Now()
		defer func() {
			// route_exec is the executing-side span of a relayed request:
			// it nests inside the relay's forward span and the sender's
			// peer_call span under the same trace ID.
			n.tracer.Record(m.Trace, trace.KindRouteExec, start, time.Since(start), uint64(m.RouteKind))
		}()
	}
	var trc uint64
	if m.Traced {
		trc = m.Trace
	}
	// Start the replication fan-out before the local execution so the
	// co-replicas' WAL commits overlap this node's; the quorum wait
	// below then usually finds the acks already in.
	var repl chan error
	if (m.RouteKind == wire.TInsert || m.RouteKind == wire.TDelete) && n.cfg.Cluster.Quorum() > 1 {
		repl = make(chan error, 1)
		kind, key, value := m.RouteKind, m.Key, m.Value
		go func() { repl <- n.Replicate(kind, key, origin, value, trc) }()
	}
	switch m.RouteKind {
	case wire.TInsert:
		// Each inbound request decodes into its own Msg, so m.Value is a
		// private allocation the engine may retain directly.
		res, err := pool.Insert(int(origin), m.Key, m.Value)
		if err != nil {
			reply.Type = wire.TError
			reply.Value = []byte("storage: " + err.Error())
			return
		}
		reply.Type = wire.TInsertOK
		reply.Insert = wire.InsertReplyFrom(res)
	case wire.TLookup:
		res := pool.Lookup(int(origin), m.Key)
		reply.Type = wire.TLookupOK
		reply.Lookup = wire.LookupReplyFrom(res)
	case wire.TDelete:
		removed, err := pool.Delete(int(origin), m.Key)
		if err != nil {
			reply.Type = wire.TError
			reply.Value = []byte("storage: " + err.Error())
			return
		}
		reply.Type = wire.TDeleteOK
		reply.Deleted = uint32(removed)
	}
	if repl != nil {
		if rerr := <-repl; rerr != nil {
			// Local commit survived but the quorum did not: the write must
			// not be acked (the client may never find it after this node
			// dies). Anti-entropy reconciles the surviving local copy.
			reply.Type = wire.TError
			reply.Value = []byte("replication: " + rerr.Error())
		}
	}
}

// handleReplicate applies one fanned-out mutation from the coordinating
// replica. It is a leaf operation: the apply is local (WAL-committed
// like any pool mutation) and never re-forwards or re-replicates — the
// coordinator is the one counting acks. The replica check mirrors
// handleRoute's: a TReplicate for a key this node does not replicate
// means the sender's placement view disagrees.
func (n *Node) handleReplicate(m, reply *wire.Msg) {
	if !n.checkCluster(m, reply) {
		return
	}
	if !n.cfg.Cluster.Owns(m.Key) {
		reply.Type = wire.TError
		reply.Value = []byte(fmt.Sprintf("not a replica of %v (its region is %d, mine is %d)",
			m.Key, n.cfg.Cluster.OwnerOf(m.Key), n.cfg.Cluster.Self()))
		return
	}
	pool := n.cfg.Pool
	origin := m.Origin
	if origin == wire.OriginAuto {
		origin = uint32(pool.AutoOrigin(m.Key))
	} else if origin >= uint32(pool.Overlay().N()) {
		reply.Type = wire.TError
		reply.Value = []byte(fmt.Sprintf("origin %d out of range (%d cluster members)", origin, pool.Overlay().N()))
		return
	}
	if m.Traced && n.tracer != nil {
		start := time.Now()
		defer func() {
			n.tracer.Record(m.Trace, trace.KindReplicateExec, start, time.Since(start), uint64(m.RouteKind))
		}()
	}
	switch m.RouteKind {
	case wire.TInsert:
		if _, err := pool.Insert(int(origin), m.Key, m.Value); err != nil {
			reply.Type = wire.TError
			reply.Value = []byte("storage: " + err.Error())
			return
		}
	case wire.TDelete:
		if _, err := pool.Delete(int(origin), m.Key); err != nil {
			reply.Type = wire.TError
			reply.Value = []byte("storage: " + err.Error())
			return
		}
	}
	reply.Type = wire.TReplicateOK
}

// repairBudget bounds the entry bytes of one TRepairOK page well below
// wire.MaxFrame, leaving room for the frame and body headers. A single
// entry above the budget still ships alone (wire.MaxValue guarantees it
// fits a one-entry page), so pagination always makes progress.
const repairBudget = wire.MaxFrame / 2

// handleRepair answers one page of a pull-style anti-entropy request:
// replicas this node holds whose keys belong to the asked-for region,
// streamed in the store's stable (shard, node, key) order starting at
// the request's cursor, up to the page byte budget. When the budget cuts
// the page, the reply carries More plus the cursor of the first withheld
// replica, and iteration stops right there: the walk never visits (or
// locks) the shards past the stop point. Within the resume shard, the
// engine re-collects and re-sorts the resume node's remaining keys each
// page (stores are hash maps; see Engine.ForEachReplicaFrom), so one
// pathologically huge single-node store still costs O(remaining) per
// page — an ordered index would remove that term (ROADMAP). Entry
// values alias engine storage, which never mutates stored bytes, so
// encoding after the scan is safe.
func (n *Node) handleRepair(m, reply *wire.Msg) {
	if !n.checkCluster(m, reply) {
		return
	}
	if int(m.Region) >= n.cfg.Cluster.N() {
		reply.Type = wire.TError
		reply.Value = []byte(fmt.Sprintf("region %d out of range (%d members)", m.Region, n.cfg.Cluster.N()))
		return
	}
	var start time.Time
	if m.Traced && n.tracer != nil {
		start = time.Now()
		defer func() {
			n.tracer.Record(m.Trace, trace.KindRepairExec, start, time.Since(start), uint64(m.Region))
		}()
	}
	var entries []wire.TransferEntry
	size, oversize := 0, 0
	cur := discovery.ReplicaCursor{Shard: m.Cursor.Shard, Node: m.Cursor.Node, Key: m.Cursor.Key}
	next, done := n.cfg.Pool.ForEachReplicaFrom(cur, func(node int, origin uint32, key idspace.ID, value []byte) bool {
		if n.cfg.Cluster.OwnerOf(key) != int(m.Region) {
			return true // foreign region: skip, keep walking
		}
		if len(value) > wire.MaxValue {
			// Cannot ride any page — only a direct library placement can
			// produce such a value (the serving layer caps inserts at
			// MaxValue). Count it and keep walking: a skipped replica
			// must be loud, never a silent repair gap.
			oversize++
			return true
		}
		cost := wire.EntryOverhead + len(value)
		if len(entries) > 0 && size+cost > repairBudget {
			return false // page full: stop the walk at this replica
		}
		entries = append(entries, wire.TransferEntry{Node: uint32(node), Origin: origin, Key: key, Value: value})
		size += cost
		return true
	})
	if oversize > 0 {
		n.repairLogf("p2p: repair of region %d skipped %d replicas above wire.MaxValue (unrepairable; placed by direct import?)", m.Region, oversize)
	}
	reply.Type = wire.TRepairOK
	reply.Region = m.Region
	reply.Entries = entries
	if !done {
		reply.More = true
		reply.Cursor = wire.RepairCursor{Shard: next.Shard, Node: next.Node, Key: next.Key}
		n.repairLogf("p2p: repair of region %d paged at budget: %d entries (%d bytes) sent, cursor handed back", m.Region, len(entries), size)
	}
}

// handleTransfer applies pushed replicas for regions this node owns,
// reproducing the sender's exact placements. Entries for other regions
// are refused by not counting them: the sender keeps anything the
// accepted count does not cover. The owned entries of a batch are
// imported together (Pool.ImportBatch): per shard, one lock acquisition
// and one group-committed WAL append cover the whole batch, instead of
// a lock-log-fsync cycle per entry.
func (n *Node) handleTransfer(m, reply *wire.Msg) {
	if !n.checkCluster(m, reply) {
		return
	}
	if m.Traced && n.tracer != nil {
		start := time.Now()
		defer func() {
			n.tracer.Record(m.Trace, trace.KindTransferExec, start, time.Since(start), uint64(len(m.Entries)))
		}()
	}
	// Decoded entry values are freshly allocated (see wire), safe for the
	// engine to retain.
	batch := make([]discovery.ReplicaEntry, 0, len(m.Entries))
	for i := range m.Entries {
		e := &m.Entries[i]
		if !n.cfg.Cluster.Owns(e.Key) {
			n.cfg.Logf("p2p: transfer refused: key %v not owned here", e.Key)
			continue
		}
		batch = append(batch, discovery.ReplicaEntry{Node: int(e.Node), Origin: e.Origin, Key: e.Key, Value: e.Value})
	}
	// accepted (not fresh) is what the sender needs: it may drop its
	// copy of every entry this pool now holds, whether or not the import
	// had to write anything.
	accepted, _, err := n.cfg.Pool.ImportBatch(batch)
	if err != nil {
		n.cfg.Logf("p2p: transfer apply: %v", err)
	}
	reply.Type = wire.TTransferOK
	reply.Accepted = uint32(accepted)
}

// Join probes every peer until it answers or the timeout passes. It
// returns nil when the whole cluster is reachable and an error naming
// the peers that are not; the caller decides whether to serve anyway
// (the usual choice — a node serves its own region regardless, and dead
// peers are retried lazily by the first forwarded request).
func (n *Node) Join(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	c := n.cfg.Cluster
	errs := make([]error, c.N())
	var wg sync.WaitGroup
	for i := 0; i < c.N(); i++ {
		if i == c.Self() {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				held, err := n.tr.Probe(i)
				if err == nil {
					n.cfg.Logf("p2p: joined %s (region %d, %d replicas held)", c.Addr(i), i, held)
					errs[i] = nil
					return
				}
				errs[i] = err
				if time.Now().After(deadline) {
					return
				}
				select {
				case <-time.After(100 * time.Millisecond):
				case <-n.quit:
					errs[i] = errNodeClosed
					return
				}
			}
		}(i)
	}
	wg.Wait()
	var bad []string
	for i, err := range errs {
		if err != nil {
			bad = append(bad, fmt.Sprintf("%s: %v", c.Addr(i), err))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("p2p: join incomplete: %d peers unreachable: %v", len(bad), bad)
	}
	return nil
}

// transferBatch bounds one TTransfer request's entry count; transfer
// batches also respect repairBudget in bytes so every batch is
// encodable within wire.MaxFrame.
const transferBatch = 128

// Handoff pushes every locally-held replica whose key this node does
// not replicate to the key's primary owner, dropping the local copy
// once the owner has acknowledged the whole batch. It is how a node
// sheds data that became foreign — typically state recovered from a
// data directory written under a different membership or replication
// factor. Data the owner does not fully accept is kept locally for a
// later retry. Each owner is probe-verified before any batch is sent:
// Handoff is the one path that DELETES local data on a peer's say-so,
// so a peer whose membership fingerprint disagrees must never receive
// (and ack) a batch under a conflicting ownership view.
func (n *Node) Handoff() (moved int, err error) {
	byOwner := make(map[int][]wire.TransferEntry)
	n.cfg.Pool.ForEachReplica(func(node int, origin uint32, key idspace.ID, value []byte) {
		if n.cfg.Cluster.Owns(key) {
			return // key lives here (owner or co-replica): nothing to shed
		}
		owner := n.cfg.Cluster.OwnerOf(key)
		byOwner[owner] = append(byOwner[owner], wire.TransferEntry{Node: uint32(node), Origin: origin, Key: key, Value: value})
	})
	var firstErr error
	for owner, entries := range byOwner {
		if _, perr := n.tr.Probe(owner); perr != nil {
			if firstErr == nil {
				firstErr = perr
			}
			continue // keep the data; never drop on an unverified peer
		}
		for len(entries) > 0 {
			select {
			case <-n.quit:
				return moved, errNodeClosed
			default:
			}
			// Batch by count and by bytes, so a batch always fits one
			// frame. An entry too large to transfer at all (its value
			// nearly fills a frame alone) is kept locally and logged.
			size, take := 0, 0
			for take < len(entries) && take < transferBatch {
				cost := wire.EntryOverhead + len(entries[take].Value)
				if size+cost > repairBudget {
					break
				}
				size += cost
				take++
			}
			if take == 0 {
				n.cfg.Logf("p2p: replica %v too large to transfer (%d bytes); keeping it local", entries[0].Key, len(entries[0].Value))
				entries = entries[1:]
				continue
			}
			batch := entries[:take]
			entries = entries[take:]
			req := &wire.Msg{Type: wire.TTransfer, Cluster: n.cfg.Cluster.Hash(), Entries: batch}
			if tr := n.tracer.Sample(); tr != 0 {
				req.Traced = true
				req.Trace = tr
			}
			resp, cerr := n.tr.Call(owner, req)
			if cerr != nil {
				if firstErr == nil {
					firstErr = cerr
				}
				break
			}
			// Distinguish a refusal from a short accept: a TError (or
			// TWrongView) reply carries the peer's actual reason — e.g. a
			// membership fingerprint mismatch — and Accepted is garbage in
			// that frame, so formatting it as "accepted 0 of N" would bury
			// the diagnosis (mirrors PullRepair's response handling).
			switch {
			case resp.Type == wire.TError:
				if firstErr == nil {
					firstErr = fmt.Errorf("p2p: %s: transfer refused: %s", n.cfg.Cluster.Addr(owner), resp.ErrorText())
				}
			case resp.Type != wire.TTransferOK:
				if firstErr == nil {
					firstErr = fmt.Errorf("p2p: %s: unexpected transfer response %v", n.cfg.Cluster.Addr(owner), resp.Type)
				}
			case int(resp.Accepted) != len(batch):
				if firstErr == nil {
					firstErr = fmt.Errorf("p2p: %s accepted %d of %d transferred replicas", n.cfg.Cluster.Addr(owner), resp.Accepted, len(batch))
				}
			}
			if resp.Type != wire.TTransferOK || int(resp.Accepted) != len(batch) {
				break
			}
			for i := range batch {
				if _, derr := n.cfg.Pool.DropReplica(int(batch[i].Node), batch[i].Key); derr != nil && firstErr == nil {
					firstErr = derr
				}
			}
			moved += len(batch)
		}
	}
	return moved, firstErr
}

// PullRepair asks peer i for every replica of region that the peer
// holds (region identity is the key's primary owner; a replicated node
// pulls each region it replicates in turn — see AntiEntropy), streaming
// the peer's store in budgeted pages: each TRepairOK that was cut by
// the byte budget carries a resume cursor, which the loop sends back
// verbatim until the peer reports the walk complete — so any amount of
// repairable state converges, not just the first frame's worth. It is
// additive (the peer keeps its copies; Handoff on the peer is the
// shedding side) and idempotent — a byte-identical placement is skipped
// by the import with no write-ahead record, so applied counts only the
// replicas this pull actually changed: 0 means the peer and this node
// were already in sync for the region, however many pages were walked.
func (n *Node) PullRepair(i, region int) (applied int, err error) {
	// Verify the peer shares this cluster's membership view first; a
	// peer with a different member list computes different owners, and
	// its idea of "region Self" is not this node's region.
	if _, err := n.tr.Probe(i); err != nil {
		return 0, err
	}
	// One sampling decision covers the whole paged walk, so a sampled
	// repair's pages share a trace ID (one peer_call + repair_exec pair
	// per page).
	tr := n.tracer.Sample()
	var cursor wire.RepairCursor
	for page := 0; ; page++ {
		select {
		case <-n.quit:
			return applied, errNodeClosed
		default:
		}
		req := &wire.Msg{Type: wire.TRepair, Cluster: n.cfg.Cluster.Hash(), Region: uint32(region), Cursor: cursor}
		if tr != 0 {
			req.Traced = true
			req.Trace = tr
		}
		resp, err := n.tr.Call(i, req)
		if err != nil {
			return applied, err
		}
		if resp.Type == wire.TError {
			return applied, fmt.Errorf("p2p: %s: repair refused: %s", n.cfg.Cluster.Addr(i), resp.ErrorText())
		}
		if resp.Type != wire.TRepairOK {
			return applied, fmt.Errorf("p2p: %s: unexpected repair response %v", n.cfg.Cluster.Addr(i), resp.Type)
		}
		// Each accepted page lands as one batch: per shard, one lock
		// acquisition and one group-committed WAL append for the page's
		// entries, instead of a cycle per entry.
		batch := make([]discovery.ReplicaEntry, 0, len(resp.Entries))
		for j := range resp.Entries {
			e := &resp.Entries[j]
			if !n.cfg.Cluster.Owns(e.Key) {
				continue // a confused peer cannot plant foreign data here
			}
			batch = append(batch, discovery.ReplicaEntry{Node: int(e.Node), Origin: e.Origin, Key: e.Key, Value: e.Value})
		}
		// Count fresh imports only: a steady-state re-walk of an
		// in-sync peer pulls pages but applies nothing, and must read
		// as 0 — periodic anti-entropy logs would otherwise report the
		// full keyspace as "pulled" every pass forever.
		_, fresh, ierr := n.cfg.Pool.ImportBatch(batch)
		applied += fresh
		if ierr != nil {
			return applied, ierr
		}
		if !resp.More {
			if page > 0 {
				n.cfg.Logf("p2p: pull repair from %s converged after %d pages (%d replicas)", n.cfg.Cluster.Addr(i), page+1, applied)
			}
			return applied, nil
		}
		// A well-behaved responder's cursor always advances; a stuck one
		// would otherwise loop forever. Page size is irrelevant: a
		// responder resending the same NON-empty page with the same
		// cursor is just as stuck (we would re-import the same batch
		// every iteration), so any repeated cursor under More is fatal.
		if resp.Cursor == cursor {
			return applied, fmt.Errorf("p2p: %s: repair cursor made no progress at page %d (%d entries re-sent)",
				n.cfg.Cluster.Addr(i), page, len(resp.Entries))
		}
		cursor = resp.Cursor
	}
}

// AntiEntropy runs one full maintenance pass: shed replicas of keys
// this node no longer holds to their owners, then pull every region
// this node replicates from every other peer. On a steady cluster both
// halves are no-ops; after a crash, restart, or membership change they
// converge data back onto the replica set — a node that missed quorum
// writes while dead catches up here. The error (if any) aggregates the
// whole pass: the handoff failure plus one entry per unreachable peer,
// so an operator sees exactly which peers kept the pass incomplete
// while every reachable peer's regions still converged.
func (n *Node) AntiEntropy() (moved, pulled int, err error) {
	var handoffErr error
	moved, handoffErr = n.Handoff()
	regions := n.cfg.Cluster.ReplicatedRegions()
	var unreachable []string
	for i := 0; i < n.cfg.Cluster.N(); i++ {
		if i == n.cfg.Cluster.Self() {
			continue
		}
		var peerErr error
		for _, region := range regions {
			select {
			case <-n.quit:
				return moved, pulled, errNodeClosed
			default:
			}
			got, perr := n.PullRepair(i, region)
			pulled += got
			if perr != nil {
				peerErr = perr
				break // the peer is down or confused; its other regions can wait
			}
		}
		if peerErr != nil {
			unreachable = append(unreachable, fmt.Sprintf("%s: %v", n.cfg.Cluster.Addr(i), peerErr))
		}
	}
	switch {
	case handoffErr != nil && len(unreachable) > 0:
		err = fmt.Errorf("p2p: anti-entropy incomplete: handoff: %v; %d peers unreachable: %v", handoffErr, len(unreachable), unreachable)
	case handoffErr != nil:
		err = handoffErr
	case len(unreachable) > 0:
		err = fmt.Errorf("p2p: anti-entropy incomplete: %d peers unreachable: %v", len(unreachable), unreachable)
	}
	return moved, pulled, err
}
