package p2p_test

import (
	"testing"
	"time"

	discovery "discovery"
	"discovery/internal/faultnet"
	"discovery/internal/p2p"
	"discovery/internal/server"
	"discovery/internal/wire"
)

// TestReplicateRetryIdempotent pins the at-least-once delivery contract
// of the replication fan-out: a TReplicate severed between apply and
// reply (the partition lands mid-flight — the replica committed the
// mutation but the coordinator never hears the ack) is retried by a
// later coordination attempt, and the duplicate apply must be a no-op.
// Replica placement is deterministic per (origin, key), so a re-insert
// overwrites the same replica slots rather than accreting new ones —
// this test is the regression gate on that property, measured by the
// replica count staying flat across the duplicate.
//
// The severed link is a real faultnet proxy on the peer transport:
// the request direction delivers, the reply direction blackholes, which
// no in-process mock of Call can reproduce faithfully.
func TestReplicateRetryIdempotent(t *testing.T) {
	addrs := reserveAddrs(t, 2)

	// The replica node (B): a full in-process node with R=2, so it
	// accepts TReplicate for every key.
	clusterB, err := p2p.NewCluster(addrs[1], addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	ovB, err := p2p.NewRemoteOverlay(clusterB)
	if err != nil {
		t.Fatal(err)
	}
	poolB, err := discovery.NewPool(ovB, 2, discovery.WithSeed(1),
		discovery.WithRegion(clusterB.Self(), clusterB.N()), discovery.WithReplication(2))
	if err != nil {
		t.Fatal(err)
	}
	nodeB, err := p2p.NewNode(p2p.Config{
		Cluster:     clusterB,
		Overlay:     ovB,
		Pool:        poolB,
		DialTimeout: 200 * time.Millisecond,
		CallTimeout: 2 * time.Second,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nodeB.Start(addrs[1]); err != nil {
		t.Fatal(err)
	}
	srvB, err := server.New(server.Config{Pool: poolB, Owns: nodeB.Owns, Forward: nodeB.Forward, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srvB.Close()
		nodeB.Close()
	})

	// The coordinator side (A): just a transport, dialing B through a
	// fault-injection proxy.
	proxy, err := faultnet.Listen("127.0.0.1:0", addrs[1], t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })
	clusterA, err := p2p.NewCluster(addrs[0], addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	ovA, err := p2p.NewRemoteOverlay(clusterA)
	if err != nil {
		t.Fatal(err)
	}
	target := 1 // B's rank; addrs from reserveAddrs are sorted
	if clusterA.Addr(target) != addrs[1] {
		target = 0
	}
	tr := p2p.NewTransport(clusterA, ovA, p2p.TransportConfig{
		DialTimeout: 200 * time.Millisecond,
		CallTimeout: 400 * time.Millisecond,
		DialVia:     map[string]string{addrs[1]: proxy.Addr()},
		Logf:        t.Logf,
	})
	t.Cleanup(tr.Close)

	key := discovery.NewID("replicate-retry-idempotent")
	msg := func() *wire.Msg {
		return &wire.Msg{Type: wire.TReplicate, RouteKind: wire.TInsert, Cluster: clusterA.Hash(),
			Key: key, Origin: wire.OriginAuto, Value: []byte("v1")}
	}

	// Sever the reply direction only: the mutation is delivered and
	// applied on B, but the coordinator's call times out — exactly the
	// in-flight-during-partition shape.
	proxy.SetFaults(faultnet.Backward, faultnet.Faults{Blackhole: true})
	if resp, err := tr.Call(target, msg()); err == nil {
		t.Fatalf("call through severed reply link succeeded: %v", resp.Type)
	}
	// B must have applied it regardless (the request got through).
	deadline := time.Now().Add(5 * time.Second)
	for poolB.ReplicaCount() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("replica node never applied the severed-in-flight mutation")
		}
		time.Sleep(10 * time.Millisecond)
	}
	applied := poolB.ReplicaCount()
	if res := poolB.Lookup(int(poolB.AutoOrigin(key)), key); !res.Found {
		t.Fatal("mutation applied but key not findable on the replica")
	}

	// Heal and retry the SAME mutation — the coordinator cannot know
	// the first attempt landed, so at-least-once delivery replays it.
	proxy.Heal()
	resp, err := tr.Call(target, msg())
	if err != nil {
		t.Fatalf("retry after heal: %v", err)
	}
	if resp.Type != wire.TReplicateOK {
		t.Fatalf("retry response = %v, want TReplicateOK", resp.Type)
	}
	if got := poolB.ReplicaCount(); got != applied {
		t.Fatalf("duplicate apply changed the replica count: %d -> %d (double-apply)", applied, got)
	}
	if res := poolB.Lookup(int(poolB.AutoOrigin(key)), key); !res.Found {
		t.Fatal("key lost after duplicate apply")
	}
}
