//go:build race

package p2p

// raceEnabled skips allocation gates under the race detector, which
// deliberately bypasses sync.Pool caching and so allocates where
// production builds do not.
const raceEnabled = true
