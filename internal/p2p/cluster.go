// Package p2p is the node-to-node transport that turns the discovery
// engine into a multi-process cluster: separate OS processes, each owning
// one contiguous region of the 160-bit keyspace, exchanging internal/wire
// peer frames (route, probe, repair, replica-transfer) over TCP.
//
// # Model
//
// Membership is static per process lifetime and derived identically on
// every node: the sorted, deduplicated set of peer addresses from the
// bootstrap list (plus the node's own advertised address). A node's
// cluster index is its address's rank in that ordering, and the index is
// also its keyspace region (discovery.OwnerOf): nodes that agree on the
// member list agree on every key's owner with no coordination protocol.
//
// A client may talk to any node. Requests for keys the node owns execute
// on its local engine pool; everything else is wrapped in a TRoute frame
// and relayed to the owner over a multiplexed peer connection, with the
// owner's reply relayed back byte-for-byte. There is exactly one routing
// hop — every node knows the full member list — so there are no forward
// loops to suppress beyond the owner check on the receiving side.
//
// Availability is all-or-nothing per region: if a region's owner is down,
// requests for its keys fail fast with an error (never a silent drop or a
// bogus not-found ack) while every other region keeps serving.
// Cross-node replication is the next layer up; the replica-transfer and
// repair primitives here are its building blocks.
//
// Forwarded writes are at-least-once, not at-most-once: a routed request
// that times out may still have been applied by the owner (the reply was
// just late), so a client that retries after an error may re-execute the
// write. MPIL replica placement makes this benign — re-inserting a key
// overwrites the same per-node replica slots — but counters and stats on
// the owner count both executions.
package p2p

import (
	"fmt"
	"hash/fnv"
	"sort"

	discovery "discovery"
	"discovery/internal/idspace"
)

// Cluster is the static membership view: every peer address, sorted, and
// this node's position among them. The same bootstrap set yields the
// same Cluster on every member.
type Cluster struct {
	addrs []string
	self  int
	hash  uint64
}

// NewCluster derives membership from this node's advertised address and
// the bootstrap list (which may or may not include self; both spellings
// work). Addresses are compared as strings, so every member must be
// configured with the identical spelling of each address.
func NewCluster(self string, bootstrap []string) (*Cluster, error) {
	if self == "" {
		return nil, fmt.Errorf("p2p: self address is empty")
	}
	set := map[string]bool{self: true}
	for _, a := range bootstrap {
		if a != "" {
			set[a] = true
		}
	}
	addrs := make([]string, 0, len(set))
	for a := range set {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	c := &Cluster{addrs: addrs, self: sort.SearchStrings(addrs, self)}
	c.hash = fingerprint(addrs)
	return c, nil
}

// fingerprint hashes the ordered member list with FNV-1a. Probes carry it
// so nodes configured with different member lists refuse to serve each
// other instead of silently disagreeing about key ownership.
func fingerprint(addrs []string) uint64 {
	h := fnv.New64a()
	for _, a := range addrs {
		h.Write([]byte(a))    //nolint:errcheck // hash.Hash never errors
		h.Write([]byte{'\n'}) //nolint:errcheck
	}
	return h.Sum64()
}

// N returns the member count.
func (c *Cluster) N() int { return len(c.addrs) }

// Self returns this node's cluster index (= its keyspace region).
func (c *Cluster) Self() int { return c.self }

// Addr returns member i's peer address.
func (c *Cluster) Addr(i int) string { return c.addrs[i] }

// Addrs returns a copy of the ordered member list.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// Hash returns the membership fingerprint carried by probes.
func (c *Cluster) Hash() uint64 { return c.hash }

// OwnerOf returns the cluster index owning key.
func (c *Cluster) OwnerOf(key idspace.ID) int {
	return discovery.OwnerOf(key, len(c.addrs))
}

// Owns reports whether this node owns key.
func (c *Cluster) Owns(key idspace.ID) bool { return c.OwnerOf(key) == c.self }
