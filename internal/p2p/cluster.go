// Package p2p is the node-to-node transport that turns the discovery
// engine into a multi-process cluster: separate OS processes, each owning
// one contiguous region of the 160-bit keyspace, exchanging internal/wire
// peer frames (route, probe, repair, replica-transfer) over TCP.
//
// # Model
//
// Membership is static per process lifetime and derived identically on
// every node: the sorted, deduplicated set of peer addresses from the
// bootstrap list (plus the node's own advertised address). A node's
// cluster index is its address's rank in that ordering, and the index is
// also its keyspace region (discovery.OwnerOf): nodes that agree on the
// member list agree on every key's owner with no coordination protocol.
//
// A client may talk to any node. Requests for keys the node owns execute
// on its local engine pool; everything else is wrapped in a TRoute frame
// and relayed to the owner over a multiplexed peer connection, with the
// owner's reply relayed back byte-for-byte. There is exactly one routing
// hop — every node knows the full member list — so there are no forward
// loops to suppress beyond the owner check on the receiving side.
//
// Each key lives on R consecutive regions (discovery.ReplicasOf; R is
// the cluster's replication factor, 1 = unreplicated). Mutations are
// coordinated by whichever replica receives them: it executes locally,
// fans the mutation to its co-replicas as TReplicate frames, and acks
// once a quorum (⌈(R+1)/2⌉) of replicas — itself included — has
// committed. Reads are served by any live replica: a node routing to a
// dead peer fails over to the key's next replica in rank order, and only
// when every replica is unreachable does the request fail fast with an
// error (never a silent drop or a bogus not-found ack) while every other
// region keeps serving. With R=1 this degrades to the original
// all-or-nothing-per-region behavior.
//
// Forwarded writes are at-least-once, not at-most-once: a routed request
// that times out may still have been applied by the owner (the reply was
// just late), so a client that retries after an error may re-execute the
// write. MPIL replica placement makes this benign — re-inserting a key
// overwrites the same per-node replica slots — but counters and stats on
// the owner count both executions.
package p2p

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	discovery "discovery"
	"discovery/internal/idspace"
)

// Cluster is the static membership view: every peer address, sorted,
// this node's position among them, and the replication factor every
// member must agree on. The same bootstrap set and replication yield the
// same Cluster on every member.
type Cluster struct {
	addrs []string
	self  int
	repl  int
	hash  uint64
}

// NewCluster derives membership from this node's advertised address and
// the bootstrap list (which may or may not include self; both spellings
// work). Addresses are compared as strings, so every member must be
// configured with the identical spelling of each address. replication is
// how many consecutive regions hold each key, clamped to [1, member
// count]; it is mixed into the membership fingerprint, so nodes
// configured with different replication factors refuse each other.
func NewCluster(self string, bootstrap []string, replication int) (*Cluster, error) {
	if self == "" {
		return nil, fmt.Errorf("p2p: self address is empty")
	}
	set := map[string]bool{self: true}
	for _, a := range bootstrap {
		if a != "" {
			set[a] = true
		}
	}
	addrs := make([]string, 0, len(set))
	for a := range set {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	if replication < 1 {
		replication = 1
	}
	if replication > len(addrs) {
		replication = len(addrs)
	}
	c := &Cluster{addrs: addrs, self: sort.SearchStrings(addrs, self), repl: replication}
	c.hash = fingerprint(addrs, replication)
	return c, nil
}

// fingerprint hashes the ordered member list and the replication factor
// with FNV-1a. Probes carry it so nodes configured with different member
// lists (or replication factors) refuse to serve each other instead of
// silently disagreeing about key placement. Replication 1 hashes exactly
// like the pre-replication fingerprint, so unreplicated clusters keep
// their wire identity across upgrades.
func fingerprint(addrs []string, replication int) uint64 {
	h := fnv.New64a()
	for _, a := range addrs {
		h.Write([]byte(a))    //nolint:errcheck // hash.Hash never errors
		h.Write([]byte{'\n'}) //nolint:errcheck
	}
	if replication > 1 {
		var rb [8]byte
		binary.BigEndian.PutUint64(rb[:], uint64(replication))
		h.Write([]byte("replication\n")) //nolint:errcheck
		h.Write(rb[:])                   //nolint:errcheck
	}
	return h.Sum64()
}

// N returns the member count.
func (c *Cluster) N() int { return len(c.addrs) }

// Self returns this node's cluster index (= its keyspace region).
func (c *Cluster) Self() int { return c.self }

// Addr returns member i's peer address.
func (c *Cluster) Addr(i int) string { return c.addrs[i] }

// Addrs returns a copy of the ordered member list.
func (c *Cluster) Addrs() []string { return append([]string(nil), c.addrs...) }

// Hash returns the membership fingerprint carried by probes.
func (c *Cluster) Hash() uint64 { return c.hash }

// R returns the replication factor: how many consecutive regions hold
// each key (1 = unreplicated).
func (c *Cluster) R() int { return c.repl }

// Quorum returns how many replica commits a mutation needs before it is
// acked: ⌈(R+1)/2⌉, a majority that also covers R=1 (quorum 1) and R=2
// (quorum 2, both replicas).
func (c *Cluster) Quorum() int { return (c.repl + 2) / 2 }

// OwnerOf returns the cluster index owning key: the first of its
// replicas and the coordinator of choice while it is alive.
func (c *Cluster) OwnerOf(key idspace.ID) int {
	return discovery.OwnerOf(key, len(c.addrs))
}

// ReplicasOf returns the cluster indices holding key, owner first, in
// failover rank order.
func (c *Cluster) ReplicasOf(key idspace.ID) []int {
	return discovery.ReplicasOf(key, len(c.addrs), c.repl)
}

// Owns reports whether this node is one of key's replicas (with
// replication 1: whether it is key's owner).
func (c *Cluster) Owns(key idspace.ID) bool {
	return discovery.Replicates(key, c.self, len(c.addrs), c.repl)
}

// ReplicatedRegions returns the region indices whose keys this node
// holds: its own region plus the R-1 regions preceding it (their
// replica sets extend forward over this node), in ascending wrap order
// ending at Self. With replication 1 it is just [Self].
func (c *Cluster) ReplicatedRegions() []int {
	n := len(c.addrs)
	out := make([]int, 0, c.repl)
	for i := c.repl - 1; i >= 0; i-- {
		out = append(out, ((c.self-i)%n+n)%n)
	}
	return out
}
