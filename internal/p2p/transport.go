package p2p

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"discovery/internal/wire"
)

// Transport is the outbound half of the peer protocol: one lazily-dialed,
// automatically-redialed TCP connection per peer, multiplexing concurrent
// requests by reqID. Calls are synchronous; concurrency comes from the
// callers (the runtime forwards each client request on its own
// goroutine), which pipeline freely over the shared connection.
type Transport struct {
	cluster     *Cluster
	overlay     *RemoteOverlay
	dialTimeout time.Duration
	callTimeout time.Duration
	logf        func(format string, args ...any)
	peers       []*peerConn

	mu      sync.Mutex
	closed  bool
	probing bool

	proberQuit chan struct{}
	proberWg   sync.WaitGroup
}

// errTransportClosed fails calls after Close.
var errTransportClosed = errors.New("p2p: transport closed")

// NewTransport builds the peer-connection table. Zero timeouts select
// the defaults (500ms dial, 5s call).
func NewTransport(c *Cluster, ov *RemoteOverlay, dialTimeout, callTimeout time.Duration, logf func(string, ...any)) *Transport {
	if dialTimeout <= 0 {
		dialTimeout = 500 * time.Millisecond
	}
	if callTimeout <= 0 {
		callTimeout = 5 * time.Second
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	t := &Transport{
		cluster:     c,
		overlay:     ov,
		dialTimeout: dialTimeout,
		callTimeout: callTimeout,
		logf:        logf,
		peers:       make([]*peerConn, c.N()),
		proberQuit:  make(chan struct{}),
	}
	for i := range t.peers {
		t.peers[i] = &peerConn{t: t, idx: i, addr: c.Addr(i), pending: make(map[uint64]chan *wire.Msg)}
	}
	return t
}

// redialBackoff is how long after a SLOW dial failure (a timeout —
// e.g. a blackholed peer) further calls fail fast instead of queueing
// up behind serial dial attempts, each burning its own dial timeout.
// Fast failures (connection refused, as on a crashed-but-routable peer)
// never arm the backoff: retrying them is nearly free, and a peer that
// just restarted must be reachable immediately.
const redialBackoff = 250 * time.Millisecond

// peerConn is the connection state for one peer. nc is nil when
// disconnected; the next call redials.
//
// Two locks with distinct jobs: wmu serializes the slow path (dialing
// and socket writes) among callers, while mu guards only the cheap
// shared state (nc, the pending map, the reqID counter). readLoop needs
// just mu to deliver responses, so a caller stuck in a dial or a slow
// write never delays the delivery of responses already received.
type peerConn struct {
	t    *Transport
	idx  int
	addr string

	wmu sync.Mutex // dial + write serialization
	enc []byte     // frame encode scratch, guarded by wmu

	mu       sync.Mutex
	nc       net.Conn
	nextID   uint64
	pending  map[uint64]chan *wire.Msg
	lastFail time.Time // last failed dial, for redialBackoff
}

// Call sends m to peer i and waits for its response, dialing or redialing
// as needed. m.ReqID is assigned by the transport. The returned message
// is owned by the caller. Transport health (RemoteOverlay.Alive) is
// updated as a side effect.
func (t *Transport) Call(i int, m *wire.Msg) (*wire.Msg, error) {
	if i == t.cluster.Self() {
		return nil, fmt.Errorf("p2p: call to self (index %d)", i)
	}
	pc := t.peers[i]
	ch := make(chan *wire.Msg, 1)

	pc.wmu.Lock()
	nc, err := pc.connLocked()
	if err != nil {
		pc.wmu.Unlock()
		t.overlay.SetAlive(i, false)
		return nil, err
	}
	pc.mu.Lock()
	pc.nextID++
	id := pc.nextID
	pc.pending[id] = ch
	pc.mu.Unlock()
	m.ReqID = id
	frame, err := m.Append(pc.enc[:0])
	if err != nil {
		pc.mu.Lock()
		delete(pc.pending, id)
		pc.mu.Unlock()
		pc.wmu.Unlock()
		return nil, err
	}
	pc.enc = frame
	nc.SetWriteDeadline(time.Now().Add(t.callTimeout)) //nolint:errcheck // surfaced by Write
	_, werr := nc.Write(frame)
	if werr != nil {
		pc.mu.Lock()
		delete(pc.pending, id)
		pc.teardownLocked(nc)
		pc.mu.Unlock()
		pc.wmu.Unlock()
		return nil, fmt.Errorf("p2p: write to %s: %w", pc.addr, werr)
	}
	pc.wmu.Unlock()

	timer := time.NewTimer(t.callTimeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		if resp == nil {
			t.overlay.SetAlive(i, false)
			return nil, fmt.Errorf("p2p: %s: connection lost awaiting reply", pc.addr)
		}
		t.overlay.SetAlive(i, true)
		return resp, nil
	case <-timer.C:
		pc.mu.Lock()
		delete(pc.pending, id)
		pc.mu.Unlock()
		t.overlay.SetAlive(i, false)
		return nil, fmt.Errorf("p2p: %s: no reply within %s", pc.addr, t.callTimeout)
	}
}

// connLocked returns the live connection, dialing if needed. The caller
// holds wmu (so at most one dial is in flight per peer); pc.mu is taken
// only around shared-state reads and writes. A dial that fails arms a
// short backoff so bursts of calls to a dead peer fail fast instead of
// each burning a dial timeout in turn.
func (pc *peerConn) connLocked() (net.Conn, error) {
	t := pc.t
	pc.mu.Lock()
	nc := pc.nc
	backoff := !pc.lastFail.IsZero() && time.Since(pc.lastFail) < redialBackoff
	pc.mu.Unlock()
	if nc != nil {
		return nc, nil
	}
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return nil, errTransportClosed
	}
	if backoff {
		return nil, fmt.Errorf("p2p: %s: unreachable (in redial backoff)", pc.addr)
	}
	dialStart := time.Now()
	nc, err := net.DialTimeout("tcp", pc.addr, t.dialTimeout)
	if err != nil {
		if time.Since(dialStart) >= t.dialTimeout/2 {
			pc.mu.Lock()
			pc.lastFail = time.Now()
			pc.mu.Unlock()
		}
		return nil, fmt.Errorf("p2p: dial %s: %w", pc.addr, err)
	}
	pc.mu.Lock()
	// Re-check closed under pc.mu: Close tears peers down under this
	// lock, so either we see closed here, or Close runs after us and
	// severs the connection we just installed.
	t.mu.Lock()
	closed = t.closed
	t.mu.Unlock()
	if closed {
		pc.mu.Unlock()
		nc.Close()
		return nil, errTransportClosed
	}
	pc.nc = nc
	pc.lastFail = time.Time{}
	pc.mu.Unlock()
	go pc.readLoop(nc)
	return nc, nil
}

// readLoop decodes responses off one connection and delivers them to
// waiting calls by reqID. Each response gets a fresh Msg: it is handed
// across goroutines and owned by the receiving call.
func (pc *peerConn) readLoop(nc net.Conn) {
	var scratch []byte
	for {
		body, err := wire.ReadFrame(nc, &scratch)
		if err != nil {
			break
		}
		m := new(wire.Msg)
		if err := m.Decode(body); err != nil {
			pc.t.logf("p2p: %s: bad response frame: %v", pc.addr, err)
			break
		}
		pc.mu.Lock()
		ch := pc.pending[m.ReqID]
		delete(pc.pending, m.ReqID)
		pc.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
	pc.mu.Lock()
	pc.teardownLocked(nc)
	pc.mu.Unlock()
}

// teardownLocked severs the connection (if it is still the current one)
// and fails every pending call. Callers hold pc.mu.
func (pc *peerConn) teardownLocked(nc net.Conn) {
	nc.Close()
	if pc.nc != nc {
		return // a newer connection has already replaced this one
	}
	pc.nc = nil
	for id, ch := range pc.pending {
		delete(pc.pending, id)
		ch <- nil // buffered; never blocks
	}
	pc.t.overlay.SetAlive(pc.idx, false)
}

// Probe checks peer i end to end: dial if needed, exchange membership
// fingerprints, and return the peer's stored replica count. A fingerprint
// mismatch is an error — the peer is serving a different cluster.
func (t *Transport) Probe(i int) (held uint64, err error) {
	req := &wire.Msg{Type: wire.TPeerProbe, Cluster: t.cluster.Hash(), Origin: uint32(t.cluster.Self())}
	resp, err := t.Call(i, req)
	if err != nil {
		return 0, err
	}
	switch resp.Type {
	case wire.TPeerProbeOK:
		if resp.Cluster != t.cluster.Hash() {
			t.overlay.SetAlive(i, false)
			return 0, fmt.Errorf("p2p: %s: cluster membership mismatch (theirs %016x, ours %016x)",
				t.cluster.Addr(i), resp.Cluster, t.cluster.Hash())
		}
		return resp.Held, nil
	case wire.TError:
		return 0, fmt.Errorf("p2p: %s: probe refused: %s", t.cluster.Addr(i), resp.ErrorText())
	default:
		return 0, fmt.Errorf("p2p: %s: unexpected probe response %v", t.cluster.Addr(i), resp.Type)
	}
}

// StartProber launches a background health prober: every interval it
// probes each peer, which flips the overlay's Alive flags eagerly — a
// peer's death (or recovery) is noticed within one interval instead of
// on the next forwarded call that happens to hit it. Probe failures are
// already rate-limited by the dial backoff, and a probe that finds a
// mismatched membership fingerprint marks the peer dead exactly like
// Call would. No-op when interval <= 0, after Close, or if a prober is
// already running; Close stops it.
func (t *Transport) StartProber(interval time.Duration) {
	if interval <= 0 {
		return
	}
	t.mu.Lock()
	if t.closed || t.probing {
		t.mu.Unlock()
		return
	}
	t.probing = true
	t.mu.Unlock()
	t.proberWg.Add(1)
	go func() {
		defer t.proberWg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-t.proberQuit:
				return
			case <-ticker.C:
			}
			for i := range t.peers {
				if i == t.cluster.Self() {
					continue
				}
				select {
				case <-t.proberQuit:
					return
				default:
				}
				t.Probe(i) //nolint:errcheck // Alive is updated as a side effect either way
			}
		}
	}()
}

// Close severs every peer connection, stops the health prober, and fails
// in-flight and future calls.
func (t *Transport) Close() {
	t.mu.Lock()
	already := t.closed
	t.closed = true
	t.mu.Unlock()
	if !already {
		close(t.proberQuit)
	}
	t.proberWg.Wait()
	for _, pc := range t.peers {
		pc.mu.Lock()
		if pc.nc != nil {
			pc.teardownLocked(pc.nc)
		}
		pc.mu.Unlock()
	}
}
