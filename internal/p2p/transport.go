package p2p

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"discovery/internal/batchio"
	"discovery/internal/metrics"
	"discovery/internal/trace"
	"discovery/internal/wire"
)

// Transport is the outbound half of the peer protocol: one lazily-dialed,
// automatically-redialed TCP connection per peer, multiplexing concurrent
// requests by reqID. Calls are synchronous; concurrency comes from the
// callers (the runtime forwards each client request on its own
// goroutine), which pipeline freely over the shared connection.
//
// Outbound writes are coalesced, mirroring the inbound response writers:
// a Call encodes its frame into a pooled buffer and queues it on the
// peer's out-queue, and the connection's writer goroutine drains the
// queue into vectored writes (net.Buffers) bounded by the batchio
// budgets. Concurrent callers therefore cost about one write(2) per
// batch instead of one per call, while reqID multiplexing and per-call
// timeouts are untouched.
type Transport struct {
	cluster       *Cluster
	overlay       *RemoteOverlay
	dialTimeout   time.Duration
	callTimeout   time.Duration
	redialBackoff time.Duration
	logf          func(format string, args ...any)
	peers         []*peerConn

	mu      sync.Mutex
	closed  bool
	probing bool

	// addrMu guards the client-address advertisement plumbing: the
	// address this node tells peers about, and the callback invoked with
	// addresses peers tell us about.
	addrMu         sync.Mutex
	selfClientAddr string
	peerAddrFn     func(i int, addr string)

	proberQuit chan struct{}
	proberWg   sync.WaitGroup

	// Instrumentation, registry-backed so a process-wide /metrics scrape
	// and WriteStats read the same atomics. writes counts vectored
	// write(2) calls, framesOut the frames they carried — frames/writes
	// is the coalescing ratio, with p2p.frames_per_write holding its
	// distribution. calls/callErrors/callNanos meter Call round trips,
	// dials/redials the connection churn.
	writes         *metrics.Counter
	framesOut      *metrics.Counter
	framesPerWrite *metrics.Histogram
	calls          *metrics.Counter
	callErrors     *metrics.Counter
	callNanos      *metrics.Histogram
	dials          *metrics.Counter
	redials        *metrics.Counter

	// tracer records the outbound hop span of traced calls (set by
	// NewNode from Config.Tracer; nil disables — Record is nil-safe).
	tracer *trace.Tracer

	bufs sync.Pool // *[]byte outbound frame buffers
}

// errTransportClosed fails calls after Close.
var errTransportClosed = errors.New("p2p: transport closed")

// peerReadBuffer sizes the buffered reader on peer response connections,
// so a burst of pipelined responses decodes several frames per read(2).
const peerReadBuffer = 32 << 10

// Transport retry/timeout defaults, shared with the cmd flag layer so
// flag help and behavior can never drift apart.
const (
	// DefaultDialTimeout bounds one TCP connect to a peer.
	DefaultDialTimeout = 500 * time.Millisecond
	// DefaultCallTimeout bounds one peer request round trip.
	DefaultCallTimeout = 5 * time.Second
	// DefaultRedialBackoff is how long after a SLOW dial failure (a
	// timeout — e.g. a blackholed peer) further calls fail fast instead
	// of queueing up behind serial dial attempts, each burning its own
	// dial timeout. Fast failures (connection refused, as on a
	// crashed-but-routable peer) never arm the backoff: retrying them is
	// nearly free, and a peer that just restarted must be reachable
	// immediately.
	DefaultRedialBackoff = 250 * time.Millisecond
)

// TransportConfig parameterizes NewTransport. The zero value selects
// every default.
type TransportConfig struct {
	// DialTimeout bounds one TCP connect (default DefaultDialTimeout).
	DialTimeout time.Duration
	// CallTimeout bounds one request round trip (default DefaultCallTimeout).
	CallTimeout time.Duration
	// RedialBackoff is the fail-fast window armed by a slow dial failure
	// (default DefaultRedialBackoff).
	RedialBackoff time.Duration
	// DialVia rewrites dial targets: when a peer's cluster address has
	// an entry, the transport connects to the mapped address instead
	// while all protocol-level identity (fingerprints, member slots)
	// stays on the real address. This is the hook fault-injection
	// proxies (internal/faultnet) and NAT-style indirection plug into.
	DialVia map[string]string
	// Logf receives connection-level error lines (nil = silent).
	Logf func(format string, args ...any)
	// Metrics receives the transport's p2p.* instrumentation; nil
	// selects a private registry, so WriteStats works either way.
	Metrics *metrics.Registry
}

// NewTransport builds the peer-connection table.
func NewTransport(c *Cluster, ov *RemoteOverlay, cfg TransportConfig) *Transport {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = DefaultDialTimeout
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = DefaultCallTimeout
	}
	if cfg.RedialBackoff <= 0 {
		cfg.RedialBackoff = DefaultRedialBackoff
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	t := &Transport{
		cluster:        c,
		overlay:        ov,
		dialTimeout:    cfg.DialTimeout,
		callTimeout:    cfg.CallTimeout,
		redialBackoff:  cfg.RedialBackoff,
		logf:           logf,
		peers:          make([]*peerConn, c.N()),
		proberQuit:     make(chan struct{}),
		writes:         reg.Counter("p2p.writes"),
		framesOut:      reg.Counter("p2p.frames"),
		framesPerWrite: reg.Histogram("p2p.frames_per_write", 1),
		calls:          reg.Counter("p2p.calls"),
		callErrors:     reg.Counter("p2p.call_errors"),
		callNanos:      reg.Histogram("p2p.call_seconds", 1e-9),
		dials:          reg.Counter("p2p.dials"),
		redials:        reg.Counter("p2p.redials"),
	}
	t.bufs.New = func() any {
		b := make([]byte, 0, 512)
		return &b
	}
	for i := range t.peers {
		addr := c.Addr(i)
		dialAddr := addr
		if via, ok := cfg.DialVia[addr]; ok && via != "" {
			dialAddr = via
		}
		t.peers[i] = &peerConn{t: t, idx: i, addr: addr, dialAddr: dialAddr, pending: make(map[uint64]chan *wire.Msg)}
	}
	return t
}

// SetClientAddr sets the client-serving address probes advertise to
// peers (empty = not advertised). Safe to call at any time; the next
// probe carries it.
func (t *Transport) SetClientAddr(addr string) {
	t.addrMu.Lock()
	t.selfClientAddr = addr
	t.addrMu.Unlock()
}

// OnPeerClientAddr registers fn to receive the client-serving addresses
// peers advertise in probe responses. fn must be safe for concurrent
// calls.
func (t *Transport) OnPeerClientAddr(fn func(i int, addr string)) {
	t.addrMu.Lock()
	t.peerAddrFn = fn
	t.addrMu.Unlock()
}

// WriteStats returns the cumulative outbound syscall counters: vectored
// writes issued and frames they carried. frames >= writes always;
// frames > writes means pipelined calls shared write(2) invocations.
// The counters live in the transport's metrics registry (p2p.writes /
// p2p.frames), so this is the same data a /metrics scrape sees; reads
// are atomic and safe under concurrent traffic.
func (t *Transport) WriteStats() (writes, frames uint64) {
	return t.writes.Value(), t.framesOut.Value()
}

// connState is one live connection: the socket, its out-queue, and the
// death signal that tells producers to stop offering frames. A peerConn
// replaces its connState wholesale on reconnect, so the writer and
// reader goroutines of a dead connection never touch the new one.
type connState struct {
	nc   net.Conn
	out  chan *[]byte  // encoded request frames (pooled)
	dead chan struct{} // closed when the connection is torn down
	once sync.Once
}

// kill marks the connection dead so producers stop offering frames.
func (cs *connState) kill() { cs.once.Do(func() { close(cs.dead) }) }

// peerConn is the connection state for one peer. cur is nil when
// disconnected; the next call redials.
//
// Two locks with distinct jobs: wmu serializes the slow path (dialing)
// among callers, while mu guards only the cheap shared state (cur, the
// pending map, the reqID counter). The socket itself is written by the
// connection's writer goroutine alone, so no caller ever blocks on a
// peer's socket — it blocks, at worst, on the out-queue (backpressure).
type peerConn struct {
	t        *Transport
	idx      int
	addr     string // the peer's cluster (protocol-identity) address
	dialAddr string // where to actually connect (DialVia indirection)

	wmu sync.Mutex // dial serialization

	mu            sync.Mutex
	cur           *connState
	nextID        uint64
	pending       map[uint64]chan *wire.Msg
	lastFail      time.Time // last failed dial, for redialBackoff
	everConnected bool      // a later dial is a redial, not a first dial
}

// Call sends m to peer i and waits for its response, dialing or redialing
// as needed. m.ReqID is assigned by the transport. The returned message
// is owned by the caller. Transport health (RemoteOverlay.Alive) is
// updated as a side effect.
func (t *Transport) Call(i int, m *wire.Msg) (*wire.Msg, error) {
	t.calls.Inc()
	start := time.Now()
	resp, err := t.call(i, m)
	if m.Traced {
		// The peer_call span covers encode → reply (or failure) for this
		// hop; the responder's own spans nest inside it under the same ID.
		t.tracer.Record(m.Trace, trace.KindPeerCall, start, time.Since(start), uint64(i))
	}
	if err != nil {
		t.callErrors.Inc()
		return nil, err
	}
	t.callNanos.Observe(int64(time.Since(start)))
	return resp, nil
}

func (t *Transport) call(i int, m *wire.Msg) (*wire.Msg, error) {
	if i == t.cluster.Self() {
		return nil, fmt.Errorf("p2p: call to self (index %d)", i)
	}
	pc := t.peers[i]
	cs, err := pc.conn()
	if err != nil {
		t.overlay.SetAlive(i, false)
		return nil, err
	}
	ch := make(chan *wire.Msg, 1)
	pc.mu.Lock()
	pc.nextID++
	id := pc.nextID
	pc.pending[id] = ch
	pc.mu.Unlock()
	m.ReqID = id
	bp := t.bufs.Get().(*[]byte)
	frame, err := m.Append((*bp)[:0])
	if err != nil {
		pc.mu.Lock()
		delete(pc.pending, id)
		pc.mu.Unlock()
		t.bufs.Put(bp)
		return nil, err
	}
	*bp = frame
	select {
	case cs.out <- bp: // may block when the queue is full: backpressure
	case <-cs.dead:
		pc.mu.Lock()
		delete(pc.pending, id)
		pc.mu.Unlock()
		t.bufs.Put(bp)
		t.overlay.SetAlive(i, false)
		return nil, fmt.Errorf("p2p: %s: connection lost before send", pc.addr)
	}

	timer := time.NewTimer(t.callTimeout)
	defer timer.Stop()
	select {
	case resp := <-ch:
		if resp == nil {
			t.overlay.SetAlive(i, false)
			return nil, fmt.Errorf("p2p: %s: connection lost awaiting reply", pc.addr)
		}
		t.overlay.SetAlive(i, true)
		return resp, nil
	case <-timer.C:
		pc.mu.Lock()
		delete(pc.pending, id)
		pc.mu.Unlock()
		t.overlay.SetAlive(i, false)
		return nil, fmt.Errorf("p2p: %s: no reply within %s", pc.addr, t.callTimeout)
	}
}

// conn returns the live connection state, dialing if needed. wmu is held
// across the dial so at most one dial is in flight per peer; pc.mu is
// taken only around shared-state reads and writes. A dial that fails
// arms a short backoff so bursts of calls to a dead peer fail fast
// instead of each burning a dial timeout in turn.
func (pc *peerConn) conn() (*connState, error) {
	t := pc.t
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	pc.mu.Lock()
	cs := pc.cur
	backoff := !pc.lastFail.IsZero() && time.Since(pc.lastFail) < t.redialBackoff
	pc.mu.Unlock()
	if cs != nil {
		return cs, nil
	}
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return nil, errTransportClosed
	}
	if backoff {
		return nil, fmt.Errorf("p2p: %s: unreachable (in redial backoff)", pc.addr)
	}
	dialStart := time.Now()
	nc, err := net.DialTimeout("tcp", pc.dialAddr, t.dialTimeout)
	if err != nil {
		if time.Since(dialStart) >= t.dialTimeout/2 {
			pc.mu.Lock()
			pc.lastFail = time.Now()
			pc.mu.Unlock()
		}
		if pc.dialAddr != pc.addr {
			return nil, fmt.Errorf("p2p: dial %s (via %s): %w", pc.addr, pc.dialAddr, err)
		}
		return nil, fmt.Errorf("p2p: dial %s: %w", pc.addr, err)
	}
	cs = &connState{nc: nc, out: make(chan *[]byte, 64), dead: make(chan struct{})}
	pc.mu.Lock()
	// Re-check closed under pc.mu: Close tears peers down under this
	// lock, so either we see closed here, or Close runs after us and
	// severs the connection we just installed.
	t.mu.Lock()
	closed = t.closed
	t.mu.Unlock()
	if closed {
		pc.mu.Unlock()
		nc.Close()
		return nil, errTransportClosed
	}
	pc.cur = cs
	pc.lastFail = time.Time{}
	redial := pc.everConnected
	pc.everConnected = true
	pc.mu.Unlock()
	t.dials.Inc()
	if redial {
		t.redials.Inc()
	}
	go pc.readLoop(cs)
	go pc.writeLoop(cs)
	return cs, nil
}

// collectOut gathers one coalesced write batch from cs: it blocks until
// a first frame arrives (or the connection dies), then drains
// already-queued frames without blocking, bounded by the batchio
// budgets. Frame pointers land in *slots, byte slices in *bufs — both
// caller-owned and reused, so the steady-state drain allocates nothing.
// It reports false when the connection died with nothing collected; a
// death that lands mid-drain still returns the partial batch.
func collectOut(cs *connState, slots *[]*[]byte, bufs *net.Buffers) bool {
	var first *[]byte
	select {
	case first = <-cs.out:
	case <-cs.dead:
		// One more non-blocking look: a producer that won the race may
		// have queued a frame the instant before death.
		select {
		case first = <-cs.out:
		default:
			return false
		}
	}
	*slots = append(*slots, first)
	*bufs = append(*bufs, *first)
	total := len(*first)
	for len(*slots) < batchio.DefaultMaxFrames && total < batchio.DefaultMaxBytes {
		select {
		case bp := <-cs.out:
			*slots = append(*slots, bp)
			*bufs = append(*bufs, *bp)
			total += len(*bp)
		default:
			return true
		}
	}
	return true
}

// writeLoop drains the connection's out-queue into vectored writes until
// the connection dies. Each batch carries a write deadline; the first
// failed or timed-out write tears the connection down, and the loop
// keeps draining (recycling buffers) so producers never block on a dead
// peer.
func (pc *peerConn) writeLoop(cs *connState) {
	t := pc.t
	slots := make([]*[]byte, 0, batchio.DefaultMaxFrames)
	backing := make(net.Buffers, 0, batchio.DefaultMaxFrames)
	broken := false
	for {
		slots = slots[:0]
		bufs := backing[:0]
		if !collectOut(cs, &slots, &bufs) {
			return
		}
		// WriteTo consumes the bufs header as it flushes; keep the grown
		// backing array so the next batch reuses its capacity.
		backing = bufs
		if !broken {
			n := len(slots)
			cs.nc.SetWriteDeadline(time.Now().Add(t.callTimeout)) //nolint:errcheck // surfaced by WriteTo
			if _, err := bufs.WriteTo(cs.nc); err != nil {
				broken = true
				t.logf("p2p: write to %s: %v", pc.addr, err)
				pc.teardown(cs)
			} else {
				t.writes.Inc()
				t.framesOut.Add(uint64(n))
				t.framesPerWrite.Observe(int64(n))
			}
		}
		for _, bp := range slots {
			t.bufs.Put(bp)
		}
	}
}

// readLoop decodes responses off one connection and delivers them to
// waiting calls by reqID. The socket is wrapped in a sized buffered
// reader, so a pipelined burst of responses decodes several frames per
// read(2). Each response gets a fresh Msg: it is handed across
// goroutines and owned by the receiving call.
func (pc *peerConn) readLoop(cs *connState) {
	br := bufio.NewReaderSize(cs.nc, peerReadBuffer)
	var scratch []byte
	for {
		body, err := wire.ReadFrame(br, &scratch)
		if err != nil {
			break
		}
		m := new(wire.Msg)
		if err := m.Decode(body); err != nil {
			pc.t.logf("p2p: %s: bad response frame: %v", pc.addr, err)
			break
		}
		pc.mu.Lock()
		ch := pc.pending[m.ReqID]
		delete(pc.pending, m.ReqID)
		pc.mu.Unlock()
		if ch != nil {
			ch <- m
		}
	}
	pc.teardown(cs)
}

// teardown severs cs: the socket closes, producers are told to stop
// (dead), and — if cs is still the peer's current connection — every
// pending call fails and the peer is marked dead. A stale connState
// (already replaced by a redial) only cleans up after itself.
func (pc *peerConn) teardown(cs *connState) {
	cs.kill()
	cs.nc.Close()
	pc.mu.Lock()
	if pc.cur == cs {
		pc.cur = nil
		for id, ch := range pc.pending {
			delete(pc.pending, id)
			ch <- nil // buffered; never blocks
		}
		pc.t.overlay.SetAlive(pc.idx, false)
	}
	pc.mu.Unlock()
}

// Probe checks peer i end to end: dial if needed, exchange membership
// fingerprints and client-serving addresses, and return the peer's
// stored replica count. A fingerprint mismatch is an error — the peer is
// serving a different cluster.
func (t *Transport) Probe(i int) (held uint64, err error) {
	t.addrMu.Lock()
	self := t.selfClientAddr
	t.addrMu.Unlock()
	req := &wire.Msg{Type: wire.TPeerProbe, Cluster: t.cluster.Hash(), Origin: uint32(t.cluster.Self()), ClientAddr: []byte(self)}
	resp, err := t.Call(i, req)
	if err != nil {
		return 0, err
	}
	switch resp.Type {
	case wire.TPeerProbeOK:
		if resp.Cluster != t.cluster.Hash() {
			t.overlay.SetAlive(i, false)
			return 0, fmt.Errorf("p2p: %s: cluster membership mismatch (theirs %016x, ours %016x)",
				t.cluster.Addr(i), resp.Cluster, t.cluster.Hash())
		}
		if len(resp.ClientAddr) > 0 {
			t.addrMu.Lock()
			fn := t.peerAddrFn
			t.addrMu.Unlock()
			if fn != nil {
				fn(i, string(resp.ClientAddr))
			}
		}
		return resp.Held, nil
	case wire.TError:
		return 0, fmt.Errorf("p2p: %s: probe refused: %s", t.cluster.Addr(i), resp.ErrorText())
	default:
		return 0, fmt.Errorf("p2p: %s: unexpected probe response %v", t.cluster.Addr(i), resp.Type)
	}
}

// StartProber launches a background health prober: every interval it
// probes each peer, which flips the overlay's Alive flags eagerly — a
// peer's death (or recovery) is noticed within one interval instead of
// on the next forwarded call that happens to hit it. Probe failures are
// already rate-limited by the dial backoff, and a probe that finds a
// mismatched membership fingerprint marks the peer dead exactly like
// Call would. No-op when interval <= 0, after Close, or if a prober is
// already running; Close stops it.
func (t *Transport) StartProber(interval time.Duration) {
	if interval <= 0 {
		return
	}
	t.mu.Lock()
	if t.closed || t.probing {
		t.mu.Unlock()
		return
	}
	t.probing = true
	t.mu.Unlock()
	t.proberWg.Add(1)
	go func() {
		defer t.proberWg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-t.proberQuit:
				return
			case <-ticker.C:
			}
			for i := range t.peers {
				if i == t.cluster.Self() {
					continue
				}
				select {
				case <-t.proberQuit:
					return
				default:
				}
				t.Probe(i) //nolint:errcheck // Alive is updated as a side effect either way
			}
		}
	}()
}

// Close severs every peer connection, stops the health prober, and fails
// in-flight and future calls.
func (t *Transport) Close() {
	t.mu.Lock()
	already := t.closed
	t.closed = true
	t.mu.Unlock()
	if !already {
		close(t.proberQuit)
	}
	t.proberWg.Wait()
	for _, pc := range t.peers {
		pc.mu.Lock()
		cs := pc.cur
		pc.mu.Unlock()
		if cs != nil {
			pc.teardown(cs)
		}
	}
}
