package p2p_test

import (
	"bufio"
	"net"
	"strings"
	"testing"
	"time"

	discovery "discovery"
	"discovery/internal/wire"
)

// This file pins failure-path behavior against stub peers: a real Node
// on one side, a hand-rolled wire responder on the other, so the tests
// can make a peer misbehave in ways a healthy Node never would (stuck
// repair cursors, transfer refusals) and in ways a live cluster cannot
// produce deterministically (a peer dead for an exact window).

// startStubPeer serves the peer wire protocol on addr: each decoded
// request is mapped to a reply by handle (ReqID correlation is taken
// care of here). It answers until the listener is closed at cleanup.
func startStubPeer(t *testing.T, addr string, handle func(m *wire.Msg) wire.Msg) {
	t.Helper()
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lis.Close() })
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			go func(nc net.Conn) {
				defer nc.Close()
				br := bufio.NewReader(nc)
				var scratch []byte
				for {
					body, err := wire.ReadFrame(br, &scratch)
					if err != nil {
						return
					}
					var m wire.Msg
					if err := m.Decode(body); err != nil {
						return
					}
					reply := handle(&m)
					reply.ReqID = m.ReqID
					frame, err := reply.Append(nil)
					if err != nil {
						return
					}
					if _, err := nc.Write(frame); err != nil {
						return
					}
				}
			}(nc)
		}
	}()
}

// probeOK builds the stub's probe answer. Echoing the request's
// fingerprint passes the caller's membership check — these stubs play a
// peer that agrees about the cluster and misbehaves later.
func probeOK(m *wire.Msg) wire.Msg {
	return wire.Msg{Type: wire.TPeerProbeOK, Cluster: m.Cluster, Origin: m.Origin}
}

// TestPullRepairStuckCursorFails pins the stuck-cursor guard: a
// responder that keeps answering More with the SAME cursor and a
// NON-EMPTY page must fail the pull with a diagnosis, not loop forever
// re-importing the same batch. The non-empty page is the regression:
// a guard keyed on page emptiness never fires against this responder.
func TestPullRepairStuckCursorFails(t *testing.T) {
	peerAddrs := reserveAddrs(t, 2)
	n := startTestNode(t, peerAddrs[0], peerAddrs, true)
	region := n.cluster.Self()

	// Two replicas the puller genuinely accepts (owned here), served on
	// every page with a cursor that never advances.
	var entries []wire.TransferEntry
	for _, name := range keysOwnedBy(region, 2, 2, "stuck") {
		entries = append(entries, wire.TransferEntry{Key: discovery.NewID(name), Value: []byte(name)})
	}
	startStubPeer(t, peerAddrs[1], func(m *wire.Msg) wire.Msg {
		switch m.Type {
		case wire.TPeerProbe:
			return probeOK(m)
		case wire.TRepair:
			return wire.Msg{Type: wire.TRepairOK, Region: m.Region, Entries: entries, More: true, Cursor: m.Cursor}
		default:
			return wire.Msg{Type: wire.TError, Value: []byte("unexpected " + m.Type.String())}
		}
	})
	var stub int
	for i := 0; i < n.cluster.N(); i++ {
		if n.cluster.Addr(i) == peerAddrs[1] {
			stub = i
		}
	}

	done := make(chan struct{})
	var applied int
	var err error
	go func() {
		defer close(done)
		applied, err = n.node.PullRepair(stub, region)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("PullRepair is looping on a stuck cursor")
	}
	if err == nil || !strings.Contains(err.Error(), "made no progress") {
		t.Fatalf("stuck cursor not diagnosed: applied %d, err %v", applied, err)
	}
	// The first page's entries did land (the pull is additive and
	// idempotent); the guard stops the loop, it does not undo the page.
	if applied != len(entries) {
		t.Fatalf("applied %d replicas before the guard, want %d", applied, len(entries))
	}
}

// TestHandoffSurfacesRefusalReason pins the refusal diagnostics: a peer
// that answers TTransfer with TError must surface its reason. The
// regression was formatting the refusal as a short accept ("accepted 0
// of N" from the garbage Accepted field of an error frame), burying the
// peer's actual diagnosis.
func TestHandoffSurfacesRefusalReason(t *testing.T) {
	peerAddrs := reserveAddrs(t, 2)
	// Unregioned pool: the node may hold foreign keys, which is exactly
	// the state a handoff sheds.
	n := startTestNode(t, peerAddrs[0], peerAddrs, false)
	startStubPeer(t, peerAddrs[1], func(m *wire.Msg) wire.Msg {
		switch m.Type {
		case wire.TPeerProbe:
			return probeOK(m)
		case wire.TTransfer:
			return wire.Msg{Type: wire.TError, Value: []byte("simulated refusal: disk full")}
		default:
			return wire.Msg{Type: wire.TError, Value: []byte("unexpected " + m.Type.String())}
		}
	})
	var stubRegion int
	for i := 0; i < n.cluster.N(); i++ {
		if n.cluster.Addr(i) == peerAddrs[1] {
			stubRegion = i
		}
	}
	seeded := keysOwnedBy(stubRegion, 2, 5, "refused")
	for _, name := range seeded {
		if err := n.pool.ImportReplica(0, 0, discovery.NewID(name), []byte(name)); err != nil {
			t.Fatal(err)
		}
	}

	moved, err := n.node.Handoff()
	if moved != 0 {
		t.Fatalf("handoff dropped %d replicas on a refusing peer", moved)
	}
	if err == nil || !strings.Contains(err.Error(), "transfer refused") || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("refusal reason not surfaced: %v", err)
	}
	if strings.Contains(err.Error(), "accepted") {
		t.Fatalf("refusal misreported as a short accept: %v", err)
	}
	if n.pool.ReplicaCount() != len(seeded) {
		t.Fatalf("replicas lost on refusal: %d of %d remain", n.pool.ReplicaCount(), len(seeded))
	}
}

// TestJoinRetriesUntilPeerArrives pins Join's two contracts: a timeout
// with a peer still down returns an error naming exactly that peer, and
// a peer that comes up mid-join is caught by the retry loop — the join
// converges without a fresh call.
func TestJoinRetriesUntilPeerArrives(t *testing.T) {
	peerAddrs := reserveAddrs(t, 2)
	n0 := startTestNode(t, peerAddrs[0], peerAddrs, true)

	err := n0.node.Join(300 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "join incomplete") || !strings.Contains(err.Error(), peerAddrs[1]) {
		t.Fatalf("join with a dead peer did not name it: %v", err)
	}

	// Start the join first, the peer after: only the retry loop can see
	// the late arrival.
	joinErr := make(chan error, 1)
	go func() { joinErr <- n0.node.Join(15 * time.Second) }()
	time.Sleep(300 * time.Millisecond)
	startTestNode(t, peerAddrs[1], peerAddrs, true)
	if err := <-joinErr; err != nil {
		t.Fatalf("join did not retry its way to the late peer: %v", err)
	}
}

// TestAntiEntropyAccountsDeadPeer pins the pass's partial-failure
// accounting with one peer dead for the whole window: the error lists
// exactly the unreachable peer, while the reachable peer's data still
// converges in the same pass.
func TestAntiEntropyAccountsDeadPeer(t *testing.T) {
	peerAddrs := reserveAddrs(t, 3)
	// holder is unregioned so it can hold (and serve repair pages for)
	// keys of the puller's region; the third member never starts.
	holder := startTestNode(t, peerAddrs[0], peerAddrs, false)
	puller := startTestNode(t, peerAddrs[1], peerAddrs, true)
	deadAddr := peerAddrs[2]

	region := puller.cluster.Self()
	seeded := keysOwnedBy(region, 3, 6, "acct")
	for _, name := range seeded {
		if err := holder.pool.ImportReplica(0, 0, discovery.NewID(name), []byte(name)); err != nil {
			t.Fatal(err)
		}
	}

	moved, pulled, err := puller.node.AntiEntropy()
	if moved != 0 {
		t.Fatalf("puller moved %d replicas; it held nothing foreign", moved)
	}
	if pulled != len(seeded) {
		t.Fatalf("pulled %d replicas from the reachable peer, want %d", pulled, len(seeded))
	}
	if err == nil || !strings.Contains(err.Error(), "anti-entropy incomplete") || !strings.Contains(err.Error(), "1 peers unreachable") {
		t.Fatalf("dead peer not accounted: %v", err)
	}
	if !strings.Contains(err.Error(), deadAddr) {
		t.Fatalf("error does not name the dead peer %s: %v", deadAddr, err)
	}
	if strings.Contains(err.Error(), holder.cluster.Addr(holder.cluster.Self())) {
		t.Fatalf("error blames the reachable peer: %v", err)
	}
	// Convergence despite the dead peer: every seeded key is now local.
	for _, name := range seeded {
		if _, ok := puller.pool.Value(0, discovery.NewID(name)); !ok {
			t.Fatalf("key %s did not converge while a peer was down", name)
		}
	}
}
