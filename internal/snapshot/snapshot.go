// Package snapshot persists a shard's full key→replica state as one
// atomic, checksummed file, enabling write-ahead-log truncation: once a
// snapshot at sequence number S is durable, every log record with
// seq <= S for that shard is redundant.
//
// # Format
//
// A snapshot file is:
//
//	| magic "MPILSNP1" | u32 shard | u64 seq | u32 count |
//	| entries... |
//	| u32 crc32c |
//
// where each entry is:
//
//	| u32 node | u32 origin | key[20] | u32 valueLen | value |
//
// All integers are big-endian; the trailing CRC (Castagnoli) covers every
// preceding byte. Decoding is strict — the advertised count must match
// the bytes exactly — and never panics on arbitrary input (FuzzDecode).
//
// # Atomicity
//
// Write encodes into a temporary file in the target directory, fsyncs it,
// renames it to its final name snap-<shard>-<seq>.snap, and fsyncs the
// directory. A crash mid-write leaves only a *.tmp file, which Load
// ignores, so a visible snapshot is always complete. Load picks the
// newest (highest-seq) snapshot that validates, skipping damaged files.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"discovery/internal/idspace"
	"discovery/internal/wal"
)

const (
	magic   = "MPILSNP1"
	hdrLen  = 8 + 4 + 8 + 4 // magic | shard | seq | count
	// entryFixed is an entry's size excluding its value bytes.
	entryFixed = 4 + 4 + idspace.Bytes + 4

	// MaxValue bounds a single entry's value, mirroring wire.MaxFrame so
	// any payload accepted over the wire snapshots cleanly.
	MaxValue = 1 << 21
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Decode errors, predeclared following the internal/wire discipline.
var (
	ErrShort    = errors.New("snapshot: truncated")
	ErrMagic    = errors.New("snapshot: bad magic")
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	ErrTrailing = errors.New("snapshot: trailing bytes after entries")
	ErrValue    = errors.New("snapshot: entry value exceeds MaxValue")
)

// Entry is one stored replica: key's value held at Node on behalf of the
// inserting Origin.
type Entry struct {
	Node   uint32
	Origin uint32
	Key    idspace.ID
	Value  []byte
}

// Append encodes a snapshot of entries onto dst and returns the extended
// slice.
func Append(dst []byte, shard uint32, seq uint64, entries []Entry) []byte {
	base := len(dst)
	dst = append(dst, magic...)
	dst = binary.BigEndian.AppendUint32(dst, shard)
	dst = binary.BigEndian.AppendUint64(dst, seq)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(entries)))
	for i := range entries {
		e := &entries[i]
		dst = binary.BigEndian.AppendUint32(dst, e.Node)
		dst = binary.BigEndian.AppendUint32(dst, e.Origin)
		dst = append(dst, e.Key[:]...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.Value)))
		dst = append(dst, e.Value...)
	}
	return binary.BigEndian.AppendUint32(dst, crc32.Checksum(dst[base:], castagnoli))
}

// Decode parses a complete snapshot image. Returned entries own their
// value bytes (they do not alias data). It is strict and never panics on
// arbitrary input.
func Decode(data []byte) (shard uint32, seq uint64, entries []Entry, err error) {
	if len(data) < hdrLen+4 {
		return 0, 0, nil, ErrShort
	}
	if string(data[:8]) != magic {
		return 0, 0, nil, ErrMagic
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if binary.BigEndian.Uint32(tail) != crc32.Checksum(body, castagnoli) {
		return 0, 0, nil, ErrChecksum
	}
	shard = binary.BigEndian.Uint32(data[8:12])
	seq = binary.BigEndian.Uint64(data[12:20])
	count := binary.BigEndian.Uint32(data[20:24])
	rest := body[hdrLen:]
	// A lying count cannot force a huge allocation: every entry consumes
	// at least entryFixed bytes of input.
	if uint64(count)*entryFixed > uint64(len(rest)) {
		return 0, 0, nil, ErrShort
	}
	entries = make([]Entry, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(rest) < entryFixed {
			return 0, 0, nil, ErrShort
		}
		var e Entry
		e.Node = binary.BigEndian.Uint32(rest[0:4])
		e.Origin = binary.BigEndian.Uint32(rest[4:8])
		copy(e.Key[:], rest[8:8+idspace.Bytes])
		vlen := binary.BigEndian.Uint32(rest[8+idspace.Bytes:])
		if vlen > MaxValue {
			return 0, 0, nil, ErrValue
		}
		rest = rest[entryFixed:]
		if uint64(len(rest)) < uint64(vlen) {
			return 0, 0, nil, ErrShort
		}
		if vlen > 0 {
			e.Value = append([]byte(nil), rest[:vlen]...)
		}
		rest = rest[vlen:]
		entries = append(entries, e)
	}
	if len(rest) != 0 {
		return 0, 0, nil, ErrTrailing
	}
	return shard, seq, entries, nil
}

// fileName names shard's snapshot at seq.
func fileName(shard uint32, seq uint64) string {
	return fmt.Sprintf("snap-%04d-%020d.snap", shard, seq)
}

// Write atomically persists shard's snapshot at seq into dir: encode,
// write to a temporary file, fsync, rename into place, fsync the
// directory. On return the snapshot is durable and visible to Load.
func Write(dir string, shard uint32, seq uint64, entries []Entry) error {
	data := Append(nil, shard, seq, entries)
	final := filepath.Join(dir, fileName(shard, seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return wal.SyncDir(dir)
}

// snapFile is one candidate snapshot found by list.
type snapFile struct {
	path string
	seq  uint64
}

// list returns shard's snapshot files in dir, newest first.
func list(dir string, shard uint32) ([]snapFile, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	prefix := fmt.Sprintf("snap-%04d-", shard)
	var out []snapFile
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ".snap") {
			continue
		}
		num := strings.TrimSuffix(strings.TrimPrefix(name, prefix), ".snap")
		seq, err := strconv.ParseUint(num, 10, 64)
		if err != nil || len(num) != 20 {
			continue
		}
		out = append(out, snapFile{path: filepath.Join(dir, name), seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq > out[j].seq })
	return out, nil
}

// Load returns shard's newest valid snapshot: its entries and the log
// sequence number it covers. Damaged candidates are skipped (newest
// valid wins); (nil, 0, nil) means no snapshot exists. Entries own their
// value bytes.
func Load(dir string, shard uint32) ([]Entry, uint64, error) {
	cands, err := list(dir, shard)
	if err != nil {
		return nil, 0, err
	}
	for _, c := range cands {
		data, err := os.ReadFile(c.path)
		if err != nil {
			continue
		}
		gotShard, seq, entries, err := Decode(data)
		if err != nil || gotShard != shard || seq != c.seq {
			continue
		}
		return entries, seq, nil
	}
	return nil, 0, nil
}

// GC deletes shard's snapshots older than keepSeq, keeping the newest
// one at or above it. Call it after a fresh snapshot lands.
func GC(dir string, shard uint32, keepSeq uint64) error {
	cands, err := list(dir, shard)
	if err != nil {
		return err
	}
	removed := false
	for _, c := range cands {
		if c.seq < keepSeq {
			if err := os.Remove(c.path); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		return wal.SyncDir(dir)
	}
	return nil
}
