package snapshot

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"discovery/internal/idspace"
)

func testEntries(n int) []Entry {
	out := make([]Entry, n)
	for i := range out {
		out[i] = Entry{
			Node:   uint32(i * 3),
			Origin: uint32(i),
			Key:    idspace.FromString(fmt.Sprintf("snap-key-%d", i)),
			Value:  []byte(fmt.Sprintf("value-%d", i)),
		}
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	entries := testEntries(17)
	entries[3].Value = nil // empty values must round-trip too
	data := Append(nil, 5, 4242, entries)
	shard, seq, got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if shard != 5 || seq != 4242 {
		t.Fatalf("shard=%d seq=%d", shard, seq)
	}
	if len(got) != len(entries) {
		t.Fatalf("%d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i].Node != entries[i].Node || got[i].Origin != entries[i].Origin ||
			got[i].Key != entries[i].Key || !bytes.Equal(got[i].Value, entries[i].Value) {
			t.Fatalf("entry %d mismatch: %+v vs %+v", i, got[i], entries[i])
		}
	}
	// Canonical: a decoded snapshot re-encodes to the same bytes.
	if again := Append(nil, shard, seq, got); !bytes.Equal(again, data) {
		t.Fatal("re-encode differs from original")
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	data := Append(nil, 1, 7, testEntries(4))
	if _, _, _, err := Decode(data[:10]); err != ErrShort {
		t.Fatalf("short: %v", err)
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, _, _, err := Decode(bad); err != ErrMagic {
		t.Fatalf("magic: %v", err)
	}
	bad = append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x01
	if _, _, _, err := Decode(bad); err != ErrChecksum {
		t.Fatalf("flipped byte: %v", err)
	}
	if _, _, _, err := Decode(append(append([]byte(nil), data...), 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestWriteLoadNewestWins(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, 2, 10, testEntries(3)); err != nil {
		t.Fatal(err)
	}
	if err := Write(dir, 2, 25, testEntries(6)); err != nil {
		t.Fatal(err)
	}
	// Another shard's snapshot must not be picked up.
	if err := Write(dir, 3, 99, testEntries(1)); err != nil {
		t.Fatal(err)
	}
	entries, seq, err := Load(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 25 || len(entries) != 6 {
		t.Fatalf("loaded seq=%d entries=%d, want 25/6", seq, len(entries))
	}
}

func TestLoadSkipsCorruptToOlder(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, 0, 10, testEntries(3)); err != nil {
		t.Fatal(err)
	}
	if err := Write(dir, 0, 20, testEntries(5)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest file in place.
	newest := filepath.Join(dir, fileName(0, 20))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}
	entries, seq, err := Load(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 10 || len(entries) != 3 {
		t.Fatalf("fallback loaded seq=%d entries=%d, want 10/3", seq, len(entries))
	}
}

func TestLoadIgnoresTmpAndMissingDir(t *testing.T) {
	dir := t.TempDir()
	// A torn write leaves only a tmp file; Load must see no snapshot.
	tmp := filepath.Join(dir, fileName(1, 5)+".tmp")
	if err := os.WriteFile(tmp, Append(nil, 1, 5, testEntries(2)), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, seq, err := Load(dir, 1)
	if err != nil || entries != nil || seq != 0 {
		t.Fatalf("tmp file loaded: %d entries seq=%d err=%v", len(entries), seq, err)
	}
	// A directory that does not exist yet is "no snapshot", not an error.
	if entries, seq, err := Load(filepath.Join(dir, "nope"), 0); err != nil || entries != nil || seq != 0 {
		t.Fatalf("missing dir: %d entries seq=%d err=%v", len(entries), seq, err)
	}
}

func TestGCKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{5, 10, 15} {
		if err := Write(dir, 4, seq, testEntries(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := GC(dir, 4, 15); err != nil {
		t.Fatal(err)
	}
	cands, err := list(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].seq != 15 {
		t.Fatalf("after GC: %v", cands)
	}
	// GC for one shard must not touch another's files.
	if err := Write(dir, 6, 3, testEntries(1)); err != nil {
		t.Fatal(err)
	}
	if err := GC(dir, 4, 100); err != nil {
		t.Fatal(err)
	}
	if got, seq, err := Load(dir, 6); err != nil || seq != 3 || len(got) != 1 {
		t.Fatalf("cross-shard GC damage: %d entries seq=%d err=%v", len(got), seq, err)
	}
}

// FuzzDecode pins that decoding arbitrary bytes never panics and that a
// successful decode is canonical (re-encodes to the input).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(magic))
	f.Add(Append(nil, 0, 0, nil))
	f.Add(Append(nil, 3, 77, testEntries(5)))
	f.Fuzz(func(t *testing.T, data []byte) {
		shard, seq, entries, err := Decode(data)
		if err != nil {
			return
		}
		if !bytes.Equal(Append(nil, shard, seq, entries), data) {
			t.Fatal("accepted snapshot does not re-encode to itself")
		}
		// And the decode is stable.
		s2, q2, e2, err := Decode(data)
		if err != nil || s2 != shard || q2 != seq || !reflect.DeepEqual(entries, e2) {
			t.Fatal("decode not deterministic")
		}
	})
}
