package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// Complete returns the complete graph K_n, the topology of the paper's
// Section 5.2 replica analysis.
func Complete(n int) *Graph {
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.addEdgeUnchecked(u, v)
		}
	}
	return g
}

// Ring returns the cycle C_n, used by unit tests that need predictable
// multi-hop routes.
func Ring(n int) *Graph {
	g := NewGraph(n)
	if n == 1 {
		return g
	}
	if n == 2 {
		g.addEdgeUnchecked(0, 1)
		return g
	}
	for u := 0; u < n; u++ {
		g.addEdgeUnchecked(u, (u+1)%n)
	}
	return g
}

// Star returns the star graph with node 0 at the center.
func Star(n int) *Graph {
	g := NewGraph(n)
	for v := 1; v < n; v++ {
		g.addEdgeUnchecked(0, v)
	}
	return g
}

// Grid returns the rows x cols 2-D lattice.
func Grid(rows, cols int) *Graph {
	g := NewGraph(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.addEdgeUnchecked(at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				g.addEdgeUnchecked(at(r, c), at(r+1, c))
			}
		}
	}
	return g
}

// RandomRegular returns a connected random d-regular graph on n nodes,
// generated with the configuration (stub-matching) model plus conflict
// repair by double-edge swaps. This reproduces the paper's "random graphs
// [where] each node has 100 neighbors, equally".
//
// n*d must be even and d < n.
func RandomRegular(n, d int, rng *rand.Rand) (*Graph, error) {
	if d >= n {
		return nil, fmt.Errorf("topology: degree %d must be below node count %d", d, n)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("topology: n*d = %d*%d is odd; no regular graph exists", n, d)
	}
	if d == 0 {
		return NewGraph(n), nil
	}
	if d == n-1 {
		// The only (n-1)-regular graph is K_n; stub matching cannot
		// repair its way there, so build it directly.
		return Complete(n), nil
	}

	// Configuration model: n*d stubs, shuffled, paired sequentially.
	stubs := make([]int, 0, n*d)
	for u := 0; u < n; u++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, u)
		}
	}

	const maxAttempts = 50
	for attempt := 0; attempt < maxAttempts; attempt++ {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		pairs := make([][2]int, 0, len(stubs)/2)
		for i := 0; i < len(stubs); i += 2 {
			pairs = append(pairs, [2]int{stubs[i], stubs[i+1]})
		}
		g, ok := repairPairs(n, pairs, rng)
		if !ok {
			continue
		}
		// A disconnected draw (vanishingly rare for d >= 3) is resampled
		// rather than patched, so the result stays exactly d-regular.
		if g.IsConnected() {
			return g, nil
		}
	}
	return nil, fmt.Errorf("topology: failed to build a connected %d-regular graph on %d nodes after %d attempts", d, n, maxAttempts)
}

// repairPairs turns a stub pairing into a simple graph by re-drawing
// conflicting pairs via double-edge swaps with random accepted pairs.
func repairPairs(n int, pairs [][2]int, rng *rand.Rand) (*Graph, bool) {
	g := NewGraph(n)
	edgeSet := make(map[[2]int]bool, len(pairs))
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	accepted := make([][2]int, 0, len(pairs))
	conflicts := make([][2]int, 0)
	for _, p := range pairs {
		u, v := p[0], p[1]
		if u == v || edgeSet[key(u, v)] {
			conflicts = append(conflicts, p)
			continue
		}
		edgeSet[key(u, v)] = true
		accepted = append(accepted, p)
	}
	// Resolve each conflict by swapping endpoints with a random accepted
	// edge: conflict (u,v) + accepted (x,y) -> (u,x) + (v,y), valid only
	// if both new edges are fresh and loop-free.
	const maxSwapTries = 400
	for _, p := range conflicts {
		u, v := p[0], p[1]
		resolved := false
		for try := 0; try < maxSwapTries; try++ {
			i := rng.Intn(len(accepted))
			x, y := accepted[i][0], accepted[i][1]
			if rng.Intn(2) == 0 {
				x, y = y, x
			}
			if u == x || v == y || u == y || v == x {
				continue
			}
			if edgeSet[key(u, x)] || edgeSet[key(v, y)] {
				continue
			}
			delete(edgeSet, key(x, y))
			edgeSet[key(u, x)] = true
			edgeSet[key(v, y)] = true
			accepted[i] = [2]int{u, x}
			accepted = append(accepted, [2]int{v, y})
			resolved = true
			break
		}
		if !resolved {
			return nil, false
		}
	}
	for _, p := range accepted {
		g.addEdgeUnchecked(p[0], p[1])
	}
	return g, true
}

// PowerLaw returns a connected graph whose degree distribution follows a
// power law with the given exponent (Inet-style: the paper's overlays came
// from Inet, whose AS graphs have exponent near 2.2) and minimum degree
// minDeg (the paper uses "0% of degree 1 nodes", i.e. minDeg 2). Degrees
// are drawn from P(d) ~ d^-gamma on [minDeg, n^(1/(gamma-1))] and wired
// with the configuration model plus conflict repair; the handful of edges
// Connect may add to join stray components perturbs degrees negligibly.
//
// The heavy tail matters to MPIL: routes pass through hubs, and at a hub
// with hundreds of neighbors the routing metric ties often, which is where
// lookup flows branch (paper Table 3's ~9 actual flows out of 10).
func PowerLaw(n int, gamma float64, minDeg int, rng *rand.Rand) (*Graph, error) {
	if gamma <= 1 {
		return nil, fmt.Errorf("topology: power-law exponent %v must exceed 1", gamma)
	}
	if minDeg < 1 {
		return nil, fmt.Errorf("topology: minimum degree %d must be positive", minDeg)
	}
	if n <= minDeg+1 {
		return nil, fmt.Errorf("topology: need more than %d nodes, got %d", minDeg+1, n)
	}
	// Natural cutoff for the maximum degree.
	maxDeg := int(math.Pow(float64(n), 1/(gamma-1)))
	if maxDeg >= n {
		maxDeg = n - 1
	}
	if maxDeg < minDeg {
		maxDeg = minDeg
	}
	// Inverse-CDF sampling over the discrete power law.
	weights := make([]float64, maxDeg-minDeg+1)
	total := 0.0
	for i := range weights {
		weights[i] = math.Pow(float64(minDeg+i), -gamma)
		total += weights[i]
	}
	drawDegree := func() int {
		u := rng.Float64() * total
		acc := 0.0
		for i, w := range weights {
			acc += w
			if u <= acc {
				return minDeg + i
			}
		}
		return maxDeg
	}
	degrees := make([]int, n)
	sum := 0
	for i := range degrees {
		degrees[i] = drawDegree()
		sum += degrees[i]
	}
	if sum%2 != 0 {
		degrees[0]++
		sum++
	}
	stubs := make([]int, 0, sum)
	for u, d := range degrees {
		for i := 0; i < d; i++ {
			stubs = append(stubs, u)
		}
	}
	const maxAttempts = 50
	for attempt := 0; attempt < maxAttempts; attempt++ {
		rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		pairs := make([][2]int, 0, len(stubs)/2)
		for i := 0; i < len(stubs); i += 2 {
			pairs = append(pairs, [2]int{stubs[i], stubs[i+1]})
		}
		g, ok := repairPairs(n, pairs, rng)
		if !ok {
			continue
		}
		g.Connect(rng)
		return g, nil
	}
	return nil, fmt.Errorf("topology: failed to wire power-law degrees after %d attempts", maxAttempts)
}

// BarabasiAlbert returns a connected preferential-attachment graph with m
// edges per arriving node (exponent 3 tail). It is kept as an alternative
// power-law family for ablation against the Inet-style generator above.
func BarabasiAlbert(n, m int, rng *rand.Rand) (*Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("topology: attachment degree m = %d must be positive", m)
	}
	if n <= m {
		return nil, fmt.Errorf("topology: need more than m = %d nodes, got %d", m, n)
	}
	g := NewGraph(n)
	// Seed clique on m+1 nodes so the first arrival has m distinct targets.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			g.addEdgeUnchecked(u, v)
		}
	}
	// targets is the repeated-endpoints list: picking uniformly from it is
	// picking proportionally to degree.
	targets := make([]int, 0, 2*m*n)
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			targets = append(targets, u, v)
		}
	}
	chosenSet := make(map[int]bool, m)
	chosen := make([]int, 0, m)
	for u := m + 1; u < n; u++ {
		for _, v := range chosen {
			delete(chosenSet, v)
		}
		chosen = chosen[:0]
		for len(chosen) < m {
			v := targets[rng.Intn(len(targets))]
			if v != u && !chosenSet[v] {
				chosenSet[v] = true
				chosen = append(chosen, v)
			}
		}
		for _, v := range chosen {
			g.addEdgeUnchecked(u, v)
			targets = append(targets, u, v)
		}
	}
	// Preferential attachment growth is connected by construction.
	return g, nil
}

// ErdosRenyi returns G(n, p) with every edge present independently with
// probability p. It is used by tests and by the generic simulator CLI;
// the paper's own "random" overlays are RandomRegular.
func ErdosRenyi(n int, p float64, rng *rand.Rand) (*Graph, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("topology: edge probability %v out of [0,1]", p)
	}
	g := NewGraph(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.addEdgeUnchecked(u, v)
			}
		}
	}
	return g, nil
}
