// Package topology builds the overlay graphs the paper evaluates on:
// complete graphs, random regular graphs ("each node has 100 neighbors,
// equally"), power-law graphs (the paper used Inet; we substitute a
// preferential-attachment generator with minimum degree 2, matching the
// paper's "0% of degree 1 nodes" setting), and a GT-ITM-style transit-stub
// underlay used as the latency model for the Pastry experiments.
package topology

import (
	"fmt"
	"math/rand"
	"sort"
)

// Graph is a simple undirected graph over nodes 0..N-1 stored as symmetric
// adjacency lists. The zero value is an empty graph; construct with
// NewGraph for a fixed node count.
type Graph struct {
	adj [][]int
}

// NewGraph returns an edgeless graph on n nodes.
func NewGraph(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("topology: negative node count %d", n))
	}
	return &Graph{adj: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int {
	total := 0
	for _, nb := range g.adj {
		total += len(nb)
	}
	return total / 2
}

// Degree returns the degree of node u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns node u's adjacency list. The returned slice is owned
// by the graph and must not be mutated; callers that need to modify it
// must copy first.
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// HasEdge reports whether the undirected edge {u,v} is present. It scans
// u's adjacency list, so it is O(deg(u)).
func (g *Graph) HasEdge(u, v int) bool {
	for _, w := range g.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// AddEdge inserts the undirected edge {u,v}. Self-loops and duplicate
// edges are programming errors and panic, since every generator in this
// package is expected to produce simple graphs.
func (g *Graph) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("topology: self-loop at node %d", u))
	}
	if g.HasEdge(u, v) {
		panic(fmt.Sprintf("topology: duplicate edge {%d,%d}", u, v))
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// addEdgeUnchecked inserts {u,v} without the duplicate scan. Generators
// that already guarantee simplicity use it to stay O(1) per edge.
func (g *Graph) addEdgeUnchecked(u, v int) {
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// RemoveEdge deletes the undirected edge {u,v} if present and reports
// whether it was found.
func (g *Graph) RemoveEdge(u, v int) bool {
	if !removeFrom(&g.adj[u], v) {
		return false
	}
	if !removeFrom(&g.adj[v], u) {
		panic(fmt.Sprintf("topology: asymmetric adjacency between %d and %d", u, v))
	}
	return true
}

func removeFrom(list *[]int, v int) bool {
	l := *list
	for i, w := range l {
		if w == v {
			l[i] = l[len(l)-1]
			*list = l[:len(l)-1]
			return true
		}
	}
	return false
}

// Validate checks structural invariants — no self-loops, no duplicate
// edges, symmetric adjacency — and returns the first violation found.
func (g *Graph) Validate() error {
	for u, nb := range g.adj {
		seen := make(map[int]bool, len(nb))
		for _, v := range nb {
			if v == u {
				return fmt.Errorf("topology: self-loop at node %d", u)
			}
			if v < 0 || v >= len(g.adj) {
				return fmt.Errorf("topology: edge from %d to out-of-range node %d", u, v)
			}
			if seen[v] {
				return fmt.Errorf("topology: duplicate edge {%d,%d}", u, v)
			}
			seen[v] = true
			if !g.HasEdge(v, u) {
				return fmt.Errorf("topology: asymmetric edge {%d,%d}", u, v)
			}
		}
	}
	return nil
}

// IsConnected reports whether the graph has a single connected component.
// The empty graph is considered connected.
func (g *Graph) IsConnected() bool {
	n := len(g.adj)
	if n == 0 {
		return true
	}
	return g.componentSize(0, nil) == n
}

// Components returns the connected components as slices of node indices,
// each sorted ascending, ordered by their smallest member.
func (g *Graph) Components() [][]int {
	n := len(g.adj)
	visited := make([]bool, n)
	var comps [][]int
	for u := 0; u < n; u++ {
		if visited[u] {
			continue
		}
		var comp []int
		g.bfs(u, visited, func(v int) { comp = append(comp, v) })
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

func (g *Graph) componentSize(start int, visited []bool) int {
	if visited == nil {
		visited = make([]bool, len(g.adj))
	}
	size := 0
	g.bfs(start, visited, func(int) { size++ })
	return size
}

func (g *Graph) bfs(start int, visited []bool, visit func(int)) {
	queue := []int{start}
	visited[start] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		visit(u)
		for _, v := range g.adj[u] {
			if !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
}

// Connect adds the minimum number of edges needed to make the graph
// connected, linking a random member of each extra component to a random
// node of the main component. Generators call it to guarantee the overlays
// handed to experiments are usable.
func (g *Graph) Connect(rng *rand.Rand) {
	comps := g.Components()
	if len(comps) <= 1 {
		return
	}
	main := comps[0]
	for _, comp := range comps[1:] {
		u := main[rng.Intn(len(main))]
		v := comp[rng.Intn(len(comp))]
		if !g.HasEdge(u, v) {
			g.addEdgeUnchecked(u, v)
		}
		main = append(main, comp...)
	}
}

// DegreeHistogram returns a map from degree to the number of nodes with
// that degree.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, nb := range g.adj {
		h[len(nb)]++
	}
	return h
}

// MinDegree returns the smallest node degree, or 0 for the empty graph.
func (g *Graph) MinDegree() int {
	if len(g.adj) == 0 {
		return 0
	}
	min := len(g.adj[0])
	for _, nb := range g.adj[1:] {
		if len(nb) < min {
			min = len(nb)
		}
	}
	return min
}

// AvgDegree returns the mean node degree.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.M()) / float64(len(g.adj))
}

// MaxDegree returns the largest node degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nb := range g.adj {
		if len(nb) > max {
			max = len(nb)
		}
	}
	return max
}
