package topology

import (
	"math/rand"
	"testing"
	"time"
)

func TestUnderlayHierarchy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	params := TransitStubParams{
		TransitDomains:  2,
		TransitNodes:    2,
		StubsPerTransit: 2,
		NodesPerStub:    4,
	}
	u, err := NewUnderlay(32, params, rng)
	if err != nil {
		t.Fatal(err)
	}
	if u.N() != 32 {
		t.Fatalf("N = %d, want 32", u.N())
	}

	// Find representative pairs at each hierarchy level.
	var sameStub, sameDomain, crossDomain [2]int
	foundStub, foundDomain, foundCross := false, false, false
	for a := 0; a < u.N() && !(foundStub && foundDomain && foundCross); a++ {
		for b := a + 1; b < u.N(); b++ {
			switch {
			case u.SameStub(a, b) && !foundStub:
				sameStub = [2]int{a, b}
				foundStub = true
			case !u.SameStub(a, b) && u.SameDomain(a, b) && !foundDomain:
				sameDomain = [2]int{a, b}
				foundDomain = true
			case !u.SameDomain(a, b) && !foundCross:
				crossDomain = [2]int{a, b}
				foundCross = true
			}
		}
	}
	if !foundStub || !foundDomain || !foundCross {
		t.Fatal("could not find pairs at all hierarchy levels")
	}
	lStub := u.Latency(sameStub[0], sameStub[1])
	lDomain := u.Latency(sameDomain[0], sameDomain[1])
	lCross := u.Latency(crossDomain[0], crossDomain[1])
	if !(lStub < lDomain && lDomain < lCross) {
		t.Errorf("latency hierarchy violated: stub %v, domain %v, cross %v", lStub, lDomain, lCross)
	}
}

func TestUnderlaySelfLatencyZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u, err := NewUnderlay(100, DefaultTransitStub(100), rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i += 7 {
		if u.Latency(i, i) != 0 {
			t.Errorf("Latency(%d,%d) = %v, want 0", i, i, u.Latency(i, i))
		}
	}
}

func TestUnderlaySymmetricWithoutJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	u, err := NewUnderlay(64, DefaultTransitStub(64), rng)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 64; a += 5 {
		for b := 0; b < 64; b += 7 {
			if u.Latency(a, b) != u.Latency(b, a) {
				t.Errorf("asymmetric latency between %d and %d", a, b)
			}
		}
	}
}

func TestUnderlayJitterBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	params := DefaultTransitStub(128)
	params.JitterFraction = 0.2
	u, err := NewUnderlay(128, params, rng)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewUnderlay(128, DefaultTransitStub(128), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 128; a += 11 {
		for b := 0; b < 128; b += 13 {
			if a == b {
				continue
			}
			got := float64(u.Latency(a, b))
			want := float64(base.Latency(a, b))
			if got < want*0.8 || got > want*1.2 {
				t.Errorf("jittered latency %v outside 20%% of base %v", u.Latency(a, b), base.Latency(a, b))
			}
		}
	}
}

func TestUnderlayErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewUnderlay(10, TransitStubParams{}, rng); err == nil {
		t.Error("zero params accepted")
	}
	small := TransitStubParams{TransitDomains: 1, TransitNodes: 1, StubsPerTransit: 1, NodesPerStub: 2}
	if _, err := NewUnderlay(10, small, rng); err == nil {
		t.Error("over-capacity request accepted")
	}
	bad := DefaultTransitStub(10)
	bad.JitterFraction = 1.5
	if _, err := NewUnderlay(10, bad, rng); err == nil {
		t.Error("jitter >= 1 accepted")
	}
}

func TestDefaultTransitStubCapacity(t *testing.T) {
	for _, n := range []int{1, 10, 64, 100, 1000, 5000} {
		p := DefaultTransitStub(n)
		capacity := p.TransitDomains * p.TransitNodes * p.StubsPerTransit * p.NodesPerStub
		if capacity < n {
			t.Errorf("DefaultTransitStub(%d) capacity %d too small", n, capacity)
		}
	}
}

func TestUnderlayLatencyScale(t *testing.T) {
	// All latencies should be in a plausible WAN range.
	rng := rand.New(rand.NewSource(2))
	u, err := NewUnderlay(1000, DefaultTransitStub(1000), rng)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 1000; a += 101 {
		for b := 0; b < 1000; b += 97 {
			if a == b {
				continue
			}
			l := u.Latency(a, b)
			if l < time.Millisecond || l > 500*time.Millisecond {
				t.Errorf("latency %v between %d,%d outside WAN range", l, a, b)
			}
		}
	}
}
