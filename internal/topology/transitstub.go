package topology

import (
	"fmt"
	"math/rand"
	"time"
)

// TransitStubParams configures the GT-ITM-substitute underlay used as the
// latency model for the Pastry experiments (the paper runs MSPastry over a
// 1000-node GT-ITM topology). Latencies are derived from the hierarchical
// relationship of the two endpoints rather than from shortest paths, which
// preserves GT-ITM's structure — cheap within a stub domain, expensive
// across transit domains — at O(1) per query.
type TransitStubParams struct {
	// TransitDomains is the number of top-level transit domains.
	TransitDomains int
	// TransitNodes is the number of transit routers per transit domain.
	TransitNodes int
	// StubsPerTransit is the number of stub domains hanging off each
	// transit router.
	StubsPerTransit int
	// NodesPerStub is the number of end hosts per stub domain.
	NodesPerStub int

	// Latency components; zero values take the defaults below.
	IntraStub      time.Duration // host <-> host within one stub domain
	StubToTransit  time.Duration // stub domain <-> its transit router
	IntraTransit   time.Duration // routers within one transit domain
	InterTransit   time.Duration // routers across transit domains
	JitterFraction float64       // +/- uniform jitter applied per pair
}

// Defaults matching typical GT-ITM parameterizations of the era.
const (
	defaultIntraStub     = 2 * time.Millisecond
	defaultStubToTransit = 10 * time.Millisecond
	defaultIntraTransit  = 20 * time.Millisecond
	defaultInterTransit  = 50 * time.Millisecond
)

// DefaultTransitStub returns parameters producing at least n end hosts in
// a 4-transit-domain hierarchy, the shape used for the paper's 1000-node
// MSPastry runs.
func DefaultTransitStub(n int) TransitStubParams {
	p := TransitStubParams{
		TransitDomains:  4,
		TransitNodes:    4,
		StubsPerTransit: 4,
		NodesPerStub:    (n + 63) / 64, // 4*4*4 = 64 stub domains
	}
	if p.NodesPerStub < 1 {
		p.NodesPerStub = 1
	}
	return p
}

// Underlay assigns every overlay node a position in a transit-stub
// hierarchy and answers pairwise latency queries. It is deliberately not a
// packet-level network: the Pastry experiments only need realistic,
// hierarchy-correlated delays for probes and timeouts.
type Underlay struct {
	params TransitStubParams
	// For host i: transit domain, transit router (global), stub domain (global).
	domainOf []int
	routerOf []int
	stubOf   []int
	jitter   []float64 // per-host multiplicative jitter in [1-j, 1+j]
}

// NewUnderlay builds an underlay with capacity for n end hosts. Hosts are
// distributed round-robin over the stub domains, so domains are balanced.
func NewUnderlay(n int, params TransitStubParams, rng *rand.Rand) (*Underlay, error) {
	if params.TransitDomains < 1 || params.TransitNodes < 1 ||
		params.StubsPerTransit < 1 || params.NodesPerStub < 1 {
		return nil, fmt.Errorf("topology: transit-stub parameters must all be positive: %+v", params)
	}
	capacity := params.TransitDomains * params.TransitNodes * params.StubsPerTransit * params.NodesPerStub
	if n > capacity {
		return nil, fmt.Errorf("topology: underlay capacity %d below requested %d hosts", capacity, n)
	}
	if params.IntraStub == 0 {
		params.IntraStub = defaultIntraStub
	}
	if params.StubToTransit == 0 {
		params.StubToTransit = defaultStubToTransit
	}
	if params.IntraTransit == 0 {
		params.IntraTransit = defaultIntraTransit
	}
	if params.InterTransit == 0 {
		params.InterTransit = defaultInterTransit
	}
	if params.JitterFraction < 0 || params.JitterFraction >= 1 {
		return nil, fmt.Errorf("topology: jitter fraction %v out of [0,1)", params.JitterFraction)
	}

	u := &Underlay{
		params:   params,
		domainOf: make([]int, n),
		routerOf: make([]int, n),
		stubOf:   make([]int, n),
		jitter:   make([]float64, n),
	}
	totalStubs := params.TransitDomains * params.TransitNodes * params.StubsPerTransit
	for i := 0; i < n; i++ {
		stub := i % totalStubs
		router := stub / params.StubsPerTransit
		domain := router / params.TransitNodes
		u.stubOf[i] = stub
		u.routerOf[i] = router
		u.domainOf[i] = domain
		if params.JitterFraction > 0 {
			u.jitter[i] = 1 + params.JitterFraction*(2*rng.Float64()-1)
		} else {
			u.jitter[i] = 1
		}
	}
	return u, nil
}

// N returns the number of end hosts.
func (u *Underlay) N() int { return len(u.domainOf) }

// Latency returns the one-way delay between hosts a and b. It is symmetric
// up to per-host jitter and zero for a == b.
func (u *Underlay) Latency(a, b int) time.Duration {
	if a == b {
		return 0
	}
	p := u.params
	var base time.Duration
	switch {
	case u.stubOf[a] == u.stubOf[b]:
		base = p.IntraStub
	case u.routerOf[a] == u.routerOf[b]:
		// Up to the shared transit router and back down.
		base = 2*p.StubToTransit + p.IntraStub
	case u.domainOf[a] == u.domainOf[b]:
		base = 2*p.StubToTransit + p.IntraTransit
	default:
		base = 2*p.StubToTransit + 2*p.IntraTransit + p.InterTransit
	}
	scale := (u.jitter[a] + u.jitter[b]) / 2
	return time.Duration(float64(base) * scale)
}

// SameStub reports whether two hosts live in the same stub domain; tests
// use it to assert the latency hierarchy.
func (u *Underlay) SameStub(a, b int) bool { return u.stubOf[a] == u.stubOf[b] }

// SameDomain reports whether two hosts share a transit domain.
func (u *Underlay) SameDomain(a, b int) bool { return u.domainOf[a] == u.domainOf[b] }
