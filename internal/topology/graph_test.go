package topology

import (
	"math/rand"
	"testing"
)

func TestNewGraphEmpty(t *testing.T) {
	g := NewGraph(5)
	if g.N() != 5 || g.M() != 0 {
		t.Errorf("NewGraph(5): N=%d M=%d, want 5, 0", g.N(), g.M())
	}
	if !g.IsConnected() == (g.N() <= 1) {
		// 5 isolated nodes are not connected.
		if g.IsConnected() {
			t.Error("edgeless 5-node graph reported connected")
		}
	}
}

func TestAddEdgeSymmetry(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("AddEdge not symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestAddEdgePanics(t *testing.T) {
	t.Run("self-loop", func(t *testing.T) {
		g := NewGraph(2)
		defer func() {
			if recover() == nil {
				t.Error("self-loop did not panic")
			}
		}()
		g.AddEdge(1, 1)
	})
	t.Run("duplicate", func(t *testing.T) {
		g := NewGraph(2)
		g.AddEdge(0, 1)
		defer func() {
			if recover() == nil {
				t.Error("duplicate edge did not panic")
			}
		}()
		g.AddEdge(1, 0)
	})
}

func TestRemoveEdge(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge returned false for existing edge")
	}
	if g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("edge survives removal")
	}
	if g.RemoveEdge(0, 3) {
		t.Error("RemoveEdge returned true for missing edge")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate after removal: %v", err)
	}
}

func TestComponents(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	wantSizes := []int{3, 2, 1}
	for i, c := range comps {
		if len(c) != wantSizes[i] {
			t.Errorf("component %d size = %d, want %d", i, len(c), wantSizes[i])
		}
	}
}

func TestConnect(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewGraph(9)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(4, 5)
	g.Connect(rng)
	if !g.IsConnected() {
		t.Error("Connect left graph disconnected")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate after Connect: %v", err)
	}
}

func TestDegreeStats(t *testing.T) {
	g := Star(5) // center degree 4, leaves degree 1
	if g.MaxDegree() != 4 {
		t.Errorf("MaxDegree = %d, want 4", g.MaxDegree())
	}
	if g.MinDegree() != 1 {
		t.Errorf("MinDegree = %d, want 1", g.MinDegree())
	}
	if got := g.AvgDegree(); got != 8.0/5.0 {
		t.Errorf("AvgDegree = %v, want 1.6", got)
	}
	h := g.DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Errorf("DegreeHistogram = %v", h)
	}
}

func TestComplete(t *testing.T) {
	for _, n := range []int{1, 2, 5, 40} {
		g := Complete(n)
		if g.M() != n*(n-1)/2 {
			t.Errorf("K_%d has %d edges, want %d", n, g.M(), n*(n-1)/2)
		}
		if n > 1 && (g.MinDegree() != n-1 || g.MaxDegree() != n-1) {
			t.Errorf("K_%d is not (n-1)-regular", n)
		}
		if !g.IsConnected() {
			t.Errorf("K_%d not connected", n)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("K_%d invalid: %v", n, err)
		}
	}
}

func TestRingGridStar(t *testing.T) {
	tests := []struct {
		name  string
		g     *Graph
		edges int
	}{
		{"ring5", Ring(5), 5},
		{"ring2", Ring(2), 1},
		{"ring1", Ring(1), 0},
		{"grid3x4", Grid(3, 4), 17},
		{"star7", Star(7), 6},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.M() != tt.edges {
				t.Errorf("M = %d, want %d", tt.g.M(), tt.edges)
			}
			if err := tt.g.Validate(); err != nil {
				t.Errorf("Validate: %v", err)
			}
			if tt.g.N() > 0 && !tt.g.IsConnected() {
				t.Error("not connected")
			}
		})
	}
}

func TestRandomRegular(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	tests := []struct {
		n, d int
	}{
		{10, 3}, {100, 4}, {200, 10}, {500, 100}, {64, 63},
	}
	for _, tt := range tests {
		g, err := RandomRegular(tt.n, tt.d, rng)
		if err != nil {
			t.Fatalf("RandomRegular(%d,%d): %v", tt.n, tt.d, err)
		}
		if g.MinDegree() != tt.d || g.MaxDegree() != tt.d {
			t.Errorf("RandomRegular(%d,%d): degrees [%d,%d], want exactly %d",
				tt.n, tt.d, g.MinDegree(), g.MaxDegree(), tt.d)
		}
		if !g.IsConnected() {
			t.Errorf("RandomRegular(%d,%d) disconnected", tt.n, tt.d)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("RandomRegular(%d,%d) invalid: %v", tt.n, tt.d, err)
		}
	}
}

func TestRandomRegularErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomRegular(10, 10, rng); err == nil {
		t.Error("d >= n accepted")
	}
	if _, err := RandomRegular(5, 3, rng); err == nil {
		t.Error("odd n*d accepted")
	}
	g, err := RandomRegular(10, 0, rng)
	if err != nil || g.M() != 0 {
		t.Error("d=0 should yield edgeless graph")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g, err := BarabasiAlbert(2000, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if g.MinDegree() < 2 {
		t.Errorf("MinDegree = %d, want >= 2 (paper: 0%% degree-1 nodes)", g.MinDegree())
	}
	if !g.IsConnected() {
		t.Error("power-law graph disconnected")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
	// Heavy tail: the max degree should dwarf the average.
	if g.MaxDegree() < 5*int(g.AvgDegree()) {
		t.Errorf("degree distribution not heavy-tailed: max %d, avg %.1f", g.MaxDegree(), g.AvgDegree())
	}
	// Most nodes should sit at or near the minimum degree.
	h := g.DegreeHistogram()
	lowDegree := h[2] + h[3] + h[4]
	if lowDegree < g.N()/2 {
		t.Errorf("only %d/%d nodes have degree <= 4; distribution not skewed", lowDegree, g.N())
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := BarabasiAlbert(5, 0, rng); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := BarabasiAlbert(2, 2, rng); err == nil {
		t.Error("n <= m accepted")
	}
}

func TestPowerLawInetStyle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g, err := PowerLaw(3000, 2.2, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	if !g.IsConnected() {
		t.Error("disconnected")
	}
	if g.MinDegree() < 2 {
		t.Errorf("MinDegree = %d, want >= 2 (0%% degree-1 nodes)", g.MinDegree())
	}
	// Exponent 2.2 gives much heavier hubs than BA's exponent 3: the
	// natural cutoff is n^(1/1.2) ~ 790 for n=3000.
	if g.MaxDegree() < 100 {
		t.Errorf("MaxDegree = %d, want heavy hub tail (>= 100)", g.MaxDegree())
	}
	// Majority of nodes stay near the minimum degree.
	h := g.DegreeHistogram()
	if h[2]+h[3] < g.N()/2 {
		t.Errorf("only %d/%d nodes have degree 2-3", h[2]+h[3], g.N())
	}
}

func TestPowerLawErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := PowerLaw(100, 0.9, 2, rng); err == nil {
		t.Error("gamma <= 1 accepted")
	}
	if _, err := PowerLaw(100, 2.2, 0, rng); err == nil {
		t.Error("minDeg 0 accepted")
	}
	if _, err := PowerLaw(3, 2.2, 2, rng); err == nil {
		t.Error("n too small accepted")
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := ErdosRenyi(200, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("invalid: %v", err)
	}
	// Expected edges = C(200,2)*0.1 = 1990; allow wide tolerance.
	if g.M() < 1500 || g.M() > 2500 {
		t.Errorf("M = %d, want near 1990", g.M())
	}
	if _, err := ErdosRenyi(10, 1.5, rng); err == nil {
		t.Error("p > 1 accepted")
	}
	full, err := ErdosRenyi(10, 1, rng)
	if err != nil || full.M() != 45 {
		t.Errorf("p=1 should give complete graph, got M=%d err=%v", full.M(), err)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	build := func() *Graph {
		rng := rand.New(rand.NewSource(77))
		g, err := PowerLaw(500, 2.2, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := build(), build()
	if a.M() != b.M() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.M(), b.M())
	}
	for u := 0; u < a.N(); u++ {
		if a.Degree(u) != b.Degree(u) {
			t.Fatalf("same seed, different degree at node %d", u)
		}
	}
}
