package workload

import (
	"math/rand"
	"testing"

	"discovery/internal/idspace"
)

func TestUniqueKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	keys := UniqueKeys(500, rng)
	if len(keys) != 500 {
		t.Fatalf("got %d keys, want 500", len(keys))
	}
	seen := make(map[idspace.ID]bool)
	for _, k := range keys {
		if seen[k] {
			t.Fatal("duplicate key")
		}
		seen[k] = true
	}
}

func TestRandomOrigins(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pairs, err := RandomOrigins(200, 50, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 200 {
		t.Fatalf("got %d pairs, want 200", len(pairs))
	}
	insertSpread := make(map[int]bool)
	lookupSpread := make(map[int]bool)
	for _, p := range pairs {
		if p.InsertOrigin < 0 || p.InsertOrigin >= 50 || p.LookupOrigin < 0 || p.LookupOrigin >= 50 {
			t.Fatalf("origin out of range: %+v", p)
		}
		insertSpread[p.InsertOrigin] = true
		lookupSpread[p.LookupOrigin] = true
	}
	if len(insertSpread) < 25 || len(lookupSpread) < 25 {
		t.Errorf("origins not spread: %d insert, %d lookup distinct", len(insertSpread), len(lookupSpread))
	}
}

func TestRandomOriginsError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomOrigins(10, 0, rng); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestSingleOrigin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pairs := SingleOrigin(100, 7, rng)
	if len(pairs) != 100 {
		t.Fatalf("got %d pairs, want 100", len(pairs))
	}
	for _, p := range pairs {
		if p.InsertOrigin != 7 || p.LookupOrigin != 7 {
			t.Fatalf("origins %d/%d, want 7/7", p.InsertOrigin, p.LookupOrigin)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := SingleOrigin(50, 0, rand.New(rand.NewSource(9)))
	b := SingleOrigin(50, 0, rand.New(rand.NewSource(9)))
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatal("same seed produced different keys")
		}
	}
}
