package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"discovery/internal/idspace"
)

// sampleMsgs returns one well-formed message of every type.
func sampleMsgs() []Msg {
	key := idspace.FromString("object-7")
	return []Msg{
		{Type: TInsert, ReqID: 1, Key: key, Origin: 42, Value: []byte("tcp://node42:7700")},
		{Type: TInsert, ReqID: 2, Key: key, Origin: OriginAuto, Value: nil},
		{Type: TLookup, ReqID: 3, Key: key, Origin: 7},
		{Type: TDelete, ReqID: 4, Key: key, Origin: 42},
		{Type: TStats, ReqID: 5},
		{Type: TInsertOK, ReqID: 1, Insert: InsertReply{Replicas: 9, Messages: 31, Duplicates: 2, Flows: 10, Dropped: 1}},
		{Type: TLookupOK, ReqID: 3, Lookup: LookupReply{Found: true, FirstReplyHops: 4, Replies: 3, Messages: 17, Duplicates: 1, Flows: 8}},
		{Type: TLookupOK, ReqID: 6, Lookup: LookupReply{Found: false, FirstReplyHops: -1}},
		{Type: TDeleteOK, ReqID: 4, Deleted: 5},
		{Type: TStatsOK, ReqID: 5, Stats: StatsReply{
			Shards: 3, Inserts: 100, Lookups: 200, Deletes: 3, Found: 180,
			ShardRequests: []uint64{101, 99, 103},
		}},
		{Type: TMembers, ReqID: 19},
		{Type: TMembersOK, ReqID: 19, Cluster: 0xA1, Replication: 3,
			Members: []string{"127.0.0.1:7701", "", "127.0.0.1:7703"}},
		{Type: TMembersOK, ReqID: 20, Cluster: 0xA2, Replication: 1, Members: nil},
		{Type: TWrongView, ReqID: 21, Cluster: 0xBEEF},
		{Type: TError, ReqID: 9, Value: []byte("origin 9000 out of range")},
		{Type: TPeerProbe, ReqID: 10, Cluster: 0xDEADBEEF01234567, Origin: 2, ClientAddr: []byte("127.0.0.1:7702")},
		{Type: TPeerProbe, ReqID: 22, Cluster: 0xDEADBEEF01234567, Origin: 1},
		{Type: TPeerProbeOK, ReqID: 10, Cluster: 0xDEADBEEF01234567, Origin: 0, Held: 4096, ClientAddr: []byte("127.0.0.1:7700")},
		{Type: TPeerProbeOK, ReqID: 23, Cluster: 0xDEADBEEF01234567, Origin: 2, Held: 1},
		{Type: TRoute, ReqID: 11, RouteKind: TInsert, Cluster: 0xA1, Key: key, Origin: 1, Value: []byte("tcp://node1:7700")},
		{Type: TRoute, ReqID: 12, RouteKind: TInsert, Cluster: 0xA1, Key: key, Origin: 1, Value: nil},
		{Type: TRoute, ReqID: 13, RouteKind: TLookup, Cluster: 0xA1, Key: key, Origin: 0},
		{Type: TRoute, ReqID: 14, RouteKind: TDelete, Cluster: 0xA1, Key: key, Origin: 2},
		{Type: TRoute, ReqID: 24, RouteKind: TInsert, Cluster: 0xA1, Key: key, Origin: 1,
			Traced: true, Trace: 0xFEEDFACECAFEF00D, Value: []byte("tcp://node1:7700")},
		{Type: TRoute, ReqID: 25, RouteKind: TLookup, Cluster: 0xA1, Key: key, Origin: 0,
			Traced: true, Trace: 1},
		{Type: TRepair, ReqID: 15, Cluster: 0xA1, Region: 1},
		{Type: TRepair, ReqID: 26, Cluster: 0xA1, Region: 3, Traced: true, Trace: 0x1122334455667788},
		{Type: TRepair, ReqID: 18, Cluster: 0xA1, Region: 2,
			Cursor: RepairCursor{Shard: 3, Node: 17, Key: idspace.FromString("resume-here")}},
		{Type: TRepairOK, ReqID: 15, Region: 1, Entries: []TransferEntry{
			{Node: 0, Origin: 2, Key: key, Value: []byte("v0")},
			{Node: 1, Origin: 2, Key: idspace.FromString("object-8"), Value: nil},
		}},
		{Type: TRepairOK, ReqID: 18, Region: 2, More: true,
			Cursor:  RepairCursor{Shard: 1, Node: 9, Key: idspace.FromString("next-page")},
			Entries: []TransferEntry{{Node: 4, Origin: 1, Key: key, Value: []byte("paged")}}},
		{Type: TTransfer, ReqID: 16, Cluster: 0xA1, Entries: []TransferEntry{
			{Node: 2, Origin: 0, Key: key, Value: []byte("moved")},
		}},
		{Type: TTransfer, ReqID: 17, Cluster: 0xA1, Entries: nil},
		{Type: TTransfer, ReqID: 27, Cluster: 0xA1, Traced: true, Trace: 0xABCD,
			Entries: []TransferEntry{{Node: 5, Origin: 1, Key: key, Value: []byte("traced")}}},
		{Type: TTransferOK, ReqID: 16, Accepted: 1},
		{Type: TReplicate, ReqID: 28, RouteKind: TInsert, Cluster: 0xA1, Key: key, Origin: 1,
			Value: []byte("tcp://node1:7700")},
		{Type: TReplicate, ReqID: 29, RouteKind: TInsert, Cluster: 0xA1, Key: key, Origin: 1, Value: nil},
		{Type: TReplicate, ReqID: 30, RouteKind: TDelete, Cluster: 0xA1, Key: key, Origin: 2},
		{Type: TReplicate, ReqID: 31, RouteKind: TInsert, Cluster: 0xA1, Key: key, Origin: 1,
			Traced: true, Trace: 0xFEEDFACECAFEF00D, Value: []byte("replicated")},
		{Type: TReplicateOK, ReqID: 28},
	}
}

// entriesEq compares transfer entry lists field by field.
func entriesEq(a, b []TransferEntry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Node != b[i].Node || a[i].Origin != b[i].Origin ||
			a[i].Key != b[i].Key || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

// eq compares only the fields the wire carries for the message's type, so
// reused scratch in unrelated fields does not trip the comparison.
func eq(t *testing.T, a, b *Msg) {
	t.Helper()
	if a.Type != b.Type || a.ReqID != b.ReqID {
		t.Fatalf("header mismatch: %v/%d vs %v/%d", a.Type, a.ReqID, b.Type, b.ReqID)
	}
	switch a.Type {
	case TInsert:
		if a.Key != b.Key || a.Origin != b.Origin || !bytes.Equal(a.Value, b.Value) {
			t.Fatalf("insert mismatch: %+v vs %+v", a, b)
		}
	case TLookup, TDelete:
		if a.Key != b.Key || a.Origin != b.Origin {
			t.Fatalf("keyed request mismatch: %+v vs %+v", a, b)
		}
	case TStats:
	case TInsertOK:
		if a.Insert != b.Insert {
			t.Fatalf("insert reply mismatch: %+v vs %+v", a.Insert, b.Insert)
		}
	case TLookupOK:
		if a.Lookup != b.Lookup {
			t.Fatalf("lookup reply mismatch: %+v vs %+v", a.Lookup, b.Lookup)
		}
	case TDeleteOK:
		if a.Deleted != b.Deleted {
			t.Fatalf("delete reply mismatch: %d vs %d", a.Deleted, b.Deleted)
		}
	case TStatsOK:
		if a.Stats.Shards != b.Stats.Shards || a.Stats.Inserts != b.Stats.Inserts ||
			a.Stats.Lookups != b.Stats.Lookups || a.Stats.Deletes != b.Stats.Deletes ||
			a.Stats.Found != b.Stats.Found ||
			!reflect.DeepEqual(a.Stats.ShardRequests, b.Stats.ShardRequests) {
			t.Fatalf("stats mismatch: %+v vs %+v", a.Stats, b.Stats)
		}
	case TMembers:
	case TMembersOK:
		if a.Cluster != b.Cluster || a.Replication != b.Replication || len(a.Members) != len(b.Members) {
			t.Fatalf("members mismatch: %+v vs %+v", a, b)
		}
		for i := range a.Members {
			if a.Members[i] != b.Members[i] {
				t.Fatalf("member %d mismatch: %q vs %q", i, a.Members[i], b.Members[i])
			}
		}
	case TWrongView:
		if a.Cluster != b.Cluster {
			t.Fatalf("wrong-view mismatch: %+v vs %+v", a, b)
		}
	case TPeerProbe:
		if a.Cluster != b.Cluster || a.Origin != b.Origin || !bytes.Equal(a.ClientAddr, b.ClientAddr) {
			t.Fatalf("probe mismatch: %+v vs %+v", a, b)
		}
	case TPeerProbeOK:
		if a.Cluster != b.Cluster || a.Origin != b.Origin || a.Held != b.Held || !bytes.Equal(a.ClientAddr, b.ClientAddr) {
			t.Fatalf("probe reply mismatch: %+v vs %+v", a, b)
		}
	case TRoute:
		if a.RouteKind != b.RouteKind || a.Cluster != b.Cluster || a.Key != b.Key || a.Origin != b.Origin {
			t.Fatalf("route mismatch: %+v vs %+v", a, b)
		}
		if a.Traced != b.Traced || a.Trace != b.Trace {
			t.Fatalf("route trace mismatch: %+v vs %+v", a, b)
		}
		if a.RouteKind == TInsert && !bytes.Equal(a.Value, b.Value) {
			t.Fatalf("route value mismatch: %q vs %q", a.Value, b.Value)
		}
	case TRepair:
		if a.Cluster != b.Cluster || a.Region != b.Region || a.Cursor != b.Cursor ||
			a.Traced != b.Traced || a.Trace != b.Trace {
			t.Fatalf("repair mismatch: %+v vs %+v", a, b)
		}
	case TRepairOK:
		if a.Region != b.Region || a.More != b.More || a.Cursor != b.Cursor || !entriesEq(a.Entries, b.Entries) {
			t.Fatalf("repair reply mismatch: %+v vs %+v", a, b)
		}
	case TTransfer:
		if a.Cluster != b.Cluster || !entriesEq(a.Entries, b.Entries) ||
			a.Traced != b.Traced || a.Trace != b.Trace {
			t.Fatalf("transfer mismatch: %+v vs %+v", a, b)
		}
	case TTransferOK:
		if a.Accepted != b.Accepted {
			t.Fatalf("transfer reply mismatch: %d vs %d", a.Accepted, b.Accepted)
		}
	case TReplicate:
		if a.RouteKind != b.RouteKind || a.Cluster != b.Cluster || a.Key != b.Key || a.Origin != b.Origin {
			t.Fatalf("replicate mismatch: %+v vs %+v", a, b)
		}
		if a.Traced != b.Traced || a.Trace != b.Trace {
			t.Fatalf("replicate trace mismatch: %+v vs %+v", a, b)
		}
		if a.RouteKind == TInsert && !bytes.Equal(a.Value, b.Value) {
			t.Fatalf("replicate value mismatch: %q vs %q", a.Value, b.Value)
		}
	case TReplicateOK:
	case TError:
		if !bytes.Equal(a.Value, b.Value) {
			t.Fatalf("error text mismatch: %q vs %q", a.Value, b.Value)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	var got Msg
	for _, m := range sampleMsgs() {
		frame, err := m.Append(nil)
		if err != nil {
			t.Fatalf("%v: encode: %v", m.Type, err)
		}
		if err := got.Decode(frame[lenWords:]); err != nil {
			t.Fatalf("%v: decode: %v", m.Type, err)
		}
		eq(t, &m, &got)
		// Re-encoding must reproduce the exact frame (canonical codec).
		again, err := got.Append(nil)
		if err != nil {
			t.Fatalf("%v: re-encode: %v", m.Type, err)
		}
		if !bytes.Equal(frame, again) {
			t.Fatalf("%v: re-encode differs:\n %x\n %x", m.Type, frame, again)
		}
	}
}

func TestReadFrameStream(t *testing.T) {
	var stream []byte
	msgs := sampleMsgs()
	for _, m := range msgs {
		var err error
		stream, err = m.Append(stream)
		if err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(stream)
	var scratch []byte
	var got Msg
	for _, want := range msgs {
		body, err := ReadFrame(r, &scratch)
		if err != nil {
			t.Fatalf("%v: read: %v", want.Type, err)
		}
		if err := got.Decode(body); err != nil {
			t.Fatalf("%v: decode: %v", want.Type, err)
		}
		eq(t, &want, &got)
	}
	if _, err := ReadFrame(r, &scratch); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		body []byte
		want error
	}{
		{"empty", nil, ErrShort},
		{"header only lookup", append([]byte{byte(TLookup)}, make([]byte, 8)...), ErrShort},
		{"unknown type", append([]byte{0x7E}, make([]byte, 8)...), ErrType},
		{"stats with trailing", append([]byte{byte(TStats)}, make([]byte, 9)...), ErrTrailing},
		{"lookup trailing", append([]byte{byte(TLookup)}, make([]byte, 8+idspace.Bytes+5)...), ErrTrailing},
		{"deleteok short", append([]byte{byte(TDeleteOK)}, make([]byte, 8+2)...), ErrShort},
		{"bad bool", func() []byte {
			b := append([]byte{byte(TLookupOK)}, make([]byte, 8+25)...)
			b[9] = 2
			return b
		}(), ErrBool},
		{"stats shard mismatch", func() []byte {
			b := append([]byte{byte(TStatsOK)}, make([]byte, 8+36+8)...)
			b[9+3] = 7 // claims 7 shards, carries 1
			return b
		}(), ErrShards},
		{"route bad kind", func() []byte {
			b := append([]byte{byte(TRoute)}, make([]byte, 8+1+8+1+idspace.Bytes+4)...)
			b[9] = byte(TStats) // not a routable kind
			return b
		}(), ErrRoute},
		{"route lookup trailing", func() []byte {
			b := append([]byte{byte(TRoute)}, make([]byte, 8+1+8+1+idspace.Bytes+4+3)...)
			b[9] = byte(TLookup)
			return b
		}(), ErrTrailing},
		{"route bad trace flags", func() []byte {
			b := append([]byte{byte(TRoute)}, make([]byte, 8+1+8+1+idspace.Bytes+4)...)
			b[9] = byte(TLookup)
			b[9+1+8] = 0x80 // undefined trailer flag bit
			return b
		}(), ErrTrace},
		{"route traced id cut short", func() []byte {
			b := append([]byte{byte(TRoute)}, make([]byte, 8+1+8+1+4)...)
			b[9] = byte(TLookup)
			b[9+1+8] = 1 // sampled, but only 4 of the 8 ID bytes follow
			return b
		}(), ErrShort},
		{"route traced key cut short", func() []byte {
			b := append([]byte{byte(TRoute)}, make([]byte, 8+1+8+9+idspace.Bytes)...)
			b[9] = byte(TLookup)
			b[9+1+8] = 1 // full trailer, but origin is missing after the key
			return b
		}(), ErrShort},
		{"probe short", append([]byte{byte(TPeerProbe)}, make([]byte, 8+11)...), ErrShort},
		{"probe addr overruns body", func() []byte {
			b := append([]byte{byte(TPeerProbe)}, make([]byte, 8+14)...)
			b[9+13] = 5 // alen = 5, but the body ends here
			return b
		}(), ErrShort},
		{"probe addr trailing", append([]byte{byte(TPeerProbe)}, make([]byte, 8+14+3)...), ErrTrailing},
		{"probe-ok short", append([]byte{byte(TPeerProbeOK)}, make([]byte, 8+20)...), ErrShort},
		{"members with body", append([]byte{byte(TMembers)}, make([]byte, 8+1)...), ErrTrailing},
		{"members-ok short", append([]byte{byte(TMembersOK)}, make([]byte, 8+14)...), ErrShort},
		{"members-ok count overruns body", func() []byte {
			b := append([]byte{byte(TMembersOK)}, make([]byte, 8+16)...)
			b[9+15] = 9 // claims 9 members, carries none
			return b
		}(), ErrMembers},
		{"members-ok len overruns body", func() []byte {
			b := append([]byte{byte(TMembersOK)}, make([]byte, 8+16+2)...)
			b[9+15] = 1  // one member...
			b[9+17] = 40 // ...claiming 40 bytes the body lacks
			return b
		}(), ErrMembers},
		{"members-ok trailing", append([]byte{byte(TMembersOK)}, make([]byte, 8+16+1)...), ErrTrailing},
		{"wrong-view short", append([]byte{byte(TWrongView)}, make([]byte, 8+4)...), ErrShort},
		{"wrong-view trailing", append([]byte{byte(TWrongView)}, make([]byte, 8+9)...), ErrTrailing},
		{"repair short", append([]byte{byte(TRepair)}, make([]byte, 8+8+1+5)...), ErrShort},
		{"repair trailing", append([]byte{byte(TRepair)}, make([]byte, 8+8+1+4+28+2)...), ErrTrailing},
		{"repair bad trace flags", func() []byte {
			b := append([]byte{byte(TRepair)}, make([]byte, 8+8+1+4+28)...)
			b[9+8] = 3 // trailer flags must be 0 or 1
			return b
		}(), ErrTrace},
		{"repair-ok bad more byte", func() []byte {
			b := append([]byte{byte(TRepairOK)}, make([]byte, 8+4+1+28+4)...)
			b[9+4] = 7 // more must be 0 or 1
			return b
		}(), ErrBool},
		{"repair-ok cursor without more", func() []byte {
			b := append([]byte{byte(TRepairOK)}, make([]byte, 8+4+1+28+4)...)
			b[9+4] = 0   // more = 0
			b[9+4+1] = 9 // ...but a nonzero cursor shard
			return b
		}(), ErrCursor},
		{"transfer count overruns body", func() []byte {
			b := append([]byte{byte(TTransfer)}, make([]byte, 8+8+1+4)...)
			b[9+8+1+3] = 9 // claims 9 entries, carries none
			return b
		}(), ErrEntries},
		{"transfer value overruns body", func() []byte {
			// One entry whose value length claims more bytes than remain.
			b := append([]byte{byte(TTransfer)}, make([]byte, 8+8+1+4+32)...)
			b[9+8+1+3] = 1      // one entry
			b[9+8+1+4+31] = 200 // vlen = 200, but the body ends here
			return b
		}(), ErrEntries},
		{"transfer trailing", func() []byte {
			b := append([]byte{byte(TTransfer)}, make([]byte, 8+8+1+4+32+2)...)
			b[9+8+1+3] = 1 // one entry with vlen 0, then 2 stray bytes
			return b
		}(), ErrTrailing},
		{"transfer bad trace flags", func() []byte {
			b := append([]byte{byte(TTransfer)}, make([]byte, 8+8+1+4)...)
			b[9+8] = 0xFF
			return b
		}(), ErrTrace},
		{"replicate bad kind", func() []byte {
			b := append([]byte{byte(TReplicate)}, make([]byte, 8+1+8+1+idspace.Bytes+4)...)
			b[9] = byte(TLookup) // lookups fail over, they are never replicated
			return b
		}(), ErrRepl},
		{"replicate delete trailing", func() []byte {
			b := append([]byte{byte(TReplicate)}, make([]byte, 8+1+8+1+idspace.Bytes+4+3)...)
			b[9] = byte(TDelete)
			return b
		}(), ErrTrailing},
		{"replicate bad trace flags", func() []byte {
			b := append([]byte{byte(TReplicate)}, make([]byte, 8+1+8+1+idspace.Bytes+4)...)
			b[9] = byte(TInsert)
			b[9+1+8] = 0x80 // undefined trailer flag bit
			return b
		}(), ErrTrace},
		{"replicate key cut short", func() []byte {
			b := append([]byte{byte(TReplicate)}, make([]byte, 8+1+8+1+4)...)
			b[9] = byte(TDelete)
			return b
		}(), ErrShort},
		{"replicate-ok with body", append([]byte{byte(TReplicateOK)}, make([]byte, 8+1)...), ErrTrailing},
	}
	var m Msg
	for _, tc := range cases {
		if err := m.Decode(tc.body); err != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestReadFrameRejectsOversizeBeforeAllocating(t *testing.T) {
	hdr := []byte{0xFF, 0xFF, 0xFF, 0xFF} // 4 GiB claim
	var scratch []byte
	if _, err := ReadFrame(bytes.NewReader(hdr), &scratch); err != ErrOversize {
		t.Fatalf("got %v, want ErrOversize", err)
	}
	if cap(scratch) > 1024 {
		t.Fatalf("oversize frame grew scratch to %d bytes", cap(scratch))
	}
}

func TestReadFrameTruncated(t *testing.T) {
	m := Msg{Type: TLookup, ReqID: 1, Key: idspace.FromString("k"), Origin: 3}
	frame, err := m.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	var scratch []byte
	if _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-3]), &scratch); err != io.ErrUnexpectedEOF {
		t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestAppendOversizeValue(t *testing.T) {
	m := Msg{Type: TInsert, ReqID: 1, Value: make([]byte, MaxFrame)}
	if _, err := m.Append(nil); err != ErrOversize {
		t.Fatalf("got %v, want ErrOversize", err)
	}
}

func TestEncodeZeroAlloc(t *testing.T) {
	m := Msg{Type: TInsert, ReqID: 1, Key: idspace.FromString("k"), Origin: 3, Value: []byte("payload")}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		if _, err = m.Append(buf[:0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("encode allocates %.1f times per op", allocs)
	}
}

func TestDecodeSteadyStateZeroAlloc(t *testing.T) {
	src := Msg{Type: TInsert, ReqID: 1, Key: idspace.FromString("k"), Origin: 3, Value: []byte("payload")}
	frame, err := src.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	var m Msg
	if err := m.Decode(frame[lenWords:]); err != nil { // warm Value capacity
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := m.Decode(frame[lenWords:]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state decode allocates %.1f times per op", allocs)
	}
}

func BenchmarkEncodeInsert(b *testing.B) {
	m := Msg{Type: TInsert, ReqID: 1, Key: idspace.FromString("k"), Origin: 3, Value: []byte("tcp://node42:7700/object")}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if buf, err = m.Append(buf[:0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeInsert(b *testing.B) {
	src := Msg{Type: TInsert, ReqID: 1, Key: idspace.FromString("k"), Origin: 3, Value: []byte("tcp://node42:7700/object")}
	frame, err := src.Append(nil)
	if err != nil {
		b.Fatal(err)
	}
	var m Msg
	if err := m.Decode(frame[lenWords:]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Decode(frame[lenWords:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeLookupReply(b *testing.B) {
	src := Msg{Type: TLookupOK, ReqID: 3, Lookup: LookupReply{Found: true, FirstReplyHops: 4, Replies: 3, Messages: 17, Flows: 8}}
	frame, err := src.Append(nil)
	if err != nil {
		b.Fatal(err)
	}
	var m Msg
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Decode(frame[lenWords:]); err != nil {
			b.Fatal(err)
		}
	}
}
