// Package wire is discoveryd's binary wire protocol: a compact
// length-prefixed framing with fixed-layout bodies for the four request
// kinds (insert, lookup, delete, stats) and their responses.
//
// The codec follows the repository's zero-allocation buffer discipline:
// encoding appends to a caller-owned byte slice, decoding fills a reusable
// Msg whose variable-length fields recycle their backing arrays, and frame
// reading grows a caller-owned scratch buffer once and then reuses it.
// There is no reflection and no JSON on the hot path.
//
// # Framing
//
// Every message on the wire is one frame:
//
//	| u32 length | u8 type | u64 reqID | body |
//
// where length covers everything after the length word itself, all
// integers are big-endian, and length is at most MaxFrame. ReqID is an
// opaque request correlator chosen by the client; the server echoes it in
// the response, which is what makes request pipelining (and out-of-order
// completion across shards) possible over a single connection.
//
// # Bodies
//
//	TInsert:   key[20] | u32 origin | value...         (value = rest of frame)
//	TLookup:   key[20] | u32 origin
//	TDelete:   key[20] | u32 origin
//	TStats:    (empty)
//	TInsertOK: u32 replicas | u32 messages | u32 duplicates | u32 flows | u32 dropped
//	TLookupOK: u8 found | u32 firstReplyHops (two's complement) | u32 replies |
//	           u32 messages | u32 duplicates | u32 flows | u32 dropped
//	TDeleteOK: u32 removed
//	TStatsOK:  u32 shards | u64 inserts | u64 lookups | u64 deletes |
//	           u64 found | shards x u64 perShardRequests
//	TError:    text...                                 (UTF-8, rest of frame)
//
// Decoding is strict: bodies must have exactly the advertised layout, and
// decoding arbitrary bytes never panics (fuzzed by FuzzDecode).
package wire

import (
	"encoding/binary"
	"errors"
	"io"

	"discovery/internal/idspace"
)

// MaxFrame is the largest legal frame body (everything after the length
// word). It bounds both value payloads and the allocation a malicious
// length prefix can force on a reader.
const MaxFrame = 1 << 20

// lenWords is the size of the frame length prefix.
const lenWords = 4

// headerLen is type byte + reqID, the fixed prefix of every frame body.
const headerLen = 1 + 8

// Type identifies a message kind. Requests have the high bit clear,
// responses have it set.
type Type uint8

// Message types.
const (
	TInsert Type = 0x01
	TLookup Type = 0x02
	TDelete Type = 0x03
	TStats  Type = 0x04

	TInsertOK Type = 0x81
	TLookupOK Type = 0x82
	TDeleteOK Type = 0x83
	TStatsOK  Type = 0x84
	TError    Type = 0xFF
)

// String implements fmt.Stringer for log lines.
func (t Type) String() string {
	switch t {
	case TInsert:
		return "insert"
	case TLookup:
		return "lookup"
	case TDelete:
		return "delete"
	case TStats:
		return "stats"
	case TInsertOK:
		return "insert-ok"
	case TLookupOK:
		return "lookup-ok"
	case TDeleteOK:
		return "delete-ok"
	case TStatsOK:
		return "stats-ok"
	case TError:
		return "error"
	default:
		return "unknown"
	}
}

// IsRequest reports whether t is a client-to-server type.
func (t Type) IsRequest() bool { return t >= TInsert && t <= TStats }

// OriginAuto is the origin sentinel meaning "server picks the entry node"
// (derived deterministically from the key).
const OriginAuto = ^uint32(0)

// Decode errors. These are predeclared so the steady-state decode path
// allocates nothing even when rejecting garbage.
var (
	ErrShort    = errors.New("wire: frame body too short")
	ErrTrailing = errors.New("wire: trailing bytes after body")
	ErrOversize = errors.New("wire: frame exceeds MaxFrame")
	ErrType     = errors.New("wire: unknown message type")
	ErrBool     = errors.New("wire: boolean byte not 0 or 1")
	ErrShards   = errors.New("wire: stats shard count out of range")
)

// InsertReply carries the insertion statistics of one request.
type InsertReply struct {
	Replicas   uint32
	Messages   uint32
	Duplicates uint32
	Flows      uint32
	Dropped    uint32
}

// LookupReply carries the lookup outcome of one request.
type LookupReply struct {
	Found          bool
	FirstReplyHops int32 // -1 when not found
	Replies        uint32
	Messages       uint32
	Duplicates     uint32
	Flows          uint32
	Dropped        uint32
}

// StatsReply is the daemon-wide counter snapshot.
type StatsReply struct {
	Shards  uint32
	Inserts uint64
	Lookups uint64
	Deletes uint64
	// Found counts lookups that located at least one replica.
	Found uint64
	// ShardRequests has one entry per shard: total requests executed
	// there. Reused across decodes; len == Shards after a successful
	// decode.
	ShardRequests []uint64
}

// Msg is one decoded message of any type. A single Msg is meant to be
// reused across a connection's lifetime: Decode refills it in place and
// Value/Stats.ShardRequests recycle their capacity.
type Msg struct {
	Type   Type
	ReqID  uint64
	Key    idspace.ID
	Origin uint32 // requests only; OriginAuto delegates the choice
	// Value is the insert payload (TInsert) or error text (TError).
	Value  []byte
	Insert InsertReply
	Lookup LookupReply
	// Deleted is the removed-replica count of a TDeleteOK.
	Deleted uint32
	Stats   StatsReply
}

// ErrorText returns the error message of a TError response.
func (m *Msg) ErrorText() string { return string(m.Value) }

// bodyLen returns the body size of the message, excluding the frame
// length word but including the type/reqID header.
func (m *Msg) bodyLen() int {
	n := headerLen
	switch m.Type {
	case TInsert:
		n += idspace.Bytes + 4 + len(m.Value)
	case TLookup, TDelete:
		n += idspace.Bytes + 4
	case TStats:
	case TInsertOK:
		n += 5 * 4
	case TLookupOK:
		n += 1 + 6*4
	case TDeleteOK:
		n += 4
	case TStatsOK:
		n += 4 + 4*8 + 8*len(m.Stats.ShardRequests)
	case TError:
		n += len(m.Value)
	}
	return n
}

// Append encodes the message as one complete frame (length prefix
// included) appended to dst, returning the extended slice. With
// sufficient capacity in dst it performs no allocation. It returns
// ErrOversize when the body would exceed MaxFrame and ErrShards when a
// TStatsOK shard slice disagrees with its count.
func (m *Msg) Append(dst []byte) ([]byte, error) {
	body := m.bodyLen()
	if body > MaxFrame {
		return dst, ErrOversize
	}
	if m.Type == TStatsOK && int(m.Stats.Shards) != len(m.Stats.ShardRequests) {
		return dst, ErrShards
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, byte(m.Type))
	dst = binary.BigEndian.AppendUint64(dst, m.ReqID)
	switch m.Type {
	case TInsert:
		dst = append(dst, m.Key[:]...)
		dst = binary.BigEndian.AppendUint32(dst, m.Origin)
		dst = append(dst, m.Value...)
	case TLookup, TDelete:
		dst = append(dst, m.Key[:]...)
		dst = binary.BigEndian.AppendUint32(dst, m.Origin)
	case TStats:
	case TInsertOK:
		r := &m.Insert
		dst = binary.BigEndian.AppendUint32(dst, r.Replicas)
		dst = binary.BigEndian.AppendUint32(dst, r.Messages)
		dst = binary.BigEndian.AppendUint32(dst, r.Duplicates)
		dst = binary.BigEndian.AppendUint32(dst, r.Flows)
		dst = binary.BigEndian.AppendUint32(dst, r.Dropped)
	case TLookupOK:
		r := &m.Lookup
		if r.Found {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(r.FirstReplyHops))
		dst = binary.BigEndian.AppendUint32(dst, r.Replies)
		dst = binary.BigEndian.AppendUint32(dst, r.Messages)
		dst = binary.BigEndian.AppendUint32(dst, r.Duplicates)
		dst = binary.BigEndian.AppendUint32(dst, r.Flows)
		dst = binary.BigEndian.AppendUint32(dst, r.Dropped)
	case TDeleteOK:
		dst = binary.BigEndian.AppendUint32(dst, m.Deleted)
	case TStatsOK:
		s := &m.Stats
		dst = binary.BigEndian.AppendUint32(dst, s.Shards)
		dst = binary.BigEndian.AppendUint64(dst, s.Inserts)
		dst = binary.BigEndian.AppendUint64(dst, s.Lookups)
		dst = binary.BigEndian.AppendUint64(dst, s.Deletes)
		dst = binary.BigEndian.AppendUint64(dst, s.Found)
		for _, v := range s.ShardRequests {
			dst = binary.BigEndian.AppendUint64(dst, v)
		}
	case TError:
		dst = append(dst, m.Value...)
	default:
		return dst[:len(dst)-body-lenWords], ErrType
	}
	return dst, nil
}

// Decode parses one frame body (everything after the length word) into m,
// reusing m's variable-length buffers. It is strict — every body must
// have exactly its advertised layout — and never panics on arbitrary
// input.
func (m *Msg) Decode(body []byte) error {
	// Zero the header first so a frame too short to carry one cannot
	// leave a previous decode's reqID behind (error replies would then
	// mis-correlate under pipelining).
	m.Type = 0
	m.ReqID = 0
	if len(body) > MaxFrame {
		return ErrOversize
	}
	if len(body) < headerLen {
		return ErrShort
	}
	m.Type = Type(body[0])
	m.ReqID = binary.BigEndian.Uint64(body[1:9])
	b := body[headerLen:]
	switch m.Type {
	case TInsert:
		if len(b) < idspace.Bytes+4 {
			return ErrShort
		}
		copy(m.Key[:], b)
		m.Origin = binary.BigEndian.Uint32(b[idspace.Bytes:])
		m.Value = append(m.Value[:0], b[idspace.Bytes+4:]...)
	case TLookup, TDelete:
		if len(b) != idspace.Bytes+4 {
			return sizeErr(len(b), idspace.Bytes+4)
		}
		copy(m.Key[:], b)
		m.Origin = binary.BigEndian.Uint32(b[idspace.Bytes:])
	case TStats:
		if len(b) != 0 {
			return ErrTrailing
		}
	case TInsertOK:
		if len(b) != 5*4 {
			return sizeErr(len(b), 5*4)
		}
		r := &m.Insert
		r.Replicas = binary.BigEndian.Uint32(b[0:])
		r.Messages = binary.BigEndian.Uint32(b[4:])
		r.Duplicates = binary.BigEndian.Uint32(b[8:])
		r.Flows = binary.BigEndian.Uint32(b[12:])
		r.Dropped = binary.BigEndian.Uint32(b[16:])
	case TLookupOK:
		if len(b) != 1+6*4 {
			return sizeErr(len(b), 1+6*4)
		}
		r := &m.Lookup
		switch b[0] {
		case 0:
			r.Found = false
		case 1:
			r.Found = true
		default:
			return ErrBool
		}
		r.FirstReplyHops = int32(binary.BigEndian.Uint32(b[1:]))
		r.Replies = binary.BigEndian.Uint32(b[5:])
		r.Messages = binary.BigEndian.Uint32(b[9:])
		r.Duplicates = binary.BigEndian.Uint32(b[13:])
		r.Flows = binary.BigEndian.Uint32(b[17:])
		r.Dropped = binary.BigEndian.Uint32(b[21:])
	case TDeleteOK:
		if len(b) != 4 {
			return sizeErr(len(b), 4)
		}
		m.Deleted = binary.BigEndian.Uint32(b)
	case TStatsOK:
		if len(b) < 4+4*8 {
			return ErrShort
		}
		s := &m.Stats
		s.Shards = binary.BigEndian.Uint32(b[0:])
		s.Inserts = binary.BigEndian.Uint64(b[4:])
		s.Lookups = binary.BigEndian.Uint64(b[12:])
		s.Deletes = binary.BigEndian.Uint64(b[20:])
		s.Found = binary.BigEndian.Uint64(b[28:])
		rest := b[36:]
		if uint64(len(rest)) != 8*uint64(s.Shards) {
			return ErrShards
		}
		s.ShardRequests = s.ShardRequests[:0]
		for len(rest) > 0 {
			s.ShardRequests = append(s.ShardRequests, binary.BigEndian.Uint64(rest))
			rest = rest[8:]
		}
	case TError:
		m.Value = append(m.Value[:0], b...)
	default:
		return ErrType
	}
	return nil
}

// sizeErr maps a wrong fixed-size body to the matching sentinel without
// allocating.
func sizeErr(got, want int) error {
	if got < want {
		return ErrShort
	}
	return ErrTrailing
}

// ReadFrame reads one complete frame body from r, growing and reusing
// *scratch as its buffer. The returned slice aliases *scratch and is only
// valid until the next call. A length prefix above MaxFrame is rejected
// before any payload allocation.
func ReadFrame(r io.Reader, scratch *[]byte) ([]byte, error) {
	buf := *scratch
	if cap(buf) < lenWords {
		buf = make([]byte, lenWords, 512)
		*scratch = buf
	}
	buf = buf[:cap(buf)]
	if _, err := io.ReadFull(r, buf[:lenWords]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(buf[:lenWords])
	if n > MaxFrame {
		return nil, ErrOversize
	}
	if int(n) > len(buf) {
		buf = make([]byte, n)
		*scratch = buf
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}
