// Package wire is discoveryd's binary wire protocol: a compact
// length-prefixed framing with fixed-layout bodies for the four request
// kinds (insert, lookup, delete, stats) and their responses.
//
// The codec follows the repository's zero-allocation buffer discipline:
// encoding appends to a caller-owned byte slice, decoding fills a reusable
// Msg whose variable-length fields recycle their backing arrays, and frame
// reading grows a caller-owned scratch buffer once and then reuses it.
// There is no reflection and no JSON on the hot path.
//
// # Framing
//
// Every message on the wire is one frame:
//
//	| u32 length | u8 type | u64 reqID | body |
//
// where length covers everything after the length word itself, all
// integers are big-endian, and length is at most MaxFrame. ReqID is an
// opaque request correlator chosen by the client; the server echoes it in
// the response, which is what makes request pipelining (and out-of-order
// completion across shards) possible over a single connection.
//
// # Bodies
//
//	TInsert:   key[20] | u32 origin | value...         (value = rest of frame)
//	TLookup:   key[20] | u32 origin
//	TDelete:   key[20] | u32 origin
//	TStats:    (empty)
//	TMembers:  (empty)
//	TInsertOK: u32 replicas | u32 messages | u32 duplicates | u32 flows | u32 dropped
//	TLookupOK: u8 found | u32 firstReplyHops (two's complement) | u32 replies |
//	           u32 messages | u32 duplicates | u32 flows | u32 dropped
//	TDeleteOK: u32 removed
//	TStatsOK:  u32 shards | u64 inserts | u64 lookups | u64 deletes |
//	           u64 found | shards x u64 perShardRequests
//	TMembersOK: u64 clusterHash | u32 replication | u32 count | count x (u16 len | addr)
//	TError:    text...                                 (UTF-8, rest of frame)
//
// TMembers/TMembersOK let a cluster-aware client learn the member list
// and its fingerprint from any node: the reply's addresses are the
// cluster's client-serving endpoints in region order (an empty address
// means that member's endpoint is not yet known), the hash is the
// membership fingerprint every routed request must echo, and
// replication is how many consecutive regions replicate each key
// (discovery.ReplicasOf) so clients can fail reads over to a co-replica.
//
// # Peer bodies
//
// Node-to-node traffic (internal/p2p) reuses the same framing and reqID
// correlation with its own type range. TRoute wraps one client request
// for the key's owning node; its response reuses the matching client
// response type (TInsertOK, TLookupOK, TDeleteOK, or TError), so a routed
// reply can be relayed to the originating client byte-for-byte.
//
// Every peer REQUEST carries the sender's cluster-membership hash:
// nodes configured with different member lists disagree about key
// ownership, so a receiver refuses mismatched requests outright instead
// of executing them under a conflicting view.
//
//	TPeerProbe:   u64 clusterHash | u32 sender | u16 len | clientAddr
//	TRoute:       u8 kind (TInsert|TLookup|TDelete) | u64 clusterHash | trace |
//	              key[20] | u32 origin | value...    (value only for insert kind)
//	TRepair:      u64 clusterHash | trace | u32 region | cursor
//	TTransfer:    u64 clusterHash | trace | u32 count | count x entry
//	TReplicate:   u8 kind (TInsert|TDelete) | u64 clusterHash | trace |
//	              key[20] | u32 origin | value...    (value only for insert kind)
//	TPeerProbeOK: u64 clusterHash | u32 responder | u64 heldReplicas |
//	              u16 len | clientAddr
//	TRepairOK:    u32 region | u8 more | cursor | u32 count | count x entry
//	TTransferOK:  u32 accepted
//	TReplicateOK: (empty)
//	TWrongView:   u64 clusterHash                    (the receiver's hash)
//
// TReplicate is the quorum-write fan-out: the coordinator of a mutation
// executes it locally and sends the same mutation to the key's other
// replicas, acking the client only once a quorum of them (itself
// included) has committed. Its body is TRoute-shaped — same hash, trace
// trailer, key, origin and value — but its kind is restricted to the
// mutations (lookups fail over instead of fanning out) and the receiver
// applies it locally without re-forwarding or re-replicating.
// TReplicateOK's empty body is the commit acknowledgement; a failure is
// a TError or TWrongView like any other peer request.
//
// Probes piggyback the sender's (and responder's) client-serving address
// so every node learns where its peers accept client connections without
// a separate exchange; TMembersOK republishes that table to clients. An
// empty address means "not advertised". TWrongView is the refusal a node
// sends a client whose TRoute carried a stale membership hash — it
// announces the receiver's own hash so the client knows a refresh is
// worthwhile, and it is deliberately distinct from TError so clients can
// tell "re-learn the cluster and retry" from a terminal failure.
//
// where trace = u8 tflags | [u64 traceID] is the optional trace-context
// trailer every peer REQUEST that executes work carries right after its
// cluster hash: tflags 0x00 means untraced (no ID follows), 0x01 means
// the request is sampled and the u64 trace ID follows, and any other
// flags value is rejected with ErrTrace (strict, canonical — there is
// exactly one encoding of "untraced"). The ID joins the spans a request
// leaves on every node it touches (internal/trace); responses carry no
// trailer because the reqID already correlates them to the request.
//
// where entry = u32 node | u32 origin | key[20] | u32 valueLen | value,
// and cursor = u32 shard | u32 node | key[20] — a resume position in the
// store's stable replica order. A TRepair's cursor is where the
// responder should start (zero = the beginning); a TRepairOK whose reply
// hit its byte budget sets more=1 and returns the cursor of the first
// entry it withheld, which the puller sends back verbatim to stream the
// next page. When more is 0 the cursor must be zero (strict, canonical).
//
// Decoding is strict: bodies must have exactly the advertised layout, and
// decoding arbitrary bytes never panics (fuzzed by FuzzDecode and
// FuzzPeerDecode).
package wire

import (
	"encoding/binary"
	"errors"
	"io"

	"discovery/internal/idspace"
	"discovery/internal/mpil"
)

// MaxFrame is the largest legal frame body (everything after the length
// word). It bounds both value payloads and the allocation a malicious
// length prefix can force on a reader.
const MaxFrame = 1 << 20

// MaxValue is the largest insert payload the serving layer accepts. It
// is derived from the most overhead-heavy frame a value must ever fit
// in, so that an insert accepted anywhere is forwardable (TRoute),
// transferable (a single-entry TTransfer) and repairable (a single-entry
// TRepairOK page) through every other cluster node — a limit derived
// from the bare TInsert frame would let boundary-size inserts succeed
// on the owner and then be unroutable or silently unrepairable. The
// worst wrapper is the single-entry TRepairOK page:
//
//	header 9 + region 4 + more 1 + cursor 28 + count 4 + entry 32 = 78
//
// (a traced TRoute or TReplicate needs 51 and a traced single-entry
// TTransfer 62.)
const MaxValue = MaxFrame - maxValueOverhead

// maxValueOverhead is the single-entry TRepairOK wrapper cost derived
// above, re-stated from the codec's own constants.
const maxValueOverhead = headerLen + 4 + 1 + cursorLen + 4 + EntryOverhead

// cursorLen is the encoded size of a RepairCursor.
const cursorLen = 4 + 4 + idspace.Bytes

// lenWords is the size of the frame length prefix.
const lenWords = 4

// headerLen is type byte + reqID, the fixed prefix of every frame body.
const headerLen = 1 + 8

// Type identifies a message kind. Requests have the high bit clear,
// responses have it set.
type Type uint8

// Message types.
const (
	TInsert  Type = 0x01
	TLookup  Type = 0x02
	TDelete  Type = 0x03
	TStats   Type = 0x04
	TMembers Type = 0x05

	TInsertOK  Type = 0x81
	TLookupOK  Type = 0x82
	TDeleteOK  Type = 0x83
	TStatsOK   Type = 0x84
	TMembersOK Type = 0x85
	TError     Type = 0xFF
)

// Peer (node-to-node) message types. 0x91 is deliberately unassigned:
// TRoute responses reuse the client response types so relays are
// byte-identical.
const (
	TPeerProbe Type = 0x10
	TRoute     Type = 0x11
	TRepair    Type = 0x12
	TTransfer  Type = 0x13
	TReplicate Type = 0x14

	TPeerProbeOK Type = 0x90
	TRepairOK    Type = 0x92
	TTransferOK  Type = 0x93
	TReplicateOK Type = 0x94
	TWrongView   Type = 0x95
)

// String implements fmt.Stringer for log lines.
func (t Type) String() string {
	switch t {
	case TInsert:
		return "insert"
	case TLookup:
		return "lookup"
	case TDelete:
		return "delete"
	case TStats:
		return "stats"
	case TMembers:
		return "members"
	case TInsertOK:
		return "insert-ok"
	case TLookupOK:
		return "lookup-ok"
	case TDeleteOK:
		return "delete-ok"
	case TStatsOK:
		return "stats-ok"
	case TMembersOK:
		return "members-ok"
	case TPeerProbe:
		return "peer-probe"
	case TRoute:
		return "route"
	case TRepair:
		return "repair"
	case TTransfer:
		return "transfer"
	case TReplicate:
		return "replicate"
	case TPeerProbeOK:
		return "peer-probe-ok"
	case TRepairOK:
		return "repair-ok"
	case TTransferOK:
		return "transfer-ok"
	case TReplicateOK:
		return "replicate-ok"
	case TWrongView:
		return "wrong-view"
	case TError:
		return "error"
	default:
		return "unknown"
	}
}

// IsRequest reports whether t is a client-to-server type.
func (t Type) IsRequest() bool { return t >= TInsert && t <= TMembers }

// IsPeerRequest reports whether t is a node-to-node request type.
func (t Type) IsPeerRequest() bool { return t >= TPeerProbe && t <= TReplicate }

// OriginAuto is the origin sentinel meaning "server picks the entry node"
// (derived deterministically from the key).
const OriginAuto = ^uint32(0)

// Decode errors. These are predeclared so the steady-state decode path
// allocates nothing even when rejecting garbage.
var (
	ErrShort    = errors.New("wire: frame body too short")
	ErrTrailing = errors.New("wire: trailing bytes after body")
	ErrOversize = errors.New("wire: frame exceeds MaxFrame")
	ErrType     = errors.New("wire: unknown message type")
	ErrBool     = errors.New("wire: boolean byte not 0 or 1")
	ErrShards   = errors.New("wire: stats shard count out of range")
	ErrRoute    = errors.New("wire: route kind must be insert, lookup or delete")
	ErrRepl     = errors.New("wire: replicate kind must be insert or delete")
	ErrEntries  = errors.New("wire: transfer entry count disagrees with body")
	ErrCursor   = errors.New("wire: repair cursor present without more flag")
	ErrMembers  = errors.New("wire: member list disagrees with body")
	ErrAddr     = errors.New("wire: address exceeds 65535 bytes")
	ErrTrace    = errors.New("wire: invalid trace trailer flags")
)

// InsertReply carries the insertion statistics of one request.
type InsertReply struct {
	Replicas   uint32
	Messages   uint32
	Duplicates uint32
	Flows      uint32
	Dropped    uint32
}

// LookupReply carries the lookup outcome of one request.
type LookupReply struct {
	Found          bool
	FirstReplyHops int32 // -1 when not found
	Replies        uint32
	Messages       uint32
	Duplicates     uint32
	Flows          uint32
	Dropped        uint32
}

// InsertReplyFrom converts the engine's insertion statistics to the
// wire reply. Shared by the client-serving path (internal/server) and
// the peer-routing path (internal/p2p) so the field mapping cannot
// drift between them.
func InsertReplyFrom(r mpil.InsertStats) InsertReply {
	return InsertReply{
		Replicas:   uint32(r.Replicas),
		Messages:   uint32(r.Messages),
		Duplicates: uint32(r.Duplicates),
		Flows:      uint32(r.Flows),
		Dropped:    uint32(r.Dropped),
	}
}

// LookupReplyFrom converts the engine's lookup statistics to the wire
// reply; see InsertReplyFrom.
func LookupReplyFrom(r mpil.LookupStats) LookupReply {
	return LookupReply{
		Found:          r.Found,
		FirstReplyHops: int32(r.FirstReplyHops),
		Replies:        uint32(r.Replies),
		Messages:       uint32(r.Messages),
		Duplicates:     uint32(r.Duplicates),
		Flows:          uint32(r.Flows),
		Dropped:        uint32(r.Dropped),
	}
}

// StatsReply is the daemon-wide counter snapshot.
type StatsReply struct {
	Shards  uint32
	Inserts uint64
	Lookups uint64
	Deletes uint64
	// Found counts lookups that located at least one replica.
	Found uint64
	// ShardRequests has one entry per shard: total requests executed
	// there. Reused across decodes; len == Shards after a successful
	// decode.
	ShardRequests []uint64
}

// TransferEntry is one replica carried by a TTransfer or TRepairOK body:
// a direct placement (engine node index + inserting origin) rather than a
// routed operation, so the receiver reproduces the sender's placement
// exactly. Decode allocates a fresh Value per entry — entries may be
// retained by the receiver's engine.
type TransferEntry struct {
	Node   uint32
	Origin uint32
	Key    idspace.ID
	Value  []byte
}

// EntryOverhead is a transfer entry's fixed wire cost — node, origin,
// key, and the value length word — exported so senders can budget entry
// batches against MaxFrame with the codec's own arithmetic.
const EntryOverhead = 4 + 4 + idspace.Bytes + 4

// RepairCursor is a resume position in a store's stable replica
// iteration order (shard, then engine node, then key, all ascending —
// discovery.ReplicaCursor's wire twin). The zero cursor means the start
// of the store. A TRepair carries where the responder should resume; a
// budget-limited TRepairOK carries where the next page begins.
type RepairCursor struct {
	Shard uint32
	Node  uint32
	Key   idspace.ID
}

// IsZero reports whether c is the start-of-store cursor.
func (c RepairCursor) IsZero() bool { return c == RepairCursor{} }

// entryHdrLen is EntryOverhead under its decode-side name.
const entryHdrLen = EntryOverhead

// Msg is one decoded message of any type. A single Msg is meant to be
// reused across a connection's lifetime: Decode refills it in place and
// Value/Stats.ShardRequests recycle their capacity.
type Msg struct {
	Type   Type
	ReqID  uint64
	Key    idspace.ID
	Origin uint32 // requests only; OriginAuto delegates the choice
	// Value is the insert payload (TInsert, TRoute) or error text
	// (TError).
	Value  []byte
	Insert InsertReply
	Lookup LookupReply
	// Deleted is the removed-replica count of a TDeleteOK.
	Deleted uint32
	Stats   StatsReply

	// Peer-message fields.

	// RouteKind is the wrapped request type of a TRoute (TInsert,
	// TLookup or TDelete) or a TReplicate (TInsert or TDelete).
	RouteKind Type
	// Cluster is the membership hash carried by probes, letting peers
	// refuse to serve a node configured with a different member list.
	// Origin doubles as the sender (TPeerProbe) / responder
	// (TPeerProbeOK) cluster index.
	Cluster uint64
	// Held is the responder's stored replica count (TPeerProbeOK).
	Held uint64
	// Region is the keyspace region a TRepair asks for, echoed by
	// TRepairOK.
	Region uint32
	// Cursor is the repair resume position: where a TRepair asks the
	// responder to start, and — when More is set on a TRepairOK — where
	// the next page begins. Must be zero on a TRepairOK without More.
	Cursor RepairCursor
	// More reports that a TRepairOK was cut by its byte budget and
	// Cursor resumes the remainder.
	More bool
	// Entries carries replicas (TTransfer, TRepairOK).
	Entries []TransferEntry
	// Accepted is how many transferred entries the receiver applied
	// (TTransferOK).
	Accepted uint32
	// ClientAddr is the sender's (TPeerProbe) or responder's
	// (TPeerProbeOK) client-serving address; empty means not advertised.
	// Reused across decodes like Value.
	ClientAddr []byte
	// Members is the cluster's client-serving address list in region
	// order (TMembersOK). Cluster carries the matching fingerprint.
	// Decoding allocates fresh strings — member lists are small and rare.
	Members []string
	// Replication is how many consecutive regions replicate each key
	// (TMembersOK); 1 means unreplicated.
	Replication uint32
	// Trace is the propagated trace ID of a sampled peer request
	// (TRoute, TRepair, TTransfer); meaningful only when Traced is set.
	Trace uint64
	// Traced reports that the peer request carries a trace ID, i.e. some
	// node sampled it and every hop should record spans under Trace.
	Traced bool
}

// ErrorText returns the error message of a TError response.
func (m *Msg) ErrorText() string { return string(m.Value) }

// bodyLen returns the body size of the message, excluding the frame
// length word but including the type/reqID header.
func (m *Msg) bodyLen() int {
	n := headerLen
	switch m.Type {
	case TInsert:
		n += idspace.Bytes + 4 + len(m.Value)
	case TLookup, TDelete:
		n += idspace.Bytes + 4
	case TStats, TMembers:
	case TInsertOK:
		n += 5 * 4
	case TLookupOK:
		n += 1 + 6*4
	case TDeleteOK:
		n += 4
	case TStatsOK:
		n += 4 + 4*8 + 8*len(m.Stats.ShardRequests)
	case TMembersOK:
		n += 8 + 4 + 4
		for _, a := range m.Members {
			n += 2 + len(a)
		}
	case TPeerProbe:
		n += 8 + 4 + 2 + len(m.ClientAddr)
	case TPeerProbeOK:
		n += 8 + 4 + 8 + 2 + len(m.ClientAddr)
	case TRoute:
		n += 1 + 8 + m.traceLen() + idspace.Bytes + 4
		if m.RouteKind == TInsert {
			n += len(m.Value)
		}
	case TRepair:
		n += 8 + m.traceLen() + 4 + cursorLen
	case TRepairOK:
		n += 4 + 1 + cursorLen + 4 + entriesLen(m.Entries)
	case TTransfer:
		n += 8 + m.traceLen() + 4 + entriesLen(m.Entries)
	case TTransferOK:
		n += 4
	case TReplicate:
		n += 1 + 8 + m.traceLen() + idspace.Bytes + 4
		if m.RouteKind == TInsert {
			n += len(m.Value)
		}
	case TReplicateOK:
	case TWrongView:
		n += 8
	case TError:
		n += len(m.Value)
	}
	return n
}

// traceLen is the encoded size of the trace trailer: the flags byte,
// plus the trace ID when the request is traced.
func (m *Msg) traceLen() int {
	if m.Traced {
		return 1 + 8
	}
	return 1
}

// entriesLen is the encoded size of a transfer entry list.
func entriesLen(entries []TransferEntry) int {
	n := 0
	for i := range entries {
		n += EntryOverhead + len(entries[i].Value)
	}
	return n
}

// Append encodes the message as one complete frame (length prefix
// included) appended to dst, returning the extended slice. With
// sufficient capacity in dst it performs no allocation. It returns
// ErrOversize when the body would exceed MaxFrame and ErrShards when a
// TStatsOK shard slice disagrees with its count.
func (m *Msg) Append(dst []byte) ([]byte, error) {
	body := m.bodyLen()
	if body > MaxFrame {
		return dst, ErrOversize
	}
	if m.Type == TStatsOK && int(m.Stats.Shards) != len(m.Stats.ShardRequests) {
		return dst, ErrShards
	}
	if m.Type == TRoute && m.RouteKind != TInsert && m.RouteKind != TLookup && m.RouteKind != TDelete {
		return dst, ErrRoute
	}
	if m.Type == TReplicate && m.RouteKind != TInsert && m.RouteKind != TDelete {
		return dst, ErrRepl
	}
	if m.Type == TRepairOK && !m.More && !m.Cursor.IsZero() {
		return dst, ErrCursor
	}
	if (m.Type == TPeerProbe || m.Type == TPeerProbeOK) && len(m.ClientAddr) > 0xFFFF {
		return dst, ErrAddr
	}
	if m.Type == TMembersOK {
		for _, a := range m.Members {
			if len(a) > 0xFFFF {
				return dst, ErrAddr
			}
		}
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(body))
	dst = append(dst, byte(m.Type))
	dst = binary.BigEndian.AppendUint64(dst, m.ReqID)
	switch m.Type {
	case TInsert:
		dst = append(dst, m.Key[:]...)
		dst = binary.BigEndian.AppendUint32(dst, m.Origin)
		dst = append(dst, m.Value...)
	case TLookup, TDelete:
		dst = append(dst, m.Key[:]...)
		dst = binary.BigEndian.AppendUint32(dst, m.Origin)
	case TStats, TMembers:
	case TInsertOK:
		r := &m.Insert
		dst = binary.BigEndian.AppendUint32(dst, r.Replicas)
		dst = binary.BigEndian.AppendUint32(dst, r.Messages)
		dst = binary.BigEndian.AppendUint32(dst, r.Duplicates)
		dst = binary.BigEndian.AppendUint32(dst, r.Flows)
		dst = binary.BigEndian.AppendUint32(dst, r.Dropped)
	case TLookupOK:
		r := &m.Lookup
		if r.Found {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(r.FirstReplyHops))
		dst = binary.BigEndian.AppendUint32(dst, r.Replies)
		dst = binary.BigEndian.AppendUint32(dst, r.Messages)
		dst = binary.BigEndian.AppendUint32(dst, r.Duplicates)
		dst = binary.BigEndian.AppendUint32(dst, r.Flows)
		dst = binary.BigEndian.AppendUint32(dst, r.Dropped)
	case TDeleteOK:
		dst = binary.BigEndian.AppendUint32(dst, m.Deleted)
	case TStatsOK:
		s := &m.Stats
		dst = binary.BigEndian.AppendUint32(dst, s.Shards)
		dst = binary.BigEndian.AppendUint64(dst, s.Inserts)
		dst = binary.BigEndian.AppendUint64(dst, s.Lookups)
		dst = binary.BigEndian.AppendUint64(dst, s.Deletes)
		dst = binary.BigEndian.AppendUint64(dst, s.Found)
		for _, v := range s.ShardRequests {
			dst = binary.BigEndian.AppendUint64(dst, v)
		}
	case TMembersOK:
		dst = binary.BigEndian.AppendUint64(dst, m.Cluster)
		dst = binary.BigEndian.AppendUint32(dst, m.Replication)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Members)))
		for _, a := range m.Members {
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(a)))
			dst = append(dst, a...)
		}
	case TPeerProbe:
		dst = binary.BigEndian.AppendUint64(dst, m.Cluster)
		dst = binary.BigEndian.AppendUint32(dst, m.Origin)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.ClientAddr)))
		dst = append(dst, m.ClientAddr...)
	case TPeerProbeOK:
		dst = binary.BigEndian.AppendUint64(dst, m.Cluster)
		dst = binary.BigEndian.AppendUint32(dst, m.Origin)
		dst = binary.BigEndian.AppendUint64(dst, m.Held)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(m.ClientAddr)))
		dst = append(dst, m.ClientAddr...)
	case TRoute:
		dst = append(dst, byte(m.RouteKind))
		dst = binary.BigEndian.AppendUint64(dst, m.Cluster)
		dst = m.appendTrace(dst)
		dst = append(dst, m.Key[:]...)
		dst = binary.BigEndian.AppendUint32(dst, m.Origin)
		if m.RouteKind == TInsert {
			dst = append(dst, m.Value...)
		}
	case TRepair:
		dst = binary.BigEndian.AppendUint64(dst, m.Cluster)
		dst = m.appendTrace(dst)
		dst = binary.BigEndian.AppendUint32(dst, m.Region)
		dst = appendCursor(dst, m.Cursor)
	case TRepairOK:
		dst = binary.BigEndian.AppendUint32(dst, m.Region)
		if m.More {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
		dst = appendCursor(dst, m.Cursor)
		dst = appendEntries(dst, m.Entries)
	case TTransfer:
		dst = binary.BigEndian.AppendUint64(dst, m.Cluster)
		dst = m.appendTrace(dst)
		dst = appendEntries(dst, m.Entries)
	case TTransferOK:
		dst = binary.BigEndian.AppendUint32(dst, m.Accepted)
	case TReplicate:
		dst = append(dst, byte(m.RouteKind))
		dst = binary.BigEndian.AppendUint64(dst, m.Cluster)
		dst = m.appendTrace(dst)
		dst = append(dst, m.Key[:]...)
		dst = binary.BigEndian.AppendUint32(dst, m.Origin)
		if m.RouteKind == TInsert {
			dst = append(dst, m.Value...)
		}
	case TReplicateOK:
	case TWrongView:
		dst = binary.BigEndian.AppendUint64(dst, m.Cluster)
	case TError:
		dst = append(dst, m.Value...)
	default:
		return dst[:len(dst)-body-lenWords], ErrType
	}
	return dst, nil
}

// appendTrace encodes the trace trailer onto dst: a lone 0x00 flags byte
// when untraced, 0x01 followed by the trace ID when traced.
func (m *Msg) appendTrace(dst []byte) []byte {
	if !m.Traced {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return binary.BigEndian.AppendUint64(dst, m.Trace)
}

// decodeTrace parses the trace trailer from the front of b, filling
// m.Traced/m.Trace, and returns what follows it. Flags other than 0x00
// and 0x01 are rejected so future trailer extensions cannot be silently
// misread.
func (m *Msg) decodeTrace(b []byte) ([]byte, error) {
	if len(b) < 1 {
		return nil, ErrShort
	}
	switch b[0] {
	case 0:
		m.Traced = false
		m.Trace = 0
		return b[1:], nil
	case 1:
		if len(b) < 1+8 {
			return nil, ErrShort
		}
		m.Traced = true
		m.Trace = binary.BigEndian.Uint64(b[1:])
		return b[9:], nil
	default:
		return nil, ErrTrace
	}
}

// appendCursor encodes a repair cursor onto dst.
func appendCursor(dst []byte, c RepairCursor) []byte {
	dst = binary.BigEndian.AppendUint32(dst, c.Shard)
	dst = binary.BigEndian.AppendUint32(dst, c.Node)
	return append(dst, c.Key[:]...)
}

// decodeCursor parses a repair cursor from the front of b.
func decodeCursor(b []byte) RepairCursor {
	var c RepairCursor
	c.Shard = binary.BigEndian.Uint32(b[0:])
	c.Node = binary.BigEndian.Uint32(b[4:])
	copy(c.Key[:], b[8:])
	return c
}

// appendEntries encodes a count-prefixed transfer entry list onto dst.
func appendEntries(dst []byte, entries []TransferEntry) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(entries)))
	for i := range entries {
		e := &entries[i]
		dst = binary.BigEndian.AppendUint32(dst, e.Node)
		dst = binary.BigEndian.AppendUint32(dst, e.Origin)
		dst = append(dst, e.Key[:]...)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(e.Value)))
		dst = append(dst, e.Value...)
	}
	return dst
}

// Decode parses one frame body (everything after the length word) into m,
// reusing m's variable-length buffers. It is strict — every body must
// have exactly its advertised layout — and never panics on arbitrary
// input.
func (m *Msg) Decode(body []byte) error {
	// Zero the header first so a frame too short to carry one cannot
	// leave a previous decode's reqID behind (error replies would then
	// mis-correlate under pipelining).
	m.Type = 0
	m.ReqID = 0
	if len(body) > MaxFrame {
		return ErrOversize
	}
	if len(body) < headerLen {
		return ErrShort
	}
	m.Type = Type(body[0])
	m.ReqID = binary.BigEndian.Uint64(body[1:9])
	b := body[headerLen:]
	switch m.Type {
	case TInsert:
		if len(b) < idspace.Bytes+4 {
			return ErrShort
		}
		copy(m.Key[:], b)
		m.Origin = binary.BigEndian.Uint32(b[idspace.Bytes:])
		m.Value = append(m.Value[:0], b[idspace.Bytes+4:]...)
	case TLookup, TDelete:
		if len(b) != idspace.Bytes+4 {
			return sizeErr(len(b), idspace.Bytes+4)
		}
		copy(m.Key[:], b)
		m.Origin = binary.BigEndian.Uint32(b[idspace.Bytes:])
	case TStats, TMembers:
		if len(b) != 0 {
			return ErrTrailing
		}
	case TInsertOK:
		if len(b) != 5*4 {
			return sizeErr(len(b), 5*4)
		}
		r := &m.Insert
		r.Replicas = binary.BigEndian.Uint32(b[0:])
		r.Messages = binary.BigEndian.Uint32(b[4:])
		r.Duplicates = binary.BigEndian.Uint32(b[8:])
		r.Flows = binary.BigEndian.Uint32(b[12:])
		r.Dropped = binary.BigEndian.Uint32(b[16:])
	case TLookupOK:
		if len(b) != 1+6*4 {
			return sizeErr(len(b), 1+6*4)
		}
		r := &m.Lookup
		switch b[0] {
		case 0:
			r.Found = false
		case 1:
			r.Found = true
		default:
			return ErrBool
		}
		r.FirstReplyHops = int32(binary.BigEndian.Uint32(b[1:]))
		r.Replies = binary.BigEndian.Uint32(b[5:])
		r.Messages = binary.BigEndian.Uint32(b[9:])
		r.Duplicates = binary.BigEndian.Uint32(b[13:])
		r.Flows = binary.BigEndian.Uint32(b[17:])
		r.Dropped = binary.BigEndian.Uint32(b[21:])
	case TDeleteOK:
		if len(b) != 4 {
			return sizeErr(len(b), 4)
		}
		m.Deleted = binary.BigEndian.Uint32(b)
	case TStatsOK:
		if len(b) < 4+4*8 {
			return ErrShort
		}
		s := &m.Stats
		s.Shards = binary.BigEndian.Uint32(b[0:])
		s.Inserts = binary.BigEndian.Uint64(b[4:])
		s.Lookups = binary.BigEndian.Uint64(b[12:])
		s.Deletes = binary.BigEndian.Uint64(b[20:])
		s.Found = binary.BigEndian.Uint64(b[28:])
		rest := b[36:]
		if uint64(len(rest)) != 8*uint64(s.Shards) {
			return ErrShards
		}
		s.ShardRequests = s.ShardRequests[:0]
		for len(rest) > 0 {
			s.ShardRequests = append(s.ShardRequests, binary.BigEndian.Uint64(rest))
			rest = rest[8:]
		}
	case TPeerProbe:
		if len(b) < 8+4+2 {
			return ErrShort
		}
		m.Cluster = binary.BigEndian.Uint64(b[0:])
		m.Origin = binary.BigEndian.Uint32(b[8:])
		alen := int(binary.BigEndian.Uint16(b[12:]))
		if len(b) != 8+4+2+alen {
			return sizeErr(len(b), 8+4+2+alen)
		}
		m.ClientAddr = append(m.ClientAddr[:0], b[14:]...)
	case TPeerProbeOK:
		if len(b) < 8+4+8+2 {
			return ErrShort
		}
		m.Cluster = binary.BigEndian.Uint64(b[0:])
		m.Origin = binary.BigEndian.Uint32(b[8:])
		m.Held = binary.BigEndian.Uint64(b[12:])
		alen := int(binary.BigEndian.Uint16(b[20:]))
		if len(b) != 8+4+8+2+alen {
			return sizeErr(len(b), 8+4+8+2+alen)
		}
		m.ClientAddr = append(m.ClientAddr[:0], b[22:]...)
	case TMembersOK:
		if len(b) < 8+4+4 {
			return ErrShort
		}
		m.Cluster = binary.BigEndian.Uint64(b[0:])
		m.Replication = binary.BigEndian.Uint32(b[8:])
		count := binary.BigEndian.Uint32(b[12:])
		rest := b[16:]
		// Each member costs at least its length word; the early check
		// keeps an adversarial count from forcing allocation.
		if uint64(count)*2 > uint64(len(rest)) {
			return ErrMembers
		}
		m.Members = m.Members[:0]
		for i := uint32(0); i < count; i++ {
			if len(rest) < 2 {
				return ErrMembers
			}
			alen := int(binary.BigEndian.Uint16(rest))
			rest = rest[2:]
			if alen > len(rest) {
				return ErrMembers
			}
			m.Members = append(m.Members, string(rest[:alen]))
			rest = rest[alen:]
		}
		if len(rest) != 0 {
			return ErrTrailing
		}
	case TRoute:
		if len(b) < 1+8 {
			return ErrShort
		}
		m.RouteKind = Type(b[0])
		m.Cluster = binary.BigEndian.Uint64(b[1:])
		rest, err := m.decodeTrace(b[9:])
		if err != nil {
			return err
		}
		if len(rest) < idspace.Bytes+4 {
			return ErrShort
		}
		copy(m.Key[:], rest)
		m.Origin = binary.BigEndian.Uint32(rest[idspace.Bytes:])
		rest = rest[idspace.Bytes+4:]
		switch m.RouteKind {
		case TInsert:
			m.Value = append(m.Value[:0], rest...)
		case TLookup, TDelete:
			if len(rest) != 0 {
				return ErrTrailing
			}
		default:
			return ErrRoute
		}
	case TRepair:
		if len(b) < 8 {
			return ErrShort
		}
		m.Cluster = binary.BigEndian.Uint64(b[0:])
		rest, err := m.decodeTrace(b[8:])
		if err != nil {
			return err
		}
		if len(rest) != 4+cursorLen {
			return sizeErr(len(rest), 4+cursorLen)
		}
		m.Region = binary.BigEndian.Uint32(rest[0:])
		m.Cursor = decodeCursor(rest[4:])
	case TRepairOK:
		if len(b) < 4+1+cursorLen {
			return ErrShort
		}
		m.Region = binary.BigEndian.Uint32(b)
		switch b[4] {
		case 0:
			m.More = false
		case 1:
			m.More = true
		default:
			return ErrBool
		}
		m.Cursor = decodeCursor(b[5:])
		if !m.More && !m.Cursor.IsZero() {
			return ErrCursor
		}
		if err := m.decodeEntries(b[5+cursorLen:]); err != nil {
			return err
		}
	case TTransfer:
		if len(b) < 8 {
			return ErrShort
		}
		m.Cluster = binary.BigEndian.Uint64(b[0:])
		rest, err := m.decodeTrace(b[8:])
		if err != nil {
			return err
		}
		if err := m.decodeEntries(rest); err != nil {
			return err
		}
	case TTransferOK:
		if len(b) != 4 {
			return sizeErr(len(b), 4)
		}
		m.Accepted = binary.BigEndian.Uint32(b)
	case TReplicate:
		if len(b) < 1+8 {
			return ErrShort
		}
		m.RouteKind = Type(b[0])
		m.Cluster = binary.BigEndian.Uint64(b[1:])
		rest, err := m.decodeTrace(b[9:])
		if err != nil {
			return err
		}
		if len(rest) < idspace.Bytes+4 {
			return ErrShort
		}
		copy(m.Key[:], rest)
		m.Origin = binary.BigEndian.Uint32(rest[idspace.Bytes:])
		rest = rest[idspace.Bytes+4:]
		switch m.RouteKind {
		case TInsert:
			m.Value = append(m.Value[:0], rest...)
		case TDelete:
			if len(rest) != 0 {
				return ErrTrailing
			}
		default:
			return ErrRepl
		}
	case TReplicateOK:
		if len(b) != 0 {
			return ErrTrailing
		}
	case TWrongView:
		if len(b) != 8 {
			return sizeErr(len(b), 8)
		}
		m.Cluster = binary.BigEndian.Uint64(b)
	case TError:
		m.Value = append(m.Value[:0], b...)
	default:
		return ErrType
	}
	return nil
}

// decodeEntries parses a count-prefixed transfer entry list into
// m.Entries. It is strict — the count must match the body exactly — and
// the early count-vs-size check keeps an adversarial count from forcing
// any allocation beyond the frame itself.
func (m *Msg) decodeEntries(b []byte) error {
	if len(b) < 4 {
		return ErrShort
	}
	count := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint64(count)*entryHdrLen > uint64(len(b)) {
		return ErrEntries
	}
	m.Entries = m.Entries[:0]
	for i := uint32(0); i < count; i++ {
		if len(b) < entryHdrLen {
			return ErrEntries
		}
		var e TransferEntry
		e.Node = binary.BigEndian.Uint32(b[0:])
		e.Origin = binary.BigEndian.Uint32(b[4:])
		copy(e.Key[:], b[8:])
		vlen := binary.BigEndian.Uint32(b[8+idspace.Bytes:])
		b = b[entryHdrLen:]
		if uint64(vlen) > uint64(len(b)) {
			return ErrEntries
		}
		if vlen > 0 {
			e.Value = append([]byte(nil), b[:vlen]...)
		}
		b = b[vlen:]
		m.Entries = append(m.Entries, e)
	}
	if len(b) != 0 {
		return ErrTrailing
	}
	return nil
}

// sizeErr maps a wrong fixed-size body to the matching sentinel without
// allocating.
func sizeErr(got, want int) error {
	if got < want {
		return ErrShort
	}
	return ErrTrailing
}

// ReadFrame reads one complete frame body from r, growing and reusing
// *scratch as its buffer. The returned slice aliases *scratch and is only
// valid until the next call. A length prefix above MaxFrame is rejected
// before any payload allocation.
func ReadFrame(r io.Reader, scratch *[]byte) ([]byte, error) {
	buf := *scratch
	if cap(buf) < lenWords {
		buf = make([]byte, lenWords, 512)
		*scratch = buf
	}
	buf = buf[:cap(buf)]
	if _, err := io.ReadFull(r, buf[:lenWords]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(buf[:lenWords])
	if n > MaxFrame {
		return nil, ErrOversize
	}
	if int(n) > len(buf) {
		buf = make([]byte, n)
		*scratch = buf
	}
	body := buf[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return body, nil
}
