package wire

import (
	"bytes"
	"testing"

	"discovery/internal/idspace"
)

// FuzzDecode feeds arbitrary bytes to Decode. Decoding must never panic,
// and anything Decode accepts must re-encode to the exact same frame
// (the codec is canonical: accepted bytes are a fixed point).
func FuzzDecode(f *testing.F) {
	for _, m := range sampleMsgs() {
		frame, err := m.Append(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[lenWords:])
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF})
	f.Fuzz(func(t *testing.T, body []byte) {
		var m Msg
		if err := m.Decode(body); err != nil {
			return
		}
		frame, err := m.Append(nil)
		if err != nil {
			t.Fatalf("decoded message fails to re-encode: %v", err)
		}
		if !bytes.Equal(frame[lenWords:], body) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", body, frame[lenWords:])
		}
		// Decoding into a dirty, previously-used Msg must agree with the
		// fresh decode (buffer reuse cannot leak prior state).
		reused := Msg{
			Value: append([]byte(nil), "stale-stale-stale"...),
			Stats: StatsReply{ShardRequests: []uint64{9, 9, 9, 9}},
		}
		if err := reused.Decode(body); err != nil {
			t.Fatalf("reused decode rejects what fresh decode accepted: %v", err)
		}
		frame2, err := reused.Append(nil)
		if err != nil {
			t.Fatalf("reused re-encode: %v", err)
		}
		if !bytes.Equal(frame, frame2) {
			t.Fatalf("reused decode diverges:\n fresh %x\n reuse %x", frame, frame2)
		}
	})
}

// FuzzPeerDecode feeds arbitrary bytes to Decode with peer-message frame
// seeds. Like FuzzDecode, anything accepted must be canonical: it must
// re-encode to the exact input bytes, from both a fresh and a dirty Msg.
func FuzzPeerDecode(f *testing.F) {
	for _, m := range sampleMsgs() {
		if !m.Type.IsPeerRequest() && m.Type != TPeerProbeOK && m.Type != TRepairOK && m.Type != TTransferOK && m.Type != TReplicateOK && m.Type != TWrongView {
			continue
		}
		frame, err := m.Append(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame[lenWords:])
	}
	f.Add([]byte{byte(TRoute)})
	f.Add([]byte{byte(TTransfer), 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, body []byte) {
		var m Msg
		if err := m.Decode(body); err != nil {
			return
		}
		frame, err := m.Append(nil)
		if err != nil {
			t.Fatalf("decoded message fails to re-encode: %v", err)
		}
		if !bytes.Equal(frame[lenWords:], body) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", body, frame[lenWords:])
		}
		reused := Msg{
			Value: append([]byte(nil), "stale-stale-stale"...),
			Entries: []TransferEntry{
				{Node: 9, Origin: 9, Value: []byte("stale")},
			},
		}
		if err := reused.Decode(body); err != nil {
			t.Fatalf("reused decode rejects what fresh decode accepted: %v", err)
		}
		frame2, err := reused.Append(nil)
		if err != nil {
			t.Fatalf("reused re-encode: %v", err)
		}
		if !bytes.Equal(frame, frame2) {
			t.Fatalf("reused decode diverges:\n fresh %x\n reuse %x", frame, frame2)
		}
	})
}

// FuzzPeerRoundTrip builds structured peer messages from fuzzed fields,
// encodes them, and requires decode to reproduce the message exactly.
func FuzzPeerRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint64(7), uint64(0xABCD), uint32(1), []byte("key"), []byte("value"), uint32(3), uint8(1), uint64(0))
	f.Add(uint8(2), uint64(1), uint64(0), uint32(0), []byte(""), []byte(""), uint32(0), uint8(2), uint64(0xFEEDFACE))
	f.Add(uint8(5), uint64(9), uint64(1), uint32(2), []byte("k2"), []byte("entry-payload"), uint32(7), uint8(3), uint64(1))
	f.Fuzz(func(t *testing.T, ty uint8, reqID, cluster uint64, origin uint32, keySrc, value []byte, region uint32, kind uint8, traceID uint64) {
		types := []Type{TPeerProbe, TRoute, TRepair, TTransfer, TReplicate, TPeerProbeOK, TRepairOK, TTransferOK, TReplicateOK, TWrongView}
		m := Msg{
			Type:      types[int(ty)%len(types)],
			ReqID:     reqID,
			Cluster:   cluster,
			Held:      cluster >> 1,
			Key:       idspace.FromBytes(keySrc),
			Origin:    origin,
			RouteKind: []Type{TInsert, TLookup, TDelete}[int(kind)%3],
			Region:    region,
			Accepted:  region,
			Value:     value,
		}
		// Replicated mutations carry no lookup kind; keep the built
		// message canonical so Append never rejects it.
		if m.Type == TReplicate {
			m.RouteKind = []Type{TInsert, TDelete}[int(kind)%2]
		}
		// Trace trailers ride only on the peer requests that execute work;
		// kind's high bit picks traced/untraced so both layouts are fuzzed.
		if m.Type == TRoute || m.Type == TRepair || m.Type == TTransfer || m.Type == TReplicate {
			if kind&0x80 != 0 {
				m.Traced = true
				m.Trace = traceID
			}
		}
		if m.Type == TPeerProbe || m.Type == TPeerProbeOK {
			addr := keySrc
			if len(addr) > 1024 {
				addr = addr[:1024]
			}
			m.ClientAddr = addr
		}
		if m.Type == TTransfer || m.Type == TRepairOK {
			for i := uint32(0); i < region%4; i++ {
				m.Entries = append(m.Entries, TransferEntry{
					Node:   origin + i,
					Origin: origin,
					Key:    idspace.FromBytes(append(keySrc, byte(i))),
					Value:  value,
				})
			}
		}
		// Cursor-bearing combinations, kept canonical: a TRepair may
		// carry any cursor; a TRepairOK carries one only with More set.
		if m.Type == TRepair {
			m.Cursor = RepairCursor{Shard: region % 8, Node: origin, Key: idspace.FromBytes(value)}
		}
		if m.Type == TRepairOK && kind%2 == 1 {
			m.More = true
			m.Cursor = RepairCursor{Shard: region % 8, Node: origin, Key: idspace.FromBytes(value)}
		}
		frame, err := m.Append(nil)
		if err != nil {
			if err == ErrOversize {
				return // oversize payloads are rejected by design
			}
			t.Fatalf("encode: %v", err)
		}
		var got Msg
		if err := got.Decode(frame[lenWords:]); err != nil {
			t.Fatalf("decode of own encoding failed: %v (frame %x)", err, frame)
		}
		again, err := got.Append(nil)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(frame, again) {
			t.Fatalf("round trip not stable:\n %x\n %x", frame, again)
		}
	})
}

// FuzzRoundTrip builds structured messages from fuzzed fields, encodes
// them, and requires decode to reproduce the message exactly.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint64(7), []byte("key-material"), uint32(3), []byte("value"), false, int32(-1), uint64(12))
	f.Add(uint8(4), uint64(0), []byte(""), uint32(0), []byte(""), true, int32(9), uint64(0))
	f.Add(uint8(0x84), uint64(1), []byte("k"), uint32(2), []byte("v"), true, int32(0), uint64(3))
	f.Fuzz(func(t *testing.T, ty uint8, reqID uint64, keySrc []byte, origin uint32, value []byte, found bool, hops int32, n uint64) {
		types := []Type{TInsert, TLookup, TDelete, TStats, TInsertOK, TLookupOK, TDeleteOK, TStatsOK, TError, TMembers, TMembersOK, TWrongView}
		m := Msg{
			Type:    types[int(ty)%len(types)],
			ReqID:   reqID,
			Key:     idspace.FromBytes(keySrc),
			Origin:  origin,
			Value:   value,
			Insert:  InsertReply{Replicas: uint32(n), Messages: origin, Flows: uint32(n >> 32)},
			Lookup:  LookupReply{Found: found, FirstReplyHops: hops, Replies: uint32(n)},
			Deleted: uint32(n),
		}
		if m.Type == TStatsOK {
			shards := int(n % 64)
			m.Stats = StatsReply{Shards: uint32(shards), Inserts: n, Lookups: reqID, Found: n / 2}
			for i := 0; i < shards; i++ {
				m.Stats.ShardRequests = append(m.Stats.ShardRequests, n+uint64(i))
			}
		}
		if m.Type == TMembersOK || m.Type == TWrongView {
			m.Cluster = n
		}
		if m.Type == TMembersOK {
			m.Replication = origin%8 + 1
			addr := value
			if len(addr) > 1024 {
				addr = addr[:1024]
			}
			for i := 0; i < int(n%5); i++ {
				m.Members = append(m.Members, string(addr))
			}
		}
		frame, err := m.Append(nil)
		if err != nil {
			if err == ErrOversize && len(value)+headerLen+idspace.Bytes+4 > MaxFrame {
				return // oversize payloads are rejected by design
			}
			t.Fatalf("encode: %v", err)
		}
		var got Msg
		if err := got.Decode(frame[lenWords:]); err != nil {
			t.Fatalf("decode of own encoding failed: %v (frame %x)", err, frame)
		}
		again, err := got.Append(nil)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(frame, again) {
			t.Fatalf("round trip not stable:\n %x\n %x", frame, again)
		}
	})
}
