package eventsim

import (
	"testing"
	"time"
)

func TestRunExecutesInTimeOrder(t *testing.T) {
	s := New(1)
	var order []int
	s.At(3*time.Second, func() { order = append(order, 3) })
	s.At(1*time.Second, func() { order = append(order, 1) })
	s.At(2*time.Second, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3*time.Second {
		t.Errorf("Now = %v, want 3s", s.Now())
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { order = append(order, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("FIFO violated at %d: order = %v", i, order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	s := New(1)
	var fired time.Duration
	s.At(5*time.Second, func() {
		s.After(2*time.Second, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 7*time.Second {
		t.Errorf("nested After fired at %v, want 7s", fired)
	}
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.At(time.Second, func() { fired = true })
	tm.Cancel()
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestCancelZeroValueSafe(t *testing.T) {
	var tm Timer
	tm.Cancel() // must not panic
	(&Timer{}).Cancel()
}

func TestCancelIdempotentAfterFire(t *testing.T) {
	s := New(1)
	count := 0
	tm := s.At(time.Second, func() { count++ })
	s.Run()
	tm.Cancel() // after firing: no-op
	s.Run()
	if count != 1 {
		t.Errorf("event fired %d times, want 1", count)
	}
}

func TestEveryRepeatsAndCancels(t *testing.T) {
	s := New(1)
	var times []time.Duration
	var tm Timer
	tm = s.Every(time.Second, 2*time.Second, func() {
		times = append(times, s.Now())
		if len(times) == 3 {
			tm.Cancel()
		}
	})
	s.RunUntil(time.Minute)
	if len(times) != 3 {
		t.Fatalf("Every fired %d times, want 3", len(times))
	}
	want := []time.Duration{time.Second, 3 * time.Second, 5 * time.Second}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fire times = %v, want %v", times, want)
		}
	}
}

func TestEveryCancelBetweenTicks(t *testing.T) {
	s := New(1)
	count := 0
	tm := s.Every(time.Second, time.Second, func() { count++ })
	s.RunUntil(2500 * time.Millisecond) // ticks at 1s, 2s
	tm.Cancel()
	s.RunUntil(10 * time.Second)
	if count != 2 {
		t.Errorf("ticks = %d, want 2", count)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		d := d
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(2 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2 (deadline-inclusive)", len(fired))
	}
	if s.Now() != 2*time.Second {
		t.Errorf("Now = %v, want 2s", s.Now())
	}
	s.Run()
	if len(fired) != 3 {
		t.Errorf("remaining event did not fire after deadline extension")
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New(1)
	s.RunUntil(time.Hour)
	if s.Now() != time.Hour {
		t.Errorf("idle RunUntil left clock at %v, want 1h", s.Now())
	}
}

func TestRunForRelative(t *testing.T) {
	s := New(1)
	s.RunUntil(10 * time.Second)
	fired := false
	s.After(5*time.Second, func() { fired = true })
	s.RunFor(5 * time.Second)
	if !fired {
		t.Error("event within RunFor window did not fire")
	}
	if s.Now() != 15*time.Second {
		t.Errorf("Now = %v, want 15s", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(10*time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(time.Second, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	s.After(-time.Second, func() {})
}

func TestDeterministicRNG(t *testing.T) {
	draw := func() []int64 {
		s := New(99)
		out := make([]int64, 5)
		for i := range out {
			out[i] = s.Rand().Int63()
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different streams")
		}
	}
}

func TestExecutedCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Second, func() {})
	}
	tm := s.After(100*time.Second, func() {})
	tm.Cancel()
	s.Run()
	if got := s.Executed(); got != 7 {
		t.Errorf("Executed = %d, want 7 (cancelled events don't count)", got)
	}
}

func TestHeavyInterleaving(t *testing.T) {
	// A stress shape: events scheduling more events, all interleaved.
	s := New(5)
	total := 0
	var spawn func(depth int)
	spawn = func(depth int) {
		total++
		if depth == 0 {
			return
		}
		for i := 0; i < 3; i++ {
			d := time.Duration(s.Rand().Intn(1000)) * time.Millisecond
			s.After(d, func() { spawn(depth - 1) })
		}
	}
	s.After(0, func() { spawn(6) })
	s.Run()
	want := (3*3*3*3*3*3*3 - 1) / 2 // geometric series 3^0+...+3^6
	if total != want {
		t.Errorf("executed %d spawns, want %d", total, want)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New(1)
		for j := 0; j < 1000; j++ {
			s.After(time.Duration(j%97)*time.Millisecond, func() {})
		}
		s.Run()
	}
}
