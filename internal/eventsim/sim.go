// Package eventsim provides the deterministic discrete-event simulator the
// rest of the reproduction runs on.
//
// The paper evaluates MPIL with two simulators: a message-level Python
// simulator for static overlays, and MSPastry's own packet simulator for
// the perturbation experiments. This package is the Go substitute for
// both: a single-threaded virtual-time scheduler with a deterministic
// seeded RNG, so every experiment in the repository is exactly
// reproducible from its seed.
package eventsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Sim is a discrete-event scheduler over a virtual clock. It is not safe
// for concurrent use; simulations are single-goroutine by design so that
// runs are bit-for-bit reproducible.
type Sim struct {
	now    time.Duration
	queue  eventQueue
	nextID uint64
	rng    *rand.Rand

	// events counts every executed event, a cheap progress/cost signal
	// for harnesses and tests.
	events uint64
}

// New returns a simulator whose RNG is seeded with seed. Virtual time
// starts at zero.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source. All
// randomness inside a simulation must come from here.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events executed so far.
func (s *Sim) Executed() uint64 { return s.events }

// Timer is a handle to a scheduled event; Cancel prevents a pending event
// from firing. For periodic timers created with Every, Cancel also stops
// future re-arming, and is safe to call from inside the tick function.
type Timer struct {
	ev      *event
	stopped *bool // non-nil only for periodic timers
}

// Cancel marks the timer's event as dead. Cancelling an already-fired or
// already-cancelled timer is a no-op. Cancel on a nil Timer is a no-op, so
// callers may unconditionally cancel optional timers.
func (t *Timer) Cancel() {
	if t == nil {
		return
	}
	if t.stopped != nil {
		*t.stopped = true
	}
	if t.ev != nil {
		t.ev.fn = nil
	}
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (before Now) is a programming error and panics, because it would
// silently corrupt causality in a simulation.
func (s *Sim) At(at time.Duration, fn func()) *Timer {
	if at < s.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", at, s.now))
	}
	ev := &event{at: at, seq: s.nextID, fn: fn}
	s.nextID++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run delay after the current virtual time.
func (s *Sim) After(delay time.Duration, fn func()) *Timer {
	if delay < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// Every schedules fn to run now+first, then repeatedly every period until
// the returned Timer is cancelled. It reproduces the periodic maintenance
// loops (leafset probing, routing-table probing) of MSPastry.
func (s *Sim) Every(first, period time.Duration, fn func()) *Timer {
	if period <= 0 {
		panic(fmt.Sprintf("eventsim: non-positive period %v", period))
	}
	stopped := false
	t := &Timer{stopped: &stopped}
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if stopped {
			// The caller cancelled from inside fn; do not re-arm.
			return
		}
		next := s.After(period, tick)
		t.ev = next.ev
	}
	first0 := s.After(first, tick)
	t.ev = first0.ev
	return t
}

// Run executes events in timestamp order until the queue is empty. Events
// with equal timestamps run in scheduling order (FIFO), which keeps runs
// deterministic.
func (s *Sim) Run() {
	for s.queue.Len() > 0 {
		s.step()
	}
}

// RunUntil executes events until virtual time would exceed deadline or the
// queue empties. Events scheduled exactly at the deadline still run. The
// clock is left at min(deadline, time of last executed event).
func (s *Sim) RunUntil(deadline time.Duration) {
	for s.queue.Len() > 0 && s.queue[0].at <= deadline {
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d from the current virtual time.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// Pending returns the number of events waiting in the queue, including
// cancelled ones that have not yet been discarded.
func (s *Sim) Pending() int { return s.queue.Len() }

func (s *Sim) step() {
	ev := heap.Pop(&s.queue).(*event)
	if ev.fn == nil { // cancelled
		return
	}
	s.now = ev.at
	fn := ev.fn
	ev.fn = nil
	s.events++
	fn()
}

// event is a queue entry. fn == nil marks a cancelled event.
type event struct {
	at  time.Duration
	seq uint64
	fn  func()
	idx int
}

// eventQueue is a min-heap on (at, seq).
type eventQueue []*event

var _ heap.Interface = (*eventQueue)(nil)

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}

func (q *eventQueue) Push(x interface{}) {
	ev := x.(*event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
