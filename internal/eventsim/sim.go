// Package eventsim provides the deterministic discrete-event simulator the
// rest of the reproduction runs on.
//
// The paper evaluates MPIL with two simulators: a message-level Python
// simulator for static overlays, and MSPastry's own packet simulator for
// the perturbation experiments. This package is the Go substitute for
// both: a single-threaded virtual-time scheduler with a deterministic
// seeded RNG, so every experiment in the repository is exactly
// reproducible from its seed.
//
// The scheduler is built for the hot path: an index-based 4-ary min-heap
// over a flat slice of value entries (no per-event boxing, no interface
// dispatch, no write barriers during sift), with callback state held in a
// free-listed slot arena. Scheduling a timer performs zero heap
// allocations in steady state, and Timer handles are small values rather
// than pointers into the queue.
package eventsim

import (
	"fmt"
	"math/rand"
	"time"
)

// Sim is a discrete-event scheduler over a virtual clock. It is not safe
// for concurrent use; simulations are single-goroutine by design so that
// runs are bit-for-bit reproducible.
type Sim struct {
	now    time.Duration
	heap   []heapEnt // 4-ary min-heap on (at, seq)
	slots  []slot    // stable callback storage; heap entries index into it
	free   int32     // head of the slot free list, -1 when empty
	live   int       // heap entries that will still fire
	dead   int       // cancelled heap entries awaiting pop or compaction
	nextID uint64
	rng    *rand.Rand

	// events counts every executed event, a cheap progress/cost signal
	// for harnesses and tests.
	events uint64
}

// heapEnt is one queue position: the priority key plus the index of the
// slot holding the callback. Entries are plain values, so sifting moves 24
// bytes with no pointer writes.
type heapEnt struct {
	at   time.Duration
	seq  uint64
	slot int32
}

// slot holds a scheduled callback. A slot is referenced by at most one
// heap entry at a time (periodic timers re-arm only after their entry has
// been popped), so entry->slot links never dangle. gen increments every
// time a slot is returned to the free list, invalidating stale Timer
// handles.
type slot struct {
	fn     func()       // set for At/After/Every events
	fnArg  func(uint64) // set for AtCall/AfterCall events
	arg    uint64
	period time.Duration // >0 marks a periodic (Every) timer
	gen    uint32
	next   int32 // free-list link
}

// armed reports whether the slot still has a callback to run.
func (sl *slot) armed() bool { return sl.fn != nil || sl.fnArg != nil }

// New returns a simulator whose RNG is seeded with seed. Virtual time
// starts at zero.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed)), free: -1}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source. All
// randomness inside a simulation must come from here.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events executed so far.
func (s *Sim) Executed() uint64 { return s.events }

// Timer is a value handle to a scheduled event; Cancel prevents a pending
// event from firing. For periodic timers created with Every, Cancel also
// stops future re-arming, and is safe to call from inside the tick
// function. The zero Timer is valid and cancels nothing, so callers may
// unconditionally cancel optional timers.
type Timer struct {
	s    *Sim
	slot int32
	gen  uint32
}

// Cancel marks the timer's event as dead. Cancelling an already-fired or
// already-cancelled timer is a no-op (the handle's generation no longer
// matches its slot). Cancellation is lazy: the event's queue entry stays
// in the heap as a corpse until it is popped, or until corpses outnumber
// live events, at which point the queue compacts them away in one pass —
// so mass cancellations (flapping churn tearing down maintenance timers)
// cost amortized O(1) each and never accumulate in Pending().
func (t Timer) Cancel() {
	if t.s == nil {
		return
	}
	t.s.cancel(t.slot, t.gen)
}

func (s *Sim) cancel(idx int32, gen uint32) {
	sl := &s.slots[idx]
	if sl.gen != gen || !sl.armed() {
		return
	}
	sl.fn = nil
	sl.fnArg = nil
	// A periodic timer cancelled from inside its own tick has no heap
	// entry right now; step() sees the nil fn and skips the re-arm. Every
	// other live slot has exactly one pending entry, which just died.
	if !sl.running() {
		s.live--
		s.dead++
		if s.dead > s.live && s.dead >= 64 {
			s.compact()
		}
	}
}

// running reports whether the slot's callback is mid-execution (its heap
// entry popped, fn not yet returned). Encoded as a negative period set by
// step() around periodic fires; one-shot slots are freed before their fn
// runs, so they are never observed in this state.
func (sl *slot) running() bool { return sl.period < 0 }

// alloc pops a free slot (or grows the arena) and arms it with fn.
func (s *Sim) alloc(fn func(), period time.Duration) int32 {
	if s.free >= 0 {
		idx := s.free
		sl := &s.slots[idx]
		s.free = sl.next
		sl.fn = fn
		sl.period = period
		return idx
	}
	s.slots = append(s.slots, slot{fn: fn, period: period})
	return int32(len(s.slots) - 1)
}

// release returns a slot to the free list, bumping its generation so
// outstanding Timer handles become inert.
func (s *Sim) release(idx int32) {
	sl := &s.slots[idx]
	sl.fn = nil
	sl.fnArg = nil
	sl.arg = 0
	sl.period = 0
	sl.gen++
	sl.next = s.free
	s.free = idx
}

// At schedules fn to run at absolute virtual time at. Scheduling in the
// past (before Now) is a programming error and panics, because it would
// silently corrupt causality in a simulation.
func (s *Sim) At(at time.Duration, fn func()) Timer {
	if at < s.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", at, s.now))
	}
	idx := s.alloc(fn, 0)
	s.push(at, idx)
	s.live++
	return Timer{s: s, slot: idx, gen: s.slots[idx].gen}
}

// After schedules fn to run delay after the current virtual time.
func (s *Sim) After(delay time.Duration, fn func()) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", delay))
	}
	return s.At(s.now+delay, fn)
}

// AtCall schedules fn(arg) to run at absolute virtual time at. Unlike At,
// it stays allocation-free even for parameterized callbacks: fn is
// typically a long-lived method value and arg an index into caller-owned
// storage, so no per-event closure needs to be minted.
func (s *Sim) AtCall(at time.Duration, fn func(uint64), arg uint64) Timer {
	if at < s.now {
		panic(fmt.Sprintf("eventsim: scheduling at %v before now %v", at, s.now))
	}
	idx := s.alloc(nil, 0)
	sl := &s.slots[idx]
	sl.fnArg = fn
	sl.arg = arg
	s.push(at, idx)
	s.live++
	return Timer{s: s, slot: idx, gen: sl.gen}
}

// AfterCall schedules fn(arg) to run delay after the current virtual time.
func (s *Sim) AfterCall(delay time.Duration, fn func(uint64), arg uint64) Timer {
	if delay < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", delay))
	}
	return s.AtCall(s.now+delay, fn, arg)
}

// Every schedules fn to run now+first, then repeatedly every period until
// the returned Timer is cancelled. It reproduces the periodic maintenance
// loops (leafset probing, routing-table probing) of MSPastry.
func (s *Sim) Every(first, period time.Duration, fn func()) Timer {
	if period <= 0 {
		panic(fmt.Sprintf("eventsim: non-positive period %v", period))
	}
	if first < 0 {
		panic(fmt.Sprintf("eventsim: negative delay %v", first))
	}
	idx := s.alloc(fn, period)
	s.push(s.now+first, idx)
	s.live++
	return Timer{s: s, slot: idx, gen: s.slots[idx].gen}
}

// Run executes events in timestamp order until the queue is empty. Events
// with equal timestamps run in scheduling order (FIFO), which keeps runs
// deterministic.
func (s *Sim) Run() {
	for len(s.heap) > 0 {
		s.step()
	}
}

// RunUntil executes events until virtual time would exceed deadline or the
// queue empties. Events scheduled exactly at the deadline still run. The
// clock is left at min(deadline, time of last executed event).
func (s *Sim) RunUntil(deadline time.Duration) {
	for len(s.heap) > 0 && s.heap[0].at <= deadline {
		s.step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// RunFor advances the simulation by d from the current virtual time.
func (s *Sim) RunFor(d time.Duration) { s.RunUntil(s.now + d) }

// Pending returns the number of live (non-cancelled) events waiting in
// the queue. Cancelled corpses awaiting compaction are not counted.
func (s *Sim) Pending() int { return s.live }

func (s *Sim) step() {
	ent := s.pop()
	idx := ent.slot
	sl := &s.slots[idx]
	if !sl.armed() { // cancelled; discard without advancing the clock
		s.dead--
		s.release(idx)
		return
	}
	s.now = ent.at
	s.live--
	s.events++
	if period := sl.period; period > 0 {
		// Periodic: run the tick with the slot marked running so a
		// Cancel from inside fn suppresses the re-arm, then re-arm into
		// the same slot. Re-arming after fn returns preserves the seed
		// scheduler's seq ordering: events scheduled by the tick body
		// come before the next tick at equal timestamps.
		sl.period = -period
		fn := sl.fn
		fn()
		sl = &s.slots[idx] // fn may have grown the arena
		if sl.fn == nil {
			s.release(idx)
			return
		}
		sl.period = period
		s.push(s.now+period, idx)
		s.live++
		return
	}
	// One-shot: free the slot before running so Cancel-after-fire is a
	// generation mismatch, exactly the old "already fired" no-op.
	fn, fnArg, arg := sl.fn, sl.fnArg, sl.arg
	s.release(idx)
	if fn != nil {
		fn()
		return
	}
	fnArg(arg)
}

// compact removes every cancelled corpse from the heap in one pass and
// restores the heap property. Pop order is fully determined by the
// (at, seq) total order, so compaction is invisible to execution.
func (s *Sim) compact() {
	h := s.heap
	w := 0
	for _, ent := range h {
		if !s.slots[ent.slot].armed() {
			s.release(ent.slot)
			continue
		}
		h[w] = ent
		w++
	}
	s.heap = h[:w]
	s.dead = 0
	if w > 1 {
		for i := (w - 2) / 4; i >= 0; i-- {
			s.siftDown(i)
		}
	}
}

// --- 4-ary min-heap on (at, seq) over flat value entries ---

func entLess(a, b heapEnt) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (s *Sim) push(at time.Duration, idx int32) {
	s.heap = append(s.heap, heapEnt{at: at, seq: s.nextID, slot: idx})
	s.nextID++
	s.siftUp(len(s.heap) - 1)
}

func (s *Sim) pop() heapEnt {
	h := s.heap
	top := h[0]
	n := len(h) - 1
	if n > 0 {
		h[0] = h[n]
	}
	s.heap = h[:n]
	if n > 1 {
		s.siftDown(0)
	}
	return top
}

func (s *Sim) siftUp(i int) {
	h := s.heap
	ent := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !entLess(ent, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ent
}

func (s *Sim) siftDown(i int) {
	h := s.heap
	n := len(h)
	ent := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entLess(h[c], h[min]) {
				min = c
			}
		}
		if !entLess(h[min], ent) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = ent
}
