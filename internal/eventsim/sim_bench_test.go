package eventsim

import (
	"testing"
	"time"
)

// TestScheduleZeroAlloc asserts the headline property of the rebuilt
// scheduler: once the heap and slot arena have reached steady-state
// capacity, scheduling (and cancelling) timers allocates nothing.
func TestScheduleZeroAlloc(t *testing.T) {
	s := New(1)
	fn := func() {}
	// Warm the arena and the heap backing array.
	for i := 0; i < 1024; i++ {
		s.After(time.Duration(i)*time.Millisecond, fn)
	}
	s.Run()

	allocs := testing.AllocsPerRun(1000, func() {
		tm := s.After(time.Millisecond, fn)
		tm.Cancel()
		s.RunFor(2 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("schedule+cancel+run allocated %v objects per op, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(1000, func() {
		s.After(time.Millisecond, fn)
		s.RunFor(2 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("schedule+fire allocated %v objects per op, want 0", allocs)
	}
}

func TestAfterCallZeroAlloc(t *testing.T) {
	s := New(1)
	fn := func(uint64) {}
	for i := 0; i < 1024; i++ {
		s.AfterCall(time.Duration(i)*time.Millisecond, fn, uint64(i))
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.AfterCall(time.Millisecond, fn, 7)
		s.RunFor(2 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("AfterCall+fire allocated %v objects per op, want 0", allocs)
	}
}

func TestAfterCallDeliversArg(t *testing.T) {
	s := New(1)
	var got []uint64
	fn := func(a uint64) { got = append(got, a) }
	s.AfterCall(2*time.Second, fn, 2)
	s.AfterCall(1*time.Second, fn, 1)
	tm := s.AfterCall(3*time.Second, fn, 3)
	tm.Cancel()
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("AfterCall delivered %v, want [1 2]", got)
	}
	if s.Executed() != 2 {
		t.Errorf("Executed = %d, want 2", s.Executed())
	}
}

// TestPendingCountsLiveOnly pins the fixed Pending() semantics: cancelled
// events no longer inflate the count.
func TestPendingCountsLiveOnly(t *testing.T) {
	s := New(1)
	var timers []Timer
	for i := 0; i < 10; i++ {
		timers = append(timers, s.After(time.Duration(i+1)*time.Second, func() {}))
	}
	if s.Pending() != 10 {
		t.Fatalf("Pending = %d, want 10", s.Pending())
	}
	for _, tm := range timers[:4] {
		tm.Cancel()
	}
	if s.Pending() != 6 {
		t.Errorf("Pending after 4 cancels = %d, want 6", s.Pending())
	}
	s.Run()
	if s.Pending() != 0 {
		t.Errorf("Pending after Run = %d, want 0", s.Pending())
	}
	if s.Executed() != 6 {
		t.Errorf("Executed = %d, want 6", s.Executed())
	}
}

// TestMassCancelCompaction drives the corpse-compaction path: cancelling
// far more events than remain live must shrink the queue and leave
// execution order untouched.
func TestMassCancelCompaction(t *testing.T) {
	s := New(1)
	var fired []int
	var cancels []Timer
	for i := 0; i < 2000; i++ {
		i := i
		tm := s.After(time.Duration(i+1)*time.Millisecond, func() { fired = append(fired, i) })
		if i%10 != 0 {
			cancels = append(cancels, tm)
		}
	}
	for _, tm := range cancels {
		tm.Cancel()
	}
	if got := s.Pending(); got != 200 {
		t.Fatalf("Pending after mass cancel = %d, want 200", got)
	}
	// Compaction must have culled corpses well below the cancel count.
	if got := len(s.heap); got > 400 {
		t.Errorf("heap holds %d entries after mass cancel, want compaction below 400", got)
	}
	s.Run()
	if len(fired) != 200 {
		t.Fatalf("fired %d events, want 200", len(fired))
	}
	for k, v := range fired {
		if v != k*10 {
			t.Fatalf("fired[%d] = %d, want %d (order broken)", k, v, k*10)
		}
	}
}

// TestCancelStaleHandleAfterReuse checks generation tagging: a handle to a
// fired timer must not cancel an unrelated timer that reuses its slot.
func TestCancelStaleHandleAfterReuse(t *testing.T) {
	s := New(1)
	stale := s.After(time.Millisecond, func() {})
	s.Run() // fires; slot returns to the free list
	fired := false
	s.After(time.Millisecond, func() { fired = true }) // reuses the slot
	stale.Cancel()                                     // must be a no-op
	s.Run()
	if !fired {
		t.Error("stale Cancel killed an unrelated timer that reused its slot")
	}
}

func BenchmarkSchedule(b *testing.B) {
	s := New(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(i%97)*time.Millisecond, fn)
		if s.Pending() >= 4096 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkScheduleAndRunLarge stresses heap depth: a rolling window of
// 64k pending events.
func BenchmarkScheduleAndRunLarge(b *testing.B) {
	s := New(1)
	fn := func() {}
	for i := 0; i < 1<<16; i++ {
		s.After(time.Duration(i)*time.Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(1<<16+i)*time.Microsecond, fn)
		s.RunFor(time.Microsecond)
	}
}

// BenchmarkCancelHeavy mimics flapping churn: schedule a batch, cancel
// most of it, run the rest.
func BenchmarkCancelHeavy(b *testing.B) {
	s := New(1)
	fn := func() {}
	timers := make([]Timer, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		timers = timers[:0]
		for j := 0; j < 1024; j++ {
			timers = append(timers, s.After(time.Duration(j)*time.Millisecond, fn))
		}
		for j, tm := range timers {
			if j%8 != 0 {
				tm.Cancel()
			}
		}
		s.Run()
	}
}

func BenchmarkEvery(b *testing.B) {
	s := New(1)
	ticks := 0
	tm := s.Every(time.Millisecond, time.Millisecond, func() { ticks++ })
	defer tm.Cancel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunFor(time.Millisecond)
	}
}
