package pastry

import (
	"discovery/internal/idspace"
)

// node is one Pastry participant's local state. All state mutation goes
// through the Network, which owns timing and message delivery; nodes never
// touch each other's fields directly (the simulator is monolithic, but the
// protocol logic respects message boundaries so its behavior matches a
// distributed deployment).
type node struct {
	idx int
	id  idspace.ID

	// left holds ring predecessors ordered by increasing counter-
	// clockwise distance; right holds successors ordered by increasing
	// clockwise distance. Each side is capped at LeafSize/2.
	left  []int
	right []int

	// rt is the routing table: rt[row][col] is a node index whose ID
	// shares exactly `row` leading digits with ours and has digit value
	// `col` at position `row`; -1 marks an empty cell.
	rt [][]int

	// store holds object pointers this node is responsible for.
	store map[idspace.ID][]byte

	// probeCursor round-robins leaf-set probing; rtProbeRow/Col
	// round-robin routing-table probing.
	probeCursor int
	rtProbeRow  int
	rtProbeCol  int

	// seen deduplicates application messages by UID so retransmitted
	// copies are re-acked but not re-forwarded.
	seen map[uint64]bool
}

func newNode(idx int, id idspace.ID, rows, cols int) *node {
	n := &node{
		idx:   idx,
		id:    id,
		rt:    make([][]int, rows),
		store: make(map[idspace.ID][]byte),
		seen:  make(map[uint64]bool),
	}
	for r := range n.rt {
		n.rt[r] = make([]int, cols)
		for c := range n.rt[r] {
			n.rt[r][c] = -1
		}
	}
	return n
}

// leafMembers returns every node index in the leaf set.
func (n *node) leafMembers() []int {
	out := make([]int, 0, len(n.left)+len(n.right))
	out = append(out, n.left...)
	out = append(out, n.right...)
	return out
}

// inLeafset reports whether idx is currently a leaf-set member.
func (n *node) inLeafset(idx int) bool {
	for _, v := range n.left {
		if v == idx {
			return true
		}
	}
	for _, v := range n.right {
		if v == idx {
			return true
		}
	}
	return false
}

// network-level helpers that need ID access live on Network; the methods
// below are pure list surgery.

// removeLeaf deletes idx from whichever side holds it, preserving order,
// and reports whether it was present.
func (n *node) removeLeaf(idx int) bool {
	if removeOrdered(&n.left, idx) {
		return true
	}
	return removeOrdered(&n.right, idx)
}

func removeOrdered(list *[]int, v int) bool {
	l := *list
	for i, w := range l {
		if w == v {
			*list = append(l[:i], l[i+1:]...)
			return true
		}
	}
	return false
}

// removeRT clears every routing-table cell pointing at idx and reports
// whether any did.
func (n *node) removeRT(idx int) bool {
	found := false
	for r := range n.rt {
		for c := range n.rt[r] {
			if n.rt[r][c] == idx {
				n.rt[r][c] = -1
				found = true
			}
		}
	}
	return found
}
