package pastry

import (
	"time"
)

// StartMaintenance launches every node's periodic maintenance loops: leaf-
// set probing (LeafsetProbePeriod), routing-table probing (RTProbePeriod),
// and the slow routing-table sweep (RTMaintPeriod). Initial phases are
// jittered per node so the network doesn't probe in lockstep. Call
// StopMaintenance to cancel.
func (nw *Network) StartMaintenance() {
	if len(nw.maintTimers) > 0 {
		return // already running
	}
	for i := range nw.nodes {
		i := i
		jitter := func(p time.Duration) time.Duration {
			return time.Duration(nw.rng.Int63n(int64(p)))
		}
		nw.maintTimers = append(nw.maintTimers,
			nw.sim.Every(jitter(nw.params.LeafsetProbePeriod), nw.params.LeafsetProbePeriod, func() {
				nw.leafsetProbeTick(i)
			}),
			nw.sim.Every(jitter(nw.params.RTProbePeriod), nw.params.RTProbePeriod, func() {
				nw.rtProbeTick(i)
			}),
			nw.sim.Every(jitter(nw.params.RTMaintPeriod), nw.params.RTMaintPeriod, func() {
				nw.rtMaintTick(i)
			}),
		)
	}
}

// StopMaintenance cancels all maintenance loops.
func (nw *Network) StopMaintenance() {
	for _, t := range nw.maintTimers {
		t.Cancel()
	}
	nw.maintTimers = nil
}

// MaintenanceRunning reports whether maintenance loops are active.
func (nw *Network) MaintenanceRunning() bool { return len(nw.maintTimers) > 0 }

// leafsetProbeTick probes the next leaf-set member in round-robin order.
// MSPastry coalesces its liveness traffic to roughly one probe per node
// per period, which is what keeps its background load modest (Figure 12).
func (nw *Network) leafsetProbeTick(i int) {
	if !nw.Online(i) {
		return // perturbed nodes are unresponsive and originate nothing
	}
	nd := nw.nodes[i]
	members := nw.leafMembersScratch(nd)
	if len(members) == 0 {
		// Totally depleted leaf set: fall back to any routing-table
		// entry to rejoin the ring neighborhood.
		for _, row := range nd.rt {
			for _, v := range row {
				if v != -1 {
					members = append(members, v)
				}
			}
			if len(members) > 0 {
				break
			}
		}
		if len(members) == 0 {
			return
		}
	}
	target := members[nd.probeCursor%len(members)]
	nd.probeCursor++
	nw.probe(i, target, actionNone, actionEvict)
}

// rtProbeTick probes the next occupied routing-table cell in scan order.
func (nw *Network) rtProbeTick(i int) {
	if !nw.Online(i) {
		return
	}
	nd := nw.nodes[i]
	rows, cols := len(nd.rt), len(nd.rt[0])
	for scanned := 0; scanned < rows*cols; scanned++ {
		r, c := nd.rtProbeRow, nd.rtProbeCol
		nd.rtProbeCol++
		if nd.rtProbeCol == cols {
			nd.rtProbeCol = 0
			nd.rtProbeRow = (nd.rtProbeRow + 1) % rows
		}
		if target := nd.rt[r][c]; target != -1 {
			nw.probe(i, target, actionNone, actionEvict)
			return
		}
	}
}

// rtMaintTick is the slow sweep: ask a random leaf-set member for a random
// routing-table row and merge whatever comes back.
func (nw *Network) rtMaintTick(i int) {
	if !nw.Online(i) {
		return
	}
	nd := nw.nodes[i]
	members := nw.leafMembersScratch(nd)
	if len(members) == 0 {
		return
	}
	target := members[nw.rng.Intn(len(members))]
	row := nw.rng.Intn(len(nd.rt))
	// The target answers with its row's entries (wireRowReq builds the
	// response when the request arrives, so the entries reflect the
	// target's state at that instant, as a real exchange would).
	widx := nw.allocWire()
	w := &nw.wires[widx]
	w.kind, w.from, w.to, w.aux = wireRowReq, int32(i), int32(target), int32(row)
	nw.dispatch(ClassMaint, widx)
}

// allocProbe pops a free probe record or grows the arena.
func (nw *Network) allocProbe() int32 {
	if nw.probeFree >= 0 {
		idx := nw.probeFree
		nw.probeFree = nw.probes[idx].next
		return idx
	}
	nw.probes = append(nw.probes, probeRec{})
	return int32(len(nw.probes) - 1)
}

// freeProbe retires a resolved probe record, bumping its generation so
// any straggling reply wire is ignored.
func (nw *Network) freeProbe(idx int32) {
	rec := &nw.probes[idx]
	rec.gen++
	rec.next = nw.probeFree
	nw.probeFree = idx
}

// probe starts a liveness probe with the paper's timeout/retry discipline
// (3 s, 2 retries). The whole exchange — probe out, reply back, timeout,
// retries — runs through pooled records and allocates nothing in steady
// state. onAlive runs when a reply arrives; onDead runs when the final
// attempt times out unanswered.
func (nw *Network) probe(from, to int, onAlive, onDead probeAction) {
	idx := nw.allocProbe()
	rec := &nw.probes[idx]
	rec.from, rec.to, rec.attempt, rec.answered = int32(from), int32(to), 0, false
	rec.onAlive, rec.onDead = onAlive, onDead
	nw.probeSend(idx)
}

// probeSend transmits one probe attempt and arms its timeout. The wire
// carries the attempt number and the onAlive action so a reply can be
// handled exactly even if it straggles in behind later attempts.
func (nw *Network) probeSend(idx int32) {
	rec := &nw.probes[idx]
	widx := nw.allocWire()
	w := &nw.wires[widx]
	w.kind, w.from, w.to = wireProbe, rec.from, rec.to
	w.probe, w.probeGen, w.aux, w.act = idx, rec.gen, rec.attempt, rec.onAlive
	nw.dispatch(ClassProbe, widx)
	nw.sim.AfterCall(nw.params.ProbeTimeout, nw.probeTimeoutFn, uint64(idx))
}

// probeTimeout resolves one attempt: answered probes retire the record,
// unanswered ones retry until the retry budget runs out, then the target
// is declared failed.
func (nw *Network) probeTimeout(arg uint64) {
	idx := int32(arg)
	rec := &nw.probes[idx]
	if rec.answered {
		nw.freeProbe(idx)
		return
	}
	if int(rec.attempt) < nw.params.ProbeRetries {
		rec.attempt++
		nw.probeSend(idx)
		return
	}
	onDead, from, to := rec.onDead, int(rec.from), int(rec.to)
	nw.freeProbe(idx)
	nw.runProbeAction(onDead, from, to)
}

// runProbeAction executes a probe resolution action.
func (nw *Network) runProbeAction(a probeAction, from, to int) {
	switch a {
	case actionNone:
	case actionEvict:
		nw.evict(from, to)
	case actionConsiderAlive:
		nw.considerAlive(from, to)
	}
}

// evict removes a node declared failed from all of i's tables and starts
// leaf-set repair if a side got depleted.
func (nw *Network) evict(i, failed int) {
	nd := nw.nodes[i]
	inLeaf := nd.removeLeaf(failed)
	nd.removeRT(failed)
	if inLeaf {
		nw.repairLeafset(i)
	}
}

// repairLeafset asks the farthest surviving member on each depleted side
// for its leaf set and merges the response. With both sides empty it asks
// any remaining contact.
func (nw *Network) repairLeafset(i int) {
	nd := nw.nodes[i]
	half := nw.params.LeafSize / 2
	var sources []int
	if len(nd.left) < half && len(nd.left) > 0 {
		sources = append(sources, nd.left[len(nd.left)-1])
	}
	if len(nd.right) < half && len(nd.right) > 0 {
		sources = append(sources, nd.right[len(nd.right)-1])
	}
	if len(sources) == 0 {
		if members := nw.leafMembersScratch(nd); len(members) > 0 {
			sources = append(sources, members[nw.rng.Intn(len(members))])
		} else {
			for _, row := range nd.rt {
				for _, v := range row {
					if v != -1 {
						sources = append(sources, v)
						break
					}
				}
				if len(sources) > 0 {
					break
				}
			}
		}
	}
	for _, src := range sources {
		// src answers with its leaf set plus itself (wireLeafReq builds
		// the response on arrival at src).
		widx := nw.allocWire()
		w := &nw.wires[widx]
		w.kind, w.from, w.to = wireLeafReq, int32(i), int32(src)
		nw.dispatch(ClassMaint, widx)
	}
}

// considerCandidate handles indirect evidence about x (a third party
// listed it in a repair or maintenance response). Unlike direct receipt of
// a message from x, hearsay may be stale — MSPastry probes candidates
// before adopting them, which is what prevents evicted-dead nodes from
// oscillating back into leaf sets via repair responses.
func (nw *Network) considerCandidate(i, x int) {
	if i == x || x < 0 || !nw.wouldUse(i, x) {
		return
	}
	nw.probe(i, x, actionConsiderAlive, actionNone)
}

// wouldUse reports whether adopting x would improve node i's state: a
// leaf-set slot (either side not full, or x closer than a current
// extreme) or an empty routing-table cell.
func (nw *Network) wouldUse(i, x int) bool {
	nd := nw.nodes[i]
	if nd.inLeafset(x) {
		return false
	}
	half := nw.params.LeafSize / 2
	xid := nw.nodes[x].id
	if len(nd.right) < half {
		return true
	}
	if xid.Sub(nd.id).Cmp(nw.nodes[nd.right[len(nd.right)-1]].id.Sub(nd.id)) < 0 {
		return true
	}
	if len(nd.left) < half {
		return true
	}
	if nd.id.Sub(xid).Cmp(nd.id.Sub(nw.nodes[nd.left[len(nd.left)-1]].id)) < 0 {
		return true
	}
	row := nw.space.SharedPrefix(nd.id, xid)
	if row < len(nd.rt) && nd.rt[row][nw.space.Digit(xid, row)] == -1 {
		return true
	}
	return false
}

// considerAlive folds fresh liveness evidence about x into node i's
// tables: x joins the leaf set if it ranks within the half-size on either
// side, and fills its routing-table cell if empty. This is also how nodes
// returning from an outage re-enter their neighbors' state — their own
// probes advertise them.
func (nw *Network) considerAlive(i, x int) {
	if i == x || x < 0 {
		return
	}
	nd := nw.nodes[i]
	half := nw.params.LeafSize / 2
	xid := nw.nodes[x].id

	if !nd.inLeafset(x) {
		// Right side: ordered by clockwise distance from nd.id.
		cw := xid.Sub(nd.id)
		pos := len(nd.right)
		for k, v := range nd.right {
			if cw.Cmp(nw.nodes[v].id.Sub(nd.id)) < 0 {
				pos = k
				break
			}
		}
		if pos < half {
			nd.right = append(nd.right, 0)
			copy(nd.right[pos+1:], nd.right[pos:])
			nd.right[pos] = x
			if len(nd.right) > half {
				nd.right = nd.right[:half]
			}
		}
		// Left side: ordered by counter-clockwise distance.
		if !nd.inLeafset(x) {
			ccw := nd.id.Sub(xid)
			pos = len(nd.left)
			for k, v := range nd.left {
				if ccw.Cmp(nd.id.Sub(nw.nodes[v].id)) < 0 {
					pos = k
					break
				}
			}
			if pos < half {
				nd.left = append(nd.left, 0)
				copy(nd.left[pos+1:], nd.left[pos:])
				nd.left[pos] = x
				if len(nd.left) > half {
					nd.left = nd.left[:half]
				}
			}
		}
	}

	row := nw.space.SharedPrefix(nd.id, xid)
	if row < len(nd.rt) {
		col := nw.space.Digit(xid, row)
		if nd.rt[row][col] == -1 {
			nd.rt[row][col] = x
		}
	}
}
