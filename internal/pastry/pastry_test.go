package pastry

import (
	"math/rand"
	"testing"
	"time"

	"discovery/internal/eventsim"
	"discovery/internal/idspace"
	"discovery/internal/overlay"
	"discovery/internal/perturb"
)

func newTestNetwork(t *testing.T, n int, seed int64, av overlay.Availability) (*Network, *eventsim.Sim) {
	t.Helper()
	sim := eventsim.New(seed)
	nw, err := New(n, DefaultParams(), sim, rand.New(rand.NewSource(seed)), nil, av)
	if err != nil {
		t.Fatal(err)
	}
	return nw, sim
}

func TestNewValidation(t *testing.T) {
	sim := eventsim.New(1)
	rng := rand.New(rand.NewSource(1))
	if _, err := New(1, DefaultParams(), sim, rng, nil, nil); err == nil {
		t.Error("single-node network accepted")
	}
	bad := DefaultParams()
	bad.LeafSize = 7
	if _, err := New(10, bad, sim, rng, nil, nil); err == nil {
		t.Error("odd leaf size accepted")
	}
	bad = DefaultParams()
	bad.B = 3
	if _, err := New(10, bad, sim, rng, nil, nil); err == nil {
		t.Error("b=3 accepted")
	}
	bad = DefaultParams()
	bad.RetryInterval = time.Minute // exceeds LookupTimeout
	if _, err := New(10, bad, sim, rng, nil, nil); err == nil {
		t.Error("retry interval above lookup timeout accepted")
	}
}

func TestPerfectLeafsets(t *testing.T) {
	nw, _ := newTestNetwork(t, 64, 2, nil)
	half := nw.params.LeafSize / 2
	// Brute-force ground truth for each node.
	for i, nd := range nw.nodes {
		if len(nd.left) != half || len(nd.right) != half {
			t.Fatalf("node %d leafset sides %d/%d, want %d/%d", i, len(nd.left), len(nd.right), half, half)
		}
		// Right side must be the `half` nodes with smallest clockwise
		// distance, in increasing order.
		prev := idspace.Zero
		for k, v := range nd.right {
			d := nw.nodes[v].id.Sub(nd.id)
			if k > 0 && d.Cmp(prev) <= 0 {
				t.Errorf("node %d right side not strictly increasing at %d", i, k)
			}
			prev = d
		}
		// No non-member may be closer clockwise than the farthest right
		// member.
		far := nw.nodes[nd.right[half-1]].id.Sub(nd.id)
		for j := range nw.nodes {
			if j == i || nd.inLeafset(j) {
				continue
			}
			if nw.nodes[j].id.Sub(nd.id).Cmp(far) < 0 {
				t.Errorf("node %d: non-member %d is clockwise-closer than farthest right member", i, j)
			}
		}
	}
}

func TestPerfectRoutingTableInvariant(t *testing.T) {
	nw, _ := newTestNetwork(t, 100, 3, nil)
	for i, nd := range nw.nodes {
		for r, row := range nd.rt {
			for c, v := range row {
				if v == -1 {
					continue
				}
				vid := nw.nodes[v].id
				if got := nw.space.SharedPrefix(nd.id, vid); got != r {
					t.Errorf("node %d rt[%d][%d]=%d shares %d digits, want exactly %d", i, r, c, v, got, r)
				}
				if got := nw.space.Digit(vid, r); got != c {
					t.Errorf("node %d rt[%d][%d]=%d has digit %d at row, want %d", i, r, c, v, got, c)
				}
			}
		}
	}
}

func TestRouteProbeDeliversToTrueRoot(t *testing.T) {
	nw, _ := newTestNetwork(t, 200, 4, nil)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		key := idspace.Random(rng)
		origin := rng.Intn(nw.N())
		at, hops := nw.RouteProbe(origin, key)
		if want := nw.TrueRoot(key); at != want {
			t.Fatalf("trial %d: delivered to %d, true root %d", trial, at, want)
		}
		if hops > 6 {
			t.Errorf("trial %d: %d hops for 200 nodes, want O(log n)", trial, hops)
		}
	}
}

func TestRouteProbeHopsLogarithmic(t *testing.T) {
	nw, _ := newTestNetwork(t, 500, 6, nil)
	rng := rand.New(rand.NewSource(7))
	total := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		_, hops := nw.RouteProbe(rng.Intn(nw.N()), idspace.Random(rng))
		total += hops
	}
	avg := float64(total) / trials
	// log_16(500) ~ 2.24; the paper reports 2-3 hops for 1000 nodes.
	if avg < 1 || avg > 4 {
		t.Errorf("average hops %.2f, want in [1,4]", avg)
	}
}

func TestInsertThenLookupStatic(t *testing.T) {
	nw, sim := newTestNetwork(t, 150, 8, nil)
	rng := rand.New(rand.NewSource(9))
	keys := make([]idspace.ID, 50)
	okCount := 0
	for i := range keys {
		keys[i] = idspace.Random(rng)
		nw.Insert(rng.Intn(nw.N()), keys[i], []byte("v"), func(ok bool, _ int) {
			if ok {
				okCount++
			}
		})
	}
	sim.Run()
	if okCount != len(keys) {
		t.Fatalf("static inserts acked: %d/%d", okCount, len(keys))
	}
	for i, key := range keys {
		root := nw.TrueRoot(key)
		if !nw.Stored(root, key) {
			t.Errorf("key %d not stored at true root %d", i, root)
		}
		if h := nw.HoldersOf(key); len(h) != 1 {
			t.Errorf("key %d stored at %d nodes, want 1 (no RR)", i, len(h))
		}
	}
	found := 0
	for _, key := range keys {
		nw.Lookup(rng.Intn(nw.N()), key, func(ok bool, hops int) {
			if ok {
				found++
				if hops < 0 {
					t.Error("successful lookup with negative hops")
				}
			}
		})
	}
	sim.Run()
	if found != len(keys) {
		t.Errorf("static lookups: %d/%d found", found, len(keys))
	}
}

func TestLookupMissingKeyTimesOut(t *testing.T) {
	nw, sim := newTestNetwork(t, 60, 10, nil)
	var done, found bool
	start := sim.Now()
	nw.Lookup(0, idspace.FromString("missing"), func(ok bool, _ int) {
		done = true
		found = ok
	})
	sim.Run()
	if !done {
		t.Fatal("lookup never completed")
	}
	if found {
		t.Error("missing key reported found")
	}
	if elapsed := sim.Now() - start; elapsed < DefaultParams().LookupTimeout {
		t.Errorf("failure declared after %v, want a full timeout %v", elapsed, DefaultParams().LookupTimeout)
	}
}

func TestReplicationOnRoute(t *testing.T) {
	sim := eventsim.New(11)
	params := DefaultParams()
	params.ReplicationOnRoute = true
	nw, err := New(150, params, sim, rand.New(rand.NewSource(11)), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	key := idspace.Random(rng)
	// Use an origin that is not the root so the route has length > 0.
	origin := (nw.TrueRoot(key) + 1) % nw.N()
	nw.Insert(origin, key, []byte("v"), nil)
	sim.Run()
	holders := nw.HoldersOf(key)
	if len(holders) < 2 {
		t.Errorf("RR stored at %d nodes, want >= 2 (origin plus route plus root)", len(holders))
	}
	if !nw.Stored(nw.TrueRoot(key), key) {
		t.Error("RR did not store at the root")
	}
}

func TestLookupTrafficCounted(t *testing.T) {
	nw, sim := newTestNetwork(t, 100, 13, nil)
	before := nw.Counters()
	nw.Insert(0, idspace.FromString("traffic"), nil, nil)
	sim.Run()
	nw.Lookup(7, idspace.FromString("traffic"), nil)
	sim.Run()
	after := nw.Counters()
	if after.Data <= before.Data {
		t.Error("no data traffic recorded")
	}
	if after.Reply <= before.Reply {
		t.Error("no reply traffic recorded")
	}
	if after.Probe != before.Probe {
		t.Error("probe traffic without maintenance running")
	}
}

func TestMaintenanceGeneratesBackgroundTraffic(t *testing.T) {
	nw, sim := newTestNetwork(t, 50, 14, nil)
	nw.StartMaintenance()
	if !nw.MaintenanceRunning() {
		t.Fatal("maintenance not running after start")
	}
	sim.RunUntil(5 * time.Minute)
	c := nw.Counters()
	if c.Probe == 0 || c.ProbeReply == 0 {
		t.Errorf("no probing traffic after 5 minutes: %+v", c)
	}
	// On an always-on overlay probes all succeed, so replies track
	// probes closely.
	if c.ProbeReply < c.Probe*9/10 {
		t.Errorf("probe replies %d lag probes %d on an always-on overlay", c.ProbeReply, c.Probe)
	}
	nw.StopMaintenance()
	if nw.MaintenanceRunning() {
		t.Error("maintenance still running after stop")
	}
	probes := nw.Counters().Probe
	sim.RunFor(5 * time.Minute)
	if nw.Counters().Probe != probes {
		t.Error("probing continued after StopMaintenance")
	}
}

func TestEvictionOnDeadNode(t *testing.T) {
	// One node goes permanently dark; with maintenance running, every
	// other node should eventually evict it from its leafset.
	const victim = 5
	av := availFunc(func(node int, at time.Duration) bool {
		return node != victim || at < 10*time.Second
	})
	nw, sim := newTestNetwork(t, 40, 15, av)
	nw.StartMaintenance()
	// Round-robin probing of a leafset of 8 at one probe per 30s needs
	// several cycles to reach the victim.
	sim.RunUntil(20 * time.Minute)
	for i, nd := range nw.nodes {
		if i == victim {
			continue
		}
		if nd.inLeafset(victim) {
			t.Errorf("node %d still has dead node %d in its leafset after 20 min", i, victim)
		}
	}
	// Leafsets must have been repaired back to full size.
	half := nw.params.LeafSize / 2
	for i, nd := range nw.nodes {
		if i == victim {
			continue
		}
		if len(nd.left) < half || len(nd.right) < half {
			t.Errorf("node %d leafset not repaired: %d/%d", i, len(nd.left), len(nd.right))
		}
	}
}

func TestReturningNodeIsReadmitted(t *testing.T) {
	// A node offline for 5 minutes then back: neighbors evict it and
	// later re-admit it once it resumes probing.
	const victim = 3
	av := availFunc(func(node int, at time.Duration) bool {
		if node != victim {
			return true
		}
		return at < 2*time.Minute || at > 7*time.Minute
	})
	nw, sim := newTestNetwork(t, 30, 16, av)
	nw.StartMaintenance()
	sim.RunUntil(6 * time.Minute) // victim offline and mostly evicted
	evicted := 0
	for i, nd := range nw.nodes {
		if i != victim && !nd.inLeafset(victim) {
			evicted++
		}
	}
	if evicted == 0 {
		t.Fatal("no one evicted the dead node after 4 minutes")
	}
	sim.RunUntil(30 * time.Minute) // victim back and re-announcing
	// The victim's ring neighbors should know it again.
	readmitted := 0
	for i, nd := range nw.nodes {
		if i != victim && nd.inLeafset(victim) {
			readmitted++
		}
	}
	if readmitted == 0 {
		t.Error("returning node never re-admitted to any leafset")
	}
}

func TestLookupUnderFlappingDegrades(t *testing.T) {
	// Sanity shape check at test scale: success under heavy long-cycle
	// flapping must be well below the static baseline.
	run := func(prob float64) float64 {
		sim := eventsim.New(17)
		rng := rand.New(rand.NewSource(17))
		nw, err := New(120, DefaultParams(), sim, rng, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		keys := make([]idspace.ID, 40)
		for i := range keys {
			keys[i] = idspace.Random(rng)
			nw.Insert(rng.Intn(nw.N()), keys[i], nil, nil)
		}
		sim.Run()
		fl, err := perturb.New(nw.N(), 300*time.Second, 300*time.Second, prob, rng)
		if err != nil {
			t.Fatal(err)
		}
		if prob > 0 {
			nw.SetAvailability(fl)
		}
		nw.StartMaintenance()
		found := 0
		var last time.Duration
		for i, key := range keys {
			key := key
			at := fl.StartTime() + time.Duration(i)*fl.Cycle()/4
			last = at
			sim.At(at, func() {
				if !nw.Online(0) {
					return
				}
				nw.Lookup(0, key, func(ok bool, _ int) {
					if ok {
						found++
					}
				})
			})
		}
		// Maintenance timers re-arm forever, so run to a deadline
		// rather than queue exhaustion.
		sim.RunUntil(last + 2*DefaultParams().LookupTimeout)
		nw.StopMaintenance()
		return float64(found) / float64(len(keys))
	}
	static := run(0)
	if static < 0.95 {
		t.Fatalf("static success %.2f, want >= 0.95", static)
	}
	heavy := run(0.9)
	if heavy > static-0.2 {
		t.Errorf("success %.2f under 0.9/300:300 flapping vs static %.2f: expected a clear drop", heavy, static)
	}
}

type availFunc func(int, time.Duration) bool

func (f availFunc) Online(node int, at time.Duration) bool { return f(node, at) }
