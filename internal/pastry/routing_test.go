package pastry

import (
	"math/rand"
	"testing"
	"time"

	"discovery/internal/idspace"
)

func TestNextHopSelfKey(t *testing.T) {
	nw, _ := newTestNetwork(t, 30, 40, nil)
	for i := 0; i < nw.N(); i += 5 {
		if got := nw.nextHop(i, nw.ID(i)); got != i {
			t.Errorf("nextHop for own ID = %d, want self %d", got, i)
		}
	}
}

func TestNextHopLeafsetDelivery(t *testing.T) {
	// A key crafted adjacent to some node's ID must be delivered to that
	// node by each of its leaf-set members directly.
	nw, _ := newTestNetwork(t, 100, 41, nil)
	root := 13
	key := nw.ID(root)
	key[idspace.Bytes-1] ^= 1
	if nw.TrueRoot(key) != root {
		t.Skip("adjacent key not rooted at target; ring too dense")
	}
	for _, member := range nw.nodes[root].leafMembers() {
		got := nw.nextHop(member, key)
		if got == root {
			continue
		}
		// A member at the edge of its own leaf-set span may route via
		// its routing table instead (prefix progress, not necessarily
		// numeric); it must still converge to the root in a few hops.
		if at, hops := nw.RouteProbe(member, key); at != root || hops > 3 {
			t.Errorf("member %d converges to %d in %d hops, want root %d fast", member, at, hops, root)
		}
	}
}

func TestNextHopNeverRegresses(t *testing.T) {
	// Along any route, the next hop never has a shorter shared prefix
	// with the key than the current node (Pastry's invariant), unless it
	// is a leafset delivery where numeric closeness rules.
	nw, _ := newTestNetwork(t, 300, 42, nil)
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		key := idspace.Random(rng)
		at := rng.Intn(nw.N())
		for hop := 0; hop < nw.params.MaxHops; hop++ {
			next := nw.nextHop(at, key)
			if next == at {
				break
			}
			curPfx := nw.space.SharedPrefix(key, nw.ID(at))
			nextPfx := nw.space.SharedPrefix(key, nw.ID(next))
			closerNumerically := nw.ID(next).RingDist(key).Cmp(nw.ID(at).RingDist(key)) < 0
			if nextPfx < curPfx && !closerNumerically {
				t.Fatalf("route regressed: prefix %d -> %d without numeric progress", curPfx, nextPfx)
			}
			at = next
		}
	}
}

func TestSnapshotFrozen(t *testing.T) {
	nw, sim := newTestNetwork(t, 60, 44, nil)
	snap := nw.Snapshot()
	if snap.N() != nw.N() {
		t.Fatalf("snapshot N = %d", snap.N())
	}
	// Neighbor lists are non-empty and contain no self-references.
	for i := 0; i < snap.N(); i++ {
		nbs := snap.Neighbors(i)
		if len(nbs) == 0 {
			t.Fatalf("node %d has empty snapshot neighborhood", i)
		}
		for _, v := range nbs {
			if v == i {
				t.Fatalf("node %d lists itself", i)
			}
		}
		if snap.ID(i) != nw.ID(i) {
			t.Fatalf("snapshot ID mismatch at %d", i)
		}
	}
	// The snapshot must not change when the live network does.
	before := len(snap.Neighbors(0))
	nw.StartMaintenance()
	sim.RunUntil(5 * time.Minute)
	nw.StopMaintenance()
	if len(snap.Neighbors(0)) != before {
		t.Error("snapshot mutated by live maintenance")
	}
}

func TestSnapshotAvailability(t *testing.T) {
	nw, _ := newTestNetwork(t, 40, 45, nil)
	snap := nw.Snapshot()
	if !snap.Online(3, 0) {
		t.Fatal("always-on snapshot reports offline")
	}
	snap.SetAvailability(availFunc(func(node int, _ time.Duration) bool { return node != 3 }))
	if snap.Online(3, 0) {
		t.Error("snapshot availability rebind ignored")
	}
	snap.SetAvailability(nil)
	if !snap.Online(3, 0) {
		t.Error("nil availability did not reset to always-on")
	}
}

func TestCountersArithmetic(t *testing.T) {
	c := Counters{Data: 5, Reply: 3, Probe: 10, ProbeReply: 9, Maint: 2}
	if c.LookupTraffic() != 8 {
		t.Errorf("LookupTraffic = %d, want 8", c.LookupTraffic())
	}
	if c.Total() != 29 {
		t.Errorf("Total = %d, want 29", c.Total())
	}
}

func TestInsertRetriesWhileOriginPerturbed(t *testing.T) {
	// The origin is offline at request time but recovers within the
	// lookup window: the end-to-end retry machinery must carry it.
	var dark = true
	av := availFunc(func(node int, at time.Duration) bool {
		return node != 0 || !dark || at > 10*time.Second
	})
	nw, sim := newTestNetwork(t, 50, 46, av)
	ok := false
	nw.Insert(0, idspace.FromString("late-insert"), nil, func(good bool, _ int) { ok = good })
	sim.Run()
	if !ok {
		t.Error("insert failed despite origin recovering within the window")
	}
}
