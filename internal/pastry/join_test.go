package pastry

import (
	"math/rand"
	"testing"

	"discovery/internal/idspace"
)

func TestJoinSingleNode(t *testing.T) {
	nw, sim := newTestNetwork(t, 60, 30, nil)
	rng := rand.New(rand.NewSource(31))
	id := idspace.Random(rng)
	idx, err := nw.Join(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()

	if nw.N() != 61 {
		t.Fatalf("N = %d after join, want 61", nw.N())
	}
	if nw.ID(idx) != id {
		t.Error("joined node has wrong ID")
	}

	// The newcomer's leaf set must match ground truth.
	nd := nw.nodes[idx]
	half := nw.params.LeafSize / 2
	if len(nd.left) != half || len(nd.right) != half {
		t.Fatalf("newcomer leafset %d/%d, want %d/%d", len(nd.left), len(nd.right), half, half)
	}
	far := nw.nodes[nd.right[half-1]].id.Sub(id)
	for j := 0; j < nw.N(); j++ {
		if j == idx || nd.inLeafset(j) {
			continue
		}
		if nw.nodes[j].id.Sub(id).Cmp(far) < 0 {
			t.Errorf("node %d is clockwise-closer than the newcomer's farthest right member", j)
		}
	}

	// The newcomer's ring neighbors must have adopted it.
	adopted := 0
	for j, other := range nw.nodes {
		if j != idx && other.inLeafset(idx) {
			adopted++
		}
	}
	if adopted < half {
		t.Errorf("only %d nodes adopted the newcomer, want at least %d", adopted, half)
	}
}

func TestJoinRoutingStillCorrect(t *testing.T) {
	nw, sim := newTestNetwork(t, 80, 32, nil)
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 15; i++ {
		if _, err := nw.Join(idspace.Random(rng), rng.Intn(nw.N())); err != nil {
			t.Fatal(err)
		}
		sim.Run()
	}
	for trial := 0; trial < 60; trial++ {
		key := idspace.Random(rng)
		origin := rng.Intn(nw.N())
		at, _ := nw.RouteProbe(origin, key)
		if want := nw.TrueRoot(key); at != want {
			t.Fatalf("trial %d: delivered to %d, true root %d", trial, at, want)
		}
	}
}

func TestJoinedNodeServesObjects(t *testing.T) {
	nw, sim := newTestNetwork(t, 50, 34, nil)
	rng := rand.New(rand.NewSource(35))
	idx, err := nw.Join(idspace.Random(rng), 3)
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	// Insert a key whose root is the newcomer (craft one close to its ID).
	key := nw.ID(idx)
	key[idspace.Bytes-1] ^= 1
	if nw.TrueRoot(key) != idx {
		t.Skip("crafted key does not root at newcomer; ring too dense")
	}
	ok := false
	nw.Insert(0, key, []byte("v"), func(good bool, _ int) { ok = good })
	sim.Run()
	if !ok {
		t.Fatal("insert via newcomer root failed")
	}
	if !nw.Stored(idx, key) {
		t.Error("newcomer did not store the object it roots")
	}
	found := false
	nw.Lookup(7, key, func(good bool, _ int) { found = good })
	sim.Run()
	if !found {
		t.Error("lookup of newcomer-rooted object failed")
	}
}

func TestJoinErrors(t *testing.T) {
	nw, _ := newTestNetwork(t, 20, 36, nil)
	if _, err := nw.Join(idspace.FromUint64(1), -1); err == nil {
		t.Error("negative bootstrap accepted")
	}
	if _, err := nw.Join(nw.ID(5), 0); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestJoinCountsTraffic(t *testing.T) {
	nw, sim := newTestNetwork(t, 40, 37, nil)
	before := nw.Counters()
	if _, err := nw.Join(idspace.FromUint64(424242), 0); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	after := nw.Counters()
	if after.Maint <= before.Maint {
		t.Error("join generated no maintenance traffic")
	}
}
