// Package pastry implements the structured-overlay baseline the paper
// compares MPIL against: a Pastry network with the overlay-maintenance
// machinery of MSPastry (Castro et al., DSN 2004) at the level of detail
// the paper's experiments exercise — prefix routing with leaf sets,
// per-hop acknowledgment and retransmission, failure detection by periodic
// probing with timeout and retries, leaf-set repair, routing-table repair,
// and node re-announcement after an outage.
//
// The original MSPastry is closed source (the paper used it under a
// Microsoft Research license); this package is the substitution documented
// in DESIGN.md. It runs on the same discrete-event simulator, ID space,
// and availability models as the MPIL implementation, so the two can be
// compared on equal footing (paper Sections 3 and 6.2).
package pastry

import (
	"fmt"
	"time"
)

// Params collects the protocol constants. The defaults are the paper's
// MSPastry configuration (Section 6.2).
type Params struct {
	// B is the digit width in bits (paper: b = 4, hexadecimal digits).
	B int
	// LeafSize is the total leaf-set size l (paper: 8; half on each side
	// of the ring).
	LeafSize int
	// LeafsetProbePeriod is how often a node probes a leaf-set member
	// (paper: 30 s).
	LeafsetProbePeriod time.Duration
	// RTProbePeriod is how often a node probes a routing-table entry
	// (paper: 90 s).
	RTProbePeriod time.Duration
	// RTMaintPeriod is the slow full routing-table maintenance sweep
	// (paper: 12000 s).
	RTMaintPeriod time.Duration
	// ProbeTimeout is the per-attempt ack/probe-reply timeout
	// (paper: 3 s).
	ProbeTimeout time.Duration
	// ProbeRetries is how many additional attempts are made after the
	// first before a node is declared failed (paper: 2).
	ProbeRetries int
	// LookupTimeout is the end-to-end patience of a lookup before the
	// origin declares failure.
	LookupTimeout time.Duration
	// RetryInterval is how long the origin waits before re-issuing an
	// unanswered request, up to LookupTimeout. Hop-level data is
	// single-shot (a message to a perturbed node is simply lost), so
	// end-to-end retry is the reliability mechanism for applications.
	RetryInterval time.Duration
	// ReplicationOnRoute enables the paper's "MSPastry with RR" variant:
	// every node on an insertion's route stores a replica, not just the
	// root (Section 6.2).
	ReplicationOnRoute bool
	// MaxHops bounds a single message's forwarding chain, a safety valve
	// against routing loops caused by stale state under heavy
	// perturbation.
	MaxHops int
}

// DefaultParams returns the paper's MSPastry configuration.
func DefaultParams() Params {
	return Params{
		B:                  4,
		LeafSize:           8,
		LeafsetProbePeriod: 30 * time.Second,
		RTProbePeriod:      90 * time.Second,
		RTMaintPeriod:      12000 * time.Second,
		ProbeTimeout:       3 * time.Second,
		ProbeRetries:       2,
		LookupTimeout:      45 * time.Second,
		RetryInterval:      3 * time.Second,
		MaxHops:            64,
	}
}

// Validate reports the first invalid parameter.
func (p Params) Validate() error {
	switch p.B {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("pastry: digit width b = %d, want 1, 2, 4 or 8", p.B)
	}
	if p.LeafSize < 2 || p.LeafSize%2 != 0 {
		return fmt.Errorf("pastry: leaf size %d must be a positive even number", p.LeafSize)
	}
	if p.LeafsetProbePeriod <= 0 || p.RTProbePeriod <= 0 || p.RTMaintPeriod <= 0 {
		return fmt.Errorf("pastry: maintenance periods must be positive")
	}
	if p.ProbeTimeout <= 0 {
		return fmt.Errorf("pastry: probe timeout must be positive")
	}
	if p.ProbeRetries < 0 {
		return fmt.Errorf("pastry: negative probe retries %d", p.ProbeRetries)
	}
	if p.LookupTimeout <= 0 {
		return fmt.Errorf("pastry: lookup timeout must be positive")
	}
	if p.RetryInterval <= 0 || p.RetryInterval > p.LookupTimeout {
		return fmt.Errorf("pastry: retry interval %v must be in (0, lookup timeout %v]", p.RetryInterval, p.LookupTimeout)
	}
	if p.MaxHops < 1 {
		return fmt.Errorf("pastry: max hops %d must be positive", p.MaxHops)
	}
	return nil
}
