package pastry

import (
	"fmt"

	"discovery/internal/idspace"
)

// Join adds a new node with the given ID to the network through a
// bootstrap contact, following Pastry's join protocol: route a join
// request from the bootstrap toward the new ID's root, collect routing
// state from every node on the path (row i of the routing table comes from
// the i-th path node, whose shared prefix with the newcomer grows along
// the route), adopt the root's leaf set, and announce the newcomer to
// everyone now in its tables. State transfer and announcements are
// counted as maintenance traffic and take simulated time; run the
// simulator to completion (or past a few RTTs) for the join to settle.
//
// It returns the new node's index. The caller owns availability: a node
// must be online (per the network's Availability) to complete a join; on
// an always-on network this always succeeds.
func (nw *Network) Join(id idspace.ID, bootstrap int) (int, error) {
	if bootstrap < 0 || bootstrap >= len(nw.nodes) {
		return -1, fmt.Errorf("pastry: bootstrap index %d out of range", bootstrap)
	}
	for _, nd := range nw.nodes {
		if nd.id == id {
			return -1, fmt.Errorf("pastry: ID %v already present", id)
		}
	}
	idx := len(nw.nodes)
	newcomer := newNode(idx, id, nw.space.Digits(), nw.space.Base())
	nw.nodes = append(nw.nodes, newcomer)
	nw.rebuildRing()

	// Walk the join route against current state. The walk itself is
	// message traffic: one data message per hop, one state-transfer
	// maintenance reply per path node.
	path := []int{bootstrap}
	at := bootstrap
	for hops := 0; hops < nw.params.MaxHops; hops++ {
		next := nw.nextHopExcluding(at, id, idx)
		if next == at {
			break
		}
		nw.count(ClassData)
		path = append(path, next)
		at = next
	}
	root := at

	// State transfer: row-by-row from path nodes, leaf set from the
	// root. Each transfer is a request/response pair.
	for _, p := range path {
		nw.count(ClassMaint) // request
		nw.count(ClassMaint) // response with table rows
		for _, row := range nw.nodes[p].rt {
			for _, v := range row {
				if v != -1 && v != idx {
					nw.considerAlive(idx, v)
				}
			}
		}
		nw.considerAlive(idx, p)
	}
	nw.count(ClassMaint)
	nw.count(ClassMaint)
	for _, v := range nw.nodes[root].leafMembers() {
		if v != idx {
			nw.considerAlive(idx, v)
		}
	}
	nw.considerAlive(idx, root)

	// Announce: everyone the newcomer now knows learns about it with a
	// short delay, as the announcement messages arrive.
	targets := nw.Neighbors(idx)
	for _, t := range targets {
		t := t
		nw.send(idx, t, ClassMaint, func() {
			// send() already folds the sender into the recipient's
			// tables via considerAlive; nothing more to do.
		})
	}
	return idx, nil
}

// nextHopExcluding is nextHop but never routes to the excluded node — the
// join walk must find the root among the EXISTING nodes even though the
// newcomer is already registered in the ring index.
func (nw *Network) nextHopExcluding(n int, key idspace.ID, exclude int) int {
	// The newcomer has empty tables and no one knows it yet, so regular
	// nextHop can only pick it if n == exclude, which the join walk
	// never does. A direct call is safe; the guard documents intent.
	next := nw.nextHop(n, key)
	if next == exclude {
		return n
	}
	return next
}
