package pastry

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"discovery/internal/eventsim"
	"discovery/internal/idspace"
	"discovery/internal/overlay"
)

// LatencyFunc returns the one-way delay between two nodes.
type LatencyFunc func(from, to int) time.Duration

// MsgClass categorizes traffic for the paper's Figure 12 accounting.
type MsgClass int

// Traffic classes. Application data and replies are the "lookup traffic"
// of Figure 12 (left); probes, probe replies and repair messages are the
// maintenance background that dominates Figure 12 (right).
const (
	ClassData MsgClass = iota + 1
	ClassReply
	ClassProbe
	ClassProbeReply
	ClassMaint
)

// Counters tallies sent messages by class. Lost messages still count: the
// sender spent the bandwidth.
type Counters struct {
	Data       uint64
	Reply      uint64
	Probe      uint64
	ProbeReply uint64
	Maint      uint64
}

// Lookup returns application traffic (data + replies).
func (c Counters) LookupTraffic() uint64 { return c.Data + c.Reply }

// Total returns all traffic including maintenance.
func (c Counters) Total() uint64 {
	return c.Data + c.Reply + c.Probe + c.ProbeReply + c.Maint
}

// Network is a simulated Pastry overlay: all node state plus the shared
// event clock, availability model, and latency model. It is not safe for
// concurrent use.
type Network struct {
	params Params
	space  idspace.Space
	sim    *eventsim.Sim
	rng    *rand.Rand
	lat    LatencyFunc
	avail  overlay.Availability

	nodes    []*node
	ringIdx  []int // node indices sorted by ID around the ring
	counters Counters
	nextUID  uint64

	maintTimers []eventsim.Timer
	pending     map[uint64]*pendingRequest

	// In-flight messages and probe exchanges live in free-listed arenas
	// and are delivered through two long-lived callbacks (wireFn,
	// probeTimeoutFn) via eventsim's AfterCall, so the steady-state hot
	// path — routing data, probing, repairing — schedules no closures
	// and performs no per-message allocation.
	wires          []wire
	wireFree       int32
	probes         []probeRec
	probeFree      int32
	wireFn         func(uint64)
	probeTimeoutFn func(uint64)
	leafScratch    []int // reused by leafMembersScratch
}

// wireKind discriminates pooled in-flight message payloads.
type wireKind uint8

const (
	wireFunc       wireKind = iota // generic closure payload (cold paths)
	wireRoute                      // routed application data; msg is the copy in flight
	wireReply                      // direct success reply to msg.req's origin
	wireProbe                      // liveness probe; probe indexes the probe arena
	wireProbeReply                 // probe reply on its way back
	wireLeafReq                    // leaf-set repair request (answered with wireCandidates)
	wireRowReq                     // routing-table row request; aux is the row
	wireCandidates                 // node indices for the recipient to consider adopting
)

// wire is one pooled in-flight message. Payload fields are a union
// discriminated by kind; list keeps its backing array across reuses.
type wire struct {
	kind     wireKind
	act      probeAction // wireProbe/wireProbeReply: the probe's onAlive action
	from, to int32
	aux      int32  // wireRowReq: requested row; wireProbe/wireProbeReply: attempt number
	probe    int32  // wireProbe/wireProbeReply: probe arena index
	probeGen uint32 // guards against probe-slot reuse
	deliver  func() // wireFunc payload
	msg      appMsg // wireRoute/wireReply payload
	list     []int  // wireCandidates payload
	next     int32  // free-list link
}

// probeRec is the origin-side state of one probe exchange (all attempts).
// Actions are small enums instead of closures: every probe site in the
// protocol either evicts the target on death or adopts it on liveness,
// and both take exactly (from, to).
type probeRec struct {
	from, to int32
	attempt  int32
	answered bool
	onAlive  probeAction
	onDead   probeAction
	gen      uint32
	next     int32
}

// probeAction names what to do when a probe resolves.
type probeAction uint8

const (
	actionNone          probeAction = iota
	actionEvict                     // declare the probed node failed: evict(from, to)
	actionConsiderAlive             // fold liveness evidence in: considerAlive(from, to)
)

// New builds an n-node Pastry network with converged ("perfect") routing
// state, the state MSPastry reaches on a static overlay — the starting
// condition of the paper's Section 3 and 6.2 experiments. IDs are drawn
// uniformly from the 160-bit space.
func New(n int, params Params, sim *eventsim.Sim, rng *rand.Rand, lat LatencyFunc, avail overlay.Availability) (*Network, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if n < 2 {
		return nil, fmt.Errorf("pastry: need at least 2 nodes, got %d", n)
	}
	if lat == nil {
		lat = func(int, int) time.Duration { return time.Millisecond }
	}
	if avail == nil {
		avail = overlay.AlwaysOn{}
	}
	space := idspace.MustSpace(params.B)
	nw := &Network{
		params:    params,
		space:     space,
		sim:       sim,
		rng:       rng,
		lat:       lat,
		avail:     avail,
		pending:   make(map[uint64]*pendingRequest),
		wireFree:  -1,
		probeFree: -1,
	}
	nw.wireFn = nw.runWire
	nw.probeTimeoutFn = nw.probeTimeout
	seen := make(map[idspace.ID]bool, n)
	rows, cols := space.Digits(), space.Base()
	for i := 0; i < n; i++ {
		var id idspace.ID
		for {
			id = idspace.Random(rng)
			if !seen[id] {
				seen[id] = true
				break
			}
		}
		nw.nodes = append(nw.nodes, newNode(i, id, rows, cols))
	}
	nw.rebuildRing()
	nw.buildPerfectState()
	return nw, nil
}

// rebuildRing refreshes the sorted ring index.
func (nw *Network) rebuildRing() {
	nw.ringIdx = make([]int, len(nw.nodes))
	for i := range nw.ringIdx {
		nw.ringIdx[i] = i
	}
	sort.Slice(nw.ringIdx, func(a, b int) bool {
		return nw.nodes[nw.ringIdx[a]].id.Less(nw.nodes[nw.ringIdx[b]].id)
	})
}

// buildPerfectState fills every leaf set and routing table from global
// knowledge, the converged state of a maintained static overlay.
func (nw *Network) buildPerfectState() {
	n := len(nw.nodes)
	half := nw.params.LeafSize / 2
	pos := make([]int, n) // node idx -> ring position
	for p, idx := range nw.ringIdx {
		pos[idx] = p
	}
	for _, nd := range nw.nodes {
		p := pos[nd.idx]
		nd.left = nd.left[:0]
		nd.right = nd.right[:0]
		for k := 1; k <= half && k < n; k++ {
			nd.right = append(nd.right, nw.ringIdx[(p+k)%n])
			nd.left = append(nd.left, nw.ringIdx[(p-k+n)%n])
		}
	}
	// Routing tables: for each other node m, it is a candidate for cell
	// (sharedPrefix, digit). Keep the first candidate per cell from a
	// shuffled order, approximating proximity-neighbor selection's
	// "some nearby node with the right prefix".
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for _, nd := range nw.nodes {
		nw.rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, m := range order {
			if m == nd.idx {
				continue
			}
			row := nw.space.SharedPrefix(nd.id, nw.nodes[m].id)
			col := nw.space.Digit(nw.nodes[m].id, row)
			if nd.rt[row][col] == -1 {
				nd.rt[row][col] = m
			}
		}
	}
}

// N returns the node count.
func (nw *Network) N() int { return len(nw.nodes) }

// ID returns node i's identifier.
func (nw *Network) ID(i int) idspace.ID { return nw.nodes[i].id }

// Sim returns the event simulator driving this network.
func (nw *Network) Sim() *eventsim.Sim { return nw.sim }

// Counters returns the traffic tallies so far.
func (nw *Network) Counters() Counters { return nw.counters }

// SetAvailability swaps the availability model; the experiments build the
// network and insert under AlwaysOn, then switch to a flapping schedule
// for the lookup stage (paper Section 3 methodology).
func (nw *Network) SetAvailability(av overlay.Availability) {
	if av == nil {
		av = overlay.AlwaysOn{}
	}
	nw.avail = av
}

// Online reports node i's availability now.
func (nw *Network) Online(i int) bool { return nw.avail.Online(i, nw.sim.Now()) }

// Stored reports whether node i currently holds key.
func (nw *Network) Stored(i int, key idspace.ID) bool {
	_, ok := nw.nodes[i].store[key]
	return ok
}

// HoldersOf returns all nodes storing key, ascending.
func (nw *Network) HoldersOf(key idspace.ID) []int {
	var out []int
	for i, nd := range nw.nodes {
		if _, ok := nd.store[key]; ok {
			out = append(out, i)
		}
	}
	return out
}

// TrueRoot returns the node whose ID is numerically closest to key on the
// ring — ground truth for tests.
func (nw *Network) TrueRoot(key idspace.ID) int {
	best := 0
	for i := 1; i < len(nw.nodes); i++ {
		if nw.nodes[i].id.CloserRing(key, nw.nodes[best].id) {
			best = i
		}
	}
	return best
}

// count tallies one sent message.
func (nw *Network) count(class MsgClass) {
	switch class {
	case ClassData:
		nw.counters.Data++
	case ClassReply:
		nw.counters.Reply++
	case ClassProbe:
		nw.counters.Probe++
	case ClassProbeReply:
		nw.counters.ProbeReply++
	case ClassMaint:
		nw.counters.Maint++
	default:
		panic(fmt.Sprintf("pastry: unknown message class %d", class))
	}
}

// allocWire pops a free wire record or grows the arena.
func (nw *Network) allocWire() int32 {
	if nw.wireFree >= 0 {
		idx := nw.wireFree
		nw.wireFree = nw.wires[idx].next
		return idx
	}
	nw.wires = append(nw.wires, wire{})
	return int32(len(nw.wires) - 1)
}

// freeWire returns a wire record to the free list, dropping payload
// references but keeping the list backing array for reuse.
func (nw *Network) freeWire(idx int32) {
	w := &nw.wires[idx]
	w.deliver = nil
	w.msg = appMsg{}
	w.list = w.list[:0]
	w.next = nw.wireFree
	nw.wireFree = idx
}

// send transmits a message with an arbitrary delivery callback: it always
// costs traffic, takes the underlay latency, and is silently lost if the
// recipient is offline on arrival — perturbed nodes are deaf, exactly the
// paper's model. Hot paths use the typed wire kinds instead of this
// closure form.
func (nw *Network) send(from, to int, class MsgClass, deliver func()) {
	idx := nw.allocWire()
	w := &nw.wires[idx]
	w.kind, w.from, w.to, w.deliver = wireFunc, int32(from), int32(to), deliver
	nw.dispatch(class, idx)
}

// dispatch counts one sent message and schedules its arrival through the
// shared runWire callback — no per-message closure.
func (nw *Network) dispatch(class MsgClass, idx int32) {
	nw.count(class)
	w := &nw.wires[idx]
	nw.sim.AfterCall(nw.lat(int(w.from), int(w.to)), nw.wireFn, uint64(idx))
}

// runWire is every wire's arrival handler. The record is freed before the
// payload executes (payload fields copied out first) except for list
// payloads, which are freed after iteration so a nested send cannot
// recycle the record and stomp the backing array mid-loop.
func (nw *Network) runWire(arg uint64) {
	idx := int32(arg)
	w := &nw.wires[idx]
	from, to := int(w.from), int(w.to)
	if !nw.avail.Online(to, nw.sim.Now()) {
		nw.freeWire(idx)
		return
	}
	// Any received message is evidence the sender was recently alive;
	// Pastry folds such evidence into its tables.
	nw.considerAlive(to, from)
	switch w.kind {
	case wireFunc:
		deliver := w.deliver
		nw.freeWire(idx)
		deliver()
	case wireRoute:
		m := w.msg
		nw.freeWire(idx)
		nw.route(to, &m)
	case wireReply:
		req, hops := w.msg.req, w.msg.hops
		nw.freeWire(idx)
		nw.finishReply(req, hops)
	case wireProbe:
		p, gen, att, act := w.probe, w.probeGen, w.aux, w.act
		nw.freeWire(idx)
		// The probed node answers immediately; the reply carries the
		// probe handle back to the origin.
		ridx := nw.allocWire()
		r := &nw.wires[ridx]
		r.kind, r.from, r.to = wireProbeReply, int32(to), int32(from)
		r.probe, r.probeGen, r.aux, r.act = p, gen, att, act
		nw.dispatch(ClassProbeReply, ridx)
	case wireProbeReply:
		p, gen, att, act := w.probe, w.probeGen, w.aux, w.act
		nw.freeWire(idx)
		// Every delivered reply is liveness evidence and runs the
		// probe's onAlive action (as the old per-attempt closures did,
		// even for replies straggling in after their attempt — or the
		// whole probe — has timed out). Only a reply to the probe's
		// current attempt marks it answered; the wire carries enough
		// state (action + endpoints) to be exact regardless of the
		// record's fate.
		rec := &nw.probes[p]
		if rec.gen == gen && rec.attempt == att {
			rec.answered = true
		}
		nw.runProbeAction(act, to, from)
	case wireLeafReq:
		nw.freeWire(idx)
		// The repair source answers with its leaf set plus itself.
		nd := nw.nodes[to]
		ridx := nw.allocWire()
		r := &nw.wires[ridx]
		r.kind, r.from, r.to = wireCandidates, int32(to), int32(from)
		r.list = append(append(append(r.list[:0], nd.left...), nd.right...), to)
		nw.dispatch(ClassMaint, ridx)
	case wireRowReq:
		row := int(w.aux)
		nw.freeWire(idx)
		ridx := nw.allocWire()
		r := &nw.wires[ridx]
		r.kind, r.from, r.to = wireCandidates, int32(to), int32(from)
		r.list = r.list[:0]
		for _, v := range nw.nodes[to].rt[row] {
			if v != -1 && v != from {
				r.list = append(r.list, v)
			}
		}
		nw.dispatch(ClassMaint, ridx)
	case wireCandidates:
		list := w.list
		for _, v := range list {
			nw.considerCandidate(to, v)
		}
		nw.freeWire(idx)
	default:
		panic(fmt.Sprintf("pastry: unknown wire kind %d", w.kind))
	}
}

// leafMembersScratch returns node nd's leaf members in a Network-owned
// scratch buffer, valid until the next call. Hot paths that only iterate
// use it to avoid a per-call allocation; anything that stores the slice
// or reads it after further sends must use node.leafMembers.
func (nw *Network) leafMembersScratch(nd *node) []int {
	nw.leafScratch = append(nw.leafScratch[:0], nd.left...)
	nw.leafScratch = append(nw.leafScratch, nd.right...)
	return nw.leafScratch
}

// Neighbors returns the union of node i's leaf set and routing-table
// entries — the neighbor list MPIL uses when running over Pastry's
// structured overlay without its maintenance (paper Section 6.2).
func (nw *Network) Neighbors(i int) []int {
	nd := nw.nodes[i]
	set := make(map[int]bool, len(nd.left)+len(nd.right)+16)
	var out []int
	add := func(v int) {
		if v != i && v >= 0 && !set[v] {
			set[v] = true
			out = append(out, v)
		}
	}
	for _, v := range nd.left {
		add(v)
	}
	for _, v := range nd.right {
		add(v)
	}
	for _, row := range nd.rt {
		for _, v := range row {
			add(v)
		}
	}
	sort.Ints(out)
	return out
}

// Snapshot freezes the current neighbor lists into an immutable overlay
// view satisfying the mpil.Overlay interface (structurally): N, ID,
// Neighbors, Online. The availability model is shared live with the
// network, so flapping applies to both protocols identically.
type Snapshot struct {
	ids       []idspace.ID
	neighbors [][]int
	avail     overlay.Availability
}

// Snapshot captures the overlay as MPIL would adopt it: the neighbor
// lists of the moment, with no further maintenance.
func (nw *Network) Snapshot() *Snapshot {
	s := &Snapshot{
		ids:       make([]idspace.ID, len(nw.nodes)),
		neighbors: make([][]int, len(nw.nodes)),
		avail:     nw.avail,
	}
	for i := range nw.nodes {
		s.ids[i] = nw.nodes[i].id
		s.neighbors[i] = nw.Neighbors(i)
	}
	return s
}

// SetAvailability rebinds the snapshot's availability model.
func (s *Snapshot) SetAvailability(av overlay.Availability) {
	if av == nil {
		av = overlay.AlwaysOn{}
	}
	s.avail = av
}

// N returns the node count.
func (s *Snapshot) N() int { return len(s.ids) }

// ID returns node i's identifier.
func (s *Snapshot) ID(i int) idspace.ID { return s.ids[i] }

// Neighbors returns node i's frozen neighbor list.
func (s *Snapshot) Neighbors(i int) []int { return s.neighbors[i] }

// Online reports node i's availability at virtual time at.
func (s *Snapshot) Online(i int, at time.Duration) bool { return s.avail.Online(i, at) }
