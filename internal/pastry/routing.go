package pastry

import (
	"discovery/internal/idspace"
)

// appKind distinguishes routed application messages.
type appKind int

const (
	insertKind appKind = iota + 1
	lookupKind
)

// appMsg is one routed attempt of an application request. Each end-to-end
// retry mints a fresh uid; req ties attempts to their pending request.
type appMsg struct {
	uid    uint64
	req    uint64
	kind   appKind
	key    idspace.ID
	value  []byte
	origin int
	hops   int
}

// pendingRequest is the origin-side state of an in-flight insert/lookup.
type pendingRequest struct {
	kind      appKind
	origin    int
	key       idspace.ID
	value     []byte
	done      func(ok bool, hops int)
	succeeded bool
	attempts  int
}

// Insert routes an insertion of key from origin and calls done(ok, hops)
// when the root's acknowledgment arrives or the timeout expires. done may
// be nil.
func (nw *Network) Insert(origin int, key idspace.ID, value []byte, done func(ok bool, hops int)) {
	nw.startRequest(insertKind, origin, key, value, done)
}

// Lookup routes a query for key from origin. done receives (found, hops of
// the successful route) or (false, -1) at timeout. Unanswered attempts are
// re-issued every RetryInterval within LookupTimeout — the end-to-end
// reliability mechanism, since hop-level data is single-shot.
func (nw *Network) Lookup(origin int, key idspace.ID, done func(found bool, hops int)) {
	nw.startRequest(lookupKind, origin, key, nil, done)
}

func (nw *Network) startRequest(kind appKind, origin int, key idspace.ID, value []byte, done func(bool, int)) {
	nw.nextUID++
	req := nw.nextUID
	p := &pendingRequest{kind: kind, origin: origin, key: key, value: value, done: done}
	nw.pending[req] = p

	deadline := nw.sim.Now() + nw.params.LookupTimeout
	var attempt func()
	attempt = func() {
		if p.succeeded {
			return
		}
		if nw.sim.Now() >= deadline {
			delete(nw.pending, req)
			if p.done != nil {
				p.done(false, -1)
			}
			return
		}
		// A perturbed origin cannot transmit; it retries after waking.
		if nw.avail.Online(origin, nw.sim.Now()) {
			p.attempts++
			nw.nextUID++
			m := appMsg{uid: nw.nextUID, req: req, kind: kind, key: key, value: value, origin: origin}
			nw.route(origin, &m)
		}
		nw.sim.After(nw.params.RetryInterval, attempt)
	}
	attempt()
}

// route runs the Pastry routing step at node `at` for message m,
// forwarding until some node delivers locally. Messages sent to perturbed
// nodes vanish (the send layer drops them), which is what ends a failed
// attempt.
func (nw *Network) route(at int, m *appMsg) {
	nd := nw.nodes[at]
	if nd.seen[m.uid] {
		return // routing loop via stale state; drop this copy
	}
	nd.seen[m.uid] = true
	if m.hops >= nw.params.MaxHops {
		return
	}
	if m.kind == insertKind && nw.params.ReplicationOnRoute {
		// "MSPastry with RR": every node on the route stores a replica
		// (paper Section 6.2).
		nd.store[m.key] = m.value
	}
	next := nw.nextHop(at, m.key)
	if next == at {
		nw.deliverLocal(at, m)
		return
	}
	// Forward as a typed wire: the in-flight copy rides in the pooled
	// record, so a hop costs no allocation.
	widx := nw.allocWire()
	w := &nw.wires[widx]
	w.kind, w.from, w.to = wireRoute, int32(at), int32(next)
	w.msg = *m
	w.msg.hops++
	nw.dispatch(ClassData, widx)
}

// deliverLocal handles a message at the node that believes itself the root
// for the key.
func (nw *Network) deliverLocal(at int, m *appMsg) {
	nd := nw.nodes[at]
	switch m.kind {
	case insertKind:
		nd.store[m.key] = m.value
		nw.reply(at, m, m.hops)
	case lookupKind:
		if _, ok := nd.store[m.key]; ok {
			nw.reply(at, m, m.hops)
		}
		// A miss sends nothing: the origin's retry/timeout machinery
		// owns failure. (A believed-root without the object is the
		// misdelivery failure mode that dominates under long
		// perturbation.)
	}
}

// reply sends a direct success reply to the origin.
func (nw *Network) reply(from int, m *appMsg, hops int) {
	widx := nw.allocWire()
	w := &nw.wires[widx]
	w.kind, w.from, w.to = wireReply, int32(from), int32(m.origin)
	w.msg = *m
	w.msg.hops = hops
	nw.dispatch(ClassReply, widx)
}

// finishReply completes a pending request when its success reply arrives.
func (nw *Network) finishReply(req uint64, hops int) {
	p, ok := nw.pending[req]
	if !ok || p.succeeded {
		return
	}
	p.succeeded = true
	delete(nw.pending, req)
	if p.done != nil {
		p.done(true, hops)
	}
}

// nextHop implements Pastry's routing rule at node n for key: leaf set if
// it covers the key, else the routing-table entry for the next digit, else
// the rare-case scan for any known node strictly closer with no shorter
// prefix. Returning n means "deliver locally".
func (nw *Network) nextHop(n int, key idspace.ID) int {
	nd := nw.nodes[n]
	if key == nd.id {
		return n
	}
	half := nw.params.LeafSize / 2

	// Leaf-set coverage: with full sides, the covered arc runs clockwise
	// from the farthest left member to the farthest right member. A
	// depleted side means this node's view of the ring is too small to
	// exclude anything, so treat the key as covered (small or degraded
	// networks fall back to closest-known routing).
	covered := true
	if len(nd.left) >= half && len(nd.right) >= half {
		lmost := nw.nodes[nd.left[len(nd.left)-1]].id
		rmost := nw.nodes[nd.right[len(nd.right)-1]].id
		span := rmost.Sub(lmost)
		off := key.Sub(lmost)
		covered = off.Cmp(span) <= 0
	}
	if covered {
		best := n
		bestID := nd.id
		for _, v := range nw.leafMembersScratch(nd) {
			if nw.nodes[v].id.CloserRing(key, bestID) {
				best = v
				bestID = nw.nodes[v].id
			}
		}
		return best
	}

	row := nw.space.SharedPrefix(key, nd.id)
	col := nw.space.Digit(key, row)
	if e := nd.rt[row][col]; e != -1 {
		return e
	}

	// Rare case: any known node with shared prefix >= row that is
	// strictly closer to the key than we are.
	best := n
	bestDist := nd.id.RingDist(key)
	consider := func(v int) {
		if v < 0 || v == n {
			return
		}
		vid := nw.nodes[v].id
		if nw.space.SharedPrefix(key, vid) < row {
			return
		}
		if d := vid.RingDist(key); d.Cmp(bestDist) < 0 {
			best = v
			bestDist = d
		}
	}
	for _, v := range nw.leafMembersScratch(nd) {
		consider(v)
	}
	for _, rtRow := range nd.rt {
		for _, v := range rtRow {
			consider(v)
		}
	}
	return best
}

// RouteProbe routes a probe message from origin toward key with no
// availability interference accounting, returning the delivery node and
// hop count synchronously against current state. It is a test/diagnostic
// helper: it consults the same nextHop logic but ignores timing and
// availability.
func (nw *Network) RouteProbe(origin int, key idspace.ID) (deliveredAt, hops int) {
	at := origin
	for h := 0; h < nw.params.MaxHops; h++ {
		next := nw.nextHop(at, key)
		if next == at {
			return at, h
		}
		at = next
	}
	return at, nw.params.MaxHops
}
