package unstructured

import (
	"math/rand"
	"testing"
	"time"

	"discovery/internal/analysis"
	"discovery/internal/idspace"
	"discovery/internal/mpil"
	"discovery/internal/overlay"
	"discovery/internal/topology"
)

func fixture(t *testing.T, seed int64) (*overlay.Network, *mpil.Engine, idspace.ID) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := topology.RandomRegular(300, 12, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := overlay.New(g, rng, nil)
	eng, err := mpil.NewEngine(nw, mpil.DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	key := idspace.Random(rng)
	eng.Insert(0, key, nil, 0)
	return nw, eng, key
}

func holderFunc(eng *mpil.Engine, key idspace.ID) Holder {
	return func(n int) bool {
		_, ok := eng.Stored(n, key)
		return ok
	}
}

func TestFloodFindsReplicas(t *testing.T) {
	nw, eng, key := fixture(t, 1)
	res, err := Flood(nw, holderFunc(eng, key), 17, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("flood with TTL 6 missed all replicas on a 300-node overlay")
	}
	if res.Hops < 0 || res.Hops > 6 {
		t.Errorf("hops = %d", res.Hops)
	}
	if res.Messages == 0 || res.Probed == 0 {
		t.Error("no cost recorded")
	}
}

func TestFloodTTLZero(t *testing.T) {
	nw, eng, key := fixture(t, 2)
	holders := eng.HoldersOf(key)
	res, err := Flood(nw, holderFunc(eng, key), holders[0], 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Hops != 0 {
		t.Errorf("TTL-0 flood at a holder: found=%v hops=%d", res.Found, res.Hops)
	}
	res, err = Flood(nw, holderFunc(eng, key), pickNonHolder(nw.N(), holders), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("TTL-0 flood away from holders found the object")
	}
}

func pickNonHolder(n int, holders []int) int {
	set := map[int]bool{}
	for _, h := range holders {
		set[h] = true
	}
	for i := 0; i < n; i++ {
		if !set[i] {
			return i
		}
	}
	return 0
}

func TestFloodCostExplodes(t *testing.T) {
	// The paper's positioning: flooding is robust but unscalable. Its
	// traffic must vastly exceed MPIL's for the same lookup.
	nw, eng, key := fixture(t, 3)
	eng.ResetDuplicateState()
	mpilStats := eng.Lookup(17, key, 0)
	flood, err := Flood(nw, holderFunc(eng, key), 17, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !mpilStats.Found || !flood.Found {
		t.Fatal("both searches should succeed on a healthy overlay")
	}
	if flood.Messages < 5*mpilStats.Messages {
		t.Errorf("flood traffic %d not dominating MPIL's %d", flood.Messages, mpilStats.Messages)
	}
}

func TestFloodOfflineOrigin(t *testing.T) {
	nw, eng, key := fixture(t, 4)
	av := availStub{down: map[int]bool{17: true}}
	nw2, err := overlay.NewWithIDs(nw.Graph(), idsOf(nw), av)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Flood(nw2, holderFunc(eng, key), 17, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found || res.Messages != 0 {
		t.Errorf("offline origin flooded anyway: %+v", res)
	}
}

func TestFloodErrors(t *testing.T) {
	nw, eng, key := fixture(t, 5)
	if _, err := Flood(nw, holderFunc(eng, key), -1, 3, 0); err == nil {
		t.Error("negative origin accepted")
	}
	if _, err := Flood(nw, holderFunc(eng, key), 0, -1, 0); err == nil {
		t.Error("negative TTL accepted")
	}
}

func TestRandomWalkFinds(t *testing.T) {
	nw, eng, key := fixture(t, 6)
	rng := rand.New(rand.NewSource(7))
	res, err := RandomWalk(nw, holderFunc(eng, key), 17, 32, 200, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Error("32 walkers x 200 steps missed every replica on 300 nodes")
	}
	if res.Messages == 0 {
		t.Error("no walk traffic recorded")
	}
}

func TestRandomWalkErrors(t *testing.T) {
	nw, eng, key := fixture(t, 8)
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomWalk(nw, holderFunc(eng, key), 999, 1, 10, 0, rng); err == nil {
		t.Error("out-of-range origin accepted")
	}
	if _, err := RandomWalk(nw, holderFunc(eng, key), 0, 0, 10, 0, rng); err == nil {
		t.Error("zero walkers accepted")
	}
}

// TestWalkHopsMatchAnalysis validates the Section 5.1 claim E[hops] = 1/C
// by measuring random walks to local maxima on a random regular overlay.
func TestWalkHopsMatchAnalysis(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, d = 800, 20
	g, err := topology.RandomRegular(n, d, rng)
	if err != nil {
		t.Fatal(err)
	}
	nw := overlay.New(g, rng, nil)
	space := idspace.MustSpace(4)

	want, err := analysis.ExpectedHops(space, d)
	if err != nil {
		t.Fatal(err)
	}
	// The closed form uses the strict local-maximum definition; walks to
	// tie-aware maxima are faster, so use the ties variant as the lower
	// anchor.
	cTies, err := analysis.LocalMaximaProbTies(space, d)
	if err != nil {
		t.Fatal(err)
	}
	lower := 1 / cTies

	total := 0
	const trials = 3000
	for i := 0; i < trials; i++ {
		key := idspace.Random(rng)
		total += WalkToLocalMaximum(nw, space, key, rng.Intn(n), 10000, rng)
	}
	measured := float64(total) / trials
	// Expect the measurement between the ties-based expectation and a
	// generous multiple of the strict-based one (walks revisit states,
	// so they are not geometric draws; order of magnitude is the claim).
	if measured < lower*0.4 || measured > want*3 {
		t.Errorf("measured %.1f hops; analysis bounds [%.1f, %.1f]", measured, lower*0.4, want*3)
	}
}

type availStub struct {
	down map[int]bool
}

func (a availStub) Online(node int, _ time.Duration) bool { return !a.down[node] }

func idsOf(nw *overlay.Network) []idspace.ID {
	ids := make([]idspace.ID, nw.N())
	for i := range ids {
		ids[i] = nw.ID(i)
	}
	return ids
}
