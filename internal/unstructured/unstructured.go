// Package unstructured implements the two classic unstructured-overlay
// search strategies the paper positions MPIL against (Section 1 and
// related work): Gnutella-style TTL-bounded flooding — "perturbation-
// resistant and overlay-independent, but neither efficient nor scalable" —
// and Lv et al.-style random walks. They share MPIL's Overlay interface so
// the comparison benches run all three over identical overlays and replica
// placements.
//
// Random walks also give an empirical handle on the paper's Section 5
// analysis: the expected number of hops for a walk to reach a local
// maximum is 1/C, which the package tests validate.
package unstructured

import (
	"fmt"
	"math/rand"
	"time"

	"discovery/internal/idspace"
	"discovery/internal/mpil"
)

// Holder reports whether a node currently stores the sought object.
type Holder func(node int) bool

// Result is the outcome of one unstructured search.
type Result struct {
	// Found is true when some probed node held the object.
	Found bool
	// Hops is the distance at which the object was first found
	// (flooding: BFS depth; walks: steps taken); -1 when not found.
	Hops int
	// Messages is the total traffic spent, counted like MPIL's: one per
	// message sent to a single neighbor.
	Messages int
	// Probed is the number of distinct nodes that processed the query.
	Probed int
}

// Flood performs a Gnutella-style lookup: the origin asks all neighbors,
// who ask all their neighbors, out to ttl hops, with duplicate
// suppression. Offline nodes (at virtual time `at`) drop the query.
func Flood(ov mpil.Overlay, holds Holder, origin, ttl int, at time.Duration) (Result, error) {
	if origin < 0 || origin >= ov.N() {
		return Result{}, fmt.Errorf("unstructured: origin %d out of range", origin)
	}
	if ttl < 0 {
		return Result{}, fmt.Errorf("unstructured: negative TTL %d", ttl)
	}
	res := Result{Hops: -1}
	if !ov.Online(origin, at) {
		return res, nil
	}
	type entry struct {
		node  int
		depth int
	}
	seen := map[int]bool{origin: true}
	queue := []entry{{origin, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		res.Probed++
		if holds(cur.node) {
			res.Found = true
			res.Hops = cur.depth
			// Gnutella keeps flooding (other branches are already in
			// flight); we keep draining the queue so Messages reflects
			// the real cost, but record the first hit.
			holds = neverHolds
		}
		if cur.depth == ttl {
			continue
		}
		for _, nb := range ov.Neighbors(cur.node) {
			if seen[nb] {
				continue
			}
			seen[nb] = true
			res.Messages++
			if !ov.Online(nb, at) {
				continue
			}
			queue = append(queue, entry{nb, cur.depth + 1})
		}
	}
	return res, nil
}

func neverHolds(int) bool { return false }

// RandomWalk performs k independent random walks of at most maxSteps hops
// each, with replacement (walkers may revisit nodes, as in Lv et al.).
// The walk stops at the first holder found. Offline nodes absorb walkers.
func RandomWalk(ov mpil.Overlay, holds Holder, origin, walkers, maxSteps int, at time.Duration, rng *rand.Rand) (Result, error) {
	if origin < 0 || origin >= ov.N() {
		return Result{}, fmt.Errorf("unstructured: origin %d out of range", origin)
	}
	if walkers < 1 || maxSteps < 0 {
		return Result{}, fmt.Errorf("unstructured: need >= 1 walker and non-negative steps")
	}
	res := Result{Hops: -1}
	if !ov.Online(origin, at) {
		return res, nil
	}
	probed := map[int]bool{}
	for w := 0; w < walkers; w++ {
		cur := origin
		for step := 0; step <= maxSteps; step++ {
			if !probed[cur] {
				probed[cur] = true
			}
			if holds(cur) {
				if !res.Found || step < res.Hops {
					res.Found = true
					res.Hops = step
				}
				break
			}
			if step == maxSteps {
				break
			}
			nbs := ov.Neighbors(cur)
			if len(nbs) == 0 {
				break
			}
			next := nbs[rng.Intn(len(nbs))]
			res.Messages++
			if !ov.Online(next, at) {
				break // walker lost at a perturbed node
			}
			cur = next
		}
	}
	res.Probed = len(probed)
	return res, nil
}

// WalkToLocalMaximum walks randomly until it reaches a node that is a
// tie-aware local maximum of the common-digits metric for key, returning
// the number of hops taken (or maxSteps if none was reached). It is the
// experimental counterpart of the paper's Section 5.1 expected-hops
// analysis (E[hops] = 1/C).
func WalkToLocalMaximum(ov mpil.Overlay, space idspace.Space, key idspace.ID, origin, maxSteps int, rng *rand.Rand) int {
	isMax := func(n int) bool {
		self := space.CommonDigits(key, ov.ID(n))
		for _, v := range ov.Neighbors(n) {
			if space.CommonDigits(key, ov.ID(v)) > self {
				return false
			}
		}
		return true
	}
	cur := origin
	for step := 0; step < maxSteps; step++ {
		if isMax(cur) {
			return step
		}
		nbs := ov.Neighbors(cur)
		if len(nbs) == 0 {
			return step
		}
		cur = nbs[rng.Intn(len(nbs))]
	}
	return maxSteps
}
