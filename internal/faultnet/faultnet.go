// Package faultnet is a transparent TCP proxy for fault injection.
//
// A Proxy listens on one address and forwards every accepted connection
// to a single fixed target, pumping bytes in both directions through a
// configurable fault pipeline. Faults are set per *direction* of the
// proxied link, so a single link can be made asymmetric (requests
// delivered, replies dropped). Everything is runtime-reconfigurable
// while traffic is live: SetFaults swaps an atomic pointer that the
// pump loops consult on every chunk, so a scenario can flip a link from
// healthy to partitioned to slow without touching the connections.
//
// Supported faults:
//
//   - Blackhole: deliver nothing (bytes read and discarded), keeping
//     the TCP connection open — models a silent one-way partition.
//   - Latency/Jitter: fixed plus uniformly-jittered delay per chunk.
//   - BandwidthBps: token-bucket throttle on the copy loop.
//   - ReorderProb: hold a flush-boundary chunk back and emit it after
//     the next one (adjacent swap), modelling cross-connection
//     reordering at message granularity without corrupting TCP itself.
//   - Partition/Heal: refuse new connections and sever live ones with
//     an RST; Heal clears every fault and accepts again.
//   - Reset: RST all live connections once, but keep accepting —
//     models mid-stream connection resets rather than a partition.
//
// The zero Faults value is a faithful wire. Proxies compose into a
// mesh: to fault the directed link A→B independently of B→A, give A a
// private proxy in front of B (see internal/chaos).
package faultnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Direction selects which half of a proxied connection a fault applies
// to, named from the dialing client's point of view.
type Direction int

const (
	// Forward is client→target: requests.
	Forward Direction = iota
	// Backward is target→client: replies.
	Backward
)

// Faults describes the treatment of one direction of a link. The zero
// value forwards faithfully.
type Faults struct {
	// Blackhole discards everything read, keeping the connection open.
	Blackhole bool
	// Latency delays each forwarded chunk by this much.
	Latency time.Duration
	// Jitter adds a uniform random [0,Jitter) on top of Latency.
	Jitter time.Duration
	// BandwidthBps caps throughput via a token bucket (0 = unlimited).
	BandwidthBps int64
	// ReorderProb is the chance, per flush-boundary chunk, that the
	// chunk is held back and emitted after its successor (adjacent
	// swap). Held chunks flush after reorderFlushDelay of silence so a
	// final in-flight message cannot be withheld forever.
	ReorderProb float64
}

// reorderFlushDelay bounds how long a held (reordered) chunk may wait
// for a successor before being flushed anyway. A var so tests can
// tighten or relax it.
var reorderFlushDelay = 25 * time.Millisecond

// Stats is a point-in-time snapshot of proxy activity.
type Stats struct {
	Accepted      uint64 // connections accepted (including refused-then-reset ones)
	Refused       uint64 // connections reset immediately due to partition
	Severed       uint64 // live connections reset by Partition/Reset
	Active        int    // currently proxied connections
	ForwardBytes  uint64 // bytes delivered client→target
	BackwardBytes uint64 // bytes delivered target→client
}

// Proxy is one listening fault-injection proxy in front of one target
// address. Create with Listen, stop with Close. All methods are safe
// for concurrent use.
type Proxy struct {
	lis    net.Listener
	target string
	logf   func(format string, args ...any)

	faults [2]atomic.Pointer[Faults]
	refuse atomic.Bool
	seed   atomic.Uint64

	accepted atomic.Uint64
	refused  atomic.Uint64
	severed  atomic.Uint64
	bytes    [2]atomic.Uint64

	mu     sync.Mutex
	links  map[*link]struct{}
	closed bool
	wg     sync.WaitGroup
}

// link is one proxied connection pair.
type link struct {
	client net.Conn
	target net.Conn
	once   sync.Once
}

func (lk *link) kill(rst bool) {
	lk.once.Do(func() {
		if rst {
			if tc, ok := lk.client.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			if tc, ok := lk.target.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
		}
		lk.client.Close()
		lk.target.Close()
	})
}

// Listen starts a proxy on listen (e.g. "127.0.0.1:0") forwarding to
// target. logf may be nil.
func Listen(listen, target string, logf func(format string, args ...any)) (*Proxy, error) {
	lis, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen %s: %w", listen, err)
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	p := &Proxy{
		lis:    lis,
		target: target,
		logf:   logf,
		links:  make(map[*link]struct{}),
	}
	p.seed.Store(uint64(0x9e3779b97f4a7c15)) // deterministic reorder stream
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listening address — the address to dial instead
// of the target.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// Target is the fixed address every accepted connection forwards to.
func (p *Proxy) Target() string { return p.target }

// SetFaults installs the fault set for one direction, effective from
// the next forwarded chunk on every current and future connection.
func (p *Proxy) SetFaults(d Direction, f Faults) {
	cp := f
	p.faults[d].Store(&cp)
}

// ClearFaults restores a faithful wire in both directions (it does not
// lift a partition; see Heal).
func (p *Proxy) ClearFaults() {
	p.faults[Forward].Store(nil)
	p.faults[Backward].Store(nil)
}

// Partition hard-partitions the link: new connections are reset on
// accept and every live connection is severed with an RST.
func (p *Proxy) Partition() {
	p.refuse.Store(true)
	p.severAll()
}

// Heal lifts a partition and clears all faults.
func (p *Proxy) Heal() {
	p.refuse.Store(false)
	p.ClearFaults()
}

// Reset severs every live connection with an RST but keeps accepting —
// a mid-stream connection-reset storm rather than a partition.
func (p *Proxy) Reset() { p.severAll() }

// SetRefuseNew toggles only whether new connections are reset on
// accept, without touching live ones.
func (p *Proxy) SetRefuseNew(refuse bool) { p.refuse.Store(refuse) }

// Stats returns a snapshot of the proxy's counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	active := len(p.links)
	p.mu.Unlock()
	return Stats{
		Accepted:      p.accepted.Load(),
		Refused:       p.refused.Load(),
		Severed:       p.severed.Load(),
		Active:        active,
		ForwardBytes:  p.bytes[Forward].Load(),
		BackwardBytes: p.bytes[Backward].Load(),
	}
}

// Close stops accepting and severs all live connections.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.lis.Close()
	p.severAll()
	p.wg.Wait()
	return err
}

func (p *Proxy) severAll() {
	p.mu.Lock()
	links := make([]*link, 0, len(p.links))
	for lk := range p.links {
		links = append(links, lk)
	}
	p.mu.Unlock()
	for _, lk := range links {
		lk.kill(true)
		p.severed.Add(1)
	}
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.lis.Accept()
		if err != nil {
			return // Close
		}
		p.accepted.Add(1)
		if p.refuse.Load() {
			// Reset immediately: the dialer's connect succeeds, its
			// first I/O fails fast — close to ECONNREFUSED semantics
			// without racing a listener rebind.
			if tc, ok := c.(*net.TCPConn); ok {
				tc.SetLinger(0)
			}
			c.Close()
			p.refused.Add(1)
			continue
		}
		p.wg.Add(1)
		go p.serve(c)
	}
}

func (p *Proxy) serve(client net.Conn) {
	defer p.wg.Done()
	target, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		p.logf("faultnet: %s -> %s: %v", p.Addr(), p.target, err)
		client.Close()
		return
	}
	lk := &link{client: client, target: target}
	p.mu.Lock()
	if p.closed || p.refuse.Load() {
		p.mu.Unlock()
		lk.kill(true)
		return
	}
	p.links[lk] = struct{}{}
	p.mu.Unlock()

	var pumps sync.WaitGroup
	pumps.Add(2)
	go func() { defer pumps.Done(); p.pump(lk, Forward) }()
	go func() { defer pumps.Done(); p.pump(lk, Backward) }()
	pumps.Wait()

	lk.kill(false)
	p.mu.Lock()
	delete(p.links, lk)
	p.mu.Unlock()
}

// pump copies one direction of lk through the fault pipeline until
// either side of the connection dies.
func (p *Proxy) pump(lk *link, d Direction) {
	src, dst := lk.client, lk.target
	if d == Backward {
		src, dst = lk.target, lk.client
	}
	buf := make([]byte, 32<<10)
	var held []byte // one chunk withheld for reordering
	var allowance float64
	lastFill := time.Now()
	for {
		if held != nil {
			src.SetReadDeadline(time.Now().Add(reorderFlushDelay))
		} else {
			src.SetReadDeadline(time.Time{})
		}
		n, rerr := src.Read(buf)
		if ne, ok := rerr.(net.Error); ok && ne.Timeout() && held != nil {
			// No successor arrived: flush the held chunk unfaulted so a
			// final message cannot be withheld forever.
			if !p.deliver(dst, d, held, nil, &allowance, &lastFill) {
				return
			}
			held = nil
			continue
		}
		if n > 0 {
			f := p.faults[d].Load()
			switch {
			case f != nil && f.Blackhole:
				// Read and discarded; connection stays open. A held
				// chunk predating the blackhole is swallowed with it.
				held = nil
			case f != nil && f.ReorderProb > 0 && held == nil && p.chance(f.ReorderProb):
				held = append([]byte(nil), buf[:n]...)
			default:
				// Emit this chunk, then any held predecessor: the
				// adjacent pair arrives swapped.
				if !p.deliver(dst, d, buf[:n], f, &allowance, &lastFill) {
					return
				}
				if held != nil {
					if !p.deliver(dst, d, held, f, &allowance, &lastFill) {
						return
					}
					held = nil
				}
			}
		}
		if rerr != nil {
			if held != nil {
				p.deliver(dst, d, held, nil, &allowance, &lastFill)
			}
			// Half-close so the peer observes EOF; the other pump
			// keeps draining until its own side ends.
			if tc, ok := dst.(*net.TCPConn); ok {
				tc.CloseWrite()
			} else {
				dst.Close()
			}
			return
		}
	}
}

// deliver applies latency, jitter and bandwidth faults and writes chunk
// to dst. Returns false when the link is dead.
func (p *Proxy) deliver(dst net.Conn, d Direction, chunk []byte, f *Faults, allowance *float64, lastFill *time.Time) bool {
	if f != nil {
		if f.BandwidthBps > 0 {
			now := time.Now()
			*allowance += now.Sub(*lastFill).Seconds() * float64(f.BandwidthBps)
			*lastFill = now
			if burst := float64(f.BandwidthBps) / 4; *allowance > burst {
				*allowance = burst
			}
			if need := float64(len(chunk)) - *allowance; need > 0 {
				wait := time.Duration(need / float64(f.BandwidthBps) * float64(time.Second))
				time.Sleep(wait)
				*lastFill = time.Now()
				*allowance = 0
			} else {
				*allowance -= float64(len(chunk))
			}
		}
		if delay := f.Latency + p.jitter(f.Jitter); delay > 0 {
			time.Sleep(delay)
		}
	}
	if _, err := dst.Write(chunk); err != nil {
		return false
	}
	p.bytes[d].Add(uint64(len(chunk)))
	return true
}

// chance draws from the proxy's deterministic splitmix64 stream.
func (p *Proxy) chance(prob float64) bool {
	return float64(p.next()>>11)/float64(1<<53) < prob
}

func (p *Proxy) jitter(j time.Duration) time.Duration {
	if j <= 0 {
		return 0
	}
	return time.Duration(p.next() % uint64(j))
}

func (p *Proxy) next() uint64 {
	z := p.seed.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
