package faultnet

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("echo listen: %v", err)
	}
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	t.Cleanup(func() { lis.Close() })
	return lis
}

func newProxy(t *testing.T, target string) *Proxy {
	t.Helper()
	p, err := Listen("127.0.0.1:0", target, t.Logf)
	if err != nil {
		t.Fatalf("faultnet listen: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dialProxy(t *testing.T, p *Proxy) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial proxy: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// roundTrip writes msg and reads len(msg) bytes back.
func roundTrip(c net.Conn, msg []byte, timeout time.Duration) ([]byte, error) {
	if _, err := c.Write(msg); err != nil {
		return nil, err
	}
	c.SetReadDeadline(time.Now().Add(timeout))
	got := make([]byte, len(msg))
	_, err := io.ReadFull(c, got)
	c.SetReadDeadline(time.Time{})
	return got, err
}

func TestFaithfulRelay(t *testing.T) {
	echo := echoServer(t)
	p := newProxy(t, echo.Addr().String())
	c := dialProxy(t, p)
	msg := []byte("hello through the proxy")
	got, err := roundTrip(c, msg, 2*time.Second)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo mismatch: got %q", got)
	}
	st := p.Stats()
	if st.Accepted != 1 || st.ForwardBytes == 0 || st.BackwardBytes == 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	echo := echoServer(t)
	p := newProxy(t, echo.Addr().String())
	c := dialProxy(t, p)
	// Warm the connection without faults.
	if _, err := roundTrip(c, []byte("warm"), 2*time.Second); err != nil {
		t.Fatalf("warm: %v", err)
	}
	const lat = 60 * time.Millisecond
	p.SetFaults(Forward, Faults{Latency: lat, Jitter: 20 * time.Millisecond})
	start := time.Now()
	if _, err := roundTrip(c, []byte("slow"), 2*time.Second); err != nil {
		t.Fatalf("slow round trip: %v", err)
	}
	if d := time.Since(start); d < lat {
		t.Fatalf("round trip %v, want >= %v", d, lat)
	}
}

func TestBlackholeIsAsymmetric(t *testing.T) {
	echo := echoServer(t)
	p := newProxy(t, echo.Addr().String())
	p.SetFaults(Forward, Faults{Blackhole: true})
	c := dialProxy(t, p)
	// Forward is blackholed: the echo server never sees the bytes, so
	// nothing comes back.
	if _, err := roundTrip(c, []byte("vanish"), 150*time.Millisecond); err == nil {
		t.Fatal("expected timeout through forward blackhole")
	}
	// Heal the forward direction: traffic flows again on the SAME
	// connection (live reconfiguration, no redial).
	p.SetFaults(Forward, Faults{})
	msg := []byte("alive again")
	got, err := roundTrip(c, msg, 2*time.Second)
	if err != nil {
		t.Fatalf("after heal: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("after heal mismatch: got %q", got)
	}
}

func TestPartitionSeversAndRefuses(t *testing.T) {
	echo := echoServer(t)
	p := newProxy(t, echo.Addr().String())
	c := dialProxy(t, p)
	if _, err := roundTrip(c, []byte("pre"), 2*time.Second); err != nil {
		t.Fatalf("pre-partition: %v", err)
	}
	p.Partition()
	// The live connection is severed: reads fail promptly.
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on severed connection succeeded")
	}
	// New connections are reset on accept: first I/O fails fast.
	c2, err := net.DialTimeout("tcp", p.Addr(), 2*time.Second)
	if err == nil {
		defer c2.Close()
		c2.SetDeadline(time.Now().Add(2 * time.Second))
		var ioErr error
		for i := 0; i < 50 && ioErr == nil; i++ {
			_, ioErr = c2.Write([]byte("x"))
			time.Sleep(10 * time.Millisecond)
		}
		if ioErr == nil {
			_, ioErr = c2.Read(make([]byte, 1))
		}
		if ioErr == nil {
			t.Fatal("I/O through partitioned proxy succeeded")
		}
	}
	// Heal: fresh connections work again.
	p.Heal()
	c3 := dialProxy(t, p)
	if _, err := roundTrip(c3, []byte("healed"), 2*time.Second); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	if st := p.Stats(); st.Severed == 0 {
		t.Fatalf("expected severed connections, stats %+v", st)
	}
}

func TestReorderSwapsAdjacentFlushes(t *testing.T) {
	// One-way sink server that records what it receives, in order.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("sink listen: %v", err)
	}
	defer lis.Close()
	recv := make(chan []byte, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		b, _ := io.ReadAll(c)
		recv <- b
	}()

	p := newProxy(t, lis.Addr().String())
	p.SetFaults(Forward, Faults{ReorderProb: 1.0})
	c := dialProxy(t, p)
	// Two flush-boundary writes with a gap small enough to beat the
	// held-chunk flush timer: they must arrive swapped.
	if _, err := c.Write([]byte("AAAA")); err != nil {
		t.Fatalf("write A: %v", err)
	}
	time.Sleep(5 * time.Millisecond)
	if _, err := c.Write([]byte("BBBB")); err != nil {
		t.Fatalf("write B: %v", err)
	}
	c.Close()
	select {
	case got := <-recv:
		if string(got) != "BBBBAAAA" {
			t.Fatalf("got %q, want swapped BBBBAAAA", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sink never completed")
	}
}

func TestHeldReorderChunkFlushesAlone(t *testing.T) {
	// A held chunk with no successor must still be delivered (after the
	// flush delay), or a final in-flight message would stall forever.
	echo := echoServer(t)
	p := newProxy(t, echo.Addr().String())
	p.SetFaults(Forward, Faults{ReorderProb: 1.0})
	c := dialProxy(t, p)
	msg := []byte("solo")
	got, err := roundTrip(c, msg, 3*time.Second)
	if err != nil {
		t.Fatalf("solo chunk never flushed: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("mismatch: got %q", got)
	}
}

func TestBandwidthCapThrottles(t *testing.T) {
	echo := echoServer(t)
	p := newProxy(t, echo.Addr().String())
	const bps = 64 << 10 // 64 KiB/s
	p.SetFaults(Forward, Faults{BandwidthBps: bps})
	c := dialProxy(t, p)
	payload := make([]byte, 48<<10) // 48 KiB through a 64 KiB/s pipe
	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := c.Write(payload)
		done <- err
	}()
	got := make([]byte, len(payload))
	c.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatalf("read throttled echo: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("write: %v", err)
	}
	// 48 KiB minus one burst allowance (16 KiB) at 64 KiB/s is ~500ms
	// of enforced delay; require a conservative fraction of it.
	if d := time.Since(start); d < 250*time.Millisecond {
		t.Fatalf("transfer took %v, expected throttling >= 250ms", d)
	}
}

func TestResetSeversButKeepsAccepting(t *testing.T) {
	echo := echoServer(t)
	p := newProxy(t, echo.Addr().String())
	c := dialProxy(t, p)
	if _, err := roundTrip(c, []byte("pre"), 2*time.Second); err != nil {
		t.Fatalf("pre-reset: %v", err)
	}
	p.Reset()
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on reset connection succeeded")
	}
	// Unlike Partition, new connections are served immediately.
	c2 := dialProxy(t, p)
	if _, err := roundTrip(c2, []byte("post"), 2*time.Second); err != nil {
		t.Fatalf("post-reset dial: %v", err)
	}
}
