// Registry-backed instrumentation: lock-free counters, gauges, and
// bounded log₂-bucket latency histograms with namespaced registration
// and Prometheus text exposition. Unlike the accumulators in metrics.go
// (which are single-goroutine experiment helpers), everything here is
// safe for concurrent use and allocation-free on the hot paths
// (Counter.Add, Gauge.Set, Histogram.Observe), so the serving layers can
// instrument per-request work without perturbing what they measure.
//
// Metric names are namespaced dotted paths with optional {k=v,...}
// labels, e.g. "server.requests{op=insert,shard=3}". The full string is
// the identity: registering the same name twice returns the same metric,
// which is how the wire-level TStats reply and the /metrics endpoint
// stay sourced from a single set of counters.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. All methods are safe
// for concurrent use and nil-safe: a nil *Counter ignores writes and
// reads as zero, so components can instrument unconditionally whether or
// not a registry was configured.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Nil-safe like Counter.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram bucket geometry: values below 1<<histSubBits land in exact
// unit buckets; above that, each power-of-two range splits into
// 1<<histSubBits sub-buckets, so the relative bucket width is at most
// 1/2^histSubBits = 12.5%. That bounds the whole structure — any uint64
// observation fits in histBuckets counters (~4KB) — while keeping
// percentile error within one bucket of the exact answer.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits
	// exact buckets [0,histSub) + histSub sub-buckets for each exponent
	// histSubBits..63.
	histBuckets = histSub + (64-histSubBits)*histSub
)

// Histogram is a fixed-memory log₂-scale distribution of non-negative
// int64 observations (typically latencies in nanoseconds or batch
// sizes). Observe is lock-free and allocation-free; Quantile answers
// nearest-rank percentile queries within one bucket (≤12.5% relative
// error) of the exact value. Histograms merge across shards and
// connections. Nil-safe like Counter.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// histBucketOf maps a value to its bucket index.
func histBucketOf(v uint64) int {
	if v < histSub {
		return int(v)
	}
	e := bits.Len64(v) - 1 // exponent, >= histSubBits
	m := (v >> (uint(e) - histSubBits)) & (histSub - 1)
	return (e-histSubBits+1)*histSub + int(m)
}

// histBucketLower returns the smallest value mapping to bucket idx.
func histBucketLower(idx int) uint64 {
	if idx < histSub {
		return uint64(idx)
	}
	e := uint(idx/histSub) + histSubBits - 1
	m := uint64(idx % histSub)
	return 1<<e | m<<(e-histSubBits)
}

// histBucketUpper returns the largest value mapping to bucket idx.
func histBucketUpper(idx int) uint64 {
	if idx >= histBuckets-1 {
		return math.MaxUint64
	}
	return histBucketLower(idx+1) - 1
}

// Observe records one observation; negative values clamp to zero.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	u := uint64(v)
	if v < 0 {
		u = 0
	}
	h.count.Add(1)
	h.sum.Add(u)
	h.buckets[histBucketOf(u)].Add(1)
	for {
		cur := h.max.Load()
		if u <= cur || h.max.CompareAndSwap(cur, u) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Max returns the largest observation seen (exact, not bucketed).
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the mean observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns the q-th quantile (q in [0,1]) by the nearest-rank
// method over the buckets: the value returned is the upper bound of the
// bucket holding the rank-th smallest observation (clamped to the exact
// recorded max), so it is within one bucket of the exact order
// statistic. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			v := histBucketUpper(i)
			if m := h.max.Load(); m < v {
				v = m
			}
			if lo := histBucketLower(i); v < lo {
				v = lo
			}
			return float64(v)
		}
	}
	return float64(h.max.Load())
}

// Merge folds another histogram's observations into h. Concurrent
// Observes on either side during the merge are not lost, but the merged
// view may be a slightly torn snapshot; callers merge quiesced or
// tolerate that.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			return
		}
	}
}

// metricKind discriminates registry entries for exposition.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// entry is one registered metric.
type entry struct {
	name  string // full name with labels, e.g. "server.requests{op=insert}"
	kind  metricKind
	ctr   *Counter
	gauge *Gauge
	fn    func() float64
	hist  *Histogram
	scale float64 // histogram exposition multiplier (e.g. 1e-9 ns→s)
}

// Registry is a named collection of metrics. Registration (Counter,
// Gauge, Histogram, ...) takes a mutex and may allocate; the returned
// metric pointers are then lock-free, so callers register once and keep
// the pointer. Registering the same full name again returns the same
// metric. A nil *Registry is valid and returns nil metrics, whose
// methods are all no-ops — components can be instrumented
// unconditionally and run unmetered when no registry is configured.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

func (r *Registry) lookup(name string, kind metricKind) *entry {
	e := r.entries[name]
	if e == nil {
		return nil
	}
	if e.kind != kind {
		panic(fmt.Sprintf("metrics: %q already registered with a different type", name))
	}
	return e
}

// Counter returns the counter registered under name, creating it if
// needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindCounter); e != nil {
		return e.ctr
	}
	e := &entry{name: name, kind: kindCounter, ctr: new(Counter)}
	r.entries[name] = e
	return e.ctr
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindGauge); e != nil {
		return e.gauge
	}
	e := &entry{name: name, kind: kindGauge, gauge: new(Gauge)}
	r.entries[name] = e
	return e.gauge
}

// GaugeFunc registers fn to be sampled at exposition time (e.g. a queue
// depth read live from len(ch)). Re-registering a name replaces the
// function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindGaugeFunc); e != nil {
		e.fn = fn
		return
	}
	r.entries[name] = &entry{name: name, kind: kindGaugeFunc, fn: fn}
}

// Histogram returns the histogram registered under name, creating it
// with the given exposition scale if needed (observations are multiplied
// by scale when rendered, so nanosecond observations with scale 1e-9
// expose as seconds; pass 1 for unitless values). The scale of an
// existing histogram is not changed.
func (r *Registry) Histogram(name string, scale float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e := r.lookup(name, kindHistogram); e != nil {
		return e.hist
	}
	if scale == 0 {
		scale = 1
	}
	e := &entry{name: name, kind: kindHistogram, hist: new(Histogram), scale: scale}
	r.entries[name] = e
	return e.hist
}

// snapshot returns the registered entries sorted by name.
func (r *Registry) snapshot() []*entry {
	r.mu.Lock()
	es := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		es = append(es, e)
	}
	r.mu.Unlock()
	sort.Slice(es, func(i, j int) bool { return es[i].name < es[j].name })
	return es
}

// splitName separates "base{k=v,...}" into the base name and the label
// list (empty when unlabelled).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		base = name[:i]
		labels = strings.TrimSuffix(name[i+1:], "}")
		return base, labels
	}
	return name, ""
}

// promName sanitizes a dotted metric name into the Prometheus charset:
// dots and any other invalid runes become underscores.
func promName(base string) string {
	var b strings.Builder
	b.Grow(len(base))
	for i, c := range base {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0) || c == ':'
		if !ok {
			c = '_'
		}
		b.WriteRune(c)
	}
	return b.String()
}

// promLabels renders "k=v,k2=v2" (plus any extra pairs) as a
// {k="v",k2="v2"} block, or "" when there are no labels.
func promLabels(labels string, extra ...string) string {
	var parts []string
	if labels != "" {
		for _, kv := range strings.Split(labels, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				k, v = kv, ""
			}
			parts = append(parts, fmt.Sprintf("%s=%q", promName(strings.TrimSpace(k)), strings.TrimSpace(v)))
		}
	}
	for i := 0; i+1 < len(extra); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", extra[i], extra[i+1]))
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// fmtFloat renders a float without trailing zero noise: integral values
// print as integers, everything else in %g form.
func fmtFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// histQuantiles are the quantiles exposed for every histogram; 1 is the
// exact recorded max.
var histQuantiles = []float64{0.5, 0.9, 0.95, 0.99, 0.999, 1}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format. Histograms are rendered as summaries (pre-computed
// quantiles + _sum + _count + the CAS-tracked exact _max) rather than
// 496 cumulative buckets.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	typed := make(map[string]bool)
	for _, e := range r.snapshot() {
		base, labels := splitName(e.name)
		fam := promName(base)
		var typ string
		switch e.kind {
		case kindCounter:
			typ = "counter"
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "summary"
		}
		if !typed[fam] {
			typed[fam] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ); err != nil {
				return err
			}
		}
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", fam, promLabels(labels), e.ctr.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %d\n", fam, promLabels(labels), e.gauge.Value())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s%s %s\n", fam, promLabels(labels), fmtFloat(e.fn()))
		case kindHistogram:
			err = writePromHistogram(w, fam, labels, e.hist, e.scale)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, fam, labels string, h *Histogram, scale float64) error {
	for _, q := range histQuantiles {
		v := h.Quantile(q)
		if q == 1 {
			v = float64(h.Max())
		}
		lbl := promLabels(labels, "quantile", fmtFloat(q))
		if _, err := fmt.Fprintf(w, "%s%s %s\n", fam, lbl, fmtFloat(v*scale)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam, promLabels(labels), fmtFloat(float64(h.Sum())*scale)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_count%s %d\n", fam, promLabels(labels), h.Count()); err != nil {
		return err
	}
	// The quantile="1" line above is bucket-quantized in spirit but
	// already exact (h.Max()); _max restates it as its own series so
	// dashboards can plot worst-case without a quantile label matcher.
	_, err := fmt.Fprintf(w, "%s_max%s %s\n", fam, promLabels(labels), fmtFloat(float64(h.Max())*scale))
	return err
}
