package metrics

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("server.requests{op=insert}")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("server.requests{op=insert}"); again != c {
		t.Fatal("re-registering the same name must return the same counter")
	}
	g := r.Gauge("recovery.entries")
	g.Set(42)
	g.Add(-2)
	if got := g.Value(); got != 40 {
		t.Fatalf("gauge = %d, want 40", got)
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z", 1)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must return nil metrics")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(5)
	h.Merge(h)
	r.GaugeFunc("f", func() float64 { return 1 })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

func TestRegistryTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("registering the same name as a different type must panic")
		}
	}()
	r.Gauge("dual")
}

// TestHistogramBucketGeometry pins the log₂ bucket invariants: every
// value lands in a bucket whose bounds contain it, and bucket width
// never exceeds 12.5% of the value.
func TestHistogramBucketGeometry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	check := func(v uint64) {
		idx := histBucketOf(v)
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, idx)
		}
		lo, hi := histBucketLower(idx), histBucketUpper(idx)
		if v < lo || v > hi {
			t.Fatalf("value %d outside bucket %d bounds [%d,%d]", v, idx, lo, hi)
		}
		if idx > 0 && histBucketUpper(idx-1) != lo-1 {
			t.Fatalf("bucket %d not contiguous with predecessor", idx)
		}
		if v >= histSub {
			if width := hi - lo + 1; float64(width) > 0.125*float64(v)+1 {
				t.Fatalf("bucket %d width %d too wide for value %d", idx, width, v)
			}
		}
	}
	for v := uint64(0); v < 4096; v++ {
		check(v)
	}
	for i := 0; i < 10000; i++ {
		check(rng.Uint64() >> uint(rng.Intn(64)))
	}
	check(1<<64 - 1)
}

// TestHistogramQuantileMatchesDistribution is the property test pinning
// the bounded histogram against the exact order-statistics
// Distribution: on random workloads of several shapes, every queried
// percentile must land in the same log₂ bucket as the exact
// nearest-rank answer.
func TestHistogramQuantileMatchesDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := map[string]func() uint64{
		"uniform":  func() uint64 { return uint64(rng.Intn(1_000_000)) },
		"exp":      func() uint64 { return uint64(rng.ExpFloat64() * 50_000) },
		"powerlaw": func() uint64 { return uint64(1) << uint(rng.Intn(40)) },
		"small":    func() uint64 { return uint64(rng.Intn(16)) },
	}
	quantiles := []float64{0, 0.5, 0.9, 0.95, 0.99, 0.999, 1}
	for name, gen := range shapes {
		for trial := 0; trial < 5; trial++ {
			var h Histogram
			var d Distribution
			n := 100 + rng.Intn(10000)
			for i := 0; i < n; i++ {
				v := gen()
				h.Observe(int64(v))
				d.Add(float64(v))
			}
			for _, q := range quantiles {
				exact := uint64(d.Percentile(q * 100))
				approx := uint64(h.Quantile(q))
				if histBucketOf(exact) != histBucketOf(approx) {
					t.Fatalf("%s trial %d q=%v: histogram %d (bucket %d) vs exact %d (bucket %d)",
						name, trial, q, approx, histBucketOf(approx), exact, histBucketOf(exact))
				}
			}
			if h.Max() != uint64(d.Percentile(100)) {
				t.Fatalf("%s: max %d != exact %v", name, h.Max(), d.Percentile(100))
			}
			if uint64(h.Quantile(1)) != h.Max() {
				t.Fatalf("%s: Quantile(1)=%v must equal exact max %d", name, h.Quantile(1), h.Max())
			}
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var whole, a, b Histogram
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1 << 20))
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Sum() != whole.Sum() || a.Max() != whole.Max() {
		t.Fatalf("merge mismatch: count %d/%d sum %d/%d max %d/%d",
			a.Count(), whole.Count(), a.Sum(), whole.Sum(), a.Max(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.99, 1} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merge q=%v: %v != %v", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

// TestHotPathZeroAllocs gates the instrumentation hot paths at 0
// allocs/op — mirrored by a dedicated CI step — so metering the serving
// layers cannot add GC pressure to what they measure.
func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot.counter")
	g := r.Gauge("hot.gauge")
	h := r.Histogram("hot.hist", 1)
	var v int64
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(v); v++ }); n != 0 {
		t.Fatalf("Gauge.Set allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(v); v += 997 }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op, want 0", n)
	}
}

// TestRegistryConcurrent hammers registration and the hot paths from
// many goroutines; run under -race in CI it proves the registry and
// metrics are race-clean.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("conc.counter")
			h := r.Histogram("conc.hist", 1)
			g := r.Gauge("conc.gauge")
			for i := 0; i < 10000; i++ {
				c.Inc()
				h.Observe(int64(i))
				g.Set(int64(i))
				if i%1000 == 0 {
					var sb strings.Builder
					_ = r.WritePrometheus(&sb)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("conc.counter").Value(); got != 80000 {
		t.Fatalf("counter = %d, want 80000", got)
	}
	if got := r.Histogram("conc.hist", 1).Count(); got != 80000 {
		t.Fatalf("histogram count = %d, want 80000", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("server.requests{op=insert}").Add(3)
	r.Counter("server.requests{op=lookup}").Add(7)
	r.Gauge("recovery.wal_records_replayed").Set(12)
	r.GaugeFunc("server.queue_depth{shard=0}", func() float64 { return 4 })
	h := r.Histogram("wal.fsync_seconds", 1e-9)
	for i := 0; i < 1000; i++ {
		h.Observe(1_000_000) // 1ms in ns
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE server_requests counter\n",
		`server_requests{op="insert"} 3` + "\n",
		`server_requests{op="lookup"} 7` + "\n",
		"# TYPE recovery_wal_records_replayed gauge\n",
		"recovery_wal_records_replayed 12\n",
		`server_queue_depth{shard="0"} 4` + "\n",
		"# TYPE wal_fsync_seconds summary\n",
		`wal_fsync_seconds{quantile="0.5"} 0.001`,
		"wal_fsync_seconds_count 1000\n",
		"wal_fsync_seconds_sum 1\n",
		"wal_fsync_seconds_max 0.001\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE server_requests counter") != 1 {
		t.Fatalf("TYPE line must appear once per family:\n%s", out)
	}
}

// TestWritePrometheusMaxSeries pins the _max series to the histogram's
// CAS-tracked exact maximum (not the bucket-quantized quantile), with
// the registration scale applied and labels preserved.
func TestWritePrometheusMaxSeries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("server.service_seconds{op=insert}", 1e-9)
	h.Observe(1_000_000)
	h.Observe(123_456_789) // an exact max no log2 bucket boundary hits
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	exact := fmtFloat(float64(123_456_789) * 1e-9)
	want := `server_service_seconds_max{op="insert"} ` + exact + "\n"
	if !strings.Contains(out, want) {
		t.Fatalf("exposition missing %q:\n%s", want, out)
	}
	// _max must agree with the quantile="1" line, which is already exact.
	if !strings.Contains(out, `server_service_seconds{op="insert",quantile="1"} `+exact+"\n") {
		t.Fatalf("quantile=1 disagrees with max:\n%s", out)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("http.hits").Inc()
	srv := httptest.NewServer(r.Mux())
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics":    "http_hits 1",
		"/debug/vars": "memstats",
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 1<<20)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body[:n]), want) {
			t.Fatalf("%s missing %q", path, want)
		}
	}
	// pprof index must answer (profiles themselves are exercised by
	// humans; here we only pin the wiring).
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench.hist", 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
