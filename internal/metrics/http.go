// HTTP exposition for a Registry: a private mux serving Prometheus text
// on /metrics, the full net/http/pprof surface under /debug/pprof/, and
// expvar (Go runtime memstats + cmdline) on /debug/vars — everything a
// soak run needs to be observed and profiled while it happens, without
// touching http.DefaultServeMux.
package metrics

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Mux returns a mux with /metrics (Prometheus text), /debug/pprof/* and
// /debug/vars wired onto it. The pprof handlers are registered
// explicitly so nothing leaks onto http.DefaultServeMux.
func (r *Registry) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// Serve binds addr (e.g. "127.0.0.1:0") and serves the registry's Mux on
// it in a background goroutine until the listener is closed. It returns
// the bound address so callers can log it (and tests can scrape
// ephemeral ports), plus a stop function.
func (r *Registry) Serve(addr string) (bound string, stop func(), err error) {
	return ServeMux(addr, r.Mux())
}

// ServeMux is Serve for a caller-assembled handler — daemons use it to
// mount extra debug surfaces (e.g. /debug/traces) next to the
// registry's standard endpoints.
func ServeMux(addr string, h http.Handler) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: h}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
