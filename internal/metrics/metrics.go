// Package metrics provides the small statistical accumulators the
// experiment harness reports with: streaming means, min/max, success
// rates, and fixed-width text tables matching the paper's presentation.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Sample is a streaming accumulator over float64 observations. The zero
// value is ready to use.
type Sample struct {
	n          int
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// AddInt records an integer observation.
func (s *Sample) AddInt(v int) { s.Add(float64(v)) }

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 { return s.max }

// StdDev returns the population standard deviation, or 0 when fewer than
// two observations exist.
func (s *Sample) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	mean := s.Mean()
	v := s.sumSq/float64(s.n) - mean*mean
	if v < 0 {
		v = 0 // floating-point guard
	}
	return math.Sqrt(v)
}

// Rate tracks a success fraction. The zero value is ready to use.
type Rate struct {
	ok, total int
}

// Record adds one trial.
func (r *Rate) Record(success bool) {
	r.total++
	if success {
		r.ok++
	}
}

// Total returns the number of trials.
func (r *Rate) Total() int { return r.total }

// Successes returns the number of successful trials.
func (r *Rate) Successes() int { return r.ok }

// Fraction returns successes/total in [0,1], or 0 with no trials.
func (r *Rate) Fraction() float64 {
	if r.total == 0 {
		return 0
	}
	return float64(r.ok) / float64(r.total)
}

// Percent returns the success rate as a percentage.
func (r *Rate) Percent() float64 { return 100 * r.Fraction() }

// Table renders fixed-width text tables in the style of the paper's
// Tables 1-3. Build with NewTable, fill with AddRow, render with String.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	h := make([]string, len(header))
	copy(h, header)
	return &Table{header: h}
}

// AddRow appends a row; cells are formatted with %v. Rows shorter or
// longer than the header are padded or truncated to fit.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = fmt.Sprintf("%v", cells[i])
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
