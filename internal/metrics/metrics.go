// Package metrics provides the small statistical accumulators the
// experiment harness reports with: streaming means, min/max, success
// rates, and fixed-width text tables matching the paper's presentation.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample is a streaming accumulator over float64 observations. The zero
// value is ready to use.
type Sample struct {
	n          int
	sum, sumSq float64
	min, max   float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// AddInt records an integer observation.
func (s *Sample) AddInt(v int) { s.Add(float64(v)) }

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean, or 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Sum returns the total of all observations.
func (s *Sample) Sum() float64 { return s.sum }

// Min returns the smallest observation, or 0 for an empty sample.
func (s *Sample) Min() float64 { return s.min }

// Max returns the largest observation, or 0 for an empty sample.
func (s *Sample) Max() float64 { return s.max }

// StdDev returns the population standard deviation, or 0 when fewer than
// two observations exist.
func (s *Sample) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	mean := s.Mean()
	v := s.sumSq/float64(s.n) - mean*mean
	if v < 0 {
		v = 0 // floating-point guard
	}
	return math.Sqrt(v)
}

// Rate tracks a success fraction. The zero value is ready to use.
type Rate struct {
	ok, total int
}

// Record adds one trial.
func (r *Rate) Record(success bool) {
	r.total++
	if success {
		r.ok++
	}
}

// Total returns the number of trials.
func (r *Rate) Total() int { return r.total }

// Successes returns the number of successful trials.
func (r *Rate) Successes() int { return r.ok }

// Fraction returns successes/total in [0,1], or 0 with no trials.
func (r *Rate) Fraction() float64 {
	if r.total == 0 {
		return 0
	}
	return float64(r.ok) / float64(r.total)
}

// Percent returns the success rate as a percentage.
func (r *Rate) Percent() float64 { return 100 * r.Fraction() }

// Distribution is an order-statistics accumulator: it keeps every
// observation and answers percentile queries, which the load generator
// and daemon stats use for latency reporting. The zero value is ready to
// use. Unlike Sample it is O(n) in memory; use it where tails matter.
type Distribution struct {
	vals   []float64
	sorted bool
}

// Add records one observation.
func (d *Distribution) Add(v float64) {
	d.vals = append(d.vals, v)
	d.sorted = false
}

// Merge folds another distribution's observations into d.
func (d *Distribution) Merge(other *Distribution) {
	d.vals = append(d.vals, other.vals...)
	d.sorted = false
}

// N returns the number of observations.
func (d *Distribution) N() int { return len(d.vals) }

// Mean returns the mean observation, or 0 when empty.
func (d *Distribution) Mean() float64 {
	if len(d.vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range d.vals {
		sum += v
	}
	return sum / float64(len(d.vals))
}

// Percentile returns the p-th percentile (p in [0,100]) using the
// nearest-rank method, or 0 when empty. The first query after new
// observations sorts once; repeated queries are O(1).
func (d *Distribution) Percentile(p float64) float64 {
	n := len(d.vals)
	if n == 0 {
		return 0
	}
	if !d.sorted {
		sort.Float64s(d.vals)
		d.sorted = true
	}
	if p <= 0 {
		return d.vals[0]
	}
	if p >= 100 {
		return d.vals[n-1]
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return d.vals[rank-1]
}

// Table renders fixed-width text tables in the style of the paper's
// Tables 1-3. Build with NewTable, fill with AddRow, render with String.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	h := make([]string, len(header))
	copy(h, header)
	return &Table{header: h}
}

// AddRow appends a row; cells are formatted with %v. Rows shorter or
// longer than the header are padded or truncated to fit.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(t.header))
	for i := range row {
		if i < len(cells) {
			row[i] = fmt.Sprintf("%v", cells[i])
		}
	}
	t.rows = append(t.rows, row)
}

// Header returns a copy of the column headers, for serializers that
// export tables in machine-readable formats.
func (t *Table) Header() []string {
	return append([]string(nil), t.header...)
}

// Rows returns a copy of the formatted body rows.
func (t *Table) Rows() [][]string {
	rows := make([][]string, len(t.rows))
	for i, r := range t.rows {
		rows[i] = append([]string(nil), r...)
	}
	return rows
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
