package metrics

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("zero-value Sample not empty")
	}
	for _, v := range []float64{4, 2, 8, 6} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Errorf("N = %d, want 4", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Errorf("Min/Max = %v/%v, want 2/8", s.Min(), s.Max())
	}
	if s.Sum() != 20 {
		t.Errorf("Sum = %v, want 20", s.Sum())
	}
	want := math.Sqrt(5) // population stddev of {4,2,8,6}
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev(), want)
	}
}

func TestSampleNegativeValues(t *testing.T) {
	var s Sample
	s.Add(-3)
	s.AddInt(1)
	if s.Min() != -3 || s.Max() != 1 {
		t.Errorf("Min/Max = %v/%v, want -3/1", s.Min(), s.Max())
	}
	if s.Mean() != -1 {
		t.Errorf("Mean = %v, want -1", s.Mean())
	}
}

func TestSampleSingleObservationStdDev(t *testing.T) {
	var s Sample
	s.Add(7)
	if s.StdDev() != 0 {
		t.Errorf("StdDev of one point = %v, want 0", s.StdDev())
	}
}

func TestRate(t *testing.T) {
	var r Rate
	if r.Fraction() != 0 || r.Percent() != 0 {
		t.Error("zero-value Rate not zero")
	}
	for i := 0; i < 10; i++ {
		r.Record(i < 7)
	}
	if r.Total() != 10 || r.Successes() != 7 {
		t.Errorf("Total/Successes = %d/%d, want 10/7", r.Total(), r.Successes())
	}
	if r.Fraction() != 0.7 {
		t.Errorf("Fraction = %v, want 0.7", r.Fraction())
	}
	if r.Percent() != 70 {
		t.Errorf("Percent = %v, want 70", r.Percent())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 22.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1") {
		t.Errorf("row line = %q", lines[2])
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator width %d != header width %d", len(lines[1]), len(lines[0]))
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("only")        // short row padded
	tb.AddRow(1, 2, 3, 4, 5) // long row truncated
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Error("short row lost")
	}
	if strings.Contains(out, "4") || strings.Contains(out, "5") {
		t.Error("excess cells not truncated")
	}
}

func TestDistributionPercentiles(t *testing.T) {
	var d Distribution
	if d.Percentile(50) != 0 || d.N() != 0 || d.Mean() != 0 {
		t.Fatal("empty distribution must report zeros")
	}
	// 1..100 out of order: percentiles are exact under nearest-rank.
	for i := 100; i >= 1; i-- {
		d.Add(float64(i))
	}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {95, 95}, {99, 99}, {100, 100},
	} {
		if got := d.Percentile(tc.p); got != tc.want {
			t.Errorf("P%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := d.Mean(); got != 50.5 {
		t.Errorf("Mean = %v, want 50.5", got)
	}
	// Adding after a query re-sorts on the next query.
	d.Add(1000)
	if got := d.Percentile(100); got != 1000 {
		t.Errorf("max after Add = %v, want 1000", got)
	}
}

func TestDistributionMerge(t *testing.T) {
	var a, b Distribution
	for i := 1; i <= 50; i++ {
		a.Add(float64(i))
	}
	for i := 51; i <= 100; i++ {
		b.Add(float64(i))
	}
	a.Merge(&b)
	if a.N() != 100 {
		t.Fatalf("merged N = %d, want 100", a.N())
	}
	if got := a.Percentile(50); got != 50 {
		t.Errorf("merged P50 = %v, want 50", got)
	}
}

func TestDistributionEmpty(t *testing.T) {
	var d Distribution
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if got := d.Percentile(p); got != 0 {
			t.Errorf("empty P%v = %v, want 0", p, got)
		}
	}
	if d.N() != 0 || d.Mean() != 0 {
		t.Errorf("empty N/Mean = %d/%v", d.N(), d.Mean())
	}
	// Merging two empties stays empty and queryable.
	var e Distribution
	d.Merge(&e)
	if d.N() != 0 || d.Percentile(50) != 0 {
		t.Error("merge of empties not empty")
	}
}

func TestDistributionSingleSample(t *testing.T) {
	var d Distribution
	d.Add(-42.5)
	for _, p := range []float64{0, 0.1, 50, 99.9, 100} {
		if got := d.Percentile(p); got != -42.5 {
			t.Errorf("single-sample P%v = %v, want -42.5", p, got)
		}
	}
	if d.Mean() != -42.5 || d.N() != 1 {
		t.Errorf("single-sample Mean/N = %v/%d", d.Mean(), d.N())
	}
}

func TestDistributionExactBoundaryQuantiles(t *testing.T) {
	// Ten values: under nearest-rank, P(10k) must land exactly on the
	// k-th order statistic, and a hair above it must step to the next.
	var d Distribution
	for _, v := range []float64{90, 10, 50, 30, 70, 20, 100, 60, 40, 80} {
		d.Add(v)
	}
	for k := 1; k <= 10; k++ {
		p := float64(k) * 10
		if got := d.Percentile(p); got != float64(k*10) {
			t.Errorf("P%v = %v, want %v", p, got, k*10)
		}
		if k < 10 {
			if got := d.Percentile(p + 0.001); got != float64((k+1)*10) {
				t.Errorf("P%v = %v, want %v", p+0.001, got, (k+1)*10)
			}
		}
	}
	// Out-of-range p clamps to the extremes.
	if d.Percentile(-5) != 10 || d.Percentile(250) != 100 {
		t.Errorf("clamped percentiles = %v/%v", d.Percentile(-5), d.Percentile(250))
	}
	// Duplicate-heavy data: quantiles sit on the repeated value.
	var e Distribution
	for i := 0; i < 9; i++ {
		e.Add(5)
	}
	e.Add(9)
	if e.Percentile(50) != 5 || e.Percentile(90) != 5 || e.Percentile(100) != 9 {
		t.Errorf("duplicate data quantiles: P50=%v P90=%v P100=%v", e.Percentile(50), e.Percentile(90), e.Percentile(100))
	}
}

func TestDistributionMergeEmptySides(t *testing.T) {
	var full, empty Distribution
	for i := 1; i <= 4; i++ {
		full.Add(float64(i))
	}
	full.Merge(&empty) // right side empty: nothing changes
	if full.N() != 4 || full.Percentile(100) != 4 {
		t.Fatalf("merge with empty changed data: N=%d", full.N())
	}
	empty.Merge(&full) // left side empty: adopts everything
	if empty.N() != 4 || empty.Percentile(0) != 1 || empty.Percentile(100) != 4 {
		t.Fatalf("empty.Merge(full): N=%d", empty.N())
	}
}

func TestTableHeaderRowsOrdering(t *testing.T) {
	tb := NewTable("first", "second", "third")
	tb.AddRow("r0c0", "r0c1", "r0c2")
	tb.AddRow("r1c0") // padded
	tb.AddRow("r2c0", "r2c1", "r2c2", "r2c3")

	h := tb.Header()
	if len(h) != 3 || h[0] != "first" || h[1] != "second" || h[2] != "third" {
		t.Fatalf("header order = %v", h)
	}
	rows := tb.Rows()
	if len(rows) != 3 {
		t.Fatalf("Rows() returned %d rows, want 3", len(rows))
	}
	// Rows come back in insertion order, each exactly header-width.
	for i, row := range rows {
		if len(row) != 3 {
			t.Fatalf("row %d has %d cells, want 3", i, len(row))
		}
		if want := fmt.Sprintf("r%dc0", i); row[0] != want {
			t.Errorf("row %d out of order: first cell %q, want %q", i, row[0], want)
		}
	}
	if rows[1][1] != "" || rows[1][2] != "" {
		t.Errorf("short row not padded with empties: %v", rows[1])
	}
	for _, c := range rows[2] {
		if c == "r2c3" {
			t.Error("over-long row not truncated to header width")
		}
	}
	// An empty table has headers but no rows.
	empty := NewTable("solo")
	if len(empty.Rows()) != 0 || len(empty.Header()) != 1 {
		t.Errorf("empty table: %v / %v", empty.Header(), empty.Rows())
	}
}

func TestTableAccessors(t *testing.T) {
	tb := NewTable("x", "y")
	tb.AddRow(1, "two")
	h, rows := tb.Header(), tb.Rows()
	if len(h) != 2 || h[0] != "x" || h[1] != "y" {
		t.Fatalf("Header = %v", h)
	}
	if len(rows) != 1 || rows[0][0] != "1" || rows[0][1] != "two" {
		t.Fatalf("Rows = %v", rows)
	}
	// Mutating the copies must not corrupt the table.
	h[0], rows[0][0] = "mutated", "mutated"
	if got := tb.Header()[0]; got != "x" {
		t.Errorf("header aliased: %q", got)
	}
	if got := tb.Rows()[0][0]; got != "1" {
		t.Errorf("rows aliased: %q", got)
	}
}
