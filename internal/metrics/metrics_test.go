package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestSampleBasics(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("zero-value Sample not empty")
	}
	for _, v := range []float64{4, 2, 8, 6} {
		s.Add(v)
	}
	if s.N() != 4 {
		t.Errorf("N = %d, want 4", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 8 {
		t.Errorf("Min/Max = %v/%v, want 2/8", s.Min(), s.Max())
	}
	if s.Sum() != 20 {
		t.Errorf("Sum = %v, want 20", s.Sum())
	}
	want := math.Sqrt(5) // population stddev of {4,2,8,6}
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", s.StdDev(), want)
	}
}

func TestSampleNegativeValues(t *testing.T) {
	var s Sample
	s.Add(-3)
	s.AddInt(1)
	if s.Min() != -3 || s.Max() != 1 {
		t.Errorf("Min/Max = %v/%v, want -3/1", s.Min(), s.Max())
	}
	if s.Mean() != -1 {
		t.Errorf("Mean = %v, want -1", s.Mean())
	}
}

func TestSampleSingleObservationStdDev(t *testing.T) {
	var s Sample
	s.Add(7)
	if s.StdDev() != 0 {
		t.Errorf("StdDev of one point = %v, want 0", s.StdDev())
	}
}

func TestRate(t *testing.T) {
	var r Rate
	if r.Fraction() != 0 || r.Percent() != 0 {
		t.Error("zero-value Rate not zero")
	}
	for i := 0; i < 10; i++ {
		r.Record(i < 7)
	}
	if r.Total() != 10 || r.Successes() != 7 {
		t.Errorf("Total/Successes = %d/%d, want 10/7", r.Total(), r.Successes())
	}
	if r.Fraction() != 0.7 {
		t.Errorf("Fraction = %v, want 0.7", r.Fraction())
	}
	if r.Percent() != 70 {
		t.Errorf("Percent = %v, want 70", r.Percent())
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 22.5)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("rendered %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1") {
		t.Errorf("row line = %q", lines[2])
	}
	// All rows align to the same width.
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator width %d != header width %d", len(lines[1]), len(lines[0]))
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("a", "b", "c")
	tb.AddRow("only")        // short row padded
	tb.AddRow(1, 2, 3, 4, 5) // long row truncated
	out := tb.String()
	if !strings.Contains(out, "only") {
		t.Error("short row lost")
	}
	if strings.Contains(out, "4") || strings.Contains(out, "5") {
		t.Error("excess cells not truncated")
	}
}

func TestDistributionPercentiles(t *testing.T) {
	var d Distribution
	if d.Percentile(50) != 0 || d.N() != 0 || d.Mean() != 0 {
		t.Fatal("empty distribution must report zeros")
	}
	// 1..100 out of order: percentiles are exact under nearest-rank.
	for i := 100; i >= 1; i-- {
		d.Add(float64(i))
	}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {95, 95}, {99, 99}, {100, 100},
	} {
		if got := d.Percentile(tc.p); got != tc.want {
			t.Errorf("P%v = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := d.Mean(); got != 50.5 {
		t.Errorf("Mean = %v, want 50.5", got)
	}
	// Adding after a query re-sorts on the next query.
	d.Add(1000)
	if got := d.Percentile(100); got != 1000 {
		t.Errorf("max after Add = %v, want 1000", got)
	}
}

func TestDistributionMerge(t *testing.T) {
	var a, b Distribution
	for i := 1; i <= 50; i++ {
		a.Add(float64(i))
	}
	for i := 51; i <= 100; i++ {
		b.Add(float64(i))
	}
	a.Merge(&b)
	if a.N() != 100 {
		t.Fatalf("merged N = %d, want 100", a.N())
	}
	if got := a.Percentile(50); got != 50 {
		t.Errorf("merged P50 = %v, want 50", got)
	}
}

func TestTableAccessors(t *testing.T) {
	tb := NewTable("x", "y")
	tb.AddRow(1, "two")
	h, rows := tb.Header(), tb.Rows()
	if len(h) != 2 || h[0] != "x" || h[1] != "y" {
		t.Fatalf("Header = %v", h)
	}
	if len(rows) != 1 || rows[0][0] != "1" || rows[0][1] != "two" {
		t.Fatalf("Rows = %v", rows)
	}
	// Mutating the copies must not corrupt the table.
	h[0], rows[0][0] = "mutated", "mutated"
	if got := tb.Header()[0]; got != "x" {
		t.Errorf("header aliased: %q", got)
	}
	if got := tb.Rows()[0][0]; got != "1" {
		t.Errorf("rows aliased: %q", got)
	}
}
