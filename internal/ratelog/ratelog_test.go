package ratelog

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock makes refill deterministic.
type fakeClock struct{ ns atomic.Int64 }

func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

func newFake(burst, perSec int) (*Limiter, *fakeClock) {
	c := &fakeClock{}
	c.ns.Store(int64(time.Hour)) // arbitrary nonzero epoch
	l := New(burst, perSec)
	l.now = func() int64 { return c.ns.Load() }
	l.last.Store(c.ns.Load())
	return l, c
}

func TestBurstThenCap(t *testing.T) {
	l, c := newFake(3, 2)
	for i := 0; i < 3; i++ {
		if !l.Allow() {
			t.Fatalf("burst event %d refused", i)
		}
	}
	if l.Allow() {
		t.Fatal("admitted past the burst with no time elapsed")
	}
	// Half a second buys one token at 2/s.
	c.advance(500 * time.Millisecond)
	if !l.Allow() {
		t.Fatal("refilled token refused")
	}
	if l.Allow() {
		t.Fatal("admitted two tokens from a one-token refill")
	}
	if d := l.Dropped(); d != 2 {
		t.Fatalf("dropped %d, want 2", d)
	}
}

func TestRefillNeverExceedsBurst(t *testing.T) {
	l, c := newFake(2, 10)
	c.advance(time.Minute) // would mint 600 tokens; cap is 2
	for i := 0; i < 2; i++ {
		if !l.Allow() {
			t.Fatalf("event %d refused after long idle", i)
		}
	}
	if l.Allow() {
		t.Fatal("idle refill exceeded the burst cap")
	}
}

func TestFractionalIntervalsAccumulate(t *testing.T) {
	l, c := newFake(1, 2) // one token per 500ms
	if !l.Allow() {
		t.Fatal("burst refused")
	}
	for i := 0; i < 4; i++ {
		c.advance(200 * time.Millisecond)
		l.Allow()
	}
	// 800ms elapsed in 200ms slices: exactly one 500ms token must have
	// been minted (and consumed above), not zero and not two.
	c.advance(200 * time.Millisecond) // cumulative 1s → second token
	if !l.Allow() {
		t.Fatal("accumulated fractional refill lost")
	}
}

func TestWrapCountsSuppressed(t *testing.T) {
	l, c := newFake(1, 1)
	var lines []string
	logf := l.Wrap(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	logf("first %d", 1)
	logf("flood %d", 2)
	logf("flood %d", 3)
	c.advance(time.Second)
	logf("after %d", 4)
	want := []string{"first 1", "ratelog: 2 similar lines suppressed", "after 4"}
	if len(lines) != len(want) {
		t.Fatalf("lines: %q", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestConcurrentAllowNeverOveradmits(t *testing.T) {
	l, _ := newFake(100, 0)
	var admitted atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				if l.Allow() {
					admitted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := admitted.Load(); got != 100 {
		t.Fatalf("admitted %d of 8000 under a 100 burst, want exactly 100", got)
	}
}
