// Package ratelog is a tiny lock-free token-bucket limiter for log
// lines, shared by the server's slow-request breakdowns and p2p's
// repair-truncation warnings: a saturated run gets a bounded trickle of
// diagnostics instead of a stderr flood, and the suppressed-line count
// is surfaced so nothing disappears silently.
package ratelog

import (
	"sync/atomic"
	"time"
)

// Limiter admits a burst of events, then refills at perSec tokens per
// second. All methods are safe for concurrent use and allocation-free.
type Limiter struct {
	burst  int64
	perSec int64
	tokens atomic.Int64
	// last is the unix-nano timestamp the bucket last refilled at.
	last    atomic.Int64
	dropped atomic.Uint64
	now     func() int64 // injectable clock for tests
}

// New builds a limiter that admits burst events immediately and then
// perSec per second (perSec 0 means the burst is all there ever is).
func New(burst, perSec int) *Limiter {
	l := &Limiter{burst: int64(burst), perSec: int64(perSec), now: func() int64 { return time.Now().UnixNano() }}
	l.tokens.Store(int64(burst))
	l.last.Store(l.now())
	return l
}

// Allow consumes one token if available, counting the event as dropped
// otherwise.
func (l *Limiter) Allow() bool {
	if l.perSec > 0 {
		now := l.now()
		last := l.last.Load()
		if elapsed := now - last; elapsed > 0 {
			refill := elapsed * l.perSec / int64(time.Second)
			// Advance last by exactly the time the minted tokens cost, so
			// fractional refill intervals accumulate instead of resetting.
			if refill > 0 && l.last.CompareAndSwap(last, last+refill*int64(time.Second)/l.perSec) {
				for {
					cur := l.tokens.Load()
					next := cur + refill
					if next > l.burst {
						next = l.burst
					}
					if l.tokens.CompareAndSwap(cur, next) {
						break
					}
				}
			}
		}
	}
	for {
		cur := l.tokens.Load()
		if cur <= 0 {
			l.dropped.Add(1)
			return false
		}
		if l.tokens.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}

// Dropped returns and resets the count of events suppressed since the
// last call.
func (l *Limiter) Dropped() uint64 { return l.dropped.Swap(0) }

// Wrap returns a logf that forwards to base only when the limiter
// admits the line, noting how many lines were suppressed in between.
// A nil base yields a no-op logf.
func (l *Limiter) Wrap(base func(format string, args ...any)) func(format string, args ...any) {
	if base == nil {
		return func(string, ...any) {}
	}
	return func(format string, args ...any) {
		if !l.Allow() {
			return
		}
		if d := l.Dropped(); d > 0 {
			base("ratelog: %d similar lines suppressed", d)
		}
		base(format, args...)
	}
}
