package discovery

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"discovery/internal/idspace"
	"discovery/internal/snapshot"
	"discovery/internal/wal"
)

// This file is the durability layer over Pool: a single write-ahead log
// shared by every shard (so concurrent shard workers group-commit their
// fsyncs) plus per-shard snapshots that bound recovery work and let the
// log be truncated.
//
// # Data directory layout
//
//	MANIFEST                      pool parameters + overlay fingerprint
//	wal-<firstSeq>.seg            write-ahead log segments (internal/wal)
//	snap-<shard>-<seq>.snap       per-shard state snapshots (internal/snapshot)
//
// # Invariants
//
//   - Write-ahead: a mutation is appended to the log (and made durable
//     per the fsync policy) before it executes, so an acked operation is
//     always recoverable and an unlogged one is never applied.
//   - A snapshot for shard s at sequence S contains the effect of every
//     shard-s record with seq <= S and nothing newer.
//   - The log is only truncated below min over shards of the newest
//     durable snapshot seq, so recovery always finds every record it
//     needs: restore each shard's snapshot, then replay the log once,
//     applying each record to its shard iff seq > that shard's snapshot.
//
// # Replay determinism
//
// Replay re-executes logical operations through the engine. From an
// empty directory state (no snapshots) this is bit-exact: each shard
// sees the same operations in the same order from the same seed, so
// replicas land exactly where they did before the crash. Replaying a
// log tail OVER a snapshot is exact on overlays where routing never
// samples ties (e.g. complete overlays within the flow quota), but on
// tie-heavy overlays the tail's inserts re-sample tie-breaks with a
// fresh RNG: the recovered placement is then a different — equally
// valid — MPIL outcome for those inserts, statistically identical for
// lookups. Deployments that require bit-exact recovery can set
// SnapshotEvery to 0 (snapshot only on graceful Close, replay the
// whole log after a crash).

// opKind tags one logged mutation.
type opKind uint8

// Logged operation kinds. opInsert/opDelete are routed operations
// re-executed through the engine on replay; opPut/opDrop are direct
// replica placements (cluster transfers, internal/p2p) that name the
// engine node explicitly.
const (
	opInsert opKind = 1
	opDelete opKind = 2
	opPut    opKind = 3
	opDrop   opKind = 4
)

// op record payload layout (inside one wal record):
//
//	| u16 shard | u8 kind | u32 origin | key[20] | rest |
//
// where rest is, per kind: opInsert — value bytes; opDelete — empty;
// opPut — u32 node | value bytes; opDrop — u32 node. Strict, canonical,
// never panics — the internal/wire discipline.
const opHdrLen = 2 + 1 + 4 + idspace.Bytes

// errOpRecord rejects malformed op payloads without allocating.
var errOpRecord = errors.New("discovery: malformed wal op record")

// appendOp encodes one mutation onto dst.
func appendOp(dst []byte, shard uint16, kind opKind, node, origin uint32, key ID, value []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, shard)
	dst = append(dst, byte(kind))
	dst = binary.BigEndian.AppendUint32(dst, origin)
	dst = append(dst, key[:]...)
	if kind == opPut || kind == opDrop {
		dst = binary.BigEndian.AppendUint32(dst, node)
	}
	return append(dst, value...)
}

// decodeOp parses one mutation payload. value aliases payload.
func decodeOp(payload []byte) (shard uint16, kind opKind, node, origin uint32, key ID, value []byte, err error) {
	if len(payload) < opHdrLen {
		return 0, 0, 0, 0, ID{}, nil, errOpRecord
	}
	shard = binary.BigEndian.Uint16(payload[0:2])
	kind = opKind(payload[2])
	origin = binary.BigEndian.Uint32(payload[3:7])
	copy(key[:], payload[7:7+idspace.Bytes])
	rest := payload[opHdrLen:]
	switch kind {
	case opInsert:
		value = rest
	case opDelete:
		if len(rest) != 0 {
			return 0, 0, 0, 0, ID{}, nil, errOpRecord
		}
	case opPut, opDrop:
		if len(rest) < 4 {
			return 0, 0, 0, 0, ID{}, nil, errOpRecord
		}
		node = binary.BigEndian.Uint32(rest[:4])
		rest = rest[4:]
		if kind == opPut {
			value = rest
		} else if len(rest) != 0 {
			return 0, 0, 0, 0, ID{}, nil, errOpRecord
		}
	default:
		return 0, 0, 0, 0, ID{}, nil, errOpRecord
	}
	return shard, kind, node, origin, key, value, nil
}

// FsyncPolicy re-exports the write-ahead log's durability policies under
// the package's public configuration surface.
type FsyncPolicy = wal.Policy

// Fsync policies for DurableConfig.Fsync.
const (
	// FsyncBatch group-commits: every acked mutation is fsynced, but
	// concurrent shard workers share fsyncs. The default.
	FsyncBatch = wal.SyncBatch
	// FsyncAlways issues a dedicated fsync per mutation.
	FsyncAlways = wal.SyncAlways
	// FsyncOff never fsyncs: mutations survive a process crash (they
	// reach the kernel before the ack) but not a power failure.
	FsyncOff = wal.SyncOff
)

// ParseFsyncPolicy parses "always", "batch" or "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return wal.ParsePolicy(s) }

// DurableConfig parameterizes OpenDurablePool.
type DurableConfig struct {
	// Dir is the data directory. Created if absent; reusing a directory
	// recovers the pool state persisted there (the MANIFEST must match).
	Dir string
	// Fsync selects when logged mutations are fsynced (default
	// FsyncBatch).
	Fsync FsyncPolicy
	// SnapshotEvery triggers a background snapshot of a shard after that
	// many logged mutations on it, which in turn lets the write-ahead
	// log be truncated. Zero snapshots only on Close.
	SnapshotEvery int
	// SegmentBytes is the log's segment rotation threshold (0 = the
	// wal package default, 64 MiB).
	SegmentBytes int64
	// Logf, when set, receives background snapshot errors and recovery
	// notes.
	Logf func(format string, args ...any)
	// WALSyncErr, when non-nil, is installed as the write-ahead log's
	// injectable fsync-failure hook (wal.Options.SyncErr): a non-nil
	// return is treated exactly like a failed fsync — the mutation that
	// hit it is never acked and the log poisons itself. Chaos-testing
	// hook; production leaves it nil.
	WALSyncErr func() error
}

// RecoveryStats reports what reopening a data directory recovered.
type RecoveryStats struct {
	// SnapshotEntries is the number of replicas restored from snapshots.
	SnapshotEntries int
	// Replayed is the number of write-ahead log records re-executed.
	Replayed int
	// Elapsed is the total recovery wall time.
	Elapsed time.Duration
}

// DurablePool is a Pool whose mutations survive restarts and crashes.
// Reads and writes go through the embedded Pool API; Close drains the
// background snapshotter, snapshots every shard, and closes the log.
type DurablePool struct {
	*Pool
	cfg DurableConfig
	log *wal.Log
	dsh []durableShard

	// snapMu guards snapSeq, the per-shard newest durable snapshot seq.
	snapMu  sync.Mutex
	snapSeq []uint64

	snapCh    chan int
	quit      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

// durableShard is one shard's logging state, guarded by the owning pool
// shard's mutex (the hook runs with it held).
type durableShard struct {
	buf         []byte   // op framing scratch
	offs        []int    // batch framing record boundaries in buf
	payloads    [][]byte // batch append argument scratch, aliasing buf
	seq         uint64   // seq of the shard's most recent logged mutation
	sinceSnap   int      // mutations since the last snapshot request
	snapPending bool     // a snapshot request is queued or running
}

// OpenDurablePool builds a Pool over ov backed by the data directory in
// cfg. A fresh directory starts empty; an existing one is recovered:
// each shard's newest snapshot is restored, then the write-ahead log is
// replayed over it. The pool parameters and overlay must match the ones
// the directory was created with (checked via MANIFEST).
func OpenDurablePool(ov Overlay, shards int, cfg DurableConfig, opts ...Option) (*DurablePool, RecoveryStats, error) {
	var stats RecoveryStats
	start := time.Now()
	if cfg.Dir == "" {
		return nil, stats, errors.New("discovery: DurableConfig.Dir is required")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	p, err := NewPool(ov, shards, opts...)
	if err != nil {
		return nil, stats, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, stats, err
	}
	if err := checkManifest(cfg.Dir, p); err != nil {
		return nil, stats, err
	}

	dp := &DurablePool{
		Pool:    p,
		cfg:     cfg,
		dsh:     make([]durableShard, p.NumShards()),
		snapSeq: make([]uint64, p.NumShards()),
		snapCh:  make(chan int, p.NumShards()),
		quit:    make(chan struct{}),
	}

	// Restore each shard's newest snapshot, in parallel: shards are
	// independent and snapshot decode dominates recovery on big states.
	errs := make([]error, p.NumShards())
	entryCounts := make([]int, p.NumShards())
	var rwg sync.WaitGroup
	for i := 0; i < p.NumShards(); i++ {
		rwg.Add(1)
		go func(i int) {
			defer rwg.Done()
			entries, seq, err := snapshot.Load(cfg.Dir, uint32(i))
			if err != nil {
				errs[i] = err
				return
			}
			if err := p.restoreShard(i, entries); err != nil {
				errs[i] = err
				return
			}
			dp.snapSeq[i] = seq
			dp.dsh[i].seq = seq
			entryCounts[i] = len(entries)
		}(i)
	}
	rwg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	minSnap, maxSnap := dp.snapSeq[0], dp.snapSeq[0]
	for _, s := range dp.snapSeq {
		if s < minSnap {
			minSnap = s
		}
		if s > maxSnap {
			maxSnap = s
		}
	}
	for _, n := range entryCounts {
		stats.SnapshotEntries += n
	}

	// The WAL shares the pool's metrics registry (NewPool guarantees one,
	// private unless WithMetrics supplied a shared registry), so wal.*
	// series land next to pool.* under one /metrics scrape.
	log, err := wal.Open(cfg.Dir, wal.Options{SegmentBytes: cfg.SegmentBytes, Sync: cfg.Fsync, Metrics: p.base.metrics, SyncErr: cfg.WALSyncErr})
	if err != nil {
		return nil, stats, err
	}
	dp.log = log

	// The log must reach back to every record the snapshots don't cover.
	// Two writer states are legitimate: running truncation keeps
	// first <= min(snapSeq)+1, and a graceful Close leaves an empty log
	// (first == next) after snapshotting every shard at its final seq.
	first, next := log.Bounds()
	if first > minSnap+1 && first != next {
		log.Close()
		return nil, stats, fmt.Errorf("discovery: %s: log starts at seq %d but a snapshot only covers through %d", cfg.Dir, first, minSnap)
	}
	// Sequence numbers never rewind: a snapshot at seq S implies the log
	// once reached S, so a log ending below S+1 has lost segments (e.g.
	// deleted files) and new appends would reuse seqs the snapshots
	// already pinned, to be silently skipped by the next recovery.
	if next < maxSnap+1 {
		log.Close()
		return nil, stats, fmt.Errorf("discovery: %s: log ends at seq %d but a snapshot covers through %d (missing segments?)", cfg.Dir, next, maxSnap)
	}
	from := minSnap + 1
	if from < first {
		from = first
	}
	err = log.Replay(from, func(seq uint64, payload []byte) error {
		shard, kind, node, origin, key, value, err := decodeOp(payload)
		if err != nil {
			return fmt.Errorf("record %d: %w", seq, err)
		}
		if int(shard) >= p.NumShards() {
			return fmt.Errorf("record %d: shard %d out of range", seq, shard)
		}
		if seq <= dp.snapSeq[shard] {
			return nil // already covered by that shard's snapshot
		}
		if kind == opInsert || kind == opPut {
			// The engine retains inserted values; the replay payload
			// buffer is reused per record.
			value = append([]byte(nil), value...)
		}
		if err := p.applyShard(int(shard), kind, node, origin, key, value); err != nil {
			return fmt.Errorf("record %d: %w", seq, err)
		}
		dp.dsh[shard].seq = seq
		stats.Replayed++
		return nil
	})
	if err != nil {
		log.Close()
		return nil, stats, fmt.Errorf("discovery: %s: replay: %w", cfg.Dir, err)
	}

	// Arm the write-ahead hooks and the background snapshotter.
	for i := range p.shards {
		p.shards[i].hook = dp.hookFor(i)
		p.shards[i].batch = dp.batchHookFor(i)
	}
	dp.wg.Add(1)
	go dp.snapLoop()

	stats.Elapsed = time.Since(start)
	return dp, stats, nil
}

// hookFor builds shard i's write-ahead hook. It runs with the shard's
// lock held: frame the op, append it to the shared log (blocking until
// durable per the fsync policy), and occasionally request a snapshot.
func (dp *DurablePool) hookFor(i int) mutationHook {
	ds := &dp.dsh[i]
	return func(kind opKind, node, origin uint32, key ID, value []byte) error {
		ds.buf = appendOp(ds.buf[:0], uint16(i), kind, node, origin, key, value)
		seq, err := dp.log.Append(ds.buf)
		if err != nil {
			return fmt.Errorf("discovery: wal append: %w", err)
		}
		ds.seq = seq
		ds.sinceSnap++
		if dp.cfg.SnapshotEvery > 0 && ds.sinceSnap >= dp.cfg.SnapshotEvery && !ds.snapPending {
			ds.snapPending = true
			select {
			case dp.snapCh <- i:
			default:
				ds.snapPending = false // snapshotter saturated; retry later
			}
		}
		return nil
	}
}

// batchHookFor builds shard i's batched write-ahead hook, the durable
// half of Pool.ExecBatch. It runs with the shard's lock held: frame
// every mutation of the batch into one flat buffer, append them to the
// shared log as ONE multi-record write covered by one fsync (which
// concurrent shards' batches share via group commit), and occasionally
// request a snapshot. Per-mutation durability cost divides by the
// batch's mutation count.
func (dp *DurablePool) batchHookFor(i int) batchHook {
	ds := &dp.dsh[i]
	return func(ops []BatchOp) error {
		// Frame into the flat buffer first, recording record boundaries:
		// the buffer may reallocate while growing, so the payload
		// subslices are cut only after framing finishes. A buffer grown
		// by one value-heavy batch is not retained forever (the wal
		// package applies the same cap to its own scratch).
		if cap(ds.buf) > 4<<20 {
			ds.buf = nil
		}
		ds.buf = ds.buf[:0]
		ds.offs = ds.offs[:0]
		for k := range ops {
			op := &ops[k]
			if op.Err != nil || op.skip {
				continue
			}
			var kind opKind
			var node uint32
			switch op.Kind {
			case BatchInsert:
				kind = opInsert
			case BatchDelete:
				kind = opDelete
			case BatchPut:
				kind = opPut
				node = uint32(op.Node)
			default:
				continue
			}
			value := op.Value
			if kind == opDelete {
				value = nil
			}
			ds.buf = appendOp(ds.buf, uint16(i), kind, node, uint32(op.Origin), op.Key, value)
			ds.offs = append(ds.offs, len(ds.buf))
		}
		if len(ds.offs) == 0 {
			return nil
		}
		ds.payloads = ds.payloads[:0]
		start := 0
		for _, end := range ds.offs {
			ds.payloads = append(ds.payloads, ds.buf[start:end])
			start = end
		}
		first, err := dp.log.AppendBatch(ds.payloads)
		if err != nil {
			return fmt.Errorf("discovery: wal batch append: %w", err)
		}
		n := len(ds.payloads)
		ds.seq = first + uint64(n) - 1
		ds.sinceSnap += n
		if dp.cfg.SnapshotEvery > 0 && ds.sinceSnap >= dp.cfg.SnapshotEvery && !ds.snapPending {
			ds.snapPending = true
			select {
			case dp.snapCh <- i:
			default:
				ds.snapPending = false // snapshotter saturated; retry later
			}
		}
		return nil
	}
}

// snapLoop runs snapshot requests until Close.
func (dp *DurablePool) snapLoop() {
	defer dp.wg.Done()
	for {
		select {
		case i := <-dp.snapCh:
			if err := dp.snapshotShard(i); err != nil {
				dp.cfg.Logf("discovery: snapshot shard %d: %v", i, err)
			}
		case <-dp.quit:
			return
		}
	}
}

// snapshotShard exports shard i's state under its lock, writes the
// snapshot outside it, garbage-collects older snapshots, and truncates
// the log below the minimum snapshot seq across shards.
func (dp *DurablePool) snapshotShard(i int) error {
	s := &dp.Pool.shards[i]
	ds := &dp.dsh[i]

	s.mu.Lock()
	entries := dp.Pool.exportShardLocked(i)
	seq := ds.seq
	ds.sinceSnap = 0
	s.mu.Unlock()

	err := snapshot.Write(dp.cfg.Dir, uint32(i), seq, entries)

	s.mu.Lock()
	ds.snapPending = false
	s.mu.Unlock()
	if err != nil {
		return err
	}

	dp.snapMu.Lock()
	if seq > dp.snapSeq[i] {
		dp.snapSeq[i] = seq
	}
	min := dp.snapSeq[0]
	for _, v := range dp.snapSeq {
		if v < min {
			min = v
		}
	}
	dp.snapMu.Unlock()

	if err := snapshot.GC(dp.cfg.Dir, uint32(i), seq); err != nil {
		return err
	}
	return dp.log.TruncateBefore(min + 1)
}

// Sync forces an fsync of the write-ahead log, regardless of policy.
// Under FsyncOff this is the only durability point besides Close.
func (dp *DurablePool) Sync() error { return dp.log.Sync() }

// Close stops the background snapshotter, snapshots every shard (so the
// next open replays nothing), truncates the log accordingly, and closes
// it. The caller must have stopped issuing mutations — in discoveryd,
// the server drains its shard queues first and then closes the store.
func (dp *DurablePool) Close() error {
	dp.closeOnce.Do(func() {
		close(dp.quit)
		dp.wg.Wait()
		failed := false
		for i := range dp.dsh {
			if err := dp.snapshotShard(i); err != nil {
				failed = true
				if dp.closeErr == nil {
					dp.closeErr = err
				}
			}
		}
		if !failed {
			// Mutations are quiesced and every shard just snapshotted at
			// its final seq, so the whole log is redundant: drop it all
			// and the next open replays (and scans) nothing.
			_, next := dp.log.Bounds()
			if err := dp.log.TruncateBefore(next); err != nil && dp.closeErr == nil {
				dp.closeErr = err
			}
		}
		if err := dp.log.Close(); err != nil && dp.closeErr == nil {
			dp.closeErr = err
		}
	})
	return dp.closeErr
}

// manifestName is the parameter-pinning file inside a data directory.
const manifestName = "MANIFEST"

// manifestFor renders the parameters that must match across opens of one
// data directory: logical replay is only valid against the same overlay,
// shard mapping, and engine configuration.
func manifestFor(p *Pool) string {
	c := p.base
	return fmt.Sprintf(
		"discovery-manifest v3\nshards %d\nseed %d\ndigitbits %d\nmaxflows %d\nreplicas %d\ndupsupp %t\nmaxhops %d\nregion %d/%d\nreplication %d\noverlay %016x\n",
		len(p.shards), c.seed, c.digitBits, c.maxFlows, c.perFlowReplicas, c.duplicateSuppression, c.maxHops,
		c.regionIndex, c.regionCount, c.replication,
		overlayFingerprint(p.ov),
	)
}

// v2ManifestFor renders the v2 manifest (pre-replication). A v2
// directory is semantically identical to v3 with replication 1, so
// unreplicated pools accept and upgrade it.
func v2ManifestFor(p *Pool) string {
	c := p.base
	return fmt.Sprintf(
		"discovery-manifest v2\nshards %d\nseed %d\ndigitbits %d\nmaxflows %d\nreplicas %d\ndupsupp %t\nmaxhops %d\nregion %d/%d\noverlay %016x\n",
		len(p.shards), c.seed, c.digitBits, c.maxFlows, c.perFlowReplicas, c.duplicateSuppression, c.maxHops,
		c.regionIndex, c.regionCount,
		overlayFingerprint(p.ov),
	)
}

// legacyManifestFor renders the v1 manifest (pre-region). A v1 directory
// is semantically identical to v2 with the unrestricted region 0/1, so
// unrestricted pools accept and upgrade it.
func legacyManifestFor(p *Pool) string {
	c := p.base
	return fmt.Sprintf(
		"discovery-manifest v1\nshards %d\nseed %d\ndigitbits %d\nmaxflows %d\nreplicas %d\ndupsupp %t\nmaxhops %d\noverlay %016x\n",
		len(p.shards), c.seed, c.digitBits, c.maxFlows, c.perFlowReplicas, c.duplicateSuppression, c.maxHops,
		overlayFingerprint(p.ov),
	)
}

// writeManifest atomically and durably writes the manifest file
// (tmp + fsync + rename + dirsync, the internal/snapshot discipline): a
// torn MANIFEST would refuse recovery of an intact data directory.
func writeManifest(path, content string) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(content); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return wal.SyncDir(filepath.Dir(path))
}

// checkManifest writes the manifest on first open and verifies it on
// later ones, refusing to recover state into a mismatched pool.
func checkManifest(dir string, p *Pool) error {
	want := manifestFor(p)
	path := filepath.Join(dir, manifestName)
	got, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return writeManifest(path, want)
	}
	if err != nil {
		return err
	}
	if string(got) == want {
		return nil
	}
	// Migrations: a v2 directory opened by an unreplicated pool
	// (replication 1, the only replication semantics v2 could have) is
	// compatible, as is a v1 directory opened by an unrestricted pool
	// (region 0/1). Upgrade the manifest in place.
	if p.base.replication == 1 && string(got) == v2ManifestFor(p) {
		return writeManifest(path, want)
	}
	if p.base.regionCount == 1 && p.base.replication == 1 && string(got) == legacyManifestFor(p) {
		return writeManifest(path, want)
	}
	return fmt.Errorf("discovery: %s was created with different parameters:\n--- stored\n%s--- this pool\n%s", dir, got, want)
}

// overlayFingerprint hashes the overlay's structure — node count, IDs,
// and neighbor lists — with FNV-1a, pinning a data directory to the
// overlay it was populated on.
func overlayFingerprint(ov Overlay) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xFF
			h *= prime64
		}
	}
	n := ov.N()
	mix(uint64(n))
	for i := 0; i < n; i++ {
		id := ov.ID(i)
		for _, b := range id {
			h ^= uint64(b)
			h *= prime64
		}
		nbs := ov.Neighbors(i)
		mix(uint64(len(nbs)))
		for _, nb := range nbs {
			mix(uint64(nb))
		}
	}
	return h
}
