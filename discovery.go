package discovery

import (
	"fmt"
	"math/rand"

	"discovery/internal/idspace"
	"discovery/internal/metrics"
	"discovery/internal/mpil"
)

// InsertResult reports what one insertion did: replicas stored, messages
// spent, flows created, duplicates seen, and copies lost to offline nodes.
type InsertResult = mpil.InsertStats

// LookupResult reports a lookup's outcome: whether a replica was found,
// the hop count of the first reply, traffic, flows, and drops.
type LookupResult = mpil.LookupStats

// Service is the discovery service: MPIL insert/lookup/delete over a
// caller-provided overlay. It is deterministic per seed and not safe for
// concurrent use; create one Service per goroutine (they may share an
// Overlay, which Service never mutates).
type Service struct {
	eng *mpil.Engine
}

// config collects option state before validation.
type config struct {
	digitBits            int
	maxFlows             int
	perFlowReplicas      int
	duplicateSuppression bool
	maxHops              int
	seed                 int64
	regionIndex          int
	regionCount          int
	replication          int
	metrics              *metrics.Registry
}

// WithMetrics registers the pool's per-shard operation counters in reg
// (under pool.ops{op=...,shard=...} and friends) instead of a private
// registry, so a process-wide registry — the daemon's /metrics endpoint
// — sees them. Pool.Stats reads the same counters either way; the wire
// TStatsOK reply and the exposition endpoint can never disagree.
func WithMetrics(reg *metrics.Registry) Option {
	return func(c *config) { c.metrics = reg }
}

// Option customizes a Service.
type Option func(*config)

// WithMaxFlows sets the flow quota each request carries (paper
// "max_flows"; default 10). Higher values buy robustness with traffic.
func WithMaxFlows(n int) Option { return func(c *config) { c.maxFlows = n } }

// WithPerFlowReplicas sets how many replicas each insertion flow stores
// and how many local maxima a lookup flow may pass (paper "num_replicas";
// default 5).
func WithPerFlowReplicas(n int) Option { return func(c *config) { c.perFlowReplicas = n } }

// WithDuplicateSuppression makes nodes silently discard request copies
// they have already seen. It saves traffic on stable overlays and costs
// robustness on changing ones (paper Section 6.2). Default off.
func WithDuplicateSuppression(on bool) Option {
	return func(c *config) { c.duplicateSuppression = on }
}

// WithDigitBits sets the routing metric's digit width in bits (1, 2, 4 or
// 8; default 4). Smaller digits produce more metric ties and therefore
// more redundant flows.
func WithDigitBits(b int) Option { return func(c *config) { c.digitBits = b } }

// WithMaxHops bounds any single flow's path length (default: node count).
func WithMaxHops(n int) Option { return func(c *config) { c.maxHops = n } }

// WithSeed fixes the tie-sampling RNG seed (default 1).
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithRegion declares that this pool owns region index of count
// contiguous keyspace regions (see OwnerOf). Mutations for keys outside
// the region are refused, and durable pools pin the region in their
// MANIFEST so a data directory cannot be recovered into a node that owns
// a different slice of the keyspace. The default (0 of 1) owns
// everything — the single-process deployment.
func WithRegion(index, count int) Option {
	return func(c *config) {
		c.regionIndex = index
		c.regionCount = count
	}
}

// WithReplication declares that each keyspace region lives on r of the
// cluster's nodes (see ReplicasOf): the pool accepts mutations for every
// key whose replica set contains its region index, not only keys it
// primarily owns. Durable pools pin r in their MANIFEST alongside the
// region, so a data directory cannot be recovered into a node with a
// different replica-set layout. The default (1) is the unreplicated
// layout: exactly one region accepts each key.
func WithReplication(r int) Option {
	return func(c *config) { c.replication = r }
}

// New builds a Service over the given overlay.
func New(ov Overlay, opts ...Option) (*Service, error) {
	if ov == nil {
		return nil, fmt.Errorf("discovery: nil overlay")
	}
	c := config{
		digitBits:       4,
		maxFlows:        10,
		perFlowReplicas: 5,
		seed:            1,
		regionCount:     1,
		replication:     1,
	}
	for _, opt := range opts {
		opt(&c)
	}
	if c.regionCount < 1 || c.regionIndex < 0 || c.regionIndex >= c.regionCount {
		return nil, fmt.Errorf("discovery: region %d of %d is not a valid ownership slice", c.regionIndex, c.regionCount)
	}
	if c.replication < 1 || c.replication > c.regionCount {
		return nil, fmt.Errorf("discovery: replication %d is not in [1, %d regions]", c.replication, c.regionCount)
	}
	space, err := idspace.NewSpace(c.digitBits)
	if err != nil {
		return nil, fmt.Errorf("discovery: %w", err)
	}
	eng, err := mpil.NewEngine(ov, mpil.Config{
		Space:                space,
		MaxFlows:             c.maxFlows,
		PerFlowReplicas:      c.perFlowReplicas,
		DuplicateSuppression: c.duplicateSuppression,
		MaxHops:              c.maxHops,
	}, rand.New(rand.NewSource(c.seed)))
	if err != nil {
		return nil, fmt.Errorf("discovery: %w", err)
	}
	return &Service{eng: eng}, nil
}

// Insert publishes an object pointer into the overlay from the given
// origin node. value is the opaque pointer payload (a location URL, a
// host:port, anything).
func (s *Service) Insert(origin int, key ID, value []byte) InsertResult {
	return s.eng.Insert(origin, key, value, 0)
}

// Lookup queries the overlay for key from the given origin node.
func (s *Service) Lookup(origin int, key ID) LookupResult {
	return s.eng.Lookup(origin, key, 0)
}

// Delete removes every replica of key owned by origin from online
// holders, returning how many replicas were removed. Only the inserting
// origin may delete its objects (paper Section 4.4).
func (s *Service) Delete(origin int, key ID) int {
	return s.eng.Delete(origin, key, 0)
}

// Holders returns the nodes currently storing key, ascending. It is a
// global-knowledge inspection helper for tests and tooling, not a routed
// operation.
func (s *Service) Holders(key ID) []int { return s.eng.HoldersOf(key) }

// Value returns the stored payload of key at node i, if present.
func (s *Service) Value(i int, key ID) ([]byte, bool) {
	r, ok := s.eng.Stored(i, key)
	return r.Value, ok
}

// ResetDuplicateState clears every node's seen-message memory. Call it
// between logically distinct phases if duplicate suppression is enabled
// and you re-issue identical workloads.
func (s *Service) ResetDuplicateState() { s.eng.ResetDuplicateState() }
