package discovery

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// These tests pin the region ownership contract cluster nodes rely on
// (internal/p2p, cmd/discoverynode): for any member count, every ID has
// exactly one owner, the mapping is a pure function of (key, count), and
// regions are contiguous in ID order. Any change here silently strands
// data on the wrong node, so the properties are pinned in the same
// hard-failure style as the seed-equivalence tests.

// idWithHi builds an ID whose top 64 bits are hi; the low 96 bits are
// filled from pad so keys inside one region still differ.
func idWithHi(hi uint64, pad byte) ID {
	var id ID
	binary.BigEndian.PutUint64(id[:8], hi)
	for i := 8; i < len(id); i++ {
		id[i] = pad
	}
	return id
}

func TestOwnerOfTotalAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]ID, 0, 2048)
	for i := 0; i < 2000; i++ {
		keys = append(keys, RandomID(rng))
	}
	// Adversarial keys: space extremes and bytes the hash would never
	// cluster.
	keys = append(keys,
		ID{},
		idWithHi(0, 0xFF),
		idWithHi(^uint64(0), 0x00),
		idWithHi(^uint64(0), 0xFF),
		idWithHi(1<<63, 0),
		idWithHi(1<<63-1, 0),
	)
	for n := 1; n <= 16; n++ {
		for _, key := range keys {
			got := OwnerOf(key, n)
			if got < 0 || got >= n {
				t.Fatalf("OwnerOf(%v, %d) = %d, outside [0,%d)", key, n, got, n)
			}
			if again := OwnerOf(key, n); again != got {
				t.Fatalf("OwnerOf(%v, %d) flapped: %d then %d", key, n, got, again)
			}
		}
	}
}

func TestOwnerOfRegionsAreContiguous(t *testing.T) {
	// Ownership must be monotone in the key's top 64 bits: if it ever
	// decreased, a region would be split into disjoint ranges.
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 16; n++ {
		prevHi, prevOwner := uint64(0), OwnerOf(idWithHi(0, 0), n)
		for i := 0; i < 4000; i++ {
			hi := rng.Uint64()
			owner := OwnerOf(idWithHi(hi, byte(i)), n)
			if (hi >= prevHi && owner < prevOwner) || (hi <= prevHi && owner > prevOwner) {
				t.Fatalf("n=%d: owner not monotone: hi %016x -> region %d, hi %016x -> region %d",
					n, prevHi, prevOwner, hi, owner)
			}
			prevHi, prevOwner = hi, owner
		}
	}
}

func TestRegionStartBoundaries(t *testing.T) {
	for n := 1; n <= 16; n++ {
		for i := 0; i < n; i++ {
			start := RegionStart(i, n)
			if got := OwnerOf(start, n); got != i {
				t.Fatalf("n=%d: OwnerOf(RegionStart(%d)) = %d", n, i, got)
			}
			if i == 0 {
				if start != (ID{}) {
					t.Fatalf("n=%d: RegionStart(0) = %v, want zero ID", n, start)
				}
				continue
			}
			// The ID immediately below a region start belongs to the
			// previous region: boundaries are exact, not approximate.
			hi := binary.BigEndian.Uint64(start[:8])
			below := idWithHi(hi-1, 0xFF)
			if got := OwnerOf(below, n); got != i-1 {
				t.Fatalf("n=%d: key just below RegionStart(%d) owned by %d, want %d", n, i, got, i-1)
			}
		}
	}
}

func TestOwnerOfBalance(t *testing.T) {
	// Near-equal regions: with uniform random keys no region should be
	// starved or doubled. SHA-1 output is uniform, so real keys match
	// this distribution.
	rng := rand.New(rand.NewSource(3))
	const samples = 40000
	for _, n := range []int{2, 3, 5, 8, 16} {
		counts := make([]int, n)
		for i := 0; i < samples; i++ {
			counts[OwnerOf(RandomID(rng), n)]++
		}
		want := float64(samples) / float64(n)
		for r, c := range counts {
			if float64(c) < 0.8*want || float64(c) > 1.2*want {
				t.Fatalf("n=%d: region %d holds %d of %d keys (want ~%.0f)", n, r, c, samples, want)
			}
		}
	}
}

func TestReplicasOfTotalAndDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	keys := make([]ID, 0, 1024)
	for i := 0; i < 1000; i++ {
		keys = append(keys, RandomID(rng))
	}
	keys = append(keys,
		ID{},
		idWithHi(0, 0xFF),
		idWithHi(^uint64(0), 0x00),
		idWithHi(^uint64(0), 0xFF),
		idWithHi(1<<63, 0),
		idWithHi(1<<63-1, 0),
	)
	for n := 1; n <= 8; n++ {
		for r := 1; r <= n+2; r++ {
			want := r
			if want > n {
				want = n
			}
			for _, key := range keys {
				set := ReplicasOf(key, n, r)
				if len(set) != want {
					t.Fatalf("ReplicasOf(%v, %d, %d) has %d members, want %d", key, n, r, len(set), want)
				}
				if set[0] != OwnerOf(key, n) {
					t.Fatalf("ReplicasOf(%v, %d, %d)[0] = %d, want owner %d", key, n, r, set[0], OwnerOf(key, n))
				}
				seen := make(map[int]bool, len(set))
				for i, idx := range set {
					if idx < 0 || idx >= n {
						t.Fatalf("ReplicasOf(%v, %d, %d)[%d] = %d, outside [0,%d)", key, n, r, i, idx, n)
					}
					if seen[idx] {
						t.Fatalf("ReplicasOf(%v, %d, %d) repeats region %d", key, n, r, idx)
					}
					seen[idx] = true
					// Successive ranks: the set is the owner plus the next
					// r-1 regions, wrapping — contiguous mod n.
					if wantIdx := (set[0] + i) % n; idx != wantIdx {
						t.Fatalf("ReplicasOf(%v, %d, %d)[%d] = %d, want rank %d", key, n, r, i, idx, wantIdx)
					}
				}
				again := ReplicasOf(key, n, r)
				for i := range set {
					if set[i] != again[i] {
						t.Fatalf("ReplicasOf(%v, %d, %d) flapped: %v then %v", key, n, r, set, again)
					}
				}
				// Replicates must agree with set membership for every index.
				for idx := 0; idx < n; idx++ {
					if got := Replicates(key, idx, n, r); got != seen[idx] {
						t.Fatalf("Replicates(%v, %d, %d, %d) = %t, set says %t", key, idx, n, r, got, seen[idx])
					}
				}
			}
		}
	}
}

func TestReplicasOfDegenerateInputs(t *testing.T) {
	key := NewID("edge")
	if set := ReplicasOf(key, 1, 3); len(set) != 1 || set[0] != 0 {
		t.Fatalf("single-region cluster: ReplicasOf = %v, want [0]", set)
	}
	if set := ReplicasOf(key, 3, 0); len(set) != 1 || set[0] != OwnerOf(key, 3) {
		t.Fatalf("r=0 clamps to 1: got %v", set)
	}
	if Replicates(key, -1, 3, 3) || Replicates(key, 3, 3, 3) {
		t.Fatal("out-of-range index must never replicate")
	}
}

func TestPoolRefusesForeignMutations(t *testing.T) {
	ov, err := CompleteOverlay(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(ov, 2, WithRegion(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	owned, foreign := ID{}, ID{}
	for i := 0; ; i++ {
		key := NewID(string(rune('a' + i)))
		if OwnerOf(key, 4) == 1 && owned == (ID{}) {
			owned = key
		}
		if OwnerOf(key, 4) != 1 && foreign == (ID{}) {
			foreign = key
		}
		if owned != (ID{}) && foreign != (ID{}) {
			break
		}
	}
	if _, err := p.Insert(0, owned, []byte("v")); err != nil {
		t.Fatalf("owned insert refused: %v", err)
	}
	if _, err := p.Insert(0, foreign, []byte("v")); err == nil {
		t.Fatal("foreign insert accepted; must be routed to its owner instead")
	}
	if _, err := p.Delete(0, foreign); err == nil {
		t.Fatal("foreign delete accepted")
	}
	if err := p.ImportReplica(0, 0, foreign, []byte("v")); err == nil {
		t.Fatal("foreign import accepted")
	}
	// Lookups are unrestricted (a stale router asking a non-owner is
	// answered honestly with not-found, never an error).
	if res := p.Lookup(0, foreign); res.Found {
		t.Fatal("foreign lookup found a replica in an empty pool")
	}
}
