package discovery

import (
	"fmt"
	"math/rand"
	"time"

	"discovery/internal/mpil"
	"discovery/internal/topology"
)

// Overlay is the view of the network a Service routes over: a node count,
// an ID per node, a neighbor list per node, and availability. MPIL asks
// nothing else of the overlay — that is the overlay-independence claim.
// Neighbor lists may be asymmetric (e.g. when adopting another protocol's
// routing state as the overlay).
type Overlay = mpil.Overlay

// StaticOverlay is a concrete Overlay backed by explicit adjacency lists
// with manually controllable per-node availability. It satisfies most
// embedding scenarios: hand the library your legacy overlay's neighbor
// lists and start inserting.
type StaticOverlay struct {
	ids       []ID
	neighbors [][]int
	offline   []bool
}

var _ Overlay = (*StaticOverlay)(nil)

// NewStaticOverlay builds an overlay from adjacency lists and explicit
// node IDs. Neighbor indices must be in range and IDs unique; lists are
// copied.
func NewStaticOverlay(neighbors [][]int, ids []ID) (*StaticOverlay, error) {
	n := len(neighbors)
	if len(ids) != n {
		return nil, fmt.Errorf("discovery: %d IDs for %d nodes", len(ids), n)
	}
	seen := make(map[ID]int, n)
	for i, id := range ids {
		if j, dup := seen[id]; dup {
			return nil, fmt.Errorf("discovery: nodes %d and %d share ID %v", j, i, id)
		}
		seen[id] = i
	}
	ov := &StaticOverlay{
		ids:       append([]ID(nil), ids...),
		neighbors: make([][]int, n),
		offline:   make([]bool, n),
	}
	for i, nb := range neighbors {
		for _, v := range nb {
			if v < 0 || v >= n {
				return nil, fmt.Errorf("discovery: node %d lists out-of-range neighbor %d", i, v)
			}
			if v == i {
				return nil, fmt.Errorf("discovery: node %d lists itself as neighbor", i)
			}
		}
		ov.neighbors[i] = append([]int(nil), nb...)
	}
	return ov, nil
}

// NewNamedOverlay builds an overlay from adjacency lists and node names,
// hashing each name into the ID space.
func NewNamedOverlay(neighbors [][]int, names []string) (*StaticOverlay, error) {
	ids := make([]ID, len(names))
	for i, name := range names {
		ids[i] = NewID(name)
	}
	return NewStaticOverlay(neighbors, ids)
}

// N returns the number of nodes.
func (o *StaticOverlay) N() int { return len(o.ids) }

// ID returns node i's identifier.
func (o *StaticOverlay) ID(i int) ID { return o.ids[i] }

// Neighbors returns node i's neighbor list. Callers must not mutate it.
func (o *StaticOverlay) Neighbors(i int) []int { return o.neighbors[i] }

// Online reports node i's availability (time is ignored; availability is
// whatever SetOnline last set).
func (o *StaticOverlay) Online(i int, _ time.Duration) bool { return !o.offline[i] }

// SetOnline marks node i online or offline. Offline nodes silently lose
// every message addressed to them — the paper's perturbation semantics.
func (o *StaticOverlay) SetOnline(i int, online bool) { o.offline[i] = !online }

// OnlineCount returns how many nodes are currently online.
func (o *StaticOverlay) OnlineCount() int {
	n := 0
	for _, off := range o.offline {
		if !off {
			n++
		}
	}
	return n
}

// fromGraph wraps a generated topology with random unique IDs.
func fromGraph(g *topology.Graph, rng *rand.Rand) *StaticOverlay {
	n := g.N()
	ov := &StaticOverlay{
		ids:       make([]ID, n),
		neighbors: make([][]int, n),
		offline:   make([]bool, n),
	}
	seen := make(map[ID]bool, n)
	for i := 0; i < n; i++ {
		for {
			id := RandomID(rng)
			if !seen[id] {
				seen[id] = true
				ov.ids[i] = id
				break
			}
		}
		ov.neighbors[i] = append([]int(nil), g.Neighbors(i)...)
	}
	return ov
}

// RandomOverlay generates a connected random regular overlay: n nodes,
// each with exactly degree neighbors, with random IDs. Deterministic per
// seed.
func RandomOverlay(n, degree int, seed int64) (*StaticOverlay, error) {
	rng := rand.New(rand.NewSource(seed))
	g, err := topology.RandomRegular(n, degree, rng)
	if err != nil {
		return nil, fmt.Errorf("discovery: %w", err)
	}
	return fromGraph(g, rng), nil
}

// PowerLawOverlay generates a connected Internet-like power-law overlay
// (degree exponent 2.2, minimum degree 2) with random IDs. Deterministic
// per seed.
func PowerLawOverlay(n int, seed int64) (*StaticOverlay, error) {
	rng := rand.New(rand.NewSource(seed))
	g, err := topology.PowerLaw(n, 2.2, 2, rng)
	if err != nil {
		return nil, fmt.Errorf("discovery: %w", err)
	}
	return fromGraph(g, rng), nil
}

// CompleteOverlay generates the complete graph on n nodes with random
// IDs. Deterministic per seed.
func CompleteOverlay(n int, seed int64) (*StaticOverlay, error) {
	if n < 1 {
		return nil, fmt.Errorf("discovery: need at least one node, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	return fromGraph(topology.Complete(n), rng), nil
}
