package discovery

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func newTestPool(t *testing.T, shards int, seed int64) *Pool {
	t.Helper()
	ov, err := RandomOverlay(600, 20, seed)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(ov, shards, WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolConcurrentInsertLookup(t *testing.T) {
	const keys, workers = 240, 8
	// A complete overlay makes lookup success structural rather than
	// statistical: every argmax node receives a flow (no RNG sampling
	// below the flow quota), so insert and lookup meet at the same local
	// maxima no matter how the concurrent schedule interleaves shards.
	// MaxHops is capped because on a complete overlay a flow that has
	// passed the argmax tier can never see another local maximum and
	// would otherwise wander for the default N hops.
	ov, err := CompleteOverlay(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(ov, 4, WithSeed(1), WithMaxHops(8))
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent inserts of distinct keys from many goroutines.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < keys; i += workers {
				key := NewID(fmt.Sprintf("key-%d", i))
				res, err := p.Insert(i%p.Overlay().N(), key, []byte(fmt.Sprintf("value-%d", i)))
				if err != nil {
					t.Errorf("key %d insert: %v", i, err)
				}
				if res.Replicas == 0 {
					t.Errorf("key %d stored no replicas", i)
				}
			}
		}(w)
	}
	wg.Wait()

	// Concurrent lookups: every inserted key must be findable, and the
	// stored payload must match at each reported holder.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < keys; i += workers {
				key := NewID(fmt.Sprintf("key-%d", i))
				res := p.Lookup((i*31)%p.Overlay().N(), key)
				if !res.Found {
					t.Errorf("key %d not found", i)
					continue
				}
				holders := p.Holders(key)
				if len(holders) == 0 {
					t.Errorf("key %d has no holders", i)
					continue
				}
				v, ok := p.Value(holders[0], key)
				if !ok || string(v) != fmt.Sprintf("value-%d", i) {
					t.Errorf("key %d holder payload = %q, %v", i, v, ok)
				}
			}
		}(w)
	}
	wg.Wait()

	st := p.Stats()
	if st.Inserts != keys || st.Lookups != keys {
		t.Fatalf("stats count inserts=%d lookups=%d, want %d each", st.Inserts, st.Lookups, keys)
	}
	if st.LookupsFound != keys {
		t.Fatalf("stats found=%d, want %d", st.LookupsFound, keys)
	}
	if len(st.PerShard) != 4 {
		t.Fatalf("per-shard stats: %d entries", len(st.PerShard))
	}
	var sum uint64
	for _, ss := range st.PerShard {
		sum += ss.Requests
	}
	if sum != st.Requests {
		t.Fatalf("per-shard requests sum %d != total %d", sum, st.Requests)
	}
}

// TestPoolDeterminism pins that a fixed seed and shard count reproduce
// identical per-operation results when each shard sees the same ops in
// the same order.
func TestPoolDeterminism(t *testing.T) {
	run := func() ([]InsertResult, []LookupResult) {
		p := newTestPool(t, 3, 7)
		var ins []InsertResult
		var lks []LookupResult
		for i := 0; i < 60; i++ {
			key := NewID(fmt.Sprintf("det-%d", i))
			res, err := p.Insert(i*7%p.Overlay().N(), key, []byte("v"))
			if err != nil {
				t.Fatal(err)
			}
			ins = append(ins, res)
		}
		for i := 0; i < 60; i++ {
			key := NewID(fmt.Sprintf("det-%d", i))
			lks = append(lks, p.Lookup(i*13%p.Overlay().N(), key))
		}
		return ins, lks
	}
	ins1, lks1 := run()
	ins2, lks2 := run()
	for i := range ins1 {
		if ins1[i] != ins2[i] {
			t.Fatalf("insert %d differs across runs: %+v vs %+v", i, ins1[i], ins2[i])
		}
	}
	for i := range lks1 {
		if lks1[i] != lks2[i] {
			t.Fatalf("lookup %d differs across runs: %+v vs %+v", i, lks1[i], lks2[i])
		}
	}
}

func TestPoolShardRoutingStable(t *testing.T) {
	p := newTestPool(t, 5, 1)
	for i := 0; i < 100; i++ {
		key := NewID(fmt.Sprintf("route-%d", i))
		s := p.ShardOf(key)
		if s < 0 || s >= p.NumShards() {
			t.Fatalf("shard %d out of range", s)
		}
		if again := p.ShardOf(key); again != s {
			t.Fatalf("shard mapping unstable: %d then %d", s, again)
		}
		o := p.AutoOrigin(key)
		if o < 0 || o >= p.Overlay().N() {
			t.Fatalf("auto origin %d out of range", o)
		}
	}
}

func TestPoolDelete(t *testing.T) {
	p := newTestPool(t, 2, 3)
	key := NewID("deletable")
	const origin = 17
	if res, err := p.Insert(origin, key, []byte("v")); err != nil || res.Replicas == 0 {
		t.Fatalf("insert stored nothing (err=%v)", err)
	}
	// A stranger may not delete someone else's object.
	if removed, err := p.Delete(origin+1, key); err != nil || removed != 0 {
		t.Fatalf("foreign delete removed %d replicas (err=%v)", removed, err)
	}
	if removed, err := p.Delete(origin, key); err != nil || removed == 0 {
		t.Fatalf("owner delete removed nothing (err=%v)", err)
	}
	if holders := p.Holders(key); len(holders) != 0 {
		t.Fatalf("holders after delete: %v", holders)
	}
}

func TestPoolDefaultsShardsToGOMAXPROCS(t *testing.T) {
	ov, err := RandomOverlay(100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(ov, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() < 1 {
		t.Fatalf("NumShards = %d", p.NumShards())
	}
}

// TestPoolForEachReplicaFromPaginates pins the pool-level cursor walk:
// stable (shard, node, key) order, exactly-once delivery across budgeted
// pages, and termination — the contract paginated peer repair builds on.
func TestPoolForEachReplicaFromPaginates(t *testing.T) {
	ov, err := CompleteOverlay(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(ov, 4, WithSeed(1), WithMaxHops(8))
	if err != nil {
		t.Fatal(err)
	}
	const replicas = 200
	type pos struct {
		node int
		key  ID
	}
	want := map[pos]bool{}
	for i := 0; i < replicas; i++ {
		key := NewID(fmt.Sprintf("page-%d", i))
		node := i % ov.N()
		if err := p.ImportReplica(node, uint32(i%ov.N()), key, []byte(fmt.Sprintf("v-%d", i))); err != nil {
			t.Fatal(err)
		}
		want[pos{node, key}] = true
	}

	for _, page := range []int{1, 7, 64, replicas + 10} {
		got := map[pos]bool{}
		var cur ReplicaCursor
		var last ReplicaCursor
		pages := 0
		for {
			if pages > replicas+1 {
				t.Fatalf("page size %d: pagination never terminated", page)
			}
			n := 0
			next, done := p.ForEachReplicaFrom(cur, func(node int, origin uint32, key ID, value []byte) bool {
				if n == page {
					return false
				}
				n++
				pp := pos{node, key}
				if got[pp] {
					t.Fatalf("page size %d: replica %v/%v delivered twice", page, node, key)
				}
				got[pp] = true
				return true
			})
			pages++
			if done {
				break
			}
			if next == last && n == 0 {
				t.Fatalf("page size %d: cursor made no progress", page)
			}
			cur, last = next, next
		}
		if len(got) != replicas {
			t.Fatalf("page size %d: visited %d replicas in %d pages, want %d", page, len(got), pages, replicas)
		}
		for pp := range want {
			if !got[pp] {
				t.Fatalf("page size %d: replica %v never visited", page, pp)
			}
		}
	}

	// The full-size page walks everything in one call and reports done.
	if _, done := p.ForEachReplicaFrom(ReplicaCursor{}, func(int, uint32, ID, []byte) bool { return true }); !done {
		t.Fatal("unbudgeted walk reported an early stop")
	}
}

// sameShardKeys returns n distinct keys that all map to shard 0 of p,
// generated deterministically from prefix.
func sameShardKeys(p *Pool, prefix string, n int) []ID {
	var keys []ID
	for i := 0; len(keys) < n; i++ {
		k := NewID(fmt.Sprintf("%s-%d", prefix, i))
		if p.ShardOf(k) == 0 {
			keys = append(keys, k)
		}
	}
	return keys
}

// TestPoolExecBatchMatchesSequential pins the batch execution contract:
// a batch is equivalent to issuing its ops back to back on the shard —
// same results, same stats, intra-batch read-your-writes included.
func TestPoolExecBatchMatchesSequential(t *testing.T) {
	ov, err := CompleteOverlay(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	newP := func() *Pool {
		p, err := NewPool(ov, 4, WithSeed(1), WithMaxHops(8))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	seq, bat := newP(), newP()
	keys := sameShardKeys(seq, "batch-eq", 30)

	var ops []BatchOp
	for i, k := range keys {
		ops = append(ops, BatchOp{Kind: BatchInsert, Origin: i % ov.N(), Key: k, Value: []byte(fmt.Sprintf("v-%d", i))})
	}
	for i, k := range keys {
		ops = append(ops, BatchOp{Kind: BatchLookup, Origin: (i * 31) % ov.N(), Key: k})
	}
	for i, k := range keys[:10] {
		ops = append(ops, BatchOp{Kind: BatchDelete, Origin: i % ov.N(), Key: k})
	}

	// The reference: the same op stream, one call at a time.
	want := make([]BatchOp, len(ops))
	copy(want, ops)
	for i := range want {
		op := &want[i]
		switch op.Kind {
		case BatchInsert:
			op.Insert, op.Err = seq.Insert(op.Origin, op.Key, op.Value)
		case BatchLookup:
			op.Lookup = seq.Lookup(op.Origin, op.Key)
		case BatchDelete:
			op.Removed, op.Err = seq.Delete(op.Origin, op.Key)
		}
		if op.Err != nil {
			t.Fatalf("sequential op %d: %v", i, op.Err)
		}
	}

	bat.ExecBatch(ops)
	for i := range ops {
		if ops[i].Err != nil {
			t.Fatalf("batched op %d: %v", i, ops[i].Err)
		}
		if ops[i].Insert != want[i].Insert || ops[i].Lookup != want[i].Lookup || ops[i].Removed != want[i].Removed {
			t.Fatalf("op %d differs batched vs sequential:\n %+v\n %+v", i, ops[i], want[i])
		}
		if ops[i].Kind == BatchLookup && !ops[i].Lookup.Found {
			t.Fatalf("op %d: intra-batch read-your-writes broken", i)
		}
	}
	if a, b := seq.Stats(), bat.Stats(); !reflect.DeepEqual(a, b) {
		t.Fatalf("stats differ batched vs sequential:\n %+v\n %+v", b, a)
	}
}

// TestPoolExecBatchRefusals: an op whose key maps to another shard, or
// whose mutation targets a foreign region, is refused individually while
// the rest of the batch executes — and foreign-region lookups still
// serve, matching Pool.Lookup.
func TestPoolExecBatchRefusals(t *testing.T) {
	ov, err := CompleteOverlay(128, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(ov, 4, WithSeed(1), WithMaxHops(8), WithRegion(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Hunt for: an owned key on shard 0, a foreign-region key on shard 0,
	// and any key on another shard.
	var owned, foreign, wrongShard ID
	var haveOwned, haveForeign, haveWrong bool
	for i := 0; !(haveOwned && haveForeign && haveWrong); i++ {
		k := NewID(fmt.Sprintf("refuse-%d", i))
		switch {
		case p.ShardOf(k) != 0:
			wrongShard, haveWrong = k, true
		case p.Owns(k) && !haveOwned:
			owned, haveOwned = k, true
		case !p.Owns(k) && !haveForeign:
			foreign, haveForeign = k, true
		}
	}
	ops := []BatchOp{
		{Kind: BatchInsert, Origin: 1, Key: owned, Value: []byte("v")},
		{Kind: BatchInsert, Origin: 1, Key: foreign, Value: []byte("v")},
		{Kind: BatchLookup, Origin: 1, Key: foreign},
		{Kind: BatchInsert, Origin: 1, Key: wrongShard, Value: []byte("v")},
		{Kind: BatchLookup, Origin: 2, Key: owned},
	}
	p.ExecBatch(ops)
	if ops[0].Err != nil {
		t.Fatalf("owned insert refused: %v", ops[0].Err)
	}
	if ops[1].Err == nil {
		t.Fatal("foreign-region insert accepted")
	}
	if ops[2].Err != nil {
		t.Fatalf("foreign-region lookup refused: %v", ops[2].Err)
	}
	if ops[2].Lookup.Found {
		t.Fatal("foreign lookup found a refused insert")
	}
	if ops[3].Err == nil {
		t.Fatal("wrong-shard insert accepted")
	}
	if ops[4].Err != nil || !ops[4].Lookup.Found {
		t.Fatalf("batch tail broken after refusals: err=%v found=%v", ops[4].Err, ops[4].Lookup.Found)
	}
}

// TestPoolForEachReplicaFromStopsEarly pins the early-stop guarantee
// behind budgeted repair: once the callback rejects a replica, the walk
// invokes it exactly zero more times — later replicas, nodes and shards
// are never visited (and their locks never taken).
func TestPoolForEachReplicaFromStopsEarly(t *testing.T) {
	ov, err := CompleteOverlay(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(ov, 4, WithSeed(1), WithMaxHops(8))
	if err != nil {
		t.Fatal(err)
	}
	const replicas = 500
	for i := 0; i < replicas; i++ {
		if err := p.ImportReplica(i%ov.N(), 0, NewID(fmt.Sprintf("early-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	const accept = 5
	calls := 0
	_, done := p.ForEachReplicaFrom(ReplicaCursor{}, func(int, uint32, ID, []byte) bool {
		calls++
		return calls <= accept
	})
	if done {
		t.Fatal("stopped walk reported done")
	}
	if calls != accept+1 {
		t.Fatalf("callback ran %d times after rejecting at %d; the walk did not stop", calls, accept+1)
	}
}

// TestPoolImportBatchMatchesPerEntry pins the equivalence that makes the
// batched transfer-apply path safe to substitute for the per-entry one:
// importing a batch produces exactly the state (same placements, same
// serialized bytes) that applying each entry through ImportReplica does,
// and per-entry refusals (foreign regions, out-of-range nodes) skip only
// themselves in both.
func TestPoolImportBatchMatchesPerEntry(t *testing.T) {
	ov, err := CompleteOverlay(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	newRegioned := func() *Pool {
		p, err := NewPool(ov, 4, WithSeed(1), WithMaxHops(8), WithRegion(1, 3))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	batched, perEntry := newRegioned(), newRegioned()

	var entries []ReplicaEntry
	owned, refused := 0, 0
	for i := 0; len(entries) < 200; i++ {
		e := ReplicaEntry{
			Node:   i % ov.N(),
			Origin: uint32(i % 7),
			Key:    NewID(fmt.Sprintf("import-batch-%d", i)),
			Value:  []byte(fmt.Sprintf("payload-%d", i)),
		}
		if batched.Owns(e.Key) {
			owned++
		} else {
			refused++
		}
		entries = append(entries, e)
	}
	// A duplicate placement (same node, same key, new value) must resolve
	// the same way in both paths, and an out-of-range node must be
	// refused without poisoning its neighbors.
	entries = append(entries, ReplicaEntry{Node: ov.N(), Origin: 0, Key: entries[0].Key, Value: []byte("bad-node")})
	refused++
	for i := 0; i < 10; i++ {
		if batched.Owns(entries[i].Key) {
			dup := entries[i]
			dup.Value = []byte("rewritten")
			entries = append(entries, dup)
			owned++
			break
		}
	}
	if owned == 0 || refused == 0 {
		t.Fatalf("test needs both owned (%d) and refused (%d) entries", owned, refused)
	}

	accepted, _, firstErr := batched.ImportBatch(entries)
	if accepted != owned {
		t.Fatalf("ImportBatch accepted %d entries, want %d (err %v)", accepted, owned, firstErr)
	}
	if firstErr == nil {
		t.Fatal("ImportBatch reported no error despite refused entries")
	}

	perAccepted := 0
	for _, e := range entries {
		if err := perEntry.ImportReplica(e.Node, e.Origin, e.Key, e.Value); err == nil {
			perAccepted++
		}
	}
	if perAccepted != owned {
		t.Fatalf("per-entry accepted %d, want %d", perAccepted, owned)
	}

	got, want := exportAll(batched), exportAll(perEntry)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("batched import state differs from per-entry state")
	}
}

// TestPoolImportBatchEmptyAndUnrestricted covers the trivial shapes: an
// empty batch is a no-op and an unrestricted pool accepts everything.
func TestPoolImportBatchEmptyAndUnrestricted(t *testing.T) {
	ov, err := CompleteOverlay(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(ov, 4, WithSeed(1), WithMaxHops(8))
	if err != nil {
		t.Fatal(err)
	}
	if n, _, err := p.ImportBatch(nil); n != 0 || err != nil {
		t.Fatalf("empty batch: %d %v", n, err)
	}
	var entries []ReplicaEntry
	for i := 0; i < 50; i++ {
		entries = append(entries, ReplicaEntry{
			Node: i % ov.N(), Origin: uint32(i), Key: NewID(fmt.Sprintf("unres-%d", i)), Value: []byte("v"),
		})
	}
	if n, _, err := p.ImportBatch(entries); n != len(entries) || err != nil {
		t.Fatalf("unrestricted batch: %d %v", n, err)
	}
	if got := p.ReplicaCount(); got != len(entries) {
		t.Fatalf("stored %d replicas, want %d", got, len(entries))
	}
}

// TestPoolImportBatchSkipsIdenticalReplays pins the convergence signal
// periodic anti-entropy runs on: re-importing entries the pool already
// holds byte-identically is accepted in full (a transfer sender may
// still drop its copies) but reports fresh == 0 and mutates nothing,
// while any entry that differs — and any entry shadowed by an earlier
// op of the same batch — still applies. Without the skip, every
// steady-state anti-entropy pass would re-log the entire keyspace.
func TestPoolImportBatchSkipsIdenticalReplays(t *testing.T) {
	ov, err := CompleteOverlay(64, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(ov, 4, WithSeed(1), WithMaxHops(8))
	if err != nil {
		t.Fatal(err)
	}
	var entries []ReplicaEntry
	for i := 0; i < 40; i++ {
		entries = append(entries, ReplicaEntry{
			Node: i % ov.N(), Origin: uint32(i % 5),
			Key: NewID(fmt.Sprintf("replay-%d", i)), Value: []byte(fmt.Sprintf("v-%d", i)),
		})
	}
	if accepted, fresh, err := p.ImportBatch(entries); err != nil || accepted != 40 || fresh != 40 {
		t.Fatalf("first import: accepted %d fresh %d err %v, want 40/40/nil", accepted, fresh, err)
	}
	want := exportAll(p)

	// Identical replay: fully accepted, zero fresh, state untouched.
	if accepted, fresh, err := p.ImportBatch(entries); err != nil || accepted != 40 || fresh != 0 {
		t.Fatalf("identical replay: accepted %d fresh %d err %v, want 40/0/nil", accepted, fresh, err)
	}
	if got := exportAll(p); !reflect.DeepEqual(got, want) {
		t.Fatal("identical replay mutated pool state")
	}

	// One changed value: exactly that entry is fresh, and it lands.
	entries[7].Value = []byte("changed")
	if accepted, fresh, err := p.ImportBatch(entries); err != nil || accepted != 40 || fresh != 1 {
		t.Fatalf("one-changed replay: accepted %d fresh %d err %v, want 40/1/nil", accepted, fresh, err)
	}
	if v, ok := p.Value(entries[7].Node, entries[7].Key); !ok || string(v) != "changed" {
		t.Fatalf("changed entry not applied: ok=%v v=%q", ok, v)
	}
	// Same bytes under a different origin are NOT identical: origin is
	// replica state too (heartbeat target), so the entry must re-apply.
	// (Entry 7's new value landed above, so it skips this time.)
	entries[3].Origin++
	if _, fresh, err := p.ImportBatch(entries); err != nil || fresh != 1 {
		t.Fatalf("origin-changed replay: fresh %d err %v, want exactly the origin change fresh", fresh, err)
	}

	// Intra-batch shadowing: with K already stored as v0, the batch
	// [put K v1, put K v0] must end at v0 (exact one-by-one
	// equivalence) — the second put matches pre-batch state but is
	// shadowed by the first, so it cannot be skipped.
	k := NewID("replay-shadow")
	if _, _, err := p.ImportBatch([]ReplicaEntry{{Node: 1, Origin: 2, Key: k, Value: []byte("v0")}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.ImportBatch([]ReplicaEntry{
		{Node: 1, Origin: 2, Key: k, Value: []byte("v1")},
		{Node: 1, Origin: 2, Key: k, Value: []byte("v0")},
	}); err != nil {
		t.Fatal(err)
	}
	if v, ok := p.Value(1, k); !ok || string(v) != "v0" {
		t.Fatalf("shadowed put skipped: ok=%v v=%q, want v0", ok, v)
	}
}
