package discovery

import (
	"fmt"
	"sync"
	"testing"
)

func newTestPool(t *testing.T, shards int, seed int64) *Pool {
	t.Helper()
	ov, err := RandomOverlay(600, 20, seed)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(ov, shards, WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPoolConcurrentInsertLookup(t *testing.T) {
	const keys, workers = 240, 8
	// A complete overlay makes lookup success structural rather than
	// statistical: every argmax node receives a flow (no RNG sampling
	// below the flow quota), so insert and lookup meet at the same local
	// maxima no matter how the concurrent schedule interleaves shards.
	// MaxHops is capped because on a complete overlay a flow that has
	// passed the argmax tier can never see another local maximum and
	// would otherwise wander for the default N hops.
	ov, err := CompleteOverlay(256, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(ov, 4, WithSeed(1), WithMaxHops(8))
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent inserts of distinct keys from many goroutines.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < keys; i += workers {
				key := NewID(fmt.Sprintf("key-%d", i))
				res, err := p.Insert(i%p.Overlay().N(), key, []byte(fmt.Sprintf("value-%d", i)))
				if err != nil {
					t.Errorf("key %d insert: %v", i, err)
				}
				if res.Replicas == 0 {
					t.Errorf("key %d stored no replicas", i)
				}
			}
		}(w)
	}
	wg.Wait()

	// Concurrent lookups: every inserted key must be findable, and the
	// stored payload must match at each reported holder.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < keys; i += workers {
				key := NewID(fmt.Sprintf("key-%d", i))
				res := p.Lookup((i*31)%p.Overlay().N(), key)
				if !res.Found {
					t.Errorf("key %d not found", i)
					continue
				}
				holders := p.Holders(key)
				if len(holders) == 0 {
					t.Errorf("key %d has no holders", i)
					continue
				}
				v, ok := p.Value(holders[0], key)
				if !ok || string(v) != fmt.Sprintf("value-%d", i) {
					t.Errorf("key %d holder payload = %q, %v", i, v, ok)
				}
			}
		}(w)
	}
	wg.Wait()

	st := p.Stats()
	if st.Inserts != keys || st.Lookups != keys {
		t.Fatalf("stats count inserts=%d lookups=%d, want %d each", st.Inserts, st.Lookups, keys)
	}
	if st.LookupsFound != keys {
		t.Fatalf("stats found=%d, want %d", st.LookupsFound, keys)
	}
	if len(st.PerShard) != 4 {
		t.Fatalf("per-shard stats: %d entries", len(st.PerShard))
	}
	var sum uint64
	for _, ss := range st.PerShard {
		sum += ss.Requests
	}
	if sum != st.Requests {
		t.Fatalf("per-shard requests sum %d != total %d", sum, st.Requests)
	}
}

// TestPoolDeterminism pins that a fixed seed and shard count reproduce
// identical per-operation results when each shard sees the same ops in
// the same order.
func TestPoolDeterminism(t *testing.T) {
	run := func() ([]InsertResult, []LookupResult) {
		p := newTestPool(t, 3, 7)
		var ins []InsertResult
		var lks []LookupResult
		for i := 0; i < 60; i++ {
			key := NewID(fmt.Sprintf("det-%d", i))
			res, err := p.Insert(i*7%p.Overlay().N(), key, []byte("v"))
			if err != nil {
				t.Fatal(err)
			}
			ins = append(ins, res)
		}
		for i := 0; i < 60; i++ {
			key := NewID(fmt.Sprintf("det-%d", i))
			lks = append(lks, p.Lookup(i*13%p.Overlay().N(), key))
		}
		return ins, lks
	}
	ins1, lks1 := run()
	ins2, lks2 := run()
	for i := range ins1 {
		if ins1[i] != ins2[i] {
			t.Fatalf("insert %d differs across runs: %+v vs %+v", i, ins1[i], ins2[i])
		}
	}
	for i := range lks1 {
		if lks1[i] != lks2[i] {
			t.Fatalf("lookup %d differs across runs: %+v vs %+v", i, lks1[i], lks2[i])
		}
	}
}

func TestPoolShardRoutingStable(t *testing.T) {
	p := newTestPool(t, 5, 1)
	for i := 0; i < 100; i++ {
		key := NewID(fmt.Sprintf("route-%d", i))
		s := p.ShardOf(key)
		if s < 0 || s >= p.NumShards() {
			t.Fatalf("shard %d out of range", s)
		}
		if again := p.ShardOf(key); again != s {
			t.Fatalf("shard mapping unstable: %d then %d", s, again)
		}
		o := p.AutoOrigin(key)
		if o < 0 || o >= p.Overlay().N() {
			t.Fatalf("auto origin %d out of range", o)
		}
	}
}

func TestPoolDelete(t *testing.T) {
	p := newTestPool(t, 2, 3)
	key := NewID("deletable")
	const origin = 17
	if res, err := p.Insert(origin, key, []byte("v")); err != nil || res.Replicas == 0 {
		t.Fatalf("insert stored nothing (err=%v)", err)
	}
	// A stranger may not delete someone else's object.
	if removed, err := p.Delete(origin+1, key); err != nil || removed != 0 {
		t.Fatalf("foreign delete removed %d replicas (err=%v)", removed, err)
	}
	if removed, err := p.Delete(origin, key); err != nil || removed == 0 {
		t.Fatalf("owner delete removed nothing (err=%v)", err)
	}
	if holders := p.Holders(key); len(holders) != 0 {
		t.Fatalf("holders after delete: %v", holders)
	}
}

func TestPoolDefaultsShardsToGOMAXPROCS(t *testing.T) {
	ov, err := RandomOverlay(100, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPool(ov, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() < 1 {
		t.Fatalf("NumShards = %d", p.NumShards())
	}
}
