package discovery

import (
	"math/rand"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	ov, err := RandomOverlay(400, 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(ov)
	if err != nil {
		t.Fatal(err)
	}
	key := NewID("my-object")
	ins := svc.Insert(0, key, []byte("http://host/object"))
	if ins.Replicas < 1 {
		t.Fatal("insert stored nothing")
	}
	res := svc.Lookup(ov.N()-1, key)
	if !res.Found {
		t.Fatal("lookup failed on a healthy overlay")
	}
	holders := svc.Holders(key)
	if len(holders) != ins.Replicas {
		t.Errorf("Holders reports %d, insert reported %d", len(holders), ins.Replicas)
	}
	val, ok := svc.Value(holders[0], key)
	if !ok || string(val) != "http://host/object" {
		t.Errorf("stored value = %q, %v", val, ok)
	}
}

func TestDeleteOwnership(t *testing.T) {
	ov, err := RandomOverlay(200, 10, 7)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(ov)
	if err != nil {
		t.Fatal(err)
	}
	key := NewID("owned")
	ins := svc.Insert(3, key, nil)
	if got := svc.Delete(4, key); got != 0 {
		t.Errorf("non-owner deleted %d replicas", got)
	}
	if got := svc.Delete(3, key); got != ins.Replicas {
		t.Errorf("owner deleted %d, want %d", got, ins.Replicas)
	}
	if res := svc.Lookup(9, key); res.Found {
		t.Error("key found after delete")
	}
}

func TestPerturbationResistanceEndToEnd(t *testing.T) {
	// The library's headline behavior: lookups keep succeeding when a
	// quarter of the overlay is unresponsive.
	ov, err := RandomOverlay(500, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(ov, WithMaxFlows(20), WithPerFlowReplicas(5))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	keys := make([]ID, 40)
	for i := range keys {
		keys[i] = RandomID(rng)
		svc.Insert(0, keys[i], nil)
	}
	// Perturb 25% of nodes (never the lookup origin).
	for i := 1; i < ov.N(); i += 4 {
		ov.SetOnline(i, false)
	}
	found := 0
	for _, key := range keys {
		if svc.Lookup(0, key).Found {
			found++
		}
	}
	// Fire-and-forget, single-shot lookups: with 25% of nodes deaf, a
	// non-redundant single-path protocol would succeed about
	// 0.75^(path+1) ~ 40% of the time; MPIL's multi-path redundancy
	// must clearly beat that.
	if found < len(keys)*6/10 {
		t.Errorf("success %d/%d with 25%% of nodes perturbed, want >= 60%%", found, len(keys))
	}
}

func TestOptionValidation(t *testing.T) {
	ov, err := RandomOverlay(20, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts []Option
	}{
		{"bad digit bits", []Option{WithDigitBits(3)}},
		{"zero max flows", []Option{WithMaxFlows(0)}},
		{"zero replicas", []Option{WithPerFlowReplicas(0)}},
		{"negative hops", []Option{WithMaxHops(-1)}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(ov, tt.opts...); err == nil {
				t.Error("invalid option accepted")
			}
		})
	}
	if _, err := New(nil); err == nil {
		t.Error("nil overlay accepted")
	}
}

func TestStaticOverlayValidation(t *testing.T) {
	ids := []ID{NewID("a"), NewID("b")}
	if _, err := NewStaticOverlay([][]int{{1}, {0}}, ids[:1]); err == nil {
		t.Error("ID/adjacency length mismatch accepted")
	}
	if _, err := NewStaticOverlay([][]int{{1}, {0}}, []ID{ids[0], ids[0]}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := NewStaticOverlay([][]int{{5}, {0}}, ids); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
	if _, err := NewStaticOverlay([][]int{{0}, {0}}, ids); err == nil {
		t.Error("self neighbor accepted")
	}
	ov, err := NewStaticOverlay([][]int{{1}, {0}}, ids)
	if err != nil {
		t.Fatal(err)
	}
	if ov.N() != 2 || ov.ID(0) != ids[0] {
		t.Error("overlay state wrong")
	}
}

func TestNamedOverlay(t *testing.T) {
	ov, err := NewNamedOverlay([][]int{{1}, {0}}, []string{"alice:9000", "bob:9000"})
	if err != nil {
		t.Fatal(err)
	}
	if ov.ID(0) != NewID("alice:9000") {
		t.Error("name not hashed into ID")
	}
}

func TestSetOnline(t *testing.T) {
	ov, err := RandomOverlay(50, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ov.OnlineCount() != 50 {
		t.Fatalf("OnlineCount = %d, want 50", ov.OnlineCount())
	}
	ov.SetOnline(7, false)
	if ov.Online(7, 0) {
		t.Error("node 7 still online")
	}
	if ov.OnlineCount() != 49 {
		t.Errorf("OnlineCount = %d, want 49", ov.OnlineCount())
	}
	ov.SetOnline(7, true)
	if !ov.Online(7, 0) {
		t.Error("node 7 not restored")
	}
}

func TestOverlayGenerators(t *testing.T) {
	pl, err := PowerLawOverlay(300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if pl.N() != 300 {
		t.Errorf("PowerLawOverlay N = %d", pl.N())
	}
	k, err := CompleteOverlay(30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(k.Neighbors(0)); got != 29 {
		t.Errorf("CompleteOverlay degree = %d, want 29", got)
	}
	if _, err := CompleteOverlay(0, 1); err == nil {
		t.Error("empty complete overlay accepted")
	}
	if _, err := RandomOverlay(10, 11, 1); err == nil {
		t.Error("impossible degree accepted")
	}
}

func TestDeterministicService(t *testing.T) {
	run := func() []int {
		ov, err := RandomOverlay(200, 10, 9)
		if err != nil {
			t.Fatal(err)
		}
		svc, err := New(ov, WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		svc.Insert(0, NewID("det"), nil)
		return svc.Holders(NewID("det"))
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic holder count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic holders")
		}
	}
}

func TestIDHelpers(t *testing.T) {
	id := NewID("x")
	parsed, err := ParseID(id.Hex())
	if err != nil || parsed != id {
		t.Errorf("ParseID round trip failed: %v", err)
	}
	if _, err := ParseID("nope"); err == nil {
		t.Error("bad hex accepted")
	}
}
