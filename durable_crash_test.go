package discovery

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// importCrashDirEnv hands the child process its data directory; the
// child half of TestImportBatchCrashNoTornBatch runs only when it is
// set.
const importCrashDirEnv = "DISCOVERY_IMPORT_CRASH_DIR"

// importCrashBatch is the entry count per ImportBatch in the crash test.
const importCrashBatch = 32

// importCrashEntries derives batch n's entries. Parent and child build
// them from the same pure function, so the parent can verify recovered
// state without any channel besides the acked batch numbers.
func importCrashEntries(n, overlayN int) []ReplicaEntry {
	entries := make([]ReplicaEntry, importCrashBatch)
	for i := range entries {
		entries[i] = ReplicaEntry{
			Node:   (n + i) % overlayN,
			Origin: uint32(i % 7),
			Key:    NewID(fmt.Sprintf("xfer-crash-%d-%d", n, i)),
			Value:  []byte(fmt.Sprintf("payload-%d-%d", n, i)),
		}
	}
	return entries
}

// TestImportBatchCrashChild is the re-exec child: it opens the durable
// pool named by the environment and applies ImportBatch batches forever,
// announcing each acked batch on stdout, until the parent SIGKILLs it.
// Without the environment variable it is skipped (the normal test run).
func TestImportBatchCrashChild(t *testing.T) {
	dir := os.Getenv(importCrashDirEnv)
	if dir == "" {
		t.Skip("not a crash-test child")
	}
	ov := newDurableTestOverlay(t)
	dp, _ := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})
	for n := 0; ; n++ {
		entries := importCrashEntries(n, ov.N())
		accepted, _, err := dp.ImportBatch(entries)
		if err != nil || accepted != len(entries) {
			t.Fatalf("batch %d: accepted %d, err %v", n, accepted, err)
		}
		// An acked batch is durable by contract (FsyncBatch): announce it
		// only after ImportBatch returned. Direct write, no buffering — a
		// kill must not be able to eat an announcement that was sent.
		fmt.Printf("ACKED %d\n", n)
	}
}

// TestImportBatchCrashNoTornBatch SIGKILLs a process mid-transfer-stream
// and proves no torn batch was acked: for every batch the child
// announced before dying, ALL of its entries are recovered as the exact
// direct placements they were. A batch in flight at the kill may land
// fully, partially, or not at all — it was never acked, so no contract
// covers it — but an acked one may not be missing a single entry.
func TestImportBatchCrashNoTornBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec crash test")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestImportBatchCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(), importCrashDirEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var acked []int
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "ACKED ") {
				continue // test-framework chatter
			}
			n, err := strconv.Atoi(strings.TrimPrefix(line, "ACKED "))
			if err != nil {
				continue
			}
			mu.Lock()
			acked = append(acked, n)
			mu.Unlock()
		}
	}()

	const killAfterBatches = 25
	deadline := time.Now().Add(60 * time.Second)
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= killAfterBatches {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("only %d acked batches after 60s", n)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL mid-stream
		t.Fatal(err)
	}
	cmd.Wait() //nolint:errcheck // killed on purpose
	<-scanDone

	ov := newDurableTestOverlay(t)
	dp, stats := openDurable(t, ov, dir, DurableConfig{Fsync: FsyncBatch})
	defer dp.Close()

	mu.Lock()
	defer mu.Unlock()
	torn := 0
	for _, n := range acked {
		missing := 0
		for _, e := range importCrashEntries(n, ov.N()) {
			if v, ok := dp.Value(e.Node, e.Key); !ok || string(v) != string(e.Value) {
				missing++
			}
		}
		if missing > 0 {
			torn++
			t.Errorf("acked batch %d recovered torn: %d of %d entries missing", n, missing, importCrashBatch)
		}
	}
	t.Logf("verified %d acked batches intact after SIGKILL (%d torn, replayed %d records)", len(acked), torn, stats.Replayed)
	if len(acked) < killAfterBatches {
		t.Fatalf("thin coverage: only %d acked batches verified", len(acked))
	}
}
