// Command topogen generates the overlay families used by the experiments
// and prints either summary statistics or an edge list, so overlays can be
// inspected or exported to external tools.
//
// Example:
//
//	topogen -topology powerlaw -nodes 4000 -format stats
//	topogen -topology random -nodes 1000 -degree 100 -format edges > g.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"discovery/internal/metrics"
	"discovery/internal/topology"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		topo   = flag.String("topology", "powerlaw", "family: random, powerlaw, ba, complete, ring, grid, er")
		nodes  = flag.Int("nodes", 1000, "node count")
		degree = flag.Int("degree", 20, "degree for random; m for ba; cols for grid")
		gamma  = flag.Float64("gamma", 2.2, "power-law exponent")
		p      = flag.Float64("p", 0.01, "edge probability for er")
		format = flag.String("format", "stats", "output: stats, edges, histogram")
		seed   = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *topology.Graph
	var err error
	switch *topo {
	case "random":
		g, err = topology.RandomRegular(*nodes, *degree, rng)
	case "powerlaw":
		g, err = topology.PowerLaw(*nodes, *gamma, 2, rng)
	case "ba":
		g, err = topology.BarabasiAlbert(*nodes, *degree, rng)
	case "complete":
		g = topology.Complete(*nodes)
	case "ring":
		g = topology.Ring(*nodes)
	case "grid":
		g = topology.Grid(*nodes / *degree, *degree)
	case "er":
		g, err = topology.ErdosRenyi(*nodes, *p, rng)
	default:
		err = fmt.Errorf("unknown topology %q", *topo)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		return 1
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	switch *format {
	case "stats":
		fmt.Fprintf(w, "topology: %s\nnodes: %d\nedges: %d\nmin degree: %d\nmax degree: %d\navg degree: %.2f\nconnected: %v\n",
			*topo, g.N(), g.M(), g.MinDegree(), g.MaxDegree(), g.AvgDegree(), g.IsConnected())
	case "edges":
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				if u < v {
					fmt.Fprintf(w, "%d %d\n", u, v)
				}
			}
		}
	case "histogram":
		h := g.DegreeHistogram()
		degrees := make([]int, 0, len(h))
		for d := range h {
			degrees = append(degrees, d)
		}
		sort.Ints(degrees)
		tb := metrics.NewTable("degree", "count")
		for _, d := range degrees {
			tb.AddRow(d, h[d])
		}
		fmt.Fprint(w, tb)
	default:
		fmt.Fprintln(os.Stderr, "topogen: unknown format", *format)
		return 2
	}
	return 0
}
