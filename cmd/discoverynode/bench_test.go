package main

import (
	"fmt"
	"sort"
	"strconv"
	"syscall"
	"testing"

	discovery "discovery"
	"discovery/internal/cluster"
)

// BenchmarkClusterDurableMixed measures the replication tax end to end:
// a live 3-node cluster (real processes, WAL-durable with batched
// fsync), driven by the cluster-smart client with an alternating
// insert/lookup mix, once at -replication 1 (single-owner, the
// pre-replication wire shape) and once at -replication 3 (quorum-2
// writes fanned to co-replicas). The delta between the two sub-
// benchmarks is what a write pays for surviving any single node:
// reads route to the owner either way and should barely move.
func BenchmarkClusterDurableMixed(b *testing.B) {
	bin := buildNode(b)
	for _, r := range []int{1, 3} {
		b.Run(fmt.Sprintf("replication=%d", r), func(b *testing.B) {
			peerAddrs := reservePeerAddrs(b, 3)
			sorted := append([]string(nil), peerAddrs...)
			sort.Strings(sorted)
			regionOf := make(map[string]int, 3)
			for reg, a := range sorted {
				regionOf[a] = reg
			}
			procs := make([]*nodeProc, 3)
			for i := range procs {
				procs[i] = startNode(b, bin, peerAddrs[i], peerAddrs, b.TempDir(),
					"-replication", strconv.Itoa(r))
			}
			cc, err := cluster.Dial(cluster.Config{
				Seeds: []string{procs[0].clientAddr, procs[1].clientAddr, procs[2].clientAddr},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cc.Close()
			for i := range procs {
				waitMemberSlot(b, cc, regionOf[peerAddrs[i]], procs[i].clientAddr)
			}
			// Warm the per-node connections so the first timed op is not a
			// dial.
			for i := 0; i < 30; i++ {
				name := fmt.Sprintf("bench-warm-%d", i)
				if _, err := cc.Insert(cluster.OriginAuto, discovery.NewID(name), []byte(name)); err != nil {
					b.Fatal(err)
				}
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				name := fmt.Sprintf("bench-key-%d", i/2)
				key := discovery.NewID(name)
				if i%2 == 0 {
					if _, err := cc.Insert(cluster.OriginAuto, key, []byte(name)); err != nil {
						b.Fatalf("insert %s: %v", name, err)
					}
				} else {
					res, err := cc.Lookup(cluster.OriginAuto, key)
					if err != nil {
						b.Fatalf("lookup %s: %v", name, err)
					}
					if !res.Found {
						b.Fatalf("acked key %s not found", name)
					}
				}
			}
			b.StopTimer()
			for _, p := range procs {
				p.cmd.Process.Signal(syscall.SIGTERM) //nolint:errcheck
				p.cmd.Wait()                          //nolint:errcheck
			}
		})
	}
}
