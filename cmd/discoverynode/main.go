// Command discoverynode runs one member of a discovery cluster: separate
// processes, each owning a contiguous region of the 160-bit keyspace,
// exchanging internal/wire peer frames over TCP (internal/p2p).
//
// Example — a three-node cluster on one host:
//
//	discoverynode -listen :7800 -peer-listen 127.0.0.1:7900 \
//	    -bootstrap 127.0.0.1:7900,127.0.0.1:7901,127.0.0.1:7902 \
//	    -data-dir /var/lib/discovery/n0
//	discoverynode -listen :7801 -peer-listen 127.0.0.1:7901 \
//	    -bootstrap 127.0.0.1:7900,127.0.0.1:7901,127.0.0.1:7902 \
//	    -data-dir /var/lib/discovery/n1
//	discoverynode -listen :7802 -peer-listen 127.0.0.1:7902 \
//	    -bootstrap 127.0.0.1:7900,127.0.0.1:7901,127.0.0.1:7902 \
//	    -data-dir /var/lib/discovery/n2
//
// Membership is the sorted, deduplicated bootstrap set (every node must
// be configured with the same spellings); a node's rank in that order is
// its keyspace region. Clients may connect to any node's -listen
// address with the ordinary client protocol: requests for keys the node
// replicates execute locally, everything else is relayed to a replica
// and the reply relayed back.
//
// Each key lives on -replication consecutive regions (default 3,
// clamped to the member count; every member must agree). Mutations ack
// only after a quorum of replicas — ⌈(R+1)/2⌉ — has committed, and
// reads fail over: with any single node down, every region keeps
// serving reads and quorum writes. Only when every replica of a region
// is unreachable do requests for its keys fail with an explicit error
// while all other regions keep serving. With -replication 1 a region is
// down whenever its one owner is. A node restarted on its -data-dir
// recovers every acknowledged mutation for its regions and resumes
// serving them.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	discovery "discovery"
	"discovery/internal/metrics"
	"discovery/internal/p2p"
	"discovery/internal/server"
	"discovery/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen      = flag.String("listen", ":7800", "client TCP listen address")
		peerListen  = flag.String("peer-listen", "127.0.0.1:7900", "peer TCP listen address (must be reachable by every member)")
		advertise   = flag.String("advertise", "", "peer address other members know this node by (default: -peer-listen)")
		advClient   = flag.String("advertise-client", "", "client address gossiped to peers for cluster-smart clients (default: the bound -listen address; \"none\" withholds it)")
		bootstrap   = flag.String("bootstrap", "", "comma-separated peer addresses of every cluster member (self may be included)")
		replication = flag.Int("replication", 3, "regions holding each key (clamped to member count; every member must agree)")
		joinTimeout = flag.Duration("join-timeout", 10*time.Second, "how long to retry the initial peer probes")
		dialTimeout = flag.Duration("dial-timeout", p2p.DefaultDialTimeout, "peer dial timeout")
		callTimeout = flag.Duration("call-timeout", p2p.DefaultCallTimeout, "peer request timeout")
		redialWait  = flag.Duration("redial-backoff", p2p.DefaultRedialBackoff, "fail-fast window after a timed-out peer dial (shorten for fast post-partition recovery, lengthen on flaky WANs)")
		peerVia     = flag.String("peer-via", "", "comma-separated peer=dialaddr pairs rewriting where peer connections are dialed (fault-injection proxies, NAT hops); membership identity stays on the real addresses")
		antiEntropy = flag.Bool("anti-entropy", true, "after joining, hand off foreign replicas and pull this region's replicas from peers")
		aeEvery     = flag.Duration("anti-entropy-every", 0, "re-run anti-entropy on this interval so healed partitions re-converge without a restart (0 = once after join only)")
		chaosFsync  = flag.Bool("chaos-fsync-fail", false, "chaos hook: SIGUSR1 permanently arms injected fsync failures on the WAL append path (requires -data-dir)")
		probeEvery  = flag.Duration("probe-interval", 2*time.Second, "background peer health probe interval (0 = lazy health only)")
		shards      = flag.Int("shards", 0, "engine shards (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 128, "per-shard request queue depth")
		batch       = flag.Int("batch", 64, "max requests one shard worker executes per batch (shared WAL commit)")
		coFrames    = flag.Int("coalesce-frames", 64, "max response frames per vectored write")
		coBytes     = flag.Int("coalesce-bytes", 256<<10, "approximate max bytes per vectored write")
		seed        = flag.Int64("seed", 1, "base engine seed (shard i uses seed+i)")
		maxFlows    = flag.Int("maxflows", 10, "max_flows per request")
		replicas    = flag.Int("replicas", 5, "per-flow replicas")
		digitB      = flag.Int("b", 4, "digit width in bits (1, 2, 4, 8)")
		ds          = flag.Bool("ds", false, "duplicate suppression")
		maxHops     = flag.Int("maxhops", 0, "per-flow hop bound (0 = member count)")
		dataDir     = flag.String("data-dir", "", "durable storage directory (empty = in-memory only)")
		fsync       = flag.String("fsync", "batch", "wal fsync policy: always, batch, off")
		snapEvery   = flag.Int("snapshot-every", 10000, "snapshot a shard after N logged mutations (0 = only on shutdown)")
		metricsAddr = flag.String("metrics-listen", "", "HTTP listen address serving /metrics (Prometheus text), /debug/pprof, /debug/vars and /debug/traces (empty = disabled)")
		traceSample = flag.Int("trace-sample", 0, "trace 1 in N direct client requests (0 = tracing off); routed requests inherit the sender's decision")
		traceSlow   = flag.Duration("trace-slow", 0, "log a rate-limited span breakdown for keyed requests slower than this (0 = off; requires -trace-sample)")
	)
	flag.Parse()

	self := *advertise
	if self == "" {
		self = *peerListen
	}
	var peers []string
	for _, a := range strings.Split(*bootstrap, ",") {
		if a = strings.TrimSpace(a); a != "" {
			peers = append(peers, a)
		}
	}
	cluster, err := p2p.NewCluster(self, peers, *replication)
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoverynode:", err)
		return 2
	}
	dialVia := map[string]string{}
	if *peerVia != "" {
		for _, pair := range strings.Split(*peerVia, ",") {
			peer, via, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || peer == "" || via == "" {
				fmt.Fprintf(os.Stderr, "discoverynode: -peer-via: bad pair %q (want peer=dialaddr)\n", pair)
				return 2
			}
			dialVia[peer] = via
		}
	}
	ov, err := p2p.NewRemoteOverlay(cluster)
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoverynode:", err)
		return 2
	}
	log.Printf("discoverynode: region %d of %d, replication %d (quorum %d), members %v (fingerprint %016x)",
		cluster.Self(), cluster.N(), cluster.R(), cluster.Quorum(), cluster.Addrs(), cluster.Hash())

	// One process-wide registry: pool, WAL, server, and p2p layers all
	// register into it, so TStats and a /metrics scrape read the same
	// atomics and can never disagree.
	reg := metrics.NewRegistry()

	// One process-wide tracer, shared by the serving layer (sampling +
	// local spans) and the p2p layer (peer hops, responder spans). The
	// node index stamps every span, so joined cross-process traces show
	// which member did what.
	var tracer *trace.Tracer
	if *traceSample > 0 {
		tracer = trace.New(trace.Config{Node: uint32(cluster.Self()), SampleEvery: *traceSample})
	}

	opts := []discovery.Option{
		discovery.WithMetrics(reg),
		discovery.WithSeed(*seed),
		discovery.WithMaxFlows(*maxFlows),
		discovery.WithPerFlowReplicas(*replicas),
		discovery.WithDigitBits(*digitB),
		discovery.WithDuplicateSuppression(*ds),
		discovery.WithRegion(cluster.Self(), cluster.N()),
		discovery.WithReplication(cluster.R()),
	}
	if *maxHops > 0 {
		opts = append(opts, discovery.WithMaxHops(*maxHops))
	}

	// Chaos fsync injection: inert until SIGUSR1 arms it, then every
	// append-path fsync fails permanently — the WAL poisons itself and
	// the node keeps serving reads while refusing further mutations.
	var fsyncFailArmed atomic.Bool
	if *chaosFsync {
		if *dataDir == "" {
			log.Printf("discoverynode: -chaos-fsync-fail ignored without -data-dir")
		} else {
			armCh := make(chan os.Signal, 1)
			signal.Notify(armCh, syscall.SIGUSR1)
			go func() {
				<-armCh
				fsyncFailArmed.Store(true)
				log.Printf("discoverynode: chaos: fsync failures armed by SIGUSR1")
			}()
		}
	}

	var pool *discovery.Pool
	var store io.Closer
	if *dataDir != "" {
		policy, err := discovery.ParseFsyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "discoverynode:", err)
			return 2
		}
		dcfg := discovery.DurableConfig{
			Dir:           *dataDir,
			Fsync:         policy,
			SnapshotEvery: *snapEvery,
			Logf:          log.Printf,
		}
		if *chaosFsync {
			dcfg.WALSyncErr = func() error {
				if fsyncFailArmed.Load() {
					return errors.New("chaos: injected fsync failure")
				}
				return nil
			}
		}
		dp, rec, err := discovery.OpenDurablePool(ov, *shards, dcfg, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "discoverynode:", err)
			return 2
		}
		pool, store = dp.Pool, dp
		log.Printf("discoverynode: recovered %s: %d snapshot entries, %d wal records replayed in %s",
			*dataDir, rec.SnapshotEntries, rec.Replayed, rec.Elapsed.Round(time.Millisecond))
		reg.Gauge("recovery.snapshot_entries").Set(int64(rec.SnapshotEntries))
		reg.Gauge("recovery.wal_records_replayed").Set(int64(rec.Replayed))
		reg.Gauge("recovery.millis").Set(rec.Elapsed.Milliseconds())
	} else {
		pool, err = discovery.NewPool(ov, *shards, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "discoverynode:", err)
			return 2
		}
	}

	node, err := p2p.NewNode(p2p.Config{
		Cluster:       cluster,
		Overlay:       ov,
		Pool:          pool,
		DialTimeout:   *dialTimeout,
		CallTimeout:   *callTimeout,
		RedialBackoff: *redialWait,
		DialVia:       dialVia,
		ProbeInterval: *probeEvery,
		Logf:          log.Printf,
		Metrics:       reg,
		Tracer:        tracer,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoverynode:", err)
		return 2
	}
	peerAddr, err := node.Start(*peerListen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoverynode:", err)
		return 1
	}
	log.Printf("discoverynode: peer listener on %s", peerAddr)

	srvCfg := server.Config{
		Pool:           pool,
		QueueDepth:     *queue,
		MaxBatch:       *batch,
		CoalesceFrames: *coFrames,
		CoalesceBytes:  *coBytes,
		Store:          store,
		Owns:           node.Owns,
		Forward:        node.Forward,
		Replication:    uint32(cluster.R()),
		ClusterHash:    cluster.Hash(),
		Members:        node.Members,
		Logf:           log.Printf,
		Metrics:        reg,
		Tracer:         tracer,
		SlowThreshold:  *traceSlow,
	}
	if cluster.Quorum() > 1 {
		// Locally-coordinated mutations fan out to co-replicas and ack
		// only after a quorum commits. With a quorum of one the hook is
		// left nil: there is nothing to wait for.
		srvCfg.Replicate = node.Replicate
	}
	srv, err := server.New(srvCfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoverynode:", err)
		return 2
	}
	addr, err := srv.Start(*listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "discoverynode:", err)
		return 1
	}
	log.Printf("discoverynode: serving clients on %s (region %d of %d, %d shards, queue %d)",
		addr, cluster.Self(), cluster.N(), pool.NumShards(), *queue)

	if *metricsAddr != "" {
		mux := reg.Mux()
		mux.Handle("/debug/traces", tracer.Handler()) // 404s when tracing is off
		maddr, stopMetrics, err := metrics.ServeMux(*metricsAddr, mux)
		if err != nil {
			fmt.Fprintln(os.Stderr, "discoverynode:", err)
			return 1
		}
		defer stopMetrics()
		log.Printf("discoverynode: metrics on http://%s/metrics (pprof on /debug/pprof)", maddr)
	}

	// Advertise the client address to peers: probe gossip spreads it, and
	// every member then serves the full table to cluster-smart clients
	// (TMembers). A wildcard -listen like ":7800" binds every interface
	// but advertises an address peers and clients cannot reliably dial, so
	// such deployments should set -advertise-client explicitly.
	switch *advClient {
	case "none":
	case "":
		node.SetClientAddr(addr.String())
	default:
		node.SetClientAddr(*advClient)
	}

	// Join and anti-entropy run in the background: a restarted node must
	// serve its recovered region immediately, not wait for dead peers.
	// The goroutine is awaited during shutdown (after StopServing cancels
	// it) because anti-entropy mutates the pool — the store must quiesce
	// before it is sealed.
	maintDone := make(chan struct{})
	maintStop := make(chan struct{})
	go func() {
		defer close(maintDone)
		if err := node.Join(*joinTimeout); err != nil {
			log.Printf("discoverynode: %v (serving own region regardless)", err)
		} else {
			log.Printf("discoverynode: joined all %d peers", cluster.N()-1)
		}
		if !*antiEntropy {
			return
		}
		moved, pulled, err := node.AntiEntropy()
		if moved > 0 || pulled > 0 || err != nil {
			log.Printf("discoverynode: anti-entropy: %d replicas handed off, %d pulled, err=%v", moved, pulled, err)
		}
		if *aeEvery <= 0 {
			return
		}
		// Periodic anti-entropy: a partition heals without a restart
		// because every node keeps pulling its replicated regions back
		// into sync. Errors are expected while a fault is live (the
		// whole point of running during one), so only eventful passes
		// log.
		tick := time.NewTicker(*aeEvery)
		defer tick.Stop()
		for {
			select {
			case <-maintStop:
				return
			case <-tick.C:
			}
			moved, pulled, err := node.AntiEntropy()
			if moved > 0 || pulled > 0 || err != nil {
				log.Printf("discoverynode: anti-entropy: %d replicas handed off, %d pulled, err=%v", moved, pulled, err)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	log.Printf("discoverynode: received %v, draining", got)
	drainStart := time.Now()
	// Inbound peer mutations and background maintenance stop first (the
	// store must quiesce before it is sealed), then the client side
	// drains — forwarding to other nodes keeps working through the
	// drain — then outbound peer connections close.
	close(maintStop)
	node.StopServing()
	<-maintDone
	if err := srv.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "discoverynode:", err)
		return 1
	}
	node.Close()
	log.Printf("discoverynode: drained in %s", time.Since(drainStart).Round(time.Millisecond))
	st := pool.Stats()
	log.Printf("discoverynode: served %d requests (%d inserts, %d lookups, %d deletes; %d lookups found)",
		st.Requests, st.Inserts, st.Lookups, st.Deletes, st.LookupsFound)
	return 0
}
