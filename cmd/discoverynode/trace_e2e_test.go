package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"testing"
	"time"

	discovery "discovery"
	"discovery/internal/cluster"
	"discovery/internal/server"
	"discovery/internal/trace"
	"discovery/internal/wire"
)

// This file is the end-to-end proof of request tracing across the
// cluster: three real discoverynode processes with sampling at 1-in-1,
// driven three ways —
//
//   - route-direct with a caller-stamped trace ID: the owner must record
//     a joined trace whose spans (queue wait, WAL commit, shard exec,
//     response flush) sum to no more than the measured client latency;
//   - relayed through a non-owner: the relay's forward/peer-hop spans
//     and the owner's route_exec span must share one trace ID, i.e. the
//     trace joins across processes via the wire trailer;
//   - a stale-view TRoute (wrong fingerprint) retried with the same
//     trace ID against the owner: the bounce and the successful
//     execution must join under that one ID across both processes.

// fetchTraces pulls one node's /debug/traces output.
func fetchTraces(t *testing.T, addr string) []trace.JSONTrace {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/debug/traces?n=0")
	if err != nil {
		t.Fatalf("fetch traces from %s: %v", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fetch traces from %s: HTTP %d", addr, resp.StatusCode)
	}
	var body struct {
		Traces []trace.JSONTrace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode traces from %s: %v", addr, err)
	}
	return body.Traces
}

// findTrace retries briefly: the response-flush span is recorded by the
// writer goroutine right after the vectored write, which can race the
// client's read by a hair.
func findTrace(t *testing.T, addr, id string) (trace.JSONTrace, bool) {
	t.Helper()
	for attempt := 0; attempt < 20; attempt++ {
		for _, tr := range fetchTraces(t, addr) {
			if tr.ID == id {
				return tr, true
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return trace.JSONTrace{}, false
}

// flattenSpans walks a trace's span tree into a flat list.
func flattenSpans(spans []*trace.JSONSpan, out *[]*trace.JSONSpan) {
	for _, sp := range spans {
		*out = append(*out, sp)
		flattenSpans(sp.Spans, out)
	}
}

func spanKinds(tr trace.JSONTrace) map[string][]*trace.JSONSpan {
	var flat []*trace.JSONSpan
	flattenSpans(tr.Spans, &flat)
	byKind := make(map[string][]*trace.JSONSpan)
	for _, sp := range flat {
		byKind[sp.Kind] = append(byKind[sp.Kind], sp)
	}
	return byKind
}

// rawRoute sends one hand-built TRoute frame to addr and returns the
// decoded response — the only way to present a deliberately stale
// fingerprint while keeping a chosen trace ID.
func rawRoute(t *testing.T, addr string, m *wire.Msg) *wire.Msg {
	t.Helper()
	nc, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	frame, err := m.Append(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(5 * time.Second)) //nolint:errcheck
	var scratch []byte
	body, err := wire.ReadFrame(bufio.NewReader(nc), &scratch)
	if err != nil {
		t.Fatal(err)
	}
	var resp wire.Msg
	if err := resp.Decode(body); err != nil {
		t.Fatal(err)
	}
	return &resp
}

func TestClusterTracing(t *testing.T) {
	bin := buildNode(t)
	peerAddrs := reservePeerAddrs(t, 3)

	sorted := append([]string(nil), peerAddrs...)
	sort.Strings(sorted)
	regionOf := make(map[string]int, 3)
	for r, a := range sorted {
		regionOf[a] = r
	}
	ownerRegion := func(name string) int { return discovery.OwnerOf(discovery.NewID(name), 3) }

	procs := make([]*nodeProc, 3)
	for i := range procs {
		procs[i] = startNode(t, bin, peerAddrs[i], peerAddrs, t.TempDir(),
			"-replication", "1", "-trace-sample", "1", "-trace-slow", "1ns")
	}
	procByRegion := make([]*nodeProc, 3)
	for i, p := range procs {
		procByRegion[regionOf[peerAddrs[i]]] = p
	}

	// The cluster-smart client needs every member's client address, which
	// spreads by probe gossip; poll until the table is complete.
	cc, err := cluster.Dial(cluster.Config{Seeds: []string{procs[0].clientAddr}})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	var hash uint64
	for deadline := time.Now().Add(15 * time.Second); ; {
		var members []string
		hash, members = cc.Members()
		known := 0
		for _, m := range members {
			if m != "" {
				known++
			}
		}
		if known == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("member table never completed: %v", members)
		}
		time.Sleep(200 * time.Millisecond)
		cc.Refresh() //nolint:errcheck // retried until the deadline
	}

	// Phase 1: route-direct insert with a caller-stamped trace ID. The
	// owner must record a joined trace whose per-stage spans fit inside
	// the measured end-to-end service time.
	const directID uint64 = 0xABCDEF0123456789
	directKey := "trace-direct-key"
	t0 := time.Now()
	if _, err := cc.InsertTraced(cluster.OriginAuto, discovery.NewID(directKey), []byte(directKey), directID); err != nil {
		t.Fatalf("traced route-direct insert: %v", err)
	}
	e2e := time.Since(t0)
	owner := procByRegion[ownerRegion(directKey)]
	tr, ok := findTrace(t, owner.metricsAddr, fmt.Sprintf("%016x", directID))
	if !ok {
		t.Fatalf("trace %016x not found on the owner's /debug/traces", uint64(directID))
	}
	byKind := spanKinds(tr)
	var flat []*trace.JSONSpan
	flattenSpans(tr.Spans, &flat)
	if len(flat) < 4 {
		t.Fatalf("joined trace has %d spans, want >= 4: %+v", len(flat), flat)
	}
	// resp_flush is excluded from the e2e bound: its closing timestamp is
	// read by the writer goroutine after writev returns, but the client
	// can have the reply as soon as the kernel has the bytes, so under
	// CPU contention the span legitimately extends past the client's
	// measured window. The other stages all end before the reply leaves
	// the server, so their sum must fit inside what the client measured.
	var spanSum int64
	for _, sp := range flat {
		if sp.Kind != "resp_flush" {
			spanSum += sp.Dur
		}
	}
	for _, kind := range []string{"queue_wait", "shard_exec", "wal_commit", "resp_flush"} {
		if len(byKind[kind]) == 0 {
			kinds := make([]string, 0, len(byKind))
			for k := range byKind {
				kinds = append(kinds, k)
			}
			t.Fatalf("trace is missing a %s span (has %v)", kind, kinds)
		}
	}
	if spanSum > int64(e2e) {
		for _, sp := range flat {
			t.Logf("  span %s dur=%v start=%d", sp.Kind, time.Duration(sp.Dur), sp.Start)
		}
		t.Fatalf("pre-flush span sum %v exceeds measured e2e time %v", time.Duration(spanSum), e2e)
	}
	t.Logf("route-direct trace: %d spans, %v pre-flush within e2e %v", len(flat), time.Duration(spanSum), e2e)

	// Phase 2: relayed insert through a non-owner. Sampling is 1-in-1, so
	// the relay traces it and the trailer carries the ID to the owner:
	// the relay's forward span and the owner's route_exec span must join.
	relayKey := "trace-relay-key"
	relayRegion := ownerRegion(relayKey)
	var relay *nodeProc
	for i, p := range procs {
		if regionOf[peerAddrs[i]] != relayRegion {
			relay = p
			break
		}
	}
	rc, err := server.Dial(relay.clientAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.Insert(server.OriginAuto, discovery.NewID(relayKey), []byte(relayKey)); err != nil {
		t.Fatalf("relayed insert: %v", err)
	}
	var relayID string
	for attempt := 0; relayID == "" && attempt < 20; attempt++ {
		for _, tr := range fetchTraces(t, relay.metricsAddr) {
			if kinds := spanKinds(tr); len(kinds["forward"]) > 0 {
				relayID = tr.ID
				if len(kinds["peer_call"]) == 0 {
					t.Errorf("relay trace %s has forward but no peer_call span", tr.ID)
				}
			}
		}
		if relayID == "" {
			time.Sleep(100 * time.Millisecond)
		}
	}
	if relayID == "" {
		t.Fatal("no forwarded trace recorded on the relay node")
	}
	ownerTr, ok := findTrace(t, procByRegion[relayRegion].metricsAddr, relayID)
	if !ok {
		t.Fatalf("relayed trace %s did not join on the owner (no spans there)", relayID)
	}
	if kinds := spanKinds(ownerTr); len(kinds["route_exec"]) == 0 {
		t.Fatalf("owner side of relayed trace %s has no route_exec span: %+v", relayID, ownerTr.Spans)
	}
	t.Logf("relayed trace %s joined across relay and owner", relayID)

	// Phase 3: stale-view retry. A hand-built TRoute with a bogus
	// fingerprint and a fixed trace ID is bounced with TWrongView by one
	// node, then retried — same ID — against the owner with the corrected
	// fingerprint. The bounce and the execution must join under one ID
	// across the two processes.
	const retryID uint64 = 0x5EEDFACE00C0FFEE
	retryKey := "trace-retry-key"
	retryRegion := ownerRegion(retryKey)
	var stale *nodeProc
	for i, p := range procs {
		if regionOf[peerAddrs[i]] != retryRegion {
			stale = p
			break
		}
	}
	req := &wire.Msg{
		Type: wire.TRoute, ReqID: 1, RouteKind: wire.TInsert,
		Cluster: ^hash, // deliberately stale fingerprint
		Key:     discovery.NewID(retryKey), Origin: wire.OriginAuto, Value: []byte(retryKey),
		Traced: true, Trace: retryID,
	}
	resp := rawRoute(t, stale.clientAddr, req)
	if resp.Type != wire.TWrongView {
		t.Fatalf("stale TRoute got %v, want TWrongView", resp.Type)
	}
	if resp.Cluster != hash {
		t.Fatalf("TWrongView advertises fingerprint %016x, want %016x", resp.Cluster, hash)
	}
	req.ReqID = 2
	req.Cluster = resp.Cluster // the refresh a real client would do
	resp = rawRoute(t, procByRegion[retryRegion].clientAddr, req)
	if resp.Type != wire.TInsertOK {
		t.Fatalf("retried TRoute got %v (%s), want TInsertOK", resp.Type, resp.ErrorText())
	}
	staleTr, ok := findTrace(t, stale.metricsAddr, fmt.Sprintf("%016x", uint64(retryID)))
	if !ok {
		t.Fatal("no spans for the stale-view bounce on the refusing node")
	}
	if kinds := spanKinds(staleTr); len(kinds["wrong_view"]) == 0 {
		t.Fatalf("refusing node's trace has no wrong_view span: %+v", staleTr.Spans)
	}
	retryTr, ok := findTrace(t, procByRegion[retryRegion].metricsAddr, fmt.Sprintf("%016x", uint64(retryID)))
	if !ok {
		t.Fatal("retried request left no spans on the owner")
	}
	if kinds := spanKinds(retryTr); len(kinds["shard_exec"]) == 0 {
		t.Fatalf("owner's retry trace has no shard_exec span: %+v", retryTr.Spans)
	}
	t.Logf("stale-view retry kept trace %016x across bounce and execution", uint64(retryID))
}
