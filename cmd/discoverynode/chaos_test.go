package main

import (
	"testing"

	"discovery/internal/chaos"
)

// TestChaosMatrix runs every internal/chaos scenario against a real
// 3-process, replication-3 cluster whose peer and client links are all
// interposed by internal/faultnet proxies. Each cell is its own
// subtest, so a red cell is identifiable by name in CI output. Under
// -short only the Short subset runs (the PR gate); the full matrix —
// all fault classes: hard/asymmetric partitions, latency/jitter, frame
// reordering, bandwidth caps, connection-reset storms, flapping
// membership, rolling restarts, and WAL fsync failure — runs on push.
//
// Every cell asserts the same four invariants (see internal/chaos):
// acked-insert durability, no false not-found for settled keys,
// explicit below-quorum write errors where a quorum is severed, and
// full replica convergence after heal.
func TestChaosMatrix(t *testing.T) {
	bin := buildNode(t)
	for _, sc := range chaos.Matrix {
		sc := sc
		if testing.Short() && !sc.Short {
			continue
		}
		t.Run(sc.Name, func(t *testing.T) {
			chaos.Run(t, bin, sc)
		})
	}
}
