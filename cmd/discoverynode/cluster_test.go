package main

import (
	"bufio"
	"fmt"
	"net"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	discovery "discovery"
	"discovery/internal/server"
)

// This file is the end-to-end proof of the p2p deployment: three real
// discoverynode processes on loopback, each owning one keyspace region
// with its own durable data directory. Mixed traffic is driven through
// every node (so forwarding is exercised in both directions), then one
// node is SIGKILLed mid-cluster and restarted on its data directory.
// The contract under test:
//
//   - every acked insert is findable from every node,
//   - a dead region fails with an explicit error while the survivors
//     keep serving their regions,
//   - the restarted node recovers its region with zero acked-insert
//     loss.
//
// It is the cluster-shaped sibling of cmd/discoveryd's crash_test.go and
// runs under -race in CI (the race detector instruments the client side;
// the daemons are separate processes).

// buildNode compiles the discoverynode binary once per test run.
func buildNode(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "discoverynode")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// reservePeerAddrs grabs n loopback addresses for peer listeners by
// binding and releasing ephemeral ports. Peer addresses must be known to
// every member before any process starts, so they cannot be ":0".
func reservePeerAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	liss := make([]net.Listener, n)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		liss[i] = lis
		addrs[i] = lis.Addr().String()
	}
	for _, lis := range liss {
		lis.Close()
	}
	return addrs
}

var clientAddrRe = regexp.MustCompile(`serving clients on (127\.0\.0\.1:\d+) \(region`)

// nodeProc is one running cluster member.
type nodeProc struct {
	cmd        *exec.Cmd
	clientAddr string
}

// startNode launches one member and waits for its serving line. The
// client listener is ephemeral (scraped from the log); the peer address
// is fixed cluster configuration.
func startNode(t *testing.T, bin, peerAddr string, peers []string, dataDir string) *nodeProc {
	t.Helper()
	cmd := exec.Command(bin,
		"-listen", "127.0.0.1:0",
		"-peer-listen", peerAddr,
		"-bootstrap", strings.Join(peers, ","),
		"-data-dir", dataDir, "-fsync", "batch", "-snapshot-every", "64",
		"-shards", "2",
		"-join-timeout", "15s",
		"-dial-timeout", "250ms",
		"-call-timeout", "3s",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("node[%s]: %s", peerAddr, line)
			if m := clientAddrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	t.Cleanup(func() {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
		<-scanDone
	})
	select {
	case addr := <-addrCh:
		return &nodeProc{cmd: cmd, clientAddr: addr}
	case <-time.After(30 * time.Second):
		t.Fatal("node never reported its client address")
		return nil
	}
}

// lookupWithRetry tolerates the one transient the architecture allows: a
// forward may need to redial a peer that just (re)started.
func lookupWithRetry(c *server.Client, key discovery.ID) (found bool, err error) {
	for attempt := 0; attempt < 5; attempt++ {
		res, lerr := c.Lookup(server.OriginAuto, key)
		if lerr == nil {
			return res.Found, nil
		}
		err = lerr
		time.Sleep(200 * time.Millisecond)
	}
	return false, err
}

func TestClusterServeKillRecover(t *testing.T) {
	bin := buildNode(t)
	peerAddrs := reservePeerAddrs(t, 3)
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}

	// A node's region is its peer address's rank in the sorted member
	// list; the test mirrors the derivation to reason about ownership.
	sorted := append([]string(nil), peerAddrs...)
	sort.Strings(sorted)
	regionOf := make(map[string]int, 3)
	for r, a := range sorted {
		regionOf[a] = r
	}
	ownerRegion := func(name string) int { return discovery.OwnerOf(discovery.NewID(name), 3) }

	procs := make([]*nodeProc, 3)
	for i := range procs {
		procs[i] = startNode(t, bin, peerAddrs[i], peerAddrs, dirs[i])
	}
	clients := make([]*server.Client, 3)
	for i := range clients {
		c, err := server.Dial(procs[i].clientAddr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}

	// Phase 1: mixed traffic through every node. Each insert is acked
	// and immediately read back through a different node, so forwarding
	// runs in both directions from the start.
	const total = 180
	var keys []string
	perRegion := make([]int, 3)
	for i := 0; i < total; i++ {
		name := fmt.Sprintf("cluster-key-%d", i)
		via := i % 3
		if _, err := clients[via].Insert(server.OriginAuto, discovery.NewID(name), []byte(name)); err != nil {
			t.Fatalf("insert %s via node %d: %v", name, via, err)
		}
		keys = append(keys, name)
		perRegion[ownerRegion(name)]++
		res, err := clients[(via+1)%3].Lookup(server.OriginAuto, discovery.NewID(name))
		if err != nil {
			t.Fatalf("read-back %s: %v", name, err)
		}
		if !res.Found {
			t.Fatalf("acked insert %s not visible from the next node", name)
		}
	}
	for r, n := range perRegion {
		if n == 0 {
			t.Fatalf("region %d owns no test keys; ownership split is broken", r)
		}
	}
	t.Logf("inserted %d keys (per region: %v)", total, perRegion)

	// Phase 2: every acked insert findable from every node.
	for who, c := range clients {
		for _, name := range keys {
			res, err := c.Lookup(server.OriginAuto, discovery.NewID(name))
			if err != nil {
				t.Fatalf("lookup %s via node %d: %v", name, who, err)
			}
			if !res.Found {
				t.Fatalf("key %s not findable via node %d", name, who)
			}
		}
	}

	// Phase 3: SIGKILL one node mid-cluster. No drain, no final
	// snapshot: recovery must come from the write-ahead log.
	const victim = 2
	victimRegion := regionOf[peerAddrs[victim]]
	if err := procs[victim].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[victim].cmd.Wait() //nolint:errcheck // killed on purpose
	t.Logf("killed node %d (region %d, %d keys)", victim, victimRegion, perRegion[victimRegion])

	// Survivors keep serving their regions; the dead region fails with
	// an explicit error, never a false not-found.
	deadErrs := 0
	for who, c := range clients {
		if who == victim {
			continue
		}
		for _, name := range keys {
			if ownerRegion(name) == victimRegion {
				// One attempt, no retry: the error is the expected
				// outcome, and it must be fast (a refused dial, not a
				// timeout).
				res, err := c.Lookup(server.OriginAuto, discovery.NewID(name))
				if err == nil {
					t.Fatalf("lookup of dead-region key %s via node %d returned found=%v, want error", name, who, res.Found)
				}
				deadErrs++
				continue
			}
			found, err := lookupWithRetry(c, discovery.NewID(name))
			if err != nil {
				t.Fatalf("lookup %s via node %d while peer down: %v", name, who, err)
			}
			if !found {
				t.Fatalf("surviving-region key %s lost on node %d after peer death", name, who)
			}
		}
	}
	if deadErrs == 0 {
		t.Fatal("no dead-region lookups exercised")
	}
	// Survivors also keep accepting writes for their own regions.
	newOwned := 0
	for i := 0; newOwned < 6; i++ {
		name := fmt.Sprintf("post-kill-%d", i)
		r := ownerRegion(name)
		if r == victimRegion {
			continue
		}
		var via int
		for j := range procs {
			if j != victim && regionOf[peerAddrs[j]] == r {
				via = j
			}
		}
		if _, err := clients[via].Insert(server.OriginAuto, discovery.NewID(name), []byte(name)); err != nil {
			t.Fatalf("survivor insert %s: %v", name, err)
		}
		keys = append(keys, name)
		newOwned++
	}

	// Phase 4: restart the victim on its data directory. It must
	// recover its region from WAL + snapshots and rejoin; after that,
	// every insert ever acked is findable from every node again —
	// zero acked-insert loss.
	procs[victim] = startNode(t, bin, peerAddrs[victim], peerAddrs, dirs[victim])
	c, err := server.Dial(procs[victim].clientAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	clients[victim] = c

	lost := 0
	for who, c := range clients {
		for _, name := range keys {
			found, err := lookupWithRetry(c, discovery.NewID(name))
			if err != nil {
				t.Fatalf("post-restart lookup %s via node %d: %v", name, who, err)
			}
			if !found {
				lost++
				t.Errorf("acked key %s not findable via node %d after restart", name, who)
			}
		}
	}
	t.Logf("verified %d acked inserts from all 3 nodes after SIGKILL+restart (%d lost)", len(keys), lost)

	// Phase 5: the whole cluster drains cleanly on SIGTERM (containers
	// stop nodes this way).
	for i, p := range procs {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := p.cmd.Wait(); err != nil {
			t.Fatalf("node %d exit after SIGTERM: %v", i, err)
		}
	}
}
