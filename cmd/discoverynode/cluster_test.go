package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	discovery "discovery"
	"discovery/internal/cluster"
	"discovery/internal/server"
)

// This file is the end-to-end proof of the p2p deployment: three real
// discoverynode processes on loopback, each owning one keyspace region
// with its own durable data directory. Mixed traffic is driven through
// every node (so forwarding is exercised in both directions), then one
// node is SIGKILLed mid-cluster and restarted on its data directory.
// The contract under test:
//
//   - every acked insert is findable from every node,
//   - a dead region fails with an explicit error while the survivors
//     keep serving their regions,
//   - the restarted node recovers its region with zero acked-insert
//     loss.
//
// It is the cluster-shaped sibling of cmd/discoveryd's crash_test.go and
// runs under -race in CI (the race detector instruments the client side;
// the daemons are separate processes).

// buildNode compiles the discoverynode binary once per test run.
func buildNode(t testing.TB) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain not on PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "discoverynode")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// reservePeerAddrs grabs n loopback addresses for peer listeners by
// binding and releasing ephemeral ports. Peer addresses must be known to
// every member before any process starts, so they cannot be ":0".
func reservePeerAddrs(t testing.TB, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	liss := make([]net.Listener, n)
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		liss[i] = lis
		addrs[i] = lis.Addr().String()
	}
	for _, lis := range liss {
		lis.Close()
	}
	return addrs
}

var clientAddrRe = regexp.MustCompile(`serving clients on (127\.0\.0\.1:\d+) \(region`)

var metricsAddrRe = regexp.MustCompile(`metrics on http://(127\.0\.0\.1:\d+)/metrics`)

// nodeProc is one running cluster member.
type nodeProc struct {
	cmd         *exec.Cmd
	clientAddr  string
	metricsAddr string
}

// scrapeMetrics fetches one node's /metrics endpoint and sums the
// samples of each family (labels collapsed): pool_ops{op=insert} and
// pool_ops{op=lookup} both land under "pool_ops". Family presence is
// checkable via the returned map even at value 0.
func scrapeMetrics(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("scrape %s: %v", addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("scrape %s: HTTP %d: %s", addr, resp.StatusCode, body)
	}
	sums := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("scrape %s: malformed line %q", addr, line)
		}
		name := line[:sp]
		if lb := strings.IndexByte(name, '{'); lb >= 0 {
			name = name[:lb]
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("scrape %s: bad value in %q: %v", addr, line, err)
		}
		sums[name] += v
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scrape %s: %v", addr, err)
	}
	return sums
}

// startNode launches one member and waits for its serving line. The
// client listener is ephemeral (scraped from the log); the peer address
// is fixed cluster configuration. extra flags are appended (e.g.
// tracing knobs).
func startNode(t testing.TB, bin, peerAddr string, peers []string, dataDir string, extra ...string) *nodeProc {
	t.Helper()
	args := []string{
		"-listen", "127.0.0.1:0",
		"-peer-listen", peerAddr,
		"-bootstrap", strings.Join(peers, ","),
		"-data-dir", dataDir, "-fsync", "batch", "-snapshot-every", "64",
		"-shards", "2",
		"-join-timeout", "15s",
		"-dial-timeout", "250ms",
		"-call-timeout", "3s",
		"-metrics-listen", "127.0.0.1:0",
	}
	args = append(args, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	metricsCh := make(chan string, 1)
	scanDone := make(chan struct{})
	go func() {
		defer close(scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("node[%s]: %s", peerAddr, line)
			if m := clientAddrRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			if m := metricsAddrRe.FindStringSubmatch(line); m != nil {
				select {
				case metricsCh <- m[1]:
				default:
				}
			}
		}
	}()
	t.Cleanup(func() {
		cmd.Process.Kill() //nolint:errcheck
		cmd.Wait()         //nolint:errcheck
		<-scanDone
	})
	p := &nodeProc{cmd: cmd}
	deadline := time.After(30 * time.Second)
	for p.clientAddr == "" || p.metricsAddr == "" {
		select {
		case addr := <-addrCh:
			p.clientAddr = addr
		case addr := <-metricsCh:
			p.metricsAddr = addr
		case <-deadline:
			t.Fatalf("node never reported its addresses (client %q, metrics %q)", p.clientAddr, p.metricsAddr)
		}
	}
	return p
}

// lookupWithRetry tolerates the one transient the architecture allows: a
// forward may need to redial a peer that just (re)started.
func lookupWithRetry(c *server.Client, key discovery.ID) (found bool, err error) {
	for attempt := 0; attempt < 5; attempt++ {
		res, lerr := c.Lookup(server.OriginAuto, key)
		if lerr == nil {
			return res.Found, nil
		}
		err = lerr
		time.Sleep(200 * time.Millisecond)
	}
	return false, err
}

func TestClusterServeKillRecover(t *testing.T) {
	bin := buildNode(t)
	peerAddrs := reservePeerAddrs(t, 3)
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}

	// A node's region is its peer address's rank in the sorted member
	// list; the test mirrors the derivation to reason about ownership.
	sorted := append([]string(nil), peerAddrs...)
	sort.Strings(sorted)
	regionOf := make(map[string]int, 3)
	for r, a := range sorted {
		regionOf[a] = r
	}
	ownerRegion := func(name string) int { return discovery.OwnerOf(discovery.NewID(name), 3) }

	// Replication 1 pins the original single-owner semantics this test
	// proves: a dead region fails fast and exactly one node holds each
	// key. TestClusterReplicatedKillFailover covers the replicated mode.
	procs := make([]*nodeProc, 3)
	for i := range procs {
		procs[i] = startNode(t, bin, peerAddrs[i], peerAddrs, dirs[i], "-replication", "1")
	}
	clients := make([]*server.Client, 3)
	for i := range clients {
		c, err := server.Dial(procs[i].clientAddr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}

	// Phase 1: mixed traffic through every node. Each insert is acked
	// and immediately read back through a different node, so forwarding
	// runs in both directions from the start.
	const total = 180
	var keys []string
	perRegion := make([]int, 3)
	for i := 0; i < total; i++ {
		name := fmt.Sprintf("cluster-key-%d", i)
		via := i % 3
		if _, err := clients[via].Insert(server.OriginAuto, discovery.NewID(name), []byte(name)); err != nil {
			t.Fatalf("insert %s via node %d: %v", name, via, err)
		}
		keys = append(keys, name)
		perRegion[ownerRegion(name)]++
		res, err := clients[(via+1)%3].Lookup(server.OriginAuto, discovery.NewID(name))
		if err != nil {
			t.Fatalf("read-back %s: %v", name, err)
		}
		if !res.Found {
			t.Fatalf("acked insert %s not visible from the next node", name)
		}
	}
	for r, n := range perRegion {
		if n == 0 {
			t.Fatalf("region %d owns no test keys; ownership split is broken", r)
		}
	}
	t.Logf("inserted %d keys (per region: %v)", total, perRegion)

	// Phase 2: every acked insert findable from every node.
	for who, c := range clients {
		for _, name := range keys {
			res, err := c.Lookup(server.OriginAuto, discovery.NewID(name))
			if err != nil {
				t.Fatalf("lookup %s via node %d: %v", name, who, err)
			}
			if !res.Found {
				t.Fatalf("key %s not findable via node %d", name, who)
			}
		}
	}

	// Phase 2b: scrape every live node's /metrics mid-cluster. The
	// instrumentation contract: the cluster-level families exist on every
	// node, forwarded traffic shows up somewhere (each insert above was
	// read back via a different node, so ~2/3 of requests crossed nodes),
	// durability shows up as fsyncs, and the binary TStatsOK speaks from
	// the same registry — the counts must match exactly on a quiet node.
	first := make([]map[string]float64, 3)
	for i, p := range procs {
		first[i] = scrapeMetrics(t, p.metricsAddr)
	}
	for i, m := range first {
		for _, fam := range []string{
			"server_requests", "server_routed", "server_forwarded", "server_wrongview", "server_shed",
			"server_queue_wait_seconds_count", "server_service_seconds_count", "server_frames_per_write_count",
			"pool_ops", "wal_fsyncs", "wal_fsync_seconds_count", "wal_records",
			"p2p_calls", "p2p_call_seconds_count", "p2p_dials", "p2p_writes", "p2p_frames",
			"p2p_peer_writes", "p2p_peer_frames",
		} {
			if _, ok := m[fam]; !ok {
				t.Fatalf("node %d /metrics is missing family %s", i, fam)
			}
		}
		if m["wal_fsyncs"] == 0 {
			t.Fatalf("node %d logged mutations but wal_fsyncs is 0", i)
		}
	}
	routedTotal, forwardedTotal := 0.0, 0.0
	for _, m := range first {
		routedTotal += m["server_routed"]
		forwardedTotal += m["server_forwarded"]
	}
	if routedTotal+forwardedTotal == 0 {
		t.Fatal("no cross-node traffic visible in server_routed/server_forwarded across the cluster")
	}
	// TStatsOK cross-check: the binary stats protocol reads the same
	// registry counters the scrape renders.
	for i, c := range clients {
		st, err := c.Stats()
		if err != nil {
			t.Fatalf("TStats via node %d: %v", i, err)
		}
		m := scrapeMetrics(t, procs[i].metricsAddr)
		if got, want := m["pool_lookups_found"], float64(st.Found); got != want {
			t.Fatalf("node %d: /metrics pool_lookups_found %v != TStatsOK Found %v", i, got, want)
		}
		ops := m["pool_ops"]
		if want := float64(st.Inserts + st.Lookups + st.Deletes); ops != want {
			t.Fatalf("node %d: /metrics pool_ops total %v != TStatsOK total %v", i, ops, want)
		}
	}
	// Monotonicity: more forwarded traffic, then a second scrape — every
	// cumulative counter must be >= its first reading, and the traffic
	// counters strictly greater.
	for i := 0; i < 30; i++ {
		name := fmt.Sprintf("scrape-key-%d", i)
		via := i % 3
		if _, err := clients[via].Insert(server.OriginAuto, discovery.NewID(name), []byte(name)); err != nil {
			t.Fatalf("insert %s via node %d: %v", name, via, err)
		}
		keys = append(keys, name)
	}
	for i, p := range procs {
		second := scrapeMetrics(t, p.metricsAddr)
		for _, ctr := range []string{"server_requests", "server_routed", "server_forwarded", "wal_fsyncs", "wal_records", "pool_ops", "p2p_calls"} {
			if second[ctr] < first[i][ctr] {
				t.Fatalf("node %d: counter %s went backwards across scrapes: %v -> %v", i, ctr, first[i][ctr], second[ctr])
			}
		}
		if second["server_requests"] <= first[i]["server_requests"] {
			t.Fatalf("node %d: server_requests did not advance across traffic (%v -> %v)", i, first[i]["server_requests"], second["server_requests"])
		}
	}
	t.Logf("mid-traffic scrape OK on all 3 nodes (%v routed + %v forwarded cluster-wide)", routedTotal, forwardedTotal)

	// Phase 3: SIGKILL one node mid-cluster. No drain, no final
	// snapshot: recovery must come from the write-ahead log.
	const victim = 2
	victimRegion := regionOf[peerAddrs[victim]]
	if err := procs[victim].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[victim].cmd.Wait() //nolint:errcheck // killed on purpose
	t.Logf("killed node %d (region %d, %d keys)", victim, victimRegion, perRegion[victimRegion])

	// Survivors keep serving their regions; the dead region fails with
	// an explicit error, never a false not-found.
	deadErrs := 0
	for who, c := range clients {
		if who == victim {
			continue
		}
		for _, name := range keys {
			if ownerRegion(name) == victimRegion {
				// One attempt, no retry: the error is the expected
				// outcome, and it must be fast (a refused dial, not a
				// timeout).
				res, err := c.Lookup(server.OriginAuto, discovery.NewID(name))
				if err == nil {
					t.Fatalf("lookup of dead-region key %s via node %d returned found=%v, want error", name, who, res.Found)
				}
				deadErrs++
				continue
			}
			found, err := lookupWithRetry(c, discovery.NewID(name))
			if err != nil {
				t.Fatalf("lookup %s via node %d while peer down: %v", name, who, err)
			}
			if !found {
				t.Fatalf("surviving-region key %s lost on node %d after peer death", name, who)
			}
		}
	}
	if deadErrs == 0 {
		t.Fatal("no dead-region lookups exercised")
	}
	// Survivors also keep accepting writes for their own regions.
	newOwned := 0
	for i := 0; newOwned < 6; i++ {
		name := fmt.Sprintf("post-kill-%d", i)
		r := ownerRegion(name)
		if r == victimRegion {
			continue
		}
		var via int
		for j := range procs {
			if j != victim && regionOf[peerAddrs[j]] == r {
				via = j
			}
		}
		if _, err := clients[via].Insert(server.OriginAuto, discovery.NewID(name), []byte(name)); err != nil {
			t.Fatalf("survivor insert %s: %v", name, err)
		}
		keys = append(keys, name)
		newOwned++
	}

	// Phase 4: restart the victim on its data directory. It must
	// recover its region from WAL + snapshots and rejoin; after that,
	// every insert ever acked is findable from every node again —
	// zero acked-insert loss.
	procs[victim] = startNode(t, bin, peerAddrs[victim], peerAddrs, dirs[victim], "-replication", "1")
	c, err := server.Dial(procs[victim].clientAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	clients[victim] = c

	lost := 0
	for who, c := range clients {
		for _, name := range keys {
			found, err := lookupWithRetry(c, discovery.NewID(name))
			if err != nil {
				t.Fatalf("post-restart lookup %s via node %d: %v", name, who, err)
			}
			if !found {
				lost++
				t.Errorf("acked key %s not findable via node %d after restart", name, who)
			}
		}
	}
	t.Logf("verified %d acked inserts from all 3 nodes after SIGKILL+restart (%d lost)", len(keys), lost)

	// The restarted node's scrape must expose what recovery did: a
	// SIGKILLed node with acked mutations recovers from snapshots and/or
	// the WAL tail, so the recovery gauges exist and something nonzero
	// was restored.
	rm := scrapeMetrics(t, procs[victim].metricsAddr)
	for _, g := range []string{"recovery_snapshot_entries", "recovery_wal_records_replayed", "recovery_millis"} {
		if _, ok := rm[g]; !ok {
			t.Fatalf("restarted node /metrics is missing %s", g)
		}
	}
	if rm["recovery_snapshot_entries"]+rm["recovery_wal_records_replayed"] == 0 {
		t.Fatal("restarted node reports zero recovered state despite acked mutations before SIGKILL")
	}
	t.Logf("restart scrape: %v snapshot entries, %v wal records replayed in %vms",
		rm["recovery_snapshot_entries"], rm["recovery_wal_records_replayed"], rm["recovery_millis"])

	// Phase 5: the whole cluster drains cleanly on SIGTERM (containers
	// stop nodes this way).
	for i, p := range procs {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := p.cmd.Wait(); err != nil {
			t.Fatalf("node %d exit after SIGTERM: %v", i, err)
		}
	}
}

// waitMemberSlot polls the cluster-smart client's member table until
// slot advertises addr (gossip fills the table; a restarted node's new
// ephemeral client address replaces its old one the same way).
func waitMemberSlot(t testing.TB, cc *cluster.Client, slot int, addr string) {
	t.Helper()
	for deadline := time.Now().Add(20 * time.Second); ; {
		_, members := cc.Members()
		if slot < len(members) && members[slot] == addr {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("member table slot %d never advertised %s: %v", slot, addr, members)
		}
		time.Sleep(200 * time.Millisecond)
		cc.Refresh() //nolint:errcheck // retried until the deadline
	}
}

// lookupSmartRetry is lookupWithRetry for the cluster-smart client: the
// client already fails over across replicas, so retries only cover
// transient redials around a node (re)start.
func lookupSmartRetry(c *cluster.Client, key discovery.ID) (found bool, err error) {
	for attempt := 0; attempt < 5; attempt++ {
		res, lerr := c.Lookup(cluster.OriginAuto, key)
		if lerr == nil {
			return res.Found, nil
		}
		err = lerr
		time.Sleep(200 * time.Millisecond)
	}
	return false, err
}

// TestClusterReplicatedKillFailover is the end-to-end proof of N-way
// replication: three nodes at the default -replication (3, quorum 2),
// one SIGKILLed under live traffic. The contract under test:
//
//   - with any one node dead, every region keeps serving reads (the
//     client fails over to a live replica) and quorum writes (any live
//     replica coordinates and reaches quorum on the survivors),
//   - no acked insert is ever lost: after the victim restarts and
//     anti-entropy converges, every key acked at any point — including
//     during the outage — is findable, on the restarted node itself.
func TestClusterReplicatedKillFailover(t *testing.T) {
	bin := buildNode(t)
	peerAddrs := reservePeerAddrs(t, 3)
	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}

	sorted := append([]string(nil), peerAddrs...)
	sort.Strings(sorted)
	regionOf := make(map[string]int, 3)
	for r, a := range sorted {
		regionOf[a] = r
	}
	ownerRegion := func(name string) int { return discovery.OwnerOf(discovery.NewID(name), 3) }

	procs := make([]*nodeProc, 3)
	for i := range procs {
		procs[i] = startNode(t, bin, peerAddrs[i], peerAddrs, dirs[i])
	}

	// The cluster-smart client learns replicas from the member table and
	// is the failover path under test. Gossip fills the table; wait for
	// every slot.
	cc, err := cluster.Dial(cluster.Config{
		Seeds: []string{procs[0].clientAddr, procs[1].clientAddr, procs[2].clientAddr},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	for i := range procs {
		waitMemberSlot(t, cc, regionOf[peerAddrs[i]], procs[i].clientAddr)
	}

	// Phase 1: quorum-acked inserts across every region, each read back
	// through its owner route.
	const total = 120
	var keys []string
	perRegion := make([]int, 3)
	for i := 0; i < total; i++ {
		name := fmt.Sprintf("repl-key-%d", i)
		if _, err := cc.Insert(cluster.OriginAuto, discovery.NewID(name), []byte(name)); err != nil {
			t.Fatalf("insert %s: %v", name, err)
		}
		keys = append(keys, name)
		perRegion[ownerRegion(name)]++
		res, err := cc.Lookup(cluster.OriginAuto, discovery.NewID(name))
		if err != nil {
			t.Fatalf("read-back %s: %v", name, err)
		}
		if !res.Found {
			t.Fatalf("acked insert %s not visible through its owner", name)
		}
	}
	for r, n := range perRegion {
		if n == 0 {
			t.Fatalf("region %d owns no test keys; ownership split is broken", r)
		}
	}

	// Phase 2: SIGKILL one node while a background inserter keeps mixed
	// traffic flowing through the kill. Only acked inserts carry a
	// durability promise; errors during the transition are tolerated.
	const victim = 1
	victimRegion := regionOf[peerAddrs[victim]]
	var mu sync.Mutex
	var ackedDuring []string
	stop := make(chan struct{})
	insDone := make(chan struct{})
	go func() {
		defer close(insDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("repl-live-%d", i)
			if _, err := cc.Insert(cluster.OriginAuto, discovery.NewID(name), []byte(name)); err == nil {
				mu.Lock()
				ackedDuring = append(ackedDuring, name)
				mu.Unlock()
			}
		}
	}()
	time.Sleep(100 * time.Millisecond)
	if err := procs[victim].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	procs[victim].cmd.Wait() //nolint:errcheck // killed on purpose
	time.Sleep(300 * time.Millisecond)
	close(stop)
	<-insDone
	t.Logf("killed node %d (region %d) under traffic; %d inserts acked around the kill", victim, victimRegion, len(ackedDuring))

	// Every settled pre-kill key stays readable: the client fails over
	// from the dead owner to a live replica.
	deadOwned := 0
	for _, name := range keys {
		found, err := lookupSmartRetry(cc, discovery.NewID(name))
		if err != nil {
			t.Fatalf("lookup %s with node %d dead: %v", name, victim, err)
		}
		if !found {
			t.Fatalf("settled key %s unreadable with one replica dead", name)
		}
		if ownerRegion(name) == victimRegion {
			deadOwned++
		}
	}
	if deadOwned == 0 {
		t.Fatal("no dead-owner keys exercised")
	}
	if fo := cc.Stats().Failovers; fo == 0 {
		t.Fatal("client reports zero failovers despite a dead owner in the read path")
	}

	// Quorum writes keep landing for every region — including the dead
	// node's — and are immediately readable through their coordinator.
	newKeys := make([]string, 0, 45)
	perRegionNew := make([]int, 3)
	for i := 0; len(newKeys) < 45; i++ {
		name := fmt.Sprintf("repl-postkill-%d", i)
		if _, err := cc.Insert(cluster.OriginAuto, discovery.NewID(name), []byte(name)); err != nil {
			t.Fatalf("quorum insert %s with node %d dead: %v", name, victim, err)
		}
		res, err := cc.Lookup(cluster.OriginAuto, discovery.NewID(name))
		if err != nil {
			t.Fatalf("read-back %s with node %d dead: %v", name, victim, err)
		}
		if !res.Found {
			t.Fatalf("quorum-acked insert %s not visible with node %d dead", name, victim)
		}
		newKeys = append(newKeys, name)
		perRegionNew[ownerRegion(name)]++
	}
	for r, n := range perRegionNew {
		if n == 0 {
			t.Fatalf("no post-kill writes landed in region %d", r)
		}
	}
	keys = append(keys, newKeys...)

	// A cluster-unaware client on a survivor answers dead-region reads
	// locally: with one node down the quorum was both survivors, so
	// every post-kill key is on this node deterministically.
	pc, err := server.Dial(procs[(victim+1)%3].clientAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	for _, name := range newKeys {
		if ownerRegion(name) != victimRegion {
			continue
		}
		res, err := pc.Lookup(server.OriginAuto, discovery.NewID(name))
		if err != nil {
			t.Fatalf("plain-client lookup %s via survivor: %v", name, err)
		}
		if !res.Found {
			t.Fatalf("post-kill key %s missing from survivor replica", name)
		}
	}

	// Phase 3: restart the victim on its data directory. WAL recovery
	// restores what it committed; anti-entropy pulls every region it
	// replicates, catching up on everything acked while it was dead.
	procs[victim] = startNode(t, bin, peerAddrs[victim], peerAddrs, dirs[victim])
	waitMemberSlot(t, cc, victimRegion, procs[victim].clientAddr)

	mu.Lock()
	keys = append(keys, ackedDuring...)
	mu.Unlock()

	// Zero acked-insert loss, proven on the restarted node itself: it
	// replicates every region, so after convergence a local answer must
	// find every key ever acked.
	vc, err := server.Dial(procs[victim].clientAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer vc.Close()
	deadline := time.Now().Add(45 * time.Second)
	for _, name := range keys {
		for {
			res, err := vc.Lookup(server.OriginAuto, discovery.NewID(name))
			if err == nil && res.Found {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("acked insert %s not on the restarted node after the convergence window (last err %v)", name, err)
			}
			time.Sleep(200 * time.Millisecond)
		}
	}
	// And through the owner route from the smart client.
	for _, name := range keys {
		found, err := lookupSmartRetry(cc, discovery.NewID(name))
		if err != nil {
			t.Fatalf("post-restart lookup %s: %v", name, err)
		}
		if !found {
			t.Fatalf("acked insert %s lost after restart", name)
		}
	}
	t.Logf("verified %d acked inserts after SIGKILL, failover, and recovery (failovers: %d)", len(keys), cc.Stats().Failovers)

	// The cluster drains cleanly on SIGTERM with replication active.
	for i, p := range procs {
		if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := p.cmd.Wait(); err != nil {
			t.Fatalf("node %d exit after SIGTERM: %v", i, err)
		}
	}
}
