// Command mpilsim runs ad-hoc MPIL workloads over generated overlays and
// reports insertion/lookup statistics — a workbench for exploring the
// algorithm's parameter space beyond the paper's fixed configurations.
//
// Example:
//
//	mpilsim -topology powerlaw -nodes 4000 -requests 200 \
//	        -maxflows 10 -replicas 3 -perturb 0.2
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"discovery/internal/idspace"
	"discovery/internal/metrics"
	"discovery/internal/mpil"
	"discovery/internal/overlay"
	"discovery/internal/topology"
	"discovery/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		topo     = flag.String("topology", "random", "overlay family: random, powerlaw, complete")
		nodes    = flag.Int("nodes", 1000, "overlay size")
		degree   = flag.Int("degree", 20, "degree of random overlays")
		gamma    = flag.Float64("gamma", 2.2, "power-law exponent")
		requests = flag.Int("requests", 100, "insert/lookup pairs")
		maxFlows = flag.Int("maxflows", 10, "max_flows per request")
		replicas = flag.Int("replicas", 5, "per-flow replicas")
		digitB   = flag.Int("b", 4, "digit width in bits (1, 2, 4, 8)")
		ds       = flag.Bool("ds", true, "duplicate suppression")
		perturbF = flag.Float64("perturb", 0, "fraction of nodes to mark unresponsive before lookups")
		seed     = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *topology.Graph
	var err error
	switch *topo {
	case "random":
		g, err = topology.RandomRegular(*nodes, *degree, rng)
	case "powerlaw":
		g, err = topology.PowerLaw(*nodes, *gamma, 2, rng)
	case "complete":
		g = topology.Complete(*nodes)
	default:
		err = fmt.Errorf("unknown topology %q", *topo)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpilsim:", err)
		return 1
	}
	if *perturbF < 0 || *perturbF >= 1 {
		fmt.Fprintln(os.Stderr, "mpilsim: -perturb must be in [0,1)")
		return 2
	}

	space, err := idspace.NewSpace(*digitB)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpilsim:", err)
		return 2
	}
	avail := &maskAvailability{offline: make([]bool, *nodes)}
	nw := overlay.New(g, rng, avail)
	eng, err := mpil.NewEngine(nw, mpil.Config{
		Space:                space,
		MaxFlows:             *maxFlows,
		PerFlowReplicas:      *replicas,
		DuplicateSuppression: *ds,
	}, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpilsim:", err)
		return 1
	}

	pairs, err := workload.RandomOrigins(*requests, *nodes, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpilsim:", err)
		return 1
	}

	var insReplicas, insTraffic, insFlows metrics.Sample
	for _, p := range pairs {
		st := eng.Insert(p.InsertOrigin, p.Key, nil, 0)
		insReplicas.AddInt(st.Replicas)
		insTraffic.AddInt(st.Messages)
		insFlows.AddInt(st.Flows)
	}

	// Perturb the requested fraction (never node 0, so at least one
	// origin stays alive).
	perturbed := 0
	for i := 1; i < *nodes && float64(perturbed) < *perturbF*float64(*nodes); i++ {
		if rng.Float64() < *perturbF*1.5 {
			avail.offline[i] = true
			perturbed++
		}
	}

	var success metrics.Rate
	var hops, lkTraffic, lkFlows metrics.Sample
	for _, p := range pairs {
		st := eng.Lookup(p.LookupOrigin, p.Key, 0)
		success.Record(st.Found)
		if st.Found {
			hops.AddInt(st.FirstReplyHops)
		}
		lkTraffic.AddInt(st.Messages)
		lkFlows.AddInt(st.Flows)
	}

	fmt.Printf("overlay: %s, %d nodes, %d edges, degrees [%d..%d], avg %.1f\n",
		*topo, g.N(), g.M(), g.MinDegree(), g.MaxDegree(), g.AvgDegree())
	fmt.Printf("config: max_flows=%d per-flow replicas=%d b=%d DS=%v\n", *maxFlows, *replicas, *digitB, *ds)
	fmt.Printf("perturbed nodes: %d/%d\n\n", perturbed, *nodes)
	tb := metrics.NewTable("metric", "mean", "min", "max")
	tb.AddRow("insert replicas", f1(insReplicas.Mean()), f1(insReplicas.Min()), f1(insReplicas.Max()))
	tb.AddRow("insert traffic", f1(insTraffic.Mean()), f1(insTraffic.Min()), f1(insTraffic.Max()))
	tb.AddRow("insert flows", f1(insFlows.Mean()), f1(insFlows.Min()), f1(insFlows.Max()))
	tb.AddRow("lookup hops", f1(hops.Mean()), f1(hops.Min()), f1(hops.Max()))
	tb.AddRow("lookup traffic", f1(lkTraffic.Mean()), f1(lkTraffic.Min()), f1(lkTraffic.Max()))
	tb.AddRow("lookup flows", f1(lkFlows.Mean()), f1(lkFlows.Min()), f1(lkFlows.Max()))
	fmt.Print(tb)
	fmt.Printf("\nlookup success: %.1f%% (%d/%d)\n", success.Percent(), success.Successes(), success.Total())
	return 0
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// maskAvailability marks a settable subset of nodes unresponsive.
type maskAvailability struct {
	offline []bool
}

func (m *maskAvailability) Online(node int, _ time.Duration) bool { return !m.offline[node] }
