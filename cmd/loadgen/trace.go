package main

// Trace stamping and exemplar dumping: in cluster mode, every Nth
// route-direct request carries a caller-generated trace ID on its
// TRoute trailer, so the serving node records spans for exactly those
// requests (independent of its own sampling rate). The wrapper measures
// each stamped request's client-side latency; after the run the worst
// of them are matched against the owner's /debug/traces output, giving
// a span breakdown for the tail the percentiles point at.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"discovery/internal/cluster"
	"discovery/internal/idspace"
	"discovery/internal/trace"
	"discovery/internal/wire"
)

// tracedRecord pairs one stamped request's trace ID with its measured
// client-side latency.
type tracedRecord struct {
	ID    uint64 `json:"-"`
	Hex   string `json:"id"`
	Nanos int64  `json:"client_ns"`
}

// tracedClient stamps every Nth request through the cluster-smart
// client with a fresh trace ID. Safe for concurrent use, like the
// client it wraps.
type tracedClient struct {
	inner *cluster.Client
	every int64
	n     atomic.Int64

	mu   sync.Mutex
	recs []tracedRecord
}

// next returns the trace ID for this request, or 0 when it falls
// between sampling points. IDs mix the claim counter so concurrent
// workers never collide.
func (t *tracedClient) next() uint64 {
	k := t.n.Add(1)
	if k%t.every != 0 {
		return 0
	}
	// splitmix64 over the counter: well-spread, deterministic per run.
	z := uint64(k) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

func (t *tracedClient) record(id uint64, d time.Duration) {
	t.mu.Lock()
	t.recs = append(t.recs, tracedRecord{ID: id, Hex: fmt.Sprintf("%016x", id), Nanos: int64(d)})
	t.mu.Unlock()
}

func (t *tracedClient) Insert(origin int, key idspace.ID, value []byte) (wire.InsertReply, error) {
	id := t.next()
	if id == 0 {
		return t.inner.Insert(origin, key, value)
	}
	t0 := time.Now()
	r, err := t.inner.InsertTraced(origin, key, value, id)
	t.record(id, time.Since(t0))
	return r, err
}

func (t *tracedClient) Lookup(origin int, key idspace.ID) (wire.LookupReply, error) {
	id := t.next()
	if id == 0 {
		return t.inner.Lookup(origin, key)
	}
	t0 := time.Now()
	r, err := t.inner.LookupTraced(origin, key, id)
	t.record(id, time.Since(t0))
	return r, err
}

// worst returns the k stamped requests with the largest client-side
// latency, slowest first.
func (t *tracedClient) worst(k int) []tracedRecord {
	t.mu.Lock()
	recs := append([]tracedRecord(nil), t.recs...)
	t.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Nanos > recs[j].Nanos })
	if len(recs) > k {
		recs = recs[:k]
	}
	return recs
}

// dumpExemplars fetches /debug/traces from each base URL and prints the
// server-side span trees for the worst stamped requests. A trace that
// no node returned (ring overwritten, or the spans live on a node whose
// URL was not given) is reported as missing rather than silently
// skipped.
func dumpExemplars(urls []string, worst []tracedRecord) {
	if len(worst) == 0 {
		fmt.Println("loadgen: no stamped requests to dump (run too short for -trace-every?)")
		return
	}
	byID := make(map[string]trace.JSONTrace)
	client := &http.Client{Timeout: 5 * time.Second}
	for _, u := range urls {
		resp, err := client.Get(u + "/debug/traces?n=0")
		if err != nil {
			fmt.Printf("loadgen: fetch %s/debug/traces: %v\n", u, err)
			continue
		}
		var body struct {
			Traces []trace.JSONTrace `json:"traces"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			fmt.Printf("loadgen: decode %s/debug/traces: %v\n", u, err)
			continue
		}
		for _, tr := range body.Traces {
			// Spans for one ID can live on several nodes (relay + owner);
			// keep the longest rendering, which contains the most context.
			if prev, ok := byID[tr.ID]; !ok || tr.Dur > prev.Dur {
				byID[tr.ID] = tr
			}
		}
	}
	fmt.Printf("loadgen: exemplar traces for the %d slowest stamped requests:\n", len(worst))
	for _, rec := range worst {
		tr, ok := byID[rec.Hex]
		if !ok {
			fmt.Printf("  trace %s  client %.0fµs  (no spans retrieved — evicted or on an unlisted node)\n",
				rec.Hex, float64(rec.Nanos)/1e3)
			continue
		}
		fmt.Printf("  trace %s  client %.0fµs  server %.0fµs\n", rec.Hex, float64(rec.Nanos)/1e3, float64(tr.Dur)/1e3)
		for _, sp := range tr.Spans {
			printSpan(sp, "    ")
		}
	}
}

func printSpan(sp *trace.JSONSpan, indent string) {
	fmt.Printf("%s%-12s node=%d  %.0fµs (extra=%d)\n", indent, sp.Kind, sp.Node, float64(sp.Dur)/1e3, sp.Extra)
	for _, child := range sp.Spans {
		printSpan(child, indent+"  ")
	}
}
