package main

// Periodic /metrics scraping: while a workload runs, a background
// goroutine polls a daemon's Prometheus text endpoint and keeps each
// scrape as a timestamped sample. After the run the samples are emitted
// as a JSON timeline — metric trajectories over the measured window
// (queue depths climbing, WAL fsync shares, coalescing ratios), lined
// up with the latency report by wall-clock time.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"
)

// metricSample is one scrape: when it happened and every series the
// endpoint exposed (name with labels → value).
type metricSample struct {
	UnixMillis int64              `json:"unix_millis"`
	Series     map[string]float64 `json:"series"`
}

// parseProm reads Prometheus text exposition into a flat series map.
// Comment lines are skipped; histograms arrive pre-flattened (the
// registry exposes quantiles, _count and _max as plain series).
func parseProm(r io.Reader) map[string]float64 {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	return out
}

// scraper polls url every interval until finish is called.
type scraper struct {
	url     string
	every   time.Duration
	samples []metricSample
	errs    int
	stop    chan struct{}
	done    chan struct{}
}

// startScraper launches the polling goroutine. One scrape fires
// immediately so even a short run gets a baseline sample.
func startScraper(url string, every time.Duration) *scraper {
	s := &scraper{url: url, every: every, stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		client := &http.Client{Timeout: 5 * time.Second}
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			s.scrapeOnce(client)
			select {
			case <-s.stop:
				return
			case <-ticker.C:
			}
		}
	}()
	return s
}

func (s *scraper) scrapeOnce(client *http.Client) {
	resp, err := client.Get(s.url)
	if err != nil {
		s.errs++
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		s.errs++
		return
	}
	s.samples = append(s.samples, metricSample{
		UnixMillis: time.Now().UnixMilli(),
		Series:     parseProm(resp.Body),
	})
}

// finish stops the poller, takes one final sample, and returns the
// timeline.
func (s *scraper) finish() []metricSample {
	close(s.stop)
	<-s.done
	s.scrapeOnce(&http.Client{Timeout: 5 * time.Second})
	return s.samples
}

// writeTimeline emits the scraped samples as indented JSON: to path, or
// to stdout when path is empty.
func writeTimeline(path string, samples []metricSample, errs int) error {
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d metrics scrapes failed (timeline has gaps)\n", errs)
	}
	b, err := json.MarshalIndent(struct {
		Samples []metricSample `json:"samples"`
	}{samples}, "", "  ")
	if err != nil {
		return err
	}
	if path == "" {
		fmt.Printf("loadgen: metrics timeline (%d samples):\n%s\n", len(samples), b)
		return nil
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: metrics timeline: %d samples written to %s\n", len(samples), path)
	return nil
}
