// Command loadgen is a closed-loop load generator for discoveryd: it
// opens many connections, drives each with one outstanding request at a
// time, and reports throughput and latency percentiles.
//
// Example:
//
//	loadgen -addr localhost:7700 -conns 8 -requests 20000 \
//	        -insert-ratio 0.1 -keys 5000 -value-size 32
//
// Each connection runs its own deterministic RNG stream (seed + conn
// index): a request is an insert with probability -insert-ratio and a
// lookup otherwise, over a shared key population. Inserted keys are
// findable by later lookups, so a long run converges to the steady-state
// hit rate of the configured overlay.
//
// With -cluster, -addr is a comma-separated seed list of cluster nodes
// and the same workload runs twice: once route-direct through the
// cluster-smart client (owners computed locally, one hop per request)
// and once relayed through the first seed like a cluster-unaware client
// (foreign keys take a second server-side hop). The two results print
// side by side.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"discovery/internal/cluster"
	"discovery/internal/idspace"
	"discovery/internal/metrics"
	"discovery/internal/server"
	"discovery/internal/wire"
)

func main() {
	os.Exit(run())
}

// requester is the request surface a workload drives; both the plain
// per-connection client and the shared cluster-smart client satisfy it.
type requester interface {
	Insert(origin int, key idspace.ID, value []byte) (wire.InsertReply, error)
	Lookup(origin int, key idspace.ID) (wire.LookupReply, error)
}

// connReport is one connection's contribution to the final report.
type connReport struct {
	lat      metrics.Distribution // microseconds per request
	requests int
	inserts  int
	lookups  int
	found    int
	errs     int
	firstErr error
}

// report is the aggregate of one measured workload run.
type report struct {
	lat     metrics.Distribution
	elapsed time.Duration
	total   int
	inserts int
	lookups int
	found   int
	errs    int
	first   error
}

func (r *report) throughput() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.total) / r.elapsed.Seconds()
}

func (r *report) print(indent string) {
	fmt.Printf("%sthroughput  %.0f req/s\n", indent, r.throughput())
	fmt.Printf("%slatency     p50 %.0fµs  p95 %.0fµs  p99 %.0fµs  mean %.0fµs  max %.0fµs\n",
		indent, r.lat.Percentile(50), r.lat.Percentile(95), r.lat.Percentile(99), r.lat.Mean(), r.lat.Percentile(100))
	fmt.Printf("%smix         %d inserts, %d lookups (%d found", indent, r.inserts, r.lookups, r.found)
	if r.lookups > 0 {
		fmt.Printf(", %.1f%%", 100*float64(r.found)/float64(r.lookups))
	}
	fmt.Printf(")\n")
}

// runWorkload drives the standard closed-loop mix over conns workers,
// each using the requester from dial(ci). The returned report merges
// every worker.
func runWorkload(conns, requests int, insertRatio float64, keyIDs []idspace.ID, value []byte, seed int64,
	dial func(ci int) (requester, func(), error)) report {
	reports := make([]connReport, conns)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < conns; ci++ {
		per := requests / conns
		if ci < requests%conns {
			per++
		}
		wg.Add(1)
		go func(ci, per int) {
			defer wg.Done()
			r := &reports[ci]
			c, closeFn, err := dial(ci)
			if err != nil {
				r.errs++
				r.firstErr = err
				return
			}
			defer closeFn()
			rng := rand.New(rand.NewSource(seed + int64(ci)))
			for i := 0; i < per; i++ {
				key := keyIDs[rng.Intn(len(keyIDs))]
				t0 := time.Now()
				if rng.Float64() < insertRatio {
					_, err = c.Insert(server.OriginAuto, key, value)
					r.inserts++
				} else {
					var res, lerr = c.Lookup(server.OriginAuto, key)
					err = lerr
					r.lookups++
					if err == nil && res.Found {
						r.found++
					}
				}
				r.lat.Add(float64(time.Since(t0).Microseconds()))
				r.requests++
				if err != nil {
					r.errs++
					if r.firstErr == nil {
						r.firstErr = err
					}
					return
				}
			}
		}(ci, per)
	}
	wg.Wait()

	agg := report{elapsed: time.Since(start)}
	for i := range reports {
		r := &reports[i]
		agg.lat.Merge(&r.lat)
		agg.total += r.requests
		agg.inserts += r.inserts
		agg.lookups += r.lookups
		agg.found += r.found
		agg.errs += r.errs
		if agg.first == nil {
			agg.first = r.firstErr
		}
	}
	return agg
}

func run() int {
	var (
		addr        = flag.String("addr", "localhost:7700", "discoveryd address (with -cluster: comma-separated seed list)")
		clusterMode = flag.Bool("cluster", false, "drive a multi-node cluster: run the workload route-direct (cluster-smart client) and relayed (one entry node), report side by side")
		conns       = flag.Int("conns", 8, "concurrent connections")
		requests    = flag.Int("requests", 20000, "total requests across all connections")
		insertRatio = flag.Float64("insert-ratio", 0.1, "fraction of requests that are inserts")
		keys        = flag.Int("keys", 5000, "key population size")
		valueSize   = flag.Int("value-size", 32, "insert payload bytes")
		seed        = flag.Int64("seed", 1, "workload seed (connection i uses seed+i)")
		preload     = flag.Int("preload", 0, "insert N keys (round-robin over the population) before the measured window")
	)
	flag.Parse()
	if *conns < 1 || *requests < 1 || *keys < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -conns, -requests and -keys must be positive")
		return 2
	}
	if *insertRatio < 0 || *insertRatio > 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -insert-ratio must be in [0,1]")
		return 2
	}
	if *valueSize < 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -value-size must be non-negative")
		return 2
	}

	// Pre-hash the key population so key derivation is off the timed path.
	keyIDs := make([]idspace.ID, *keys)
	for i := range keyIDs {
		keyIDs[i] = idspace.FromString(fmt.Sprintf("loadgen-key-%d", i))
	}
	value := make([]byte, *valueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	if *clusterMode {
		return runCluster(*addr, *conns, *requests, *insertRatio, *seed, *preload, keyIDs, value)
	}

	// Warm-up phase: populate the store before the measured window so
	// lookup hit rates reflect steady state, not a cold daemon. Preload
	// time is reported separately and excluded from throughput.
	if *preload > 0 {
		if err := preloadKeys(*preload, *conns, keyIDs, value, func(int) (requester, func(), error) {
			c, err := server.Dial(*addr)
			if err != nil {
				return nil, nil, err
			}
			return c, func() { c.Close() }, nil
		}); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: preload: %v\n", err)
			return 1
		}
	}

	agg := runWorkload(*conns, *requests, *insertRatio, keyIDs, value, *seed, func(int) (requester, func(), error) {
		c, err := server.Dial(*addr)
		if err != nil {
			return nil, nil, err
		}
		return c, func() { c.Close() }, nil
	})

	fmt.Printf("loadgen: %d requests over %d conns in %s\n", agg.total, *conns, agg.elapsed.Round(time.Millisecond))
	if agg.total > 0 {
		agg.print("  ")
	}
	if agg.errs > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d errors (first: %v)\n", agg.errs, agg.first)
		return 1
	}
	return 0
}

// preloadKeys inserts n keys round-robin over the population using one
// requester per connection, off the measured clock.
func preloadKeys(n, conns int, keyIDs []idspace.ID, value []byte, dial func(int) (requester, func(), error)) error {
	t0 := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, conns)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, closeFn, err := dial(ci)
			if err != nil {
				errs[ci] = err
				return
			}
			defer closeFn()
			for i := ci; i < n; i += conns {
				if _, err := c.Insert(server.OriginAuto, keyIDs[i%len(keyIDs)], value); err != nil {
					errs[ci] = err
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	pd := time.Since(t0)
	fmt.Printf("loadgen: preloaded %d inserts in %s (%.0f req/s, not measured)\n",
		n, pd.Round(time.Millisecond), float64(n)/pd.Seconds())
	return nil
}

// runCluster runs the workload twice against a cluster — route-direct
// through the cluster-smart client, then relayed through the first seed
// — and reports the two side by side.
func runCluster(addrList string, conns, requests int, insertRatio float64, seed int64, preload int,
	keyIDs []idspace.ID, value []byte) int {
	var seeds []string
	for _, a := range strings.Split(addrList, ",") {
		if a = strings.TrimSpace(a); a != "" {
			seeds = append(seeds, a)
		}
	}
	if len(seeds) == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -cluster needs at least one seed in -addr")
		return 2
	}
	cc, err := cluster.Dial(cluster.Config{Seeds: seeds})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		return 1
	}
	defer cc.Close()
	hash, members := cc.Members()
	known := 0
	for _, m := range members {
		if m != "" {
			known++
		}
	}
	fmt.Printf("loadgen: cluster of %d members (%d addresses known, fingerprint %016x)\n", len(members), known, hash)

	if preload > 0 {
		if err := preloadKeys(preload, conns, keyIDs, value, func(int) (requester, func(), error) {
			return cc, func() {}, nil
		}); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: preload: %v\n", err)
			return 1
		}
	}

	// Route-direct: all workers multiplex onto the shared cluster-smart
	// client, whose per-node connections pipeline and coalesce.
	direct := runWorkload(conns, requests, insertRatio, keyIDs, value, seed, func(int) (requester, func(), error) {
		return cc, func() {}, nil
	})
	st := cc.Stats()

	// Relay: the identical workload, cluster-unaware, through seed 0.
	relay := runWorkload(conns, requests, insertRatio, keyIDs, value, seed, func(int) (requester, func(), error) {
		c, err := server.Dial(seeds[0])
		if err != nil {
			return nil, nil, err
		}
		return c, func() { c.Close() }, nil
	})

	fmt.Printf("loadgen: route-direct — %d requests over %d conns in %s (%d routed, %d relayed, %d refreshes)\n",
		direct.total, conns, direct.elapsed.Round(time.Millisecond), st.Routed, st.Relayed, st.Refreshes)
	direct.print("  ")
	fmt.Printf("loadgen: relay via %s — %d requests over %d conns in %s\n",
		seeds[0], relay.total, conns, relay.elapsed.Round(time.Millisecond))
	relay.print("  ")
	if relay.throughput() > 0 {
		fmt.Printf("loadgen: route-direct / relay throughput ratio: %.2fx\n", direct.throughput()/relay.throughput())
	}
	if direct.errs+relay.errs > 0 {
		first := direct.first
		if first == nil {
			first = relay.first
		}
		fmt.Fprintf(os.Stderr, "loadgen: %d errors (first: %v)\n", direct.errs+relay.errs, first)
		return 1
	}
	return 0
}
