// Command loadgen is a closed-loop load generator for discoveryd: it
// opens many connections, drives each with one outstanding request at a
// time, and reports throughput and latency percentiles.
//
// Example:
//
//	loadgen -addr localhost:7700 -conns 8 -requests 20000 \
//	        -insert-ratio 0.1 -keys 5000 -value-size 32
//
// Each connection runs its own deterministic RNG stream (seed + conn
// index): a request is an insert with probability -insert-ratio and a
// lookup otherwise, over a shared key population. Inserted keys are
// findable by later lookups, so a long run converges to the steady-state
// hit rate of the configured overlay.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"discovery/internal/idspace"
	"discovery/internal/metrics"
	"discovery/internal/server"
)

func main() {
	os.Exit(run())
}

// connReport is one connection's contribution to the final report.
type connReport struct {
	lat      metrics.Distribution // microseconds per request
	requests int
	inserts  int
	lookups  int
	found    int
	errs     int
	firstErr error
}

func run() int {
	var (
		addr        = flag.String("addr", "localhost:7700", "discoveryd address")
		conns       = flag.Int("conns", 8, "concurrent connections")
		requests    = flag.Int("requests", 20000, "total requests across all connections")
		insertRatio = flag.Float64("insert-ratio", 0.1, "fraction of requests that are inserts")
		keys        = flag.Int("keys", 5000, "key population size")
		valueSize   = flag.Int("value-size", 32, "insert payload bytes")
		seed        = flag.Int64("seed", 1, "workload seed (connection i uses seed+i)")
		preload     = flag.Int("preload", 0, "insert N keys (round-robin over the population) before the measured window")
	)
	flag.Parse()
	if *conns < 1 || *requests < 1 || *keys < 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -conns, -requests and -keys must be positive")
		return 2
	}
	if *insertRatio < 0 || *insertRatio > 1 {
		fmt.Fprintln(os.Stderr, "loadgen: -insert-ratio must be in [0,1]")
		return 2
	}
	if *valueSize < 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -value-size must be non-negative")
		return 2
	}

	// Pre-hash the key population so key derivation is off the timed path.
	keyIDs := make([]idspace.ID, *keys)
	for i := range keyIDs {
		keyIDs[i] = idspace.FromString(fmt.Sprintf("loadgen-key-%d", i))
	}
	value := make([]byte, *valueSize)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	// Warm-up phase: populate the store before the measured window so
	// lookup hit rates reflect steady state, not a cold daemon. Preload
	// time is reported separately and excluded from throughput.
	if *preload > 0 {
		t0 := time.Now()
		var pwg sync.WaitGroup
		perrs := make([]error, *conns)
		for ci := 0; ci < *conns; ci++ {
			pwg.Add(1)
			go func(ci int) {
				defer pwg.Done()
				c, err := server.Dial(*addr)
				if err != nil {
					perrs[ci] = err
					return
				}
				defer c.Close()
				for i := ci; i < *preload; i += *conns {
					if _, err := c.Insert(server.OriginAuto, keyIDs[i%len(keyIDs)], value); err != nil {
						perrs[ci] = err
						return
					}
				}
			}(ci)
		}
		pwg.Wait()
		for _, err := range perrs {
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: preload: %v\n", err)
				return 1
			}
		}
		pd := time.Since(t0)
		fmt.Printf("loadgen: preloaded %d inserts in %s (%.0f req/s, not measured)\n",
			*preload, pd.Round(time.Millisecond), float64(*preload)/pd.Seconds())
	}

	reports := make([]connReport, *conns)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < *conns; ci++ {
		per := *requests / *conns
		if ci < *requests%*conns {
			per++
		}
		wg.Add(1)
		go func(ci, per int) {
			defer wg.Done()
			r := &reports[ci]
			c, err := server.Dial(*addr)
			if err != nil {
				r.errs++
				r.firstErr = err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(*seed + int64(ci)))
			for i := 0; i < per; i++ {
				key := keyIDs[rng.Intn(len(keyIDs))]
				t0 := time.Now()
				if rng.Float64() < *insertRatio {
					_, err = c.Insert(server.OriginAuto, key, value)
					r.inserts++
				} else {
					var res, lerr = c.Lookup(server.OriginAuto, key)
					err = lerr
					r.lookups++
					if err == nil && res.Found {
						r.found++
					}
				}
				r.lat.Add(float64(time.Since(t0).Microseconds()))
				r.requests++
				if err != nil {
					r.errs++
					if r.firstErr == nil {
						r.firstErr = err
					}
					return
				}
			}
		}(ci, per)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lat metrics.Distribution
	var total, inserts, lookups, found, errs int
	var firstErr error
	for i := range reports {
		r := &reports[i]
		lat.Merge(&r.lat)
		total += r.requests
		inserts += r.inserts
		lookups += r.lookups
		found += r.found
		errs += r.errs
		if firstErr == nil {
			firstErr = r.firstErr
		}
	}

	fmt.Printf("loadgen: %d requests over %d conns in %s\n", total, *conns, elapsed.Round(time.Millisecond))
	if total > 0 {
		fmt.Printf("  throughput  %.0f req/s\n", float64(total)/elapsed.Seconds())
		fmt.Printf("  latency     p50 %.0fµs  p95 %.0fµs  p99 %.0fµs  mean %.0fµs  max %.0fµs\n",
			lat.Percentile(50), lat.Percentile(95), lat.Percentile(99), lat.Mean(), lat.Percentile(100))
		fmt.Printf("  mix         %d inserts, %d lookups (%d found", inserts, lookups, found)
		if lookups > 0 {
			fmt.Printf(", %.1f%%", 100*float64(found)/float64(lookups))
		}
		fmt.Printf(")\n")
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d errors (first: %v)\n", errs, firstErr)
		return 1
	}
	return 0
}
